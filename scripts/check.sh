#!/usr/bin/env bash
# Configure, build, and run the full test suite. One command for CI and for a
# pre-commit sanity pass.
#
# Usage:
#   scripts/check.sh                 # Release build, all tests
#   scripts/check.sh address         # AddressSanitizer build (Debug)
#   scripts/check.sh undefined       # UBSan build (Debug)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${1:-}"
BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${SANITIZER}" ]]; then
  case "${SANITIZER}" in
    address|undefined) ;;
    *)
      echo "usage: $0 [address|undefined]" >&2
      exit 2
      ;;
  esac
  BUILD_DIR="build-${SANITIZER}"
  CMAKE_ARGS+=("-DNADINO_SANITIZE=${SANITIZER}" "-DCMAKE_BUILD_TYPE=Debug")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure
