#!/usr/bin/env bash
# Configure, build, and run the full test suite, optionally followed by the
# bench regression gate. One command for CI and for a pre-commit sanity pass.
#
# Usage:
#   scripts/check.sh                   # Release build, all tests
#   scripts/check.sh address           # AddressSanitizer build (Debug)
#   scripts/check.sh undefined         # UBSan build (Debug)
#   scripts/check.sh thread            # ThreadSanitizer build (Debug)
#   scripts/check.sh --bench-diff      # ...then run the golden bench set
#                                      # and diff their BENCH_<name>.json
#                                      # artifacts against bench/goldens/;
#                                      # any drift fails the check
#   scripts/check.sh --update-goldens  # rerun the benches and rewrite
#                                      # bench/goldens/ (after an intentional
#                                      # model change; review the diff!)
#   scripts/check.sh --perf            # ...then run bench/simperf and gate
#                                      # wall-clock events/sec against
#                                      # bench/perf_baseline.json (fails on a
#                                      # >2x regression; see DESIGN.md §3c)
#
# The sanitizer can also be selected via the environment:
#   NADINO_SANITIZE=address scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${NADINO_SANITIZE:-}"
BENCH_DIFF=0
UPDATE_GOLDENS=0
PERF_GATE=0
for arg in "$@"; do
  case "${arg}" in
    address|undefined|thread) SANITIZER="${arg}" ;;
    --bench-diff) BENCH_DIFF=1 ;;
    --update-goldens)
      BENCH_DIFF=1
      UPDATE_GOLDENS=1
      ;;
    --perf) PERF_GATE=1 ;;
    *)
      echo "usage: $0 [address|undefined|thread] [--bench-diff|--update-goldens] [--perf]" >&2
      exit 2
      ;;
  esac
done

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${SANITIZER}" ]]; then
  case "${SANITIZER}" in
    address|undefined|thread) ;;
    *)
      echo "NADINO_SANITIZE must be 'address', 'undefined', or 'thread', got '${SANITIZER}'" >&2
      exit 2
      ;;
  esac
  BUILD_DIR="build-${SANITIZER}"
  CMAKE_ARGS+=("-DNADINO_SANITIZE=${SANITIZER}" "-DCMAKE_BUILD_TYPE=Debug")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure

# --- Wall-clock perf gate ----------------------------------------------------
# Unlike the golden diffs below, events/sec is machine-dependent, so the gate
# lives inside the simperf binary with a generous threshold: the run fails
# only when throughput drops below baseline/threshold (a real hot-path
# regression, not scheduler jitter). BENCH_simperf.json is NOT golden-diffed.
if [[ "${PERF_GATE}" -eq 1 ]]; then
  ROOT_DIR="$(pwd)"
  PERF_LOG="$(mktemp)"
  PERF_RUN_DIR="$(mktemp -d)"
  echo "perf: running bench/simperf against bench/perf_baseline.json..."
  PERF_STATUS=0
  (cd "${PERF_RUN_DIR}" &&
   "${ROOT_DIR}/${BUILD_DIR}/bench/simperf" \
     --check "${ROOT_DIR}/bench/perf_baseline.json" --threshold 2.0) \
    | tee -a "${PERF_LOG}" || PERF_STATUS=$?
  rm -rf "${PERF_RUN_DIR}"
  if [[ "${PERF_STATUS}" -ne 0 ]]; then
    echo "perf: FAILED (see output above)" >&2
    exit "${PERF_STATUS}"
  fi
  # Sharded-admission + parallel-drain gates (DESIGN.md §3g/§3h): 16-node
  # bulk admission must beat the single heap, and the multi-worker drain must
  # beat the serial drain at the 1M-user point (auto-skipped on 1-core
  # hosts). Same wall-clock caveats as simperf above.
  PERF_RUN_DIR="$(mktemp -d)"
  echo "perf: running bench/openloop_scale --perf-compare..."
  PERF_STATUS=0
  (cd "${PERF_RUN_DIR}" &&
   "${ROOT_DIR}/${BUILD_DIR}/bench/openloop_scale" --perf-compare) \
    | tee -a "${PERF_LOG}" || PERF_STATUS=$?
  rm -rf "${PERF_RUN_DIR}"
  if [[ "${PERF_STATUS}" -ne 0 ]]; then
    echo "perf: FAILED (see output above)" >&2
    exit "${PERF_STATUS}"
  fi
  # Worker sweep (informational: no gate, but the determinism cross-check
  # inside the bench still fails the run on a divergent schedule).
  PERF_RUN_DIR="$(mktemp -d)"
  echo "perf: running bench/openloop_scale --workers..."
  PERF_STATUS=0
  (cd "${PERF_RUN_DIR}" &&
   "${ROOT_DIR}/${BUILD_DIR}/bench/openloop_scale" --workers) \
    | tee -a "${PERF_LOG}" || PERF_STATUS=$?
  rm -rf "${PERF_RUN_DIR}"
  if [[ "${PERF_STATUS}" -ne 0 ]]; then
    echo "perf: FAILED (see output above)" >&2
    exit "${PERF_STATUS}"
  fi
  # Consolidate every TRAJECTORY_JSON record the benches printed into one
  # JSONL line per --perf run: bench/BENCH_perf_trajectory.json grows into
  # the machine-local perf history (wall-clock numbers; never golden-diffed).
  TRAJECTORY_FILE=bench/BENCH_perf_trajectory.json
  RECORDS="$(grep '^TRAJECTORY_JSON ' "${PERF_LOG}" | sed 's/^TRAJECTORY_JSON //' | paste -sd, -)"
  rm -f "${PERF_LOG}"
  if [[ -n "${RECORDS}" ]]; then
    printf '{"date": "%s", "git": "%s", "records": [%s]}\n' \
      "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
      "${RECORDS}" >> "${TRAJECTORY_FILE}"
    echo "perf: appended perf record line to ${TRAJECTORY_FILE}"
  fi
fi

if [[ "${BENCH_DIFF}" -eq 0 ]]; then
  exit 0
fi

# --- Bench regression gate ---------------------------------------------------
# The simulator is deterministic, so the metrics snapshots these benches emit
# are byte-stable across runs and machines. Goldens under bench/goldens/ pin
# them; unintended drift in calibrated costs, scheduling, or metric plumbing
# shows up here as a diff.
GOLDEN_DIR=bench/goldens
GOLDEN_BENCHES=(chain_offload fig06_isolation_cost fig09_comch fig11_offpath_onpath
                fig12_rdma_primitives fig13_ingress fig14_ingress_scaling fig15_multitenancy
                fig16_boutique node_scale openloop_scale tenant_churn)
GOLDEN_ARTIFACTS=(BENCH_chain_offload.json BENCH_fig06_dne_4096.json BENCH_fig09_comch_e6.json
                  BENCH_fig11_offpath_c8.json BENCH_fig12_twosided_4096.json
                  BENCH_fig13_nadino_c16.json BENCH_fig14_nadino_ramp.json BENCH_fig15_dwrr.json
                  BENCH_fig15_fcfs.json BENCH_fig16_dne_home.json BENCH_node_scale_16.json
                  BENCH_openloop_scale.json BENCH_tenant_churn.json)

RUN_DIR="$(mktemp -d)"
trap 'rm -rf "${RUN_DIR}"' EXIT
ROOT_DIR="$(pwd)"
for bench in "${GOLDEN_BENCHES[@]}"; do
  echo "bench-diff: running ${bench}..."
  (cd "${RUN_DIR}" && "${ROOT_DIR}/${BUILD_DIR}/bench/${bench}" > "${bench}.out")
done

if [[ "${UPDATE_GOLDENS}" -eq 1 ]]; then
  mkdir -p "${GOLDEN_DIR}"
  for artifact in "${GOLDEN_ARTIFACTS[@]}"; do
    cp "${RUN_DIR}/${artifact}" "${GOLDEN_DIR}/${artifact}"
    echo "bench-diff: updated ${GOLDEN_DIR}/${artifact}"
  done
  exit 0
fi

STATUS=0
for artifact in "${GOLDEN_ARTIFACTS[@]}"; do
  if [[ ! -f "${GOLDEN_DIR}/${artifact}" ]]; then
    echo "bench-diff: MISSING golden ${GOLDEN_DIR}/${artifact}" >&2
    echo "bench-diff: run scripts/check.sh --update-goldens to create it" >&2
    STATUS=1
    continue
  fi
  if ! diff -u "${GOLDEN_DIR}/${artifact}" "${RUN_DIR}/${artifact}"; then
    echo "bench-diff: DRIFT in ${artifact} (see diff above)" >&2
    echo "bench-diff: intentional? rerun with --update-goldens and commit" >&2
    STATUS=1
  else
    echo "bench-diff: ${artifact} matches golden"
  fi
done
exit "${STATUS}"
