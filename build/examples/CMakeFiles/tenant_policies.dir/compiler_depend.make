# Empty compiler generated dependencies file for tenant_policies.
# This may be replaced when dependencies are built.
