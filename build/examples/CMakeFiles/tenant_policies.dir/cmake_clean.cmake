file(REMOVE_RECURSE
  "CMakeFiles/tenant_policies.dir/tenant_policies.cc.o"
  "CMakeFiles/tenant_policies.dir/tenant_policies.cc.o.d"
  "tenant_policies"
  "tenant_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenant_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
