# Empty compiler generated dependencies file for boutique_demo.
# This may be replaced when dependencies are built.
