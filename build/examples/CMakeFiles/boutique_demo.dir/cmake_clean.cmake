file(REMOVE_RECURSE
  "CMakeFiles/boutique_demo.dir/boutique_demo.cc.o"
  "CMakeFiles/boutique_demo.dir/boutique_demo.cc.o.d"
  "boutique_demo"
  "boutique_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boutique_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
