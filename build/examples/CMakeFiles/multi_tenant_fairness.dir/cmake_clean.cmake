file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_fairness.dir/multi_tenant_fairness.cc.o"
  "CMakeFiles/multi_tenant_fairness.dir/multi_tenant_fairness.cc.o.d"
  "multi_tenant_fairness"
  "multi_tenant_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
