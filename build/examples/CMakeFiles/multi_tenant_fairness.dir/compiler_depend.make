# Empty compiler generated dependencies file for multi_tenant_fairness.
# This may be replaced when dependencies are built.
