file(REMOVE_RECURSE
  "CMakeFiles/ingress_conversion.dir/ingress_conversion.cc.o"
  "CMakeFiles/ingress_conversion.dir/ingress_conversion.cc.o.d"
  "ingress_conversion"
  "ingress_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingress_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
