# Empty compiler generated dependencies file for ingress_conversion.
# This may be replaced when dependencies are built.
