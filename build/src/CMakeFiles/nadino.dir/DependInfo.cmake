
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/boutique.cc" "src/CMakeFiles/nadino.dir/apps/boutique.cc.o" "gcc" "src/CMakeFiles/nadino.dir/apps/boutique.cc.o.d"
  "/root/repo/src/apps/pipeline.cc" "src/CMakeFiles/nadino.dir/apps/pipeline.cc.o" "gcc" "src/CMakeFiles/nadino.dir/apps/pipeline.cc.o.d"
  "/root/repo/src/baselines/baseline_dataplane.cc" "src/CMakeFiles/nadino.dir/baselines/baseline_dataplane.cc.o" "gcc" "src/CMakeFiles/nadino.dir/baselines/baseline_dataplane.cc.o.d"
  "/root/repo/src/baselines/capabilities.cc" "src/CMakeFiles/nadino.dir/baselines/capabilities.cc.o" "gcc" "src/CMakeFiles/nadino.dir/baselines/capabilities.cc.o.d"
  "/root/repo/src/core/calibration.cc" "src/CMakeFiles/nadino.dir/core/calibration.cc.o" "gcc" "src/CMakeFiles/nadino.dir/core/calibration.cc.o.d"
  "/root/repo/src/core/experiments.cc" "src/CMakeFiles/nadino.dir/core/experiments.cc.o" "gcc" "src/CMakeFiles/nadino.dir/core/experiments.cc.o.d"
  "/root/repo/src/core/types.cc" "src/CMakeFiles/nadino.dir/core/types.cc.o" "gcc" "src/CMakeFiles/nadino.dir/core/types.cc.o.d"
  "/root/repo/src/dne/nadino_dataplane.cc" "src/CMakeFiles/nadino.dir/dne/nadino_dataplane.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dne/nadino_dataplane.cc.o.d"
  "/root/repo/src/dne/network_engine.cc" "src/CMakeFiles/nadino.dir/dne/network_engine.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dne/network_engine.cc.o.d"
  "/root/repo/src/dne/rate_limiter.cc" "src/CMakeFiles/nadino.dir/dne/rate_limiter.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dne/rate_limiter.cc.o.d"
  "/root/repo/src/dne/rbr_table.cc" "src/CMakeFiles/nadino.dir/dne/rbr_table.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dne/rbr_table.cc.o.d"
  "/root/repo/src/dne/scheduler.cc" "src/CMakeFiles/nadino.dir/dne/scheduler.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dne/scheduler.cc.o.d"
  "/root/repo/src/dpu/comch.cc" "src/CMakeFiles/nadino.dir/dpu/comch.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dpu/comch.cc.o.d"
  "/root/repo/src/dpu/cross_mmap.cc" "src/CMakeFiles/nadino.dir/dpu/cross_mmap.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dpu/cross_mmap.cc.o.d"
  "/root/repo/src/dpu/dpu.cc" "src/CMakeFiles/nadino.dir/dpu/dpu.cc.o" "gcc" "src/CMakeFiles/nadino.dir/dpu/dpu.cc.o.d"
  "/root/repo/src/ingress/gateway.cc" "src/CMakeFiles/nadino.dir/ingress/gateway.cc.o" "gcc" "src/CMakeFiles/nadino.dir/ingress/gateway.cc.o.d"
  "/root/repo/src/mem/buffer.cc" "src/CMakeFiles/nadino.dir/mem/buffer.cc.o" "gcc" "src/CMakeFiles/nadino.dir/mem/buffer.cc.o.d"
  "/root/repo/src/mem/buffer_pool.cc" "src/CMakeFiles/nadino.dir/mem/buffer_pool.cc.o" "gcc" "src/CMakeFiles/nadino.dir/mem/buffer_pool.cc.o.d"
  "/root/repo/src/mem/copy_engine.cc" "src/CMakeFiles/nadino.dir/mem/copy_engine.cc.o" "gcc" "src/CMakeFiles/nadino.dir/mem/copy_engine.cc.o.d"
  "/root/repo/src/mem/hugepage_arena.cc" "src/CMakeFiles/nadino.dir/mem/hugepage_arena.cc.o" "gcc" "src/CMakeFiles/nadino.dir/mem/hugepage_arena.cc.o.d"
  "/root/repo/src/mem/pool_cache.cc" "src/CMakeFiles/nadino.dir/mem/pool_cache.cc.o" "gcc" "src/CMakeFiles/nadino.dir/mem/pool_cache.cc.o.d"
  "/root/repo/src/mem/tenant_registry.cc" "src/CMakeFiles/nadino.dir/mem/tenant_registry.cc.o" "gcc" "src/CMakeFiles/nadino.dir/mem/tenant_registry.cc.o.d"
  "/root/repo/src/mem/token.cc" "src/CMakeFiles/nadino.dir/mem/token.cc.o" "gcc" "src/CMakeFiles/nadino.dir/mem/token.cc.o.d"
  "/root/repo/src/rdma/completion_queue.cc" "src/CMakeFiles/nadino.dir/rdma/completion_queue.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/completion_queue.cc.o.d"
  "/root/repo/src/rdma/connection_manager.cc" "src/CMakeFiles/nadino.dir/rdma/connection_manager.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/connection_manager.cc.o.d"
  "/root/repo/src/rdma/distributed_lock.cc" "src/CMakeFiles/nadino.dir/rdma/distributed_lock.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/distributed_lock.cc.o.d"
  "/root/repo/src/rdma/fabric.cc" "src/CMakeFiles/nadino.dir/rdma/fabric.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/fabric.cc.o.d"
  "/root/repo/src/rdma/memory_region.cc" "src/CMakeFiles/nadino.dir/rdma/memory_region.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/memory_region.cc.o.d"
  "/root/repo/src/rdma/qp_cache.cc" "src/CMakeFiles/nadino.dir/rdma/qp_cache.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/qp_cache.cc.o.d"
  "/root/repo/src/rdma/rdma_engine.cc" "src/CMakeFiles/nadino.dir/rdma/rdma_engine.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/rdma_engine.cc.o.d"
  "/root/repo/src/rdma/shared_receive_queue.cc" "src/CMakeFiles/nadino.dir/rdma/shared_receive_queue.cc.o" "gcc" "src/CMakeFiles/nadino.dir/rdma/shared_receive_queue.cc.o.d"
  "/root/repo/src/runtime/chain.cc" "src/CMakeFiles/nadino.dir/runtime/chain.cc.o" "gcc" "src/CMakeFiles/nadino.dir/runtime/chain.cc.o.d"
  "/root/repo/src/runtime/coldstart.cc" "src/CMakeFiles/nadino.dir/runtime/coldstart.cc.o" "gcc" "src/CMakeFiles/nadino.dir/runtime/coldstart.cc.o.d"
  "/root/repo/src/runtime/message_header.cc" "src/CMakeFiles/nadino.dir/runtime/message_header.cc.o" "gcc" "src/CMakeFiles/nadino.dir/runtime/message_header.cc.o.d"
  "/root/repo/src/runtime/node.cc" "src/CMakeFiles/nadino.dir/runtime/node.cc.o" "gcc" "src/CMakeFiles/nadino.dir/runtime/node.cc.o.d"
  "/root/repo/src/runtime/skmsg.cc" "src/CMakeFiles/nadino.dir/runtime/skmsg.cc.o" "gcc" "src/CMakeFiles/nadino.dir/runtime/skmsg.cc.o.d"
  "/root/repo/src/runtime/workload.cc" "src/CMakeFiles/nadino.dir/runtime/workload.cc.o" "gcc" "src/CMakeFiles/nadino.dir/runtime/workload.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/CMakeFiles/nadino.dir/sim/link.cc.o" "gcc" "src/CMakeFiles/nadino.dir/sim/link.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/nadino.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/nadino.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/CMakeFiles/nadino.dir/sim/resource.cc.o" "gcc" "src/CMakeFiles/nadino.dir/sim/resource.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/nadino.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/nadino.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/nadino.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/nadino.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/nadino.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/nadino.dir/sim/trace.cc.o.d"
  "/root/repo/src/transport/http.cc" "src/CMakeFiles/nadino.dir/transport/http.cc.o" "gcc" "src/CMakeFiles/nadino.dir/transport/http.cc.o.d"
  "/root/repo/src/transport/tcp_model.cc" "src/CMakeFiles/nadino.dir/transport/tcp_model.cc.o" "gcc" "src/CMakeFiles/nadino.dir/transport/tcp_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
