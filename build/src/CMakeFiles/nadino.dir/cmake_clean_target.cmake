file(REMOVE_RECURSE
  "libnadino.a"
)
