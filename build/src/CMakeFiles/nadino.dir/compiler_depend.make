# Empty compiler generated dependencies file for nadino.
# This may be replaced when dependencies are built.
