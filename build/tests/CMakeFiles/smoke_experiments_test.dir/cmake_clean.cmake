file(REMOVE_RECURSE
  "CMakeFiles/smoke_experiments_test.dir/smoke_experiments_test.cc.o"
  "CMakeFiles/smoke_experiments_test.dir/smoke_experiments_test.cc.o.d"
  "smoke_experiments_test"
  "smoke_experiments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
