file(REMOVE_RECURSE
  "CMakeFiles/verbs_semantics_test.dir/verbs_semantics_test.cc.o"
  "CMakeFiles/verbs_semantics_test.dir/verbs_semantics_test.cc.o.d"
  "verbs_semantics_test"
  "verbs_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
