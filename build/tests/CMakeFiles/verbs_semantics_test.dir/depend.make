# Empty dependencies file for verbs_semantics_test.
# This may be replaced when dependencies are built.
