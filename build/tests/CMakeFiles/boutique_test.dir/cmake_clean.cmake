file(REMOVE_RECURSE
  "CMakeFiles/boutique_test.dir/boutique_test.cc.o"
  "CMakeFiles/boutique_test.dir/boutique_test.cc.o.d"
  "boutique_test"
  "boutique_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boutique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
