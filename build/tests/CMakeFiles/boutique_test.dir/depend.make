# Empty dependencies file for boutique_test.
# This may be replaced when dependencies are built.
