# Empty compiler generated dependencies file for connection_manager_test.
# This may be replaced when dependencies are built.
