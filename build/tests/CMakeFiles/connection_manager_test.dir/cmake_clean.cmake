file(REMOVE_RECURSE
  "CMakeFiles/connection_manager_test.dir/connection_manager_test.cc.o"
  "CMakeFiles/connection_manager_test.dir/connection_manager_test.cc.o.d"
  "connection_manager_test"
  "connection_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connection_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
