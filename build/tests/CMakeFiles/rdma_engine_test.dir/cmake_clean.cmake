file(REMOVE_RECURSE
  "CMakeFiles/rdma_engine_test.dir/rdma_engine_test.cc.o"
  "CMakeFiles/rdma_engine_test.dir/rdma_engine_test.cc.o.d"
  "rdma_engine_test"
  "rdma_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
