# Empty compiler generated dependencies file for rdma_engine_test.
# This may be replaced when dependencies are built.
