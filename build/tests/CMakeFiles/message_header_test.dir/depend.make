# Empty dependencies file for message_header_test.
# This may be replaced when dependencies are built.
