file(REMOVE_RECURSE
  "CMakeFiles/message_header_test.dir/message_header_test.cc.o"
  "CMakeFiles/message_header_test.dir/message_header_test.cc.o.d"
  "message_header_test"
  "message_header_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
