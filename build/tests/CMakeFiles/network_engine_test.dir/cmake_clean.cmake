file(REMOVE_RECURSE
  "CMakeFiles/network_engine_test.dir/network_engine_test.cc.o"
  "CMakeFiles/network_engine_test.dir/network_engine_test.cc.o.d"
  "network_engine_test"
  "network_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
