# Empty dependencies file for network_engine_test.
# This may be replaced when dependencies are built.
