# Empty dependencies file for pool_cache_test.
# This may be replaced when dependencies are built.
