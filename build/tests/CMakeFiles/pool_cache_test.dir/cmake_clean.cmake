file(REMOVE_RECURSE
  "CMakeFiles/pool_cache_test.dir/pool_cache_test.cc.o"
  "CMakeFiles/pool_cache_test.dir/pool_cache_test.cc.o.d"
  "pool_cache_test"
  "pool_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
