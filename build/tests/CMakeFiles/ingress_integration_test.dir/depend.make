# Empty dependencies file for ingress_integration_test.
# This may be replaced when dependencies are built.
