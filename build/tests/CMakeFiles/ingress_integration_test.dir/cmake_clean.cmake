file(REMOVE_RECURSE
  "CMakeFiles/ingress_integration_test.dir/ingress_integration_test.cc.o"
  "CMakeFiles/ingress_integration_test.dir/ingress_integration_test.cc.o.d"
  "ingress_integration_test"
  "ingress_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingress_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
