# Empty dependencies file for random_chain_property_test.
# This may be replaced when dependencies are built.
