file(REMOVE_RECURSE
  "CMakeFiles/random_chain_property_test.dir/random_chain_property_test.cc.o"
  "CMakeFiles/random_chain_property_test.dir/random_chain_property_test.cc.o.d"
  "random_chain_property_test"
  "random_chain_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_chain_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
