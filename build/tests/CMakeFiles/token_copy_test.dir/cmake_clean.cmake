file(REMOVE_RECURSE
  "CMakeFiles/token_copy_test.dir/token_copy_test.cc.o"
  "CMakeFiles/token_copy_test.dir/token_copy_test.cc.o.d"
  "token_copy_test"
  "token_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
