# Empty dependencies file for token_copy_test.
# This may be replaced when dependencies are built.
