# Empty dependencies file for coldstart_test.
# This may be replaced when dependencies are built.
