file(REMOVE_RECURSE
  "CMakeFiles/coldstart_test.dir/coldstart_test.cc.o"
  "CMakeFiles/coldstart_test.dir/coldstart_test.cc.o.d"
  "coldstart_test"
  "coldstart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
