file(REMOVE_RECURSE
  "CMakeFiles/fig13_ingress.dir/fig13_ingress.cc.o"
  "CMakeFiles/fig13_ingress.dir/fig13_ingress.cc.o.d"
  "fig13_ingress"
  "fig13_ingress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ingress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
