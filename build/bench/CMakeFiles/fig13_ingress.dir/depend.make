# Empty dependencies file for fig13_ingress.
# This may be replaced when dependencies are built.
