file(REMOVE_RECURSE
  "CMakeFiles/fig17_tenant_scalability.dir/fig17_tenant_scalability.cc.o"
  "CMakeFiles/fig17_tenant_scalability.dir/fig17_tenant_scalability.cc.o.d"
  "fig17_tenant_scalability"
  "fig17_tenant_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_tenant_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
