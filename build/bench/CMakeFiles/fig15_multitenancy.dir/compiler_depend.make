# Empty compiler generated dependencies file for fig15_multitenancy.
# This may be replaced when dependencies are built.
