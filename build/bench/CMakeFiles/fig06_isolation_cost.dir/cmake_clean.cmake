file(REMOVE_RECURSE
  "CMakeFiles/fig06_isolation_cost.dir/fig06_isolation_cost.cc.o"
  "CMakeFiles/fig06_isolation_cost.dir/fig06_isolation_cost.cc.o.d"
  "fig06_isolation_cost"
  "fig06_isolation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_isolation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
