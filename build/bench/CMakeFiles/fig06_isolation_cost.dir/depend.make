# Empty dependencies file for fig06_isolation_cost.
# This may be replaced when dependencies are built.
