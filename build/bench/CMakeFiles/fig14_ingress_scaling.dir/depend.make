# Empty dependencies file for fig14_ingress_scaling.
# This may be replaced when dependencies are built.
