file(REMOVE_RECURSE
  "CMakeFiles/fig12_rdma_primitives.dir/fig12_rdma_primitives.cc.o"
  "CMakeFiles/fig12_rdma_primitives.dir/fig12_rdma_primitives.cc.o.d"
  "fig12_rdma_primitives"
  "fig12_rdma_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rdma_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
