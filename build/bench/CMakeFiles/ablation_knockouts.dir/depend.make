# Empty dependencies file for ablation_knockouts.
# This may be replaced when dependencies are built.
