file(REMOVE_RECURSE
  "CMakeFiles/ablation_knockouts.dir/ablation_knockouts.cc.o"
  "CMakeFiles/ablation_knockouts.dir/ablation_knockouts.cc.o.d"
  "ablation_knockouts"
  "ablation_knockouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_knockouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
