file(REMOVE_RECURSE
  "CMakeFiles/payload_scaling.dir/payload_scaling.cc.o"
  "CMakeFiles/payload_scaling.dir/payload_scaling.cc.o.d"
  "payload_scaling"
  "payload_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payload_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
