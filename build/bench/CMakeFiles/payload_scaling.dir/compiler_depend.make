# Empty compiler generated dependencies file for payload_scaling.
# This may be replaced when dependencies are built.
