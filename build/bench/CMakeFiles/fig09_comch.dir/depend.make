# Empty dependencies file for fig09_comch.
# This may be replaced when dependencies are built.
