file(REMOVE_RECURSE
  "CMakeFiles/fig09_comch.dir/fig09_comch.cc.o"
  "CMakeFiles/fig09_comch.dir/fig09_comch.cc.o.d"
  "fig09_comch"
  "fig09_comch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_comch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
