file(REMOVE_RECURSE
  "CMakeFiles/fig11_offpath_onpath.dir/fig11_offpath_onpath.cc.o"
  "CMakeFiles/fig11_offpath_onpath.dir/fig11_offpath_onpath.cc.o.d"
  "fig11_offpath_onpath"
  "fig11_offpath_onpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_offpath_onpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
