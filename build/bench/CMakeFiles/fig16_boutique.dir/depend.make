# Empty dependencies file for fig16_boutique.
# This may be replaced when dependencies are built.
