file(REMOVE_RECURSE
  "CMakeFiles/fig16_boutique.dir/fig16_boutique.cc.o"
  "CMakeFiles/fig16_boutique.dir/fig16_boutique.cc.o.d"
  "fig16_boutique"
  "fig16_boutique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_boutique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
