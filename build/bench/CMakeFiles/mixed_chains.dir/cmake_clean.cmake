file(REMOVE_RECURSE
  "CMakeFiles/mixed_chains.dir/mixed_chains.cc.o"
  "CMakeFiles/mixed_chains.dir/mixed_chains.cc.o.d"
  "mixed_chains"
  "mixed_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
