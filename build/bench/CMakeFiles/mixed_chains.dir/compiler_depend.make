# Empty compiler generated dependencies file for mixed_chains.
# This may be replaced when dependencies are built.
