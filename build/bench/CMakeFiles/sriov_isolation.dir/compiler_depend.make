# Empty compiler generated dependencies file for sriov_isolation.
# This may be replaced when dependencies are built.
