file(REMOVE_RECURSE
  "CMakeFiles/sriov_isolation.dir/sriov_isolation.cc.o"
  "CMakeFiles/sriov_isolation.dir/sriov_isolation.cc.o.d"
  "sriov_isolation"
  "sriov_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
