#include "src/core/experiments.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "src/rdma/control_plane.h"
#include "src/rdma/distributed_lock.h"
#include "src/runtime/chain.h"
#include "src/runtime/coldstart.h"
#include "src/runtime/message_header.h"
#include "src/runtime/openloop.h"
#include "src/sim/random.h"

namespace nadino {

namespace {
constexpr TenantId kEchoTenant = 1;
}  // namespace

// ---------------------------------------------------------------------------
// Shared echo-driver plumbing
// ---------------------------------------------------------------------------

namespace {

// Measures a closed-loop echo stream: the caller invokes RecordIssue() and
// RecordComplete() around each round trip; latencies correlate FIFO (RC
// transports deliver in order).
class EchoMeter {
 public:
  explicit EchoMeter(Env& env) : env_(&env) {}

  void RecordIssue() { issue_times_.push_back(env_->now()); }

  void RecordComplete() {
    if (!issue_times_.empty()) {
      latencies_.Record(env_->now() - issue_times_.front());
      issue_times_.pop_front();
    }
    ++completed_;
  }

  void ResetForMeasurement() {
    latencies_.Reset();
    measure_start_completed_ = completed_;
    measure_start_time_ = env_->now();
  }

  EchoResult Finish() {
    EchoResult result;
    result.completed = completed_ - measure_start_completed_;
    const double seconds = ToSeconds(env_->now() - measure_start_time_);
    result.rps = seconds > 0 ? static_cast<double>(result.completed) / seconds : 0.0;
    result.mean_latency_us = latencies_.MeanUs();
    result.p99_latency_us = ToUs(latencies_.Percentile(0.99));
    result.metrics_text = env_->metrics().SnapshotText();
    result.metrics_json = env_->metrics().SnapshotJson();
    return result;
  }

 private:
  Env* env_;
  std::deque<SimTime> issue_times_;
  LatencyHistogram latencies_;
  uint64_t completed_ = 0;
  uint64_t measure_start_completed_ = 0;
  SimTime measure_start_time_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Fig. 6 / Fig. 11 / Fig. 12: DNE echo
// ---------------------------------------------------------------------------

EchoResult RunDneEcho(const CostModel& cost, const DneEchoOptions& options) {
  ClusterConfig config;
  config.worker_nodes = 2;
  config.with_ingress_node = false;
  Cluster cluster(&cost, config);
  // Buffers must hold the payload plus the message header.
  cluster.CreateTenantPools(kEchoTenant, 8192,
                            std::max<size_t>(16 * 1024, options.payload + 4096));

  NadinoDataPlane::Options dp_options;
  dp_options.engine_kind = options.kind;
  dp_options.on_path = options.on_path;
  dp_options.extra_engine_cost = options.extra_engine_cost;
  NadinoDataPlane dataplane(cluster.env(), &cluster.routing(), dp_options);
  NetworkEngine* engine_a = dataplane.AddWorkerNode(cluster.worker(0));
  NetworkEngine* engine_b = dataplane.AddWorkerNode(cluster.worker(1));
  dataplane.AttachTenant(kEchoTenant, 1);
  dataplane.Start();

  const FunctionId client_fn = 11;
  const FunctionId server_fn = 12;
  cluster.routing().Place(client_fn, cluster.worker(0)->id());
  cluster.routing().Place(server_fn, cluster.worker(1)->id());

  Simulator& sim = cluster.sim();
  EchoMeter meter(cluster.env());

  if (options.via_functions) {
    // Fig. 6 setup: host functions behind Comch.
    FunctionRuntime client(client_fn, kEchoTenant, "echo-client", cluster.worker(0),
                           cluster.worker(0)->AllocateCore(),
                           cluster.worker(0)->tenants().PoolOfTenant(kEchoTenant));
    FunctionRuntime server(server_fn, kEchoTenant, "echo-server", cluster.worker(1),
                           cluster.worker(1)->AllocateCore(),
                           cluster.worker(1)->tenants().PoolOfTenant(kEchoTenant));
    dataplane.RegisterFunction(&client);
    dataplane.RegisterFunction(&server);
    TenantEchoLoad::Options load_options;
    load_options.payload_bytes = options.payload;
    load_options.window = options.concurrency;
    TenantEchoLoad load(cluster.env(), &dataplane, &client, &server, load_options);
    load.SetActive(true);
    sim.RunFor(options.warmup);
    load.mutable_latencies().Reset();
    const uint64_t before = load.completed();
    const SimTime start = sim.now();
    sim.RunFor(options.duration);
    EchoResult result;
    result.completed = load.completed() - before;
    result.rps = static_cast<double>(result.completed) / ToSeconds(sim.now() - start);
    result.mean_latency_us = load.latencies().MeanUs();
    result.p99_latency_us = ToUs(load.latencies().Percentile(0.99));
    result.metrics_text = cluster.metrics().SnapshotText();
    result.metrics_json = cluster.metrics().SnapshotJson();
    return result;
  }

  // Fig. 12 setup: the engines themselves are the echo endpoints.
  BufferPool* pool_a = cluster.worker(0)->tenants().PoolOfTenant(kEchoTenant);
  uint64_t next_request = 1;
  engine_b->SetEngineEndpoint(server_fn, [&](Buffer* buffer) {
    const std::optional<MessageHeader> header = ReadMessage(*buffer);
    if (!header.has_value()) {
      return;
    }
    MessageHeader reply = *header;
    reply.src = server_fn;
    reply.dst = client_fn;
    reply.flags = MessageHeader::kFlagResponse;
    RewriteHeader(buffer, reply);
    engine_b->SendFromEngine(kEchoTenant, buffer);
  });
  std::function<void()> issue_one = [&]() {
    Buffer* buffer = pool_a->Get(engine_a->owner_id());
    if (buffer == nullptr) {
      return;
    }
    MessageHeader header;
    header.src = client_fn;
    header.dst = server_fn;
    header.payload_length = options.payload;
    header.request_id = next_request++;
    WriteMessage(buffer, header);
    meter.RecordIssue();
    engine_a->SendFromEngine(kEchoTenant, buffer);
  };
  engine_a->SetEngineEndpoint(client_fn, [&](Buffer* buffer) {
    meter.RecordComplete();
    pool_a->Put(buffer, engine_a->owner_id());
    issue_one();
  });
  for (int i = 0; i < options.concurrency; ++i) {
    sim.Schedule(i * 100, [&]() { issue_one(); });
  }
  sim.RunFor(options.warmup);
  meter.ResetForMeasurement();
  sim.RunFor(options.duration);
  return meter.Finish();
}

// ---------------------------------------------------------------------------
// Fig. 6: native two-sided RDMA echo (functions drive verbs directly)
// ---------------------------------------------------------------------------

namespace {

// One side of the native echo: a core that posts and polls verbs directly.
class NativeEchoSide {
 public:
  NativeEchoSide(Env& env, Node* node, FifoResource* core, BufferPool* pool)
      : env_(&env), node_(node), core_(core), pool_(pool) {
    node_->rnic().mr_table().Register(pool_, kMrLocal);
  }

  void PostRecvs(int count) {
    for (int i = 0; i < count; ++i) {
      Buffer* buffer = pool_->Get(OwnerId::External(node_->id()));
      if (buffer == nullptr) {
        return;
      }
      node_->rnic().PostRecvBuffer(pool_, buffer, OwnerId::External(node_->id()),
                                   next_wr_id_++);
    }
  }

  void PostSend(QpNum qp, Buffer* buffer) {
    core_->Submit(env_->cost().native_post, [this, qp, buffer]() {
      pool_->Transfer(buffer, OwnerId::External(node_->id()), OwnerId::Rnic(node_->id()));
      const uint64_t wr = next_wr_id_++;
      in_flight_[wr] = buffer;
      node_->rnic().PostSend(qp, *buffer, wr);
    });
  }

  // Installs the completion handler; `on_recv(buffer)` runs after poll cost.
  void Install(std::function<void(Buffer*)> on_recv) {
    node_->rnic().cq().SetHandler([this, on_recv = std::move(on_recv)](const Completion& cqe) {
      if (cqe.opcode == RdmaOpcode::kSend) {
        const auto it = in_flight_.find(cqe.wr_id);
        if (it != in_flight_.end()) {
          pool_->Put(it->second, OwnerId::Rnic(node_->id()));
          in_flight_.erase(it);
        }
        return;
      }
      if (cqe.opcode != RdmaOpcode::kRecv) {
        return;
      }
      Buffer* buffer = cqe.buffer;
      core_->Submit(env_->cost().native_poll, [this, buffer, on_recv]() {
        pool_->Transfer(buffer, OwnerId::Rnic(node_->id()), OwnerId::External(node_->id()));
        PostRecvs(1);  // Keep the receive queue fed.
        on_recv(buffer);
      });
    });
  }

  BufferPool* pool() { return pool_; }
  Node* node() { return node_; }
  OwnerId app_owner() const { return OwnerId::External(node_->id()); }

 private:
  Env* env_;
  Node* node_;
  FifoResource* core_;
  BufferPool* pool_;
  uint64_t next_wr_id_ = 1;
  std::map<uint64_t, Buffer*> in_flight_;
};

}  // namespace

EchoResult RunNativeRdmaEcho(const CostModel& cost, const NativeEchoOptions& options) {
  ClusterConfig config;
  config.worker_nodes = 2;
  config.with_ingress_node = false;
  Cluster cluster(&cost, config);
  cluster.CreateTenantPools(kEchoTenant, 8192,
                            std::max<size_t>(16 * 1024, options.payload + 4096));
  Simulator& sim = cluster.sim();

  FifoResource* client_core = options.on_dpu_cores ? &cluster.worker(0)->dpu()->core(0)
                                                   : cluster.worker(0)->AllocateCore();
  FifoResource* server_core = options.on_dpu_cores ? &cluster.worker(1)->dpu()->core(0)
                                                   : cluster.worker(1)->AllocateCore();
  NativeEchoSide client(cluster.env(), cluster.worker(0), client_core,
                        cluster.worker(0)->tenants().PoolOfTenant(kEchoTenant));
  NativeEchoSide server(cluster.env(), cluster.worker(1), server_core,
                        cluster.worker(1)->tenants().PoolOfTenant(kEchoTenant));
  client.PostRecvs(options.concurrency + 8);
  server.PostRecvs(options.concurrency + 8);

  const auto [client_qp, server_qp] = RdmaEngine::CreateConnectedPair(
      cluster.worker(0)->rnic(), cluster.worker(1)->rnic(), kEchoTenant);

  EchoMeter meter(cluster.env());
  std::function<void()> issue_one = [&]() {
    Buffer* buffer = client.pool()->Get(client.app_owner());
    if (buffer == nullptr) {
      return;
    }
    buffer->FillPattern(0xE0E0, options.payload);
    meter.RecordIssue();
    client.PostSend(client_qp, buffer);
  };
  server.Install([&](Buffer* buffer) {
    server.PostSend(server_qp, buffer);  // Echo the buffer straight back.
  });
  client.Install([&](Buffer* buffer) {
    meter.RecordComplete();
    client.pool()->Put(buffer, client.app_owner());
    issue_one();
  });
  for (int i = 0; i < options.concurrency; ++i) {
    sim.Schedule(i * 100, [&]() { issue_one(); });
  }
  sim.RunFor(options.warmup);
  meter.ResetForMeasurement();
  sim.RunFor(options.duration);
  return meter.Finish();
}

// ---------------------------------------------------------------------------
// Fig. 12: one-sided write alternatives (OWRC-Best/Worst, OWDL)
// ---------------------------------------------------------------------------

namespace {

struct OneSidedParty {
  Node* node = nullptr;
  FifoResource* core = nullptr;  // A single DPU core per party, as in Fig. 12.
  BufferPool* local_pool = nullptr;
  BufferPool* rdma_pool = nullptr;  // Separate for OWRC; == local for OWDL.
};

}  // namespace

EchoResult RunOneSidedEcho(const CostModel& cost, const OneSidedEchoOptions& options) {
  ClusterConfig config;
  config.worker_nodes = 2;
  config.with_ingress_node = false;
  Cluster cluster(&cost, config);
  cluster.CreateTenantPools(kEchoTenant, 8192,
                            std::max<size_t>(16 * 1024, options.payload + 4096));
  Simulator& sim = cluster.sim();
  const bool owdl = options.variant == OneSidedVariant::kOwdl;
  const CopyLocality locality = options.variant == OneSidedVariant::kOwrcBest
                                    ? CopyLocality::kCacheHot
                                    : CopyLocality::kCacheCold;

  OneSidedParty parties[2];
  for (int i = 0; i < 2; ++i) {
    parties[i].node = cluster.worker(i);
    parties[i].core = &cluster.worker(i)->dpu()->core(0);
    parties[i].local_pool = cluster.worker(i)->tenants().PoolOfTenant(kEchoTenant);
    if (owdl) {
      // OWDL: one-sided writes land directly in the unified pool, guarded by
      // distributed locks (Fig. 3 (1)).
      parties[i].rdma_pool = parties[i].local_pool;
    } else {
      // OWRC: a dedicated RDMA-only pool isolated from local processing
      // (Fig. 3 (2)); arrival requires a receiver-side copy out of it.
      parties[i].rdma_pool = cluster.worker(i)->tenants().CreatePool(
          0x200 + static_cast<TenantId>(i), "rdma_only_" + std::to_string(i),
          TenantRegistry::PoolConfig{1024, 16 * 1024});
    }
    parties[i].node->rnic().mr_table().Register(parties[i].rdma_pool, kMrRemoteWrite);
  }

  const auto [qp_a, qp_b] = RdmaEngine::CreateConnectedPair(
      cluster.worker(0)->rnic(), cluster.worker(1)->rnic(), kEchoTenant);
  const QpNum qps[2] = {qp_a, qp_b};

  DistributedLockService locks_a(cluster.env(), &cluster.network(), parties[0].node->id(),
                                 parties[0].core);
  DistributedLockService locks_b(cluster.env(), &cluster.network(), parties[1].node->id(),
                                 parties[1].core);
  DistributedLockService* locks[2] = {&locks_a, &locks_b};

  EchoMeter meter(cluster.env());
  CopyEngine copier;
  uint64_t next_wr = 1;

  // Sources: each party owns one message buffer per outstanding slot.
  std::vector<Buffer*> client_sources;
  for (int i = 0; i < options.concurrency; ++i) {
    Buffer* b = parties[0].local_pool->Get(OwnerId::External(1));
    b->FillPattern(0x0D, options.payload);
    client_sources.push_back(b);
  }
  Buffer* server_source = parties[1].local_pool->Get(OwnerId::External(2));
  server_source->FillPattern(0x0E, options.payload);

  // Receiver-side discovery continuations, keyed by slot per target party.
  // The write-arrival hook fires when the RNIC deposits the payload; the
  // poller then finds it half a poll interval later on average and (OWRC)
  // copies it out of the RDMA-only pool.
  std::map<uint32_t, std::function<void()>> pending[2];
  for (int target = 0; target < 2; ++target) {
    parties[target].node->rnic().SetWriteArrivalHook(
        parties[target].rdma_pool->id(),
        [&, target](Buffer* /*buffer*/, uint32_t slot) {
          const auto it = pending[target].find(slot);
          if (it == pending[target].end()) {
            return;
          }
          std::function<void()> written = std::move(it->second);
          pending[target].erase(it);
          sim.Schedule(cost.owrc_poll_interval / 2, [&, target, slot,
                                                     written = std::move(written)]() {
            parties[target].core->Submit(cost.owrc_poll_iteration, [&, target, slot,
                                                                    written]() {
              if (!owdl) {
                Buffer* rdma_buffer = parties[target].rdma_pool->Resolve(
                    BufferDescriptor{parties[target].rdma_pool->id(), slot, 0, 0});
                Buffer* local = parties[target].local_pool->Get(OwnerId::External(99));
                if (local != nullptr) {
                  const SimDuration copy_cost = copier.Copy(*rdma_buffer, local, locality);
                  parties[target].core->Submit(copy_cost, [&, target, local, written]() {
                    parties[target].local_pool->Put(local, OwnerId::External(99));
                    written();
                  });
                  return;
                }
              }
              written();
            });
          });
        });
  }

  // One-sided write with the variant's full critical path, then `written`.
  // `writer` / `target` are party indices.
  std::function<void(int, int, Buffer*, uint32_t, std::function<void()>)> do_write =
      [&](int writer, int target, Buffer* source, uint32_t slot, std::function<void()> written) {
        auto post = [&, writer, target, source, slot, written]() {
          pending[target][slot] = written;
          parties[writer].core->Submit(cost.dne_tx_stage, [&, writer, target, source, slot]() {
            parties[writer].node->rnic().PostWrite(qps[writer], *source,
                                                   parties[target].rdma_pool->id(), slot,
                                                   next_wr++);
          });
        };
        if (owdl) {
          // Acquire the remote slot's lock before writing; release after.
          const uint64_t lock_id = (static_cast<uint64_t>(target) << 32) | slot;
          locks[target]->Acquire(parties[writer].node->id(), lock_id,
                                 [&, writer, target, lock_id, post]() {
                                   post();
                                   // Release off the critical path.
                                   sim.Schedule(FromUs(2.0), [&, writer, target, lock_id]() {
                                     locks[target]->Release(parties[writer].node->id(),
                                                            lock_id);
                                   });
                                 });
        } else {
          post();
        }
      };

  std::function<void(int)> issue_one = [&](int slot) {
    meter.RecordIssue();
    do_write(0, 1, client_sources[static_cast<size_t>(slot)], static_cast<uint32_t>(slot),
             [&, slot]() {
               // Server processes and echoes back into the client's pool.
               do_write(1, 0, server_source, static_cast<uint32_t>(slot), [&, slot]() {
                 meter.RecordComplete();
                 issue_one(slot);
               });
             });
  };
  for (int i = 0; i < options.concurrency; ++i) {
    sim.Schedule(i * 200, [&, i]() { issue_one(i); });
  }
  sim.RunFor(options.warmup);
  meter.ResetForMeasurement();
  sim.RunFor(options.duration);
  return meter.Finish();
}

// ---------------------------------------------------------------------------
// Fig. 9: Comch variants
// ---------------------------------------------------------------------------

ComchBenchResult RunComchBench(const CostModel& cost, const ComchBenchOptions& options) {
  ClusterConfig config;
  config.worker_nodes = 1;
  config.with_ingress_node = false;
  Cluster cluster(&cost, config);
  Simulator& sim = cluster.sim();
  Node* node = cluster.worker(0);

  ComchServer server(cluster.env(), &node->dpu()->core(0),
                     /*engine_managed_polling=*/false, node->id());
  // The single-core DNE echoes descriptors straight back.
  server.SetReceiver([&server](FunctionId fn, const BufferDescriptor& desc) {
    server.SendToHost(fn, desc);
  });

  struct Fn {
    FifoResource* core = nullptr;
    SimTime issued_at = 0;
  };
  std::vector<Fn> fns(static_cast<size_t>(options.num_functions));
  LatencyHistogram latencies;
  uint64_t completed = 0;
  uint64_t measured_from = 0;
  SimTime measure_start = 0;

  for (int i = 0; i < options.num_functions; ++i) {
    fns[static_cast<size_t>(i)].core = node->AllocateCore();
  }
  std::function<void(int)> issue = [&](int i) {
    Fn& fn = fns[static_cast<size_t>(i)];
    fn.issued_at = sim.now();
    server.SendToDpu(static_cast<FunctionId>(i), BufferDescriptor{0, 0, 16, 0});
  };
  for (int i = 0; i < options.num_functions; ++i) {
    server.ConnectEndpoint(static_cast<FunctionId>(i), options.variant,
                           fns[static_cast<size_t>(i)].core,
                           [&, i](const BufferDescriptor&) {
                             latencies.Record(sim.now() - fns[static_cast<size_t>(i)].issued_at);
                             ++completed;
                             issue(i);
                           });
  }
  for (int i = 0; i < options.num_functions; ++i) {
    sim.Schedule(i * 50, [&, i]() { issue(i); });
  }
  sim.RunFor(options.warmup);
  latencies.Reset();
  measured_from = completed;
  measure_start = sim.now();
  sim.RunFor(options.duration);

  ComchBenchResult result;
  result.mean_rtt_us = latencies.MeanUs();
  result.descriptor_rps =
      static_cast<double>(completed - measured_from) / ToSeconds(sim.now() - measure_start);
  result.metrics_text = cluster.metrics().SnapshotText();
  result.metrics_json = cluster.metrics().SnapshotJson();
  return result;
}

// ---------------------------------------------------------------------------
// Figs. 13 / 14: ingress designs
// ---------------------------------------------------------------------------

IngressEchoResult RunIngressEcho(const CostModel& cost, const IngressEchoOptions& options) {
  ClusterConfig config;
  config.worker_nodes = 1;
  config.with_ingress_node = true;
  config.seed = options.seed;
  Cluster cluster(&cost, config);
  cluster.CreateTenantPools(kEchoTenant);
  Simulator& sim = cluster.sim();
  for (const FaultSpec& spec : options.faults) {
    cluster.env().faults().Install(spec);
  }
  for (const auto& [tenant, target] : options.slos) {
    cluster.env().slos().Register(tenant, target);
  }
  for (const auto& [tenant, policy] : options.retries) {
    cluster.env().slos().SetRetryPolicy(tenant, policy);
  }

  NadinoDataPlane::Options dp_options;
  NadinoDataPlane dataplane(cluster.env(), &cluster.routing(), dp_options);
  NetworkEngine* engine = nullptr;
  if (options.mode == IngressMode::kNadino) {
    engine = dataplane.AddWorkerNode(cluster.worker(0));
    dataplane.AttachTenant(kEchoTenant, 1);
    dataplane.Start();
  }

  ChainExecutor executor(cluster.env(), &dataplane);
  const ChainId echo_chain = 10;
  const FunctionId echo_fn = 21;
  ChainSpec chain;
  chain.id = echo_chain;
  chain.tenant = kEchoTenant;
  chain.name = "http-echo";
  chain.entry = echo_fn;
  chain.entry_request_payload = options.payload;
  FunctionBehavior echo;
  echo.compute = 5 * kMicrosecond;
  echo.response_payload = options.payload;
  chain.behaviors[echo_fn] = echo;
  executor.RegisterChain(chain);

  FunctionRuntime server(echo_fn, kEchoTenant, "http-echo", cluster.worker(0),
                         cluster.worker(0)->AllocateCore(),
                         cluster.worker(0)->tenants().PoolOfTenant(kEchoTenant));
  dataplane.RegisterFunction(&server);
  executor.AttachFunction(&server);

  IngressGateway::Options gw_options;
  gw_options.mode = options.mode;
  gw_options.tenant = kEchoTenant;
  gw_options.initial_workers = options.initial_workers;
  gw_options.max_workers = options.max_workers;
  gw_options.autoscale = options.autoscale;
  IngressGateway gateway(cluster.env(), cluster.ingress(), &cluster.routing(), &dataplane,
                         &executor, gw_options);
  gateway.AddRoute("/echo", echo_chain, echo_fn);
  if (options.mode == IngressMode::kNadino) {
    gateway.ConnectWorkerEngines({engine});
  } else {
    gateway.ConnectWorkerPortals({cluster.worker(0)});
  }

  ClosedLoopClients::Options client_options;
  client_options.num_clients = options.ramp_interval > 0 ? 1 : options.clients;
  client_options.path = "/echo";
  client_options.payload_bytes = options.payload;
  ClosedLoopClients clients(cluster.env(), &gateway, client_options);
  clients.Start();
  if (options.ramp_interval > 0) {
    for (int i = 1; i < options.clients; ++i) {
      sim.Schedule(options.ramp_interval * i, [&clients]() { clients.AddClient(); });
    }
  }

  IngressEchoResult result;
  PeriodicSampler sampler(cluster.env(), options.sample_period);
  sampler.AddRate(&clients.rate());
  sampler.AddHook([&](SimTime now) {
    result.cpu_series.Record(now, gateway.WorkerUtilizationCores());
    if (!options.autoscale) {
      gateway.ResetUtilizationWindows();  // The autoscaler resets otherwise.
    }
    const auto& samples = clients.rate().series().samples();
    if (!samples.empty()) {
      result.rps_series.Record(now, samples.back().value);
    }
  });
  sampler.Start();

  sim.RunFor(options.warmup);
  clients.mutable_latencies().Reset();
  const uint64_t before = clients.completed();
  const SimTime start = sim.now();
  sim.RunFor(options.duration);

  result.mean_latency_us = clients.latencies().MeanUs();
  result.p99_latency_us = ToUs(clients.latencies().Percentile(0.99));
  result.rps = static_cast<double>(clients.completed() - before) / ToSeconds(sim.now() - start);
  result.scale_ups = gateway.stats().scale_ups;
  result.scale_downs = gateway.stats().scale_downs;
  result.final_workers = gateway.active_workers();
  result.sim_events = sim.events_processed();
  result.metrics_text = cluster.metrics().SnapshotText();
  result.metrics_json = cluster.metrics().SnapshotJson();
  return result;
}

// ---------------------------------------------------------------------------
// Figs. 15 / 17: multi-tenancy
// ---------------------------------------------------------------------------

MultiTenantResult RunMultiTenant(const CostModel& cost, const MultiTenantOptions& options) {
  ClusterConfig config;
  config.worker_nodes = 2;
  config.with_ingress_node = false;
  config.seed = options.seed;
  Cluster cluster(&cost, config);
  Simulator& sim = cluster.sim();
  for (const FaultSpec& spec : options.faults) {
    cluster.env().faults().Install(spec);
  }
  for (const auto& [tenant, target] : options.slos) {
    cluster.env().slos().Register(tenant, target);
  }
  for (const auto& [tenant, policy] : options.retries) {
    cluster.env().slos().SetRetryPolicy(tenant, policy);
  }

  NadinoDataPlane::Options dp_options;
  dp_options.use_dwrr = options.use_dwrr;
  dp_options.extra_engine_cost = options.extra_engine_cost;
  NadinoDataPlane dataplane(cluster.env(), &cluster.routing(), dp_options);
  std::vector<NetworkEngine*> engines;
  engines.push_back(dataplane.AddWorkerNode(cluster.worker(0)));
  engines.push_back(dataplane.AddWorkerNode(cluster.worker(1)));

  std::vector<std::unique_ptr<FunctionRuntime>> functions;
  std::vector<std::unique_ptr<TenantEchoLoad>> loads;
  for (const TenantScenario& scenario : options.tenants) {
    cluster.CreateTenantPools(scenario.tenant, 4096, 8192);
    dataplane.AttachTenant(scenario.tenant, scenario.weight);
  }
  dataplane.Start();
  for (const TenantScenario& scenario : options.tenants) {
    const FunctionId client_fn = 100 + scenario.tenant;
    const FunctionId server_fn = 200 + scenario.tenant;
    auto client = std::make_unique<FunctionRuntime>(
        client_fn, scenario.tenant, "client", cluster.worker(0),
        cluster.worker(0)->AllocateCore(),
        cluster.worker(0)->tenants().PoolOfTenant(scenario.tenant));
    auto server = std::make_unique<FunctionRuntime>(
        server_fn, scenario.tenant, "server", cluster.worker(1),
        cluster.worker(1)->AllocateCore(),
        cluster.worker(1)->tenants().PoolOfTenant(scenario.tenant));
    dataplane.RegisterFunction(client.get());
    dataplane.RegisterFunction(server.get());
    TenantEchoLoad::Options load_options;
    load_options.payload_bytes = scenario.payload;
    load_options.window = scenario.window;
    auto load = std::make_unique<TenantEchoLoad>(cluster.env(), &dataplane, client.get(),
                                                 server.get(), load_options);
    load->ScheduleActive(scenario.start, scenario.stop);
    functions.push_back(std::move(client));
    functions.push_back(std::move(server));
    loads.push_back(std::move(load));
  }

  MultiTenantResult result;
  PeriodicSampler sampler(cluster.env(), options.sample_period);
  for (size_t i = 0; i < loads.size(); ++i) {
    sampler.AddRate(&loads[i]->rate());
  }
  sampler.AddHook([&](SimTime now) {
    for (const auto& load : loads) {
      const auto& samples = load->rate().series().samples();
      if (!samples.empty()) {
        result.tenant_rps[load->tenant()].Record(now, samples.back().value);
      }
    }
  });
  sampler.Start();

  sim.RunFor(options.duration);
  uint64_t total = 0;
  for (const auto& load : loads) {
    result.tenant_completed[load->tenant()] = load->completed();
    total += load->completed();
  }
  result.aggregate_rps = static_cast<double>(total) / ToSeconds(options.duration);
  // Fairness accounting comes from the registry, not scheduler spelunking:
  // engine_tenant_served{engine,node,tenant} callbacks sample each engine's
  // TX scheduler, and dataplane_drops is the shared drop counter.
  const MetricsRegistry& metrics = cluster.metrics();
  for (const TenantScenario& scenario : options.tenants) {
    uint64_t served = 0;
    for (NetworkEngine* engine : engines) {
      MetricLabels labels = MetricLabels::Node(engine->node()->id());
      labels.engine = static_cast<int64_t>(engine->engine_id());
      labels.tenant = static_cast<int64_t>(scenario.tenant);
      served += metrics.ValueOf("engine_tenant_served", labels);
    }
    result.tenant_served[scenario.tenant] = served;
  }
  result.drops = metrics.ValueOf("dataplane_drops");
  result.sim_events = sim.events_processed();
  result.metrics_text = metrics.SnapshotText();
  result.metrics_json = metrics.SnapshotJson();
  return result;
}

// ---------------------------------------------------------------------------
// Tenant churn: elastic control plane (DESIGN.md §3f)
// ---------------------------------------------------------------------------

TenantChurnResult RunTenantChurn(const CostModel& cost, const TenantChurnOptions& options) {
  constexpr TenantId kChurnTenantBase = 10;
  constexpr FunctionId kClientFnBase = 10000;
  constexpr FunctionId kServerFnBase = 20000;

  ClusterConfig config;
  config.worker_nodes = 2;
  config.with_ingress_node = false;
  config.seed = options.seed;
  Cluster cluster(&cost, config);
  Simulator& sim = cluster.sim();

  NadinoDataPlane::Options dp_options;
  dp_options.connect_policy = options.policy;
  dp_options.establish_batch = options.establish_batch;
  dp_options.prewarm_connections = options.prewarm_connections;
  dp_options.instrument_control_plane = true;
  // Small per-tenant pools: hundreds of tenants are resident at once, and the
  // churn traffic is a narrow closed-loop echo, not a bandwidth test.
  dp_options.initial_recv_buffers = 8;
  NadinoDataPlane dataplane(cluster.env(), &cluster.routing(), dp_options);
  dataplane.AddWorkerNode(cluster.worker(0));
  dataplane.AddWorkerNode(cluster.worker(1));
  dataplane.Start();

  ColdStartManager::Options cold_options;
  cold_options.keep_warm_timeout = options.keep_warm_timeout;
  cold_options.sweep_period = options.sweep_period;
  ColdStartManager coldstart(cluster.env(), cold_options);

  struct ChurnTenant {
    std::unique_ptr<FunctionRuntime> client;
    std::unique_ptr<FunctionRuntime> server;
    std::unique_ptr<TenantEchoLoad> load;
  };
  std::vector<std::unique_ptr<ChurnTenant>> slots(static_cast<size_t>(options.tenants));
  std::map<FunctionId, TenantId> server_tenants;
  TenantChurnResult result;
  LatencyHistogram ttfb;

  // Instance retirement is the departure signal: once the sweeper retires a
  // tenant's (idle) server, the tenant's QPs on every node are destroyed and
  // their RNIC context reclaimed.
  coldstart.SetRetireHook([&](FunctionId fn) {
    const auto it = server_tenants.find(fn);
    if (it == server_tenants.end()) {
      return;
    }
    const TenantId tenant = it->second;
    server_tenants.erase(it);
    ++result.tenants_departed;
    dataplane.DetachTenant(tenant);
  });

  // Pre-generated Poisson schedule: equal seeds replay identical churn.
  Rng rng(options.seed);
  SimTime next_arrival = 0;
  for (int i = 0; i < options.tenants; ++i) {
    next_arrival += static_cast<SimTime>(
        rng.Exponential(static_cast<double>(options.mean_interarrival)));
    const SimDuration lifetime = std::max<SimDuration>(
        static_cast<SimDuration>(rng.Exponential(static_cast<double>(options.mean_lifetime))),
        5 * kMillisecond);
    const SimTime arrival = next_arrival;
    if (arrival >= options.duration) {
      break;
    }
    sim.Schedule(arrival, [&, i, arrival, lifetime]() {
      const TenantId tenant = kChurnTenantBase + static_cast<TenantId>(i);
      cluster.CreateTenantPools(tenant, 32, 2048);
      // Eager: all-pairs prewarm now; traffic is gated on the returned setup
      // latency. Lazy: returns 0, the first send pays the handshake inline.
      const SimDuration setup = dataplane.AttachTenant(tenant, 1);
      auto slot = std::make_unique<ChurnTenant>();
      slot->client = std::make_unique<FunctionRuntime>(
          kClientFnBase + static_cast<FunctionId>(i), tenant, "client", cluster.worker(0),
          cluster.worker(0)->AllocateCore(),
          cluster.worker(0)->tenants().PoolOfTenant(tenant));
      slot->server = std::make_unique<FunctionRuntime>(
          kServerFnBase + static_cast<FunctionId>(i), tenant, "server", cluster.worker(1),
          cluster.worker(1)->AllocateCore(),
          cluster.worker(1)->tenants().PoolOfTenant(tenant));
      dataplane.RegisterFunction(slot->client.get());
      dataplane.RegisterFunction(slot->server.get());
      TenantEchoLoad::Options load_options;
      load_options.payload_bytes = options.payload;
      load_options.window = options.window;
      slot->load = std::make_unique<TenantEchoLoad>(cluster.env(), &dataplane,
                                                    slot->client.get(), slot->server.get(),
                                                    load_options);
      // Wrap the server AFTER the echo load installed its handler, then
      // prewarm the instance: TTFB isolates the control plane, not the
      // container boot, and the keep-warm clock starts ticking.
      coldstart.Manage(slot->server.get());
      coldstart.Prewarm(slot->server->id());
      server_tenants[slot->server->id()] = tenant;
      slot->load->SetOnFirstResponse([&, arrival]() {
        ttfb.Record(sim.now() - arrival);
        ++result.tenants_first_byte;
      });
      slot->load->ScheduleActive(sim.now() + setup, arrival + lifetime);
      ++result.tenants_arrived;
      slots[static_cast<size_t>(i)] = std::move(slot);
    });
  }

  sim.RunFor(options.duration);

  for (const auto& slot : slots) {
    if (slot != nullptr && slot->load != nullptr) {
      result.completed += slot->load->completed();
    }
  }
  result.ttfb_mean_ms = ttfb.MeanUs() / 1000.0;
  result.ttfb_p99_ms = static_cast<double>(ttfb.Percentile(0.99)) / kMillisecond;
  for (int node = 0; node < 2; ++node) {
    if (const ConnectionService* service = cluster.worker(node)->connections_or_null()) {
      const ConnectionService::Stats stats = service->stats();
      result.setup_verbs += stats.create_verbs + stats.modify_verbs;
      result.destroy_verbs += stats.destroy_verbs;
      result.connects += stats.connects;
      result.establishes += stats.establishes;
      result.destroys += stats.destroys;
    }
  }
  if (result.completed > 0) {
    result.verbs_per_invocation =
        static_cast<double>(result.setup_verbs + result.destroy_verbs) /
        static_cast<double>(result.completed);
  }
  result.sim_events = sim.events_processed();
  result.metrics_text = cluster.metrics().SnapshotText();
  result.metrics_json = cluster.metrics().SnapshotJson();
  return result;
}

// ---------------------------------------------------------------------------
// Fig. 16 / Table 2: Online Boutique
// ---------------------------------------------------------------------------

std::string SystemName(SystemUnderTest system) {
  switch (system) {
    case SystemUnderTest::kNadinoDne:
      return "NADINO (DNE)";
    case SystemUnderTest::kNadinoCne:
      return "NADINO (CNE)";
    case SystemUnderTest::kFuyaoF:
      return "FUYAO-F";
    case SystemUnderTest::kFuyaoK:
      return "FUYAO-K";
    case SystemUnderTest::kJunction:
      return "Junction";
    case SystemUnderTest::kSpright:
      return "SPRIGHT";
    case SystemUnderTest::kNightcore:
      return "NightCore";
  }
  return "unknown";
}

BoutiqueResult RunBoutique(const CostModel& cost, const BoutiqueOptions& options) {
  const bool is_nadino = options.system == SystemUnderTest::kNadinoDne ||
                         options.system == SystemUnderTest::kNadinoCne;
  const bool single_node = options.system == SystemUnderTest::kNightcore;

  ClusterConfig config;
  config.worker_nodes = single_node ? 1 : 2;
  config.host_cores_per_node = single_node ? 14 : 16;
  config.with_ingress_node = true;
  config.seed = options.seed;
  Cluster cluster(&cost, config);
  const BoutiqueSpec spec = BuildBoutiqueSpec(kEchoTenant);
  cluster.CreateTenantPools(spec.tenant);
  Simulator& sim = cluster.sim();

  std::unique_ptr<NadinoDataPlane> nadino_dp;
  std::unique_ptr<BaselineDataPlane> baseline_dp;
  DataPlane* dataplane = nullptr;
  std::vector<NetworkEngine*> engines;

  if (is_nadino) {
    NadinoDataPlane::Options dp_options;
    dp_options.engine_kind = options.system == SystemUnderTest::kNadinoDne
                                 ? NetworkEngine::Kind::kDne
                                 : NetworkEngine::Kind::kCne;
    nadino_dp = std::make_unique<NadinoDataPlane>(cluster.env(), &cluster.routing(), dp_options);
    for (int i = 0; i < cluster.worker_count(); ++i) {
      engines.push_back(nadino_dp->AddWorkerNode(cluster.worker(i)));
    }
    nadino_dp->AttachTenant(spec.tenant, 1);
    nadino_dp->Start();
    dataplane = nadino_dp.get();
  } else {
    BaselineSystem system = BaselineSystem::kSpright;
    switch (options.system) {
      case SystemUnderTest::kSpright:
        system = BaselineSystem::kSpright;
        break;
      case SystemUnderTest::kNightcore:
        system = BaselineSystem::kNightcore;
        break;
      case SystemUnderTest::kFuyaoF:
      case SystemUnderTest::kFuyaoK:
        system = BaselineSystem::kFuyao;
        break;
      case SystemUnderTest::kJunction:
        system = BaselineSystem::kJunction;
        break;
      default:
        break;
    }
    baseline_dp = std::make_unique<BaselineDataPlane>(cluster.env(), &cluster.routing(), system,
                                                      spec.tenant);
    for (int i = 0; i < cluster.worker_count(); ++i) {
      baseline_dp->AddWorkerNode(cluster.worker(i));
    }
    baseline_dp->Start();
    dataplane = baseline_dp.get();
  }

  ChainExecutor executor(cluster.env(), dataplane);
  for (const ChainSpec& chain : spec.chains) {
    executor.RegisterChain(chain);
  }
  std::vector<std::unique_ptr<FunctionRuntime>> functions;
  for (const BoutiqueFunction& bf : spec.functions) {
    Node* node = cluster.worker(single_node ? 0 : bf.placement_group);
    auto fn = std::make_unique<FunctionRuntime>(bf.id, spec.tenant, bf.name, node,
                                                node->AllocateCore(),
                                                node->tenants().PoolOfTenant(spec.tenant));
    dataplane->RegisterFunction(fn.get());
    executor.AttachFunction(fn.get());
    functions.push_back(std::move(fn));
  }

  IngressGateway::Options gw_options;
  switch (options.system) {
    case SystemUnderTest::kNadinoDne:
    case SystemUnderTest::kNadinoCne:
      gw_options.mode = IngressMode::kNadino;
      break;
    case SystemUnderTest::kFuyaoK:
    case SystemUnderTest::kNightcore:
      gw_options.mode = IngressMode::kKIngress;
      break;
    default:
      gw_options.mode = IngressMode::kFIngress;
      break;
  }
  gw_options.tenant = spec.tenant;
  // One gateway worker core for every system, matching the one-core ingress
  // assignment of section 4.1.3.
  gw_options.initial_workers = 1;
  if (options.system == SystemUnderTest::kNightcore) {
    // NightCore ships its own kernel-based gateway; the worker-node side also
    // terminates with the kernel stack.
    gw_options.worker_stack = TcpStackKind::kKernel;
  }
  IngressGateway gateway(cluster.env(), cluster.ingress(), &cluster.routing(), dataplane,
                         &executor, gw_options);
  gateway.AddRoute("/home", kHomeQueryChain, kFrontend);
  gateway.AddRoute("/cart", kViewCartChain, kFrontend);
  gateway.AddRoute("/product", kProductQueryChain, kFrontend);
  gateway.AddRoute("/checkout", kCheckoutChain, kFrontend);
  if (gw_options.mode == IngressMode::kNadino) {
    gateway.ConnectWorkerEngines(engines);
  } else {
    std::vector<Node*> worker_nodes;
    for (int i = 0; i < cluster.worker_count(); ++i) {
      worker_nodes.push_back(cluster.worker(i));
    }
    gateway.ConnectWorkerPortals(worker_nodes);
  }

  std::string path = "/home";
  if (options.chain == kViewCartChain) {
    path = "/cart";
  } else if (options.chain == kProductQueryChain) {
    path = "/product";
  } else if (options.chain == kCheckoutChain) {
    path = "/checkout";
  }
  const ChainSpec* chain_spec = nullptr;
  for (const ChainSpec& c : spec.chains) {
    if (c.id == options.chain) {
      chain_spec = &c;
    }
  }
  assert(chain_spec != nullptr);

  ClosedLoopClients::Options client_options;
  client_options.num_clients = options.clients;
  client_options.path = path;
  client_options.payload_bytes = chain_spec->entry_request_payload;
  ClosedLoopClients clients(cluster.env(), &gateway, client_options);
  clients.Start();

  sim.RunFor(options.warmup);
  clients.mutable_latencies().Reset();
  for (int i = 0; i < cluster.worker_count(); ++i) {
    cluster.worker(i)->ResetUtilizationWindows();
  }
  const uint64_t before = clients.completed();
  const SimTime start = sim.now();
  sim.RunFor(options.duration);

  BoutiqueResult result;
  result.rps = static_cast<double>(clients.completed() - before) / ToSeconds(sim.now() - start);
  result.mean_latency_ms = clients.latencies().MeanUs() / 1000.0;
  result.p99_latency_ms = ToUs(clients.latencies().Percentile(0.99)) / 1000.0;
  result.errors = executor.errors() + dataplane->stats().drops;
  if (is_nadino) {
    double engine_cores = 0.0;
    double dpu_cores = 0.0;
    for (NetworkEngine* engine : engines) {
      if (engine->kind() == NetworkEngine::Kind::kDne) {
        dpu_cores += engine->worker_core()->WindowUtilization();
        dpu_cores += engine->node()->dpu()->core(1).WindowUtilization();
      } else {
        engine_cores += engine->worker_core()->WindowUtilization();
      }
    }
    result.dataplane_cpu_cores = engine_cores;
    result.dpu_cores = dpu_cores;
  } else {
    result.dataplane_cpu_cores =
        baseline_dp->EngineUtilizationCores() + gateway.PortalUtilizationCores();
    result.dpu_cores = 0.0;
  }
  result.metrics_text = cluster.metrics().SnapshotText();
  result.metrics_json = cluster.metrics().SnapshotJson();
  return result;
}

// ---------------------------------------------------------------------------
// N-node scaling (DESIGN.md §3e)
// ---------------------------------------------------------------------------

namespace {

// Per-tenant pipeline: fn_i calls fn_{i+1}; the last stage is the leaf.
ChainSpec BuildPipelineChain(TenantId tenant, FunctionId base, int stages,
                             uint32_t payload) {
  ChainSpec spec;
  spec.id = static_cast<ChainId>(tenant);
  spec.tenant = tenant;
  spec.name = "pipeline_" + std::to_string(tenant);
  spec.entry = base;
  spec.entry_request_payload = payload;
  for (int s = 0; s < stages; ++s) {
    FunctionBehavior behavior;
    behavior.compute = 5 * kMicrosecond;
    behavior.response_payload = payload;
    if (s + 1 < stages) {
      behavior.calls.push_back(CallSpec{base + static_cast<FunctionId>(s) + 1, payload});
    }
    spec.behaviors[base + static_cast<FunctionId>(s)] = behavior;
  }
  return spec;
}

}  // namespace

NodeScaleResult RunNodeScale(const CostModel& cost, const NodeScaleOptions& options) {
  ClusterConfig config;
  config.worker_nodes = options.nodes;
  config.with_ingress_node = false;
  config.seed = options.seed;
  Cluster cluster(&cost, config);
  Simulator& sim = cluster.sim();

  PlacementOptions placement;
  placement.spread = options.spread;
  placement.utilization_weights = options.utilization_weights;
  placement.rebalance = options.rebalance;
  placement.rebalancer.period = options.rebalance_period;
  cluster.EnablePlacement(placement);

  NadinoDataPlane dataplane(cluster.env(), &cluster.routing(), {});
  std::vector<NodeId> worker_ids;
  std::map<NodeId, Node*> node_by_id;
  for (int i = 0; i < cluster.worker_count(); ++i) {
    Node* node = cluster.worker(i);
    dataplane.AddWorkerNode(node);
    worker_ids.push_back(node->id());
    node_by_id[node->id()] = node;
  }

  std::vector<ChainSpec> chains;
  for (int t = 0; t < options.tenants; ++t) {
    const TenantId tenant = static_cast<TenantId>(t + 1);
    cluster.CreateTenantPools(tenant, 4096, 8192);
    dataplane.AttachTenant(tenant, 1);
    chains.push_back(BuildPipelineChain(tenant, 1000 + static_cast<FunctionId>(t) * 100,
                                        options.stages, options.payload));
  }
  dataplane.Start();

  ChainExecutor executor(cluster.env(), &dataplane);
  NodeScaleResult result;
  std::vector<std::unique_ptr<FunctionRuntime>> functions;
  std::vector<std::unique_ptr<FunctionRuntime>> clients;
  const int replicas = std::max(1, std::min(options.replicas, options.nodes));
  for (const ChainSpec& spec : chains) {
    executor.RegisterChain(spec);
    // Locality-aware primaries via the ChainPlacer, then `replicas - 1`
    // additional placements per stage on the following nodes (dense wrap) so
    // the spreader has live alternatives everywhere.
    const std::map<FunctionId, NodeId> assignment =
        ChainPlacer::PlaceChain(spec, worker_ids, options.capacity_per_node);
    result.chain_crossing_score += ChainPlacer::ScoreAssignment(spec, assignment);
    for (const auto& [fn_id, primary] : assignment) {
      const size_t primary_pos = static_cast<size_t>(
          std::find(worker_ids.begin(), worker_ids.end(), primary) - worker_ids.begin());
      for (int r = 0; r < replicas; ++r) {
        Node* node = node_by_id[worker_ids[(primary_pos + static_cast<size_t>(r)) %
                                           worker_ids.size()]];
        functions.push_back(std::make_unique<FunctionRuntime>(
            fn_id, spec.tenant, spec.name + "_fn" + std::to_string(fn_id), node,
            node->AllocateCore(), node->tenants().PoolOfTenant(spec.tenant)));
        dataplane.RegisterFunction(functions.back().get());
        executor.AttachFunction(functions.back().get());
      }
    }
  }

  // One open-loop client per tenant, colocated with its entry's primary.
  LatencyHistogram latencies;
  std::map<uint64_t, SimTime> issue_times;
  for (const ChainSpec& spec : chains) {
    Node* home = node_by_id[cluster.routing().NodeOf(spec.entry)];
    clients.push_back(std::make_unique<FunctionRuntime>(
        900 + static_cast<FunctionId>(spec.tenant), spec.tenant, "client", home,
        home->AllocateCore(), home->tenants().PoolOfTenant(spec.tenant)));
    FunctionRuntime* client = clients.back().get();
    dataplane.RegisterFunction(client);
    client->SetHandler([&, client](FunctionRuntime& fn, Buffer* buffer) {
      const auto header = ReadMessage(*buffer);
      if (header.has_value() && header->is_response()) {
        const auto it = issue_times.find(header->request_id);
        if (it != issue_times.end()) {
          latencies.Record(cluster.env().now() - it->second);
          issue_times.erase(it);
        }
        ++result.completed;
      }
      fn.pool()->Put(buffer, fn.owner_id());
      (void)client;
    });
  }
  for (size_t c = 0; c < clients.size(); ++c) {
    FunctionRuntime* client = clients[c].get();
    const ChainSpec& spec = chains[c];
    for (int i = 0; i < options.requests_per_tenant; ++i) {
      // Tenants stagger by a fraction of the spacing so sends interleave
      // deterministically instead of colliding on the same tick.
      const SimTime at = static_cast<SimTime>(i) * options.spacing +
                         static_cast<SimTime>(c) * (options.spacing / 7 + 1);
      sim.ScheduleAt(at, [&, client]() {
        Buffer* request = client->pool()->Get(client->owner_id());
        if (request == nullptr) {
          ++result.errors;
          return;
        }
        MessageHeader header;
        header.chain = spec.id;
        header.src = client->id();
        header.dst = spec.entry;
        header.payload_length = options.payload;
        header.request_id = executor.NextRequestId();
        WriteMessage(request, header);
        issue_times[header.request_id] = cluster.env().now();
        if (!dataplane.Send(client, request)) {
          issue_times.erase(header.request_id);
          ++result.errors;
          client->pool()->Put(request, client->owner_id());
        }
      });
    }
  }

  sim.RunFor(options.duration);

  result.errors += executor.errors();
  result.migrations = cluster.placement()->migrations();
  result.rps = static_cast<double>(result.completed) / ToSeconds(options.duration);
  result.mean_latency_us = latencies.MeanUs();
  result.p99_latency_us = ToUs(latencies.Percentile(0.99));
  for (const ChainSpec& spec : chains) {
    for (const NodeId node : worker_ids) {
      const uint64_t count = cluster.routing().ResolvedCount(spec.entry, node);
      if (count > 0) {
        result.entry_resolved[node] += count;
      }
    }
    // Worst per-function imbalance over every multi-replica stage that saw
    // meaningful traffic.
    for (const auto& [fn_id, behavior] : spec.behaviors) {
      (void)behavior;
      const std::vector<NodeId>* placements = cluster.routing().PlacementsOf(fn_id);
      if (placements == nullptr || placements->size() < 2) {
        continue;
      }
      uint64_t lo = UINT64_MAX, hi = 0, total = 0;
      for (const NodeId node : *placements) {
        const uint64_t count = cluster.routing().ResolvedCount(fn_id, node);
        lo = std::min(lo, count);
        hi = std::max(hi, count);
        total += count;
      }
      if (total >= 100) {
        const double ratio = static_cast<double>(hi) / static_cast<double>(std::max<uint64_t>(lo, 1));
        result.replica_skew = std::max(result.replica_skew, ratio);
      }
    }
  }
  result.metrics_text = cluster.metrics().SnapshotText();
  result.metrics_json = cluster.metrics().SnapshotJson();
  return result;
}

// ---------------------------------------------------------------------------
// NIC-offloaded chain dispatch (DESIGN.md §3i)
// ---------------------------------------------------------------------------

ChainOffloadResult RunChainOffload(const CostModel& cost, const ChainOffloadOptions& options) {
  ClusterConfig config;
  config.worker_nodes = options.nodes;
  config.with_ingress_node = false;
  config.seed = options.seed;
  Cluster cluster(&cost, config);
  Simulator& sim = cluster.sim();
  for (const FaultSpec& spec : options.faults) {
    cluster.env().faults().Install(spec);
  }

  NadinoDataPlane::Options dp_options;
  dp_options.comch_variant = options.comch_variant;
  dp_options.offload_chains = options.offload;
  NadinoDataPlane dataplane(cluster.env(), &cluster.routing(), dp_options);
  for (int i = 0; i < options.nodes; ++i) {
    dataplane.AddWorkerNode(cluster.worker(i));
  }

  std::vector<ChainSpec> chains;
  for (int t = 0; t < options.tenants; ++t) {
    const TenantId tenant = static_cast<TenantId>(t + 1);
    cluster.CreateTenantPools(tenant, 4096, 8192);
    dataplane.AttachTenant(tenant, 1);
    cluster.env().slos().Register(tenant, SloTarget{});
    chains.push_back(BuildPipelineChain(tenant, 1000 + static_cast<FunctionId>(t) * 100,
                                        options.stages, options.payload));
  }
  dataplane.Start();

  ChainExecutor executor(cluster.env(), &dataplane);
  ChainOffloadResult result;
  std::vector<std::unique_ptr<FunctionRuntime>> functions;
  std::vector<std::unique_ptr<FunctionRuntime>> clients;
  for (int t = 0; t < options.tenants; ++t) {
    const ChainSpec& spec = chains[static_cast<size_t>(t)];
    executor.RegisterChain(spec);
    // Stripe stage i of tenant t onto node (t + i) % nodes: every hop and the
    // final response cross the wire, which is the regime NIC offload targets
    // (an intra-node hop is an IPC delivery with nothing to offload).
    int stage = 0;
    for (const auto& [fn_id, behavior] : spec.behaviors) {
      (void)behavior;
      Node* node = cluster.worker((t + stage) % options.nodes);
      functions.push_back(std::make_unique<FunctionRuntime>(
          fn_id, spec.tenant, spec.name + "_fn" + std::to_string(fn_id), node,
          node->AllocateCore(), node->tenants().PoolOfTenant(spec.tenant)));
      dataplane.RegisterFunction(functions.back().get());
      executor.AttachFunction(functions.back().get());
      ++stage;
    }
  }
  if (options.offload) {
    for (const ChainSpec& spec : chains) {
      result.hops_installed += executor.OffloadChain(spec.id);
    }
  }

  LatencyHistogram latencies;
  std::map<uint64_t, SimTime> issue_times;
  for (const ChainSpec& spec : chains) {
    Node* home = nullptr;
    for (int i = 0; i < options.nodes; ++i) {
      if (cluster.worker(i)->id() == cluster.routing().NodeOf(spec.entry)) {
        home = cluster.worker(i);
        break;
      }
    }
    clients.push_back(std::make_unique<FunctionRuntime>(
        900 + static_cast<FunctionId>(spec.tenant), spec.tenant, "client", home,
        home->AllocateCore(), home->tenants().PoolOfTenant(spec.tenant)));
    FunctionRuntime* client = clients.back().get();
    dataplane.RegisterFunction(client);
    const TenantId tenant = spec.tenant;
    client->SetHandler([&, tenant](FunctionRuntime& fn, Buffer* buffer) {
      const auto header = ReadMessage(*buffer);
      if (header.has_value() && header->is_response()) {
        const auto it = issue_times.find(header->request_id);
        if (it != issue_times.end()) {
          latencies.Record(cluster.env().now() - it->second);
          issue_times.erase(it);
        }
        ++result.completed;
        ++result.tenant_completed[tenant];
      }
      fn.pool()->Put(buffer, fn.owner_id());
    });
  }
  for (size_t c = 0; c < clients.size(); ++c) {
    FunctionRuntime* client = clients[c].get();
    const ChainSpec& spec = chains[c];
    for (int i = 0; i < options.requests_per_tenant; ++i) {
      const SimTime at = static_cast<SimTime>(i) * options.spacing +
                         static_cast<SimTime>(c) * (options.spacing / 7 + 1);
      sim.ScheduleAt(at, [&, client]() {
        Buffer* request = client->pool()->Get(client->owner_id());
        if (request == nullptr) {
          ++result.errors;
          return;
        }
        MessageHeader header;
        header.chain = spec.id;
        header.src = client->id();
        header.dst = spec.entry;
        header.payload_length = options.payload;
        header.request_id = executor.NextRequestId();
        WriteMessage(request, header);
        issue_times[header.request_id] = cluster.env().now();
        if (!dataplane.Send(client, request)) {
          issue_times.erase(header.request_id);
          ++result.errors;
          client->pool()->Put(request, client->owner_id());
        }
      });
    }
  }

  sim.RunFor(options.duration);

  result.errors += executor.errors();
  result.software_requests = executor.requests_handled();
  for (int i = 0; i < options.nodes; ++i) {
    const NodeId node = cluster.worker(i)->id();
    if (WrProgramEngine* programs = dataplane.wr_programs(node)) {
      const WrProgramEngine::Stats stats = programs->stats();
      result.offloaded_hops += stats.offloaded_hops;
      result.offloaded_responses += stats.responses;
      result.fallbacks += stats.fallbacks;
      result.wrprog_send_errors += stats.send_errors;
    }
    for (int t = 0; t < options.tenants; ++t) {
      const auto tenant = static_cast<TenantId>(t + 1);
      BufferPool* pool = cluster.worker(i)->tenants().PoolOfTenant(tenant);
      if (pool != nullptr) {
        result.buffers_in_use_at_end += pool->in_use();
      }
      // The standing posted-RECV credits are RNIC-owned at quiesce by design;
      // only what is out BEYOND them is a leak.
      const size_t posted = cluster.worker(i)->rnic().SrqOfTenant(tenant).depth();
      result.buffers_in_use_at_end -= std::min<uint64_t>(result.buffers_in_use_at_end, posted);
    }
  }
  result.rps = static_cast<double>(result.completed) / ToSeconds(options.duration);
  result.mean_latency_us = latencies.MeanUs();
  result.p99_latency_us = ToUs(latencies.Percentile(0.99));
  result.per_hop_latency_us =
      result.mean_latency_us / static_cast<double>(options.stages + 1);
  result.metrics_text = cluster.metrics().SnapshotText();
  result.metrics_json = cluster.metrics().SnapshotJson();
  return result;
}

// ---------------------------------------------------------------------------
// Open-loop scale (DESIGN.md §3g)
// ---------------------------------------------------------------------------

OpenLoopScaleResult RunOpenLoopScale(const CostModel& cost, const OpenLoopScaleOptions& options) {
  constexpr TenantId kTenantBase = 1;

  ClusterConfig config;
  config.worker_nodes = options.nodes;
  config.with_ingress_node = false;
  config.seed = options.seed;
  config.event_shards = options.event_shards;
  Cluster cluster(&cost, config);
  Simulator& sim = cluster.sim();
  for (const FaultSpec& spec : options.faults) {
    cluster.env().faults().Install(spec);
  }

  NadinoDataPlane::Options dp_options;
  dp_options.extra_engine_cost = options.extra_engine_cost;
  NadinoDataPlane dataplane(cluster.env(), &cluster.routing(), dp_options);
  for (int i = 0; i < options.nodes; ++i) {
    dataplane.AddWorkerNode(cluster.worker(i));
  }

  // Buffer pools are sized to the in-flight cap, not to the user count: the
  // open loop sheds what it cannot hold, so a 100x offered-load increase
  // leaves memory flat. Each node's engine pre-posts its RECV ring from the
  // same pool, so that depth is headroom on top of the cap — without it a
  // small cap leaves zero send buffers and every arrival sheds.
  const size_t pool_buffers = static_cast<size_t>(options.max_in_flight_per_tenant) +
                              static_cast<size_t>(dp_options.initial_recv_buffers) + 64;
  const size_t pool_buffer_size = std::max<size_t>(1024, options.payload + 256u);
  for (int t = 0; t < options.tenants; ++t) {
    const TenantId tenant = kTenantBase + static_cast<TenantId>(t);
    cluster.CreateTenantPools(tenant, pool_buffers, pool_buffer_size);
    dataplane.AttachTenant(tenant, 1);
  }
  dataplane.Start();

  // Aggregate the users into per-tenant rate curves: one compressed diurnal
  // cycle over the horizon (mean multiplier 1.0, trough 0.5, peak 1.5) and an
  // optional flash crowd at mid-run.
  const double total_rps = static_cast<double>(options.users) * options.rps_per_user;
  const double tenant_rps = total_rps / static_cast<double>(std::max(options.tenants, 1));

  OpenLoopSource::Options source_options;
  source_options.tick = options.tick;
  source_options.horizon = options.horizon;
  OpenLoopSource source(cluster.env(), source_options);

  std::vector<std::unique_ptr<FunctionRuntime>> functions;
  std::vector<std::unique_ptr<OpenLoopEchoDriver>> drivers;
  for (int t = 0; t < options.tenants; ++t) {
    const TenantId tenant = kTenantBase + static_cast<TenantId>(t);
    const int client_node = t % options.nodes;
    const int server_node = (t + 1) % options.nodes;
    const FunctionId client_fn = 100 + static_cast<FunctionId>(t);
    const FunctionId server_fn = 200 + static_cast<FunctionId>(t);
    auto client = std::make_unique<FunctionRuntime>(
        client_fn, tenant, "ol-client", cluster.worker(client_node),
        cluster.worker(client_node)->AllocateCore(),
        cluster.worker(client_node)->tenants().PoolOfTenant(tenant));
    auto server = std::make_unique<FunctionRuntime>(
        server_fn, tenant, "ol-server", cluster.worker(server_node),
        cluster.worker(server_node)->AllocateCore(),
        cluster.worker(server_node)->tenants().PoolOfTenant(tenant));
    dataplane.RegisterFunction(client.get());
    dataplane.RegisterFunction(server.get());

    OpenLoopSource::TenantOptions tenant_options;
    if (options.diurnal) {
      tenant_options.schedule =
          MakeDiurnalSchedule(tenant_rps, options.horizon, /*steps=*/24,
                              /*trough_multiplier=*/0.5, /*peak_multiplier=*/1.5);
    } else {
      tenant_options.schedule.base_rps = tenant_rps;
    }
    if (options.flash_crowd_fraction > 0.0) {
      FlashBurst burst;
      burst.start = options.horizon / 2;
      burst.duration = options.horizon / 10;
      burst.add_rps = options.flash_crowd_fraction * tenant_rps;
      tenant_options.schedule.bursts.push_back(burst);
    }
    // Per-node admission: the tenant's arrivals live on its client node's
    // event-queue shard.
    tenant_options.shard = static_cast<uint32_t>(client_node);
    tenant_options.max_in_flight = options.max_in_flight_per_tenant;
    const uint32_t index = source.AddTenant(tenant_options);
    (void)index;  // == t by construction.

    drivers.push_back(std::make_unique<OpenLoopEchoDriver>(
        cluster.env(), &source, &dataplane, client.get(), server.get(),
        static_cast<uint32_t>(t), options.payload));
    functions.push_back(std::move(client));
    functions.push_back(std::move(server));
  }
  source.SetDispatch([&drivers](uint32_t tenant, SimTime issued_at) {
    return drivers[tenant]->Issue(issued_at);
  });

  PeriodicSampler sampler(cluster.env(), options.sample_period);
  sampler.AddRate(&source.rate());
  sampler.Start();
  source.Start();
  sim.RunUntil(options.horizon + options.drain);
  sampler.Stop();

  OpenLoopScaleResult result;
  result.offered = source.offered();
  result.dispatched = source.dispatched();
  result.completed = source.completed();
  result.shed = source.shed();
  result.in_flight_peak = source.in_flight_peak();
  const double horizon_seconds = ToSeconds(options.horizon);
  result.offered_rps =
      horizon_seconds > 0 ? static_cast<double>(result.offered) / horizon_seconds : 0.0;
  result.goodput_rps =
      horizon_seconds > 0 ? static_cast<double>(result.completed) / horizon_seconds : 0.0;
  result.mean_latency_us = source.latencies().MeanUs();
  result.p99_latency_us = ToUs(source.latencies().Percentile(0.99));
  for (const auto& driver : drivers) {
    result.unmatched_responses += driver->unmatched_responses();
    result.pending_at_end += driver->pending_requests();
  }
  result.slab_slots = sim.slab_slots();
  result.sim_events = sim.events_processed();
  result.metrics_text = cluster.metrics().SnapshotText();
  result.metrics_json = cluster.metrics().SnapshotJson();
  return result;
}

ParallelDrainResult RunParallelDrain(const CostModel& cost, const ParallelDrainOptions& options) {
  const int nodes = std::max(options.nodes, 1);
  const uint32_t shard_count = static_cast<uint32_t>(std::min<int>(nodes, Simulator::kMaxShards));

  ClusterConfig config;
  config.worker_nodes = nodes;
  config.workers_have_dpu = false;  // The driver models the DNE stages itself.
  config.with_ingress_node = false;
  config.event_shards = shard_count;
  config.event_workers = options.event_workers;
  config.seed = options.seed;
  Cluster cluster(&cost, config);
  Simulator& sim = cluster.sim();
  // The cluster installed the generic cost-model floor; this workload's
  // every cross-shard transition is a full fabric hop, so the horizon can be
  // an order of magnitude deeper (fewer windows, fewer barriers).
  sim.SetLookahead(OpenLoopShardEchoDriver::HopFloor(cost));

  OpenLoopSource::Options source_options;
  source_options.tick = options.tick;
  source_options.horizon = options.horizon;
  source_options.parallel = true;  // Shard-confined state for every worker count.
  OpenLoopSource source(cluster.env(), source_options);

  OpenLoopShardEchoDriver driver(cluster.env(), &source, cost, shard_count,
                                 options.buffers_per_shard);

  const double total_rps = static_cast<double>(options.users) * options.rps_per_user;
  const double tenant_rps = total_rps / static_cast<double>(nodes);
  for (int t = 0; t < nodes; ++t) {
    OpenLoopSource::TenantOptions tenant_options;
    if (options.diurnal) {
      tenant_options.schedule =
          MakeDiurnalSchedule(tenant_rps, options.horizon, /*steps=*/24,
                              /*trough_multiplier=*/0.5, /*peak_multiplier=*/1.5);
    } else {
      tenant_options.schedule.base_rps = tenant_rps;
    }
    if (options.flash_crowd_fraction > 0.0) {
      FlashBurst burst;
      burst.start = options.horizon / 2;
      burst.duration = options.horizon / 10;
      burst.add_rps = options.flash_crowd_fraction * tenant_rps;
      tenant_options.schedule.bursts.push_back(burst);
    }
    tenant_options.shard = static_cast<uint32_t>(t) % shard_count;
    tenant_options.max_in_flight = options.max_in_flight_per_tenant;
    source.AddTenant(tenant_options);

    // One tenant per client shard AND per server shard (t -> t+k mod n is a
    // bijection): single-origin arrival streams per engine keep same-instant
    // tie order identical between the serial and strided seq schemes.
    OpenLoopShardEchoDriver::TenantBinding binding;
    binding.client_shard = tenant_options.shard;
    binding.server_shard =
        (tenant_options.shard + std::max(shard_count / 2, 1u)) % shard_count;
    binding.payload = options.payload;
    binding.slo_target = options.slo_target;
    driver.AddTenant(binding);
  }

  // Per-worker counter lanes (DESIGN.md §3h): each worker counts dispatches
  // on its own cache line; the epoch barrier's serial section folds them into
  // the registry counter, so the metric is exact at every window edge without
  // a single contended atomic on the hot path.
  CounterLanes lanes = cluster.metrics().ResolveCounterLanes(
      "parallel_drain_dispatched_total", sim.worker_count());
  source.SetDispatch([&driver, &lanes, &sim](uint32_t tenant, SimTime issued_at) {
    const bool ok = driver.Issue(tenant, issued_at);
    if (ok) {
      lanes.Increment(sim.current_worker());
    }
    return ok;
  });
  if (options.event_workers > 1) {
    sim.SetBarrierHook([&lanes] { lanes.Fold(); });
  }

  source.Start();
  sim.RunUntil(options.horizon + options.drain);
  sim.SetBarrierHook(nullptr);
  lanes.Fold();  // Serial runs (and the post-join tail) fold here.

  ParallelDrainResult result;
  result.offered = source.offered();
  result.dispatched = source.dispatched();
  result.completed = source.completed();
  result.shed = source.shed();
  result.dropped = source.dropped();
  result.served = driver.served();
  result.server_drops = driver.server_drops();
  result.slo_violations = driver.slo_violations();
  result.digest = driver.digest();
  result.buffers_leaked = driver.buffers_leaked();
  const double horizon_seconds = ToSeconds(options.horizon);
  result.goodput_rps =
      horizon_seconds > 0 ? static_cast<double>(result.completed) / horizon_seconds : 0.0;
  const LatencyHistogram latencies = source.MergedLatencies();
  result.mean_latency_us = latencies.MeanUs();
  result.p99_latency_us = ToUs(latencies.Percentile(0.99));
  for (int t = 0; t < nodes; ++t) {
    const uint32_t tenant = static_cast<uint32_t>(t);
    result.tenant_completed.push_back(source.tenant_completed(tenant));
    result.tenant_served.push_back(driver.tenant_served(tenant));
    result.tenant_shed.push_back(source.tenant_shed(tenant));
    result.tenant_dropped.push_back(driver.tenant_dropped(tenant));
    result.tenant_slo_violations.push_back(driver.tenant_slo_violations(tenant));
  }
  result.sim_events = sim.events_processed();
  result.slab_slots = sim.slab_slots();
  result.heap_spills = sim.callback_heap_spills();
  result.windows = sim.parallel_windows();
  result.mail_delivered = sim.parallel_mail_delivered();
  result.horizon_clamps = sim.parallel_horizon_clamps();
  result.lane_dispatched = cluster.metrics().ValueOf("parallel_drain_dispatched_total");
  return result;
}

}  // namespace nadino
