#include "src/core/fault.h"

#include <cassert>
#include <string>

namespace nadino {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kLink:
      return "link";
    case FaultSite::kFabric:
      return "fabric";
    case FaultSite::kRnicTx:
      return "rnic_tx";
    case FaultSite::kRnicRx:
      return "rnic_rx";
    case FaultSite::kComch:
      return "comch";
    case FaultSite::kSocDma:
      return "soc_dma";
    case FaultSite::kTransport:
      return "transport";
    case FaultSite::kSkMsg:
      return "skmsg";
    case FaultSite::kDneTx:
      return "dne_tx";
    case FaultSite::kDneRx:
      return "dne_rx";
    case FaultSite::kNodePartition:
      return "node_partition";
    case FaultSite::kWrProgTrigger:
      return "wrprog_trigger";
    case FaultSite::kWrProgCond:
      return "wrprog_cond";
  }
  return "?";
}

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kPass:
      return "pass";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kDuplicate:
      return "duplicate";
    case FaultAction::kCorrupt:
      return "corrupt";
  }
  return "?";
}

uint8_t FaultSiteSupportedActions(FaultSite site) {
  // The per-site matrix from DESIGN.md §3a. Wire-level sites can duplicate
  // (packets are value-copied and the receive paths are idempotent);
  // descriptor/buffer sites cannot (a duplicated descriptor would double-free
  // its buffer). Corruption requires a payload the site can hand over.
  switch (site) {
    case FaultSite::kLink:
    case FaultSite::kFabric:
      return kFaultCanDrop | kFaultCanDelay | kFaultCanDuplicate;
    case FaultSite::kRnicTx:
    case FaultSite::kRnicRx:
      return kFaultCanDrop | kFaultCanDelay | kFaultCanDuplicate | kFaultCanCorrupt;
    case FaultSite::kComch:
      return kFaultCanDrop | kFaultCanDelay | kFaultCanCorrupt;
    case FaultSite::kSocDma:
      return kFaultCanDrop | kFaultCanDelay | kFaultCanCorrupt;
    case FaultSite::kTransport:
    case FaultSite::kSkMsg:
      return kFaultCanDrop | kFaultCanDelay;
    case FaultSite::kDneTx:
    case FaultSite::kDneRx:
      return kFaultCanDrop | kFaultCanDelay | kFaultCanCorrupt;
    case FaultSite::kNodePartition:
      // A severed node loses messages outright; delaying/duplicating through
      // a partition has no physical analogue.
      return kFaultCanDrop;
    case FaultSite::kWrProgTrigger:
    case FaultSite::kWrProgCond:
      // Drop = stuck trigger / misfired branch: the program declines and the
      // message falls back to software delivery (conserved, counted). The
      // NIC never duplicates a program wake, and the header the conditional
      // reads is checksummed upstream — no duplicate/corrupt analogue.
      return kFaultCanDrop | kFaultCanDelay;
  }
  return 0;
}

namespace {

uint8_t ActionBit(FaultAction action) {
  switch (action) {
    case FaultAction::kDrop:
      return kFaultCanDrop;
    case FaultAction::kDelay:
      return kFaultCanDelay;
    case FaultAction::kDuplicate:
      return kFaultCanDuplicate;
    case FaultAction::kCorrupt:
      return kFaultCanCorrupt;
    case FaultAction::kPass:
      return 0;
  }
  return 0;
}

}  // namespace

FaultPlane::FaultPlane(Simulator* sim, MetricsRegistry* metrics, uint64_t seed)
    // Decorrelate from Env's workload stream: the plane consuming draws must
    // not mirror the arrival-process jitter of the same seed.
    : sim_(sim), metrics_(metrics), rng_(seed ^ 0xD1B54A32D192ED03ull) {}

int FaultPlane::Install(const FaultSpec& spec) {
  const uint8_t supported = FaultSiteSupportedActions(spec.site);
  if (spec.action == FaultAction::kPass || (supported & ActionBit(spec.action)) == 0) {
    return -1;
  }
  if (spec.site == FaultSite::kNodePartition &&
      (spec.node == kInvalidNode || spec.one_shot || spec.probability < 1.0)) {
    // Partitions sever a NAMED node for a deterministic window: a
    // probabilistic or anonymous partition would break the equal-seed
    // byte-identical contract for sever/heal schedules.
    return -1;
  }
  specs_.push_back(Armed{spec});
  ++armed_per_site_[static_cast<size_t>(spec.site)];
  return static_cast<int>(specs_.size()) - 1;
}

void FaultPlane::Clear() {
  specs_.clear();
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    armed_per_site_[i] = 0;
  }
}

bool FaultPlane::Matches(const Armed& armed, FaultSite site, const FaultScope& scope,
                         SimTime now) const {
  const FaultSpec& spec = armed.spec;
  if (spec.site != site) {
    return false;
  }
  if (spec.max_injections != 0 && armed.injections >= spec.max_injections) {
    return false;
  }
  if (spec.tenant != kInvalidTenant && spec.tenant != scope.tenant) {
    return false;
  }
  if (spec.node != kInvalidNode && spec.node != scope.node) {
    return false;
  }
  if (spec.one_shot) {
    return !armed.fired && now >= spec.at;
  }
  if (now < spec.window_start) {
    return false;
  }
  if (spec.window_end != 0 && now >= spec.window_end) {
    return false;
  }
  return true;
}

void FaultPlane::CountInjection(Armed& armed, FaultSite site, const FaultScope& scope) {
  ++armed.injections;
  ++injected_total_;
  ++injected_by_site_[static_cast<size_t>(site)];

  // Key convention: site and kind live in the metric name (MetricLabels only
  // models tenant/node/engine); the scope of the crossing supplies the labels.
  MetricLabels labels;
  if (scope.tenant != kInvalidTenant) {
    labels.tenant = static_cast<int64_t>(scope.tenant);
  }
  if (scope.node != kInvalidNode) {
    labels.node = static_cast<int64_t>(scope.node);
  }
  std::string name = "fault_injected_";
  name += FaultSiteName(site);
  name += '_';
  name += FaultActionName(armed.spec.action);
  metrics_->Counter(name, labels).Increment();

  if (tracer_ != nullptr) {
    std::string label = FaultSiteName(site);
    label += '/';
    label += FaultActionName(armed.spec.action);
    const uint32_t actor = scope.node != kInvalidNode ? scope.node : 0;
    const uint64_t arg0 = scope.tenant != kInvalidTenant ? scope.tenant : 0;
    tracer_->Record(TraceCategory::kFault, actor, std::move(label), arg0, injected_total_);
  }
}

FaultDecision FaultPlane::Intercept(FaultSite site, const FaultScope& scope, std::byte* data,
                                    size_t len) {
  // Fast path — MUST not touch rng_ so an unfaulted run is bit-identical to
  // one where the plane does not exist at all.
  if (armed_per_site_[static_cast<size_t>(site)] == 0) {
    return {};
  }
  const SimTime now = sim_->now();
  for (Armed& armed : specs_) {
    if (!Matches(armed, site, scope, now)) {
      continue;
    }
    if (armed.spec.one_shot) {
      armed.fired = true;
    } else if (armed.spec.probability < 1.0 && !rng_.Chance(armed.spec.probability)) {
      continue;
    }
    if (armed.spec.action == FaultAction::kCorrupt) {
      if (data == nullptr || len == 0) {
        continue;  // Nothing to flip here; an honest plane does not count it.
      }
      const size_t offset = static_cast<size_t>(rng_.UniformInt(0, len - 1));
      const auto mask = static_cast<std::byte>(rng_.UniformInt(1, 255));
      data[offset] ^= mask;
    }
    CountInjection(armed, site, scope);
    return {armed.spec.action, armed.spec.delay};
  }
  return {};
}

bool FaultPlane::NodePartitioned(NodeId node) const {
  if (armed_per_site_[static_cast<size_t>(FaultSite::kNodePartition)] == 0 ||
      node == kInvalidNode) {
    return false;
  }
  const SimTime now = sim_->now();
  for (const Armed& armed : specs_) {
    if (Matches(armed, FaultSite::kNodePartition, FaultScope{kInvalidTenant, node}, now)) {
      return true;
    }
  }
  return false;
}

FaultDecision FaultPlane::InterceptPair(FaultSite site, const FaultScope& scope, NodeId peer,
                                        std::byte* data, size_t len) {
  // Partition check first: a crossing whose either endpoint is severed never
  // reaches the per-site specs. Fast path identical to Intercept — no state
  // is touched while no partition is armed.
  if (armed_per_site_[static_cast<size_t>(FaultSite::kNodePartition)] != 0) {
    const SimTime now = sim_->now();
    for (Armed& armed : specs_) {
      // Probe the spec against each endpoint; the injection is charged to
      // the partitioned node (that is the node the operator severed), with
      // the crossing's tenant as the label.
      NodeId hit = kInvalidNode;
      if (Matches(armed, FaultSite::kNodePartition, FaultScope{scope.tenant, scope.node}, now)) {
        hit = scope.node;
      } else if (peer != kInvalidNode &&
                 Matches(armed, FaultSite::kNodePartition, FaultScope{scope.tenant, peer}, now)) {
        hit = peer;
      }
      if (hit == kInvalidNode) {
        continue;
      }
      CountInjection(armed, FaultSite::kNodePartition, FaultScope{scope.tenant, hit});
      return {FaultAction::kDrop, 0};
    }
  }
  return Intercept(site, scope, data, len);
}

}  // namespace nadino
