// Central calibration of the simulation cost model.
//
// Every timing constant used by the substrates lives here, annotated with the
// paper statement it reproduces. The absolute values are *derived* so that the
// microbenchmarks in section 4.1 land on the paper's measured numbers (e.g.
// two-sided 64 B echo RTT = 8.4 us, Fig. 12); the macro results (Figs. 13-17,
// Table 2) then *emerge* from composing these calibrated pieces — they are
// never hard-coded. tests/calibration_test.cc pins the microbenchmarks to
// tolerance bands around the paper's numbers.
//
// All constants are plain struct fields so ablation benches can perturb a
// single mechanism (e.g. force the on-path DNE, or swap DWRR for FCFS) while
// holding everything else fixed.

#ifndef SRC_CORE_CALIBRATION_H_
#define SRC_CORE_CALIBRATION_H_

#include "src/sim/time.h"

namespace nadino {

struct CostModel {
  // --- Fabric (testbed: 200 Gbps switch between DPUs / ingress RNIC) -------
  double fabric_gbps = 200.0;          // Link rate, section 4 testbed.
  SimDuration link_propagation = 500;  // One-way NIC-to-switch time, ns.
  SimDuration switch_latency = 300;    // Cut-through switch hop, ns.

  // --- RNIC (ConnectX-6 class) --------------------------------------------
  // Per-work-request processing in the NIC pipeline. Together with the DNE
  // post/poll costs below these compose to the 8.4 us 64 B two-sided echo RTT
  // of Fig. 12.
  SimDuration rnic_wr_tx = 600;
  SimDuration rnic_wr_rx = 600;
  // Effective per-byte cost at each RNIC for a single-QP, unbatched verbs
  // stream (PCIe DMA + payload handling). Calibrated so 64 B -> 4 KB moves the
  // two-sided echo RTT from 8.4 us to ~11.6 us (Fig. 12).
  double rnic_per_byte_ns = 0.175;
  // RC QP context cache: misses force an ICM fetch over PCIe. Drives the
  // "too many active QPs thrash the NIC cache" behaviour (sections 2.1, 3.3).
  int rnic_qp_cache_entries = 64;
  SimDuration rnic_qp_cache_miss = 1600;
  // Receiver-not-ready retry backoff when no receive buffer is posted.
  SimDuration rnic_rnr_backoff = 20 * kMicrosecond;
  // Local ACK timeout (RC transport retransmit budget collapsed to one
  // deadline): a payload-carrying WR whose packet or ACK is lost in the
  // fabric completes locally with kTransportError — failed, not hung — so
  // its buffer recycles and the retry layer can re-send. Far above any
  // legitimate simulated RTT (microseconds).
  SimDuration rnic_ack_timeout = 5 * kMillisecond;
  // Memory-region registration (host + NIC page-table update), per region.
  SimDuration mr_register_cost = 30 * kMicrosecond;
  // RC connection establishment: "of the order of tens of milliseconds"
  // (section 3.3, citing [59, 96]).
  SimDuration rc_connect_cost = 20 * kMillisecond;
  // Activating / deactivating a pooled shadow QP (no cross-node sync, [55]).
  SimDuration qp_activate_cost = 2 * kMicrosecond;
  // Control-plane verbs as first-class costs (Swift: the QP lifecycle, not
  // just the handshake, bottlenecks elastic tenants). Creation allocates the
  // QP context (ICM) and buffers; each state transition (INIT -> RTR -> RTS,
  // three modifies per RC setup) is a driver round trip; destroy tears the
  // context out of the NIC. These serialize on the issuing CPU, while the
  // rc_connect_cost handshake round trip pipelines across a batch.
  SimDuration qp_create_verb = 35 * kMicrosecond;
  SimDuration qp_modify_verb = 10 * kMicrosecond;
  SimDuration qp_destroy_verb = 25 * kMicrosecond;

  // --- DPU (BlueField-2: 8 Armv8 A72 cores, up to 2.5 GHz) -----------------
  // Wimpy-core penalty vs the host Xeon (2.4-3.7 GHz, wider issue): a job
  // costing T host-CPU time costs dpu_speed_factor * T on a DPU core.
  double dpu_speed_factor = 2.0;
  // SoC DMA engine: 2.6 us for a 64 B read (section 4.1.1, citing [95]) and
  // poor throughput under concurrency -- the reason on-path offloading loses.
  SimDuration soc_dma_base = FromUs(2.6);
  double soc_dma_gbps = 24.0;

  // --- DNE / CNE engine op costs (host-CPU time; DPU scales them) ----------
  // With dpu_speed_factor 2.0 these compose to the 8.4 us two-sided 64 B echo
  // RTT between two single-core DNEs (Fig. 12): one way =
  //   (tx_stage + loop + sched) * 2 + rnic_wr_tx + wire + rnic_wr_rx
  //   + (rx_stage + loop) * 2  ~=  4.4 us.
  SimDuration dne_tx_stage = 380;   // Consume descriptor, route, wrap WR, post.
  SimDuration dne_rx_stage = 330;   // Poll CQE, RBR lookup, forward descriptor.
  SimDuration dne_sched_op = 60;    // One DWRR/FCFS scheduling decision.
  SimDuration dne_loop_iteration = 80;  // Run-to-completion loop base cost.

  // --- Cross-processor communication channel (DOCA Comch, section 3.5.4) ---
  // Comch-E: event-driven send/receive over blocking epoll. No pinned cores;
  // 2.7-3.8x lower descriptor-echo latency than the TCP baseline (Fig. 9).
  SimDuration comch_e_host_send = 600;   // Function-side send + doorbell.
  SimDuration comch_e_host_recv = 1200;  // Function-side epoll sleep/wake + recv.
  SimDuration comch_e_dpu_side = 500;    // DNE-side event handling (host time).
  SimDuration comch_e_channel = 900;     // PCIe message write + completion.
  // Comch-P: producer-consumer ring with busy polling; lowest latency (>8x
  // better than TCP) but one pinned host core per function, and the DOCA
  // progress engine internally epoll_waits per endpoint, which saturates the
  // single-core DNE beyond ~6 functions (Fig. 9).
  SimDuration comch_p_host_side = 150;
  SimDuration comch_p_dpu_side = 120;
  SimDuration comch_p_channel = 350;
  SimDuration comch_p_progress_sweep_per_endpoint = 80;  // epoll_wait overhead.
  // TCP-over-PCIe-netdev baseline for descriptor exchange (kernel both sides).
  SimDuration comch_tcp_host_side = 4500;
  SimDuration comch_tcp_dpu_side = 3000;  // Host time; runs scaled on DPU core.
  SimDuration comch_tcp_channel = 2000;

  // --- Intra-node IPC (eBPF SK_MSG, section 3.5.3) -------------------------
  SimDuration skmsg_send = 900;        // Socket send + eBPF verdict.
  SimDuration skmsg_deliver = 1100;    // Wakeup + descriptor receive.
  // Interrupt-driven receive cost charged to a *shared engine core* per
  // message; grows effective load on the CNE at high concurrency ([72],
  // section 4.3: SK_MSG interrupt load throttles the CNE).
  SimDuration skmsg_engine_irq = 1000;
  SimDuration token_post_cost = 400;   // sem_post + futex wake.

  // --- Host TCP/IP stacks (section 3.6, 4.1.3) ------------------------------
  // Kernel stack: interrupt-driven; per-message costs include syscall, softirq
  // and socket copies.
  SimDuration ktcp_rx = 8 * kMicrosecond;
  SimDuration ktcp_tx = 6 * kMicrosecond;
  SimDuration ktcp_irq_per_msg = 3 * kMicrosecond;
  double ktcp_per_byte_ns = 0.55;  // Socket copy in/out.
  // F-stack (DPDK userspace stack, busy-polling): far cheaper per message.
  SimDuration fstack_rx = FromUs(2.0);
  SimDuration fstack_tx = FromUs(1.5);
  double fstack_per_byte_ns = 0.25;
  // HTTP processing (NGINX-class): terminating parse vs full proxy pass.
  SimDuration http_parse = FromUs(2.0);
  SimDuration http_proxy_request = FromUs(6.0);   // Upstream mgmt, header rewrite.
  SimDuration http_proxy_response = FromUs(4.0);
  // External client <-> ingress Ethernet RTT contribution (separate switch).
  SimDuration client_wire_one_way = FromUs(5.0);

  // --- Native verbs usage (Fig. 6 baselines: functions drive QPs directly) --
  SimDuration native_post = 300;  // ibv_post_send from application code.
  SimDuration native_poll = 250;  // ibv_poll_cq + completion handling.

  // --- One-sided RDMA workarounds (Fig. 3 / Fig. 12) ------------------------
  // Receiver-side arrival polling for one-sided writes (FaRM-style).
  SimDuration owrc_poll_iteration = 250;   // Scan cost per poll loop pass.
  SimDuration owrc_poll_interval = 1000;   // Mean detection latency contribution.
  // FUYAO engine per-message costs (beyond the generic stage costs): remote
  // slot/credit management on TX, slot reclamation + dispatch on RX.
  SimDuration fuyao_relay_tx = 3500;
  SimDuration fuyao_rx_handling = 3000;
  // Junction: per-message overhead of its userspace scheduling + stack
  // interaction on the receive path (section 4.3: kernel-bypass but still
  // software transport, duplicated per inter-function message).
  SimDuration junction_rx_overhead = 2000;
  // Kernel receive livelock ([72]): under backlog, interrupt handling steals
  // progressively more CPU from the interrupt-driven ingress; the effective
  // per-message IRQ cost grows by irq * queue_depth / this divisor.
  int ktcp_livelock_depth_divisor = 4;
  // Distributed lock service: manager processing per acquire/release.
  // Calibrated so the OWDL echo lands near the paper's 26.1 us at 4 KB.
  SimDuration dlock_manager_op = 2000;

  // --- NIC-resident WR programs (RedN-style triggered/conditional WRs) ------
  // A recv completion waking a posted WR program: the RNIC recognizes the
  // CQE, matches the WAIT WR, and enables the chained steps. RedN measures
  // self-triggering at single-microsecond scale on ConnectX-class NICs.
  SimDuration wrprog_trigger = 1200;
  // Evaluating one conditional (CAS-gated) edge against the arrived header.
  SimDuration wrprog_cond = 500;
  // Installing one WR of a program at a QP: WQE write + doorbell, charged at
  // compile/install time on the installing core, never on the data path.
  SimDuration wrprog_install_per_wr = 800;

  // --- Ingress autoscaler (section 3.6) -------------------------------------
  double ingress_scale_up_util = 0.60;
  // Scale-up threshold while the gateway tenant is burning SLO error budget:
  // capacity is added earlier because every queued request is already eating
  // into the budget (ROADMAP follow-up from the SLO PR).
  double ingress_burn_scale_up_util = 0.35;
  double ingress_scale_down_util = 0.30;
  SimDuration ingress_autoscale_period = 500 * kMillisecond;
  SimDuration ingress_worker_restart = 120 * kMillisecond;  // Brief interruption.

  // Returns the model used throughout the evaluation; tweak copies for
  // ablations.
  static const CostModel& Default();

  // Scales a host-CPU-time cost for execution on a DPU core.
  SimDuration OnDpu(SimDuration host_cost) const {
    return static_cast<SimDuration>(static_cast<double>(host_cost) * dpu_speed_factor + 0.5);
  }

  // Conservative-PDES lookahead for the parallel shard drain (DESIGN.md
  // §3h): the cheapest way any event can cross from one node's shard to
  // another is either a fabric hop (propagation out + switch + propagation
  // in, before any RNIC processing) or — for host<->DPU shard splits — the
  // Comch-P PCIe channel write. No cross-shard delivery modelled anywhere in
  // the cost model undercuts this floor, so shards drained in parallel up to
  // global_min + MinCrossShardDelay() can never miss a remote event.
  SimDuration MinCrossShardDelay() const {
    const SimDuration fabric = 2 * link_propagation + switch_latency;
    return fabric < comch_p_channel ? fabric : comch_p_channel;
  }
};

}  // namespace nadino

#endif  // SRC_CORE_CALIBRATION_H_
