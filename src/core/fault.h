// The unified fault-injection plane.
//
// Every message-crossing boundary in the data plane — sim links, fabric
// transit, RNIC TX/RX, Comch descriptor channels, SoC DMA, SK_MSG hops, the
// ingress transport, and the DNE TX/RX stages — routes through one
// interceptor owned by Env. A site calls
//
//   switch (env.faults().Intercept(FaultSite::kDneTx, {tenant, node}, ...)) ...
//
// and obeys the returned decision: pass the message, drop it (the site must
// keep its invariants — recycle buffers, complete WRs with an error status,
// count the loss), delay it by the returned Δ, duplicate it, or corrupt the
// payload (FaultPlane flips bytes in place; the existing checksums must
// catch it downstream).
//
// Determinism contract: the plane draws from its OWN Rng, seeded from Env's
// seed, and draws NOTHING when no armed spec matches a site — so a run with
// no specs installed is byte-identical to a run before this layer existed,
// and equal seed + equal spec list yields byte-identical metric snapshots.
//
// Site catalogue, ownership, and the per-site action support matrix are
// documented in DESIGN.md §3a.

#ifndef SRC_CORE_FAULT_H_
#define SRC_CORE_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace nadino {

// One enumerator per message-crossing boundary wired through the plane.
enum class FaultSite : uint8_t {
  kLink,       // Link::Transfer — serialized bits in flight on one direction.
  kFabric,     // Fabric::Send — whole-fabric transit (uplink+switch+downlink).
  kRnicTx,     // RdmaEngine::Transmit — WR leaving the local RNIC.
  kRnicRx,     // RdmaEngine::DeliverFromWire — packet entering the remote RNIC.
  kComch,      // ComchServer::SendToDpu/SendToHost — PCIe descriptor channel.
  kSocDma,     // Dpu::SocDmaTransfer — on-path SoC staging copy.
  kTransport,  // IngressGateway::SubmitRequest — kernel-TCP / F-stack ingress.
  kSkMsg,      // SkMsgChannel::Send — intra-node SK_MSG descriptor hop.
  kDneTx,      // NetworkEngine::IngestTx — descriptor entering the TX pipeline.
  kDneRx,      // NetworkEngine::HandleRecvCompletion — RECV leaving the RNIC.
  // Whole-node partition: severs every link, Comch, and RNIC path touching
  // the spec's node for the spec's window. Deterministic — matching draws no
  // randomness (probability is ignored), so equal seed + equal sever/heal
  // schedule reproduces the partitioned run bit-for-bit. Enforced at the
  // pair-aware crossings (Fabric::Send, ComchServer) via InterceptPair.
  kNodePartition,
  // NIC-resident WR programs (src/rdma/wr_program.*): a recv completion
  // waking a posted program (kWrProgTrigger) and a conditional edge matching
  // the arrived header (kWrProgCond). Drop = the trigger sticks / the branch
  // misfires; the program declines the message and the software path delivers
  // it instead — counted, never hung. Delay = a slow trigger.
  kWrProgTrigger,
  kWrProgCond,
};
inline constexpr size_t kFaultSiteCount = 13;

const char* FaultSiteName(FaultSite site);

enum class FaultAction : uint8_t {
  kPass,       // No fault: proceed unchanged.
  kDrop,       // Discard the message; the site must count + conserve buffers.
  kDelay,      // Proceed after FaultDecision::delay of extra virtual time.
  kDuplicate,  // Deliver twice (wire-level sites only; idempotent by design).
  kCorrupt,    // Payload bytes were flipped in place; deliver as-is.
};

const char* FaultActionName(FaultAction action);

// What a site is physically able to obey. Specs whose action a site cannot
// honor are skipped there — never half-applied, never counted.
enum : uint8_t {
  kFaultCanDrop = 1u << 0,
  kFaultCanDelay = 1u << 1,
  kFaultCanDuplicate = 1u << 2,
  kFaultCanCorrupt = 1u << 3,
};

// Returns the kFaultCan* mask a site supports (the DESIGN.md §3a catalogue).
uint8_t FaultSiteSupportedActions(FaultSite site);

// Who is crossing the boundary. kInvalidTenant / kInvalidNode mean "unknown
// here" and match only specs that do not constrain that dimension.
struct FaultScope {
  TenantId tenant = kInvalidTenant;
  NodeId node = kInvalidNode;
};

// One armed fault. Triggers combine as: the spec is live inside
// [window_start, window_end) (window_end == 0 ⇒ open-ended), fires with
// `probability` per crossing, or exactly once at the first crossing at/after
// `at` when `one_shot` is set. Scoping narrows to a tenant and/or node.
struct FaultSpec {
  FaultSite site = FaultSite::kLink;
  FaultAction action = FaultAction::kDrop;

  // Trigger.
  double probability = 1.0;     // Per-crossing Bernoulli when not one-shot.
  bool one_shot = false;        // Fire once at the first crossing >= `at`.
  SimTime at = 0;               // One-shot arm time (virtual ns).
  SimTime window_start = 0;     // Burst window [start, end).
  SimTime window_end = 0;       // 0 = open-ended.
  uint64_t max_injections = 0;  // 0 = unlimited.

  // Scope. kInvalid* = any.
  TenantId tenant = kInvalidTenant;
  NodeId node = kInvalidNode;

  // Action parameter.
  SimDuration delay = 0;  // Extra latency for kDelay.
};

struct FaultDecision {
  FaultAction action = FaultAction::kPass;
  SimDuration delay = 0;
};

// Owned by Env; one per experiment. Not thread-safe (neither is the sim).
class FaultPlane {
 public:
  FaultPlane(Simulator* sim, MetricsRegistry* metrics, uint64_t seed);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // Arms a spec. Returns its index, or -1 when the action is not supported
  // at the site (the spec is rejected outright, not silently ignored later).
  int Install(const FaultSpec& spec);

  void Clear();
  size_t armed() const { return specs_.size(); }

  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  // The single entry point every site calls. `data`/`len`, when non-null,
  // expose the payload bytes kCorrupt may flip in place. Draws no randomness
  // and returns kPass immediately when no armed spec targets `site`.
  FaultDecision Intercept(FaultSite site, const FaultScope& scope, std::byte* data = nullptr,
                          size_t len = 0);

  // Pair-aware entry point for crossings with two endpoints (fabric transit,
  // Comch hops): first checks kNodePartition specs against BOTH `scope.node`
  // and `peer` — a partitioned endpoint on either side kills the crossing
  // with kDrop (counted against the partitioned node) — then falls through
  // to the regular per-site Intercept. Partition matching is deterministic
  // and draws no randomness.
  FaultDecision InterceptPair(FaultSite site, const FaultScope& scope, NodeId peer,
                              std::byte* data = nullptr, size_t len = 0);

  // Whether `node` is inside an armed kNodePartition window right now.
  // Query-only: nothing is counted, nothing is drawn. O(1) when no partition
  // spec is armed.
  bool NodePartitioned(NodeId node) const;

  // Totals, for shims and quick assertions (the registry holds the
  // full fault_injected_<site>_<action>{node,tenant} breakdown).
  uint64_t injected_total() const { return injected_total_; }
  uint64_t injected_at(FaultSite site) const {
    return injected_by_site_[static_cast<size_t>(site)];
  }

 private:
  struct Armed {
    FaultSpec spec;
    bool fired = false;       // One-shot latch.
    uint64_t injections = 0;  // Against max_injections.
  };

  bool Matches(const Armed& armed, FaultSite site, const FaultScope& scope, SimTime now) const;
  void CountInjection(Armed& armed, FaultSite site, const FaultScope& scope);

  Simulator* sim_;
  MetricsRegistry* metrics_;
  Tracer* tracer_ = nullptr;
  Rng rng_;
  std::vector<Armed> specs_;
  uint64_t armed_per_site_[kFaultSiteCount] = {};
  uint64_t injected_by_site_[kFaultSiteCount] = {};
  uint64_t injected_total_ = 0;
};

}  // namespace nadino

#endif  // SRC_CORE_FAULT_H_
