// Per-tenant SLO objects and retry policy.
//
// Section 4.2 argues the DPU data plane must enforce "workload-specific
// policies" per tenant. The MetricsRegistry already records per-tenant
// latency histograms and fault/drop counters; this module turns them into
// actionable state:
//
//   * SloObject — a tenant's latency targets (p50/p99) plus an error budget
//     over a rolling burn window. Latency samples land in the registry's
//     slo_latency{tenant} histogram (so one snapshot shows raw data AND
//     policy state); terminal errors and retries consume the window's budget.
//   * RetryPolicy — bounded re-transmission with per-attempt timeouts and
//     exponential backoff. The chain executor and the DNE TX path consult it
//     so a FaultPlane drop or a transport NACK becomes a timed re-send
//     instead of a terminal chain failure. The retry budget is capped by the
//     tenant's error budget: a tenant that has burned its window cannot
//     amplify load with further retries.
//   * SloRegistry — owned by Env next to the FaultPlane; one object per
//     registered tenant. The DWRR scheduler consults EffectiveWeight() on
//     each quantum replenishment: a tenant burning its budget gets a bounded
//     weight boost, a tenant flagged as violating another's isolation gets
//     clamped to the minimum weight.
//
// Determinism contract (mirrors the FaultPlane): the registry draws backoff
// jitter from its OWN Rng, seeded from Env's seed, and draws NOTHING for
// unregistered tenants — a run with no SLOs registered is byte-identical to
// a run before this layer existed, and equal seed + equal SLO/retry config
// yields byte-identical metric snapshots.

#ifndef SRC_CORE_SLO_H_
#define SRC_CORE_SLO_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/core/types.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace nadino {

struct SloTarget {
  SimDuration p50_target = 1 * kMillisecond;
  SimDuration p99_target = 10 * kMillisecond;
  // Fraction of the window's requests that may fail (terminal errors) or be
  // retried before the budget is exhausted.
  double error_budget_fraction = 0.01;
  // Rolling window over which the budget is granted and burn rate measured.
  SimDuration burn_window = 1 * kSecond;
  // Budget floor per window: low-traffic tenants (a single chain invocation)
  // still get enough budget to ride out a fault burst.
  uint64_t min_budget_per_window = 16;
};

struct RetryPolicy {
  uint32_t max_attempts = 3;  // Total tries for one message, first included.
  // Per-attempt timeout armed as a simulator event by the chain executor;
  // 0 disables executor-level timeouts (DNE-level retry still applies).
  SimDuration timeout = 2 * kMillisecond;
  SimDuration backoff_base = 100 * kMicrosecond;
  double backoff_multiplier = 2.0;
  SimDuration backoff_cap = 10 * kMillisecond;
  // Backoff is scaled by a seeded uniform draw in [1-j, 1+j); 0 disables
  // jitter (and draws nothing, keeping the RNG stream untouched).
  double jitter_fraction = 0.1;

  // Backoff before attempt `attempt + 1`, given `attempt` tries have failed
  // (attempt >= 1). Deterministic for a given Rng state.
  SimDuration BackoffFor(uint32_t attempt, Rng& rng) const;
};

// Per-tenant SLO state. Created via SloRegistry::Register; all instruments
// live in the shared MetricsRegistry under slo_*{tenant} keys.
class SloObject {
 public:
  SloObject(Simulator* sim, MetricsRegistry* metrics, TenantId tenant, const SloTarget& target);

  SloObject(const SloObject&) = delete;
  SloObject& operator=(const SloObject&) = delete;

  TenantId tenant() const { return tenant_; }
  const SloTarget& target() const { return target_; }

  // A request entered the current window (grows the window's budget grant).
  void RecordRequest();

  // A request completed; feeds slo_latency{tenant} and counts a violation
  // when the sample exceeds the p99 target.
  void RecordLatency(SimDuration latency);

  // Terminal failure (retries exhausted, budget denied, pool exhausted):
  // consumes budget and counts slo_errors{tenant}.
  void RecordError();

  // Retry admission: consumes one unit of the window's error budget and
  // returns true, or returns false (counting slo_budget_exhausted{tenant})
  // when the window's grant is spent. Gate every re-send on this.
  bool TryConsumeRetryToken();

  // Budget units granted for the current window given its traffic so far.
  uint64_t BudgetAllowed() const;

  // consumed / allowed for the current window; >= 1.0 means exhausted.
  double BurnRate() const;

  // True when the tenant is actively burning budget this window (the DWRR
  // boost trigger; see SloRegistry::EffectiveWeight).
  bool Burning() const { return WindowIndex() == window_index_ && window_consumed_ > 0; }

  uint64_t window_requests() const {
    return WindowIndex() == window_index_ ? window_requests_ : 0;
  }
  uint64_t window_consumed() const {
    return WindowIndex() == window_index_ ? window_consumed_ : 0;
  }

 private:
  int64_t WindowIndex() const;
  // Lazily rolls the window counters forward to the current window.
  void MaybeRoll();

  Simulator* sim_;
  TenantId tenant_;
  SloTarget target_;
  int64_t window_index_ = 0;
  uint64_t window_requests_ = 0;
  uint64_t window_consumed_ = 0;
  // Registry-backed instruments (labels: {tenant}), resolved once at
  // construction into raw-word handles (metrics.h).
  CounterHandle m_requests_;
  CounterHandle m_violations_;
  CounterHandle m_errors_;
  CounterHandle m_budget_consumed_;
  CounterHandle m_budget_exhausted_;
  HistogramHandle m_latency_;
};

// Owned by Env; one per experiment. Not thread-safe (neither is the sim).
class SloRegistry {
 public:
  SloRegistry(Simulator* sim, MetricsRegistry* metrics, uint64_t seed);

  SloRegistry(const SloRegistry&) = delete;
  SloRegistry& operator=(const SloRegistry&) = delete;

  // Creates (or returns) the tenant's SloObject and publishes its
  // slo_burn_rate{tenant} gauge callback.
  SloObject* Register(TenantId tenant, const SloTarget& target);

  // nullptr when the tenant never registered — callers treat that as
  // "no policy" and fall back to pre-SLO behaviour (and draw no RNG).
  SloObject* OfTenant(TenantId tenant);

  void SetRetryPolicy(TenantId tenant, const RetryPolicy& policy);
  // nullptr => no retries for this tenant (terminal failures as before).
  const RetryPolicy* RetryPolicyOf(TenantId tenant) const;

  bool empty() const { return objects_.empty() && retry_policies_.empty(); }

  // True when any registered tenant is currently burning error budget — the
  // cluster-wide signal the placement subsystem (spreader weights, rebalancer
  // trigger) consults. False with no tenants registered (draws nothing).
  bool AnyBurning() const;

  // Shared stream for backoff jitter; separate from Env's workload Rng so
  // arming retries never perturbs workload synthesis.
  Rng& jitter_rng() { return rng_; }

  // Operator verdict that `tenant` is violating another tenant's isolation
  // (e.g. retry-amplifying into a shared queue): its DWRR weight is clamped
  // to 1 until cleared.
  void SetClamped(TenantId tenant, bool clamped);
  bool IsClamped(TenantId tenant) const;

  // The DWRR hook: weight the scheduler should use for this replenishment.
  // Unregistered tenant => base. Clamped => 1. Burning its error budget =>
  // bounded boost (base + ceil(base/2), at most 2*base) so a tenant paying
  // for faults gets a recovery share without starving others.
  uint32_t EffectiveWeight(TenantId tenant, uint32_t base) const;

 private:
  Simulator* sim_;
  MetricsRegistry* metrics_;
  Rng rng_;
  std::map<TenantId, std::unique_ptr<SloObject>> objects_;
  std::map<TenantId, RetryPolicy> retry_policies_;
  std::map<TenantId, bool> clamped_;
};

}  // namespace nadino

#endif  // SRC_CORE_SLO_H_
