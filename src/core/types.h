// Common identifier types shared across the NADINO modules.

#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace nadino {

using NodeId = uint32_t;
using TenantId = uint32_t;
using FunctionId = uint32_t;
using PoolId = uint32_t;
using QpNum = uint32_t;
using ChainId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFF;
inline constexpr FunctionId kInvalidFunction = 0xFFFFFFFF;
inline constexpr TenantId kInvalidTenant = 0xFFFFFFFF;

// Identifies who currently owns a shared-memory buffer. NADINO's buffer
// lifecycle uses exclusive ownership semantics (paper section 3.5.1): only the
// owner may read, write, or recycle a buffer.
struct OwnerId {
  enum class Kind : uint8_t {
    kNone = 0,     // Free in the pool.
    kFunction,     // A user function (id = FunctionId).
    kEngine,       // A network engine: DNE/CNE/ingress worker (id = engine id).
    kRnic,         // Posted to the RNIC receive queue / in-flight DMA.
    kExternal,     // Owned by test/benchmark harness code.
  };

  Kind kind = Kind::kNone;
  uint32_t id = 0;

  friend bool operator==(const OwnerId&, const OwnerId&) = default;

  static OwnerId None() { return {Kind::kNone, 0}; }
  static OwnerId Function(FunctionId f) { return {Kind::kFunction, f}; }
  static OwnerId Engine(uint32_t e) { return {Kind::kEngine, e}; }
  static OwnerId Rnic(uint32_t n) { return {Kind::kRnic, n}; }
  static OwnerId External(uint32_t x = 0) { return {Kind::kExternal, x}; }

  std::string ToString() const;
};

}  // namespace nadino

#endif  // SRC_CORE_TYPES_H_
