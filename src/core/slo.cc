#include "src/core/slo.h"

#include <algorithm>
#include <cmath>

namespace nadino {

SimDuration RetryPolicy::BackoffFor(uint32_t attempt, Rng& rng) const {
  if (attempt == 0) {
    attempt = 1;
  }
  double delay = static_cast<double>(backoff_base);
  for (uint32_t i = 1; i < attempt; ++i) {
    delay *= backoff_multiplier;
    if (delay >= static_cast<double>(backoff_cap)) {
      break;
    }
  }
  delay = std::min(delay, static_cast<double>(backoff_cap));
  if (jitter_fraction > 0.0) {
    delay *= rng.Uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
  }
  return std::max<SimDuration>(1, static_cast<SimDuration>(delay));
}

// ---------------------------------------------------------------------------
// SloObject
// ---------------------------------------------------------------------------

SloObject::SloObject(Simulator* sim, MetricsRegistry* metrics, TenantId tenant,
                     const SloTarget& target)
    : sim_(sim), tenant_(tenant), target_(target) {
  const MetricLabels labels = MetricLabels::Tenant(static_cast<int64_t>(tenant));
  m_requests_ = metrics->ResolveCounter("slo_requests", labels);
  m_violations_ = metrics->ResolveCounter("slo_violations", labels);
  m_errors_ = metrics->ResolveCounter("slo_errors", labels);
  m_budget_consumed_ = metrics->ResolveCounter("slo_error_budget_consumed", labels);
  m_budget_exhausted_ = metrics->ResolveCounter("slo_budget_exhausted", labels);
  m_latency_ = metrics->ResolveHistogram("slo_latency", labels);
}

int64_t SloObject::WindowIndex() const {
  return target_.burn_window <= 0 ? 0 : sim_->now() / target_.burn_window;
}

void SloObject::MaybeRoll() {
  const int64_t index = WindowIndex();
  if (index != window_index_) {
    window_index_ = index;
    window_requests_ = 0;
    window_consumed_ = 0;
  }
}

void SloObject::RecordRequest() {
  MaybeRoll();
  ++window_requests_;
  m_requests_.Increment();
}

void SloObject::RecordLatency(SimDuration latency) {
  MaybeRoll();
  m_latency_.Record(latency);
  if (latency > target_.p99_target) {
    m_violations_.Increment();
  }
}

void SloObject::RecordError() {
  MaybeRoll();
  ++window_consumed_;
  m_errors_.Increment();
  m_budget_consumed_.Increment();
}

uint64_t SloObject::BudgetAllowed() const {
  const uint64_t requests = WindowIndex() == window_index_ ? window_requests_ : 0;
  const uint64_t earned = static_cast<uint64_t>(
      std::ceil(static_cast<double>(requests) * target_.error_budget_fraction));
  return std::max(earned, target_.min_budget_per_window);
}

bool SloObject::TryConsumeRetryToken() {
  MaybeRoll();
  if (window_consumed_ >= BudgetAllowed()) {
    m_budget_exhausted_.Increment();
    return false;
  }
  ++window_consumed_;
  m_budget_consumed_.Increment();
  return true;
}

double SloObject::BurnRate() const {
  const uint64_t allowed = BudgetAllowed();
  if (allowed == 0) {
    return 0.0;
  }
  const uint64_t consumed = WindowIndex() == window_index_ ? window_consumed_ : 0;
  return static_cast<double>(consumed) / static_cast<double>(allowed);
}

// ---------------------------------------------------------------------------
// SloRegistry
// ---------------------------------------------------------------------------

namespace {
// Decorrelates the jitter stream from both the workload Rng and the
// FaultPlane Rng, which are seeded from the same Env seed.
constexpr uint64_t kSloSeedSalt = 0x510b0b5e'd15ea5edull;
}  // namespace

SloRegistry::SloRegistry(Simulator* sim, MetricsRegistry* metrics, uint64_t seed)
    : sim_(sim), metrics_(metrics), rng_(seed ^ kSloSeedSalt) {}

SloObject* SloRegistry::Register(TenantId tenant, const SloTarget& target) {
  auto it = objects_.find(tenant);
  if (it != objects_.end()) {
    return it->second.get();
  }
  auto object = std::make_unique<SloObject>(sim_, metrics_, tenant, target);
  SloObject* raw = object.get();
  objects_[tenant] = std::move(object);
  metrics_->RegisterGaugeCallback("slo_burn_rate",
                                  MetricLabels::Tenant(static_cast<int64_t>(tenant)),
                                  [raw] { return raw->BurnRate(); });
  return raw;
}

SloObject* SloRegistry::OfTenant(TenantId tenant) {
  const auto it = objects_.find(tenant);
  return it == objects_.end() ? nullptr : it->second.get();
}

void SloRegistry::SetRetryPolicy(TenantId tenant, const RetryPolicy& policy) {
  retry_policies_[tenant] = policy;
}

const RetryPolicy* SloRegistry::RetryPolicyOf(TenantId tenant) const {
  const auto it = retry_policies_.find(tenant);
  return it == retry_policies_.end() ? nullptr : &it->second;
}

void SloRegistry::SetClamped(TenantId tenant, bool clamped) {
  if (clamped) {
    clamped_[tenant] = true;
  } else {
    clamped_.erase(tenant);
  }
}

bool SloRegistry::IsClamped(TenantId tenant) const { return clamped_.count(tenant) > 0; }

bool SloRegistry::AnyBurning() const {
  for (const auto& [tenant, object] : objects_) {
    (void)tenant;
    if (object->Burning()) {
      return true;
    }
  }
  return false;
}

uint32_t SloRegistry::EffectiveWeight(TenantId tenant, uint32_t base) const {
  if (base == 0) {
    base = 1;
  }
  if (IsClamped(tenant)) {
    return 1;
  }
  const auto it = objects_.find(tenant);
  if (it == objects_.end() || !it->second->Burning()) {
    return base;
  }
  const uint32_t boosted = base + (base + 1) / 2;
  return std::min(boosted, base * 2u);
}

}  // namespace nadino
