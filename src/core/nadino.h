// NADINO — public API façade.
//
// Include this header to get the full library: the simulation kernel, memory
// subsystem, RDMA/DPU/transport substrates, the DNE network engine, the
// NADINO data plane, ingress gateway, baselines, the Online Boutique
// application, and the experiment harness that regenerates every table and
// figure of the paper.
//
// Typical usage (see examples/quickstart.cc):
//
//   nadino::CostModel cost = nadino::CostModel::Default();
//   nadino::DneEchoOptions options;
//   options.payload = 64;
//   nadino::EchoResult r = nadino::RunDneEcho(cost, options);
//
// or assemble a cluster by hand with nadino::Cluster, NadinoDataPlane,
// ChainExecutor, and IngressGateway for custom topologies.

#ifndef SRC_CORE_NADINO_H_
#define SRC_CORE_NADINO_H_

#include "src/apps/boutique.h"
#include "src/baselines/baseline_dataplane.h"
#include "src/baselines/capabilities.h"
#include "src/core/calibration.h"
#include "src/core/experiments.h"
#include "src/core/types.h"
#include "src/dne/nadino_dataplane.h"
#include "src/dne/network_engine.h"
#include "src/dne/rbr_table.h"
#include "src/dne/scheduler.h"
#include "src/dpu/comch.h"
#include "src/dpu/cross_mmap.h"
#include "src/dpu/dpu.h"
#include "src/ingress/gateway.h"
#include "src/mem/buffer_pool.h"
#include "src/mem/copy_engine.h"
#include "src/mem/hugepage_arena.h"
#include "src/mem/tenant_registry.h"
#include "src/mem/token.h"
#include "src/rdma/control_plane.h"
#include "src/rdma/distributed_lock.h"
#include "src/rdma/rdma_engine.h"
#include "src/runtime/chain.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/function.h"
#include "src/runtime/message_header.h"
#include "src/runtime/node.h"
#include "src/runtime/routing_table.h"
#include "src/runtime/workload.h"
#include "src/sim/link.h"
#include "src/sim/random.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/transport/http.h"
#include "src/transport/tcp_model.h"

#endif  // SRC_CORE_NADINO_H_
