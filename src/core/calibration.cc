#include "src/core/calibration.h"

namespace nadino {

const CostModel& CostModel::Default() {
  static const CostModel model{};
  return model;
}

}  // namespace nadino
