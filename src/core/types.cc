#include "src/core/types.h"

namespace nadino {

std::string OwnerId::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kFunction:
      return "function:" + std::to_string(id);
    case Kind::kEngine:
      return "engine:" + std::to_string(id);
    case Kind::kRnic:
      return "rnic:" + std::to_string(id);
    case Kind::kExternal:
      return "external:" + std::to_string(id);
  }
  return "invalid";
}

}  // namespace nadino
