// The unified execution context threaded through every layer.
//
// Before Env, each component was hand-wired with some subset of the
// (Simulator*, CostModel*, Tracer*) pointer triple plus its own private Stats
// struct. Env bundles the shared infrastructure once — the simulator clock,
// the calibrated cost model, an optional tracer, a seeded PRNG, and the
// MetricsRegistry — and components take an `Env&` instead. The Env does not
// own the simulator or cost model (the Cluster or the test fixture does); it
// DOES own the Rng and the MetricsRegistry, so one experiment has exactly one
// metric namespace and one deterministic random stream.
//
// Ownership/threading conventions are documented in DESIGN.md.

#ifndef SRC_CORE_ENV_H_
#define SRC_CORE_ENV_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/core/calibration.h"
#include "src/core/fault.h"
#include "src/core/slo.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace nadino {

inline constexpr uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ull;

class Env {
 public:
  Env(Simulator* sim, const CostModel* cost, uint64_t seed = kDefaultSeed,
      Tracer* tracer = nullptr)
      : sim_(sim), cost_(cost), tracer_(tracer), seed_(seed), rng_(seed),
        faults_(sim, &metrics_, seed), slos_(sim, &metrics_, seed) {
    faults_.SetTracer(tracer_);
  }

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }
  SimTime now() const { return sim_->now(); }

  const CostModel& cost() const { return *cost_; }

  // The tracer is optional; components emit through Trace() which no-ops when
  // none is installed.
  Tracer* tracer() { return tracer_; }
  void SetTracer(Tracer* tracer) {
    tracer_ = tracer;
    faults_.SetTracer(tracer);
  }
  void Trace(TraceCategory category, uint32_t actor, std::string label, uint64_t arg0 = 0,
             uint64_t arg1 = 0) {
    if (tracer_ != nullptr) {
      tracer_->Record(category, actor, std::move(label), arg0, arg1);
    }
  }

  uint64_t seed() const { return seed_; }
  Rng& rng() { return rng_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // The unified fault-injection plane every message-crossing boundary
  // consults (see src/core/fault.h and DESIGN.md §3a).
  FaultPlane& faults() { return faults_; }
  const FaultPlane& faults() const { return faults_; }

  // Per-tenant SLO objects and retry policies; the recovery counterpart to
  // the FaultPlane (see src/core/slo.h and DESIGN.md §3b).
  SloRegistry& slos() { return slos_; }
  const SloRegistry& slos() const { return slos_; }

 private:
  Simulator* sim_;
  const CostModel* cost_;
  Tracer* tracer_;
  uint64_t seed_;
  Rng rng_;
  MetricsRegistry metrics_;
  FaultPlane faults_;  // After metrics_: constructed with its address.
  SloRegistry slos_;   // Likewise.
};

}  // namespace nadino

#endif  // SRC_CORE_ENV_H_
