// Experiment harness: cluster assembly plus one entry point per paper
// experiment. The bench binaries under bench/ are thin wrappers that call
// these and print the paper-shaped rows; tests reuse them for calibration and
// integration coverage.

#ifndef SRC_CORE_EXPERIMENTS_H_
#define SRC_CORE_EXPERIMENTS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/boutique.h"
#include "src/baselines/baseline_dataplane.h"
#include "src/cluster/cluster.h"
#include "src/core/calibration.h"
#include "src/core/env.h"
#include "src/dne/nadino_dataplane.h"
#include "src/dpu/comch.h"
#include "src/ingress/gateway.h"
#include "src/rdma/rdma_engine.h"
#include "src/runtime/node.h"
#include "src/runtime/routing_table.h"
#include "src/runtime/workload.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace nadino {

// Cluster assembly (nodes + fabric + routing + membership) lives in
// src/cluster/cluster.h; experiments build on it unchanged.

// ---------------------------------------------------------------------------
// Echo microbenchmarks (Figs. 6, 11, 12)
// ---------------------------------------------------------------------------

struct EchoResult {
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double rps = 0.0;
  uint64_t completed = 0;
  // Full registry dump at the end of the run (deterministic; sorted keys).
  std::string metrics_text;
  std::string metrics_json;
};

// DNE/CNE echo across two worker nodes.
struct DneEchoOptions {
  uint32_t payload = 64;
  int concurrency = 1;
  SimDuration duration = 1 * kSecond;
  SimDuration warmup = 100 * kMillisecond;
  bool on_path = false;
  NetworkEngine::Kind kind = NetworkEngine::Kind::kDne;
  // false: the engines themselves are the echo endpoints (Fig. 12 setup);
  // true: host functions echo through Comch/SK_MSG (Fig. 6 setup).
  bool via_functions = false;
  SimDuration extra_engine_cost = 0;
};
EchoResult RunDneEcho(const CostModel& cost, const DneEchoOptions& options);

// Functions drive two-sided verbs directly, on host or DPU cores (Fig. 6).
struct NativeEchoOptions {
  uint32_t payload = 64;
  int concurrency = 1;
  SimDuration duration = 1 * kSecond;
  SimDuration warmup = 100 * kMillisecond;
  bool on_dpu_cores = false;
};
EchoResult RunNativeRdmaEcho(const CostModel& cost, const NativeEchoOptions& options);

// One-sided alternatives of Fig. 3 / Fig. 12.
enum class OneSidedVariant {
  kOwrcBest,   // One-sided write + receiver-side copy, cache-hot copy.
  kOwrcWorst,  // Same with forced main-memory copy.
  kOwdl,       // One-sided write + distributed locks, unified pool.
};
struct OneSidedEchoOptions {
  OneSidedVariant variant = OneSidedVariant::kOwrcBest;
  uint32_t payload = 64;
  int concurrency = 1;
  SimDuration duration = 1 * kSecond;
  SimDuration warmup = 100 * kMillisecond;
};
EchoResult RunOneSidedEcho(const CostModel& cost, const OneSidedEchoOptions& options);

// ---------------------------------------------------------------------------
// Cross-processor channel benchmark (Fig. 9)
// ---------------------------------------------------------------------------

struct ComchBenchOptions {
  ComchVariant variant = ComchVariant::kEvent;
  int num_functions = 1;
  SimDuration duration = 500 * kMillisecond;
  SimDuration warmup = 50 * kMillisecond;
};
struct ComchBenchResult {
  double mean_rtt_us = 0.0;
  double descriptor_rps = 0.0;
  std::string metrics_text;
  std::string metrics_json;
};
ComchBenchResult RunComchBench(const CostModel& cost, const ComchBenchOptions& options);

// ---------------------------------------------------------------------------
// Ingress experiments (Figs. 13, 14)
// ---------------------------------------------------------------------------

struct IngressEchoOptions {
  IngressMode mode = IngressMode::kNadino;
  int clients = 1;
  SimDuration duration = 1 * kSecond;
  SimDuration warmup = 200 * kMillisecond;
  uint32_t payload = 256;
  bool autoscale = false;
  int initial_workers = 1;
  int max_workers = 8;
  // Fig. 14 ramp: add one client every `ramp_interval` until `clients`.
  SimDuration ramp_interval = 0;
  SimDuration sample_period = kSecond;
  uint64_t seed = kDefaultSeed;
  // Same install-before-workload contract as MultiTenantOptions: faults into
  // the FaultPlane, SLO targets / retry policies into the SloRegistry (the
  // gateway tenant is tenant 1). Equal seed + equal specs reproduce the run
  // bit-for-bit.
  std::vector<FaultSpec> faults;
  std::map<TenantId, SloTarget> slos;
  std::map<TenantId, RetryPolicy> retries;
};
struct IngressEchoResult {
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double rps = 0.0;
  TimeSeries cpu_series;  // Worker cores in use (busy-poll aware).
  TimeSeries rps_series;
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;
  int final_workers = 0;
  // Total simulator callbacks executed, for wall-clock perf accounting
  // (bench/simperf.cc divides wall time by this to get ns/event).
  uint64_t sim_events = 0;
  std::string metrics_text;
  std::string metrics_json;
};
IngressEchoResult RunIngressEcho(const CostModel& cost, const IngressEchoOptions& options);

// ---------------------------------------------------------------------------
// RDMA multi-tenancy (Figs. 15, 17)
// ---------------------------------------------------------------------------

struct TenantScenario {
  TenantId tenant = 1;
  uint32_t weight = 1;
  SimTime start = 0;
  SimTime stop = 0;
  int window = 64;
  uint32_t payload = 1024;
};
struct MultiTenantOptions {
  bool use_dwrr = true;
  std::vector<TenantScenario> tenants;
  SimDuration duration = 10 * kSecond;
  SimDuration sample_period = kSecond;
  // Throttle reproducing "DNE configured to sustain ~110K RPS on one core".
  SimDuration extra_engine_cost = 1200;
  uint64_t seed = kDefaultSeed;
  // Installed into the cluster Env's FaultPlane before the workload starts.
  // Equal seed + equal specs reproduce the faulted run bit-for-bit (the
  // determinism contract in DESIGN.md section 3a).
  std::vector<FaultSpec> faults;
  // Registered into the cluster Env's SloRegistry before the workload
  // starts: per-tenant SLO targets (latency/error budget) and retry
  // policies the DNE TX path consults. Same determinism contract.
  std::map<TenantId, SloTarget> slos;
  std::map<TenantId, RetryPolicy> retries;
};
struct MultiTenantResult {
  std::map<TenantId, TimeSeries> tenant_rps;
  std::map<TenantId, uint64_t> tenant_completed;
  // Per-tenant messages the TX schedulers served, read back from the
  // registry's engine_tenant_served instruments (summed over engines).
  std::map<TenantId, uint64_t> tenant_served;
  // dataplane_drops from the registry.
  uint64_t drops = 0;
  double aggregate_rps = 0.0;
  // Total simulator callbacks executed (wall-clock perf accounting).
  uint64_t sim_events = 0;
  std::string metrics_text;
  std::string metrics_json;
};
MultiTenantResult RunMultiTenant(const CostModel& cost, const MultiTenantOptions& options);

// ---------------------------------------------------------------------------
// Online Boutique end-to-end (Fig. 16, Table 2)
// ---------------------------------------------------------------------------

enum class SystemUnderTest {
  kNadinoDne,
  kNadinoCne,
  kFuyaoF,
  kFuyaoK,
  kJunction,
  kSpright,
  kNightcore,
};

std::string SystemName(SystemUnderTest system);

struct BoutiqueOptions {
  SystemUnderTest system = SystemUnderTest::kNadinoDne;
  ChainId chain = kHomeQueryChain;
  int clients = 20;
  SimDuration duration = 2 * kSecond;
  SimDuration warmup = 300 * kMillisecond;
  uint64_t seed = kDefaultSeed;
};
struct BoutiqueResult {
  double rps = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  // Worker-side data-plane CPU (engines, pollers, portals, scheduler cores),
  // in cores; function cores are excluded since the app is identical across
  // systems. DPU cores are the DNE's two wimpy cores.
  double dataplane_cpu_cores = 0.0;
  double dpu_cores = 0.0;
  uint64_t errors = 0;
  std::string metrics_text;
  std::string metrics_json;
};
BoutiqueResult RunBoutique(const CostModel& cost, const BoutiqueOptions& options);

// ---------------------------------------------------------------------------
// N-node scaling (DESIGN.md §3e)
// ---------------------------------------------------------------------------

// Per-tenant pipeline chains over an N-worker cluster with the placement
// subsystem enabled: stages placed by ChainPlacer (locality-aware), each stage
// registered on `replicas` nodes, requests spread by the weighted spreader.
// bench/node_scale.cc sweeps `nodes` in {2, 8, 16, 64}.
struct NodeScaleOptions {
  int nodes = 8;
  int replicas = 2;       // Placements per stage (1 = no spreading possible).
  int tenants = 2;        // One pipeline chain per tenant.
  int stages = 3;         // Functions per pipeline, entry included.
  int requests_per_tenant = 400;
  SimDuration spacing = 200 * kMicrosecond;  // Open-loop inter-request gap.
  uint32_t payload = 512;
  SimDuration duration = 2 * kSecond;  // Total run (sends + drain).
  uint64_t seed = kDefaultSeed;
  // Placement subsystem knobs (src/cluster/placement.h).
  bool spread = true;
  bool utilization_weights = false;
  bool rebalance = false;
  SimDuration rebalance_period = 50 * kMillisecond;
  int capacity_per_node = 2;  // ChainPlacer slot budget per node.
};
struct NodeScaleResult {
  double rps = 0.0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t migrations = 0;
  // Sum of ChainPlacer crossing scores across tenants (2 per cross-node
  // call edge; the locality objective the placer minimizes).
  int chain_crossing_score = 0;
  // Committing resolutions of each tenant's entry function, per node —
  // direct evidence of replica spreading.
  std::map<NodeId, uint64_t> entry_resolved;
  // Worst max/min resolved ratio across multi-replica functions that saw
  // at least 100 picks (1.0 = perfectly even; tests assert <= 1.5).
  double replica_skew = 0.0;
  std::string metrics_text;
  std::string metrics_json;
};
NodeScaleResult RunNodeScale(const CostModel& cost, const NodeScaleOptions& options);

// ---------------------------------------------------------------------------
// Tenant churn: the elastic control plane under arrival/departure (DESIGN.md
// §3f). Tenants arrive by a seeded Poisson process on a two-worker cluster,
// echo for an exponential lifetime, then idle out: the cold-start sweeper
// retires the server instance and the retirement hook tears the tenant's QPs
// down (ConnectionService::DestroyTenant). Compares setup policies: eager
// per-tenant prewarm vs. lazy on-demand vs. lazy + tenant-shared QPs.
// ---------------------------------------------------------------------------

struct TenantChurnOptions {
  ConnectPolicy policy = ConnectPolicy::kEager;
  int tenants = 200;
  SimDuration mean_interarrival = 10 * kMillisecond;  // Poisson arrivals.
  SimDuration mean_lifetime = 120 * kMillisecond;     // Exponential, >= 5 ms.
  SimDuration duration = 5 * kSecond;
  uint32_t payload = 256;
  int window = 2;
  int establish_batch = 1;
  int prewarm_connections = 2;  // Eager policy only.
  // Instance lifetime: a server instance idle this long is retired by the
  // sweeper, which triggers the tenant's control-plane reclaim.
  SimDuration keep_warm_timeout = 60 * kMillisecond;
  SimDuration sweep_period = 20 * kMillisecond;
  uint64_t seed = kDefaultSeed;
};
struct TenantChurnResult {
  uint64_t tenants_arrived = 0;
  uint64_t tenants_departed = 0;    // Retired and reclaimed.
  uint64_t tenants_first_byte = 0;  // Completed at least one echo.
  uint64_t completed = 0;           // Echo invocations across all tenants.
  // Time from tenant arrival to its first completed echo — what a cold
  // tenant actually waits on the control plane for.
  double ttfb_mean_ms = 0.0;
  double ttfb_p99_ms = 0.0;
  // Control-plane verb accounting, summed over both node services.
  uint64_t setup_verbs = 0;    // create + modify.
  uint64_t destroy_verbs = 0;
  uint64_t connects = 0;
  uint64_t establishes = 0;    // On-demand setups (lazy policies).
  uint64_t destroys = 0;       // QPs reclaimed on departure.
  // Amplification: (setup + destroy verbs) per completed invocation.
  double verbs_per_invocation = 0.0;
  uint64_t sim_events = 0;
  std::string metrics_text;
  std::string metrics_json;
};
TenantChurnResult RunTenantChurn(const CostModel& cost, const TenantChurnOptions& options);

// ---------------------------------------------------------------------------
// Open-loop scale (DESIGN.md §3g): simulated users aggregated into per-tenant
// Poisson arrival processes (diurnal curve + optional flash crowd) driving
// DNE echo pairs across an N-worker cluster. Arrivals are batch-admitted onto
// per-node event-queue shards; load that outruns capacity is shed, not
// queued, so memory stays O(tenants + in-flight) while offered load scales
// from 10k to 1M users. bench/openloop_scale.cc sweeps `users` and, in
// --perf-compare mode, races sharded admission against the single heap.
// ---------------------------------------------------------------------------

struct OpenLoopScaleOptions {
  int nodes = 4;
  int tenants = 8;     // One echo pair per tenant, round-robin across nodes.
  uint64_t users = 10000;
  double rps_per_user = 1.0;  // users x rps_per_user = aggregate offered rate.
  uint32_t event_shards = 0;  // 0 = one shard per worker node; 1 = single heap.
  uint32_t payload = 256;
  SimDuration tick = 10 * kMillisecond;  // Admission quantum.
  SimTime horizon = 1 * kSecond;         // Generation window.
  SimDuration drain = 200 * kMillisecond;
  uint64_t max_in_flight_per_tenant = 1024;  // Open-loop shed threshold.
  // Rate shaping: one compressed diurnal cycle over the horizon, plus a
  // flash crowd adding this fraction of the base rate for horizon/10 at
  // mid-run (0 disables the burst).
  bool diurnal = true;
  double flash_crowd_fraction = 0.0;
  SimDuration sample_period = 250 * kMillisecond;
  SimDuration extra_engine_cost = 1200;  // Same DNE throttle as Fig. 15.
  uint64_t seed = kDefaultSeed;
  std::vector<FaultSpec> faults;
};
struct OpenLoopScaleResult {
  uint64_t offered = 0;
  uint64_t dispatched = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t in_flight_peak = 0;
  double offered_rps = 0.0;
  double goodput_rps = 0.0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  // Responses that matched no pending request (fault-free runs: 0).
  uint64_t unmatched_responses = 0;
  // Requests still pending after the drain (lost in flight under faults).
  uint64_t pending_at_end = 0;
  // Simulator slab slots ever allocated: the flat-per-user-memory evidence
  // (stays bounded by in-flight + ticks, not by users).
  uint64_t slab_slots = 0;
  uint64_t sim_events = 0;
  std::string metrics_text;
  std::string metrics_json;
};
OpenLoopScaleResult RunOpenLoopScale(const CostModel& cost, const OpenLoopScaleOptions& options);

// ---------------------------------------------------------------------------
// Parallel shard drain (DESIGN.md §3h)
// ---------------------------------------------------------------------------

// The shard-confined open-loop workload that exercises the simulator's
// multi-worker drain: one tenant per node, the tenant's client state pinned
// to its node's event-queue shard, its server engine pinned to the opposite
// shard, every cross-shard transition a fabric hop >= the installed
// lookahead (OpenLoopShardEchoDriver::HopFloor). Aggregates are
// worker-count independent; the parallel drain tests assert exact equality
// across event_workers in {1, 2, 4, 8} and bench/openloop_scale gates
// multi-worker wall-clock beating the serial drain at the 1M-user point.
struct ParallelDrainOptions {
  int nodes = 16;  // == tenants == event shards: one echo lane per node.
  uint64_t users = 100000;
  double rps_per_user = 1.0;
  uint32_t event_workers = 1;  // Simulator drain threads (1 = serial).
  // StageWork rounds per service: real ALU work the parallel drain spreads
  // across cores, and ~payload/4 ns of modeled service time.
  uint32_t payload = 256;
  SimDuration tick = 10 * kMillisecond;
  SimTime horizon = 250 * kMillisecond;
  SimDuration drain = 100 * kMillisecond;
  // Effectively uncapped by default: a binding cap makes the shed decision
  // depend on the order of same-nanosecond cross-shard ties, which the
  // strided parallel seqs order differently from the serial run (DESIGN.md
  // §3h, determinism contract). Lower it only in fixed-worker-count runs.
  uint64_t max_in_flight_per_tenant = 1ull << 30;
  // Per-shard server buffer pool; sized generously for the same reason —
  // exhaustion decisions must not ride on tie order.
  uint64_t buffers_per_shard = 8192;
  SimDuration slo_target = 1 * kMillisecond;
  bool diurnal = false;
  double flash_crowd_fraction = 0.0;
  uint64_t seed = kDefaultSeed;
};
struct ParallelDrainResult {
  // Source-side accounting (offered == dispatched + shed).
  uint64_t offered = 0;
  uint64_t dispatched = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t dropped = 0;
  // Server-side accounting.
  uint64_t served = 0;
  uint64_t server_drops = 0;
  uint64_t slo_violations = 0;
  // XOR digest over shard engines: certifies identical request service
  // timings across worker counts, not merely identical counts.
  uint64_t digest = 0;
  uint64_t buffers_leaked = 0;  // 0 after a clean drain.
  double goodput_rps = 0.0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  // Per-tenant lanes (index == tenant index).
  std::vector<uint64_t> tenant_completed;
  std::vector<uint64_t> tenant_served;
  std::vector<uint64_t> tenant_shed;
  std::vector<uint64_t> tenant_dropped;
  std::vector<uint64_t> tenant_slo_violations;
  // Engine-side evidence.
  uint64_t sim_events = 0;
  uint64_t slab_slots = 0;
  uint64_t heap_spills = 0;        // EventCallback heap spills (hot paths: 0).
  uint64_t windows = 0;            // Conservative windows executed (0 serial).
  uint64_t mail_delivered = 0;     // Cross-shard events via mailboxes.
  uint64_t horizon_clamps = 0;     // Windows clamped by the run deadline.
  // The per-worker CounterLanes demo: dispatched requests counted on each
  // worker's lane and folded at every window barrier; equals `dispatched`.
  uint64_t lane_dispatched = 0;
};
ParallelDrainResult RunParallelDrain(const CostModel& cost, const ParallelDrainOptions& options);

// ---------------------------------------------------------------------------
// NIC-offloaded chain dispatch (DESIGN.md §3i)
// ---------------------------------------------------------------------------

// Linear per-tenant pipeline chains striped across the cluster (stage i of
// tenant t on node (t + i) % nodes, so every hop crosses the wire; the client
// is colocated with its entry). With `offload` set the chains are compiled
// into WR programs (ChainExecutor::OffloadChain) and every hop executes on
// the RNIC — no DPU/host core occupancy per hop; otherwise the identical
// workload runs through the software executor. bench/chain_offload.cc
// compares both against the Comch-E/Comch-P software variants.
struct ChainOffloadOptions {
  int nodes = 3;
  int stages = 3;  // Functions per pipeline, entry included.
  int tenants = 2;
  int requests_per_tenant = 300;
  uint32_t payload = 256;
  SimDuration spacing = 150 * kMicrosecond;  // Open-loop inter-request gap.
  ComchVariant comch_variant = ComchVariant::kEvent;
  bool offload = true;
  SimDuration duration = 2 * kSecond;  // Total run (sends + drain).
  std::vector<FaultSpec> faults;       // e.g. wrprog_trigger / wrprog_cond.
  uint64_t seed = kDefaultSeed;
};
struct ChainOffloadResult {
  uint64_t completed = 0;  // Responses observed by the clients.
  uint64_t errors = 0;
  // Per-tenant completions — what the offload/software equivalence property
  // test compares under equal seeds.
  std::map<TenantId, uint64_t> tenant_completed;
  uint64_t hops_installed = 0;      // WR programs installed at setup.
  uint64_t offloaded_hops = 0;      // Hops executed on-NIC.
  uint64_t offloaded_responses = 0; // Final-hop responses issued on-NIC.
  uint64_t fallbacks = 0;           // Runtime declines to the software path.
  uint64_t wrprog_send_errors = 0;
  uint64_t software_requests = 0;   // Hops handled by the software executor.
  double rps = 0.0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  // mean / (stages + 1): the chain traverses stages+1 wire legs per request
  // (client->entry, the stages-1 interior forwards, final->client).
  double per_hop_latency_us = 0.0;
  // Tenant-pool buffers still out after the drain, NET of the engines'
  // standing posted-RECV credits (RNIC-owned at quiesce by design): 0 when
  // nothing leaked, in software and offloaded runs alike.
  uint64_t buffers_in_use_at_end = 0;
  std::string metrics_text;
  std::string metrics_json;
};
ChainOffloadResult RunChainOffload(const CostModel& cost, const ChainOffloadOptions& options);

}  // namespace nadino

#endif  // SRC_CORE_EXPERIMENTS_H_
