#include "src/apps/boutique.h"

namespace nadino {

namespace {

// Leaf behavior helper: compute + response size, no downstream calls.
FunctionBehavior Leaf(SimDuration compute, uint32_t response_bytes) {
  FunctionBehavior b;
  b.compute = compute;
  b.response_payload = response_bytes;
  return b;
}

}  // namespace

const ChainSpec* BoutiqueSpec::ChainByName(const std::string& name) const {
  for (const ChainSpec& c : chains) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

BoutiqueSpec BuildBoutiqueSpec(TenantId tenant) {
  BoutiqueSpec spec;
  spec.tenant = tenant;
  spec.functions = {
      {kFrontend, "frontend", 0},
      {kCheckout, "checkout", 0},
      {kRecommendation, "recommendation", 0},
      {kProductCatalog, "productcatalog", 1},
      {kCart, "cart", 1},
      {kCurrency, "currency", 1},
      {kShipping, "shipping", 1},
      {kPayment, "payment", 1},
      {kEmail, "email", 1},
      {kAd, "ad", 1},
  };

  // --- Home Query: frontend fans out to 5 services; recommendation consults
  // the product catalog. 12 function-to-function exchanges.
  {
    ChainSpec chain;
    chain.id = kHomeQueryChain;
    chain.tenant = tenant;
    chain.name = "Home Query";
    chain.entry = kFrontend;
    chain.entry_request_payload = 256;
    FunctionBehavior frontend;
    frontend.compute = 8 * kMicrosecond;
    frontend.calls = {
        {kCurrency, 128},
        {kProductCatalog, 192},
        {kCart, 160},
        {kRecommendation, 256},
        {kAd, 128},
    };
    frontend.response_payload = 1400;  // Rendered home page fragment.
    chain.behaviors[kFrontend] = frontend;
    chain.behaviors[kCurrency] = Leaf(2 * kMicrosecond, 256);
    chain.behaviors[kProductCatalog] = Leaf(5 * kMicrosecond, 1024);
    chain.behaviors[kCart] = Leaf(4 * kMicrosecond, 384);
    FunctionBehavior reco;
    reco.compute = 6 * kMicrosecond;
    reco.calls = {{kProductCatalog, 192}};
    reco.response_payload = 512;
    chain.behaviors[kRecommendation] = reco;
    chain.behaviors[kAd] = Leaf(3 * kMicrosecond, 320);
    spec.chains.push_back(chain);
  }

  // --- View Cart: cart contents, per-item catalog lookups, currency,
  // shipping estimate, recommendations. 14 exchanges (the heaviest of the
  // three evaluated chains, as in the paper's Table 2).
  {
    ChainSpec chain;
    chain.id = kViewCartChain;
    chain.tenant = tenant;
    chain.name = "View Cart";
    chain.entry = kFrontend;
    chain.entry_request_payload = 224;
    FunctionBehavior frontend;
    frontend.compute = 8 * kMicrosecond;
    frontend.calls = {
        {kCart, 160},
        {kProductCatalog, 224},  // Cart item details...
        {kProductCatalog, 224},  // ...looked up per item (two in the cart).
        {kCurrency, 128},
        {kShipping, 288},
        {kRecommendation, 256},
    };
    frontend.response_payload = 1200;
    chain.behaviors[kFrontend] = frontend;
    chain.behaviors[kCart] = Leaf(5 * kMicrosecond, 512);
    chain.behaviors[kProductCatalog] = Leaf(5 * kMicrosecond, 896);
    chain.behaviors[kCurrency] = Leaf(2 * kMicrosecond, 256);
    chain.behaviors[kShipping] = Leaf(4 * kMicrosecond, 320);
    FunctionBehavior reco;
    reco.compute = 6 * kMicrosecond;
    reco.calls = {{kProductCatalog, 192}};
    reco.response_payload = 512;
    chain.behaviors[kRecommendation] = reco;
    spec.chains.push_back(chain);
  }

  // --- Product Query: product details page. 12 exchanges.
  {
    ChainSpec chain;
    chain.id = kProductQueryChain;
    chain.tenant = tenant;
    chain.name = "Product Query";
    chain.entry = kFrontend;
    chain.entry_request_payload = 200;
    FunctionBehavior frontend;
    frontend.compute = 8 * kMicrosecond;
    frontend.calls = {
        {kProductCatalog, 192},
        {kCurrency, 128},
        {kCart, 160},
        {kRecommendation, 256},
        {kAd, 128},
    };
    frontend.response_payload = 1300;
    chain.behaviors[kFrontend] = frontend;
    chain.behaviors[kProductCatalog] = Leaf(5 * kMicrosecond, 1100);
    chain.behaviors[kCurrency] = Leaf(2 * kMicrosecond, 256);
    chain.behaviors[kCart] = Leaf(4 * kMicrosecond, 384);
    FunctionBehavior reco;
    reco.compute = 6 * kMicrosecond;
    reco.calls = {{kProductCatalog, 192}};
    reco.response_payload = 512;
    chain.behaviors[kRecommendation] = reco;
    chain.behaviors[kAd] = Leaf(3 * kMicrosecond, 320);
    spec.chains.push_back(chain);
  }

  // --- Checkout: the deepest path (14 exchanges), exercised by the examples
  // and tests (not part of the paper's three evaluated chains).
  {
    ChainSpec chain;
    chain.id = kCheckoutChain;
    chain.tenant = tenant;
    chain.name = "Checkout";
    chain.entry = kFrontend;
    chain.entry_request_payload = 512;
    FunctionBehavior frontend;
    frontend.compute = 7 * kMicrosecond;
    frontend.calls = {{kCheckout, 480}};
    frontend.response_payload = 900;
    chain.behaviors[kFrontend] = frontend;
    FunctionBehavior checkout;
    checkout.compute = 9 * kMicrosecond;
    checkout.calls = {
        {kCart, 160}, {kProductCatalog, 192}, {kShipping, 288},
        {kCurrency, 128}, {kPayment, 420}, {kEmail, 380},
    };
    checkout.response_payload = 700;
    chain.behaviors[kCheckout] = checkout;
    chain.behaviors[kCart] = Leaf(5 * kMicrosecond, 512);
    chain.behaviors[kProductCatalog] = Leaf(5 * kMicrosecond, 896);
    chain.behaviors[kShipping] = Leaf(4 * kMicrosecond, 320);
    chain.behaviors[kCurrency] = Leaf(2 * kMicrosecond, 256);
    chain.behaviors[kPayment] = Leaf(6 * kMicrosecond, 280);
    chain.behaviors[kEmail] = Leaf(5 * kMicrosecond, 200);
    spec.chains.push_back(chain);
  }

  return spec;
}

}  // namespace nadino
