// A synthetic media-processing pipeline: a linear chain of four stages moving
// large payloads (decode -> resize -> filter -> encode). Where Online
// Boutique stresses fan-out with small messages, this app stresses payload
// size — the regime where zero-copy vs copy-per-hop data planes diverge the
// most. Used by the payload-scaling study (bench/payload_scaling) and the
// large-payload integration tests.

#ifndef SRC_APPS_PIPELINE_H_
#define SRC_APPS_PIPELINE_H_

#include "src/core/types.h"
#include "src/runtime/chain.h"

namespace nadino {

inline constexpr FunctionId kPipelineIngest = 31;
inline constexpr FunctionId kPipelineDecode = 32;
inline constexpr FunctionId kPipelineFilter = 33;
inline constexpr FunctionId kPipelineEncode = 34;
inline constexpr ChainId kPipelineChain = 20;

struct PipelineSpec {
  TenantId tenant = 1;
  ChainSpec chain;
  // Stage ids in order; place alternately across nodes so every hop crosses.
  std::vector<FunctionId> stages;
};

// `frame_bytes` is the payload carried between stages (e.g. 64 KB tiles).
PipelineSpec BuildPipelineSpec(uint32_t frame_bytes, TenantId tenant = 1);

}  // namespace nadino

#endif  // SRC_APPS_PIPELINE_H_
