#include "src/apps/pipeline.h"

namespace nadino {

PipelineSpec BuildPipelineSpec(uint32_t frame_bytes, TenantId tenant) {
  PipelineSpec spec;
  spec.tenant = tenant;
  spec.stages = {kPipelineIngest, kPipelineDecode, kPipelineFilter, kPipelineEncode};

  ChainSpec chain;
  chain.id = kPipelineChain;
  chain.tenant = tenant;
  chain.name = "Media Pipeline";
  chain.entry = kPipelineIngest;
  chain.entry_request_payload = frame_bytes;

  // Each stage does per-byte work (~2 GB/s effective) then forwards the frame.
  const auto stage_compute = [frame_bytes](double scale) {
    return static_cast<SimDuration>(scale * frame_bytes / 2.0);  // ns @ ~2 B/ns.
  };
  FunctionBehavior ingest;
  ingest.compute = stage_compute(0.2);
  ingest.calls = {{kPipelineDecode, frame_bytes}};
  ingest.response_payload = 256;  // Completion record back to the client.
  chain.behaviors[kPipelineIngest] = ingest;
  FunctionBehavior decode;
  decode.compute = stage_compute(1.0);
  decode.calls = {{kPipelineFilter, frame_bytes}};
  decode.response_payload = frame_bytes;
  chain.behaviors[kPipelineDecode] = decode;
  FunctionBehavior filter;
  filter.compute = stage_compute(0.6);
  filter.calls = {{kPipelineEncode, frame_bytes}};
  filter.response_payload = frame_bytes;
  chain.behaviors[kPipelineFilter] = filter;
  FunctionBehavior encode;
  encode.compute = stage_compute(0.8);
  encode.response_payload = frame_bytes / 2;  // Compressed output.
  chain.behaviors[kPipelineEncode] = encode;

  spec.chain = chain;
  return spec;
}

}  // namespace nadino
