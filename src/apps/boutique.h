// Online Boutique [17]: the 10-microservice application used for the
// end-to-end evaluation (section 4.3). Function compute times and payload
// sizes are synthetic but sized like the real application's RPC surface; the
// three evaluated chains (Home Query, View Cart, Product Query) each perform
// more than 11 function-to-function data exchanges, as the paper states, and
// a fourth chain (Checkout) exercises the deepest call path.
//
// Placement follows the paper's two-node setup: the hotspot functions
// (Frontend, Checkout, Recommendation) on worker node 0, everything else on
// worker node 1. NightCore's single-node configuration collapses both groups
// onto one node.

#ifndef SRC_APPS_BOUTIQUE_H_
#define SRC_APPS_BOUTIQUE_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/runtime/chain.h"

namespace nadino {

struct BoutiqueFunction {
  FunctionId id = kInvalidFunction;
  std::string name;
  int placement_group = 0;  // 0 = hotspot node, 1 = the other worker node.
};

struct BoutiqueSpec {
  TenantId tenant = 1;
  std::vector<BoutiqueFunction> functions;
  std::vector<ChainSpec> chains;

  const ChainSpec* ChainByName(const std::string& name) const;
};

// Function ids (stable, used by tests).
inline constexpr FunctionId kFrontend = 1;
inline constexpr FunctionId kProductCatalog = 2;
inline constexpr FunctionId kCart = 3;
inline constexpr FunctionId kCurrency = 4;
inline constexpr FunctionId kRecommendation = 5;
inline constexpr FunctionId kShipping = 6;
inline constexpr FunctionId kCheckout = 7;
inline constexpr FunctionId kPayment = 8;
inline constexpr FunctionId kEmail = 9;
inline constexpr FunctionId kAd = 10;

inline constexpr ChainId kHomeQueryChain = 1;
inline constexpr ChainId kViewCartChain = 2;
inline constexpr ChainId kProductQueryChain = 3;
inline constexpr ChainId kCheckoutChain = 4;

// Builds the full application spec (functions, chains, placement groups).
BoutiqueSpec BuildBoutiqueSpec(TenantId tenant = 1);

}  // namespace nadino

#endif  // SRC_APPS_BOUTIQUE_H_
