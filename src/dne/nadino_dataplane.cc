#include "src/dne/nadino_dataplane.h"

#include <algorithm>

#include "src/rdma/control_plane.h"
#include "src/runtime/message_header.h"

namespace nadino {

NadinoDataPlane::NadinoDataPlane(Env& env, RoutingTable* routing, const Options& options)
    : DataPlane(env), routing_(routing), options_(options), skmsg_(env) {}

NetworkEngine* NadinoDataPlane::AddWorkerNode(Node* node) {
  NetworkEngine::Config config;
  config.kind = options_.engine_kind;
  config.engine_id = next_engine_id_++;
  config.on_path = options_.on_path;
  config.use_dwrr = options_.use_dwrr;
  config.dwrr_quantum_bytes = options_.dwrr_quantum_bytes;
  config.extra_per_op = options_.extra_engine_cost;
  config.comch_variant = options_.comch_variant;
  config.initial_recv_buffers = options_.initial_recv_buffers;
  auto engine = std::make_unique<NetworkEngine>(env(), node, routing_, config);
  NetworkEngine* raw = engine.get();
  if (options_.connect_policy != ConnectPolicy::kEager ||
      options_.instrument_control_plane) {
    // Retune the node's control plane (created by the engine's constructor
    // with the legacy-equivalent defaults). Gated so default-option runs
    // leave the service — and the bench goldens — untouched.
    ConnectionService::Config service_config;
    service_config.policy = options_.connect_policy;
    service_config.establish_batch = options_.establish_batch;
    service_config.instrument = options_.instrument_control_plane;
    node->connections().Reconfigure(service_config);
  }
  engines_[node->id()] = std::move(engine);
  if (options_.offload_chains) {
    wr_programs_[node->id()] =
        std::make_unique<WrProgramEngine>(env(), node, raw, routing_);
  }
  return raw;
}

WrProgramEngine* NadinoDataPlane::wr_programs(NodeId node) {
  const auto it = wr_programs_.find(node);
  return it == wr_programs_.end() ? nullptr : it->second.get();
}

SimDuration NadinoDataPlane::AttachTenant(TenantId tenant, uint32_t weight) {
  tenants_.emplace_back(tenant, weight);
  for (auto& [node, engine] : engines_) {
    engine->AttachTenant(tenant, weight);
  }
  if (options_.connect_policy != ConnectPolicy::kEager) {
    return 0;  // Lazy policies defer all connection setup to first use.
  }
  SimDuration setup = 0;
  for (auto& [node_a, engine_a] : engines_) {
    SimDuration node_setup = 0;
    for (auto& [node_b, engine_b] : engines_) {
      if (node_a != node_b) {
        node_setup += engine_a->PrewarmPeer(engine_b.get(), tenant,
                                            options_.prewarm_connections);
      }
    }
    setup = std::max(setup, node_setup);
  }
  return setup;
}

SimDuration NadinoDataPlane::DetachTenant(TenantId tenant) {
  SimDuration reclaim = 0;
  for (auto& [node, engine] : engines_) {
    reclaim = std::max(reclaim, engine->node()->connections().DestroyTenant(tenant));
  }
  for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
    if (it->first == tenant) {
      tenants_.erase(it);
      break;
    }
  }
  return reclaim;
}

void NadinoDataPlane::Start() {
  if (options_.connect_policy == ConnectPolicy::kLazyShared) {
    // Symmetric pooling: every node's service may register the remote half of
    // its connected pairs with the peer's service.
    for (auto& [node_a, engine_a] : engines_) {
      for (auto& [node_b, engine_b] : engines_) {
        if (node_a != node_b) {
          engine_a->node()->connections().LinkPeer(node_b,
                                                   &engine_b->node()->connections());
        }
      }
    }
  }
  for (auto& [node, engine] : engines_) {
    engine->Start();
  }
}

NetworkEngine* NadinoDataPlane::EngineAt(NodeId node) {
  const auto it = engines_.find(node);
  return it == engines_.end() ? nullptr : it->second.get();
}

std::string NadinoDataPlane::name() const {
  std::string base =
      options_.engine_kind == NetworkEngine::Kind::kDne ? "NADINO (DNE)" : "NADINO (CNE)";
  if (options_.on_path) {
    base += " [on-path]";
  }
  if (!options_.use_dwrr) {
    base += " [FCFS]";
  }
  return base;
}

void NadinoDataPlane::RegisterFunction(FunctionRuntime* function) {
  functions_[function->id()][function->node()->id()] = function;
  routing_->Place(function->id(), function->node()->id());
  NetworkEngine* engine = EngineAt(function->node()->id());
  if (engine == nullptr) {
    return;  // Endpoint on a non-worker node (ingress/client pseudo-function).
  }
  engine->RegisterLocalFunction(
      function->id(), function->core(),
      [engine, function](Buffer* buffer) {
        // Arriving inter-node payloads: ownership engine -> function, then up
        // to the application handler.
        function->pool()->Transfer(buffer, engine->owner_id(), function->owner_id());
        function->Deliver(buffer);
      },
      function->tenant());
}

bool NadinoDataPlane::Send(FunctionRuntime* src, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    m_drops_.Increment();
    return false;
  }
  m_sends_.Increment();
  // Peek (no committing resolution) to decide intra vs inter: the inter-node
  // path re-resolves — and commits — at the engine's TX stage, so resolving
  // here too would double-count one message as two picks. Responses are
  // pinned to the first-live placement: a reply targets its caller, not
  // fresh capacity, so it never advances the policy rotor.
  const NodeId dst_node = header->is_response()
                              ? routing_->NodeOf(header->dst)
                              : routing_->PeekFor(header->dst, src->node()->id());
  if (dst_node == kInvalidNode) {
    m_drops_.Increment();
    return false;
  }
  if (dst_node == src->node()->id()) {
    const auto it = functions_.find(header->dst);
    if (it == functions_.end()) {
      m_drops_.Increment();
      return false;
    }
    const auto replica_it = it->second.find(dst_node);
    if (replica_it == it->second.end()) {
      m_drops_.Increment();
      return false;
    }
    // Commit the resolution the peek previewed (policy rotor advance +
    // per-replica served accounting) now that delivery is local and final.
    if (!header->is_response()) {
      routing_->ResolveFor(header->dst, src->node()->id());
    }
    return SendIntraNode(src, replica_it->second, buffer);
  }
  return SendInterNode(src, buffer, header->dst);
}

bool NadinoDataPlane::SendIntraNode(FunctionRuntime* src, FunctionRuntime* dst,
                                    Buffer* buffer) {
  BufferPool* pool = src->pool();
  // Token passing (section 3.5.1): exclusive ownership moves producer ->
  // consumer; the sem_post cost rides on the producer's core.
  if (!pool->Transfer(buffer, src->owner_id(), dst->owner_id())) {
    m_drops_.Increment();
    return false;
  }
  m_intra_node_.Increment();
  src->core()->Consume(env().cost().token_post_cost);
  const BufferDescriptor desc = pool->MakeDescriptor(*buffer, dst->id());
  const bool sent = skmsg_.Send(
      src->core(), dst->core(), desc,
      [dst, pool](const BufferDescriptor& d) {
        Buffer* b = pool->Resolve(d);
        if (b != nullptr) {
          dst->Deliver(b);
        }
      },
      /*engine_endpoint=*/false, src->tenant());
  if (!sent) {
    // Injected kSkMsg drop: the descriptor never reached the consumer. The
    // buffer was already handed to `dst` — move ownership back to the sender
    // ("false ⇒ caller still owns it") so the caller's recycle conserves.
    pool->Transfer(buffer, dst->owner_id(), src->owner_id());
    m_drops_.Increment();
    return false;
  }
  return true;
}

bool NadinoDataPlane::SendInterNode(FunctionRuntime* src, Buffer* buffer, FunctionId dst) {
  NetworkEngine* engine = EngineAt(src->node()->id());
  if (engine == nullptr) {
    m_drops_.Increment();
    return false;
  }
  BufferPool* pool = src->pool();
  if (!pool->Transfer(buffer, src->owner_id(), engine->owner_id())) {
    m_drops_.Increment();
    return false;
  }
  m_inter_node_.Increment();
  if (!engine->SendFromFunction(src, pool->MakeDescriptor(*buffer, dst))) {
    // IPC entry drop: the engine moved ownership back to `src`; the caller
    // still owns the buffer and recycles it.
    m_drops_.Increment();
    return false;
  }
  return true;
}

}  // namespace nadino
