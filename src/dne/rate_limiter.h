// Per-tenant traffic policies beyond weighted fairness.
//
// Section 4.2: "since NADINO supports multi-tenancy via a userspace software
// solution, it is easy for users to apply workload-specific optimizations by
// customizing policies in DNE". This module supplies the two policies cloud
// operators ask for first:
//   * token-bucket rate limiting — cap a tenant's RNIC bandwidth regardless
//     of contention (shaping applied at engine admission);
//   * strict priority classes — latency-critical tenants bypass batch
//     tenants entirely (with starvation accounting so operators can see the
//     cost).

#ifndef SRC_DNE_RATE_LIMITER_H_
#define SRC_DNE_RATE_LIMITER_H_

#include <cstdint>
#include <map>

#include "src/core/types.h"
#include "src/dne/scheduler.h"
#include "src/sim/time.h"

namespace nadino {

// Classic token bucket over virtual time. Tokens are bytes.
class TokenBucket {
 public:
  // `rate_bps` in bits/second; `burst_bytes` is the bucket depth.
  TokenBucket(double rate_bps, uint64_t burst_bytes);

  // Earliest virtual time at which `bytes` may pass, reserving the tokens.
  // Returns `now` when the bucket already holds enough.
  SimTime ReserveSendTime(uint64_t bytes, SimTime now);

  // Tokens currently available at `now` (no reservation).
  double AvailableTokens(SimTime now) const;

  double rate_bps() const { return rate_bps_; }
  uint64_t burst_bytes() const { return burst_bytes_; }

 private:
  double rate_bps_;
  uint64_t burst_bytes_;
  // Token level is tracked lazily: `tokens_` as of `updated_at_`. Reservations
  // may drive the level negative; the deficit maps to a future send time.
  double tokens_;
  SimTime updated_at_ = 0;
};

// Per-tenant shaping table used by the network engine's admission path.
class TenantRateLimiter {
 public:
  struct Stats {
    uint64_t admitted = 0;
    uint64_t delayed = 0;
    SimDuration total_delay = 0;
  };

  // No entry => tenant is unshaped.
  void SetRate(TenantId tenant, double rate_bps, uint64_t burst_bytes);
  void ClearRate(TenantId tenant);
  bool IsShaped(TenantId tenant) const { return buckets_.count(tenant) > 0; }

  // Delay (possibly zero) to impose on a `bytes`-sized message of `tenant`
  // admitted at `now`. Reserves the tokens.
  SimDuration AdmissionDelay(TenantId tenant, uint64_t bytes, SimTime now);

  const Stats& stats() const { return stats_; }

 private:
  std::map<TenantId, TokenBucket> buckets_;
  Stats stats_;
};

// Strict-priority scheduler: tenants are assigned priority classes (lower
// value = served first); FIFO within a class. Starvation of lower classes is
// counted so the policy's cost is visible.
class PriorityScheduler : public TxScheduler {
 public:
  void SetWeight(TenantId tenant, uint32_t weight) override;  // weight == class.
  void Enqueue(TxItem item) override;
  bool Dequeue(TxItem* out) override;
  size_t pending() const override { return pending_; }
  uint64_t Served(TenantId tenant) const override;

  // Times a lower-priority item was bypassed by a higher-priority dequeue.
  uint64_t bypass_events() const { return bypass_events_; }

 private:
  std::map<TenantId, uint32_t> priority_of_;
  std::map<uint32_t, std::deque<TxItem>> classes_;  // Ordered by priority.
  std::map<TenantId, uint64_t> served_;
  size_t pending_ = 0;
  uint64_t bypass_events_ = 0;
};

}  // namespace nadino

#endif  // SRC_DNE_RATE_LIMITER_H_
