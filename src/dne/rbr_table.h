// Receive Buffer Registry: maps a posted receive WR id to the buffer it was
// posted with (paper section 3.5.2). The DNE's RX stage looks completions up
// here to find where the payload was RDMAed, validates the binding, and
// tracks per-tenant CQE consumption so the core thread can replenish the
// shared RQ with an equal number of buffers.

#ifndef SRC_DNE_RBR_TABLE_H_
#define SRC_DNE_RBR_TABLE_H_

#include <cstdint>
#include <map>

#include "src/core/types.h"
#include "src/mem/buffer.h"

namespace nadino {

class RbrTable {
 public:
  // Registers a posted receive. Returns false on wr_id reuse (a bug upstream).
  bool Insert(uint64_t wr_id, Buffer* buffer, TenantId tenant);

  // Resolves and removes the entry for a consumed completion. Returns nullptr
  // (and counts the mismatch) when the wr_id is unknown or the tenant
  // disagrees with the registration.
  Buffer* Consume(uint64_t wr_id, TenantId tenant);

  // Per-tenant CQEs consumed since the matching counter was last drained by
  // the replenisher.
  uint64_t TakeConsumedCount(TenantId tenant);

  size_t outstanding() const { return entries_.size(); }
  uint64_t mismatches() const { return mismatches_; }

 private:
  struct Entry {
    Buffer* buffer = nullptr;
    TenantId tenant = kInvalidTenant;
  };

  std::map<uint64_t, Entry> entries_;
  std::map<TenantId, uint64_t> consumed_;
  uint64_t mismatches_ = 0;
};

}  // namespace nadino

#endif  // SRC_DNE_RBR_TABLE_H_
