// The NADINO network engine: a lightweight reverse proxy that owns the node's
// RDMA QPs on behalf of tenant functions (paper section 3.2).
//
// Two deployments share this implementation, differing only in which core
// runs the logic and which IPC carries descriptors:
//   * DNE — on a wimpy DPU core, descriptors via DOCA-Comch-like channels,
//     physically isolated from untrusted host functions;
//   * CNE — the apples-to-apples CPU variant (section 4.3), on a dedicated
//     host core, descriptors via SK_MSG (whose interrupt-driven ingestion
//     throttles it at high concurrency).
//
// Structure follows the paper: a *core thread* does control work (cross-
// processor mmap import, MR registration, Comch setup, receive-buffer
// replenishment), while the *worker* runs a non-blocking run-to-completion
// event loop over TX and RX stages. Off-path mode lets the RNIC DMA payloads
// directly between host pools and the wire; on-path mode stages every payload
// through the slow SoC DMA engine (the Fig. 11 comparison).

#ifndef SRC_DNE_NETWORK_ENGINE_H_
#define SRC_DNE_NETWORK_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/dne/rate_limiter.h"
#include "src/dne/rbr_table.h"
#include "src/dne/scheduler.h"
#include "src/dpu/comch.h"
#include "src/dpu/cross_mmap.h"
#include "src/mem/buffer_pool.h"
#include "src/rdma/control_plane.h"
#include "src/rdma/rdma_engine.h"
#include "src/runtime/function.h"
#include "src/runtime/node.h"
#include "src/runtime/routing_table.h"
#include "src/runtime/skmsg.h"
#include "src/sim/trace.h"

namespace nadino {

class NetworkEngine {
 public:
  enum class Kind : uint8_t { kDne, kCne };

  struct Config {
    Kind kind = Kind::kDne;
    uint32_t engine_id = 1000;  // Unique across the cluster (OwnerId::Engine).
    bool on_path = false;       // Stage payloads through the SoC DMA engine.
    bool use_dwrr = true;       // false => FCFS (the Fig. 15 baseline).
    bool use_priority = false;  // Strict-priority classes (weight == class).
    uint32_t dwrr_quantum_bytes = 2048;
    // Extra per-operation engine cost: the knob behind "we configure the DNE
    // to sustain a maximum throughput of approximately 110K RPS" (section 4.2).
    SimDuration extra_per_op = 0;
    int worker_core_index = 0;  // DPU core (DNE) — CNE allocates a host core.
    int core_thread_index = 1;  // Second wimpy core for control work.
    ComchVariant comch_variant = ComchVariant::kEvent;
    int initial_recv_buffers = 64;
    SimDuration replenish_period = 20 * kMicrosecond;
  };

  struct Stats {
    uint64_t tx_messages = 0;
    uint64_t rx_messages = 0;
    uint64_t send_completions = 0;
    uint64_t unroutable = 0;
    uint64_t replenish_failures = 0;  // Tenant pool exhausted (backpressure).
    uint64_t rbr_hits = 0;
  };

  // Delivery callback the data plane installs per local function: transfers
  // buffer ownership engine->function and invokes FunctionRuntime::Deliver.
  using DeliverFn = std::function<void(Buffer*)>;

  NetworkEngine(Env& env, Node* node, RoutingTable* routing, const Config& config);

  NetworkEngine(const NetworkEngine&) = delete;
  NetworkEngine& operator=(const NetworkEngine&) = delete;

  Kind kind() const { return config_.kind; }
  Node* node() { return node_; }
  uint32_t engine_id() const { return config_.engine_id; }
  OwnerId owner_id() const { return OwnerId::Engine(config_.engine_id); }
  FifoResource* worker_core() { return worker_core_; }
  ComchServer* comch() { return comch_.get(); }
  ConnectionService& connections() { return *connections_; }
  // Thin shim over the MetricsRegistry counters; see metrics.h.
  Stats stats() const;
  TxScheduler& scheduler() { return *scheduler_; }
  RbrTable& rbr() { return rbr_; }

  // --- Setup (core-thread work) ---------------------------------------------

  // Imports the tenant's host pool through the cross-processor mmap handshake
  // (export -> Comch -> create_from_export -> RNIC registration), sets the
  // DWRR weight, and posts the initial receive buffers. For the CNE the mmap
  // step degenerates to direct access (the engine lives on the host).
  bool AttachTenant(TenantId tenant, uint32_t weight);

  // Pre-establishes RC connections to a peer engine's node for a tenant.
  // Returns the modeled control-plane setup latency (ConnectionService).
  SimDuration PrewarmPeer(NetworkEngine* peer, TenantId tenant, int connections = 2);

  // Pre-establishes RC connections to an arbitrary remote RNIC (e.g. the
  // ingress node, which runs gateway workers rather than a network engine).
  SimDuration PrewarmRemoteRnic(RdmaEngine* remote, TenantId tenant, int connections = 2);

  // Registers a local function endpoint: how the RX stage hands descriptors
  // to this function. For the DNE this also connects a Comch endpoint; for
  // the CNE it records the SK_MSG destination. `tenant` labels the Comch drop
  // accounting and scopes fault interception on this function's channel.
  void RegisterLocalFunction(FunctionId fn, FifoResource* fn_core, DeliverFn deliver,
                             TenantId tenant = kInvalidTenant);

  // Starts the replenisher (core thread) and CQ handling.
  void Start();

  // --- Data path --------------------------------------------------------------

  // TX ingestion after IPC delivery (Comch server receiver / SK_MSG target).
  // The buffer named by `desc` must already be owned by this engine.
  // `ingest_cost` is per-message handling the engine still owes (the Comch
  // channel handling its poll loop performs when it picks the message up).
  // `attempt` is 1 for first delivery; retry recovery re-enters with the
  // attempt count it is resuming (see ScheduleTxRetry).
  void IngestTx(const BufferDescriptor& desc, SimDuration ingest_cost = 0, uint32_t attempt = 1);

  // Function-side send entry: charges the function-side IPC cost and routes
  // the descriptor to IngestTx. Called by the data plane's Send(). Returns
  // false when the IPC dropped the descriptor at entry; ownership of the
  // buffer moves back to `src` in that case (the caller recycles it).
  bool SendFromFunction(FunctionRuntime* src, const BufferDescriptor& desc);

  // Engine-as-endpoint send, used when the engine itself originates traffic
  // (the Fig. 12 echo microbenchmark runs a pair of DNEs as client/server).
  bool SendFromEngine(TenantId tenant, Buffer* buffer);

  // Registers the engine itself as the delivery target for `fn` (engine
  // endpoint mode): arriving messages skip the host IPC hop.
  void SetEngineEndpoint(FunctionId fn, DeliverFn deliver);

  // Per-tenant served-message count (fairness accounting for Figs. 15/17).
  uint64_t TenantServed(TenantId tenant) const { return scheduler_->Served(tenant); }

  // Workload-specific tenant policies (section 4.2): shape a tenant's egress
  // to `rate_bps` with the given burst. Applied at engine admission.
  void SetTenantRate(TenantId tenant, double rate_bps, uint64_t burst_bytes) {
    rate_limiter_.SetRate(tenant, rate_bps, burst_bytes);
  }
  const TenantRateLimiter& rate_limiter() const { return rate_limiter_; }

  // Optional structured tracing: TX posts, RX deliveries, and unroutable
  // drops are recorded under TraceCategory::kEngine with this engine's id.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct InFlightSend {
    Buffer* buffer = nullptr;
    BufferPool* pool = nullptr;
    QpNum qp = 0;
    TxItem item;  // Retained so an error completion can retry the send.
  };

  struct LocalEndpoint {
    FifoResource* fn_core = nullptr;
    DeliverFn deliver;
    bool engine_endpoint = false;
  };

  // Per-message Comch handling cost for the configured variant (DNE only).
  SimDuration ComchDpuCost() const;

  void PumpTx();
  void ExecuteTx(const TxItem& item);
  // Retry recovery (src/core/slo.h): when the tenant has a RetryPolicy with
  // attempts and error budget remaining, schedules a backed-off re-ingestion
  // of `item` and returns true — the buffer stays engine-owned across the
  // backoff. Returns false (after counting the terminal outcome) when the
  // caller must recycle the buffer.
  bool ScheduleTxRetry(const TxItem& item, const char* stage);
  // The post-Acquire tail of ExecuteTx: control cost, optional on-path SoC
  // DMA staging, then the RNIC post. Split out so a lazy establishment can
  // resume a send when its handshake lands.
  void FinishTx(const TxItem& item, Buffer* buffer, BufferPool* pool,
                const ConnectionService::Acquired& acquired);
  void PostToRnic(const TxItem& item, Buffer* buffer, BufferPool* pool, QpNum qp);
  void OnCompletion(const Completion& cqe);
  void HandleRecvCompletion(const Completion& cqe);
  void DeliverLocal(FunctionId fn, Buffer* buffer, BufferPool* pool);
  void ReplenishTick();
  // Returns the number actually posted (pool exhaustion backpressures).
  uint64_t PostRecvBuffers(TenantId tenant, uint64_t count);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  Node* node_;
  RoutingTable* routing_;
  Config config_;
  FifoResource* worker_core_ = nullptr;
  FifoResource* core_thread_core_ = nullptr;
  std::unique_ptr<ComchServer> comch_;          // DNE only.
  std::unique_ptr<SkMsgChannel> skmsg_;         // CNE only.
  std::unique_ptr<TxScheduler> scheduler_;
  TenantRateLimiter rate_limiter_;
  // The node-owned control plane (src/rdma/control_plane.h); the engine is
  // one of its consumers, not its owner.
  ConnectionService* connections_;
  RbrTable rbr_;
  HostMemoryExporter exporter_;
  DpuMmapTable mmap_table_;
  std::map<TenantId, BufferPool*> tenant_pools_;
  std::map<FunctionId, LocalEndpoint> endpoints_;
  std::map<uint64_t, InFlightSend> in_flight_;
  std::map<TenantId, uint64_t> replenish_debt_;  // Deferred by pool exhaustion.
  Tracer* tracer_ = nullptr;
  uint64_t next_wr_id_ = 1;
  bool tx_scheduled_ = false;
  bool started_ = false;
  // Registry-backed counters (labels: {engine, node}), resolved once at
  // construction into raw-word handles — the TX/RX stages bump these per
  // message. See Stats.
  CounterHandle m_tx_messages_;
  CounterHandle m_rx_messages_;
  CounterHandle m_send_completions_;
  CounterHandle m_unroutable_;
  CounterHandle m_replenish_failures_;
  CounterHandle m_rbr_hits_;
  // Retry-path counters, resolved lazily on a tenant's first retry event so
  // unfaulted runs keep byte-identical snapshots (bench goldens), then bumped
  // through handles (no per-retry string assembly).
  struct RetryHandles {
    CounterHandle attempts;
    CounterHandle exhausted;
    CounterHandle budget_denied;
  };
  RetryHandles& RetryHandlesFor(TenantId tenant);
  std::unordered_map<TenantId, RetryHandles> retry_handles_;
};

}  // namespace nadino

#endif  // SRC_DNE_NETWORK_ENGINE_H_
