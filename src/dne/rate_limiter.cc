#include "src/dne/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace nadino {

TokenBucket::TokenBucket(double rate_bps, uint64_t burst_bytes)
    : rate_bps_(rate_bps), burst_bytes_(burst_bytes),
      tokens_(static_cast<double>(burst_bytes)) {}

double TokenBucket::AvailableTokens(SimTime now) const {
  const double refilled =
      tokens_ + rate_bps_ / 8.0 * ToSeconds(now - updated_at_);
  return std::min(refilled, static_cast<double>(burst_bytes_));
}

SimTime TokenBucket::ReserveSendTime(uint64_t bytes, SimTime now) {
  tokens_ = AvailableTokens(now);
  updated_at_ = now;
  tokens_ -= static_cast<double>(bytes);
  if (tokens_ >= 0.0) {
    return now;
  }
  // The deficit refills at rate_bps: the message may pass once it has. Ceil
  // the conversion to integer nanoseconds — truncating admitted messages up
  // to 1 ns before the refill, letting a long run at exact line rate creep
  // ahead of the configured rate. The token balance itself stays exact (the
  // fractional deficit carries to the next ReserveSendTime), so rounding up
  // here never double-charges a message.
  const double deficit_seconds = -tokens_ * 8.0 / rate_bps_;
  return now + static_cast<SimDuration>(std::ceil(deficit_seconds * static_cast<double>(kSecond)));
}

void TenantRateLimiter::SetRate(TenantId tenant, double rate_bps, uint64_t burst_bytes) {
  buckets_.erase(tenant);
  buckets_.emplace(tenant, TokenBucket(rate_bps, burst_bytes));
}

void TenantRateLimiter::ClearRate(TenantId tenant) { buckets_.erase(tenant); }

SimDuration TenantRateLimiter::AdmissionDelay(TenantId tenant, uint64_t bytes, SimTime now) {
  const auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    ++stats_.admitted;
    return 0;
  }
  const SimTime send_at = it->second.ReserveSendTime(bytes, now);
  if (send_at <= now) {
    ++stats_.admitted;
    return 0;
  }
  ++stats_.delayed;
  stats_.total_delay += send_at - now;
  return send_at - now;
}

void PriorityScheduler::SetWeight(TenantId tenant, uint32_t weight) {
  priority_of_[tenant] = weight;
}

void PriorityScheduler::Enqueue(TxItem item) {
  const auto it = priority_of_.find(item.tenant);
  const uint32_t priority = it == priority_of_.end() ? 100 : it->second;
  classes_[priority].push_back(std::move(item));
  ++pending_;
}

bool PriorityScheduler::Dequeue(TxItem* out) {
  for (auto it = classes_.begin(); it != classes_.end(); ++it) {
    if (it->second.empty()) {
      continue;
    }
    *out = std::move(it->second.front());
    it->second.pop_front();
    --pending_;
    ++served_[out->tenant];
    // Anything left in lower classes was bypassed by this dequeue.
    for (auto lower = std::next(it); lower != classes_.end(); ++lower) {
      if (!lower->second.empty()) {
        ++bypass_events_;
        break;
      }
    }
    return true;
  }
  return false;
}

uint64_t PriorityScheduler::Served(TenantId tenant) const {
  const auto it = served_.find(tenant);
  return it == served_.end() ? 0 : it->second;
}

}  // namespace nadino
