// NADINO's data plane: the unified I/O library over intra-node shared memory
// (SK_MSG descriptor IPC + token-passing ownership) and inter-node two-sided
// RDMA proxied by the per-node network engine (DNE on the DPU, or the CNE
// baseline on a host core).

#ifndef SRC_DNE_NADINO_DATAPLANE_H_
#define SRC_DNE_NADINO_DATAPLANE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/dne/network_engine.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/routing_table.h"

namespace nadino {

class NadinoDataPlane : public DataPlane {
 public:
  struct Options {
    NetworkEngine::Kind engine_kind = NetworkEngine::Kind::kDne;
    bool on_path = false;
    bool use_dwrr = true;
    SimDuration extra_engine_cost = 0;
    ComchVariant comch_variant = ComchVariant::kEvent;
    int prewarm_connections = 2;
    int initial_recv_buffers = 256;
    uint32_t dwrr_quantum_bytes = 2048;
  };

  NadinoDataPlane(Env& env, RoutingTable* routing, const Options& options);

  // Creates this worker node's network engine. Call before registering the
  // node's functions.
  NetworkEngine* AddWorkerNode(Node* node);

  // Attaches `tenant` (weight for DWRR) on every engine, and pre-establishes
  // RC connections between every pair of worker nodes for it.
  void AttachTenant(TenantId tenant, uint32_t weight);

  // Starts all engines (CQ handling + receive-buffer replenishers).
  void Start();

  void RegisterFunction(FunctionRuntime* function) override;
  bool Send(FunctionRuntime* src, Buffer* buffer) override;
  std::string name() const override;

  NetworkEngine* EngineAt(NodeId node);
  RoutingTable* routing() override { return routing_; }

 private:
  bool SendIntraNode(FunctionRuntime* src, FunctionRuntime* dst, Buffer* buffer);
  bool SendInterNode(FunctionRuntime* src, Buffer* buffer, FunctionId dst);

  RoutingTable* routing_;
  Options options_;
  SkMsgChannel skmsg_;
  std::map<NodeId, std::unique_ptr<NetworkEngine>> engines_;
  // Keyed per (function, node): a function replicated on several workers for
  // failover registers one runtime per node (the routing table orders them
  // primary-first).
  std::map<FunctionId, std::map<NodeId, FunctionRuntime*>> functions_;
  std::vector<std::pair<TenantId, uint32_t>> tenants_;
  uint32_t next_engine_id_ = 1000;
};

}  // namespace nadino

#endif  // SRC_DNE_NADINO_DATAPLANE_H_
