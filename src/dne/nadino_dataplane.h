// NADINO's data plane: the unified I/O library over intra-node shared memory
// (SK_MSG descriptor IPC + token-passing ownership) and inter-node two-sided
// RDMA proxied by the per-node network engine (DNE on the DPU, or the CNE
// baseline on a host core).

#ifndef SRC_DNE_NADINO_DATAPLANE_H_
#define SRC_DNE_NADINO_DATAPLANE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/dne/network_engine.h"
#include "src/rdma/wr_program.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/routing_table.h"

namespace nadino {

class NadinoDataPlane : public DataPlane {
 public:
  struct Options {
    NetworkEngine::Kind engine_kind = NetworkEngine::Kind::kDne;
    bool on_path = false;
    bool use_dwrr = true;
    SimDuration extra_engine_cost = 0;
    ComchVariant comch_variant = ComchVariant::kEvent;
    int prewarm_connections = 2;
    int initial_recv_buffers = 256;
    uint32_t dwrr_quantum_bytes = 2048;
    // Control-plane setup policy (src/rdma/control_plane.h). kEager keeps the
    // legacy prewarm-at-attach behavior byte-for-byte; the lazy policies skip
    // the attach-time prewarm and establish on first use.
    ConnectPolicy connect_policy = ConnectPolicy::kEager;
    int establish_batch = 1;
    bool instrument_control_plane = false;
    // NIC-offloaded chain dispatch (src/rdma/wr_program.h): give every worker
    // node a WrProgramEngine so ChainExecutor::OffloadChain can install WR
    // programs at its RNIC. Off by default — the steering hook and the
    // wrprog_* metric keys exist only when enabled, keeping default runs
    // byte-identical (bench goldens).
    bool offload_chains = false;
  };

  NadinoDataPlane(Env& env, RoutingTable* routing, const Options& options);

  // Creates this worker node's network engine. Call before registering the
  // node's functions.
  NetworkEngine* AddWorkerNode(Node* node);

  // Attaches `tenant` (weight for DWRR) on every engine and, under the eager
  // policy, pre-establishes RC connections between every pair of worker nodes
  // for it. Returns the modeled control-plane setup latency (max over nodes;
  // each node's verbs serialize, nodes proceed in parallel) — zero under the
  // lazy policies, which defer setup to first use.
  SimDuration AttachTenant(TenantId tenant, uint32_t weight);

  // Tenant departure: destroys the tenant's pooled QPs on every node
  // (ConnectionService::DestroyTenant) so their RNIC context is reclaimed.
  // Returns the modeled reclaim latency (max over nodes).
  SimDuration DetachTenant(TenantId tenant);

  // Starts all engines (CQ handling + receive-buffer replenishers).
  void Start();

  void RegisterFunction(FunctionRuntime* function) override;
  bool Send(FunctionRuntime* src, Buffer* buffer) override;
  std::string name() const override;

  NetworkEngine* EngineAt(NodeId node);
  RoutingTable* routing() override { return routing_; }
  WrProgramEngine* wr_programs(NodeId node) override;

 private:
  bool SendIntraNode(FunctionRuntime* src, FunctionRuntime* dst, Buffer* buffer);
  bool SendInterNode(FunctionRuntime* src, Buffer* buffer, FunctionId dst);

  RoutingTable* routing_;
  Options options_;
  SkMsgChannel skmsg_;
  std::map<NodeId, std::unique_ptr<NetworkEngine>> engines_;
  // Per-node WR-program interpreters (Options::offload_chains only).
  std::map<NodeId, std::unique_ptr<WrProgramEngine>> wr_programs_;
  // Keyed per (function, node): a function replicated on several workers for
  // failover registers one runtime per node (the routing table orders them
  // primary-first).
  std::map<FunctionId, std::map<NodeId, FunctionRuntime*>> functions_;
  std::vector<std::pair<TenantId, uint32_t>> tenants_;
  uint32_t next_engine_id_ = 1000;
};

}  // namespace nadino

#endif  // SRC_DNE_NADINO_DATAPLANE_H_
