#include "src/dne/scheduler.h"

#include <utility>

namespace nadino {

void FcfsScheduler::SetWeight(TenantId tenant, uint32_t weight) {
  (void)tenant;
  (void)weight;  // FCFS has no tenant awareness — that is its failure mode.
}

void FcfsScheduler::Enqueue(TxItem item) { queue_.push_back(std::move(item)); }

bool FcfsScheduler::Dequeue(TxItem* out) {
  if (queue_.empty()) {
    return false;
  }
  *out = std::move(queue_.front());
  queue_.pop_front();
  const TenantId tenant = out->tenant;
  if (tenant < kDirectTenantLimit) {
    if (tenant >= served_direct_.size()) {
      served_direct_.resize(tenant + 1, 0);
    }
    ++served_direct_[tenant];
  } else {
    ++served_overflow_[tenant];
  }
  return true;
}

uint64_t FcfsScheduler::Served(TenantId tenant) const {
  if (tenant < kDirectTenantLimit) {
    return tenant < served_direct_.size() ? served_direct_[tenant] : 0;
  }
  const auto it = served_overflow_.find(tenant);
  return it == served_overflow_.end() ? 0 : it->second;
}

uint32_t DwrrScheduler::IndexOf(TenantId tenant) {
  if (tenant < kDirectTenantLimit) {
    if (tenant >= direct_index_.size()) {
      direct_index_.resize(tenant + 1, kNoState);
    }
    uint32_t& slot = direct_index_[tenant];
    if (slot == kNoState) {
      slot = static_cast<uint32_t>(states_.size());
      states_.emplace_back();
      states_.back().tenant = tenant;
    }
    return slot;
  }
  const auto it = overflow_index_.find(tenant);
  if (it != overflow_index_.end()) {
    return it->second;
  }
  const uint32_t index = static_cast<uint32_t>(states_.size());
  states_.emplace_back();
  states_.back().tenant = tenant;
  overflow_index_.emplace(tenant, index);
  return index;
}

uint32_t DwrrScheduler::FindIndex(TenantId tenant) const {
  if (tenant < kDirectTenantLimit) {
    return tenant < direct_index_.size() ? direct_index_[tenant] : kNoState;
  }
  const auto it = overflow_index_.find(tenant);
  return it == overflow_index_.end() ? kNoState : it->second;
}

void DwrrScheduler::SetWeight(TenantId tenant, uint32_t weight) {
  StateOf(tenant).weight = weight == 0 ? 1 : weight;
}

void DwrrScheduler::Enqueue(TxItem item) {
  const uint32_t index = IndexOf(item.tenant);
  TenantState& state = states_[index];
  state.queue.push_back(std::move(item));
  ++pending_;
  if (!state.in_active_list) {
    state.in_active_list = true;
    state.fresh_visit = true;
    active_.push_back(index);
  }
}

bool DwrrScheduler::Dequeue(TxItem* out) {
  if (pending_ == 0) {
    return false;
  }
  // Round-robin over backlogged tenants. A tenant earns weight*quantum bytes
  // of deficit exactly once per round (on a fresh visit) and transmits while
  // the deficit covers its head item; when it no longer does, the tenant
  // rotates to the back carrying the remainder (oversized items accumulate
  // deficit across rounds rather than starving). Every full rotation adds at
  // least `quantum_` to some backlogged tenant, so progress is guaranteed;
  // the guard is only a runaway backstop (items are bounded by buffer sizes).
  const size_t guard_limit = active_.size() * 2 + 2 +
                             active_.size() * (64 * 1024 * 1024 / quantum_);
  for (size_t guard = 0; guard < guard_limit; ++guard) {
    if (active_.empty()) {
      return false;
    }
    const uint32_t index = active_.front();
    TenantState& state = states_[index];
    if (state.queue.empty()) {
      state.in_active_list = false;
      state.deficit = 0;
      active_.pop_front();
      continue;
    }
    if (state.fresh_visit) {
      // Live policy input: the advisor may boost (SLO burn) or clamp
      // (isolation violation) this round's replenishment without touching
      // the configured base weight.
      uint32_t weight = state.weight;
      if (advisor_) {
        weight = advisor_(state.tenant, weight);
        if (weight == 0) {
          weight = 1;
        }
      }
      state.deficit += static_cast<int64_t>(weight) * quantum_;
      state.fresh_visit = false;
    }
    if (state.deficit < static_cast<int64_t>(state.queue.front().bytes)) {
      // Quantum exhausted: yield the round to the next tenant.
      active_.pop_front();
      active_.push_back(index);
      state.fresh_visit = true;
      continue;
    }
    *out = std::move(state.queue.front());
    state.queue.pop_front();
    state.deficit -= out->bytes;
    ++state.served;
    --pending_;
    if (state.queue.empty()) {
      state.in_active_list = false;
      state.deficit = 0;
      active_.pop_front();
    }
    return true;
  }
  return false;
}

uint64_t DwrrScheduler::Served(TenantId tenant) const {
  const uint32_t index = FindIndex(tenant);
  return index == kNoState ? 0 : states_[index].served;
}

int64_t DwrrScheduler::DeficitOf(TenantId tenant) const {
  const uint32_t index = FindIndex(tenant);
  return index == kNoState ? 0 : states_[index].deficit;
}

}  // namespace nadino
