// Per-tenant TX scheduling inside the network engine.
//
// NADINO enforces weighted fair sharing of RNIC bandwidth with a Deficit
// Weighted Round Robin scheduler (paper section 3.3, [85]); the multi-tenancy
// evaluation (Figs. 15/17) contrasts it with a First-Come-First-Served engine
// that has no tenant awareness.

#ifndef SRC_DNE_SCHEDULER_H_
#define SRC_DNE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/core/types.h"
#include "src/mem/buffer.h"

namespace nadino {

struct TxItem {
  TenantId tenant = kInvalidTenant;
  BufferDescriptor desc;
  uint32_t bytes = 0;  // Wire footprint used for deficit accounting.
  // Per-message ingestion handling the engine still owes for this item (e.g.
  // Comch channel handling discovered by the engine's poll loop). Charged as
  // part of the scheduled TX stage so tenant fairness governs it.
  int64_t ingest_cost = 0;
  // Delivery attempt, 1-based; retry recovery re-ingests with attempt + 1
  // and the tenant's RetryPolicy bounds it (src/core/slo.h).
  uint32_t attempt = 1;
};

class TxScheduler {
 public:
  // Consulted at each quantum replenishment to adjust a tenant's base weight
  // from live policy state (SLO burn boost / isolation clamp). Returning the
  // base unchanged reproduces plain DWRR.
  using WeightAdvisor = std::function<uint32_t(TenantId tenant, uint32_t base)>;

  virtual ~TxScheduler() = default;

  // Declares a tenant and its weight (FCFS ignores weights).
  virtual void SetWeight(TenantId tenant, uint32_t weight) = 0;

  // Installs the advisor; schedulers without weight awareness ignore it.
  virtual void SetWeightAdvisor(WeightAdvisor advisor) { (void)advisor; }

  virtual void Enqueue(TxItem item) = 0;

  // Picks the next item to transmit; false when all queues are empty.
  virtual bool Dequeue(TxItem* out) = 0;

  virtual size_t pending() const = 0;

  // Items ever served for `tenant` (fairness accounting).
  virtual uint64_t Served(TenantId tenant) const = 0;
};

// Single FIFO across all tenants: whoever enqueues first transmits first.
class FcfsScheduler : public TxScheduler {
 public:
  void SetWeight(TenantId tenant, uint32_t weight) override;
  void Enqueue(TxItem item) override;
  bool Dequeue(TxItem* out) override;
  size_t pending() const override { return queue_.size(); }
  uint64_t Served(TenantId tenant) const override;

 private:
  std::deque<TxItem> queue_;
  // Served counts indexed directly by tenant id (experiments use small dense
  // ids); rare large ids overflow into the map so any TenantId stays correct.
  static constexpr uint32_t kDirectTenantLimit = 1024;
  std::vector<uint64_t> served_direct_;
  std::map<TenantId, uint64_t> served_overflow_;
};

// Classic DWRR (Shreedhar & Varghese): each tenant has a deficit counter
// replenished by weight * quantum on each round-robin visit; items are served
// while the deficit covers their byte size.
class DwrrScheduler : public TxScheduler {
 public:
  explicit DwrrScheduler(uint32_t quantum_bytes = 2048) : quantum_(quantum_bytes) {}

  void SetWeight(TenantId tenant, uint32_t weight) override;
  void SetWeightAdvisor(WeightAdvisor advisor) override { advisor_ = std::move(advisor); }
  void Enqueue(TxItem item) override;
  bool Dequeue(TxItem* out) override;
  size_t pending() const override { return pending_; }
  uint64_t Served(TenantId tenant) const override;

  int64_t DeficitOf(TenantId tenant) const;

 private:
  struct TenantState {
    TenantId tenant = kInvalidTenant;
    uint32_t weight = 1;
    int64_t deficit = 0;
    bool in_active_list = false;
    // True when the tenant is due its once-per-round quantum replenishment
    // (set on (re)activation and on rotation to the back of the round).
    bool fresh_visit = true;
    std::deque<TxItem> queue;
    uint64_t served = 0;
  };

  static constexpr uint32_t kDirectTenantLimit = 1024;
  static constexpr uint32_t kNoState = 0xFFFFFFFFu;

  // Dense per-packet lookup: small tenant ids (every experiment) index the
  // direct table in O(1) with no hashing or tree walk; rare large ids fall
  // back to the overflow map. States live in `states_` and never move their
  // index, so the active ring holds plain indices.
  uint32_t IndexOf(TenantId tenant);             // Allocates on first use.
  uint32_t FindIndex(TenantId tenant) const;     // kNoState when absent.
  TenantState& StateOf(TenantId tenant) { return states_[IndexOf(tenant)]; }

  uint32_t quantum_;
  WeightAdvisor advisor_;
  size_t pending_ = 0;
  std::vector<TenantState> states_;
  std::vector<uint32_t> direct_index_;           // tenant id -> states_ index.
  std::map<TenantId, uint32_t> overflow_index_;  // ids >= kDirectTenantLimit.
  std::deque<uint32_t> active_;  // Round-robin order over backlogged tenants.
};

}  // namespace nadino

#endif  // SRC_DNE_SCHEDULER_H_
