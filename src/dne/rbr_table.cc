#include "src/dne/rbr_table.h"

namespace nadino {

bool RbrTable::Insert(uint64_t wr_id, Buffer* buffer, TenantId tenant) {
  return entries_.emplace(wr_id, Entry{buffer, tenant}).second;
}

Buffer* RbrTable::Consume(uint64_t wr_id, TenantId tenant) {
  const auto it = entries_.find(wr_id);
  if (it == entries_.end() || it->second.tenant != tenant) {
    ++mismatches_;
    return nullptr;
  }
  Buffer* buffer = it->second.buffer;
  entries_.erase(it);
  ++consumed_[tenant];
  return buffer;
}

uint64_t RbrTable::TakeConsumedCount(TenantId tenant) {
  const auto it = consumed_.find(tenant);
  if (it == consumed_.end()) {
    return 0;
  }
  const uint64_t n = it->second;
  it->second = 0;
  return n;
}

}  // namespace nadino
