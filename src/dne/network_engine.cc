#include "src/dne/network_engine.h"

#include <cassert>
#include <utility>

#include "src/runtime/message_header.h"

namespace nadino {

NetworkEngine::NetworkEngine(Env& env, Node* node, RoutingTable* routing, const Config& config)
    : env_(&env),
      node_(node),
      routing_(routing),
      config_(config),
      connections_(&node->connections()),
      mmap_table_(&exporter_) {
  if (config_.kind == Kind::kDne) {
    assert(node_->dpu() != nullptr && "DNE requires a DPU on the node");
    worker_core_ = &node_->dpu()->core(config_.worker_core_index);
    core_thread_core_ = &node_->dpu()->core(config_.core_thread_index);
    // Engine-managed polling: the run-to-completion loop sweeps the Comch
    // endpoints itself, so per-message channel handling is charged inside the
    // scheduled TX/RX stages (and thus governed by the DWRR policy).
    comch_ = std::make_unique<ComchServer>(env, worker_core_,
                                           /*engine_managed_polling=*/true, node->id());
    comch_->SetReceiver([this](FunctionId /*src*/, const BufferDescriptor& desc) {
      IngestTx(desc, ComchDpuCost());
    });
  } else {
    worker_core_ = node_->AllocateCore();
    core_thread_core_ = worker_core_;  // The CNE is a single busy CPU core.
    skmsg_ = std::make_unique<SkMsgChannel>(env);
  }
  // Run-to-completion busy-poll loop: the core reads as 100% utilized.
  worker_core_->set_pinned(true);
  if (config_.use_priority) {
    scheduler_ = std::make_unique<PriorityScheduler>();
  } else if (config_.use_dwrr) {
    scheduler_ = std::make_unique<DwrrScheduler>(config_.dwrr_quantum_bytes);
  } else {
    scheduler_ = std::make_unique<FcfsScheduler>();
  }
  // SLO feedback loop (section 4.2): each quantum replenishment asks the
  // registry for the tenant's effective weight — boosted while it burns
  // error budget, clamped while flagged for violating another's isolation.
  // Unregistered tenants resolve to their base weight, so runs without SLOs
  // are byte-identical to pre-SLO runs.
  scheduler_->SetWeightAdvisor([this](TenantId tenant, uint32_t base) {
    return env_->slos().EffectiveWeight(tenant, base);
  });
  MetricLabels labels = MetricLabels::Node(node_->id());
  labels.engine = static_cast<int64_t>(config_.engine_id);
  MetricsRegistry& reg = env_->metrics();
  m_tx_messages_ = reg.ResolveCounter("engine_tx_messages", labels);
  m_rx_messages_ = reg.ResolveCounter("engine_rx_messages", labels);
  m_send_completions_ = reg.ResolveCounter("engine_send_completions", labels);
  m_unroutable_ = reg.ResolveCounter("engine_unroutable", labels);
  m_replenish_failures_ = reg.ResolveCounter("engine_replenish_failures", labels);
  m_rbr_hits_ = reg.ResolveCounter("engine_rbr_hits", labels);
}

NetworkEngine::Stats NetworkEngine::stats() const {
  Stats s;
  s.tx_messages = m_tx_messages_.value();
  s.rx_messages = m_rx_messages_.value();
  s.send_completions = m_send_completions_.value();
  s.unroutable = m_unroutable_.value();
  s.replenish_failures = m_replenish_failures_.value();
  s.rbr_hits = m_rbr_hits_.value();
  return s;
}

bool NetworkEngine::AttachTenant(TenantId tenant, uint32_t weight) {
  BufferPool* pool = node_->tenants().PoolOfTenant(tenant);
  if (pool == nullptr) {
    return false;
  }
  if (config_.kind == Kind::kDne) {
    // Cross-processor mmap handshake (section 3.4.2): the host agent exports,
    // the descriptor crosses the Comch, the DNE imports and registers with
    // the RNIC. NADINO pools carry *no* remote-access rights: all inter-node
    // traffic is two-sided, so peers can never write into this pool directly.
    const MmapExportDescriptor export_desc = exporter_.Export(pool, true, true);
    if (!mmap_table_.CreateFromExport(export_desc, pool)) {
      return false;
    }
    if (!mmap_table_.RegisterWithRnic(pool->id(), &node_->rnic(), kMrLocal)) {
      return false;
    }
  } else {
    node_->rnic().mr_table().Register(pool, kMrLocal);
  }
  tenant_pools_[tenant] = pool;
  scheduler_->SetWeight(tenant, weight);
  // Fairness accounting (Figs. 15/17): per-tenant served counts come from the
  // registry, sampled off the scheduler at snapshot time.
  MetricLabels labels = MetricLabels::Node(node_->id());
  labels.engine = static_cast<int64_t>(config_.engine_id);
  labels.tenant = static_cast<int64_t>(tenant);
  env_->metrics().RegisterCallback("engine_tenant_served", labels,
                                   [this, tenant] { return scheduler_->Served(tenant); });
  PostRecvBuffers(tenant, static_cast<uint64_t>(config_.initial_recv_buffers));
  return true;
}

SimDuration NetworkEngine::PrewarmPeer(NetworkEngine* peer, TenantId tenant,
                                       int num_connections) {
  return connections_->Prewarm(&peer->node()->rnic(), tenant, num_connections);
}

SimDuration NetworkEngine::PrewarmRemoteRnic(RdmaEngine* remote, TenantId tenant,
                                             int num_connections) {
  return connections_->Prewarm(remote, tenant, num_connections);
}

void NetworkEngine::RegisterLocalFunction(FunctionId fn, FifoResource* fn_core,
                                          DeliverFn deliver, TenantId tenant) {
  endpoints_[fn] = LocalEndpoint{fn_core, std::move(deliver), false};
  if (config_.kind == Kind::kDne) {
    comch_->ConnectEndpoint(
        fn, config_.comch_variant, fn_core,
        [this, fn](const BufferDescriptor& desc) {
          const auto it = endpoints_.find(fn);
          if (it == endpoints_.end()) {
            return;
          }
          BufferPool* pool = node_->tenants().PoolById(desc.pool);
          Buffer* buffer = pool == nullptr ? nullptr : pool->Resolve(desc);
          if (buffer != nullptr && it->second.deliver) {
            it->second.deliver(buffer);
          }
        },
        tenant);
  }
}

void NetworkEngine::SetEngineEndpoint(FunctionId fn, DeliverFn deliver) {
  endpoints_[fn] = LocalEndpoint{nullptr, std::move(deliver), true};
}

void NetworkEngine::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  node_->rnic().cq().SetHandler([this](const Completion& cqe) { OnCompletion(cqe); });
  sim().Schedule(config_.replenish_period, [this]() { ReplenishTick(); });
}

bool NetworkEngine::SendFromFunction(FunctionRuntime* src, const BufferDescriptor& desc) {
  bool sent;
  if (config_.kind == Kind::kDne) {
    sent = comch_->SendToDpu(src->id(), desc);
  } else {
    // CNE ingestion over SK_MSG: the shared engine pays the per-message
    // interrupt cost — the mechanism that throttles it at high concurrency.
    sent = skmsg_->Send(src->core(), worker_core_, desc,
                        [this](const BufferDescriptor& d) { IngestTx(d); },
                        /*engine_endpoint=*/true, src->tenant());
  }
  if (!sent) {
    // Dropped at the IPC entry (severed endpoint / injected fault). The
    // buffer was already handed to this engine — return ownership to the
    // sender so the data plane's "false ⇒ caller still owns it" contract
    // holds and the caller's recycle conserves the pool.
    BufferPool* pool = node_->tenants().PoolById(desc.pool);
    Buffer* buffer = pool == nullptr ? nullptr : pool->Resolve(desc);
    if (buffer != nullptr) {
      pool->Transfer(buffer, owner_id(), src->owner_id());
    }
  }
  return sent;
}

bool NetworkEngine::SendFromEngine(TenantId tenant, Buffer* buffer) {
  const auto it = tenant_pools_.find(tenant);
  if (it == tenant_pools_.end() || buffer == nullptr) {
    return false;
  }
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    return false;
  }
  IngestTx(it->second->MakeDescriptor(*buffer, header->dst));
  return true;
}

SimDuration NetworkEngine::ComchDpuCost() const {
  return comch_ ? comch_->DpuSideCost(config_.comch_variant) : 0;
}

void NetworkEngine::IngestTx(const BufferDescriptor& desc, SimDuration ingest_cost,
                             uint32_t attempt) {
  BufferPool* pool = node_->tenants().PoolById(desc.pool);
  Buffer* buffer = pool == nullptr ? nullptr : pool->Resolve(desc);
  if (buffer == nullptr || !(buffer->owner == owner_id())) {
    m_unroutable_.Increment();
    return;
  }
  TxItem item;
  item.tenant = pool->tenant();
  item.desc = desc;
  item.bytes = buffer->length + static_cast<uint32_t>(kWireHeaderBytes);
  item.ingest_cost = ingest_cost;
  item.attempt = attempt;
  // kDneTx fault site: the descriptor entering the TX pipeline. Runs after
  // the ownership check so a drop can recycle the buffer this engine
  // provably owns; corruption flips payload bytes the header checksum
  // downstream must catch.
  const FaultDecision fault = env_->faults().Intercept(
      FaultSite::kDneTx, FaultScope{pool->tenant(), node_->id()}, buffer->payload().data(),
      buffer->payload().size());
  if (fault.action == FaultAction::kDrop) {
    // Injected TX drop: with a retry policy armed this becomes a timed
    // re-ingestion (the buffer stays engine-owned across the backoff)
    // instead of a terminal loss the chain above would never recover from.
    if (ScheduleTxRetry(item, "tx_drop_retry")) {
      return;
    }
    pool->Put(buffer, owner_id());
    return;
  }
  // Tenant shaping policy (token bucket): messages over the tenant's rate are
  // held back at admission; fairness scheduling applies below the caps. An
  // injected kDelay stretches the same admission path.
  const SimDuration shaping_delay =
      rate_limiter_.AdmissionDelay(item.tenant, item.bytes, sim().now()) +
      (fault.action == FaultAction::kDelay ? fault.delay : 0);
  if (shaping_delay > 0) {
    sim().Schedule(shaping_delay, [this, item = std::move(item)]() mutable {
      scheduler_->Enqueue(std::move(item));
      PumpTx();
    });
    return;
  }
  scheduler_->Enqueue(std::move(item));
  PumpTx();
}

void NetworkEngine::PumpTx() {
  if (tx_scheduled_) {
    return;
  }
  TxItem item;
  if (!scheduler_->Dequeue(&item)) {
    return;
  }
  tx_scheduled_ = true;
  const SimDuration cost = env_->cost().dne_loop_iteration + env_->cost().dne_sched_op +
                           env_->cost().dne_tx_stage + config_.extra_per_op + item.ingest_cost;
  worker_core_->Submit(cost, [this, item]() {
    ExecuteTx(item);
    tx_scheduled_ = false;
    PumpTx();
  });
}

void NetworkEngine::ExecuteTx(const TxItem& item) {
  BufferPool* pool = node_->tenants().PoolById(item.desc.pool);
  Buffer* buffer = pool == nullptr ? nullptr : pool->Resolve(item.desc);
  if (buffer == nullptr) {
    m_unroutable_.Increment();
    return;
  }
  // The committing resolution point for inter-node traffic: one message, one
  // policy pick (NadinoDataPlane::Send only peeked). Under a rotating policy
  // the pick may land back on this node — the short-circuit below handles it.
  // Responses are pinned to the first-live placement instead of spread: a
  // reply targets the caller, not fresh capacity, and must not advance the
  // policy rotor or count as a served pick.
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  const bool is_response = header.has_value() && header->is_response();
  const NodeId dst_node = is_response
                              ? routing_->NodeOf(item.desc.dst_function)
                              : routing_->ResolveFor(item.desc.dst_function, node_->id());
  if (dst_node == kInvalidNode) {
    m_unroutable_.Increment();
    pool->Put(buffer, owner_id());
    return;
  }
  if (dst_node == node_->id()) {
    // Destination is co-located after all (e.g. rescheduled function):
    // short-circuit through the local delivery path.
    DeliverLocal(item.desc.dst_function, buffer, pool);
    return;
  }
  const uint64_t stream = connections_->TxStream(item.desc.dst_function);
  const ConnectionService::Acquired acquired =
      connections_->Acquire(dst_node, item.tenant, stream);
  if (acquired.qp == 0) {
    if (connections_->CanEstablish(dst_node, item.tenant)) {
      // Lazy policy: first use of (peer, tenant) — establish on demand and
      // resume this send when the handshake lands. The buffer stays
      // engine-owned across the setup; a failed establishment recycles it
      // ("counted not hung").
      connections_->EstablishThen(
          dst_node, item.tenant, stream,
          [this, item, buffer, pool](const ConnectionService::Acquired& late) {
            if (late.qp == 0) {
              m_unroutable_.Increment();
              pool->Put(buffer, owner_id());
              return;
            }
            FinishTx(item, buffer, pool, late);
          });
      return;
    }
    m_unroutable_.Increment();
    pool->Put(buffer, owner_id());
    return;
  }
  FinishTx(item, buffer, pool, acquired);
}

void NetworkEngine::FinishTx(const TxItem& item, Buffer* buffer, BufferPool* pool,
                             const ConnectionService::Acquired& acquired) {
  auto post = [this, item, buffer, pool, qp = acquired.qp]() {
    PostToRnic(item, buffer, pool, qp);
  };
  auto maybe_dma = [this, buffer, pool, tenant = item.tenant, post = std::move(post)]() {
    if (config_.on_path) {
      // On-path: the payload is staged host -> SoC memory through the slow
      // SoC DMA engine before the RNIC can transmit it (Fig. 2 (1)).
      node_->dpu()->SocDmaTransfer(
          buffer->length,
          [this, buffer, pool, post](bool ok) {
            if (!ok) {
              // Injected kSocDma drop: the staging copy failed before the
              // RNIC ever saw the buffer — recycle it.
              pool->Put(buffer, owner_id());
              return;
            }
            post();
          },
          tenant, buffer->payload().data(), buffer->payload().size());
    } else {
      post();
    }
  };
  if (acquired.control_cost > 0) {
    worker_core_->Submit(acquired.control_cost, std::move(maybe_dma));
  } else {
    maybe_dma();
  }
}

void NetworkEngine::PostToRnic(const TxItem& item, Buffer* buffer, BufferPool* pool, QpNum qp) {
  if (!pool->Transfer(buffer, owner_id(), OwnerId::Rnic(node_->id()))) {
    m_unroutable_.Increment();
    return;
  }
  const uint64_t wr_id = next_wr_id_++;
  in_flight_[wr_id] = InFlightSend{buffer, pool, qp, item};
  node_->rnic().PostSend(qp, *buffer, wr_id, item.desc.dst_function);
  m_tx_messages_.Increment();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceCategory::kEngine, config_.engine_id, "tx_post",
                    item.desc.dst_function, buffer->length);
  }
}

void NetworkEngine::OnCompletion(const Completion& cqe) {
  if (cqe.opcode == RdmaOpcode::kRecv) {
    const SimDuration cost =
        env_->cost().dne_loop_iteration + env_->cost().dne_rx_stage + config_.extra_per_op;
    worker_core_->Submit(cost, [this, cqe]() { HandleRecvCompletion(cqe); });
    return;
  }
  if (cqe.opcode == RdmaOpcode::kSend) {
    worker_core_->Submit(env_->cost().dne_loop_iteration, [this, cqe]() {
      const auto it = in_flight_.find(cqe.wr_id);
      if (it == in_flight_.end()) {
        return;
      }
      const InFlightSend inflight = it->second;
      in_flight_.erase(it);
      connections_->NoteIdle(inflight.qp);
      m_send_completions_.Increment();
      if (cqe.status != WrStatus::kSuccess) {
        // RC semantics: a transport error kills the connection. Under lazy
        // policies the service marks it errored and kicks off a repair
        // handshake (no-op under the legacy eager policy).
        connections_->NoteTransportError(inflight.qp);
        // Transport NACK ("counted not hung": an injected RNIC loss completes
        // the WR with an error while the QP stays usable). Reclaim the buffer
        // and re-enter the TX pipeline after backoff when the tenant's retry
        // policy allows; recycle terminally otherwise.
        inflight.pool->Transfer(inflight.buffer, OwnerId::Rnic(node_->id()), owner_id());
        if (ScheduleTxRetry(inflight.item, "tx_nack_retry")) {
          return;
        }
        inflight.pool->Put(inflight.buffer, owner_id());
        return;
      }
      // The RNIC is done reading the source buffer: recycle it to the pool.
      inflight.pool->Put(inflight.buffer, OwnerId::Rnic(node_->id()));
    });
  }
}

NetworkEngine::RetryHandles& NetworkEngine::RetryHandlesFor(TenantId tenant) {
  const auto it = retry_handles_.find(tenant);
  if (it != retry_handles_.end()) {
    return it->second;
  }
  // Created lazily on the tenant's first retry event so unfaulted runs keep
  // byte-identical snapshots (bench goldens); resolved once, bumped through
  // raw-word handles on every later retry.
  const MetricLabels labels = MetricLabels::Tenant(static_cast<int64_t>(tenant));
  MetricsRegistry& reg = env_->metrics();
  RetryHandles handles;
  handles.attempts = reg.ResolveCounter("retry_attempts", labels);
  handles.exhausted = reg.ResolveCounter("retry_exhausted", labels);
  handles.budget_denied = reg.ResolveCounter("retry_budget_denied", labels);
  return retry_handles_.emplace(tenant, handles).first->second;
}

bool NetworkEngine::ScheduleTxRetry(const TxItem& item, const char* stage) {
  SloRegistry& slos = env_->slos();
  const RetryPolicy* policy = slos.RetryPolicyOf(item.tenant);
  if (policy == nullptr) {
    return false;  // No policy: terminal, exactly the pre-SLO behaviour.
  }
  SloObject* slo = slos.OfTenant(item.tenant);
  RetryHandles& retry = RetryHandlesFor(item.tenant);
  if (item.attempt >= policy->max_attempts) {
    retry.exhausted.Increment();
    env_->Trace(TraceCategory::kEngine, config_.engine_id, "retry_exhausted", item.tenant,
                item.attempt);
    if (slo != nullptr) {
      slo->RecordError();
    }
    return false;
  }
  if (slo != nullptr && !slo->TryConsumeRetryToken()) {
    // Retry budget capped by the error budget: a tenant that burned its
    // window cannot amplify load with further retries.
    retry.budget_denied.Increment();
    env_->Trace(TraceCategory::kEngine, config_.engine_id, "retry_budget_denied", item.tenant,
                item.attempt);
    return false;
  }
  const SimDuration backoff = policy->BackoffFor(item.attempt, slos.jitter_rng());
  retry.attempts.Increment();
  env_->Trace(TraceCategory::kEngine, config_.engine_id, stage, item.tenant, item.attempt);
  sim().Schedule(backoff, [this, desc = item.desc, attempt = item.attempt + 1]() {
    IngestTx(desc, 0, attempt);
  });
  return true;
}

void NetworkEngine::HandleRecvCompletion(const Completion& cqe) {
  Buffer* registered = rbr_.Consume(cqe.wr_id, cqe.tenant);
  if (registered == nullptr || registered != cqe.buffer) {
    m_unroutable_.Increment();
    return;
  }
  m_rbr_hits_.Increment();
  m_rx_messages_.Increment();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceCategory::kEngine, config_.engine_id, "rx_deliver", cqe.imm,
                    cqe.byte_len);
  }
  const auto pool_it = tenant_pools_.find(cqe.tenant);
  if (pool_it == tenant_pools_.end()) {
    m_unroutable_.Increment();
    return;
  }
  BufferPool* pool = pool_it->second;
  pool->Transfer(registered, OwnerId::Rnic(node_->id()), owner_id());
  // kDneRx fault site: the received message leaving the RNIC for local
  // delivery. Intercepted after the ownership transfer so a drop recycles a
  // buffer this engine owns; corruption hits the received payload before any
  // checksum validation downstream.
  const FaultDecision fault = env_->faults().Intercept(
      FaultSite::kDneRx, FaultScope{cqe.tenant, node_->id()}, registered->payload().data(),
      registered->payload().size());
  if (fault.action == FaultAction::kDrop) {
    pool->Put(registered, owner_id());
    return;
  }
  const FunctionId dst = cqe.imm;
  auto deliver = [this, dst, registered, pool, tenant = cqe.tenant]() {
    if (config_.on_path) {
      // On-path: the RNIC deposited into SoC memory; stage SoC -> host pool.
      node_->dpu()->SocDmaTransfer(
          registered->length,
          [this, dst, registered, pool](bool ok) {
            if (!ok) {
              pool->Put(registered, owner_id());
              return;
            }
            DeliverLocal(dst, registered, pool);
          },
          tenant, registered->payload().data(), registered->payload().size());
      return;
    }
    DeliverLocal(dst, registered, pool);
  };
  if (fault.action == FaultAction::kDelay) {
    sim().Schedule(fault.delay, deliver);
    return;
  }
  deliver();
}

void NetworkEngine::DeliverLocal(FunctionId fn, Buffer* buffer, BufferPool* pool) {
  const auto it = endpoints_.find(fn);
  if (it == endpoints_.end()) {
    m_unroutable_.Increment();
    pool->Put(buffer, owner_id());
    return;
  }
  if (it->second.engine_endpoint) {
    it->second.deliver(buffer);
    return;
  }
  const BufferDescriptor desc = pool->MakeDescriptor(*buffer, fn);
  if (config_.kind == Kind::kDne) {
    // Charge the Comch channel handling on the worker loop, then push the
    // descriptor toward the host function. An entry drop (severed endpoint /
    // injected fault) leaves the buffer engine-owned: recycle it.
    worker_core_->Submit(ComchDpuCost(), [this, fn, desc, buffer, pool]() {
      if (!comch_->SendToHost(fn, desc)) {
        pool->Put(buffer, owner_id());
      }
    });
    return;
  }
  const bool sent = skmsg_->Send(worker_core_, it->second.fn_core, desc,
                                 [this, fn](const BufferDescriptor& d) {
                                   const auto ep = endpoints_.find(fn);
                                   if (ep == endpoints_.end()) {
                                     return;
                                   }
                                   BufferPool* p = node_->tenants().PoolById(d.pool);
                                   Buffer* b = p == nullptr ? nullptr : p->Resolve(d);
                                   if (b != nullptr && ep->second.deliver) {
                                     ep->second.deliver(b);
                                   }
                                 },
                                 /*engine_endpoint=*/false, pool->tenant());
  if (!sent) {
    pool->Put(buffer, owner_id());
  }
}

void NetworkEngine::ReplenishTick() {
  // Core-thread work (section 3.5.2): post as many fresh receive buffers as
  // the RX stage consumed since the last tick, per tenant.
  SimDuration work = 300;
  for (auto& [tenant, pool] : tenant_pools_) {
    const uint64_t due = rbr_.TakeConsumedCount(tenant) + replenish_debt_[tenant];
    if (due > 0) {
      const uint64_t posted = PostRecvBuffers(tenant, due);
      work += static_cast<SimDuration>(150 * posted);
      replenish_debt_[tenant] = due - posted;  // Retry the rest next tick.
    }
  }
  core_thread_core_->Consume(work);
  sim().Schedule(config_.replenish_period, [this]() { ReplenishTick(); });
}

uint64_t NetworkEngine::PostRecvBuffers(TenantId tenant, uint64_t count) {
  BufferPool* pool = tenant_pools_[tenant];
  for (uint64_t i = 0; i < count; ++i) {
    Buffer* buffer = pool->Get(owner_id());
    if (buffer == nullptr) {
      m_replenish_failures_.Increment();
      return i;
    }
    const uint64_t wr_id = next_wr_id_++;
    if (!node_->rnic().PostRecvBuffer(pool, buffer, owner_id(), wr_id)) {
      pool->Put(buffer, owner_id());
      m_replenish_failures_.Increment();
      return i;
    }
    rbr_.Insert(wr_id, buffer, tenant);
  }
  return count;
}

}  // namespace nadino
