#include "src/dpu/cross_mmap.h"

namespace nadino {

uint64_t HostMemoryExporter::AuthFor(PoolId pool, bool pci, bool rdma) const {
  uint64_t h = secret_ ^ (static_cast<uint64_t>(pool) * 0x9E3779B97F4A7C15ULL);
  h ^= pci ? 0xA5A5A5A5ULL : 0;
  h ^= rdma ? 0x5A5A5A5A00000000ULL : 0;
  h *= 0xFF51AFD7ED558CCDULL;
  return h ^ (h >> 33);
}

MmapExportDescriptor HostMemoryExporter::Export(BufferPool* pool, bool pci_access,
                                                bool rdma_access) {
  MmapExportDescriptor desc;
  desc.pool = pool->id();
  desc.pci_access = pci_access;
  desc.rdma_access = rdma_access;
  desc.auth = AuthFor(pool->id(), pci_access, rdma_access);
  return desc;
}

bool DpuMmapTable::CreateFromExport(const MmapExportDescriptor& desc, BufferPool* pool) {
  if (pool == nullptr || pool->id() != desc.pool ||
      desc.auth != exporter_->AuthFor(desc.pool, desc.pci_access, desc.rdma_access)) {
    ++rejected_imports_;
    return false;
  }
  imported_[desc.pool] = Imported{pool, desc.pci_access, desc.rdma_access};
  return true;
}

bool DpuMmapTable::CanPciAccess(PoolId pool) const {
  const auto it = imported_.find(pool);
  return it != imported_.end() && it->second.pci_access;
}

bool DpuMmapTable::CanRdmaRegister(PoolId pool) const {
  const auto it = imported_.find(pool);
  return it != imported_.end() && it->second.rdma_access;
}

BufferPool* DpuMmapTable::PoolById(PoolId pool) const {
  const auto it = imported_.find(pool);
  return it == imported_.end() ? nullptr : it->second.pool;
}

bool DpuMmapTable::RegisterWithRnic(PoolId pool, RdmaEngine* rnic, uint8_t mr_access) {
  const auto it = imported_.find(pool);
  if (it == imported_.end() || !it->second.rdma_access) {
    return false;
  }
  rnic->mr_table().Register(it->second.pool, mr_access);
  return true;
}

}  // namespace nadino
