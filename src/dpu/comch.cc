#include "src/dpu/comch.h"

#include <utility>

namespace nadino {

ComchServer::ComchServer(Env& env, FifoResource* dpu_core, bool engine_managed_polling,
                         NodeId node)
    : env_(&env),
      dpu_core_(dpu_core),
      engine_managed_polling_(engine_managed_polling),
      node_(node) {}

ComchServer::Costs ComchServer::CostsFor(ComchVariant variant) const {
  switch (variant) {
    case ComchVariant::kEvent:
      return {env_->cost().comch_e_host_send, env_->cost().comch_e_host_recv, env_->cost().comch_e_channel,
              env_->cost().comch_e_dpu_side};
    case ComchVariant::kPolling:
      return {env_->cost().comch_p_host_side, env_->cost().comch_p_host_side, env_->cost().comch_p_channel,
              env_->cost().comch_p_dpu_side +
                  env_->cost().comch_p_progress_sweep_per_endpoint * polling_endpoints_};
    case ComchVariant::kTcp:
      return {env_->cost().comch_tcp_host_side, env_->cost().comch_tcp_host_side, env_->cost().comch_tcp_channel,
              env_->cost().comch_tcp_dpu_side};
  }
  return {};
}

void ComchServer::ConnectEndpoint(FunctionId fn, ComchVariant variant, FifoResource* host_core,
                                  HostReceiver host_receiver, TenantId tenant) {
  Endpoint ep;
  ep.variant = variant;
  ep.host_core = host_core;
  ep.host_receiver = std::move(host_receiver);
  if (variant == ComchVariant::kPolling) {
    ++polling_endpoints_;
    host_core->set_pinned(true);  // Busy polling ties up the function's core.
  }
  endpoints_[fn] = std::move(ep);
  fn_tenant_[fn] = tenant;  // Survives Disconnect: post-sever drops attribute.
}

void ComchServer::Disconnect(FunctionId fn) {
  const auto it = endpoints_.find(fn);
  if (it == endpoints_.end()) {
    return;
  }
  if (it->second.variant == ComchVariant::kPolling) {
    --polling_endpoints_;
    it->second.host_core->set_pinned(false);
  }
  endpoints_.erase(it);
}

TenantId ComchServer::TenantOf(FunctionId fn) const {
  const auto it = fn_tenant_.find(fn);
  return it == fn_tenant_.end() ? kInvalidTenant : it->second;
}

void ComchServer::CountDrop(FunctionId fn) {
  const TenantId tenant = TenantOf(fn);
  auto& counter = drop_counters_[tenant];
  if (counter == nullptr) {
    MetricLabels labels;
    if (node_ != kInvalidNode) {
      labels.node = static_cast<int64_t>(node_);
    }
    if (tenant != kInvalidTenant) {
      labels.tenant = static_cast<int64_t>(tenant);
    }
    counter = &env_->metrics().Counter("comch_dropped", labels);
  }
  counter->Increment();
}

uint64_t ComchServer::dropped() const {
  uint64_t total = 0;
  for (const auto& [tenant, counter] : drop_counters_) {
    total += counter->value();
  }
  return total;
}

bool ComchServer::SendToDpu(FunctionId fn, const BufferDescriptor& desc) {
  const auto it = endpoints_.find(fn);
  if (it == endpoints_.end()) {
    CountDrop(fn);
    return false;
  }
  // kComch fault site. Corruption flips bits in the 16-byte descriptor as it
  // crosses PCIe; the DPU side decodes the damaged wire image and the
  // resolve/ownership checks downstream must reject it (no silent corruption).
  BufferDescriptor crossing = desc;
  auto wire = crossing.Encode();
  // InterceptPair with peer == node_: a node_partition window severing this
  // node kills its Comch descriptor channel too (DESIGN.md §3d).
  const FaultDecision fault = env_->faults().InterceptPair(
      FaultSite::kComch, FaultScope{TenantOf(fn), node_}, node_, wire.data(), wire.size());
  if (fault.action == FaultAction::kDrop) {
    CountDrop(fn);
    return false;
  }
  if (fault.action == FaultAction::kCorrupt) {
    crossing = BufferDescriptor::Decode(wire);
  }
  ++to_dpu_;
  const Costs costs = CostsFor(it->second.variant);
  const SimDuration channel =
      costs.channel + (fault.action == FaultAction::kDelay ? fault.delay : 0);
  it->second.host_core->Submit(costs.host_send, [this, fn, desc = crossing, channel, costs]() {
    sim().Schedule(channel, [this, fn, desc, costs]() {
      if (engine_managed_polling_) {
        // The owning engine discovers the descriptor on its next loop pass
        // and charges the handling cost within its scheduled stage.
        if (receiver_) {
          receiver_(fn, desc);
        }
        return;
      }
      dpu_core_->Submit(costs.dpu_side, [this, fn, desc]() {
        if (receiver_) {
          receiver_(fn, desc);
        }
      });
    });
  });
  return true;
}

bool ComchServer::SendToHost(FunctionId fn, const BufferDescriptor& desc) {
  const auto it = endpoints_.find(fn);
  if (it == endpoints_.end()) {
    CountDrop(fn);
    return false;
  }
  BufferDescriptor crossing = desc;
  auto wire = crossing.Encode();
  // InterceptPair with peer == node_: a node_partition window severing this
  // node kills its Comch descriptor channel too (DESIGN.md §3d).
  const FaultDecision fault = env_->faults().InterceptPair(
      FaultSite::kComch, FaultScope{TenantOf(fn), node_}, node_, wire.data(), wire.size());
  if (fault.action == FaultAction::kDrop) {
    CountDrop(fn);
    return false;
  }
  if (fault.action == FaultAction::kCorrupt) {
    crossing = BufferDescriptor::Decode(wire);
  }
  ++to_host_;
  const Costs costs = CostsFor(it->second.variant);
  const SimDuration channel =
      costs.channel + (fault.action == FaultAction::kDelay ? fault.delay : 0);
  // Re-resolve the endpoint at each stage: it may be Disconnect()ed while the
  // message is in flight, in which case the descriptor is dropped.
  auto after_dpu_side = [this, fn, desc = crossing, channel, costs]() {
    sim().Schedule(channel, [this, fn, desc, costs]() {
      const auto ep_it = endpoints_.find(fn);
      if (ep_it == endpoints_.end()) {
        CountDrop(fn);
        return;
      }
      ep_it->second.host_core->Submit(costs.host_recv, [this, fn, desc]() {
        const auto final_it = endpoints_.find(fn);
        if (final_it == endpoints_.end() || !final_it->second.host_receiver) {
          CountDrop(fn);
          return;
        }
        final_it->second.host_receiver(desc);
      });
    });
  };
  if (engine_managed_polling_) {
    after_dpu_side();  // The engine already charged the DPU-side handling.
    return true;
  }
  dpu_core_->Submit(costs.dpu_side, std::move(after_dpu_side));
  return true;
}

}  // namespace nadino
