#include "src/dpu/comch.h"

#include <utility>

namespace nadino {

ComchServer::ComchServer(Env& env, FifoResource* dpu_core, bool engine_managed_polling)
    : env_(&env), dpu_core_(dpu_core), engine_managed_polling_(engine_managed_polling) {}

ComchServer::Costs ComchServer::CostsFor(ComchVariant variant) const {
  switch (variant) {
    case ComchVariant::kEvent:
      return {env_->cost().comch_e_host_send, env_->cost().comch_e_host_recv, env_->cost().comch_e_channel,
              env_->cost().comch_e_dpu_side};
    case ComchVariant::kPolling:
      return {env_->cost().comch_p_host_side, env_->cost().comch_p_host_side, env_->cost().comch_p_channel,
              env_->cost().comch_p_dpu_side +
                  env_->cost().comch_p_progress_sweep_per_endpoint * polling_endpoints_};
    case ComchVariant::kTcp:
      return {env_->cost().comch_tcp_host_side, env_->cost().comch_tcp_host_side, env_->cost().comch_tcp_channel,
              env_->cost().comch_tcp_dpu_side};
  }
  return {};
}

void ComchServer::ConnectEndpoint(FunctionId fn, ComchVariant variant, FifoResource* host_core,
                                  HostReceiver host_receiver) {
  Endpoint ep;
  ep.variant = variant;
  ep.host_core = host_core;
  ep.host_receiver = std::move(host_receiver);
  if (variant == ComchVariant::kPolling) {
    ++polling_endpoints_;
    host_core->set_pinned(true);  // Busy polling ties up the function's core.
  }
  endpoints_[fn] = std::move(ep);
}

void ComchServer::Disconnect(FunctionId fn) {
  const auto it = endpoints_.find(fn);
  if (it == endpoints_.end()) {
    return;
  }
  if (it->second.variant == ComchVariant::kPolling) {
    --polling_endpoints_;
    it->second.host_core->set_pinned(false);
  }
  endpoints_.erase(it);
}

void ComchServer::SendToDpu(FunctionId fn, const BufferDescriptor& desc) {
  const auto it = endpoints_.find(fn);
  if (it == endpoints_.end()) {
    ++dropped_;
    return;
  }
  ++to_dpu_;
  const Costs costs = CostsFor(it->second.variant);
  it->second.host_core->Submit(costs.host_send, [this, fn, desc, costs]() {
    sim().Schedule(costs.channel, [this, fn, desc, costs]() {
      if (engine_managed_polling_) {
        // The owning engine discovers the descriptor on its next loop pass
        // and charges the handling cost within its scheduled stage.
        if (receiver_) {
          receiver_(fn, desc);
        }
        return;
      }
      dpu_core_->Submit(costs.dpu_side, [this, fn, desc]() {
        if (receiver_) {
          receiver_(fn, desc);
        }
      });
    });
  });
}

void ComchServer::SendToHost(FunctionId fn, const BufferDescriptor& desc) {
  const auto it = endpoints_.find(fn);
  if (it == endpoints_.end()) {
    ++dropped_;
    return;
  }
  ++to_host_;
  const Costs costs = CostsFor(it->second.variant);
  // Re-resolve the endpoint at each stage: it may be Disconnect()ed while the
  // message is in flight, in which case the descriptor is dropped.
  auto after_dpu_side = [this, fn, desc, costs]() {
    sim().Schedule(costs.channel, [this, fn, desc, costs]() {
      const auto ep_it = endpoints_.find(fn);
      if (ep_it == endpoints_.end()) {
        ++dropped_;
        return;
      }
      ep_it->second.host_core->Submit(costs.host_recv, [this, fn, desc]() {
        const auto final_it = endpoints_.find(fn);
        if (final_it == endpoints_.end() || !final_it->second.host_receiver) {
          ++dropped_;
          return;
        }
        final_it->second.host_receiver(desc);
      });
    });
  };
  if (engine_managed_polling_) {
    after_dpu_side();  // The engine already charged the DPU-side handling.
    return;
  }
  dpu_core_->Submit(costs.dpu_side, std::move(after_dpu_side));
}

}  // namespace nadino
