// Cross-processor (CPU<->DPU) shared memory via an export/import handshake.
//
// Models the DOCA mmap workflow (paper section 3.4.2):
//   1. the host-side shared-memory agent exports the tenant pool with
//      doca_mmap_export_pci() (DPU ARM access) and doca_mmap_export_rdma()
//      (RNIC access), producing an export descriptor;
//   2. the descriptor travels to the DNE over the Comch;
//   3. the DNE imports it with doca_mmap_create_from_export(), after which it
//      may register the host memory with the RNIC.
//
// The model enforces the protocol: imports fail on forged/garbled
// descriptors, and RNIC registration requires the rdma-export capability.
// This keeps the isolation story testable — a tenant that never exported its
// pool can never have it registered, and the DNE cannot touch pools it was
// not handed.

#ifndef SRC_DPU_CROSS_MMAP_H_
#define SRC_DPU_CROSS_MMAP_H_

#include <cstdint>
#include <map>

#include "src/core/types.h"
#include "src/mem/buffer_pool.h"
#include "src/rdma/rdma_engine.h"

namespace nadino {

// The opaque blob doca_mmap_export_* returns. `auth` binds the descriptor to
// the exporting registry so forged descriptors are rejected on import.
struct MmapExportDescriptor {
  PoolId pool = 0;
  bool pci_access = false;   // DPU ARM cores may address the memory.
  bool rdma_access = false;  // The integrated RNIC may register it.
  uint64_t auth = 0;
};

// Host side: the per-tenant shared-memory agent's export API.
class HostMemoryExporter {
 public:
  // doca_mmap_export_pci + doca_mmap_export_rdma combined; each flag opt-in.
  MmapExportDescriptor Export(BufferPool* pool, bool pci_access, bool rdma_access);

 private:
  uint64_t AuthFor(PoolId pool, bool pci, bool rdma) const;
  uint64_t secret_ = 0x5EED0FDECAFBADD1ULL;
  friend class DpuMmapTable;
};

// DPU side: the DNE's imported-memory table (doca_mmap_create_from_export).
class DpuMmapTable {
 public:
  explicit DpuMmapTable(const HostMemoryExporter* exporter) : exporter_(exporter) {}

  // Validates and records the export. Returns false on a forged descriptor.
  bool CreateFromExport(const MmapExportDescriptor& desc, BufferPool* pool);

  bool CanPciAccess(PoolId pool) const;
  bool CanRdmaRegister(PoolId pool) const;
  BufferPool* PoolById(PoolId pool) const;

  // Registers an imported pool with the RNIC (requires rdma access).
  bool RegisterWithRnic(PoolId pool, RdmaEngine* rnic, uint8_t mr_access);

  uint64_t rejected_imports() const { return rejected_imports_; }

 private:
  struct Imported {
    BufferPool* pool = nullptr;
    bool pci_access = false;
    bool rdma_access = false;
  };

  const HostMemoryExporter* exporter_;
  std::map<PoolId, Imported> imported_;
  uint64_t rejected_imports_ = 0;
};

}  // namespace nadino

#endif  // SRC_DPU_CROSS_MMAP_H_
