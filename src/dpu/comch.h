// Cross-processor communication channel between host functions and the DNE.
//
// Models DOCA Comch (paper section 3.5.4) in its two variants plus the TCP
// baseline the paper benchmarks in Fig. 9:
//   * Comch-E — event-driven send/recv over blocking epoll: no pinned cores,
//     moderate per-message cost; NADINO's choice for dense multi-tenancy.
//   * Comch-P — producer/consumer ring with busy polling: lowest latency but
//     pins one host core per function, and the DOCA progress engine's
//     internal epoll_wait costs the single-core DNE time per *endpoint*,
//     which overloads it beyond ~6 functions.
//   * TCP — descriptors over the kernel stack (PCIe netdev), the slow path.
//
// Only 16-byte buffer descriptors travel here; payloads stay in the
// cross-processor shared memory pool. The server side may Disconnect() a
// misbehaving tenant's endpoint — the isolation lever the paper contrasts
// with raw intra-node RDMA (section 3.5.4). Every message also crosses the
// FaultPlane's kComch site; drops of either origin land in the
// comch_dropped{node,tenant} registry counters (dropped() sums them).

#ifndef SRC_DPU_COMCH_H_
#define SRC_DPU_COMCH_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/mem/buffer.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace nadino {

enum class ComchVariant : uint8_t {
  kEvent,    // Comch-E
  kPolling,  // Comch-P
  kTcp,      // Kernel TCP baseline
};

class ComchServer {
 public:
  // Receives (function, descriptor) messages after DPU-side processing.
  using ServerReceiver = std::function<void(FunctionId, const BufferDescriptor&)>;
  using HostReceiver = std::function<void(const BufferDescriptor&)>;

  // `dpu_core` is the DNE core that executes channel handling; costs given in
  // host time are scaled by that core's speed factor automatically. `node`
  // labels this server's drop counters and scopes fault interception.
  //
  // With `engine_managed_polling` set, the server does NOT charge the
  // DPU-side handling cost itself: the owning engine busy-polls the endpoints
  // inside its run-to-completion event loop (section 3.5.4) and accounts for
  // the per-message channel handling as part of its scheduled TX/RX stages.
  // This keeps per-tenant DWRR in control of *all* per-message engine work.
  ComchServer(Env& env, FifoResource* dpu_core, bool engine_managed_polling = false,
              NodeId node = kInvalidNode);

  // DPU-side per-message handling cost (host time) for this server's
  // configuration — what an engine-managed owner must charge per message.
  SimDuration DpuSideCost(ComchVariant variant) const { return CostsFor(variant).dpu_side; }

  ComchServer(const ComchServer&) = delete;
  ComchServer& operator=(const ComchServer&) = delete;

  void SetReceiver(ServerReceiver receiver) { receiver_ = std::move(receiver); }

  // Registers a host-side endpoint for `fn`, owned by `tenant` (labels the
  // drop accounting; kInvalidTenant is accepted for tenant-less tests).
  // `host_core` runs the function's send/receive costs; with kPolling it
  // becomes a pinned (busy-poll) core.
  void ConnectEndpoint(FunctionId fn, ComchVariant variant, FifoResource* host_core,
                       HostReceiver host_receiver, TenantId tenant = kInvalidTenant);

  // Severs a tenant function's endpoint; subsequent sends are dropped and
  // counted (the DNE's defense against misbehaving tenants).
  void Disconnect(FunctionId fn);

  bool IsConnected(FunctionId fn) const { return endpoints_.count(fn) > 0; }

  // Host -> DPU: called from function context. Charges the function's core,
  // the channel latency, then DPU-side processing before handing the
  // descriptor to the server receiver. Returns false when the message is
  // dropped at entry (severed endpoint or injected fault): the caller still
  // owns the buffer and must recycle it.
  bool SendToDpu(FunctionId fn, const BufferDescriptor& desc);

  // DPU -> host: called from DNE context. Charges DPU-side processing, the
  // channel, then the function-side receive cost before invoking the host
  // receiver. Returns false when dropped at entry (see SendToDpu); in-flight
  // drops (endpoint severed mid-crossing) are counted but not reported.
  bool SendToHost(FunctionId fn, const BufferDescriptor& desc);

  uint64_t messages_to_dpu() const { return to_dpu_; }
  uint64_t messages_to_host() const { return to_host_; }
  // Thin shim over the comch_dropped{node,tenant} registry counters (PR-1
  // Stats convention): total drops across every tenant on this server.
  uint64_t dropped() const;
  int polling_endpoints() const { return polling_endpoints_; }

 private:
  struct Endpoint {
    ComchVariant variant = ComchVariant::kEvent;
    FifoResource* host_core = nullptr;
    HostReceiver host_receiver;
  };

  struct Costs {
    SimDuration host_send = 0;
    SimDuration host_recv = 0;
    SimDuration channel = 0;
    SimDuration dpu_side = 0;  // Host time; includes the progress sweep.
  };

  Costs CostsFor(ComchVariant variant) const;

  // Registry counter for drops attributed to `fn`'s tenant (lazily created;
  // the fn -> tenant mapping survives Disconnect so post-sever drops are
  // still attributed to the misbehaving tenant).
  void CountDrop(FunctionId fn);
  TenantId TenantOf(FunctionId fn) const;

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  FifoResource* dpu_core_;
  bool engine_managed_polling_;
  NodeId node_;
  ServerReceiver receiver_;
  std::map<FunctionId, Endpoint> endpoints_;
  std::map<FunctionId, TenantId> fn_tenant_;
  std::map<TenantId, CounterMetric*> drop_counters_;
  int polling_endpoints_ = 0;
  uint64_t to_dpu_ = 0;
  uint64_t to_host_ = 0;
};

}  // namespace nadino

#endif  // SRC_DPU_COMCH_H_
