// BlueField-2-class DPU SoC model.
//
// The DPU contributes three resources the paper's design reasons about:
//   * wimpy general-purpose ARM cores (A72 @ <=2.5 GHz vs host Xeon @ 3.7 GHz):
//     modelled as FifoResources with a speed factor > 1;
//   * a SoC DMA engine for host<->DPU staging: low per-op latency when idle
//     (2.6 us for 64 B [95]) but poor throughput under concurrency — the
//     reason on-path offloading loses (section 4.1.1);
//   * the integrated RNIC, which DMAs at line rate directly into *host*
//     memory and is modelled separately (src/rdma/rdma_engine.h).

#ifndef SRC_DPU_DPU_H_
#define SRC_DPU_DPU_H_

#include <memory>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace nadino {

class Dpu {
 public:
  Dpu(Env& env, NodeId node, int num_cores = 8);

  Dpu(const Dpu&) = delete;
  Dpu& operator=(const Dpu&) = delete;

  NodeId node() const { return node_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  // A wimpy ARM core. Jobs submitted here should use *host-CPU-equivalent*
  // service times; the core's speed factor applies the DPU penalty.
  FifoResource& core(int i) { return *cores_.at(static_cast<size_t>(i)); }

  // The shared SoC DMA engine (one per DPU; transfers serialize on it).
  FifoResource& dma_engine() { return dma_engine_; }

  // `done(false)` means an injected kSocDma drop killed the transfer: the
  // engine time was still charged, but the data did NOT land — the caller
  // must recycle the buffer it was staging.
  using DmaCallback = std::function<void(bool ok)>;

  // Queues a host<->SoC staging transfer of `bytes` through the SoC DMA
  // engine; `done(ok)` fires when the transfer finishes. `tenant` scopes
  // fault interception; `payload`/`payload_len`, when provided, expose the
  // staged bytes for kCorrupt flips.
  void SocDmaTransfer(uint64_t bytes, DmaCallback done, TenantId tenant = kInvalidTenant,
                      std::byte* payload = nullptr, size_t payload_len = 0);

  // Service time of a single SoC DMA transfer when the engine is idle.
  SimDuration SocDmaCost(uint64_t bytes) const;

  uint64_t soc_dma_transfers() const { return soc_dma_transfers_; }
  uint64_t soc_dma_bytes() const { return soc_dma_bytes_; }

 private:
  Env* env_;
  NodeId node_;
  std::vector<std::unique_ptr<FifoResource>> cores_;
  FifoResource dma_engine_;
  uint64_t soc_dma_transfers_ = 0;
  uint64_t soc_dma_bytes_ = 0;
};

}  // namespace nadino

#endif  // SRC_DPU_DPU_H_
