#include "src/dpu/dpu.h"

#include <string>
#include <utility>

namespace nadino {

Dpu::Dpu(Env& env, NodeId node, int num_cores)
    : env_(&env), node_(node), dma_engine_(&env.sim(), "soc_dma:" + std::to_string(node)) {
  cores_.reserve(static_cast<size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    cores_.push_back(std::make_unique<FifoResource>(
        &env.sim(), "dpu_core:" + std::to_string(node) + ":" + std::to_string(i),
        env.cost().dpu_speed_factor));
  }
}

SimDuration Dpu::SocDmaCost(uint64_t bytes) const {
  const double bytes_per_ns = env_->cost().soc_dma_gbps / 8.0;
  return env_->cost().soc_dma_base +
         static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_ns + 0.5);
}

void Dpu::SocDmaTransfer(uint64_t bytes, DmaCallback done, TenantId tenant, std::byte* payload,
                         size_t payload_len) {
  // kSocDma fault site. A drop still occupies the DMA engine for the full
  // service time (the transfer ran and failed), then completes with ok=false
  // so the caller recycles whatever it was staging. Corruption flips staged
  // payload bytes in place; delay models PCIe backpressure on the engine.
  const FaultDecision fault =
      env_->faults().Intercept(FaultSite::kSocDma, FaultScope{tenant, node_}, payload,
                               payload_len);
  ++soc_dma_transfers_;
  soc_dma_bytes_ += bytes;
  SimDuration service = SocDmaCost(bytes);
  if (fault.action == FaultAction::kDelay) {
    service += fault.delay;
  }
  const bool ok = fault.action != FaultAction::kDrop;
  dma_engine_.Submit(service, [done = std::move(done), ok]() {
    if (done) {
      done(ok);
    }
  });
}

}  // namespace nadino
