#include "src/dpu/dpu.h"

#include <string>
#include <utility>

namespace nadino {

Dpu::Dpu(Env& env, NodeId node, int num_cores)
    : env_(&env), node_(node), dma_engine_(&env.sim(), "soc_dma:" + std::to_string(node)) {
  cores_.reserve(static_cast<size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    cores_.push_back(std::make_unique<FifoResource>(
        &env.sim(), "dpu_core:" + std::to_string(node) + ":" + std::to_string(i),
        env.cost().dpu_speed_factor));
  }
}

SimDuration Dpu::SocDmaCost(uint64_t bytes) const {
  const double bytes_per_ns = env_->cost().soc_dma_gbps / 8.0;
  return env_->cost().soc_dma_base +
         static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_ns + 0.5);
}

void Dpu::SocDmaTransfer(uint64_t bytes, FifoResource::Callback done) {
  ++soc_dma_transfers_;
  soc_dma_bytes_ += bytes;
  dma_engine_.Submit(SocDmaCost(bytes), std::move(done));
}

}  // namespace nadino
