// TCP/IP stack cost models: interrupt-driven kernel stack vs DPDK F-stack.
//
// These provide per-message CPU-time costs for receiving/sending a message
// of a given size through each stack (paper sections 2, 3.6, 4.1.3). The
// kernel stack additionally charges per-message interrupt handling, the
// mechanism behind receive livelock under load [72]; F-stack busy-polls, so
// a worker using it reports a pinned core.

#ifndef SRC_TRANSPORT_TCP_MODEL_H_
#define SRC_TRANSPORT_TCP_MODEL_H_

#include <cstdint>

#include "src/core/calibration.h"
#include "src/sim/time.h"

namespace nadino {

enum class TcpStackKind : uint8_t {
  kKernel,
  kFstack,
};

class TcpStackModel {
 public:
  TcpStackModel(TcpStackKind kind, const CostModel* cost) : kind_(kind), cost_(cost) {}

  TcpStackKind kind() const { return kind_; }
  bool busy_polling() const { return kind_ == TcpStackKind::kFstack; }

  // CPU time to receive one message of `bytes` (protocol processing, socket
  // copy, syscall / poll-loop share). Excludes interrupt cost — see IrqCost().
  SimDuration RxCost(uint64_t bytes) const;

  // CPU time to send one message of `bytes`.
  SimDuration TxCost(uint64_t bytes) const;

  // Per-message interrupt/softirq cost; zero for the busy-polling F-stack.
  SimDuration IrqCost() const;

 private:
  TcpStackKind kind_;
  const CostModel* cost_;
};

}  // namespace nadino

#endif  // SRC_TRANSPORT_TCP_MODEL_H_
