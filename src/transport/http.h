// Minimal but real HTTP/1.1 parsing and serialization.
//
// The ingress gateway (section 3.6) terminates client HTTP/TCP and converts
// to RDMA. This parser actually runs on the request bytes flowing through the
// simulated ingress, so conversion correctness (method/target/body survive
// the HTTP->RDMA->HTTP round trip) is testable, not assumed.

#ifndef SRC_TRANSPORT_HTTP_H_
#define SRC_TRANSPORT_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nadino {

struct HttpHeader {
  std::string name;
  std::string value;
};

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version = "HTTP/1.1";
  std::vector<HttpHeader> headers;
  std::string body;

  // Case-insensitive header lookup; empty view when absent.
  std::string_view Header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  std::vector<HttpHeader> headers;
  std::string body;

  std::string_view Header(std::string_view name) const;
};

enum class HttpParseResult {
  kOk,
  kIncomplete,  // Need more bytes.
  kBad,         // Malformed; the connection should be reset.
};

class HttpCodec {
 public:
  // Parses one request from `input`. On kOk, `*consumed` is the number of
  // bytes used (pipelined requests may follow).
  static HttpParseResult ParseRequest(std::string_view input, HttpRequest* out,
                                      size_t* consumed);
  static HttpParseResult ParseResponse(std::string_view input, HttpResponse* out,
                                       size_t* consumed);

  // Serializers always emit an explicit Content-Length.
  static std::string Serialize(const HttpRequest& request);
  static std::string Serialize(const HttpResponse& response);

  // Chunked transfer encoding (streaming responses): the body is split into
  // `chunk_size`-byte chunks with a terminating zero chunk. The parsers
  // accept chunked messages transparently (Transfer-Encoding: chunked wins
  // over Content-Length, per RFC 9112).
  static std::string SerializeChunked(const HttpResponse& response, size_t chunk_size = 4096);

  static bool HeaderNameEquals(std::string_view a, std::string_view b);
};

}  // namespace nadino

#endif  // SRC_TRANSPORT_HTTP_H_
