#include "src/transport/tcp_model.h"

namespace nadino {

namespace {
SimDuration PerByte(double ns_per_byte, uint64_t bytes) {
  return static_cast<SimDuration>(ns_per_byte * static_cast<double>(bytes) + 0.5);
}
}  // namespace

SimDuration TcpStackModel::RxCost(uint64_t bytes) const {
  if (kind_ == TcpStackKind::kKernel) {
    return cost_->ktcp_rx + PerByte(cost_->ktcp_per_byte_ns, bytes);
  }
  return cost_->fstack_rx + PerByte(cost_->fstack_per_byte_ns, bytes);
}

SimDuration TcpStackModel::TxCost(uint64_t bytes) const {
  if (kind_ == TcpStackKind::kKernel) {
    return cost_->ktcp_tx + PerByte(cost_->ktcp_per_byte_ns, bytes);
  }
  return cost_->fstack_tx + PerByte(cost_->fstack_per_byte_ns, bytes);
}

SimDuration TcpStackModel::IrqCost() const {
  return kind_ == TcpStackKind::kKernel ? cost_->ktcp_irq_per_msg : 0;
}

}  // namespace nadino
