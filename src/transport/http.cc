#include "src/transport/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace nadino {

namespace {

// Splits out the next CRLF-terminated line; returns false when no CRLF yet.
bool NextLine(std::string_view input, size_t* pos, std::string_view* line) {
  const size_t eol = input.find("\r\n", *pos);
  if (eol == std::string_view::npos) {
    return false;
  }
  *line = input.substr(*pos, eol - *pos);
  *pos = eol + 2;
  return true;
}

bool ParseHeaders(std::string_view input, size_t* pos, std::vector<HttpHeader>* headers,
                  bool* done, bool* bad) {
  *done = false;
  *bad = false;
  std::string_view line;
  while (NextLine(input, pos, &line)) {
    if (line.empty()) {
      *done = true;
      return true;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      *bad = true;
      return true;
    }
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    headers->push_back(HttpHeader{std::string(name), std::string(value)});
  }
  return false;  // Ran out of input mid-headers.
}

bool IsChunked(const std::vector<HttpHeader>& headers) {
  for (const HttpHeader& h : headers) {
    if (HttpCodec::HeaderNameEquals(h.name, "Transfer-Encoding") &&
        h.value.find("chunked") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// Decodes a chunked body starting at `pos`. kOk: `*body` holds the decoded
// bytes and `*pos` sits past the final CRLF. kIncomplete: need more input.
HttpParseResult DecodeChunkedBody(std::string_view input, size_t* pos, std::string* body) {
  while (true) {
    std::string_view size_line;
    size_t cursor = *pos;
    if (!NextLine(input, &cursor, &size_line)) {
      return HttpParseResult::kIncomplete;
    }
    // Chunk extensions (";...") are permitted and ignored.
    const size_t semi = size_line.find(';');
    if (semi != std::string_view::npos) {
      size_line = size_line.substr(0, semi);
    }
    size_t chunk_len = 0;
    const auto [ptr, ec] = std::from_chars(size_line.data(),
                                           size_line.data() + size_line.size(),
                                           chunk_len, 16);
    if (ec != std::errc{} || ptr != size_line.data() + size_line.size()) {
      return HttpParseResult::kBad;
    }
    if (input.size() - cursor < chunk_len + 2) {
      return HttpParseResult::kIncomplete;
    }
    if (chunk_len == 0) {
      // Final chunk: expect the closing CRLF (no trailers supported).
      if (input.substr(cursor, 2) != "\r\n") {
        return HttpParseResult::kBad;
      }
      *pos = cursor + 2;
      return HttpParseResult::kOk;
    }
    body->append(input.substr(cursor, chunk_len));
    if (input.substr(cursor + chunk_len, 2) != "\r\n") {
      return HttpParseResult::kBad;
    }
    *pos = cursor + chunk_len + 2;
  }
}

// Returns -1 when absent, -2 when malformed.
int64_t ContentLengthOf(const std::vector<HttpHeader>& headers) {
  for (const HttpHeader& h : headers) {
    if (HttpCodec::HeaderNameEquals(h.name, "Content-Length")) {
      int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(h.value.data(), h.value.data() + h.value.size(), value);
      if (ec != std::errc{} || ptr != h.value.data() + h.value.size() || value < 0) {
        return -2;
      }
      return value;
    }
  }
  return -1;
}

}  // namespace

bool HttpCodec::HeaderNameEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const HttpHeader& h : headers) {
    if (HttpCodec::HeaderNameEquals(h.name, name)) {
      return h.value;
    }
  }
  return {};
}

std::string_view HttpResponse::Header(std::string_view name) const {
  for (const HttpHeader& h : headers) {
    if (HttpCodec::HeaderNameEquals(h.name, name)) {
      return h.value;
    }
  }
  return {};
}

HttpParseResult HttpCodec::ParseRequest(std::string_view input, HttpRequest* out,
                                        size_t* consumed) {
  size_t pos = 0;
  std::string_view request_line;
  if (!NextLine(input, &pos, &request_line)) {
    return HttpParseResult::kIncomplete;
  }
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return HttpParseResult::kBad;
  }
  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.target.find(' ') != std::string::npos ||
      request.version.rfind("HTTP/", 0) != 0) {
    return HttpParseResult::kBad;
  }
  bool done = false;
  bool bad = false;
  if (!ParseHeaders(input, &pos, &request.headers, &done, &bad)) {
    return HttpParseResult::kIncomplete;
  }
  if (bad) {
    return HttpParseResult::kBad;
  }
  if (IsChunked(request.headers)) {
    const HttpParseResult chunked = DecodeChunkedBody(input, &pos, &request.body);
    if (chunked != HttpParseResult::kOk) {
      return chunked;
    }
    *out = std::move(request);
    *consumed = pos;
    return HttpParseResult::kOk;
  }
  const int64_t content_length = ContentLengthOf(request.headers);
  if (content_length == -2) {
    return HttpParseResult::kBad;
  }
  const size_t body_len = content_length < 0 ? 0 : static_cast<size_t>(content_length);
  if (input.size() - pos < body_len) {
    return HttpParseResult::kIncomplete;
  }
  request.body = std::string(input.substr(pos, body_len));
  *out = std::move(request);
  *consumed = pos + body_len;
  return HttpParseResult::kOk;
}

HttpParseResult HttpCodec::ParseResponse(std::string_view input, HttpResponse* out,
                                         size_t* consumed) {
  size_t pos = 0;
  std::string_view status_line;
  if (!NextLine(input, &pos, &status_line)) {
    return HttpParseResult::kIncomplete;
  }
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || status_line.rfind("HTTP/", 0) != 0) {
    return HttpParseResult::kBad;
  }
  HttpResponse response;
  response.version = std::string(status_line.substr(0, sp1));
  const size_t sp2 = status_line.find(' ', sp1 + 1);
  std::string_view code = status_line.substr(sp1 + 1, sp2 == std::string_view::npos
                                                          ? std::string_view::npos
                                                          : sp2 - sp1 - 1);
  const auto [ptr, ec] = std::from_chars(code.data(), code.data() + code.size(),
                                         response.status);
  if (ec != std::errc{} || ptr != code.data() + code.size() || response.status < 100 ||
      response.status > 599) {
    return HttpParseResult::kBad;
  }
  if (sp2 != std::string_view::npos) {
    response.reason = std::string(status_line.substr(sp2 + 1));
  }
  bool done = false;
  bool bad = false;
  if (!ParseHeaders(input, &pos, &response.headers, &done, &bad)) {
    return HttpParseResult::kIncomplete;
  }
  if (bad) {
    return HttpParseResult::kBad;
  }
  if (IsChunked(response.headers)) {
    const HttpParseResult chunked = DecodeChunkedBody(input, &pos, &response.body);
    if (chunked != HttpParseResult::kOk) {
      return chunked;
    }
    *out = std::move(response);
    *consumed = pos;
    return HttpParseResult::kOk;
  }
  const int64_t content_length = ContentLengthOf(response.headers);
  if (content_length == -2) {
    return HttpParseResult::kBad;
  }
  const size_t body_len = content_length < 0 ? 0 : static_cast<size_t>(content_length);
  if (input.size() - pos < body_len) {
    return HttpParseResult::kIncomplete;
  }
  response.body = std::string(input.substr(pos, body_len));
  *out = std::move(response);
  *consumed = pos + body_len;
  return HttpParseResult::kOk;
}

std::string HttpCodec::Serialize(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " " + request.version + "\r\n";
  bool has_length = false;
  for (const HttpHeader& h : request.headers) {
    if (HeaderNameEquals(h.name, "Content-Length")) {
      has_length = true;
      out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
      continue;
    }
    out += h.name + ": " + h.value + "\r\n";
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string HttpCodec::Serialize(const HttpResponse& response) {
  std::string out =
      response.version + " " + std::to_string(response.status) + " " + response.reason + "\r\n";
  bool has_length = false;
  for (const HttpHeader& h : response.headers) {
    if (HeaderNameEquals(h.name, "Content-Length")) {
      has_length = true;
      out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
      continue;
    }
    out += h.name + ": " + h.value + "\r\n";
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string HttpCodec::SerializeChunked(const HttpResponse& response, size_t chunk_size) {
  if (chunk_size == 0) {
    chunk_size = 1;
  }
  std::string out =
      response.version + " " + std::to_string(response.status) + " " + response.reason + "\r\n";
  for (const HttpHeader& h : response.headers) {
    if (HeaderNameEquals(h.name, "Content-Length") ||
        HeaderNameEquals(h.name, "Transfer-Encoding")) {
      continue;
    }
    out += h.name + ": " + h.value + "\r\n";
  }
  out += "Transfer-Encoding: chunked\r\n\r\n";
  char size_line[32];
  for (size_t offset = 0; offset < response.body.size(); offset += chunk_size) {
    const size_t len = std::min(chunk_size, response.body.size() - offset);
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", len);
    out += size_line;
    out += response.body.substr(offset, len);
    out += "\r\n";
  }
  out += "0\r\n\r\n";
  return out;
}

}  // namespace nadino
