// Pool-based buffer allocation with exclusive-ownership enforcement.
//
// Models NADINO's rte_mempool-style fixed-size pool (paper section 3.4):
// buffers are pre-carved from hugepages, Get/Put replace per-message malloc,
// and every ownership transition is validated against the exclusive-ownership
// lifecycle (section 3.5.1). Violations are counted and rejected rather than
// silently corrupting, so property tests can probe misuse.

#ifndef SRC_MEM_BUFFER_POOL_H_
#define SRC_MEM_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/mem/buffer.h"
#include "src/mem/hugepage_arena.h"

namespace nadino {

class BufferPool {
 public:
  struct Stats {
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t get_failures = 0;       // Pool exhausted.
    uint64_t ownership_violations = 0;  // Rejected Put/Transfer attempts.
    uint64_t transfers = 0;
  };

  // Carves `buffer_count` buffers of `buffer_size` bytes each from `arena`.
  BufferPool(PoolId id, TenantId tenant, size_t buffer_count, size_t buffer_size,
             HugepageArena* arena);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Allocates a free buffer and assigns it to `owner`. Returns nullptr when
  // the pool is exhausted (callers must back-pressure, never spin-copy).
  Buffer* Get(OwnerId owner);

  // Recycles a buffer. `releaser` must be the current owner; otherwise the
  // call is rejected (returns false) and counted as a violation.
  bool Put(Buffer* buffer, OwnerId releaser);

  // Hands exclusive ownership from `from` to `to`. Rejected unless `from`
  // matches the current owner.
  bool Transfer(Buffer* buffer, OwnerId from, OwnerId to);

  // Resolves a descriptor to its buffer; nullptr if the index is out of range
  // or the descriptor's pool id does not match.
  Buffer* Resolve(const BufferDescriptor& desc);

  BufferDescriptor MakeDescriptor(const Buffer& buffer, FunctionId dst) const;

  PoolId id() const { return id_; }
  TenantId tenant() const { return tenant_; }
  size_t capacity() const { return buffers_.size(); }
  size_t buffer_size() const { return buffer_size_; }
  size_t free_count() const { return free_list_.size(); }
  size_t in_use() const { return buffers_.size() - free_list_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  PoolId id_;
  TenantId tenant_;
  size_t buffer_size_;
  std::vector<Buffer> buffers_;
  std::vector<uint32_t> free_list_;  // LIFO for cache warmth, like rte_mempool caches.
  Stats stats_;
};

}  // namespace nadino

#endif  // SRC_MEM_BUFFER_POOL_H_
