// Token passing for intra-node buffer-ownership transfer.
//
// Paper section 3.5.1: NADINO emulates a single-producer single-consumer
// handoff with POSIX semaphores — the upstream function sem_posts the
// downstream function's semaphore to pass buffer ownership down the chain.
// TokenSemaphore is the simulated equivalent: Post() hands a token, Wait()
// blocks (queues a callback) until a token is available. Order is FIFO, so
// ownership flows to consumers in the order they asked.

#ifndef SRC_MEM_TOKEN_H_
#define SRC_MEM_TOKEN_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/core/env.h"
#include "src/sim/simulator.h"

namespace nadino {

class TokenSemaphore {
 public:
  using Callback = std::function<void()>;

  // `post_cost` models the sem_post syscall + futex wake, charged as delivery
  // latency between Post() and the waiter running.
  explicit TokenSemaphore(Env& env, SimDuration post_cost = 400)
      : env_(&env), post_cost_(post_cost) {}

  TokenSemaphore(const TokenSemaphore&) = delete;
  TokenSemaphore& operator=(const TokenSemaphore&) = delete;

  // Releases one token; wakes the oldest waiter if any.
  void Post();

  // Consumes a token, invoking `cb` when one is available (possibly after a
  // simulated wake-up delay).
  void Wait(Callback cb);

  int64_t tokens() const { return tokens_; }
  size_t waiters() const { return waiters_.size(); }
  uint64_t posts() const { return posts_; }

 private:
  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  SimDuration post_cost_;
  int64_t tokens_ = 0;
  uint64_t posts_ = 0;
  std::deque<Callback> waiters_;
};

}  // namespace nadino

#endif  // SRC_MEM_TOKEN_H_
