// Per-consumer buffer-pool cache, modelled on rte_mempool's per-lcore caches.
//
// The shared pool's free list is conceptually a contended structure; DPDK
// amortizes it by giving each consumer a small local cache refilled/flushed
// in bulk. Functions and engines that allocate at high rate (the ingress
// workers, the DNE replenisher) hold a PoolCache over the tenant pool:
// Get/Put hit the local stack and only touch the shared pool in batches.

#ifndef SRC_MEM_POOL_CACHE_H_
#define SRC_MEM_POOL_CACHE_H_

#include <vector>

#include "src/mem/buffer_pool.h"

namespace nadino {

class PoolCache {
 public:
  struct Stats {
    uint64_t hits = 0;        // Served from the local cache.
    uint64_t refills = 0;     // Bulk fetches from the shared pool.
    uint64_t flushes = 0;     // Bulk returns to the shared pool.
  };

  // Cached buffers are parked under `owner` while they sit in the cache;
  // Get() re-assigns them to the requested owner.
  PoolCache(BufferPool* pool, OwnerId owner, size_t cache_size = 32);
  ~PoolCache();

  PoolCache(const PoolCache&) = delete;
  PoolCache& operator=(const PoolCache&) = delete;

  // Like BufferPool::Get, but amortized: refills `cache_size / 2` buffers
  // from the shared pool when the cache is empty.
  Buffer* Get(OwnerId new_owner);

  // Like BufferPool::Put: the releaser must own the buffer. The buffer parks
  // in the cache; when full, half flushes back to the shared pool.
  bool Put(Buffer* buffer, OwnerId releaser);

  // Returns every cached buffer to the shared pool.
  void Flush();

  size_t cached() const { return cache_.size(); }
  const Stats& stats() const { return stats_; }
  BufferPool* pool() { return pool_; }

 private:
  BufferPool* pool_;
  OwnerId owner_;
  size_t cache_size_;
  std::vector<Buffer*> cache_;
  Stats stats_;
};

}  // namespace nadino

#endif  // SRC_MEM_POOL_CACHE_H_
