#include "src/mem/copy_engine.h"

#include <algorithm>
#include <cstring>

namespace nadino {

SimDuration CopyEngine::CostOf(uint64_t bytes, CopyLocality locality) const {
  const double gbps = locality == CopyLocality::kCacheHot ? params_.hot_gbps : params_.cold_gbps;
  const double bytes_per_ns = gbps / 8.0;
  return params_.per_copy_overhead +
         static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_ns + 0.5);
}

SimDuration CopyEngine::Copy(const Buffer& src, Buffer* dst, CopyLocality locality) {
  const auto n = static_cast<uint32_t>(
      std::min<size_t>(src.length, dst->data.size()));
  std::memcpy(dst->data.data(), src.data.data(), n);
  dst->length = n;
  ++copies_;
  bytes_copied_ += n;
  return CostOf(n, locality);
}

void CopyEngine::ResetStats() {
  copies_ = 0;
  bytes_copied_ = 0;
}

}  // namespace nadino
