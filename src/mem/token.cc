#include "src/mem/token.h"

#include <utility>

namespace nadino {

void TokenSemaphore::Post() {
  ++posts_;
  if (!waiters_.empty()) {
    Callback cb = std::move(waiters_.front());
    waiters_.pop_front();
    sim().Schedule(post_cost_, std::move(cb));
    return;
  }
  ++tokens_;
}

void TokenSemaphore::Wait(Callback cb) {
  if (tokens_ > 0) {
    --tokens_;
    // Token already available: no futex sleep, run this instant.
    sim().Schedule(0, std::move(cb));
    return;
  }
  waiters_.push_back(std::move(cb));
}

}  // namespace nadino
