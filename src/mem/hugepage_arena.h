// Hugepage-backed arena for the unified shared-memory pool.
//
// NADINO creates its buffers from 2 MB hugepages (paper section 3.4) to keep
// the RNIC's Memory Translation Table small. The model allocates real,
// 2 MB-aligned host memory in page-sized chunks and carves fixed-size buffers
// from them, tracking the page count so tests can assert the MTT footprint a
// given pool implies.

#ifndef SRC_MEM_HUGEPAGE_ARENA_H_
#define SRC_MEM_HUGEPAGE_ARENA_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace nadino {

inline constexpr size_t kHugepageSize = 2 * 1024 * 1024;

class HugepageArena {
 public:
  HugepageArena() = default;
  HugepageArena(const HugepageArena&) = delete;
  HugepageArena& operator=(const HugepageArena&) = delete;

  // Carves `size` bytes (rounded up to 64-byte alignment) out of the current
  // hugepage, allocating a new page when the remainder is too small. Carved
  // regions never straddle a page boundary, matching how rte_mempool lays out
  // objects in hugepage segments.
  std::span<std::byte> Carve(size_t size);

  size_t pages_allocated() const { return pages_.size(); }
  size_t bytes_carved() const { return bytes_carved_; }

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const { ::operator delete[](p, std::align_val_t{kHugepageSize}); }
  };
  using Page = std::unique_ptr<std::byte[], AlignedDelete>;

  void AddPage();

  std::vector<Page> pages_;
  size_t offset_in_page_ = kHugepageSize;  // Forces a page on first carve.
  size_t bytes_carved_ = 0;
};

}  // namespace nadino

#endif  // SRC_MEM_HUGEPAGE_ARENA_H_
