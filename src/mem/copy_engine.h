// Copy accounting: every software data copy on the data plane goes through
// CopyEngine so experiments can assert "zero-copy" literally (copy count == 0
// on NADINO paths) and charge the copying core for the memcpy time.
//
// The cache-locality distinction reproduces the paper's OWRC-Best vs
// OWRC-Worst variants (section 4.1.2): repeated echo measurements leave both
// buffers cache-hot (Best); flushing forces main-memory accesses (Worst).

#ifndef SRC_MEM_COPY_ENGINE_H_
#define SRC_MEM_COPY_ENGINE_H_

#include <cstdint>

#include "src/mem/buffer.h"
#include "src/sim/time.h"

namespace nadino {

enum class CopyLocality {
  kCacheHot,   // Source and destination resident in LLC.
  kCacheCold,  // Forced main-memory access (TLB/cache flushed).
};

class CopyEngine {
 public:
  struct Params {
    // Effective copy bandwidths. Calibrated so a 4 KB cache-hot copy plus
    // polling overhead reproduces OWRC-Best (15 us vs 11.6 us two-sided) and
    // the cold variant OWRC-Worst (16.7 us) from Fig. 12.
    double hot_gbps = 56.0;
    double cold_gbps = 30.0;
    SimDuration per_copy_overhead = 150;  // Call + loop setup, ns.
  };

  CopyEngine() = default;
  explicit CopyEngine(const Params& params) : params_(params) {}

  // Copies src's payload into dst (really moves the bytes), records the copy,
  // and returns the CPU time the copy costs at the given locality.
  SimDuration Copy(const Buffer& src, Buffer* dst, CopyLocality locality);

  // Copy cost without performing one (for sizing/analysis).
  SimDuration CostOf(uint64_t bytes, CopyLocality locality) const;

  uint64_t copies() const { return copies_; }
  uint64_t bytes_copied() const { return bytes_copied_; }
  void ResetStats();

 private:
  Params params_;
  uint64_t copies_ = 0;
  uint64_t bytes_copied_ = 0;
};

}  // namespace nadino

#endif  // SRC_MEM_COPY_ENGINE_H_
