#include "src/mem/hugepage_arena.h"

namespace nadino {

namespace {
constexpr size_t kCacheLine = 64;
constexpr size_t AlignUp(size_t n, size_t a) { return (n + a - 1) / a * a; }
}  // namespace

void HugepageArena::AddPage() {
  auto* raw = static_cast<std::byte*>(::operator new[](kHugepageSize,
                                                       std::align_val_t{kHugepageSize}));
  pages_.emplace_back(raw);
  offset_in_page_ = 0;
}

std::span<std::byte> HugepageArena::Carve(size_t size) {
  const size_t aligned = AlignUp(size == 0 ? 1 : size, kCacheLine);
  if (aligned > kHugepageSize) {
    // Oversized carve: give it dedicated page-multiple storage. Buffers larger
    // than a hugepage are not used by NADINO, but the arena stays safe.
    const size_t pages = AlignUp(aligned, kHugepageSize) / kHugepageSize;
    auto* raw = static_cast<std::byte*>(::operator new[](pages * kHugepageSize,
                                                         std::align_val_t{kHugepageSize}));
    for (size_t i = 0; i < pages; ++i) {
      pages_.emplace_back(i == 0 ? raw : nullptr);
    }
    offset_in_page_ = kHugepageSize;  // Do not carve further from these pages.
    bytes_carved_ += aligned;
    return {raw, aligned};
  }
  if (offset_in_page_ + aligned > kHugepageSize) {
    AddPage();
  }
  std::byte* p = pages_.back().get() + offset_in_page_;
  offset_in_page_ += aligned;
  bytes_carved_ += aligned;
  return {p, aligned};
}

}  // namespace nadino
