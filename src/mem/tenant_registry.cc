#include "src/mem/tenant_registry.h"

namespace nadino {

void TenantRegistry::BindMetrics(MetricsRegistry* registry, int64_t node) {
  metrics_ = registry;
  node_label_ = node;
  for (const auto& pool : pools_) {
    PublishPoolMetrics(*pool);
  }
}

void TenantRegistry::PublishPoolMetrics(const BufferPool& pool) {
  if (metrics_ == nullptr) {
    return;
  }
  MetricLabels labels;
  labels.tenant = static_cast<int64_t>(pool.tenant());
  labels.node = node_label_;
  const BufferPool* p = &pool;
  metrics_->RegisterCallback("pool_gets", labels, [p] { return p->stats().gets; });
  metrics_->RegisterCallback("pool_puts", labels, [p] { return p->stats().puts; });
  metrics_->RegisterCallback("pool_get_failures", labels,
                             [p] { return p->stats().get_failures; });
  metrics_->RegisterCallback("pool_ownership_violations", labels,
                             [p] { return p->stats().ownership_violations; });
  metrics_->RegisterCallback("pool_transfers", labels, [p] { return p->stats().transfers; });
  metrics_->RegisterCallback("pool_free_buffers", labels,
                             [p] { return static_cast<uint64_t>(p->free_count()); });
}

BufferPool* TenantRegistry::CreatePool(TenantId tenant, const std::string& file_prefix,
                                       const PoolConfig& config) {
  if (prefix_to_tenant_.count(file_prefix) > 0 || tenant_to_pool_.count(tenant) > 0) {
    return nullptr;
  }
  const auto pool_id = static_cast<PoolId>(pools_.size());
  pools_.push_back(std::make_unique<BufferPool>(pool_id, tenant, config.buffer_count,
                                                config.buffer_size, &arena_));
  prefix_to_tenant_[file_prefix] = tenant;
  tenant_to_pool_[tenant] = pool_id;
  PublishPoolMetrics(*pools_.back());
  return pools_.back().get();
}

bool TenantRegistry::RegisterFunction(FunctionId function, TenantId tenant) {
  return function_to_tenant_.emplace(function, tenant).second;
}

BufferPool* TenantRegistry::Attach(FunctionId function, const std::string& file_prefix) {
  const auto prefix_it = prefix_to_tenant_.find(file_prefix);
  const auto fn_it = function_to_tenant_.find(function);
  if (prefix_it == prefix_to_tenant_.end() || fn_it == function_to_tenant_.end() ||
      prefix_it->second != fn_it->second) {
    ++denied_attaches_;
    return nullptr;
  }
  return PoolOfTenant(prefix_it->second);
}

BufferPool* TenantRegistry::PoolOfTenant(TenantId tenant) {
  const auto it = tenant_to_pool_.find(tenant);
  return it == tenant_to_pool_.end() ? nullptr : pools_[it->second].get();
}

BufferPool* TenantRegistry::PoolById(PoolId pool) {
  return pool < pools_.size() ? pools_[pool].get() : nullptr;
}

TenantId TenantRegistry::TenantOfFunction(FunctionId function) const {
  const auto it = function_to_tenant_.find(function);
  return it == function_to_tenant_.end() ? kInvalidTenant : it->second;
}

std::vector<PoolId> TenantRegistry::AllPools() const {
  std::vector<PoolId> ids;
  ids.reserve(pools_.size());
  for (const auto& p : pools_) {
    ids.push_back(p->id());
  }
  return ids;
}

}  // namespace nadino
