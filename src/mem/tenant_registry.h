// Per-tenant memory isolation via file-prefix binding.
//
// Models NADINO's use of DPDK's file-prefix feature (paper section 3.4.1):
// a per-tenant shared-memory agent (the DPDK primary process) creates the
// pool and publishes a memory-mapped configuration under a distinct file
// prefix; functions (DPDK secondary processes) attach only through the prefix
// their tenant owns. Attaching with the wrong prefix, or from a function of a
// different tenant, is rejected — this is the isolation boundary the paper's
// threat model relies on for shared-memory processing.

#ifndef SRC_MEM_TENANT_REGISTRY_H_
#define SRC_MEM_TENANT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/mem/buffer_pool.h"
#include "src/mem/hugepage_arena.h"
#include "src/sim/metrics.h"

namespace nadino {

class TenantRegistry {
 public:
  struct PoolConfig {
    size_t buffer_count = 1024;
    size_t buffer_size = 8192;
  };

  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Publishes per-pool callback metrics (labels: {tenant, node}) into
  // `registry`. Pools created before or after the bind are both covered;
  // pools keep their local counters, the registry samples them at snapshot
  // time. Pass MetricLabels::kUnset as `node` when the registry is not
  // node-scoped (standalone tests).
  void BindMetrics(MetricsRegistry* registry, int64_t node);

  // The shared-memory agent path: creates the tenant's unified pool and binds
  // it to `file_prefix`. Returns nullptr if the prefix or tenant is already
  // bound (each tenant has exactly one pool; each prefix one tenant).
  BufferPool* CreatePool(TenantId tenant, const std::string& file_prefix,
                         const PoolConfig& config);

  // Registers which tenant a function belongs to. A function belongs to
  // exactly one tenant (a tenant == a function chain in NADINO).
  bool RegisterFunction(FunctionId function, TenantId tenant);

  // The function attach path (DPDK secondary process loading the mapped
  // config). Succeeds only when `function` is registered to the tenant that
  // owns `file_prefix`. Failed attaches are counted.
  BufferPool* Attach(FunctionId function, const std::string& file_prefix);

  // Direct lookup for trusted infrastructure (the DNE), which may see all
  // tenant pools because it proxies the RNIC for everyone.
  BufferPool* PoolOfTenant(TenantId tenant);
  BufferPool* PoolById(PoolId pool);

  TenantId TenantOfFunction(FunctionId function) const;

  uint64_t denied_attaches() const { return denied_attaches_; }
  size_t pool_count() const { return pools_.size(); }
  const HugepageArena& arena() const { return arena_; }

  // All pool ids, in creation order (stable iteration for determinism).
  std::vector<PoolId> AllPools() const;

 private:
  void PublishPoolMetrics(const BufferPool& pool);

  MetricsRegistry* metrics_ = nullptr;  // Unowned; null until BindMetrics.
  int64_t node_label_ = MetricLabels::kUnset;
  HugepageArena arena_;
  std::vector<std::unique_ptr<BufferPool>> pools_;
  std::map<std::string, TenantId> prefix_to_tenant_;
  std::map<TenantId, PoolId> tenant_to_pool_;
  std::map<FunctionId, TenantId> function_to_tenant_;
  uint64_t denied_attaches_ = 0;
};

}  // namespace nadino

#endif  // SRC_MEM_TENANT_REGISTRY_H_
