// Shared-memory buffers and the 16-byte buffer descriptors exchanged over
// intra-node IPC (SK_MSG), the DOCA-Comch-like channel, and the DNE.

#ifndef SRC_MEM_BUFFER_H_
#define SRC_MEM_BUFFER_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "src/core/types.h"

namespace nadino {

// A fixed-capacity buffer carved from a tenant's unified memory pool. The
// payload bytes are real: experiments checksum them end-to-end to prove the
// zero-copy paths do not corrupt or duplicate data.
struct Buffer {
  PoolId pool = 0;
  uint32_t index = 0;
  TenantId tenant = 0;
  uint32_t length = 0;      // Valid payload bytes, <= capacity.
  uint32_t generation = 0;  // Bumped on every recycle; detects stale descriptors.
  OwnerId owner = OwnerId::None();
  std::span<std::byte> data;  // Capacity-sized view into the arena.

  size_t capacity() const { return data.size(); }

  std::span<std::byte> payload() { return data.subspan(0, length); }
  std::span<const std::byte> payload() const { return data.subspan(0, length); }

  // Fills the payload with a deterministic pattern derived from `seed`.
  void FillPattern(uint64_t seed, uint32_t payload_length);
};

// The compact descriptor that travels instead of the data. 16 bytes, the size
// the paper quotes for Comch descriptor exchanges (section 3.5.4).
struct BufferDescriptor {
  PoolId pool = 0;
  uint32_t buffer_index = 0;
  uint32_t length = 0;
  FunctionId dst_function = kInvalidFunction;

  friend bool operator==(const BufferDescriptor&, const BufferDescriptor&) = default;

  static constexpr size_t kWireSize = 16;

  std::array<std::byte, kWireSize> Encode() const;
  static BufferDescriptor Decode(std::span<const std::byte, kWireSize> wire);
};

// FNV-1a checksum used by integrity assertions along the data plane.
uint64_t Checksum(std::span<const std::byte> bytes);

}  // namespace nadino

#endif  // SRC_MEM_BUFFER_H_
