#include "src/mem/buffer_pool.h"

namespace nadino {

BufferPool::BufferPool(PoolId id, TenantId tenant, size_t buffer_count, size_t buffer_size,
                       HugepageArena* arena)
    : id_(id), tenant_(tenant), buffer_size_(buffer_size) {
  buffers_.resize(buffer_count);
  free_list_.reserve(buffer_count);
  for (size_t i = 0; i < buffer_count; ++i) {
    Buffer& b = buffers_[i];
    b.pool = id_;
    b.index = static_cast<uint32_t>(i);
    b.tenant = tenant_;
    b.data = arena->Carve(buffer_size);
    free_list_.push_back(static_cast<uint32_t>(i));
  }
}

Buffer* BufferPool::Get(OwnerId owner) {
  if (free_list_.empty()) {
    ++stats_.get_failures;
    return nullptr;
  }
  const uint32_t index = free_list_.back();
  free_list_.pop_back();
  Buffer& b = buffers_[index];
  b.owner = owner;
  b.length = 0;
  ++stats_.gets;
  return &b;
}

bool BufferPool::Put(Buffer* buffer, OwnerId releaser) {
  if (buffer == nullptr || buffer->pool != id_ || buffer->owner != releaser ||
      releaser == OwnerId::None()) {
    ++stats_.ownership_violations;
    return false;
  }
  buffer->owner = OwnerId::None();
  buffer->length = 0;
  ++buffer->generation;
  free_list_.push_back(buffer->index);
  ++stats_.puts;
  return true;
}

bool BufferPool::Transfer(Buffer* buffer, OwnerId from, OwnerId to) {
  if (buffer == nullptr || buffer->pool != id_ || buffer->owner != from ||
      from == OwnerId::None() || to == OwnerId::None()) {
    ++stats_.ownership_violations;
    return false;
  }
  buffer->owner = to;
  ++stats_.transfers;
  return true;
}

Buffer* BufferPool::Resolve(const BufferDescriptor& desc) {
  if (desc.pool != id_ || desc.buffer_index >= buffers_.size()) {
    return nullptr;
  }
  return &buffers_[desc.buffer_index];
}

BufferDescriptor BufferPool::MakeDescriptor(const Buffer& buffer, FunctionId dst) const {
  return BufferDescriptor{buffer.pool, buffer.index, buffer.length, dst};
}

}  // namespace nadino
