#include "src/mem/buffer.h"

#include <algorithm>

namespace nadino {

void Buffer::FillPattern(uint64_t seed, uint32_t payload_length) {
  length = static_cast<uint32_t>(std::min<size_t>(payload_length, data.size()));
  uint64_t x = seed ^ 0x9E3779B97F4A7C15ULL;
  for (uint32_t i = 0; i < length; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    data[i] = static_cast<std::byte>(x >> 56);
  }
}

std::array<std::byte, BufferDescriptor::kWireSize> BufferDescriptor::Encode() const {
  std::array<std::byte, kWireSize> wire{};
  std::memcpy(wire.data() + 0, &pool, 4);
  std::memcpy(wire.data() + 4, &buffer_index, 4);
  std::memcpy(wire.data() + 8, &length, 4);
  std::memcpy(wire.data() + 12, &dst_function, 4);
  return wire;
}

BufferDescriptor BufferDescriptor::Decode(std::span<const std::byte, kWireSize> wire) {
  BufferDescriptor d;
  std::memcpy(&d.pool, wire.data() + 0, 4);
  std::memcpy(&d.buffer_index, wire.data() + 4, 4);
  std::memcpy(&d.length, wire.data() + 8, 4);
  std::memcpy(&d.dst_function, wire.data() + 12, 4);
  return d;
}

uint64_t Checksum(std::span<const std::byte> bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace nadino
