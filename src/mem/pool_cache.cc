#include "src/mem/pool_cache.h"

namespace nadino {

PoolCache::PoolCache(BufferPool* pool, OwnerId owner, size_t cache_size)
    : pool_(pool), owner_(owner), cache_size_(cache_size == 0 ? 1 : cache_size) {
  cache_.reserve(cache_size_);
}

PoolCache::~PoolCache() { Flush(); }

Buffer* PoolCache::Get(OwnerId new_owner) {
  if (cache_.empty()) {
    // Bulk refill: half a cache's worth, so steady-state traffic ping-pongs
    // inside the cache instead of oscillating against the shared pool.
    const size_t want = cache_size_ / 2 + 1;
    for (size_t i = 0; i < want; ++i) {
      Buffer* buffer = pool_->Get(owner_);
      if (buffer == nullptr) {
        break;
      }
      cache_.push_back(buffer);
    }
    if (cache_.empty()) {
      return nullptr;  // Shared pool exhausted too.
    }
    ++stats_.refills;
  } else {
    ++stats_.hits;
  }
  Buffer* buffer = cache_.back();
  cache_.pop_back();
  if (!pool_->Transfer(buffer, owner_, new_owner)) {
    // Should not happen (cache owns its buffers); fail closed.
    cache_.push_back(buffer);
    return nullptr;
  }
  return buffer;
}

bool PoolCache::Put(Buffer* buffer, OwnerId releaser) {
  if (buffer == nullptr || !pool_->Transfer(buffer, releaser, owner_)) {
    return false;
  }
  buffer->length = 0;
  cache_.push_back(buffer);
  if (cache_.size() >= cache_size_) {
    // Flush half back to the shared pool.
    const size_t keep = cache_size_ / 2;
    while (cache_.size() > keep) {
      pool_->Put(cache_.back(), owner_);
      cache_.pop_back();
    }
    ++stats_.flushes;
  }
  return true;
}

void PoolCache::Flush() {
  while (!cache_.empty()) {
    pool_->Put(cache_.back(), owner_);
    cache_.pop_back();
  }
}

}  // namespace nadino
