// The per-node RDMA control plane: one ConnectionService owns every RC
// connection a node holds, on behalf of all of its data-plane consumers (the
// DNE/CNE network engine, gateway workers, baseline data planes).
//
// Paper section 3.3 bounds *active* QPs with shadow-QP pooling because RC
// setup costs tens of milliseconds; Swift ("Rethinking RDMA Control Plane for
// Elastic Computing") is the blueprint for the rest of the lifecycle: QP
// create/modify/destroy are first-class costed verbs, establishment can be
// lazy (on first use, batched and pipelined), QPs are shared across functions
// of one tenant to the same peer, and a departing tenant's QPs are destroyed
// so their RNIC context (ICM) is reclaimed.
//
// Every pooled connection moves through an explicit lifecycle:
//
//     absent -> establishing -> active <-> shadow -> destroyed
//
//   * absent       — no connection for (peer, tenant, stream);
//   * establishing — the RC handshake (and its create/modify verbs) is in
//                    flight; acquirers queue behind it;
//   * active       — WRs may be posted; resident in the RNIC QP cache;
//   * shadow       — pooled but deactivated (RoGUE [55]): consumes no RNIC
//                    resources, reactivation is local and cheap;
//   * destroyed    — torn down (tenant departure); the QP number is retired.
//
// Setup policies (ConnectPolicy):
//   * kEager      — legacy behavior: Prewarm() at wiring time, misses are
//                   terminal. Runs under this policy are byte-identical to
//                   the pre-ConnectionService code (bench goldens).
//   * kLazy       — no prewarm; the first Acquire miss triggers an on-demand
//                   establishment (EstablishThen) and the caller's
//                   continuation runs when the handshake lands. Pools are
//                   per-function when Config::per_function_streams is set.
//   * kLazyShared — kLazy, plus: all streams of one tenant to one peer
//                   collapse into a single shared pool, and an establishment
//                   registers the remote half of each connected pair with the
//                   peer's service (LinkPeer), so the reverse direction is
//                   warm without a second handshake.

#ifndef SRC_RDMA_CONTROL_PLANE_H_
#define SRC_RDMA_CONTROL_PLANE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/rdma/rdma_engine.h"
#include "src/sim/simulator.h"

namespace nadino {

enum class ConnectPolicy : uint8_t { kEager, kLazy, kLazyShared };

enum class QpLifecycle : uint8_t { kAbsent, kEstablishing, kActive, kShadow, kDestroyed };

// Why an Acquire returned no QP. kNone means the acquire hit.
enum class AcquireMiss : uint8_t {
  kNone,
  kNoPool,        // Nothing pooled for (peer, tenant, stream).
  kEstablishing,  // Setup in flight; EstablishThen() queues behind it.
  kAllErrored,    // Pool exists but every QP is errored or beyond the bound.
};

class ConnectionService {
 public:
  struct Config {
    ConnectPolicy policy = ConnectPolicy::kEager;
    int max_active_per_peer = 8;
    uint32_t congestion_threshold = 16;
    // QPs established per on-demand setup (lazy policies): one handshake
    // round trip covers the batch; per-QP verbs serialize on the CPU.
    int establish_batch = 1;
    // Key pools by destination function (TxStream) instead of one shared
    // pool per (peer, tenant). kLazyShared ignores this (streams collapse).
    bool per_function_streams = false;
    // Export verb/miss/QP-cache instrumentation through the MetricsRegistry.
    // Off by default: the extra metric keys would change the byte-identical
    // bench goldens recorded before this subsystem existed.
    bool instrument = false;
  };

  struct Stats {
    uint64_t connects = 0;
    uint64_t activations = 0;
    uint64_t deactivations = 0;
    uint64_t acquires = 0;
    uint64_t repairs = 0;
    // Lifecycle extensions (struct-local; registry export is opt-in).
    uint64_t misses = 0;
    uint64_t establishes = 0;  // On-demand setups kicked off (lazy policies).
    uint64_t destroys = 0;     // QPs destroyed by tenant departure.
    uint64_t create_verbs = 0;
    uint64_t modify_verbs = 0;
    uint64_t destroy_verbs = 0;
  };

  // The result of Acquire: the selected QP plus the control-path time the
  // caller must charge to its own core before posting. qp == 0 means a miss;
  // `miss` says why (satisfying callers that previously special-cased 0).
  struct Acquired {
    QpNum qp = 0;
    SimDuration control_cost = 0;
    AcquireMiss miss = AcquireMiss::kNone;
  };

  using ReadyFn = std::function<void(const Acquired&)>;

  // Default-config construction is a separate overload (not `config = {}`):
  // GCC parses a nested class's member initializers only once the enclosing
  // class is complete, which rejects the braced default argument here.
  ConnectionService(Env& env, RdmaEngine* local);
  ConnectionService(Env& env, RdmaEngine* local, const Config& config);
  // Legacy ConnectionManager-shaped constructor (tests, direct users).
  ConnectionService(Env& env, RdmaEngine* local, int max_active_per_peer,
                    uint32_t congestion_threshold = 16);

  ConnectionService(const ConnectionService&) = delete;
  ConnectionService& operator=(const ConnectionService&) = delete;

  // Applies mutable config knobs after construction (policy, batching,
  // stream keying, instrumentation). Safe at any time; existing pools keep
  // their current keys.
  void Reconfigure(const Config& config);
  const Config& config() const { return config_; }

  // Establishes `count` RC connections to `peer` for `tenant` ahead of time
  // (eager policy). Setup time elapses on the virtual clock off the data
  // path; connections are usable immediately on return — the legacy eager
  // model, preserved byte-for-byte. Returns the modeled setup latency
  // (handshake + serialized per-QP verbs) so callers that gate readiness on
  // control-plane completion (tenant churn) can charge it.
  SimDuration Prewarm(RdmaEngine* peer, TenantId tenant, int count, uint64_t stream = 0);

  // Picks the least-congested *active* connection to `peer` for `tenant`.
  // If every active connection's outstanding count exceeds the congestion
  // threshold and a shadow QP is pooled, it is activated (cost surfaced via
  // Acquired::control_cost). A miss returns qp == 0 with a typed reason,
  // counts connection_acquire_miss{tenant,node} when instrumented, and
  // traces under TraceCategory::kRdma.
  Acquired Acquire(NodeId peer, TenantId tenant, uint64_t stream = 0);

  // True when a miss for (peer, tenant) is recoverable by on-demand
  // establishment: a lazy policy is active and the peer's RNIC is reachable.
  bool CanEstablish(NodeId peer, TenantId tenant) const;

  // Lazy path: establishes a batch of connections to (peer, tenant, stream)
  // and invokes `ready` with an Acquire result when the handshake lands.
  // Concurrent callers for the same key queue behind one handshake. If the
  // key is already servable, `ready` runs synchronously.
  void EstablishThen(NodeId peer, TenantId tenant, uint64_t stream, ReadyFn ready);

  // Marks a connection idle; once the active count exceeds the configured
  // bound the surplus idle connections are deactivated (evicted from the QP
  // cache — the active -> shadow transition).
  void NoteIdle(QpNum qp);

  // Repairs a connection whose QP entered the error state: re-runs the RC
  // handshake and returns the QP to service. Errored connections are
  // excluded by Acquire() meanwhile. Re-entrant calls for a QP whose repair
  // is already in flight coalesce. The peer engine is resolved through the
  // RDMA network when not supplied.
  void Repair(QpNum qp, RdmaEngine* peer = nullptr);

  // Data-path error report (RC semantics: transport retry exhaustion kills
  // the connection, not just the WR). Under a lazy policy the connection is
  // marked errored — excluded from Acquire — and a Repair is kicked off.
  // No-op under kEager, which keeps the pre-refactor "counted not hung"
  // behavior (and the bench goldens) intact.
  void NoteTransportError(QpNum qp);

  // Tenant departure: destroys every pooled QP of `tenant` (all peers, all
  // streams), evicts their RNIC cache context, retires the QP numbers, and
  // fails any establishment waiters. Destroy verbs are costed on the virtual
  // clock; returns the modeled reclaim latency.
  SimDuration DestroyTenant(TenantId tenant);

  // Membership wiring: a peer was declared dead — deactivate (shadow) every
  // idle active QP toward it so its RNIC cache context is reclaimed while
  // the pool survives for post-heal reactivation.
  void QuiescePeer(NodeId peer);

  // Symmetric pooling (kLazyShared): lets this service register the remote
  // half of connected pairs with `peer_node`'s service.
  void LinkPeer(NodeId peer_node, ConnectionService* peer_service);

  // Adopts an already-connected QP created by a linked peer's establishment
  // (the remote half of a CreateConnectedPair), pooling it toward
  // `initiator` so the reverse direction is warm without a handshake.
  void AdoptRemote(QpNum qp, NodeId initiator, TenantId tenant);

  // The stream key the TX path should use for a message to `dst_function`
  // under the configured policy (0 unless per-function keying is active).
  uint64_t TxStream(FunctionId dst_function) const {
    return (config_.per_function_streams && config_.policy != ConnectPolicy::kLazyShared)
               ? static_cast<uint64_t>(dst_function)
               : 0;
  }

  // Lifecycle of a QP this service has seen (kAbsent for foreign QPs).
  QpLifecycle LifecycleOf(QpNum qp) const;
  // Lifecycle of a pool key: kEstablishing while setup is in flight,
  // kActive/kShadow from the pooled entries, else kAbsent.
  QpLifecycle StateOf(NodeId peer, TenantId tenant, uint64_t stream = 0) const;

  int ActiveCount(NodeId peer, TenantId tenant, uint64_t stream = 0) const;
  int PooledCount(NodeId peer, TenantId tenant, uint64_t stream = 0) const;
  // Registry-backed legacy counters merged with the struct-local lifecycle
  // extensions; see Stats.
  Stats stats() const;

 private:
  struct Pooled {
    QpNum qp = 0;
    bool active = false;
    // Service-level error mark (NoteTransportError): excluded from Acquire
    // until the in-flight Repair clears it.
    bool errored = false;
  };

  // (peer node, tenant, stream). Stream 0 is the shared pool; per-function
  // keying and gateway workers use nonzero streams. kLazyShared collapses
  // every stream to 0 (EffectiveStream).
  using PoolKey = std::tuple<NodeId, TenantId, uint64_t>;

  struct Establishment {
    std::vector<ReadyFn> waiters;
  };

  uint64_t EffectiveStream(uint64_t stream) const {
    return config_.policy == ConnectPolicy::kLazyShared ? 0 : stream;
  }

  // Pools `qp` into `key`, honoring the active bound (shadow + cache evict
  // beyond it). Returns true when the entry went in active.
  bool PoolQp(const PoolKey& key, QpNum qp);
  void FinishEstablish(const PoolKey& key, RdmaEngine* peer_engine);
  void CountMiss(NodeId peer, TenantId tenant, AcquireMiss reason);
  void ExportInstrumentation();

  // Modeled setup latency for one establishment of `count` QPs: one
  // pipelined handshake round trip plus the serialized per-QP
  // create/modify(INIT->RTR->RTS) verb chain.
  SimDuration SetupLatency(int count) const;

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  RdmaEngine* local_;
  Config config_;
  std::map<PoolKey, std::vector<Pooled>> pools_;
  std::map<QpNum, PoolKey> qp_index_;
  std::map<PoolKey, Establishment> establishing_;
  std::map<NodeId, ConnectionService*> peer_services_;
  std::set<QpNum> destroyed_qps_;
  std::set<QpNum> repairing_;
  Stats local_stats_;  // Lifecycle extensions (registry export is opt-in).
  // Registry-backed counters (labels: node of the local engine) — the
  // pre-refactor ConnectionManager names, resolved eagerly so runs keep
  // byte-identical snapshots.
  CounterHandle m_connects_;
  CounterHandle m_activations_;
  CounterHandle m_deactivations_;
  CounterHandle m_acquires_;
  CounterHandle m_repairs_;
  // Instrumentation (Config::instrument): the lifecycle extensions export as
  // registry callbacks sampling local_stats_ (one source of truth, no handle
  // drift), plus the per-tenant connection_acquire_miss{tenant,node} map.
  bool instrumented_ = false;
  std::unordered_map<TenantId, CounterHandle> miss_handles_;
};

}  // namespace nadino

#endif  // SRC_RDMA_CONTROL_PLANE_H_
