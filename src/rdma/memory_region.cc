#include "src/rdma/memory_region.h"

namespace nadino {

void MrTable::Register(BufferPool* pool, uint8_t access) {
  regions_[pool->id()] = Region{pool, access};
}

void MrTable::Deregister(PoolId pool) { regions_.erase(pool); }

BufferPool* MrTable::CheckAccess(PoolId pool, uint8_t required_access) {
  const auto it = regions_.find(pool);
  if (it == regions_.end() || (it->second.access & required_access) != required_access) {
    ++access_violations_;
    return nullptr;
  }
  return it->second.pool;
}

}  // namespace nadino
