#include "src/rdma/wr_program.h"

#include <utility>

#include "src/dne/network_engine.h"
#include "src/rdma/control_plane.h"

namespace nadino {

WrProgramEngine::WrProgramEngine(Env& env, Node* node, NetworkEngine* engine,
                                 RoutingTable* routing)
    : env_(&env), node_(node), engine_(engine), routing_(routing) {
  const MetricLabels labels = MetricLabels::Node(node_->id());
  m_installed_ = env_->metrics().ResolveCounter("wrprog_installs", labels);
  m_offloaded_ = env_->metrics().ResolveCounter("wrprog_offloaded", labels);
  m_responses_ = env_->metrics().ResolveCounter("wrprog_responses", labels);
  m_fallbacks_ = env_->metrics().ResolveCounter("wrprog_fallbacks", labels);
  m_send_errors_ = env_->metrics().ResolveCounter("wrprog_send_errors", labels);
  node_->rnic().cq().SetSteering([this](const Completion& cqe) { return Steer(cqe); });
}

WrProgramEngine::~WrProgramEngine() {
  node_->rnic().cq().SetSteering(nullptr);
  for (auto& [key, in] : installed_) {
    (void)key;
    if (in.qp != 0) {
      node_->rnic().qp_cache().Unpin(in.qp);
    }
  }
}

NodeId WrProgramEngine::node() const { return node_->id(); }

WrProgramEngine::Stats WrProgramEngine::stats() const {
  Stats out;
  out.installed = installed_.size();
  out.offloaded_hops = m_offloaded_.value();
  out.responses = m_responses_.value();
  out.fallbacks = m_fallbacks_.value();
  out.send_errors = m_send_errors_.value();
  return out;
}

WrProgramEngine::Installed* WrProgramEngine::Find(ChainId chain, FunctionId hop) {
  const auto it = installed_.find(Key(chain, hop));
  return it == installed_.end() ? nullptr : &it->second;
}

const WrProgram* WrProgramEngine::ProgramFor(ChainId chain, FunctionId hop) const {
  const auto it = installed_.find(Key(chain, hop));
  return it == installed_.end() ? nullptr : &it->second.program;
}

bool WrProgramEngine::Install(const HopSpec& spec, SimDuration* install_latency) {
  Uninstall(spec.chain, spec.hop);  // Re-install replaces (and unpins) cleanly.

  const bool final_hop = spec.next_fn == kInvalidFunction;
  QpNum qp = 0;
  SimDuration control_cost = 0;
  if (!final_hop) {
    // The forward edge's QP is acquired at install time: a WR program's SEND
    // targets a *wired* QP, so a segment whose connection cannot be produced
    // now is simply ineligible for offload (the compiler keeps it in
    // software). Final hops resolve their egress at run time instead — the
    // requester can be any client function on any node.
    const ConnectionService::Acquired acquired =
        node_->connections().Acquire(spec.next_node, spec.tenant);
    if (acquired.qp == 0) {
      return false;
    }
    qp = acquired.qp;
    control_cost = acquired.control_cost;
    node_->rnic().qp_cache().Pin(qp);
  }

  Installed in;
  in.spec = spec;
  in.qp = qp;
  in.program.id = next_program_id_++;
  in.program.chain = spec.chain;
  in.program.tenant = spec.tenant;
  in.program.hop = spec.hop;
  // Step 0: the conditional WAIT — armed on the shared RQ, gated on the
  // arrived header's destination-function field matching this hop.
  WrProgramStep wait;
  wait.wr.opcode = RdmaOpcode::kRecv;
  wait.wr.signaled = false;
  wait.edge = WrEdge::kConditional;
  wait.match = spec.hop;
  in.program.steps.push_back(wait);
  // Step 1: the lowered payload transform (header rewrite + checksum), dwelled
  // for the hop's modeled compute.
  WrProgramStep transform;
  transform.wr.opcode = RdmaOpcode::kWrite;
  transform.wr.signaled = false;
  transform.edge = WrEdge::kTriggered;
  transform.dwell = spec.compute;
  in.program.steps.push_back(transform);
  // Step 2: the forward/response SEND. Unsignaled: the DPU worker must never
  // wake for an offloaded hop (OnCompletion charges core time per SEND CQE).
  WrProgramStep send;
  send.wr.opcode = RdmaOpcode::kSend;
  send.wr.signaled = false;
  send.wr.imm = final_hop ? 0 : spec.next_fn;
  send.edge = WrEdge::kTriggered;
  in.program.steps.push_back(send);

  installed_[Key(spec.chain, spec.hop)] = std::move(in);
  m_installed_.Increment();
  if (install_latency != nullptr) {
    // WQE writes + doorbell per step, plus any control-path cost of wiring
    // the egress QP.
    *install_latency =
        static_cast<SimDuration>(3) * env_->cost().wrprog_install_per_wr + control_cost;
  }
  return true;
}

void WrProgramEngine::Uninstall(ChainId chain, FunctionId hop) {
  const auto it = installed_.find(Key(chain, hop));
  if (it == installed_.end()) {
    return;
  }
  if (it->second.qp != 0) {
    node_->rnic().qp_cache().Unpin(it->second.qp);
  }
  installed_.erase(it);
}

bool WrProgramEngine::Admit(const Installed& in, const MessageHeader& header, NodeId* next_node,
                            QpNum* qp, SimDuration* extra) {
  const FaultScope scope{in.spec.tenant, node_->id()};
  // The recv completion waking the program: a stuck trigger never fires, so
  // the message stays on the software path (counted, never hung).
  const FaultDecision trigger = env_->faults().Intercept(FaultSite::kWrProgTrigger, scope);
  if (trigger.action == FaultAction::kDrop) {
    m_fallbacks_.Increment();
    return false;
  }
  *extra += trigger.delay;
  // The conditional edge matching the header: a misfired branch aborts the
  // program the same way.
  const FaultDecision cond = env_->faults().Intercept(FaultSite::kWrProgCond, scope);
  if (cond.action == FaultAction::kDrop) {
    m_fallbacks_.Increment();
    return false;
  }
  *extra += cond.delay;

  if (in.spec.next_fn == kInvalidFunction) {
    // Final hop: the response target is the incoming src, resolved now. A
    // requester on THIS node cannot be answered over the wire (the reply is
    // an IPC delivery) — decline so the software hop replies normally.
    const NodeId target = routing_ == nullptr ? kInvalidNode : routing_->NodeOf(header.src);
    if (target == kInvalidNode || target == node_->id()) {
      m_fallbacks_.Increment();
      return false;
    }
    const ConnectionService::Acquired acquired =
        node_->connections().Acquire(target, in.spec.tenant);
    if (acquired.qp == 0) {
      m_fallbacks_.Increment();
      return false;
    }
    *next_node = target;
    *qp = acquired.qp;
    *extra += acquired.control_cost;
    return true;
  }

  // Forward hop: the compile-time next node must still be a live placement of
  // the next function (a migration or node death invalidates the program),
  // and the pinned QP must still be usable.
  if (routing_ == nullptr || !routing_->IsLivePlacement(in.spec.next_fn, in.spec.next_node) ||
      in.qp == 0 || node_->rnic().InError(in.qp)) {
    m_fallbacks_.Increment();
    return false;
  }
  *next_node = in.spec.next_node;
  *qp = in.qp;
  return true;
}

bool WrProgramEngine::Steer(const Completion& cqe) {
  if (cqe.opcode != RdmaOpcode::kRecv || cqe.status != WrStatus::kSuccess ||
      cqe.buffer == nullptr) {
    return false;
  }
  const std::optional<MessageHeader> header = ReadMessage(*cqe.buffer);
  if (!header.has_value() || header->is_response()) {
    return false;
  }
  Installed* in = Find(header->chain, header->dst);
  if (in == nullptr || in->spec.tenant != cqe.tenant) {
    return false;
  }
  NodeId next_node = kInvalidNode;
  QpNum qp = 0;
  SimDuration extra = 0;
  if (!Admit(*in, *header, &next_node, &qp, &extra)) {
    return false;
  }
  // Commit: consume the RBR entry so the core thread's replenisher still
  // posts a matching receive buffer for this CQE, exactly as the software RX
  // stage would. The buffer stays RNIC-owned end to end — zero copies, zero
  // ownership hops.
  Buffer* buffer = engine_->rbr().Consume(cqe.wr_id, cqe.tenant);
  if (buffer == nullptr) {
    m_fallbacks_.Increment();
    return false;
  }
  BufferPool* pool = node_->tenants().PoolOfTenant(cqe.tenant);
  if (pool == nullptr) {
    m_fallbacks_.Increment();
    return false;
  }
  RunProgram(*in, buffer, pool, *header, qp, extra);
  return true;
}

bool WrProgramEngine::Launch(FunctionRuntime& fn, Buffer* buffer, const MessageHeader& header) {
  if (header.is_response()) {
    return false;
  }
  Installed* in = Find(header.chain, header.dst);
  if (in == nullptr || in->spec.tenant != fn.tenant()) {
    return false;
  }
  NodeId next_node = kInvalidNode;
  QpNum qp = 0;
  SimDuration extra = 0;
  if (!Admit(*in, header, &next_node, &qp, &extra)) {
    return false;
  }
  BufferPool* pool = fn.pool();
  if (pool == nullptr ||
      !pool->Transfer(buffer, fn.owner_id(), OwnerId::Rnic(node_->id()))) {
    m_fallbacks_.Increment();
    return false;
  }
  RunProgram(*in, buffer, pool, header, qp, extra);
  return true;
}

void WrProgramEngine::RunProgram(const Installed& in, Buffer* buffer, BufferPool* pool,
                                 MessageHeader header, QpNum qp, SimDuration extra) {
  m_offloaded_.Increment();
  // Request accounting parity with the software executor: every hop a request
  // traverses records against the tenant's SLO window, offloaded or not —
  // the equivalence property test pins this.
  SloObject* slo = env_->slos().OfTenant(in.spec.tenant);
  if (slo != nullptr) {
    slo->RecordRequest();
  }
  const CostModel& cost = env_->cost();
  const SimDuration service =
      cost.wrprog_trigger + cost.wrprog_cond + in.spec.compute + extra;
  // Capture the spec BY VALUE: an Uninstall (migration, tenant departure) must
  // not dangle a program that already fired.
  const HopSpec spec = in.spec;
  env_->Trace(TraceCategory::kRdma, node_->id(), "wrprog_fire", spec.chain, header.request_id);
  sim().Schedule(service, [this, spec, buffer, pool, header, qp]() {
    const bool final_hop = spec.next_fn == kInvalidFunction;
    MessageHeader out;
    out.chain = header.chain;
    // Correlation contract: interior forwards preserve the incoming
    // (src, request_id) so the final hop answers whoever issued into the
    // offloaded segment — this is what makes mixed software/offloaded
    // composition automatic.
    out.request_id = header.request_id;
    if (final_hop) {
      out.src = spec.hop;
      out.dst = header.src;
      out.flags = MessageHeader::kFlagResponse;
      const auto it = spec.response_by_src.find(header.src);
      out.payload_length =
          it == spec.response_by_src.end() ? spec.response_payload : it->second;
    } else {
      out.src = header.src;
      out.dst = spec.next_fn;
      out.payload_length = spec.forward_payload;
    }
    if (!WriteMessage(buffer, out)) {
      m_send_errors_.Increment();
      pool->Put(buffer, OwnerId::Rnic(node_->id()));
      return;
    }
    WorkRequest wr;
    wr.opcode = RdmaOpcode::kSend;
    wr.wr_id = next_wr_id_++;
    wr.imm = out.dst;
    wr.signaled = false;  // The engine's CQ consumers must never wake for us.
    wr.src = buffer;
    const NodeId home = node_->id();
    const bool posted = node_->rnic().PostWr(
        qp, wr, [this, buffer, pool, home](const Completion& done) {
          if (done.status != WrStatus::kSuccess) {
            m_send_errors_.Increment();
          }
          pool->Put(buffer, OwnerId::Rnic(home));
        });
    if (!posted) {
      // The QP died between admission and fire: the message is already
      // rewritten, so hand it to the engine's software TX path — slower, but
      // the request survives (counted as a fallback, never lost).
      m_fallbacks_.Increment();
      SoftwareForward(spec.tenant, buffer, pool);
      return;
    }
    if (final_hop) {
      m_responses_.Increment();
    }
  });
}

void WrProgramEngine::SoftwareForward(TenantId tenant, Buffer* buffer, BufferPool* pool) {
  if (engine_ == nullptr ||
      !pool->Transfer(buffer, OwnerId::Rnic(node_->id()), engine_->owner_id())) {
    m_send_errors_.Increment();
    pool->Put(buffer, OwnerId::Rnic(node_->id()));
    return;
  }
  if (!engine_->SendFromEngine(tenant, buffer)) {
    m_send_errors_.Increment();
    pool->Put(buffer, engine_->owner_id());
  }
}

}  // namespace nadino
