#include "src/rdma/shared_receive_queue.h"

namespace nadino {

bool SharedReceiveQueue::Post(Buffer* buffer, uint64_t wr_id, NodeId rnic_node) {
  if (buffer == nullptr || buffer->tenant != tenant_ ||
      !(buffer->owner == OwnerId::Rnic(rnic_node))) {
    ++post_violations_;
    return false;
  }
  queue_.push_back(PostedRecv{buffer, wr_id});
  ++posted_;
  return true;
}

SharedReceiveQueue::PostedRecv SharedReceiveQueue::Pop() {
  if (queue_.empty()) {
    return {};
  }
  PostedRecv entry = queue_.front();
  queue_.pop_front();
  ++consumed_;
  return entry;
}

}  // namespace nadino
