// Completion queue shared by all RC QPs on a node (paper section 3.3: "All
// RCQPs on a given node share a single Completion Queue").
//
// Two consumption styles are supported, matching how the engines use verbs:
//   * handler-driven: a busy-polling run-to-completion loop registers a
//     handler that fires as CQEs arrive (the handler charges its own core);
//   * explicit Poll(): drains up to N entries, for engines that batch.

#ifndef SRC_RDMA_COMPLETION_QUEUE_H_
#define SRC_RDMA_COMPLETION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/rdma/verbs.h"

namespace nadino {

class CompletionQueue {
 public:
  using Handler = std::function<void(const Completion&)>;

  // A steering hook consulted before the handler. Returning true means the
  // CQE was consumed "in the NIC" — an installed WR program matched it — and
  // the software consumer (handler or Poll) never sees it. WR programs use
  // this to take over chain-hop receives without waking the DPU cores.
  using Steering = std::function<bool(const Completion&)>;

  // Registers the busy-poll consumer. With a handler set, pushed CQEs are
  // dispatched immediately (the poller would have seen them on its next spin);
  // without one they accumulate until Poll().
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Installs the NIC-side steering hook (nullptr to remove). At most one.
  void SetSteering(Steering steering) { steering_ = std::move(steering); }

  void Push(const Completion& cqe);

  // Drains up to `max` entries into `out`; returns the number drained.
  size_t Poll(size_t max, std::vector<Completion>* out);

  size_t depth() const { return queue_.size(); }
  uint64_t total_completions() const { return total_; }
  uint64_t steered_completions() const { return steered_; }

 private:
  Handler handler_;
  Steering steering_;
  std::deque<Completion> queue_;
  uint64_t total_ = 0;
  uint64_t steered_ = 0;
};

}  // namespace nadino

#endif  // SRC_RDMA_COMPLETION_QUEUE_H_
