#include "src/rdma/distributed_lock.h"

#include <utility>

namespace nadino {

namespace {
constexpr uint64_t kLockMessageBytes = 32;
}  // namespace

DistributedLockService::DistributedLockService(Env& env, RdmaNetwork* network, NodeId home,
                                               FifoResource* manager_core)
    : env_(&env), network_(network), home_(home), manager_core_(manager_core) {
  const MetricLabels labels = MetricLabels::Node(home);
  m_acquires_ = env_->metrics().ResolveCounter("dlock_acquires", labels);
  m_contended_ = env_->metrics().ResolveCounter("dlock_contended_acquires", labels);
}

void DistributedLockService::Acquire(NodeId requester, uint64_t lock_id, Granted granted) {
  m_acquires_.Increment();
  if (requester == home_) {
    // Local acquires still pay manager processing but skip the fabric.
    manager_core_->Submit(env_->cost().dlock_manager_op,
                          [this, requester, lock_id, granted = std::move(granted)]() mutable {
                            ManagerAcquire(requester, lock_id, std::move(granted));
                          });
    return;
  }
  network_->fabric().Send(requester, home_, kLockMessageBytes,
                          [this, requester, lock_id, granted = std::move(granted)]() mutable {
                            manager_core_->Submit(
                                env_->cost().dlock_manager_op,
                                [this, requester, lock_id, granted = std::move(granted)]() mutable {
                                  ManagerAcquire(requester, lock_id, std::move(granted));
                                });
                          });
}

void DistributedLockService::EnableLeaseRecovery(SimDuration lease) {
  lease_ = lease;
  if (lease_ != 0) {
    m_lease_recoveries_ =
        env_->metrics().ResolveCounter("dlock_lease_recoveries", MetricLabels::Node(home_));
  }
}

void DistributedLockService::ManagerAcquire(NodeId requester, uint64_t lock_id, Granted granted) {
  LockState& state = locks_[lock_id];
  if (state.held) {
    m_contended_.Increment();
    state.waiters.emplace_back(requester, std::move(granted));
    return;
  }
  GrantTo(state, lock_id, requester, std::move(granted));
}

void DistributedLockService::Release(NodeId requester, uint64_t lock_id) {
  if (requester == home_) {
    manager_core_->Submit(env_->cost().dlock_manager_op,
                          [this, lock_id]() { ManagerRelease(lock_id); });
    return;
  }
  network_->fabric().Send(requester, home_, kLockMessageBytes, [this, lock_id]() {
    manager_core_->Submit(env_->cost().dlock_manager_op, [this, lock_id]() { ManagerRelease(lock_id); });
  });
}

void DistributedLockService::ManagerRelease(uint64_t lock_id) {
  LockState& state = locks_[lock_id];
  if (state.waiters.empty()) {
    state.held = false;
    state.holder = kInvalidNode;
    ++state.epoch;
    return;
  }
  auto [next, granted] = std::move(state.waiters.front());
  state.waiters.pop_front();
  GrantTo(state, lock_id, next, std::move(granted));
}

void DistributedLockService::GrantTo(LockState& state, uint64_t lock_id, NodeId requester,
                                     Granted granted) {
  state.held = true;
  state.holder = requester;
  ++state.epoch;
  ArmLease(lock_id, state.epoch);
  Grant(requester, std::move(granted));
}

void DistributedLockService::Grant(NodeId requester, Granted granted) {
  if (requester == home_) {
    sim().Schedule(0, std::move(granted));
    return;
  }
  network_->fabric().Send(home_, requester, kLockMessageBytes, std::move(granted));
}

void DistributedLockService::ArmLease(uint64_t lock_id, uint64_t epoch) {
  if (lease_ == 0) {
    return;
  }
  sim().Schedule(lease_, [this, lock_id, epoch]() { LeaseCheck(lock_id, epoch); });
}

void DistributedLockService::LeaseCheck(uint64_t lock_id, uint64_t epoch) {
  const auto it = locks_.find(lock_id);
  if (it == locks_.end() || !it->second.held || it->second.epoch != epoch) {
    return;  // Released (or re-granted) before the lease ran out.
  }
  if (!env_->faults().NodePartitioned(it->second.holder)) {
    ArmLease(lock_id, epoch);  // Holder alive; keep watching.
    return;
  }
  // The holder is unreachable; its Release can never arrive. Reclaim on the
  // manager core — re-checking the epoch at execution time, since a queued
  // (pre-partition) release may drain from the core first.
  manager_core_->Submit(env_->cost().dlock_manager_op, [this, lock_id, epoch]() {
    const auto check = locks_.find(lock_id);
    if (check == locks_.end() || !check->second.held || check->second.epoch != epoch) {
      return;
    }
    m_lease_recoveries_.Increment();
    ManagerRelease(lock_id);
  });
}

}  // namespace nadino
