#include "src/rdma/distributed_lock.h"

#include <utility>

namespace nadino {

namespace {
constexpr uint64_t kLockMessageBytes = 32;
}  // namespace

DistributedLockService::DistributedLockService(Env& env, RdmaNetwork* network, NodeId home,
                                               FifoResource* manager_core)
    : env_(&env), network_(network), home_(home), manager_core_(manager_core) {
  const MetricLabels labels = MetricLabels::Node(home);
  m_acquires_ = env_->metrics().ResolveCounter("dlock_acquires", labels);
  m_contended_ = env_->metrics().ResolveCounter("dlock_contended_acquires", labels);
}

void DistributedLockService::Acquire(NodeId requester, uint64_t lock_id, Granted granted) {
  m_acquires_.Increment();
  if (requester == home_) {
    // Local acquires still pay manager processing but skip the fabric.
    manager_core_->Submit(env_->cost().dlock_manager_op,
                          [this, requester, lock_id, granted = std::move(granted)]() mutable {
                            ManagerAcquire(requester, lock_id, std::move(granted));
                          });
    return;
  }
  network_->fabric().Send(requester, home_, kLockMessageBytes,
                          [this, requester, lock_id, granted = std::move(granted)]() mutable {
                            manager_core_->Submit(
                                env_->cost().dlock_manager_op,
                                [this, requester, lock_id, granted = std::move(granted)]() mutable {
                                  ManagerAcquire(requester, lock_id, std::move(granted));
                                });
                          });
}

void DistributedLockService::ManagerAcquire(NodeId requester, uint64_t lock_id, Granted granted) {
  LockState& state = locks_[lock_id];
  if (state.held) {
    m_contended_.Increment();
    state.waiters.emplace_back(requester, std::move(granted));
    return;
  }
  state.held = true;
  Grant(requester, std::move(granted));
}

void DistributedLockService::Release(NodeId requester, uint64_t lock_id) {
  if (requester == home_) {
    manager_core_->Submit(env_->cost().dlock_manager_op,
                          [this, lock_id]() { ManagerRelease(lock_id); });
    return;
  }
  network_->fabric().Send(requester, home_, kLockMessageBytes, [this, lock_id]() {
    manager_core_->Submit(env_->cost().dlock_manager_op, [this, lock_id]() { ManagerRelease(lock_id); });
  });
}

void DistributedLockService::ManagerRelease(uint64_t lock_id) {
  LockState& state = locks_[lock_id];
  if (state.waiters.empty()) {
    state.held = false;
    return;
  }
  auto [next, granted] = std::move(state.waiters.front());
  state.waiters.pop_front();
  Grant(next, std::move(granted));
}

void DistributedLockService::Grant(NodeId requester, Granted granted) {
  if (requester == home_) {
    sim().Schedule(0, std::move(granted));
    return;
  }
  network_->fabric().Send(home_, requester, kLockMessageBytes, std::move(granted));
}

}  // namespace nadino
