// RNIC QP-context cache (ICM cache) model.
//
// RC QP state lives in host memory and is cached on the NIC; touching more
// QPs than fit causes misses that stall the pipeline ("cache line thrashing
// for QP buffers", sections 2.1/3.3, and the Harmonic-style MTT/MPT
// exhaustion discussed in section 3.7). The DNE bounds the number of *active*
// QPs per node precisely to stay inside this cache.

#ifndef SRC_RDMA_QP_CACHE_H_
#define SRC_RDMA_QP_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/core/types.h"

namespace nadino {

class QpCache {
 public:
  explicit QpCache(int capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  // Records an access to `qp`'s context. Returns true on hit; on miss the
  // context is fetched (caller charges the miss penalty) and the LRU entry is
  // evicted.
  bool Touch(QpNum qp);

  // Drops a QP's context (e.g. when the shadow-QP manager deactivates it),
  // freeing a slot without an eviction penalty for others. Clears any pin.
  void Evict(QpNum qp);

  // Pins `qp`'s context resident: a WR program installed at the QP keeps its
  // WQEs and context in ICM, so LRU pressure from other tenants' traffic must
  // not evict it (the program would stop firing on real hardware). Pinning
  // faults the context in (one counted miss) if absent. Pins nest.
  void Pin(QpNum qp);
  void Unpin(QpNum qp);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t resident() const { return lru_.size(); }
  size_t pinned() const { return pins_.size(); }
  int capacity() const { return capacity_; }

 private:
  int capacity_;
  std::list<QpNum> lru_;  // Front = most recent.
  std::unordered_map<QpNum, std::list<QpNum>::iterator> index_;
  std::unordered_map<QpNum, int> pins_;  // qp -> nested pin count.
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace nadino

#endif  // SRC_RDMA_QP_CACHE_H_
