// Per-node simulated RNIC + verbs provider.
//
// An RdmaEngine models one RNIC (a ConnectX-6, standalone or integrated into
// a BlueField DPU): RC QPs, a node-wide completion queue, per-tenant shared
// receive queues, a QP-context cache, TX/RX processing pipelines, and the
// memory-region table. Payload bytes really move: the TX path snapshots the
// source buffer (the DMA read) and the RX path deposits the bytes into the
// posted receive buffer (the DMA write) — neither counts as a *software*
// copy, which is exactly the paper's definition of zero-copy (footnote 1).

#ifndef SRC_RDMA_RDMA_ENGINE_H_
#define SRC_RDMA_RDMA_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/mem/buffer_pool.h"
#include "src/rdma/completion_queue.h"
#include "src/rdma/fabric.h"
#include "src/rdma/memory_region.h"
#include "src/rdma/qp_cache.h"
#include "src/rdma/shared_receive_queue.h"
#include "src/rdma/verbs.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace nadino {

class RdmaEngine;

// Owns the fabric and the engine registry; routes packets between engines.
class RdmaNetwork {
 public:
  explicit RdmaNetwork(Env& env) : fabric_(env) {}

  void Attach(RdmaEngine* engine);
  RdmaEngine* EngineAt(NodeId node) const;
  Fabric& fabric() { return fabric_; }

 private:
  Fabric fabric_;
  std::map<NodeId, RdmaEngine*> engines_;
};

class RdmaEngine {
 public:
  struct Stats {
    uint64_t sends = 0;
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t recv_completions = 0;
    uint64_t rnr_events = 0;
    uint64_t rnr_failures = 0;
    uint64_t bytes_tx = 0;
    uint64_t bytes_rx = 0;
    // One-sided writes that landed in a buffer currently owned by a function:
    // the "receiver-oblivious" data race the paper's section 2.1 warns about.
    uint64_t oblivious_overwrites = 0;
  };

  RdmaEngine(Env& env, NodeId node, RdmaNetwork* network);

  RdmaEngine(const RdmaEngine&) = delete;
  RdmaEngine& operator=(const RdmaEngine&) = delete;

  NodeId node() const { return node_; }
  RdmaNetwork* network() const { return network_; }
  CompletionQueue& cq() { return cq_; }
  MrTable& mr_table() { return mr_table_; }
  QpCache& qp_cache() { return qp_cache_; }
  // Thin shim over the MetricsRegistry counters (see metrics.h); kept so
  // existing `stats().sends`-style call sites compile unchanged.
  Stats stats() const;
  const CostModel& cost() const { return env_->cost(); }

  // --- Control path ---------------------------------------------------------

  // Creates a (half-open) RC QP for `tenant`; pair it with Connect().
  QpNum CreateQp(TenantId tenant);

  // Binds a local QP to its remote peer. Control-plane only: connection setup
  // *time* is charged by the ConnectionService (section 3.3), not here.
  bool Connect(QpNum local_qp, NodeId remote_node, QpNum remote_qp);

  // Creates and pairs a QP on each engine; returns {qp_on_a, qp_on_b}.
  static std::pair<QpNum, QpNum> CreateConnectedPair(RdmaEngine& a, RdmaEngine& b,
                                                     TenantId tenant);

  SharedReceiveQueue& SrqOfTenant(TenantId tenant);

  // Transfers ownership of `buffer` from `from` to this RNIC and posts it to
  // the tenant's shared RQ under the receiver-chosen `wr_id`. Returns false on
  // ownership/tenant mismatch.
  bool PostRecvBuffer(BufferPool* pool, Buffer* buffer, OwnerId from, uint64_t wr_id);

  // --- Data path (costs charged to the NIC pipelines, not the caller) -------

  // Invoked with the WR's completion (success or error) INSTEAD of pushing a
  // CQE. WR programs post their interior steps with a hook so the software
  // completion consumers never wake for them; the hook runs in NIC context
  // and must not charge core time.
  using WrCompletionHook = std::function<void(const Completion&)>;

  // The single posting path: every data-path verb is expressed as a
  // WorkRequest. Legacy PostSend/PostWrite/PostRead lower to one-WR calls.
  // Returns false without side effects when the QP or WR is unusable (the
  // caller keeps its buffer). An unsignaled WR with no hook completes
  // silently (outstanding is still decremented on ACK).
  bool PostWr(QpNum qp, const WorkRequest& wr, WrCompletionHook on_complete = nullptr);

  // Two-sided send: the payload is snapshotted now (DMA read) and lands in a
  // receive buffer posted at the peer. `imm` travels in the CQE.
  bool PostSend(QpNum qp, const Buffer& src, uint64_t wr_id, uint32_t imm = 0);

  // One-sided write into `remote_pool[remote_index]`. Completes locally with
  // kRemoteAccessError if the peer never granted kMrRemoteWrite on that pool.
  bool PostWrite(QpNum qp, const Buffer& src, PoolId remote_pool, uint32_t remote_index,
                 uint64_t wr_id, uint32_t imm = 0);

  // One-sided read of `len` bytes from `remote_pool[remote_index]` into `dst`.
  bool PostRead(QpNum qp, Buffer* dst, PoolId remote_pool, uint32_t remote_index, uint32_t len,
                uint64_t wr_id);

  // Outstanding (un-acked) WRs on a QP; the DNE's least-congested connection
  // selection reads this.
  uint32_t Outstanding(QpNum qp) const;

  // RC semantics: a transport error (RNR retry exhaustion) moves the QP to
  // the error state; subsequent posts fail fast until it is reset.
  bool InError(QpNum qp) const;

  // Control-plane reset (back to RTS); the pair's peer QP is NOT reset here —
  // real recovery re-runs the connection handshake, which ConnectionService's
  // Repair() models with the full reconnect cost.
  void ResetQp(QpNum qp);

  TenantId TenantOfQp(QpNum qp) const;

  // Peer coordinates of a connected QP (kInvalidNode / 0 when unknown); the
  // control plane's Repair() resolves the peer engine through these.
  NodeId RemoteNodeOfQp(QpNum qp) const;
  QpNum RemoteQpOf(QpNum qp) const;

  // Tears a QP's context out of the RNIC (tenant departure): the QP number
  // is retired and its ICM cache slot is freed. Packets already in flight
  // toward the destroyed QP resolve to null lookups — dropped, counted by
  // their senders' ACK timeouts, never hung.
  void DestroyQp(QpNum qp);

  // Per-tenant bytes transmitted (fairness accounting for Figs. 15/17).
  uint64_t TenantBytesTx(TenantId tenant) const;

  // SIMULATION OBSERVER, not a data-plane signal: one-sided writes are
  // invisible to the receiver CPU by design. Receiver-side *pollers* (FaRM /
  // FUYAO style) register this hook so the simulator can schedule their next
  // poll-loop discovery of the written buffer instead of idle-spinning the
  // event queue; the hook implementation must still charge the poll interval
  // and iteration costs.
  using WriteArrivalHook = std::function<void(Buffer* buffer, uint32_t index)>;
  void SetWriteArrivalHook(PoolId pool, WriteArrivalHook hook);

 private:
  friend class RdmaNetwork;

  struct RcQp {
    QpNum num = 0;
    TenantId tenant = kInvalidTenant;
    NodeId remote_node = kInvalidNode;
    QpNum remote_qp = 0;
    bool connected = false;
    bool in_error = false;  // RC error state (e.g. RNR retry exhaustion).
    uint32_t outstanding = 0;
  };

  struct Packet {
    enum class Kind : uint8_t { kSend, kWrite, kAck, kReadReq, kReadResp };
    Kind kind = Kind::kSend;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    QpNum src_qp = 0;
    QpNum dst_qp = 0;
    TenantId tenant = kInvalidTenant;
    uint64_t wr_id = 0;
    uint32_t imm = 0;
    RdmaOpcode acked_op = RdmaOpcode::kSend;
    WrStatus status = WrStatus::kSuccess;
    PoolId remote_pool = 0;
    uint32_t remote_index = 0;
    uint32_t read_len = 0;
    int rnr_attempts = 0;
    std::vector<std::byte> payload;
  };

  static constexpr int kMaxRnrRetries = 7;

  // A WR awaiting its remote ACK (or read response); enough context to
  // synthesize the local error completion if the wire loses either leg.
  struct PendingAck {
    RdmaOpcode op = RdmaOpcode::kSend;
    TenantId tenant = kInvalidTenant;
    NodeId dst = kInvalidNode;
    uint32_t imm = 0;
    bool signaled = true;
    WrCompletionHook hook;  // Consumes the completion instead of the CQ.
  };
  // (local qp, wr_id): wr_ids are per-poster, so qualify with the QP.
  using AckKey = std::pair<QpNum, uint64_t>;

  RcQp* FindQp(QpNum qp);
  const RcQp* FindQp(QpNum qp) const;

  // Tracks the WR and arms the rnic_ack_timeout deadline. Fires as a no-op
  // when the ACK arrived in time; otherwise completes the WR locally with
  // kTransportError (RC retransmit exhaustion), exactly like an injected
  // kRnicTx drop — dropped, counted, not hung.
  void ArmAckTimeout(const Packet& pkt);
  void OnAckTimeout(AckKey key);

  // Consults the kRnicTx fault site, then charges the TX pipeline and puts
  // the packet on the wire. An injected drop completes the WR locally with
  // WrStatus::kTransportError instead of transmitting.
  void Transmit(Packet pkt, SimDuration extra_cost = 0);

  // The post-interception half of Transmit (duplicates re-enter here so an
  // injected duplicate cannot re-trigger the fault site).
  void EnqueueTx(Packet pkt, SimDuration extra_cost);

  // Entry point for packets arriving from the fabric (called by the network).
  // Consults the kRnicRx fault site; a drop NACKs the sender with
  // WrStatus::kTransportError so its WR fails instead of hanging.
  void DeliverFromWire(Packet pkt);

  // Post-interception RX: charges the RX pipeline and dispatches to the
  // per-kind handler (duplicates re-enter here, bypassing the fault site).
  void DeliverReceived(Packet pkt, SimDuration extra_cost);

  // RX-pipeline-charged handlers per packet kind.
  void HandleSend(Packet pkt);
  void HandleWrite(Packet pkt);
  void HandleAck(const Packet& pkt);
  void HandleReadReq(Packet pkt);
  void HandleReadResp(Packet pkt);

  void SendAck(const Packet& original, RdmaOpcode op, WrStatus status, uint32_t byte_len);

  // Routes a finished WR's completion: hook if one was attached, else the CQ
  // when the WR was signaled, else nowhere.
  void DeliverWrCompletion(const PendingAck& info, const Completion& cqe);

  SimDuration QpTouchCost(QpNum qp);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  NodeId node_;
  RdmaNetwork* network_;
  FifoResource tx_pipe_;
  FifoResource rx_pipe_;
  CompletionQueue cq_;
  MrTable mr_table_;
  QpCache qp_cache_;
  QpNum next_qp_ = 1;
  std::map<QpNum, RcQp> qps_;
  std::map<TenantId, std::unique_ptr<SharedReceiveQueue>> srqs_;
  std::map<TenantId, uint64_t> tenant_bytes_tx_;
  std::map<uint64_t, Buffer*> pending_reads_;  // wr_id -> destination buffer.
  std::map<AckKey, PendingAck> pending_acks_;
  std::map<PoolId, WriteArrivalHook> write_hooks_;
  // Staging for the WR being posted right now: PostWr parks the hook and
  // signaled flag here, and ArmAckTimeout (called synchronously inside
  // Transmit) claims them into the PendingAck entry.
  WrCompletionHook posting_hook_;
  bool posting_signaled_ = true;
  // Registry-backed counters (labels: node), resolved once at construction
  // into raw-word handles (metrics.h). See Stats for field meanings.
  CounterHandle m_sends_;
  CounterHandle m_writes_;
  CounterHandle m_reads_;
  CounterHandle m_recv_completions_;
  CounterHandle m_rnr_events_;
  CounterHandle m_rnr_failures_;
  CounterHandle m_bytes_tx_;
  CounterHandle m_bytes_rx_;
  CounterHandle m_oblivious_overwrites_;
  // rnic_ack_timeouts handles, created lazily on the first timeout for a
  // (node, tenant) pair so unfaulted runs keep byte-identical snapshots.
  CounterHandle& AckTimeoutHandleFor(TenantId tenant);
  std::map<TenantId, CounterHandle> ack_timeout_handles_;
};

}  // namespace nadino

#endif  // SRC_RDMA_RDMA_ENGINE_H_
