// The RDMA fabric: per-node uplinks/downlinks joined by a cut-through switch.
//
// Matches the testbed topology (section 4): worker-node DPUs and the ingress
// RNIC hang off one 200 Gbps switch. Contention is modelled per-port: a
// node's egress stream serializes on its uplink, ingress on its downlink.

#ifndef SRC_RDMA_FABRIC_H_
#define SRC_RDMA_FABRIC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/sim/link.h"

namespace nadino {

// Bytes added to every message on the wire (Ethernet + IB BTH-class headers).
inline constexpr uint64_t kWireHeaderBytes = 60;

class Fabric {
 public:
  using Delivery = std::function<void()>;

  explicit Fabric(Env& env);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Adds a port for `node`. Must be called before Send touches that node.
  void AttachNode(NodeId node);

  bool HasNode(NodeId node) const { return ports_.count(node) > 0; }

  // Moves `payload_bytes` (+ header) from src to dst; `delivered` fires when
  // the last byte arrives at dst's port. `tenant` scopes fault interception
  // (kFabric on the whole transit, kLink per direction); a dropped message is
  // counted by the FaultPlane and `delivered` never fires.
  void Send(NodeId src, NodeId dst, uint64_t payload_bytes, Delivery delivered,
            TenantId tenant = kInvalidTenant);

  // Congestion signal: messages queued on the node's uplink.
  size_t UplinkQueueDepth(NodeId node) const;

  uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  struct Port {
    std::unique_ptr<Link> up;    // node -> switch
    std::unique_ptr<Link> down;  // switch -> node
  };

  Env* env_;
  std::map<NodeId, Port> ports_;
  uint64_t messages_delivered_ = 0;
};

}  // namespace nadino

#endif  // SRC_RDMA_FABRIC_H_
