#include "src/rdma/qp_cache.h"

namespace nadino {

bool QpCache::Touch(QpNum qp) {
  const auto it = index_.find(qp);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (static_cast<int>(lru_.size()) >= capacity_) {
    // Evict from the LRU end, skipping pinned contexts (a WR program's QP
    // must stay resident). With no pins this is exactly the old behavior.
    for (auto victim = lru_.rbegin(); victim != lru_.rend(); ++victim) {
      if (pins_.find(*victim) == pins_.end()) {
        index_.erase(*victim);
        lru_.erase(std::next(victim).base());
        break;
      }
    }
  }
  lru_.push_front(qp);
  index_[qp] = lru_.begin();
  return false;
}

void QpCache::Evict(QpNum qp) {
  pins_.erase(qp);
  const auto it = index_.find(qp);
  if (it == index_.end()) {
    return;
  }
  lru_.erase(it->second);
  index_.erase(it);
}

void QpCache::Pin(QpNum qp) {
  if (index_.find(qp) == index_.end()) {
    Touch(qp);  // Fault the context in; the install path owns this miss.
  }
  ++pins_[qp];
}

void QpCache::Unpin(QpNum qp) {
  const auto it = pins_.find(qp);
  if (it == pins_.end()) {
    return;
  }
  if (--it->second <= 0) {
    pins_.erase(it);
  }
}

}  // namespace nadino
