#include "src/rdma/qp_cache.h"

namespace nadino {

bool QpCache::Touch(QpNum qp) {
  const auto it = index_.find(qp);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (static_cast<int>(lru_.size()) >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(qp);
  index_[qp] = lru_.begin();
  return false;
}

void QpCache::Evict(QpNum qp) {
  const auto it = index_.find(qp);
  if (it == index_.end()) {
    return;
  }
  lru_.erase(it->second);
  index_.erase(it);
}

}  // namespace nadino
