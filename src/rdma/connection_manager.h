// RC connection pooling with shadow (active/inactive) QPs.
//
// Paper section 3.3: RC connection setup costs tens of milliseconds, so each
// node's DNE manages a pool of pre-established connections per peer. Pooled
// QPs are categorized as *active* (WRs queued; resident in the RNIC's QP
// cache) or *inactive* (consume no RNIC resources — the "shadow QP" mechanism
// of RoGUE [55]). Only the number of *active* QPs per node is bounded, to
// avoid RNIC cache thrashing; activation/deactivation is local, with no
// cross-node QP state synchronization.

#ifndef SRC_RDMA_CONNECTION_MANAGER_H_
#define SRC_RDMA_CONNECTION_MANAGER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/rdma/rdma_engine.h"
#include "src/sim/simulator.h"

namespace nadino {

class ConnectionManager {
 public:
  struct Stats {
    uint64_t connects = 0;
    uint64_t activations = 0;
    uint64_t deactivations = 0;
    uint64_t acquires = 0;
    uint64_t repairs = 0;
  };

  // The result of Acquire: the selected QP plus the control-path time the
  // caller (the DNE worker) must charge to its own core before posting.
  struct Acquired {
    QpNum qp = 0;
    SimDuration control_cost = 0;
  };

  ConnectionManager(Env& env, RdmaEngine* local, int max_active_per_peer = 8,
                    uint32_t congestion_threshold = 16);

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  // Establishes `count` RC connections to `peer` for `tenant` ahead of time.
  // Setup time (rc_connect_cost each, pipelined) elapses on the virtual clock
  // via `sim`, but this is control-plane work done off the critical path.
  // Returns once the connections exist (caller should RunFor the setup time
  // or call during warm-up).
  void Prewarm(RdmaEngine* peer, TenantId tenant, int count);

  // Picks the least-congested *active* connection to `peer` for `tenant`.
  // If every active connection's outstanding count exceeds the congestion
  // threshold and an inactive one is pooled, it is activated (cost surfaced
  // via Acquired::control_cost). Returns qp == 0 if no connection exists.
  Acquired Acquire(NodeId peer, TenantId tenant);

  // Marks a connection idle; once the active count exceeds the configured
  // bound the surplus idle connections are deactivated (evicted from the QP
  // cache, consuming no RNIC resources).
  void NoteIdle(QpNum qp);

  // Repairs a connection whose QP entered the error state: re-runs the RC
  // handshake (rc_connect_cost elapses on the virtual clock) and returns the
  // QP to service. Errored connections are excluded by Acquire() meanwhile.
  void Repair(QpNum qp, RdmaEngine* peer);

  int ActiveCount(NodeId peer, TenantId tenant) const;
  int PooledCount(NodeId peer, TenantId tenant) const;
  // Thin shim over the MetricsRegistry counters; see metrics.h.
  Stats stats() const;

 private:
  struct Pooled {
    QpNum qp = 0;
    bool active = false;
  };

  using PeerKey = std::pair<NodeId, TenantId>;

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  RdmaEngine* local_;
  int max_active_per_peer_;
  uint32_t congestion_threshold_;
  std::map<PeerKey, std::vector<Pooled>> pools_;
  std::map<QpNum, PeerKey> qp_index_;
  // Registry-backed counters (labels: node of the local engine).
  CounterHandle m_connects_;
  CounterHandle m_activations_;
  CounterHandle m_deactivations_;
  CounterHandle m_acquires_;
  CounterHandle m_repairs_;
};

}  // namespace nadino

#endif  // SRC_RDMA_CONNECTION_MANAGER_H_
