#include "src/rdma/fabric.h"

#include <cassert>
#include <string>
#include <utility>

namespace nadino {

Fabric::Fabric(Env& env) : env_(&env) {}

void Fabric::AttachNode(NodeId node) {
  if (ports_.count(node) > 0) {
    return;
  }
  const CostModel& cost = env_->cost();
  Port port;
  port.up = std::make_unique<Link>(&env_->sim(), "up:" + std::to_string(node), cost.fabric_gbps,
                                   cost.link_propagation);
  port.down = std::make_unique<Link>(&env_->sim(), "down:" + std::to_string(node),
                                     cost.fabric_gbps, cost.link_propagation);
  ports_.emplace(node, std::move(port));
}

void Fabric::Send(NodeId src, NodeId dst, uint64_t payload_bytes, Delivery delivered) {
  assert(ports_.count(src) > 0 && ports_.count(dst) > 0);
  const uint64_t wire_bytes = payload_bytes + kWireHeaderBytes;
  Link* up = ports_.at(src).up.get();
  Link* down = ports_.at(dst).down.get();
  up->Transfer(wire_bytes, [this, down, wire_bytes, delivered = std::move(delivered)]() mutable {
    env_->sim().Schedule(env_->cost().switch_latency,
                         [this, down, wire_bytes, delivered = std::move(delivered)]() mutable {
                           down->Transfer(wire_bytes, [this, delivered = std::move(delivered)]() {
                             ++messages_delivered_;
                             if (delivered) {
                               delivered();
                             }
                           });
                         });
  });
}

size_t Fabric::UplinkQueueDepth(NodeId node) const {
  const auto it = ports_.find(node);
  return it == ports_.end() ? 0 : it->second.up->queue_depth();
}

}  // namespace nadino
