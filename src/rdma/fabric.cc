#include "src/rdma/fabric.h"

#include <cassert>
#include <string>
#include <utility>

namespace nadino {

Fabric::Fabric(Env& env) : env_(&env) {}

void Fabric::AttachNode(NodeId node) {
  // Single-probe insert: the node's slot is claimed (or found) once instead
  // of a count() walk followed by an emplace() walk.
  const auto [it, inserted] = ports_.try_emplace(node);
  if (!inserted) {
    return;
  }
  const CostModel& cost = env_->cost();
  it->second.up = std::make_unique<Link>(&env_->sim(), "up:" + std::to_string(node),
                                         cost.fabric_gbps, cost.link_propagation,
                                         &env_->faults(), node);
  it->second.down = std::make_unique<Link>(&env_->sim(), "down:" + std::to_string(node),
                                           cost.fabric_gbps, cost.link_propagation,
                                           &env_->faults(), node);
}

void Fabric::Send(NodeId src, NodeId dst, uint64_t payload_bytes, Delivery delivered,
                  TenantId tenant) {
  // One lookup per port on this per-packet path (the old code paid a count()
  // probe in the assert plus a checked at() walk for each endpoint).
  const auto src_it = ports_.find(src);
  const auto dst_it = ports_.find(dst);
  assert(src_it != ports_.end() && dst_it != ports_.end());
  // Pair-aware interception: a node_partition window on EITHER endpoint kills
  // the crossing here — the fabric is the chokepoint all inter-node traffic
  // (RDMA packets, proxy TCP, heartbeats) funnels through — before the
  // regular kFabric specs get a look.
  const FaultDecision fault =
      env_->faults().InterceptPair(FaultSite::kFabric, FaultScope{tenant, src}, dst);
  if (fault.action == FaultAction::kDrop) {
    return;  // Lost in transit; the FaultPlane counted it.
  }
  const uint64_t wire_bytes = payload_bytes + kWireHeaderBytes;
  Link* up = src_it->second.up.get();
  Link* down = dst_it->second.down.get();
  auto transit = [this, up, down, wire_bytes, tenant](Delivery done) {
    up->Transfer(
        wire_bytes,
        [this, down, wire_bytes, tenant, done = std::move(done)]() mutable {
          env_->sim().Schedule(
              env_->cost().switch_latency,
              [this, down, wire_bytes, tenant, done = std::move(done)]() mutable {
                down->Transfer(
                    wire_bytes,
                    [this, done = std::move(done)]() {
                      ++messages_delivered_;
                      if (done) {
                        done();
                      }
                    },
                    tenant);
              });
        },
        tenant);
  };
  if (fault.action == FaultAction::kDuplicate) {
    transit(delivered);  // Same callback fires twice; receivers are idempotent.
  }
  if (fault.action == FaultAction::kDelay) {
    env_->sim().Schedule(fault.delay, [transit = std::move(transit),
                                       delivered = std::move(delivered)]() mutable {
      transit(std::move(delivered));
    });
    return;
  }
  transit(std::move(delivered));
}

size_t Fabric::UplinkQueueDepth(NodeId node) const {
  const auto it = ports_.find(node);
  return it == ports_.end() ? 0 : it->second.up->queue_depth();
}

}  // namespace nadino
