#include "src/rdma/fabric.h"

#include <cassert>
#include <string>
#include <utility>

namespace nadino {

Fabric::Fabric(Simulator* sim, const CostModel* cost) : sim_(sim), cost_(cost) {}

void Fabric::AttachNode(NodeId node) {
  if (ports_.count(node) > 0) {
    return;
  }
  Port port;
  port.up = std::make_unique<Link>(sim_, "up:" + std::to_string(node), cost_->fabric_gbps,
                                   cost_->link_propagation);
  port.down = std::make_unique<Link>(sim_, "down:" + std::to_string(node), cost_->fabric_gbps,
                                     cost_->link_propagation);
  ports_.emplace(node, std::move(port));
}

void Fabric::Send(NodeId src, NodeId dst, uint64_t payload_bytes, Delivery delivered) {
  assert(ports_.count(src) > 0 && ports_.count(dst) > 0);
  const uint64_t wire_bytes = payload_bytes + kWireHeaderBytes;
  Link* up = ports_.at(src).up.get();
  Link* down = ports_.at(dst).down.get();
  up->Transfer(wire_bytes, [this, down, wire_bytes, delivered = std::move(delivered)]() mutable {
    sim_->Schedule(cost_->switch_latency, [this, down, wire_bytes,
                                           delivered = std::move(delivered)]() mutable {
      down->Transfer(wire_bytes, [this, delivered = std::move(delivered)]() {
        ++messages_delivered_;
        if (delivered) {
          delivered();
        }
      });
    });
  });
}

size_t Fabric::UplinkQueueDepth(NodeId node) const {
  const auto it = ports_.find(node);
  return it == ports_.end() ? 0 : it->second.up->queue_depth();
}

}  // namespace nadino
