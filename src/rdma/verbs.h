// IB-verbs-like type definitions for the simulated RDMA stack.
//
// The model implements Reliable Connected (RC) transport only, matching the
// paper (section 2.1): in-order delivery, end-to-end reliability, and both
// two-sided (send/recv) and one-sided (write/read) operations.

#ifndef SRC_RDMA_VERBS_H_
#define SRC_RDMA_VERBS_H_

#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/sim/time.h"
#include "src/mem/buffer.h"

namespace nadino {

enum class RdmaOpcode : uint8_t {
  kSend,      // Two-sided: consumes a posted receive buffer at the peer.
  kRecv,      // Completion of a posted receive.
  kWrite,     // One-sided: writes into a remote buffer, peer CPU oblivious.
  kRead,      // One-sided: reads a remote buffer.
};

enum class WrStatus : uint8_t {
  kSuccess,
  kRemoteAccessError,  // One-sided op against an unregistered / protected MR.
  kRnrRetryExceeded,   // Receiver never posted a buffer.
  kQpError,
  // The packet was lost in the NIC pipeline (injected kRnicTx/kRnicRx drop).
  // Unlike kRnrRetryExceeded this does NOT move the QP to the error state:
  // the WR completes with an error so the poster can recycle its buffer, and
  // the connection stays usable — RC's retransmission would normally mask
  // such a loss entirely; the error completion models retry exhaustion on
  // one WR without tearing the QP down.
  kTransportError,
};

// Access rights granted when registering a memory region, mirroring
// IBV_ACCESS_* flags.
enum MrAccess : uint8_t {
  kMrLocal = 0,
  kMrRemoteWrite = 1 << 0,
  kMrRemoteRead = 1 << 1,
};

// A completion-queue entry.
struct Completion {
  uint64_t wr_id = 0;
  RdmaOpcode opcode = RdmaOpcode::kSend;
  WrStatus status = WrStatus::kSuccess;
  uint32_t byte_len = 0;
  QpNum qp = 0;
  TenantId tenant = kInvalidTenant;
  NodeId src_node = kInvalidNode;
  // For kRecv completions: the receive buffer the payload was DMAed into.
  Buffer* buffer = nullptr;
  // Immediate data carried by sends/writes (NADINO uses it for the
  // destination-function id so the RX stage can route descriptors).
  uint32_t imm = 0;
};

// A first-class work request: everything a data-path verb needs, decoupled
// from the call site that posts it. Legacy PostSend/PostWrite/PostRead lower
// to one-WR requests (see RdmaEngine::PostWr), so the engine has a single
// posting path for both software callers and NIC-resident WR programs.
struct WorkRequest {
  RdmaOpcode opcode = RdmaOpcode::kSend;
  uint64_t wr_id = 0;
  // Immediate data (NADINO: destination-function id for RX routing).
  uint32_t imm = 0;
  // Unsignaled WRs surface no CQE to the software consumer; a WR program's
  // interior steps run unsignaled so the DPU/host cores never wake for them.
  bool signaled = true;
  // The scatter/gather element. The simulation's unit of registered memory is
  // the pool buffer, so one Buffer* stands in for the SGE list.
  const Buffer* src = nullptr;  // kSend / kWrite payload source.
  Buffer* dst = nullptr;        // kRead landing buffer.
  // One-sided target coordinates (kWrite / kRead).
  PoolId remote_pool = 0;
  uint32_t remote_index = 0;
  uint32_t read_len = 0;  // kRead only.
};

// How a step of a WR program is armed, mirroring RedN's triggered-WR
// primitives: a step either fires when the previous step completes, or is
// CAS-gated on a header field of the message that woke the program.
enum class WrEdge : uint8_t {
  kTriggered,    // Fire on the prior step's completion (WAIT/ENABLE chain).
  kConditional,  // Fire only if the header's dst-function field == `match`.
};

struct WrProgramStep {
  WorkRequest wr;
  WrEdge edge = WrEdge::kTriggered;
  // kConditional: required value of the arrived header's destination-function
  // field. A mismatch aborts the program and falls back to software delivery.
  uint32_t match = 0;
  // Modeled RNIC execution time for this step beyond the per-edge trigger
  // cost — the duration of the triggered-WR sequence the step lowers to
  // (payload transform, checksum rewrite). Charged as NIC latency, never as
  // core occupancy.
  SimDuration dwell = 0;
};

// An ordered list of WRs with triggered/conditional edges, installed at a
// QP and executed by the RNIC without DPU/host involvement (RedN: "RDMA is
// Turing complete"). The interpreter lives in src/rdma/wr_program.{h,cc}.
struct WrProgram {
  uint64_t id = 0;
  ChainId chain = 0;
  TenantId tenant = kInvalidTenant;
  // The function hop this program services: a recv completion whose header
  // addresses this function wakes the program (its step-0 conditional edge).
  FunctionId hop = kInvalidFunction;
  std::vector<WrProgramStep> steps;
};

}  // namespace nadino

#endif  // SRC_RDMA_VERBS_H_
