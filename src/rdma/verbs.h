// IB-verbs-like type definitions for the simulated RDMA stack.
//
// The model implements Reliable Connected (RC) transport only, matching the
// paper (section 2.1): in-order delivery, end-to-end reliability, and both
// two-sided (send/recv) and one-sided (write/read) operations.

#ifndef SRC_RDMA_VERBS_H_
#define SRC_RDMA_VERBS_H_

#include <cstdint>

#include "src/core/types.h"
#include "src/mem/buffer.h"

namespace nadino {

enum class RdmaOpcode : uint8_t {
  kSend,      // Two-sided: consumes a posted receive buffer at the peer.
  kRecv,      // Completion of a posted receive.
  kWrite,     // One-sided: writes into a remote buffer, peer CPU oblivious.
  kRead,      // One-sided: reads a remote buffer.
};

enum class WrStatus : uint8_t {
  kSuccess,
  kRemoteAccessError,  // One-sided op against an unregistered / protected MR.
  kRnrRetryExceeded,   // Receiver never posted a buffer.
  kQpError,
  // The packet was lost in the NIC pipeline (injected kRnicTx/kRnicRx drop).
  // Unlike kRnrRetryExceeded this does NOT move the QP to the error state:
  // the WR completes with an error so the poster can recycle its buffer, and
  // the connection stays usable — RC's retransmission would normally mask
  // such a loss entirely; the error completion models retry exhaustion on
  // one WR without tearing the QP down.
  kTransportError,
};

// Access rights granted when registering a memory region, mirroring
// IBV_ACCESS_* flags.
enum MrAccess : uint8_t {
  kMrLocal = 0,
  kMrRemoteWrite = 1 << 0,
  kMrRemoteRead = 1 << 1,
};

// A completion-queue entry.
struct Completion {
  uint64_t wr_id = 0;
  RdmaOpcode opcode = RdmaOpcode::kSend;
  WrStatus status = WrStatus::kSuccess;
  uint32_t byte_len = 0;
  QpNum qp = 0;
  TenantId tenant = kInvalidTenant;
  NodeId src_node = kInvalidNode;
  // For kRecv completions: the receive buffer the payload was DMAed into.
  Buffer* buffer = nullptr;
  // Immediate data carried by sends/writes (NADINO uses it for the
  // destination-function id so the RX stage can route descriptors).
  uint32_t imm = 0;
};

}  // namespace nadino

#endif  // SRC_RDMA_VERBS_H_
