// Distributed lock service used by the OWDL baseline (one-sided write with
// distributed locks, Fig. 3 (1) / Fig. 12).
//
// A lock manager lives on one node; remote parties acquire/release named
// locks via small messages over the RDMA fabric. Every acquire costs at least
// a fabric round trip plus manager processing on the manager's core — the
// synchronization overhead two-sided RDMA avoids by construction.

#ifndef SRC_RDMA_DISTRIBUTED_LOCK_H_
#define SRC_RDMA_DISTRIBUTED_LOCK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/rdma/rdma_engine.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace nadino {

class DistributedLockService {
 public:
  using Granted = std::function<void()>;

  // `manager_core` is the CPU/DPU core that executes manager logic (lock
  // table updates); message transport rides the shared RDMA fabric.
  DistributedLockService(Env& env, RdmaNetwork* network, NodeId home,
                         FifoResource* manager_core);

  DistributedLockService(const DistributedLockService&) = delete;
  DistributedLockService& operator=(const DistributedLockService&) = delete;

  // Requests `lock_id` from `requester`; `granted` runs on grant delivery
  // back at the requester. FIFO fairness across waiters.
  void Acquire(NodeId requester, uint64_t lock_id, Granted granted);

  // Releases `lock_id`; the next waiter (if any) is granted.
  void Release(NodeId requester, uint64_t lock_id);

  // Opt-in holder-death recovery (off by default — the fig12 baseline models
  // a failure-free manager, and enabling this changes no default metrics).
  // Every grant arms a lease timer of `lease` at the manager. At expiry a
  // holder whose node is inside a node_partition window has its lock
  // force-released to the next waiter (the holder's own Release can never
  // arrive: the fabric drops every crossing to or from a partitioned node);
  // a live holder's lease is simply re-armed. Without this, a partitioned
  // holder wedges the lock — and every queued waiter — forever.
  void EnableLeaseRecovery(SimDuration lease);

  uint64_t acquires() const { return m_acquires_.value(); }
  uint64_t contended_acquires() const { return m_contended_.value(); }
  uint64_t lease_recoveries() const { return lease_ == 0 ? 0 : m_lease_recoveries_.value(); }

 private:
  struct LockState {
    bool held = false;
    NodeId holder = kInvalidNode;
    // Bumped on every grant; in-flight lease timers carry the epoch they were
    // armed under and ignore the lock once it has been re-granted since.
    uint64_t epoch = 0;
    std::deque<std::pair<NodeId, Granted>> waiters;
  };

  void ManagerAcquire(NodeId requester, uint64_t lock_id, Granted granted);
  void ManagerRelease(uint64_t lock_id);
  void Grant(NodeId requester, Granted granted);
  void GrantTo(LockState& state, uint64_t lock_id, NodeId requester, Granted granted);
  void ArmLease(uint64_t lock_id, uint64_t epoch);
  void LeaseCheck(uint64_t lock_id, uint64_t epoch);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  RdmaNetwork* network_;
  NodeId home_;
  FifoResource* manager_core_;
  std::map<uint64_t, LockState> locks_;
  SimDuration lease_ = 0;  // 0 = lease recovery disabled.
  // Registry-backed counters (labels: the manager's home node).
  // m_lease_recoveries_ is resolved lazily in EnableLeaseRecovery so that
  // default-configured services keep byte-identical metric snapshots.
  CounterHandle m_acquires_;
  CounterHandle m_contended_;
  CounterHandle m_lease_recoveries_;
};

}  // namespace nadino

#endif  // SRC_RDMA_DISTRIBUTED_LOCK_H_
