// NIC-resident WR-program interpreter (RedN-style offloaded chain dispatch).
//
// A WrProgramEngine sits between a node's RNIC completion queue and its
// network engine: linear chain hops compiled by ChainExecutor::OffloadChain
// are installed here as WR programs (verbs.h), and arriving chain requests
// that match an installed program are consumed *at the CQ* — the steering
// hook fires in NIC context, the hop's forwarding decision and payload
// transform execute as triggered/conditional WRs in the cost model
// (wrprog_trigger / wrprog_cond / the lowered compute dwell), and the next
// hop's SEND posts on a pre-established, ICM-pinned QP. No DPU or host core
// is occupied for an offloaded hop; that is the entire point.
//
// Fallback contract (DESIGN.md §3i): any reason a program cannot run a
// message — an injected wrprog_* drop, a dead or re-placed next hop, a QP in
// the error state, a response target on the local node — declines the
// message *before* consuming it, so the ordinary software path (DNE RX →
// IPC → ChainExecutor) delivers it instead. Counted, never lost, never hung.
// Because every forward preserves the incoming (src, request_id), a segment
// can drop to software at any hop and the per-tenant served/error counts
// still match the pure-software execution — the equivalence property
// tests/chain_offload_equivalence_test.cc pins.

#ifndef SRC_RDMA_WR_PROGRAM_H_
#define SRC_RDMA_WR_PROGRAM_H_

#include <cstdint>
#include <map>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/runtime/message_header.h"
#include "src/runtime/node.h"
#include "src/runtime/routing_table.h"
#include "src/rdma/verbs.h"

namespace nadino {

class FunctionRuntime;
class NetworkEngine;

class WrProgramEngine {
 public:
  // One hop of a lowered linear chain segment, as compiled by
  // ChainExecutor::OffloadChain.
  struct HopSpec {
    ChainId chain = 0;
    TenantId tenant = kInvalidTenant;
    FunctionId hop = kInvalidFunction;  // The function this program services.
    // The hop's application compute, lowered to a triggered-WR sequence of
    // equal modeled duration (RedN's Turing-completeness result); charged as
    // NIC latency, not core time. Hops whose compute cannot lower (fan-out,
    // data-dependent branching) are rejected by the compiler instead.
    SimDuration compute = 0;
    // Forward edge: the next hop, fixed at compile time. kInvalidFunction
    // marks the final hop, whose program responds to the incoming header's
    // src (resolved at runtime — the requester may be any client function).
    FunctionId next_fn = kInvalidFunction;
    NodeId next_node = kInvalidNode;
    uint32_t forward_payload = 0;  // Request bytes toward next_fn.
    // Final hop: response payload toward the original requester. Keyed by the
    // upstream src so a segment entered mid-chain (software fallback upstream)
    // answers with exactly the bytes that hop would have produced in
    // software; `response_payload` covers external (non-chain) requesters.
    uint32_t response_payload = 0;
    std::map<FunctionId, uint32_t> response_by_src;
  };

  struct Stats {
    uint64_t installed = 0;       // Programs currently installed.
    uint64_t offloaded_hops = 0;  // Messages consumed and forwarded on-NIC.
    uint64_t responses = 0;       // Final-hop responses issued on-NIC.
    uint64_t fallbacks = 0;       // Messages declined to the software path.
    uint64_t send_errors = 0;     // Program SENDs that completed with error.
  };

  // Installs the CQ steering hook on the node's RNIC. One engine per node.
  WrProgramEngine(Env& env, Node* node, NetworkEngine* engine, RoutingTable* routing);
  ~WrProgramEngine();

  WrProgramEngine(const WrProgramEngine&) = delete;
  WrProgramEngine& operator=(const WrProgramEngine&) = delete;

  // Lowers `spec` into a three-step WR program (conditional WAIT on the recv,
  // triggered transform dwell, triggered SEND), acquires + pins the egress QP
  // for forward hops, and arms the steering match. Returns false — nothing
  // installed — when the egress QP cannot be acquired now (the compiler
  // treats the segment as ineligible). `install_latency`, when non-null,
  // receives the modeled control-plane cost (WQE writes + doorbell).
  bool Install(const HopSpec& spec, SimDuration* install_latency = nullptr);

  void Uninstall(ChainId chain, FunctionId hop);

  // The compiled program for (chain, hop), or nullptr.
  const WrProgram* ProgramFor(ChainId chain, FunctionId hop) const;

  // Software-entry doorbell: runs the hop program for a request that arrived
  // via IPC rather than the wire (intra-node send, or a software fallback
  // upstream). Takes `buffer` from the function's ownership on success;
  // returns false — buffer untouched, caller proceeds in software — when no
  // program matches or runtime admission declines.
  bool Launch(FunctionRuntime& fn, Buffer* buffer, const MessageHeader& header);

  Stats stats() const;
  NodeId node() const;

 private:
  struct Installed {
    HopSpec spec;
    WrProgram program;
    QpNum qp = 0;  // Pinned egress QP (forward hops only).
  };

  static uint64_t Key(ChainId chain, FunctionId hop) {
    return (static_cast<uint64_t>(chain) << 32) | hop;
  }

  Installed* Find(ChainId chain, FunctionId hop);

  // The CompletionQueue steering hook: true = consumed by a program.
  bool Steer(const Completion& cqe);

  // Runtime admission: wrprog_* fault interception, next-hop liveness, QP
  // usability, response-target resolution. False = decline (fallback
  // counted); on success fills the egress coordinates and any fault-injected
  // extra latency.
  bool Admit(const Installed& in, const MessageHeader& header, NodeId* next_node, QpNum* qp,
             SimDuration* extra);

  // The committed hop execution: charges the NIC-side service latency, then
  // rewrites the header and posts the unsignaled SEND. `buffer` is
  // RNIC-owned from here until the send completion recycles it.
  void RunProgram(const Installed& in, Buffer* buffer, BufferPool* pool, MessageHeader header,
                  QpNum qp, SimDuration extra);

  // A program SEND that could not post (QP died between admission and fire):
  // hand the already-rewritten message to the engine's software TX path so
  // the request survives.
  void SoftwareForward(TenantId tenant, Buffer* buffer, BufferPool* pool);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  Node* node_;
  NetworkEngine* engine_;
  RoutingTable* routing_;
  std::map<uint64_t, Installed> installed_;
  uint64_t next_program_id_ = 1;
  // Program WRs live in their own id space so they can never collide with
  // the network engine's wr_ids inside the RNIC's pending-ACK table (the
  // engine and the programs share the tenant's pooled QPs).
  uint64_t next_wr_id_ = (1ULL << 62) + 1;
  // Registry-backed counters (labels: node). Resolved at construction — a
  // WrProgramEngine only exists when offload is enabled, so default runs
  // keep byte-identical metric snapshots.
  CounterHandle m_installed_;
  CounterHandle m_offloaded_;
  CounterHandle m_responses_;
  CounterHandle m_fallbacks_;
  CounterHandle m_send_errors_;
};

}  // namespace nadino

#endif  // SRC_RDMA_WR_PROGRAM_H_
