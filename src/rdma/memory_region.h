// Memory-region registration table for an RNIC.
//
// Before the RNIC may DMA into or out of a pool, the pool must be registered
// as a memory region with access flags (the DNE does this after importing the
// host pool via the cross-processor mmap, section 3.4.2). One-sided
// operations are validated against these flags; violations complete with
// kRemoteAccessError, mirroring real verbs semantics.

#ifndef SRC_RDMA_MEMORY_REGION_H_
#define SRC_RDMA_MEMORY_REGION_H_

#include <cstdint>
#include <map>

#include "src/core/types.h"
#include "src/mem/buffer_pool.h"
#include "src/rdma/verbs.h"

namespace nadino {

class MrTable {
 public:
  // Registers `pool` with the given access flags. Re-registration updates the
  // flags (used when tightening permissions in tests).
  void Register(BufferPool* pool, uint8_t access);

  void Deregister(PoolId pool);

  bool IsRegistered(PoolId pool) const { return regions_.count(pool) > 0; }

  // Returns the pool if registered with *all* of `required_access` bits, else
  // nullptr (counted as an access violation when required_access != 0).
  BufferPool* CheckAccess(PoolId pool, uint8_t required_access);

  uint64_t access_violations() const { return access_violations_; }
  size_t region_count() const { return regions_.size(); }

 private:
  struct Region {
    BufferPool* pool = nullptr;
    uint8_t access = kMrLocal;
  };

  std::map<PoolId, Region> regions_;
  uint64_t access_violations_ = 0;
};

}  // namespace nadino

#endif  // SRC_RDMA_MEMORY_REGION_H_
