#include "src/rdma/completion_queue.h"

namespace nadino {

void CompletionQueue::Push(const Completion& cqe) {
  ++total_;
  if (steering_ && steering_(cqe)) {
    ++steered_;
    return;
  }
  if (handler_) {
    handler_(cqe);
    return;
  }
  queue_.push_back(cqe);
}

size_t CompletionQueue::Poll(size_t max, std::vector<Completion>* out) {
  size_t n = 0;
  while (n < max && !queue_.empty()) {
    out->push_back(queue_.front());
    queue_.pop_front();
    ++n;
  }
  return n;
}

}  // namespace nadino
