#include "src/rdma/control_plane.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace nadino {

ConnectionService::ConnectionService(Env& env, RdmaEngine* local)
    : ConnectionService(env, local, Config{}) {}

ConnectionService::ConnectionService(Env& env, RdmaEngine* local, const Config& config)
    : env_(&env), local_(local), config_(config) {
  const MetricLabels labels = MetricLabels::Node(local->node());
  MetricsRegistry& reg = env_->metrics();
  m_connects_ = reg.ResolveCounter("connmgr_connects", labels);
  m_activations_ = reg.ResolveCounter("connmgr_activations", labels);
  m_deactivations_ = reg.ResolveCounter("connmgr_deactivations", labels);
  m_acquires_ = reg.ResolveCounter("connmgr_acquires", labels);
  m_repairs_ = reg.ResolveCounter("connmgr_repairs", labels);
  if (config_.instrument) {
    ExportInstrumentation();
  }
}

ConnectionService::ConnectionService(Env& env, RdmaEngine* local, int max_active_per_peer,
                                     uint32_t congestion_threshold)
    : ConnectionService(env, local, [&] {
        Config config;
        config.max_active_per_peer = max_active_per_peer;
        config.congestion_threshold = congestion_threshold;
        return config;
      }()) {}

void ConnectionService::Reconfigure(const Config& config) {
  config_ = config;
  if (config_.instrument) {
    ExportInstrumentation();
  }
}

void ConnectionService::ExportInstrumentation() {
  if (instrumented_) {
    return;
  }
  instrumented_ = true;
  MetricsRegistry& reg = env_->metrics();
  const MetricLabels labels = MetricLabels::Node(local_->node());
  // Lifecycle extensions: callbacks sample local_stats_ at snapshot time, so
  // a snapshot never lags the struct-local counters.
  reg.RegisterCallback("connsvc_establishes", labels,
                       [this] { return local_stats_.establishes; });
  reg.RegisterCallback("connsvc_destroys", labels, [this] { return local_stats_.destroys; });
  reg.RegisterCallback("connsvc_create_verbs", labels,
                       [this] { return local_stats_.create_verbs; });
  reg.RegisterCallback("connsvc_modify_verbs", labels,
                       [this] { return local_stats_.modify_verbs; });
  reg.RegisterCallback("connsvc_destroy_verbs", labels,
                       [this] { return local_stats_.destroy_verbs; });
  reg.RegisterCallback("connsvc_misses", labels, [this] { return local_stats_.misses; });
  // The RNIC QP-context (ICM) cache already exports rnic_qp_cache_* from
  // RdmaEngine's constructor — no second registration here.
}

ConnectionService::Stats ConnectionService::stats() const {
  Stats s = local_stats_;
  s.connects = m_connects_.value();
  s.activations = m_activations_.value();
  s.deactivations = m_deactivations_.value();
  s.acquires = m_acquires_.value();
  s.repairs = m_repairs_.value();
  return s;
}

SimDuration ConnectionService::SetupLatency(int count) const {
  const CostModel& cost = env_->cost();
  // One handshake round trip covers the batch (pipelined); the per-QP verb
  // chain — create, then the INIT -> RTR -> RTS modifies — serializes on the
  // issuing CPU (Swift's measured control-plane bottleneck).
  return cost.rc_connect_cost +
         count * (cost.qp_create_verb + 3 * cost.qp_modify_verb);
}

bool ConnectionService::PoolQp(const PoolKey& key, QpNum qp) {
  auto& pool = pools_[key];
  const bool active = static_cast<int>(pool.size()) < config_.max_active_per_peer;
  pool.push_back(Pooled{qp, active, false});
  qp_index_[qp] = key;
  if (active) {
    m_activations_.Increment();
  } else {
    local_->qp_cache().Evict(qp);
  }
  return active;
}

SimDuration ConnectionService::Prewarm(RdmaEngine* peer, TenantId tenant, int count,
                                       uint64_t stream) {
  const PoolKey key{peer->node(), tenant, EffectiveStream(stream)};
  for (int i = 0; i < count; ++i) {
    const auto [local_qp, remote_qp] = RdmaEngine::CreateConnectedPair(*local_, *peer, tenant);
    // Connection setup happens on the virtual clock but off the data path;
    // handshakes to the same peer pipeline rather than serialize.
    sim().Schedule(env_->cost().rc_connect_cost, [] {});
    m_connects_.Increment();
    PoolQp(key, local_qp);
    if (config_.policy == ConnectPolicy::kLazyShared) {
      const auto ps = peer_services_.find(peer->node());
      if (ps != peer_services_.end()) {
        ps->second->AdoptRemote(remote_qp, local_->node(), tenant);
      }
    }
  }
  if (count <= 0) {
    return 0;
  }
  local_stats_.create_verbs += static_cast<uint64_t>(count);
  local_stats_.modify_verbs += 3 * static_cast<uint64_t>(count);
  return SetupLatency(count);
}

ConnectionService::Acquired ConnectionService::Acquire(NodeId peer, TenantId tenant,
                                                       uint64_t stream) {
  m_acquires_.Increment();
  const PoolKey key{peer, tenant, EffectiveStream(stream)};
  const auto it = pools_.find(key);
  if (it == pools_.end() || it->second.empty()) {
    const AcquireMiss reason = establishing_.count(key) != 0 ? AcquireMiss::kEstablishing
                                                             : AcquireMiss::kNoPool;
    CountMiss(peer, tenant, reason);
    Acquired miss;
    miss.miss = reason;
    return miss;
  }
  auto& pool = it->second;
  Pooled* best = nullptr;
  uint32_t best_outstanding = std::numeric_limits<uint32_t>::max();
  Pooled* inactive = nullptr;
  int active_count = 0;
  for (Pooled& p : pool) {
    if (p.errored || local_->InError(p.qp)) {
      continue;  // Awaiting Repair().
    }
    if (!p.active) {
      if (inactive == nullptr) {
        inactive = &p;
      }
      continue;
    }
    ++active_count;
    const uint32_t outstanding = local_->Outstanding(p.qp);
    if (outstanding < best_outstanding) {
      best_outstanding = outstanding;
      best = &p;
    }
  }
  // All active connections congested: bring a shadow QP online if the active
  // bound allows (load-proportional activation, section 3.3).
  if ((best == nullptr || best_outstanding > config_.congestion_threshold) &&
      inactive != nullptr && active_count < config_.max_active_per_peer) {
    inactive->active = true;
    m_activations_.Increment();
    return {inactive->qp, env_->cost().qp_activate_cost, AcquireMiss::kNone};
  }
  if (best == nullptr) {
    // Nothing active yet (e.g. everything was deactivated): activate one.
    if (inactive != nullptr) {
      inactive->active = true;
      m_activations_.Increment();
      return {inactive->qp, env_->cost().qp_activate_cost, AcquireMiss::kNone};
    }
    CountMiss(peer, tenant, AcquireMiss::kAllErrored);
    Acquired miss;
    miss.miss = AcquireMiss::kAllErrored;
    return miss;
  }
  return {best->qp, 0, AcquireMiss::kNone};
}

void ConnectionService::CountMiss(NodeId peer, TenantId tenant, AcquireMiss reason) {
  ++local_stats_.misses;
  env_->Trace(TraceCategory::kRdma, local_->node(), "acquire_miss",
              static_cast<uint64_t>(tenant), static_cast<uint64_t>(reason));
  (void)peer;
  if (!instrumented_) {
    return;
  }
  auto it = miss_handles_.find(tenant);
  if (it == miss_handles_.end()) {
    MetricLabels labels = MetricLabels::Tenant(static_cast<int64_t>(tenant));
    labels.node = static_cast<int64_t>(local_->node());
    it = miss_handles_
             .emplace(tenant,
                      env_->metrics().ResolveCounter("connection_acquire_miss", labels))
             .first;
  }
  it->second.Increment();
}

bool ConnectionService::CanEstablish(NodeId peer, TenantId tenant) const {
  (void)tenant;
  if (config_.policy == ConnectPolicy::kEager) {
    return false;  // Eager misses stay terminal — the legacy contract.
  }
  return local_->network() != nullptr && local_->network()->EngineAt(peer) != nullptr;
}

void ConnectionService::EstablishThen(NodeId peer, TenantId tenant, uint64_t stream,
                                      ReadyFn ready) {
  const PoolKey key{peer, tenant, EffectiveStream(stream)};
  const auto pit = pools_.find(key);
  if (pit != pools_.end()) {
    for (const Pooled& p : pit->second) {
      if (!p.errored && !local_->InError(p.qp)) {
        ready(Acquire(peer, tenant, stream));
        return;
      }
    }
    // Pool exists but every QP is errored awaiting repair: fall through and
    // establish a fresh one so the caller resumes instead of being dropped.
  }
  const auto eit = establishing_.find(key);
  if (eit != establishing_.end()) {
    // Handshake already in flight for this key: queue behind it.
    eit->second.waiters.push_back(std::move(ready));
    return;
  }
  RdmaEngine* peer_engine =
      local_->network() == nullptr ? nullptr : local_->network()->EngineAt(peer);
  if (peer_engine == nullptr) {
    Acquired miss;
    miss.miss = AcquireMiss::kNoPool;
    ready(miss);
    return;
  }
  Establishment est;
  est.waiters.push_back(std::move(ready));
  establishing_.emplace(key, std::move(est));
  const int batch = std::max(1, config_.establish_batch);
  ++local_stats_.establishes;
  local_stats_.create_verbs += static_cast<uint64_t>(batch);
  local_stats_.modify_verbs += 3 * static_cast<uint64_t>(batch);
  env_->Trace(TraceCategory::kRdma, local_->node(), "establish",
              static_cast<uint64_t>(tenant), static_cast<uint64_t>(peer));
  sim().Schedule(SetupLatency(batch),
                 [this, key, peer_engine] { FinishEstablish(key, peer_engine); });
}

void ConnectionService::FinishEstablish(const PoolKey& key, RdmaEngine* peer_engine) {
  const auto eit = establishing_.find(key);
  if (eit == establishing_.end()) {
    return;  // DestroyTenant raced the handshake and already failed the waiters.
  }
  std::vector<ReadyFn> waiters = std::move(eit->second.waiters);
  establishing_.erase(eit);
  const auto [peer_node, tenant, stream] = key;
  const int batch = std::max(1, config_.establish_batch);
  for (int i = 0; i < batch; ++i) {
    const auto [local_qp, remote_qp] =
        RdmaEngine::CreateConnectedPair(*local_, *peer_engine, tenant);
    m_connects_.Increment();
    PoolQp(key, local_qp);
    if (config_.policy == ConnectPolicy::kLazyShared) {
      const auto ps = peer_services_.find(peer_node);
      if (ps != peer_services_.end()) {
        // Symmetric pooling: the remote half is a fully connected QP — hand
        // it to the peer's service so the reverse direction is warm without
        // a second handshake.
        ps->second->AdoptRemote(remote_qp, local_->node(), tenant);
      }
    }
  }
  for (ReadyFn& ready : waiters) {
    ready(Acquire(peer_node, tenant, stream));
  }
}

void ConnectionService::LinkPeer(NodeId peer_node, ConnectionService* peer_service) {
  peer_services_[peer_node] = peer_service;
}

void ConnectionService::AdoptRemote(QpNum qp, NodeId initiator, TenantId tenant) {
  if (qp_index_.count(qp) != 0 || destroyed_qps_.count(qp) != 0) {
    return;
  }
  const PoolKey key{initiator, tenant, 0};  // Shared pools collapse to stream 0.
  PoolQp(key, qp);
}

void ConnectionService::NoteIdle(QpNum qp) {
  const auto idx = qp_index_.find(qp);
  if (idx == qp_index_.end()) {
    return;
  }
  auto& pool = pools_[idx->second];
  int active_count = 0;
  for (const Pooled& p : pool) {
    active_count += p.active ? 1 : 0;
  }
  if (active_count <= config_.max_active_per_peer) {
    return;  // Within bounds; keep it warm.
  }
  for (Pooled& p : pool) {
    if (p.qp == qp && p.active && local_->Outstanding(qp) == 0) {
      p.active = false;
      local_->qp_cache().Evict(qp);
      m_deactivations_.Increment();
      return;
    }
  }
}

void ConnectionService::NoteTransportError(QpNum qp) {
  if (config_.policy == ConnectPolicy::kEager) {
    return;  // Legacy behavior: errors stay counted-not-hung, no repair cycle.
  }
  const auto idx = qp_index_.find(qp);
  if (idx == qp_index_.end()) {
    return;
  }
  for (Pooled& p : pools_[idx->second]) {
    if (p.qp == qp) {
      if (p.errored || repairing_.count(qp) != 0) {
        return;  // Repair already pending.
      }
      p.errored = true;
      Repair(qp);
      return;
    }
  }
}

void ConnectionService::Repair(QpNum qp, RdmaEngine* peer) {
  const auto idx = qp_index_.find(qp);
  if (idx == qp_index_.end()) {
    return;
  }
  if (!repairing_.insert(qp).second) {
    return;  // Coalesce re-entrant repairs of the same QP.
  }
  m_repairs_.Increment();
  if (peer == nullptr && local_->network() != nullptr) {
    peer = local_->network()->EngineAt(local_->RemoteNodeOfQp(qp));
  }
  const QpNum remote_qp = local_->RemoteQpOf(qp);
  // The handshake runs off the data path; the QP re-enters service when it
  // completes (real recovery resyncs the peer's QP state too).
  sim().Schedule(env_->cost().rc_connect_cost, [this, qp, peer, remote_qp] {
    repairing_.erase(qp);
    local_->ResetQp(qp);
    if (peer != nullptr && remote_qp != 0) {
      peer->ResetQp(remote_qp);
    }
    const auto idx2 = qp_index_.find(qp);
    if (idx2 == qp_index_.end()) {
      return;  // Destroyed while the repair was in flight.
    }
    for (Pooled& p : pools_[idx2->second]) {
      if (p.qp == qp) {
        p.errored = false;
        return;
      }
    }
  });
}

SimDuration ConnectionService::DestroyTenant(TenantId tenant) {
  uint64_t destroyed = 0;
  for (auto it = pools_.begin(); it != pools_.end();) {
    if (std::get<1>(it->first) != tenant) {
      ++it;
      continue;
    }
    for (const Pooled& p : it->second) {
      local_->qp_cache().Evict(p.qp);
      local_->DestroyQp(p.qp);
      destroyed_qps_.insert(p.qp);
      qp_index_.erase(p.qp);
      repairing_.erase(p.qp);
      ++destroyed;
    }
    it = pools_.erase(it);
  }
  // Fail establishment waiters for the departing tenant — their handshakes
  // will land on a retired key and no-op.
  for (auto it = establishing_.begin(); it != establishing_.end();) {
    if (std::get<1>(it->first) != tenant) {
      ++it;
      continue;
    }
    std::vector<ReadyFn> waiters = std::move(it->second.waiters);
    it = establishing_.erase(it);
    Acquired miss;
    miss.miss = AcquireMiss::kNoPool;
    for (ReadyFn& ready : waiters) {
      ready(miss);
    }
  }
  if (destroyed == 0) {
    return 0;
  }
  local_stats_.destroys += destroyed;
  local_stats_.destroy_verbs += destroyed;
  env_->Trace(TraceCategory::kRdma, local_->node(), "destroy_tenant",
              static_cast<uint64_t>(tenant), destroyed);
  // Destroy verbs serialize on the issuing CPU; the ICM reclaim elapses on
  // the virtual clock off the data path, like Prewarm's handshakes.
  const SimDuration latency =
      static_cast<SimDuration>(destroyed) * env_->cost().qp_destroy_verb;
  sim().Schedule(latency, [] {});
  return latency;
}

void ConnectionService::QuiescePeer(NodeId peer) {
  for (auto& [key, pool] : pools_) {
    if (std::get<0>(key) != peer) {
      continue;
    }
    for (Pooled& p : pool) {
      if (p.active && local_->Outstanding(p.qp) == 0) {
        p.active = false;
        local_->qp_cache().Evict(p.qp);
        m_deactivations_.Increment();
      }
    }
  }
}

QpLifecycle ConnectionService::LifecycleOf(QpNum qp) const {
  if (destroyed_qps_.count(qp) != 0) {
    return QpLifecycle::kDestroyed;
  }
  const auto idx = qp_index_.find(qp);
  if (idx == qp_index_.end()) {
    return QpLifecycle::kAbsent;
  }
  const auto pit = pools_.find(idx->second);
  if (pit != pools_.end()) {
    for (const Pooled& p : pit->second) {
      if (p.qp == qp) {
        return p.active ? QpLifecycle::kActive : QpLifecycle::kShadow;
      }
    }
  }
  return QpLifecycle::kAbsent;
}

QpLifecycle ConnectionService::StateOf(NodeId peer, TenantId tenant, uint64_t stream) const {
  const PoolKey key{peer, tenant, EffectiveStream(stream)};
  if (establishing_.count(key) != 0) {
    return QpLifecycle::kEstablishing;
  }
  const auto pit = pools_.find(key);
  if (pit == pools_.end() || pit->second.empty()) {
    return QpLifecycle::kAbsent;
  }
  for (const Pooled& p : pit->second) {
    if (p.active) {
      return QpLifecycle::kActive;
    }
  }
  return QpLifecycle::kShadow;
}

int ConnectionService::ActiveCount(NodeId peer, TenantId tenant, uint64_t stream) const {
  const auto it = pools_.find(PoolKey{peer, tenant, EffectiveStream(stream)});
  if (it == pools_.end()) {
    return 0;
  }
  int n = 0;
  for (const Pooled& p : it->second) {
    n += p.active ? 1 : 0;
  }
  return n;
}

int ConnectionService::PooledCount(NodeId peer, TenantId tenant, uint64_t stream) const {
  const auto it = pools_.find(PoolKey{peer, tenant, EffectiveStream(stream)});
  return it == pools_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace nadino
