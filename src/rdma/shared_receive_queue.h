// Per-tenant shared receive queue.
//
// Paper section 3.3: to reduce QP memory footprint, all of a tenant's RC QPs
// on a node share a single RQ, posted with buffers from that tenant's private
// memory pool — so the RNIC always delivers incoming data into the right
// tenant's pool. Buffers posted here are owned by the RNIC until consumed.
//
// Each posted buffer carries the receiver's work-request id; the recv
// completion reports that id (standard verbs semantics), which the DNE's
// receive-buffer registry uses to find the descriptor (section 3.5.2).

#ifndef SRC_RDMA_SHARED_RECEIVE_QUEUE_H_
#define SRC_RDMA_SHARED_RECEIVE_QUEUE_H_

#include <cstdint>
#include <deque>

#include "src/core/types.h"
#include "src/mem/buffer.h"

namespace nadino {

class SharedReceiveQueue {
 public:
  struct PostedRecv {
    Buffer* buffer = nullptr;
    uint64_t wr_id = 0;
  };

  explicit SharedReceiveQueue(TenantId tenant) : tenant_(tenant) {}

  // Posts a receive buffer under the receiver-chosen `wr_id`. The buffer must
  // already be owned by the RNIC and belong to this tenant's pool; returns
  // false (and counts the violation) otherwise.
  bool Post(Buffer* buffer, uint64_t wr_id, NodeId rnic_node);

  // Pops the oldest posted buffer; {nullptr, 0} if empty (RNR condition).
  PostedRecv Pop();

  TenantId tenant() const { return tenant_; }
  size_t depth() const { return queue_.size(); }
  uint64_t posted() const { return posted_; }
  uint64_t consumed() const { return consumed_; }
  uint64_t post_violations() const { return post_violations_; }

 private:
  TenantId tenant_;
  std::deque<PostedRecv> queue_;
  uint64_t posted_ = 0;
  uint64_t consumed_ = 0;
  uint64_t post_violations_ = 0;
};

}  // namespace nadino

#endif  // SRC_RDMA_SHARED_RECEIVE_QUEUE_H_
