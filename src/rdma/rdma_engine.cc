#include "src/rdma/rdma_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <utility>

namespace nadino {

void RdmaNetwork::Attach(RdmaEngine* engine) {
  fabric_.AttachNode(engine->node());
  engines_[engine->node()] = engine;
}

RdmaEngine* RdmaNetwork::EngineAt(NodeId node) const {
  const auto it = engines_.find(node);
  return it == engines_.end() ? nullptr : it->second;
}

RdmaEngine::RdmaEngine(Env& env, NodeId node, RdmaNetwork* network)
    : env_(&env),
      node_(node),
      network_(network),
      tx_pipe_(&env.sim(), "rnic_tx:" + std::to_string(node)),
      rx_pipe_(&env.sim(), "rnic_rx:" + std::to_string(node)),
      qp_cache_(env.cost().rnic_qp_cache_entries) {
  network_->Attach(this);
  MetricsRegistry& m = env_->metrics();
  const MetricLabels labels = MetricLabels::Node(node_);
  m_sends_ = m.ResolveCounter("rnic_sends", labels);
  m_writes_ = m.ResolveCounter("rnic_writes", labels);
  m_reads_ = m.ResolveCounter("rnic_reads", labels);
  m_recv_completions_ = m.ResolveCounter("rnic_recv_completions", labels);
  m_rnr_events_ = m.ResolveCounter("rnic_rnr_events", labels);
  m_rnr_failures_ = m.ResolveCounter("rnic_rnr_failures", labels);
  m_bytes_tx_ = m.ResolveCounter("rnic_bytes_tx", labels);
  m_bytes_rx_ = m.ResolveCounter("rnic_bytes_rx", labels);
  m_oblivious_overwrites_ = m.ResolveCounter("rnic_oblivious_overwrites", labels);
  // RNIC ICM-cache behaviour surfaces through the registry too (sections
  // 2.1/3.3): sampled at snapshot time from the cache's own counters.
  m.RegisterCallback("rnic_qp_cache_hits", labels, [this]() { return qp_cache_.hits(); });
  m.RegisterCallback("rnic_qp_cache_misses", labels, [this]() { return qp_cache_.misses(); });
  m.RegisterCallback("rnic_qp_cache_resident", labels,
                     [this]() { return static_cast<uint64_t>(qp_cache_.resident()); });
}

CounterHandle& RdmaEngine::AckTimeoutHandleFor(TenantId tenant) {
  const auto it = ack_timeout_handles_.find(tenant);
  if (it != ack_timeout_handles_.end()) {
    return it->second;
  }
  // Created lazily on the first timeout so unfaulted runs keep byte-identical
  // snapshots; resolved once per (node, tenant), bumped through the handle.
  MetricLabels labels = MetricLabels::Node(node_);
  if (tenant != kInvalidTenant) {
    labels.tenant = static_cast<int64_t>(tenant);
  }
  const CounterHandle handle = env_->metrics().ResolveCounter("rnic_ack_timeouts", labels);
  return ack_timeout_handles_.emplace(tenant, handle).first->second;
}

RdmaEngine::Stats RdmaEngine::stats() const {
  Stats s;
  s.sends = m_sends_.value();
  s.writes = m_writes_.value();
  s.reads = m_reads_.value();
  s.recv_completions = m_recv_completions_.value();
  s.rnr_events = m_rnr_events_.value();
  s.rnr_failures = m_rnr_failures_.value();
  s.bytes_tx = m_bytes_tx_.value();
  s.bytes_rx = m_bytes_rx_.value();
  s.oblivious_overwrites = m_oblivious_overwrites_.value();
  return s;
}

QpNum RdmaEngine::CreateQp(TenantId tenant) {
  // Globally unique QP numbers (node in the high bits), as on real fabrics.
  const QpNum qp = (node_ << 20) | next_qp_++;
  qps_[qp] = RcQp{qp, tenant, kInvalidNode, 0, false, 0};
  return qp;
}

bool RdmaEngine::Connect(QpNum local_qp, NodeId remote_node, QpNum remote_qp) {
  RcQp* qp = FindQp(local_qp);
  if (qp == nullptr || network_->EngineAt(remote_node) == nullptr) {
    return false;
  }
  qp->remote_node = remote_node;
  qp->remote_qp = remote_qp;
  qp->connected = true;
  return true;
}

std::pair<QpNum, QpNum> RdmaEngine::CreateConnectedPair(RdmaEngine& a, RdmaEngine& b,
                                                        TenantId tenant) {
  const QpNum qa = a.CreateQp(tenant);
  const QpNum qb = b.CreateQp(tenant);
  a.Connect(qa, b.node(), qb);
  b.Connect(qb, a.node(), qa);
  return {qa, qb};
}

SharedReceiveQueue& RdmaEngine::SrqOfTenant(TenantId tenant) {
  auto& slot = srqs_[tenant];
  if (!slot) {
    slot = std::make_unique<SharedReceiveQueue>(tenant);
  }
  return *slot;
}

bool RdmaEngine::PostRecvBuffer(BufferPool* pool, Buffer* buffer, OwnerId from,
                                uint64_t wr_id) {
  if (pool == nullptr || buffer == nullptr) {
    return false;
  }
  if (!pool->Transfer(buffer, from, OwnerId::Rnic(node_))) {
    return false;
  }
  if (!SrqOfTenant(pool->tenant()).Post(buffer, wr_id, node_)) {
    // Roll the ownership back so the caller still holds the buffer.
    pool->Transfer(buffer, OwnerId::Rnic(node_), from);
    return false;
  }
  return true;
}

RdmaEngine::RcQp* RdmaEngine::FindQp(QpNum qp) {
  const auto it = qps_.find(qp);
  return it == qps_.end() ? nullptr : &it->second;
}

const RdmaEngine::RcQp* RdmaEngine::FindQp(QpNum qp) const {
  const auto it = qps_.find(qp);
  return it == qps_.end() ? nullptr : &it->second;
}

uint32_t RdmaEngine::Outstanding(QpNum qp) const {
  const RcQp* q = FindQp(qp);
  return q == nullptr ? 0 : q->outstanding;
}

TenantId RdmaEngine::TenantOfQp(QpNum qp) const {
  const RcQp* q = FindQp(qp);
  return q == nullptr ? kInvalidTenant : q->tenant;
}

bool RdmaEngine::InError(QpNum qp) const {
  const RcQp* q = FindQp(qp);
  return q != nullptr && q->in_error;
}

void RdmaEngine::ResetQp(QpNum qp) {
  RcQp* q = FindQp(qp);
  if (q != nullptr) {
    q->in_error = false;
    q->outstanding = 0;
  }
}

NodeId RdmaEngine::RemoteNodeOfQp(QpNum qp) const {
  const RcQp* q = FindQp(qp);
  return q == nullptr ? kInvalidNode : q->remote_node;
}

QpNum RdmaEngine::RemoteQpOf(QpNum qp) const {
  const RcQp* q = FindQp(qp);
  return q == nullptr ? 0 : q->remote_qp;
}

void RdmaEngine::DestroyQp(QpNum qp) {
  qp_cache_.Evict(qp);
  qps_.erase(qp);
}

uint64_t RdmaEngine::TenantBytesTx(TenantId tenant) const {
  const auto it = tenant_bytes_tx_.find(tenant);
  return it == tenant_bytes_tx_.end() ? 0 : it->second;
}

SimDuration RdmaEngine::QpTouchCost(QpNum qp) {
  return qp_cache_.Touch(qp) ? 0 : env_->cost().rnic_qp_cache_miss;
}

void RdmaEngine::Transmit(Packet pkt, SimDuration extra_cost) {
  // kRnicTx fault site: WRs leaving this RNIC. ACKs and read responses are
  // exempt — they are generated on behalf of a remote request, and losing
  // them would hang the requester instead of failing it cleanly.
  const bool interceptable = pkt.kind == Packet::Kind::kSend ||
                             pkt.kind == Packet::Kind::kWrite ||
                             pkt.kind == Packet::Kind::kReadReq;
  if (interceptable) {
    // Armed before fault interception: the synthesized drop-ACK below
    // resolves the entry just like a real one.
    ArmAckTimeout(pkt);
    const FaultDecision fault =
        env_->faults().Intercept(FaultSite::kRnicTx, FaultScope{pkt.tenant, node_},
                                 pkt.payload.data(), pkt.payload.size());
    switch (fault.action) {
      case FaultAction::kDrop: {
        // The WR dies in the TX pipeline. Synthesize the local error
        // completion RC delivers after retry exhaustion so the poster is
        // failed, not hung: outstanding is decremented and the CQE carries
        // kTransportError (the QP stays usable — see verbs.h).
        Packet ack;
        ack.kind = Packet::Kind::kAck;
        ack.src = pkt.dst;
        ack.dst = node_;
        ack.src_qp = pkt.dst_qp;
        ack.dst_qp = pkt.src_qp;
        ack.tenant = pkt.tenant;
        ack.wr_id = pkt.wr_id;
        ack.imm = pkt.imm;
        ack.acked_op = pkt.kind == Packet::Kind::kSend    ? RdmaOpcode::kSend
                       : pkt.kind == Packet::Kind::kWrite ? RdmaOpcode::kWrite
                                                          : RdmaOpcode::kRead;
        ack.status = WrStatus::kTransportError;
        if (pkt.kind == Packet::Kind::kReadReq) {
          pending_reads_.erase(pkt.wr_id);
        }
        sim().Schedule(env_->cost().rnic_rnr_backoff,
                       [this, ack]() { HandleAck(ack); });
        return;
      }
      case FaultAction::kDelay:
        extra_cost += fault.delay;
        break;
      case FaultAction::kDuplicate:
        EnqueueTx(pkt, extra_cost);  // Extra copy; receive paths are idempotent.
        break;
      default:
        break;  // kPass, or kCorrupt (payload already flipped in place).
    }
  }
  EnqueueTx(std::move(pkt), extra_cost);
}

void RdmaEngine::EnqueueTx(Packet pkt, SimDuration extra_cost) {
  const uint64_t bytes = pkt.payload.size();
  SimDuration service = extra_cost;
  if (pkt.kind == Packet::Kind::kAck) {
    service += 100;  // ACK generation is nearly free in the NIC pipeline.
  } else {
    service += env_->cost().rnic_wr_tx +
               static_cast<SimDuration>(static_cast<double>(bytes) * env_->cost().rnic_per_byte_ns);
  }
  m_bytes_tx_.Add(bytes);
  if (pkt.tenant != kInvalidTenant && pkt.kind != Packet::Kind::kAck) {
    const auto [it, inserted] = tenant_bytes_tx_.try_emplace(pkt.tenant, 0);
    if (inserted) {
      // First traffic for this tenant: expose its fairness accounting
      // (Figs. 15/17 read per-tenant egress from the registry).
      MetricLabels labels = MetricLabels::Node(node_);
      labels.tenant = static_cast<int64_t>(pkt.tenant);
      env_->metrics().RegisterCallback("rnic_tenant_bytes_tx", labels,
                                       [this, tenant = pkt.tenant]() {
                                         return TenantBytesTx(tenant);
                                       });
    }
    it->second += bytes + kWireHeaderBytes;
  }
  tx_pipe_.Submit(service, [this, pkt = std::move(pkt)]() mutable {
    const NodeId dst = pkt.dst;
    const TenantId tenant = pkt.tenant;
    const uint64_t wire_bytes = pkt.payload.size();
    auto* network = network_;
    network->fabric().Send(
        node_, dst, wire_bytes,
        [network, dst, pkt = std::move(pkt)]() mutable {
          RdmaEngine* peer = network->EngineAt(dst);
          assert(peer != nullptr);
          peer->DeliverFromWire(std::move(pkt));
        },
        tenant);
  });
}

bool RdmaEngine::PostWr(QpNum qp, const WorkRequest& wr, WrCompletionHook on_complete) {
  RcQp* q = FindQp(qp);
  if (q == nullptr || !q->connected) {
    return false;
  }
  Packet pkt;
  pkt.src = node_;
  pkt.dst = q->remote_node;
  pkt.src_qp = qp;
  pkt.dst_qp = q->remote_qp;
  pkt.tenant = q->tenant;
  pkt.wr_id = wr.wr_id;
  pkt.imm = wr.imm;
  switch (wr.opcode) {
    case RdmaOpcode::kSend:
      if (q->in_error || wr.src == nullptr) {
        return false;
      }
      pkt.kind = Packet::Kind::kSend;
      // DMA read of the source buffer happens at post time; the sender must
      // not touch the buffer again until the completion (ownership rules
      // enforce it).
      pkt.payload.assign(wr.src->payload().begin(), wr.src->payload().end());
      m_sends_.Increment();
      break;
    case RdmaOpcode::kWrite:
      if (wr.src == nullptr) {
        return false;
      }
      pkt.kind = Packet::Kind::kWrite;
      pkt.remote_pool = wr.remote_pool;
      pkt.remote_index = wr.remote_index;
      pkt.payload.assign(wr.src->payload().begin(), wr.src->payload().end());
      m_writes_.Increment();
      break;
    case RdmaOpcode::kRead:
      if (wr.dst == nullptr) {
        return false;
      }
      pkt.kind = Packet::Kind::kReadReq;
      pkt.remote_pool = wr.remote_pool;
      pkt.remote_index = wr.remote_index;
      pkt.read_len = wr.read_len;
      // Stash where the response lands via wr_id -> caller keeps dst alive;
      // the destination pointer lives in a side table keyed by wr_id.
      pending_reads_[wr.wr_id] = wr.dst;
      m_reads_.Increment();
      break;
    case RdmaOpcode::kRecv:
      return false;  // Receives are posted via PostRecvBuffer, not as WRs.
  }
  ++q->outstanding;
  // ArmAckTimeout (synchronous, inside Transmit) claims these into the
  // PendingAck entry for this WR.
  posting_hook_ = std::move(on_complete);
  posting_signaled_ = wr.signaled;
  Transmit(std::move(pkt), QpTouchCost(qp));
  posting_hook_ = nullptr;
  posting_signaled_ = true;
  return true;
}

bool RdmaEngine::PostSend(QpNum qp, const Buffer& src, uint64_t wr_id, uint32_t imm) {
  WorkRequest wr;
  wr.opcode = RdmaOpcode::kSend;
  wr.wr_id = wr_id;
  wr.imm = imm;
  wr.src = &src;
  return PostWr(qp, wr);
}

bool RdmaEngine::PostWrite(QpNum qp, const Buffer& src, PoolId remote_pool, uint32_t remote_index,
                           uint64_t wr_id, uint32_t imm) {
  WorkRequest wr;
  wr.opcode = RdmaOpcode::kWrite;
  wr.wr_id = wr_id;
  wr.imm = imm;
  wr.src = &src;
  wr.remote_pool = remote_pool;
  wr.remote_index = remote_index;
  return PostWr(qp, wr);
}

bool RdmaEngine::PostRead(QpNum qp, Buffer* dst, PoolId remote_pool, uint32_t remote_index,
                          uint32_t len, uint64_t wr_id) {
  WorkRequest wr;
  wr.opcode = RdmaOpcode::kRead;
  wr.wr_id = wr_id;
  wr.dst = dst;
  wr.remote_pool = remote_pool;
  wr.remote_index = remote_index;
  wr.read_len = len;
  return PostWr(qp, wr);
}

void RdmaEngine::DeliverFromWire(Packet pkt) {
  // kRnicRx fault site: packets entering this RNIC. Only payload-carrying
  // requests are interceptable; dropping an ACK / read response would hang
  // the peer's WR rather than fail it.
  SimDuration rx_fault_delay = 0;
  if (pkt.kind == Packet::Kind::kSend || pkt.kind == Packet::Kind::kWrite) {
    const FaultDecision fault =
        env_->faults().Intercept(FaultSite::kRnicRx, FaultScope{pkt.tenant, node_},
                                 pkt.payload.data(), pkt.payload.size());
    switch (fault.action) {
      case FaultAction::kDrop:
        // Lost in the RX pipeline: NACK the sender so its WR completes with
        // an error and its buffer is recycled — dropped, counted, not hung.
        SendAck(pkt, pkt.kind == Packet::Kind::kSend ? RdmaOpcode::kSend : RdmaOpcode::kWrite,
                WrStatus::kTransportError, 0);
        return;
      case FaultAction::kDelay:
        rx_fault_delay = fault.delay;
        break;
      case FaultAction::kDuplicate: {
        Packet copy = pkt;
        DeliverReceived(std::move(copy), 0);
        break;
      }
      default:
        break;  // kPass / kCorrupt (payload flipped in place; checksums catch).
    }
  }
  DeliverReceived(std::move(pkt), rx_fault_delay);
}

void RdmaEngine::DeliverReceived(Packet pkt, SimDuration extra_cost) {
  SimDuration service = extra_cost;
  switch (pkt.kind) {
    case Packet::Kind::kAck:
      service += 100;
      break;
    case Packet::Kind::kReadReq:
      service += env_->cost().rnic_wr_rx;
      break;
    default:
      service += env_->cost().rnic_wr_rx + static_cast<SimDuration>(
                                        static_cast<double>(pkt.payload.size()) *
                                        env_->cost().rnic_per_byte_ns);
      break;
  }
  service += QpTouchCost(pkt.dst_qp);
  rx_pipe_.Submit(service, [this, pkt = std::move(pkt)]() mutable {
    m_bytes_rx_.Add(pkt.payload.size());
    switch (pkt.kind) {
      case Packet::Kind::kSend:
        HandleSend(std::move(pkt));
        break;
      case Packet::Kind::kWrite:
        HandleWrite(std::move(pkt));
        break;
      case Packet::Kind::kAck:
        HandleAck(pkt);
        break;
      case Packet::Kind::kReadReq:
        HandleReadReq(std::move(pkt));
        break;
      case Packet::Kind::kReadResp:
        HandleReadResp(std::move(pkt));
        break;
    }
  });
}

void RdmaEngine::HandleSend(Packet pkt) {
  SharedReceiveQueue& srq = SrqOfTenant(pkt.tenant);
  const SharedReceiveQueue::PostedRecv recv = srq.Pop();
  Buffer* buffer = recv.buffer;
  if (buffer == nullptr) {
    // Receiver not ready: back off and retry delivery, as RC RNR NAK does.
    m_rnr_events_.Increment();
    if (++pkt.rnr_attempts > kMaxRnrRetries) {
      m_rnr_failures_.Increment();
      SendAck(pkt, RdmaOpcode::kSend, WrStatus::kRnrRetryExceeded, 0);
      return;
    }
    sim().Schedule(env_->cost().rnic_rnr_backoff,
                   [this, pkt = std::move(pkt)]() mutable { HandleSend(std::move(pkt)); });
    return;
  }
  const auto len =
      static_cast<uint32_t>(std::min(pkt.payload.size(), buffer->data.size()));
  std::memcpy(buffer->data.data(), pkt.payload.data(), len);  // The DMA write.
  buffer->length = len;
  m_recv_completions_.Increment();
  SendAck(pkt, RdmaOpcode::kSend, WrStatus::kSuccess, len);
  Completion cqe;
  cqe.wr_id = recv.wr_id;  // The *receiver's* posted WR id, per verbs semantics.
  cqe.opcode = RdmaOpcode::kRecv;
  cqe.status = WrStatus::kSuccess;
  cqe.byte_len = len;
  cqe.qp = pkt.dst_qp;
  cqe.tenant = pkt.tenant;
  cqe.src_node = pkt.src;
  cqe.buffer = buffer;
  cqe.imm = pkt.imm;
  cq_.Push(cqe);
}

void RdmaEngine::HandleWrite(Packet pkt) {
  BufferPool* pool = mr_table_.CheckAccess(pkt.remote_pool, kMrRemoteWrite);
  Buffer* buffer = pool == nullptr ? nullptr : pool->Resolve(BufferDescriptor{
                                                   pkt.remote_pool, pkt.remote_index, 0, 0});
  if (buffer == nullptr) {
    SendAck(pkt, RdmaOpcode::kWrite, WrStatus::kRemoteAccessError, 0);
    return;
  }
  if (buffer->owner.kind == OwnerId::Kind::kFunction) {
    // The receiver-oblivious hazard (section 2.1): the writer cannot know a
    // local function currently owns this buffer. The write proceeds anyway —
    // exactly the data race one-sided RDMA permits.
    m_oblivious_overwrites_.Increment();
  }
  const auto len =
      static_cast<uint32_t>(std::min(pkt.payload.size(), buffer->data.size()));
  std::memcpy(buffer->data.data(), pkt.payload.data(), len);
  buffer->length = len;
  // No receiver CQE for one-sided writes; only the sender learns.
  SendAck(pkt, RdmaOpcode::kWrite, WrStatus::kSuccess, len);
  const auto hook_it = write_hooks_.find(pkt.remote_pool);
  if (hook_it != write_hooks_.end()) {
    hook_it->second(buffer, pkt.remote_index);
  }
}

void RdmaEngine::SetWriteArrivalHook(PoolId pool, WriteArrivalHook hook) {
  write_hooks_[pool] = std::move(hook);
}

void RdmaEngine::HandleAck(const Packet& pkt) {
  const auto it = pending_acks_.find(AckKey{pkt.dst_qp, pkt.wr_id});
  if (it == pending_acks_.end()) {
    // The WR already completed locally (ack timeout) or this is the ACK of
    // an injected duplicate: the poster must see exactly one completion.
    return;
  }
  const PendingAck info = std::move(it->second);
  pending_acks_.erase(it);
  RcQp* q = FindQp(pkt.dst_qp);
  if (q != nullptr && q->outstanding > 0) {
    --q->outstanding;
  }
  if (q != nullptr && pkt.status == WrStatus::kRnrRetryExceeded) {
    // Transport error: the QP transitions to the error state (RC semantics);
    // further posts fail until the connection is repaired.
    q->in_error = true;
  }
  Completion cqe;
  cqe.wr_id = pkt.wr_id;
  cqe.opcode = pkt.acked_op;
  cqe.status = pkt.status;
  cqe.byte_len = pkt.read_len;
  cqe.qp = pkt.dst_qp;
  cqe.tenant = pkt.tenant;
  cqe.src_node = pkt.src;
  cqe.imm = pkt.imm;
  DeliverWrCompletion(info, cqe);
}

void RdmaEngine::HandleReadReq(Packet pkt) {
  BufferPool* pool = mr_table_.CheckAccess(pkt.remote_pool, kMrRemoteRead);
  Buffer* buffer = pool == nullptr ? nullptr : pool->Resolve(BufferDescriptor{
                                                   pkt.remote_pool, pkt.remote_index, 0, 0});
  Packet resp;
  resp.kind = Packet::Kind::kReadResp;
  resp.src = node_;
  resp.dst = pkt.src;
  resp.src_qp = pkt.dst_qp;
  resp.dst_qp = pkt.src_qp;
  resp.tenant = pkt.tenant;
  resp.wr_id = pkt.wr_id;
  if (buffer == nullptr) {
    resp.status = WrStatus::kRemoteAccessError;
  } else {
    const auto len = static_cast<uint32_t>(
        std::min<size_t>(pkt.read_len, buffer->data.size()));
    resp.payload.assign(buffer->data.begin(), buffer->data.begin() + len);
  }
  Transmit(std::move(resp));
}

void RdmaEngine::HandleReadResp(Packet pkt) {
  const auto ack_it = pending_acks_.find(AckKey{pkt.dst_qp, pkt.wr_id});
  if (ack_it == pending_acks_.end()) {
    return;  // Already completed locally by the ack timeout.
  }
  const PendingAck info = std::move(ack_it->second);
  pending_acks_.erase(ack_it);
  RcQp* q = FindQp(pkt.dst_qp);
  if (q != nullptr && q->outstanding > 0) {
    --q->outstanding;
  }
  uint32_t len = 0;
  const auto it = pending_reads_.find(pkt.wr_id);
  if (it != pending_reads_.end() && pkt.status == WrStatus::kSuccess) {
    Buffer* dst = it->second;
    len = static_cast<uint32_t>(std::min(pkt.payload.size(), dst->data.size()));
    std::memcpy(dst->data.data(), pkt.payload.data(), len);
    dst->length = len;
  }
  if (it != pending_reads_.end()) {
    pending_reads_.erase(it);
  }
  Completion cqe;
  cqe.wr_id = pkt.wr_id;
  cqe.opcode = RdmaOpcode::kRead;
  cqe.status = pkt.status;
  cqe.byte_len = len;
  cqe.qp = pkt.dst_qp;
  cqe.tenant = pkt.tenant;
  cqe.src_node = pkt.src;
  DeliverWrCompletion(info, cqe);
}

void RdmaEngine::ArmAckTimeout(const Packet& pkt) {
  const AckKey key{pkt.src_qp, pkt.wr_id};
  PendingAck info;
  info.op = pkt.kind == Packet::Kind::kSend    ? RdmaOpcode::kSend
            : pkt.kind == Packet::Kind::kWrite ? RdmaOpcode::kWrite
                                               : RdmaOpcode::kRead;
  info.tenant = pkt.tenant;
  info.dst = pkt.dst;
  info.imm = pkt.imm;
  info.signaled = posting_signaled_;
  info.hook = std::move(posting_hook_);
  pending_acks_[key] = std::move(info);
  sim().Schedule(env_->cost().rnic_ack_timeout, [this, key]() { OnAckTimeout(key); });
}

void RdmaEngine::OnAckTimeout(AckKey key) {
  const auto it = pending_acks_.find(key);
  if (it == pending_acks_.end()) {
    return;  // ACKed (or locally failed) in time.
  }
  const PendingAck info = it->second;
  pending_acks_.erase(it);
  if (info.op == RdmaOpcode::kRead) {
    pending_reads_.erase(key.second);
  }
  RcQp* q = FindQp(key.first);
  if (q != nullptr && q->outstanding > 0) {
    --q->outstanding;
  }
  AckTimeoutHandleFor(info.tenant).Increment();
  env_->Trace(TraceCategory::kRdma, static_cast<uint32_t>(node_), "ack_timeout", key.second,
              static_cast<uint64_t>(info.tenant));
  Completion cqe;
  cqe.wr_id = key.second;
  cqe.opcode = info.op;
  cqe.status = WrStatus::kTransportError;
  cqe.qp = key.first;
  cqe.tenant = info.tenant;
  cqe.src_node = info.dst;
  cqe.imm = info.imm;
  DeliverWrCompletion(info, cqe);
}

void RdmaEngine::DeliverWrCompletion(const PendingAck& info, const Completion& cqe) {
  if (info.hook) {
    info.hook(cqe);
    return;
  }
  if (info.signaled) {
    cq_.Push(cqe);
  }
}

void RdmaEngine::SendAck(const Packet& original, RdmaOpcode op, WrStatus status,
                         uint32_t byte_len) {
  Packet ack;
  ack.kind = Packet::Kind::kAck;
  ack.src = node_;
  ack.dst = original.src;
  ack.src_qp = original.dst_qp;
  ack.dst_qp = original.src_qp;
  ack.tenant = original.tenant;
  ack.wr_id = original.wr_id;
  ack.imm = original.imm;
  ack.acked_op = op;
  ack.status = status;
  ack.read_len = byte_len;
  Transmit(std::move(ack));
}

}  // namespace nadino
