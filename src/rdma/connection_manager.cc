#include "src/rdma/connection_manager.h"

#include <limits>

namespace nadino {

ConnectionManager::ConnectionManager(Env& env, RdmaEngine* local, int max_active_per_peer,
                                     uint32_t congestion_threshold)
    : env_(&env),
      local_(local),
      max_active_per_peer_(max_active_per_peer),
      congestion_threshold_(congestion_threshold) {
  const MetricLabels labels = MetricLabels::Node(local->node());
  MetricsRegistry& reg = env_->metrics();
  m_connects_ = reg.ResolveCounter("connmgr_connects", labels);
  m_activations_ = reg.ResolveCounter("connmgr_activations", labels);
  m_deactivations_ = reg.ResolveCounter("connmgr_deactivations", labels);
  m_acquires_ = reg.ResolveCounter("connmgr_acquires", labels);
  m_repairs_ = reg.ResolveCounter("connmgr_repairs", labels);
}

ConnectionManager::Stats ConnectionManager::stats() const {
  Stats s;
  s.connects = m_connects_.value();
  s.activations = m_activations_.value();
  s.deactivations = m_deactivations_.value();
  s.acquires = m_acquires_.value();
  s.repairs = m_repairs_.value();
  return s;
}

void ConnectionManager::Prewarm(RdmaEngine* peer, TenantId tenant, int count) {
  const PeerKey key{peer->node(), tenant};
  auto& pool = pools_[key];
  for (int i = 0; i < count; ++i) {
    const auto [local_qp, remote_qp] = RdmaEngine::CreateConnectedPair(*local_, *peer, tenant);
    (void)remote_qp;
    // Connection setup happens on the virtual clock but off the data path;
    // handshakes to the same peer pipeline rather than serialize.
    sim().Schedule(env_->cost().rc_connect_cost, [] {});
    const bool active = static_cast<int>(pool.size()) < max_active_per_peer_;
    pool.push_back(Pooled{local_qp, active});
    qp_index_[local_qp] = key;
    m_connects_.Increment();
    if (active) {
      m_activations_.Increment();
    } else {
      local_->qp_cache().Evict(local_qp);
    }
  }
}

ConnectionManager::Acquired ConnectionManager::Acquire(NodeId peer, TenantId tenant) {
  m_acquires_.Increment();
  const auto it = pools_.find(PeerKey{peer, tenant});
  if (it == pools_.end() || it->second.empty()) {
    return {};
  }
  auto& pool = it->second;
  Pooled* best = nullptr;
  uint32_t best_outstanding = std::numeric_limits<uint32_t>::max();
  Pooled* inactive = nullptr;
  int active_count = 0;
  for (Pooled& p : pool) {
    if (local_->InError(p.qp)) {
      continue;  // Awaiting Repair().
    }
    if (!p.active) {
      if (inactive == nullptr) {
        inactive = &p;
      }
      continue;
    }
    ++active_count;
    const uint32_t outstanding = local_->Outstanding(p.qp);
    if (outstanding < best_outstanding) {
      best_outstanding = outstanding;
      best = &p;
    }
  }
  // All active connections congested: bring a shadow QP online if the active
  // bound allows (load-proportional activation, section 3.3).
  if ((best == nullptr || best_outstanding > congestion_threshold_) && inactive != nullptr &&
      active_count < max_active_per_peer_) {
    inactive->active = true;
    m_activations_.Increment();
    return {inactive->qp, env_->cost().qp_activate_cost};
  }
  if (best == nullptr) {
    // Nothing active yet (e.g. everything was deactivated): activate one.
    if (inactive != nullptr) {
      inactive->active = true;
      m_activations_.Increment();
      return {inactive->qp, env_->cost().qp_activate_cost};
    }
    return {};
  }
  return {best->qp, 0};
}

void ConnectionManager::NoteIdle(QpNum qp) {
  const auto idx = qp_index_.find(qp);
  if (idx == qp_index_.end()) {
    return;
  }
  auto& pool = pools_[idx->second];
  int active_count = 0;
  for (const Pooled& p : pool) {
    active_count += p.active ? 1 : 0;
  }
  if (active_count <= max_active_per_peer_) {
    return;  // Within bounds; keep it warm.
  }
  for (Pooled& p : pool) {
    if (p.qp == qp && p.active && local_->Outstanding(qp) == 0) {
      p.active = false;
      local_->qp_cache().Evict(qp);
      m_deactivations_.Increment();
      return;
    }
  }
}

void ConnectionManager::Repair(QpNum qp, RdmaEngine* peer) {
  const auto idx = qp_index_.find(qp);
  if (idx == qp_index_.end()) {
    return;
  }
  m_repairs_.Increment();
  // The handshake runs off the data path; the QP re-enters service when it
  // completes (real recovery would also resync the peer's QP state).
  sim().Schedule(env_->cost().rc_connect_cost, [this, qp, peer]() {
    local_->ResetQp(qp);
    if (peer != nullptr) {
      peer->ResetQp(qp);  // No-op unless the peer tracks the same number.
    }
  });
}

int ConnectionManager::ActiveCount(NodeId peer, TenantId tenant) const {
  const auto it = pools_.find(PeerKey{peer, tenant});
  if (it == pools_.end()) {
    return 0;
  }
  int n = 0;
  for (const Pooled& p : it->second) {
    n += p.active ? 1 : 0;
  }
  return n;
}

int ConnectionManager::PooledCount(NodeId peer, TenantId tenant) const {
  const auto it = pools_.find(PeerKey{peer, tenant});
  return it == pools_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace nadino
