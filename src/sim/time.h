// Virtual time for the NADINO discrete-event simulator.
//
// All simulated durations and timestamps are expressed in integer nanoseconds.
// Integer time keeps the simulation deterministic (no floating-point drift)
// and makes event ordering total when combined with a sequence number.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace nadino {

// A point in virtual time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A span of virtual time, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

// Converts a virtual duration to fractional microseconds / milliseconds /
// seconds for reporting. Reporting is the only place floating point is used.
constexpr double ToUs(SimDuration d) { return static_cast<double>(d) / kMicrosecond; }
constexpr double ToMs(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

// Builds a duration from fractional microseconds, rounding to the nearest
// nanosecond. Convenient for calibration constants quoted in microseconds.
constexpr SimDuration FromUs(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond) + 0.5);
}

}  // namespace nadino

#endif  // SRC_SIM_TIME_H_
