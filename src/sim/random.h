// Seeded pseudo-random number generation for workload synthesis.
//
// Uses xoshiro256** (public domain, Blackman & Vigna) seeded through
// SplitMix64. A small local implementation keeps experiments deterministic
// across standard-library versions, unlike std::mt19937 + std::*_distribution
// whose outputs are not pinned by the standard.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>

namespace nadino {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  // Poisson-distributed count with the given mean (>= 0). Deterministic
  // across platforms (no std::poisson_distribution); large means are split
  // into bounded chunks so exp(-mean) never underflows. Cost is O(mean),
  // which open-loop admission amortizes over the events it schedules.
  uint64_t Poisson(double mean);

  // Bernoulli trial: true with probability p.
  bool Chance(double p);

  // Bounded Pareto-ish heavy tail used for payload-size synthesis: returns a
  // value in [lo, hi] where small values dominate (shape alpha, default 1.2).
  double BoundedHeavyTail(double lo, double hi, double alpha = 1.2);

 private:
  uint64_t s_[4];
};

}  // namespace nadino

#endif  // SRC_SIM_RANDOM_H_
