#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace nadino {

void MeanAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

void MeanAccumulator::Reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

LatencyHistogram::LatencyHistogram() : buckets_(kOctaves * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(SimDuration value) {
  if (value < 0) {
    value = 0;
  }
  const auto v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>(v >> octave) - (kSubBuckets >> 1);
  int index = octave * (kSubBuckets >> 1) + (kSubBuckets >> 1) + sub;
  return std::min(index, kOctaves * kSubBuckets - 1);
}

SimDuration LatencyHistogram::BucketMidpoint(int index) {
  const int half = kSubBuckets >> 1;
  if (index < kSubBuckets) {
    return index;
  }
  const int octave = (index - half) / half;
  const int sub = (index - half) % half + half;
  return (static_cast<SimDuration>(sub) << octave) + (SimDuration{1} << (octave - 1));
}

void LatencyHistogram::Record(SimDuration value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += static_cast<double>(value);
  ++count_;
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double LatencyHistogram::MeanUs() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_) / kMicrosecond;
}

SimDuration LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

double TimeSeries::MeanInWindow(SimTime from, SimTime to) const {
  double sum = 0.0;
  uint64_t n = 0;
  for (const Sample& s : samples_) {
    if (s.at >= from && s.at < to) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::string TimeSeries::ToText() const {
  std::string out;
  char line[64];
  for (const Sample& s : samples_) {
    std::snprintf(line, sizeof(line), "%.3f %.3f\n", ToSeconds(s.at), s.value);
    out += line;
  }
  return out;
}

double RateMeter::Roll(SimTime now) {
  const double seconds = ToSeconds(now - last_roll_);
  if (seconds <= 0.0) {
    // Zero-width window: a roll at (or before) the previous roll instant has
    // no elapsed time to average over. Recording would fabricate a 0.0-rate
    // sample AND swallow any completions already counted into the window
    // (they would fold into total_ without ever appearing in the series), so
    // a degenerate roll is a no-op: the pending window stays open and the
    // next real roll accounts for it.
    return 0.0;
  }
  const double rate = static_cast<double>(in_window_) / seconds;
  series_.Record(now, rate);
  total_ += in_window_;
  in_window_ = 0;
  last_roll_ = now;
  return rate;
}

}  // namespace nadino
