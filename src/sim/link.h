// Network link model: serialization delay (bytes / bandwidth) on a FIFO
// resource plus fixed propagation delay. Two links and a switch hop compose
// into the RDMA fabric (src/rdma/fabric.h).

#ifndef SRC_SIM_LINK_H_
#define SRC_SIM_LINK_H_

#include <cstdint>
#include <string>

#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace nadino {

class Link {
 public:
  using Callback = std::function<void()>;

  // `bandwidth_gbps` in gigabits/second; `propagation` is the fixed one-way
  // delay added after the message finishes serializing.
  Link(Simulator* sim, std::string name, double bandwidth_gbps, SimDuration propagation);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Sends `bytes` through the link; `delivered` fires at arrival time.
  void Transfer(uint64_t bytes, Callback delivered);

  // Serialization time for a message of `bytes` at this link's bandwidth.
  SimDuration SerializationTime(uint64_t bytes) const;

  // Bytes delivered since construction.
  uint64_t bytes_transferred() const { return bytes_transferred_; }

  // Queue depth of messages waiting to serialize (congestion signal).
  size_t queue_depth() const { return pipe_.queue_depth(); }

  double WindowUtilization() const { return pipe_.WindowUtilization(); }
  void ResetWindow() { pipe_.ResetWindow(); }

 private:
  Simulator* sim_;
  double bytes_per_ns_;
  SimDuration propagation_;
  FifoResource pipe_;
  uint64_t bytes_transferred_ = 0;
};

}  // namespace nadino

#endif  // SRC_SIM_LINK_H_
