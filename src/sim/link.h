// Network link model: serialization delay (bytes / bandwidth) on a FIFO
// resource plus fixed propagation delay. Two links and a switch hop compose
// into the RDMA fabric (src/rdma/fabric.h).

#ifndef SRC_SIM_LINK_H_
#define SRC_SIM_LINK_H_

#include <cstdint>
#include <string>

#include "src/core/fault.h"
#include "src/core/types.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace nadino {

class Link {
 public:
  using Callback = std::function<void()>;

  // `bandwidth_gbps` in gigabits/second; `propagation` is the fixed one-way
  // delay added after the message finishes serializing. `faults` (optional)
  // is the FaultPlane this link consults per transfer, with `node` naming the
  // port owner for fault scoping.
  Link(Simulator* sim, std::string name, double bandwidth_gbps, SimDuration propagation,
       FaultPlane* faults = nullptr, NodeId node = kInvalidNode);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Sends `bytes` through the link; `delivered` fires at arrival time.
  // A kLink drop fault discards the message before it serializes (`delivered`
  // never fires; dropped() counts it); delay stretches propagation; duplicate
  // serializes and delivers the message twice.
  void Transfer(uint64_t bytes, Callback delivered, TenantId tenant = kInvalidTenant);

  // Serialization time for a message of `bytes` at this link's bandwidth.
  SimDuration SerializationTime(uint64_t bytes) const;

  // Bytes delivered since construction.
  uint64_t bytes_transferred() const { return bytes_transferred_; }

  // Messages discarded by injected kLink drop faults.
  uint64_t dropped() const { return dropped_; }

  // Queue depth of messages waiting to serialize (congestion signal).
  size_t queue_depth() const { return pipe_.queue_depth(); }

  double WindowUtilization() const { return pipe_.WindowUtilization(); }
  void ResetWindow() { pipe_.ResetWindow(); }

 private:
  void Serialize(uint64_t bytes, SimDuration extra_propagation, const Callback& delivered);

  Simulator* sim_;
  double bytes_per_ns_;
  SimDuration propagation_;
  FifoResource pipe_;
  FaultPlane* faults_;
  NodeId node_;
  uint64_t bytes_transferred_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace nadino

#endif  // SRC_SIM_LINK_H_
