// Deterministic discrete-event simulation core.
//
// The simulator owns a priority queue of (time, sequence, callback) events.
// Components schedule callbacks at future virtual times; Run() drains the
// queue in (time, sequence) order, so two events scheduled for the same
// instant fire in scheduling order. This total order plus a seeded PRNG makes
// every experiment in this repository exactly reproducible.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace nadino {

// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Only advances inside Run*/Step.
  SimTime now() const { return now_; }

  // Schedules `cb` to run `delay` nanoseconds from now. Negative delays clamp
  // to zero (fire this instant, after already-queued same-instant events).
  EventId Schedule(SimDuration delay, Callback cb);

  // Schedules `cb` at an absolute virtual time (clamped to >= now()).
  EventId ScheduleAt(SimTime when, Callback cb);

  // Cancels a pending event. Returns false if the event already fired, was
  // already cancelled, or never existed. Cancellation is O(1); the queue slot
  // is lazily discarded when popped.
  bool Cancel(EventId id);

  // Runs until the event queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `deadline`, then sets now() to `deadline`
  // (if the queue drained earlier the clock still advances to the deadline).
  void RunUntil(SimTime deadline);

  // Convenience: RunUntil(now() + span).
  void RunFor(SimDuration span) { RunUntil(now_ + span); }

  // Executes the single next event, if any. Returns false when idle.
  bool Step();

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // Total number of callbacks executed; useful for perf accounting and for
  // asserting determinism (equal seeds => equal event counts).
  uint64_t events_processed() const { return events_processed_; }

  // Number of live (not-yet-fired, not-cancelled) events.
  size_t pending_events() const { return pending_.size(); }

 private:
  struct Event {
    SimTime when = 0;
    EventId id = kInvalidEventId;
    Callback cb;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  // Pops and runs the next live event. Returns false when no live event.
  bool PopAndRun();

  // Drops cancelled entries from the queue head.
  void SkipCancelled();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Live event ids. An id absent from `pending_` but present in the queue is a
  // cancelled slot awaiting lazy removal.
  std::unordered_set<EventId> pending_;
};

}  // namespace nadino

#endif  // SRC_SIM_SIMULATOR_H_
