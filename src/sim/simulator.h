// Deterministic discrete-event simulation core.
//
// The simulator owns a slab of intrusive event records plus one or more
// binary heaps ("shards") of small POD entries ordered by (time, sequence).
// Components schedule callbacks at future virtual times; Run() drains the
// shards in that order, so two events scheduled for the same instant fire in
// scheduling order. This total order plus a seeded PRNG makes every
// experiment in this repository exactly reproducible.
//
// Hot-path design (DESIGN.md §3c, §3g):
//  - Event callbacks live inline in slab slots (small-buffer optimization,
//    kInlineBytes of capture storage); only oversized captures fall back to
//    the heap, so a steady-state event costs zero allocations.
//  - Each shard heap holds 24-byte {when, seq, slot} PODs — sift operations
//    move trivially-copyable values, never callbacks.
//  - Slots are recycled through a free list; EventIds carry a per-slot
//    generation tag, making Cancel() an O(1) slot probe (no hash set) with
//    stale-id safety across slot reuse.
//  - Cancelled slots are discarded lazily when their heap entry surfaces at a
//    shard head, exactly once per surfacing (the single EarliestShard() path).
//  - Sharding (§3g): SetShardCount(k) splits the queue into k independent
//    heaps merged by a head scan on (when, seq). Because (when, seq) is a
//    strict total order assigned at Schedule time, the executed event
//    sequence — and with it every metric snapshot — is byte-identical for
//    ANY shard count; sharding only changes sift depth and cache locality.
//    Big topologies map per-node admission onto per-node shards so a
//    million-arrival workload never serializes on one deep heap.
//  - ScheduleBatch() admits many events in one call: equivalent to per-item
//    ScheduleAt in index order (same seq assignment), but the appended run
//    is pre-sorted into an empty shard (a sorted array IS a valid heap) or
//    bulk-rebuilt bottom-up when it dominates the shard, amortizing the
//    per-arrival sift cost of open-loop admission.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace nadino {

// Identifies a scheduled event so it can be cancelled before it fires.
// Encodes (slot index << 32 | generation); generations start at 1, so no
// valid id ever equals kInvalidEventId.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

namespace internal {

// Dispatch table for one erased callable type. Kept at namespace scope so the
// per-type instances can be inline constexpr (one per translation unit fold).
struct EventCallbackOps {
  void (*invoke)(void* storage);
  void (*move_construct)(void* dst, void* src);  // src is destroyed.
  void (*destroy)(void* storage);
};

// Fixed-capacity type-erased callable. Captures up to kInlineBytes (and
// alignment <= max_align_t, nothrow-movable) are stored inline in the event
// slot; anything bigger degrades to one heap allocation, preserving
// correctness for rare giant captures without taxing the common case.
class EventCallback {
 public:
  static constexpr size_t kInlineBytes = 96;

  EventCallback() = default;
  ~EventCallback() { Reset(); }
  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  template <typename F>
  void Emplace(F&& f);

  // Requires engaged(). The callable stays constructed after the call (the
  // destructor or Reset() releases it), matching pre-slab semantics where the
  // moved-out std::function died at end of the pop scope.
  void Invoke() { ops_->invoke(storage_); }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  bool engaged() const { return ops_ != nullptr; }

 private:
  void MoveFrom(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move_construct(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const EventCallbackOps* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

template <typename Fn>
struct InlineCallbackOps {
  static void Invoke(void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); }
  static void MoveConstruct(void* dst, void* src) {
    Fn* from = std::launder(reinterpret_cast<Fn*>(src));
    ::new (dst) Fn(std::move(*from));
    from->~Fn();
  }
  static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
  inline static constexpr EventCallbackOps kOps{&Invoke, &MoveConstruct, &Destroy};
};

template <typename Fn>
struct HeapCallbackOps {
  static Fn*& Ptr(void* storage) { return *std::launder(reinterpret_cast<Fn**>(storage)); }
  static void Invoke(void* storage) { (*Ptr(storage))(); }
  static void MoveConstruct(void* dst, void* src) { std::memcpy(dst, src, sizeof(Fn*)); }
  static void Destroy(void* storage) { delete Ptr(storage); }
  inline static constexpr EventCallbackOps kOps{&Invoke, &MoveConstruct, &Destroy};
};

template <typename F>
void EventCallback::Emplace(F&& f) {
  using Fn = std::decay_t<F>;
  static_assert(std::is_invocable_r_v<void, Fn&>, "event callbacks take no args");
  assert(ops_ == nullptr && "Emplace into an engaged callback");
  if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                std::is_nothrow_move_constructible_v<Fn>) {
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &InlineCallbackOps<Fn>::kOps;
  } else {
    ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
    ops_ = &HeapCallbackOps<Fn>::kOps;
  }
}

}  // namespace internal

class Simulator {
 public:
  // Kept for call sites that name their callback type; Schedule itself is a
  // template and stores the callable directly (no std::function wrapping).
  using Callback = std::function<void()>;

  // Upper bound on event-queue shards; one per node is the intended mapping,
  // so this matches the largest topology the benches sweep.
  static constexpr uint32_t kMaxShards = 64;

  Simulator() : shards_(1) {
    std::fill(std::begin(head_keys_), std::end(head_keys_), kEmptyHead);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  // Current virtual time. Only advances inside Run*/Step.
  SimTime now() const { return now_; }

  // Splits the event queue into `shards` independent heaps (clamped to
  // [1, kMaxShards]) merged deterministically on (when, seq). The executed
  // order is byte-identical for any shard count; already-pending events are
  // consolidated onto shard 0. Shard indices passed to *On/ScheduleBatch are
  // taken modulo the shard count, so `node_id % anything` is always safe.
  void SetShardCount(uint32_t shards);
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }

  // Schedules `f` to run `delay` nanoseconds from now. Negative delays clamp
  // to zero (fire this instant, after already-queued same-instant events).
  // The event lands on the shard of the currently-running event (shard 0
  // outside event context): a request admitted onto its node's shard keeps
  // its whole event chain there without threading shard ids through every
  // component. Inheritance never changes the executed order — only which
  // heap carries the entry.
  template <typename F>
  EventId Schedule(SimDuration delay, F&& f) {
    return ScheduleOn(current_shard_, delay, std::forward<F>(f));
  }

  // Schedules `f` at an absolute virtual time (clamped to >= now()). Same
  // shard inheritance as Schedule().
  template <typename F>
  EventId ScheduleAt(SimTime when, F&& f) {
    return ScheduleAtOn(current_shard_, when, std::forward<F>(f));
  }

  // Shard-targeted variants: identical semantics, but the event lives on the
  // given shard's heap (per-node admission in big topologies).
  template <typename F>
  EventId ScheduleOn(uint32_t shard, SimDuration delay, F&& f) {
    if (delay < 0) {
      delay = 0;
    }
    return ScheduleAtOn(shard, now_ + delay, std::forward<F>(f));
  }

  template <typename F>
  EventId ScheduleAtOn(uint32_t shard, SimTime when, F&& f) {
    if (when < now_) {
      when = now_;
    }
    const uint32_t slot_index = AllocSlot();
    Slot& slot = SlotAt(slot_index);
    slot.state = SlotState::kLive;
    slot.cb.Emplace(std::forward<F>(f));
    HeapPush(ShardIndex(shard), HeapEntry{when, next_seq_++, slot_index});
    ++live_count_;
    return MakeId(slot_index, slot.generation);
  }

  // Bulk admission of `whens.size()` events onto one shard; `make(i)` builds
  // the i-th callback. Equivalent to calling ScheduleAtOn(shard, whens[i],
  // make(i)) in index order — same seq assignment, same total order, so runs
  // are byte-identical either way — but heap maintenance is amortized:
  //  - into an empty shard, the run is sorted once (a sorted ascending array
  //    is already a valid binary min-heap);
  //  - when the batch rivals the shard's backlog, the whole heap is rebuilt
  //    bottom-up (Floyd) in O(old + m) instead of m O(log n) sifts;
  //  - small batches fall back to per-entry sift-up.
  // Timestamps clamp to >= now(). Batch events cannot be cancelled
  // individually (no ids are returned); open-loop arrivals never need to be.
  template <typename MakeFn>
  void ScheduleBatch(uint32_t shard, const std::vector<SimTime>& whens, MakeFn&& make) {
    if (whens.empty()) {
      return;
    }
    std::vector<HeapEntry>& heap = shards_[ShardIndex(shard)].heap;
    const size_t old_size = heap.size();
    const size_t m = whens.size();
    heap.reserve(old_size + m);
    for (size_t i = 0; i < m; ++i) {
      SimTime when = whens[i];
      if (when < now_) {
        when = now_;
      }
      const uint32_t slot_index = AllocSlot();
      Slot& slot = SlotAt(slot_index);
      slot.state = SlotState::kLive;
      slot.cb.Emplace(make(i));
      heap.push_back(HeapEntry{when, next_seq_++, slot_index});
    }
    live_count_ += m;
    if (old_size == 0) {
      std::sort(heap.begin(), heap.end(),
                [](const HeapEntry& a, const HeapEntry& b) { return Earlier(a, b); });
    } else if (m >= old_size) {
      HeapRebuild(heap);
    } else {
      for (size_t i = old_size; i < heap.size(); ++i) {
        SiftUp(heap, i);
      }
    }
    SyncHead(ShardIndex(shard));
  }

  // Cancels a pending event. Returns false if the event already fired, was
  // already cancelled, or never existed. O(1): decodes the id into a slot
  // probe; the heap entry is lazily discarded when it reaches its shard head.
  bool Cancel(EventId id);

  // Runs until the event queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `deadline`, then sets now() to `deadline`
  // (if the queue drained earlier the clock still advances to the deadline).
  void RunUntil(SimTime deadline);

  // Convenience: RunUntil(now() + span).
  void RunFor(SimDuration span) { RunUntil(now_ + span); }

  // Executes the single next event, if any. Returns false when idle. Clears
  // a prior Stop(), consistently with Run()/RunUntil().
  bool Step();

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // Total number of callbacks executed; useful for perf accounting and for
  // asserting determinism (equal seeds => equal event counts).
  uint64_t events_processed() const { return events_processed_; }

  // Number of live (not-yet-fired, not-cancelled) events.
  size_t pending_events() const { return live_count_; }

  // Slab occupancy introspection for tests: total slots ever allocated. A
  // steady-state workload reuses slots through the free list, so this stays
  // flat once the working set is warm (asserted by the allocation test).
  size_t slab_slots() const { return slot_count_; }

 private:
  enum class SlotState : uint8_t { kFree, kLive, kCancelled, kRunning };

  // One slab record. The callback's capture storage is inline, so scheduling
  // a small-capture event touches no allocator; `generation` tags recycled
  // slots so stale EventIds can never cancel an unrelated event.
  struct Slot {
    internal::EventCallback cb;
    uint32_t generation = 1;
    uint32_t next_free = 0;
    SlotState state = SlotState::kFree;
  };

  // What the binary heaps actually move: a trivially-copyable 24-byte record.
  // `seq` is the monotonic scheduling sequence — the same tie-break the old
  // priority_queue used as its event id — so the (when, seq) total order (and
  // with it every metric snapshot) is byte-identical to the pre-slab core,
  // and independent of how entries are distributed across shards.
  struct HeapEntry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<HeapEntry>,
                "heap sifts must never run user code (the pop path mutates no "
                "const refs — the old const_cast<Event&> move is gone)");

  // One independent event queue.
  struct Shard {
    std::vector<HeapEntry> heap;
  };

  // Merge key of one shard's head, mirrored into the compact head_keys_
  // array: the scan for the global minimum reads 16 bytes per shard from one
  // contiguous block (branch-predictor- and prefetch-friendly) instead of
  // dereferencing every heap's out-of-line storage. Empty shards carry the
  // +inf sentinel so the scan needs no emptiness branch.
  struct HeadKey {
    SimTime when;
    uint64_t seq;
  };
  static constexpr HeadKey kEmptyHead{std::numeric_limits<SimTime>::max(),
                                      std::numeric_limits<uint64_t>::max()};

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  static constexpr uint32_t kChunkShift = 10;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;  // Slots per slab chunk.
  static constexpr uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  Slot& SlotAt(uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  uint32_t ShardIndex(uint32_t shard) const {
    return shard % static_cast<uint32_t>(shards_.size());
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t index);

  // Re-mirrors shard's heap head into head_keys_ (sentinel when empty).
  void SyncHead(uint32_t shard) {
    const std::vector<HeapEntry>& heap = shards_[shard].heap;
    head_keys_[shard] =
        heap.empty() ? kEmptyHead : HeadKey{heap.front().when, heap.front().seq};
  }

  void HeapPush(uint32_t shard, HeapEntry entry);
  void HeapPopTop(uint32_t shard);
  // Hole-based sift primitives shared by push/pop/rebuild.
  static void SiftUp(std::vector<HeapEntry>& heap, size_t i);
  static void SiftDown(std::vector<HeapEntry>& heap, size_t i);
  // Floyd bottom-up heapify of one shard heap (bulk admission).
  static void HeapRebuild(std::vector<HeapEntry>& heap);

  // The deterministic merge: scans the cached heads for the globally
  // earliest (when, seq); a cancelled entry that wins the scan is discarded
  // (the single discard path — cancelled entries buried in a heap, or at a
  // losing head, cost nothing until they surface as the global minimum) and
  // the scan repeats. Returns -1 when every shard is drained.
  int EarliestShard();

  // The single pop path: merges shard heads, then runs the next live event if
  // its timestamp is <= `deadline`. Returns false when idle or the next live
  // event is beyond the deadline.
  bool PopAndRunBefore(SimTime deadline);

  SimTime now_ = 0;
  // Shard of the event currently executing; Schedule/ScheduleAt inherit it.
  uint32_t current_shard_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  size_t live_count_ = 0;
  bool stopped_ = false;
  std::vector<Shard> shards_;
  HeadKey head_keys_[kMaxShards] = {};  // Synced in SetShardCount and on push/pop.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t slot_count_ = 0;
  uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace nadino

#endif  // SRC_SIM_SIMULATOR_H_
