// Deterministic discrete-event simulation core.
//
// The simulator owns a slab of intrusive event records plus one or more
// binary heaps ("shards") of small POD entries ordered by (time, sequence).
// Components schedule callbacks at future virtual times; Run() drains the
// shards in that order, so two events scheduled for the same instant fire in
// scheduling order. This total order plus a seeded PRNG makes every
// experiment in this repository exactly reproducible.
//
// Hot-path design (DESIGN.md §3c, §3g, §3h):
//  - Event callbacks live inline in slab slots (small-buffer optimization,
//    kInlineBytes of capture storage); only oversized captures fall back to
//    the heap (counted by callback_heap_spills()), so a steady-state event
//    costs zero allocations.
//  - Each shard heap holds 24-byte {when, seq, slot} PODs — sift operations
//    move trivially-copyable values, never callbacks.
//  - Slots are recycled through a free list; EventIds carry a per-slot
//    generation tag, making Cancel() an O(1) slot probe (no hash set) with
//    stale-id safety across slot reuse.
//  - Cancelled slots are discarded lazily when their heap entry surfaces at a
//    shard head, exactly once per surfacing.
//  - Sharding (§3g): SetShardCount(k) splits the queue into k independent
//    heaps merged on (when, seq). Because (when, seq) is a strict total
//    order assigned at Schedule time, the executed event sequence — and with
//    it every metric snapshot — is byte-identical for ANY shard count.
//  - The merge itself (§3h satellite): a linear scan of the cached shard
//    head keys for small shard counts, a tournament (winner) tree above
//    merge_tree_threshold_ shards — O(log k) replay per pop instead of O(k).
//  - ScheduleBatch() admits many events in one call: equivalent to per-item
//    ScheduleAt in index order (same seq assignment), but the appended run
//    is pre-sorted into an empty shard or bulk-rebuilt bottom-up (Floyd)
//    when it dominates the shard. Pass `ids` to receive cancellable
//    EventIds for each admitted entry.
//
// Parallel drain (§3h tentpole): SetWorkerCount(W>1) makes Run()/RunUntil()
// drain the shards on W real threads as a conservative parallel DES:
//  - Each worker owns the shards with index ≡ worker (mod W) and drains them
//    independently inside a window [global_min, global_min + lookahead): the
//    lookahead is the minimum cross-shard delivery latency (SetLookahead,
//    wired from CostModel::MinCrossShardDelay by the cluster layer), so no
//    event a remote shard could still produce can land inside the window.
//  - Schedules targeting a different shard than the one executing are not
//    pushed directly (that would race, and would make behaviour depend on
//    which worker happens to own the destination): they are buffered in
//    per-(worker, destination-shard) mailboxes and flushed into the owning
//    heap at the epoch barrier. Routing through the mailbox for EVERY
//    cross-shard schedule — even when source and destination happen to share
//    a worker — keeps the per-shard executed sequence a function of the
//    shard count alone, so runs are deterministic for a fixed shard count
//    regardless of worker count.
//  - Sequence numbers in parallel mode are strided per origin shard
//    (seq = base + origin + nshards*k), assigned by the deterministic
//    per-shard execution, so the (when, seq) total order never depends on
//    thread interleaving. Serial mode is untouched: SetWorkerCount(1) — the
//    default — takes exactly the pre-parallel code path, byte for byte.
//  - Slab slots are partitioned into per-worker arenas (index bits above
//    kArenaLocalBits name the arena) so allocation never contends; frees
//    into a foreign arena (events admitted serially before the parallel
//    run) are deferred per worker and folded after the join.
//  - An epoch barrier (sense-free phase-counter spin barrier, yielding after
//    a bounded spin) separates the execute and flush phases; the last
//    arriver computes the next window, runs the barrier hook (per-worker
//    metric-lane folding, SetBarrierHook), and publishes.
// Contract for callbacks that run under workers>1: cross-shard schedules
// must use delays >= lookahead (the cluster wiring guarantees this for
// fabric/Comch crossings), callbacks may only Cancel events resident on
// their own shard, and shared mutable state must be shard-confined.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace nadino {

// Identifies a scheduled event so it can be cancelled before it fires.
// Encodes (slot index << 32 | generation); generations start at 1, so no
// valid id ever equals kInvalidEventId.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

namespace internal {

// Dispatch table for one erased callable type. Kept at namespace scope so the
// per-type instances can be inline constexpr (one per translation unit fold).
struct EventCallbackOps {
  void (*invoke)(void* storage);
  void (*move_construct)(void* dst, void* src);  // src is destroyed.
  void (*destroy)(void* storage);
};

// Fixed-capacity type-erased callable. Captures up to kInlineBytes (and
// alignment <= max_align_t, nothrow-movable) are stored inline in the event
// slot; anything bigger degrades to one heap allocation, preserving
// correctness for rare giant captures without taxing the common case.
class EventCallback {
 public:
  static constexpr size_t kInlineBytes = 96;

  EventCallback() = default;
  ~EventCallback() { Reset(); }
  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  // Returns true when the capture exceeded kInlineBytes and spilled to a
  // heap allocation (the caller counts these; hot paths are pinned at zero
  // spills by tests).
  template <typename F>
  bool Emplace(F&& f);

  // Requires engaged(). The callable stays constructed after the call (the
  // destructor or Reset() releases it), matching pre-slab semantics where the
  // moved-out std::function died at end of the pop scope.
  void Invoke() { ops_->invoke(storage_); }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  bool engaged() const { return ops_ != nullptr; }

 private:
  void MoveFrom(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move_construct(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const EventCallbackOps* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

template <typename Fn>
struct InlineCallbackOps {
  static void Invoke(void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); }
  static void MoveConstruct(void* dst, void* src) {
    Fn* from = std::launder(reinterpret_cast<Fn*>(src));
    ::new (dst) Fn(std::move(*from));
    from->~Fn();
  }
  static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
  inline static constexpr EventCallbackOps kOps{&Invoke, &MoveConstruct, &Destroy};
};

template <typename Fn>
struct HeapCallbackOps {
  static Fn*& Ptr(void* storage) { return *std::launder(reinterpret_cast<Fn**>(storage)); }
  static void Invoke(void* storage) { (*Ptr(storage))(); }
  static void MoveConstruct(void* dst, void* src) { std::memcpy(dst, src, sizeof(Fn*)); }
  static void Destroy(void* storage) { delete Ptr(storage); }
  inline static constexpr EventCallbackOps kOps{&Invoke, &MoveConstruct, &Destroy};
};

template <typename F>
bool EventCallback::Emplace(F&& f) {
  using Fn = std::decay_t<F>;
  static_assert(std::is_invocable_r_v<void, Fn&>, "event callbacks take no args");
  assert(ops_ == nullptr && "Emplace into an engaged callback");
  if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                std::is_nothrow_move_constructible_v<Fn>) {
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &InlineCallbackOps<Fn>::kOps;
    return false;
  } else {
    ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
    ops_ = &HeapCallbackOps<Fn>::kOps;
    return true;
  }
}

}  // namespace internal

class Simulator {
 public:
  // Kept for call sites that name their callback type; Schedule itself is a
  // template and stores the callable directly (no std::function wrapping).
  using Callback = std::function<void()>;

  // Upper bound on event-queue shards; one per node is the intended mapping,
  // so this matches the largest topology the benches sweep.
  static constexpr uint32_t kMaxShards = 64;
  // Upper bound on drain workers; bounded by the arena index bits (slot
  // indices reserve the bits above kArenaLocalBits for the arena id).
  static constexpr uint32_t kMaxWorkers = 32;

  Simulator() : shards_(1), arenas_(1) {
    std::fill(std::begin(head_keys_), std::end(head_keys_), kEmptyHead);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  // Current virtual time. Only advances inside Run*/Step. Under a parallel
  // drain, a worker-context caller sees its shard-local clock.
  SimTime now() const {
    const WorkerState* ws = tls_ctx_;
    return (ws != nullptr && ws->sim == this) ? ws->local_now : now_;
  }

  // Splits the event queue into `shards` independent heaps (clamped to
  // [1, kMaxShards]) merged deterministically on (when, seq). The executed
  // order is byte-identical for any shard count; already-pending events are
  // consolidated onto shard 0. Shard indices passed to *On/ScheduleBatch are
  // taken modulo the shard count, so `node_id % anything` is always safe.
  void SetShardCount(uint32_t shards);
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }

  // Number of drain workers for Run()/RunUntil(), clamped to
  // [1, kMaxWorkers]. 1 (the default) is the serial path, byte-identical to
  // the pre-parallel simulator. W>1 drains the shards on W threads as a
  // conservative PDES (see the header comment); runs are deterministic for a
  // fixed shard count independent of W. More workers than shards is clamped
  // at run time.
  void SetWorkerCount(uint32_t workers);
  uint32_t worker_count() const { return worker_count_; }

  // The conservative lookahead: the minimum latency of any cross-shard
  // delivery (clamped to >= 1 ns). Callbacks running under workers>1 must
  // not schedule onto a different shard with a delay below this.
  void SetLookahead(SimDuration lookahead) { lookahead_ = lookahead < 1 ? 1 : lookahead; }
  SimDuration lookahead() const { return lookahead_; }

  // Hook run single-threadedly by the epoch barrier's last arriver once per
  // window (all workers quiesced): the fold point for per-worker metric
  // lanes (CounterLanes). Also invoked once after the final window.
  void SetBarrierHook(std::function<void()> hook) { barrier_hook_ = std::move(hook); }

  // Schedules `f` to run `delay` nanoseconds from now. Negative delays clamp
  // to zero (fire this instant, after already-queued same-instant events).
  // The event lands on the shard of the currently-running event (shard 0
  // outside event context): a request admitted onto its node's shard keeps
  // its whole event chain there without threading shard ids through every
  // component. Inheritance never changes the executed order — only which
  // heap carries the entry.
  template <typename F>
  EventId Schedule(SimDuration delay, F&& f) {
    return ScheduleOn(CurrentShard(), delay, std::forward<F>(f));
  }

  // Schedules `f` at an absolute virtual time (clamped to >= now()). Same
  // shard inheritance as Schedule().
  template <typename F>
  EventId ScheduleAt(SimTime when, F&& f) {
    return ScheduleAtOn(CurrentShard(), when, std::forward<F>(f));
  }

  // Shard-targeted variants: identical semantics, but the event lives on the
  // given shard's heap (per-node admission in big topologies).
  template <typename F>
  EventId ScheduleOn(uint32_t shard, SimDuration delay, F&& f) {
    if (delay < 0) {
      delay = 0;
    }
    return ScheduleAtOn(shard, now() + delay, std::forward<F>(f));
  }

  // Under a parallel drain, a cross-shard schedule is buffered in the
  // worker's mailbox and admitted at the next epoch barrier; it returns
  // kInvalidEventId (the slot does not exist yet), so cross-shard events
  // cannot be individually cancelled in parallel mode. Same-shard schedules
  // always return a live, cancellable id.
  template <typename F>
  EventId ScheduleAtOn(uint32_t shard, SimTime when, F&& f) {
    if (WorkerState* ws = ParallelContext()) {
      return ParallelScheduleAtOn(ws, shard, when, std::forward<F>(f));
    }
    if (when < now_) {
      when = now_;
    }
    const uint32_t slot_index = AllocSlot(arenas_[0], 0);
    Slot& slot = SlotAt(slot_index);
    slot.state = SlotState::kLive;
    callback_heap_spills_ += slot.cb.Emplace(std::forward<F>(f)) ? 1 : 0;
    HeapPush(ShardIndex(shard), HeapEntry{when, next_seq_++, slot_index});
    ++live_count_;
    return MakeId(slot_index, slot.generation);
  }

  // Bulk admission of `whens.size()` events onto one shard; `make(i)` builds
  // the i-th callback. Equivalent to calling ScheduleAtOn(shard, whens[i],
  // make(i)) in index order — same seq assignment, same total order, so runs
  // are byte-identical either way — but heap maintenance is amortized:
  //  - into an empty shard, the run is sorted once (a sorted ascending array
  //    is already a valid binary min-heap);
  //  - when the batch rivals the shard's backlog, the whole heap is rebuilt
  //    bottom-up (Floyd) in O(old + m) instead of m O(log n) sifts;
  //  - small batches fall back to per-entry sift-up.
  // Timestamps clamp to >= now(). When `ids` is non-null it receives one
  // EventId per entry (appended in index order), each individually
  // cancellable exactly like a ScheduleAtOn id. Under a parallel drain the
  // batch degrades to per-item admission through the worker path (mailboxed
  // when cross-shard, ids kInvalidEventId for those entries).
  template <typename MakeFn>
  void ScheduleBatch(uint32_t shard, const std::vector<SimTime>& whens, MakeFn&& make,
                     std::vector<EventId>* ids = nullptr) {
    if (whens.empty()) {
      return;
    }
    if (WorkerState* ws = ParallelContext()) {
      for (size_t i = 0; i < whens.size(); ++i) {
        const EventId id = ParallelScheduleAtOn(ws, shard, whens[i], make(i));
        if (ids != nullptr) {
          ids->push_back(id);
        }
      }
      return;
    }
    std::vector<HeapEntry>& heap = shards_[ShardIndex(shard)].heap;
    const size_t old_size = heap.size();
    const size_t m = whens.size();
    heap.reserve(old_size + m);
    for (size_t i = 0; i < m; ++i) {
      SimTime when = whens[i];
      if (when < now_) {
        when = now_;
      }
      const uint32_t slot_index = AllocSlot(arenas_[0], 0);
      Slot& slot = SlotAt(slot_index);
      slot.state = SlotState::kLive;
      callback_heap_spills_ += slot.cb.Emplace(make(i)) ? 1 : 0;
      heap.push_back(HeapEntry{when, next_seq_++, slot_index});
      if (ids != nullptr) {
        ids->push_back(MakeId(slot_index, slot.generation));
      }
    }
    live_count_ += m;
    if (old_size == 0) {
      std::sort(heap.begin(), heap.end(),
                [](const HeapEntry& a, const HeapEntry& b) { return Earlier(a, b); });
    } else if (m >= old_size) {
      HeapRebuild(heap);
    } else {
      for (size_t i = old_size; i < heap.size(); ++i) {
        SiftUp(heap, i);
      }
    }
    SyncHead(ShardIndex(shard));
  }

  // Cancels a pending event. Returns false if the event already fired, was
  // already cancelled, or never existed. O(1): decodes the id into a slot
  // probe; the heap entry is lazily discarded when it reaches its shard head.
  // Under a parallel drain, callbacks may only cancel events resident on
  // their own shard (the slot probe is unsynchronized).
  bool Cancel(EventId id);

  // Runs until the event queue is empty or Stop() is called. With
  // SetWorkerCount(W>1) and more than one shard, drains on W threads.
  void Run();

  // Runs events with timestamp <= `deadline`, then sets now() to `deadline`
  // (if the queue drained earlier the clock still advances to the deadline).
  void RunUntil(SimTime deadline);

  // Convenience: RunUntil(now() + span).
  void RunFor(SimDuration span) { RunUntil(now_ + span); }

  // Executes the single next event, if any. Returns false when idle. Clears
  // a prior Stop(), consistently with Run()/RunUntil(). Always serial.
  bool Step();

  // Makes Run()/RunUntil() return after the current event completes (in
  // parallel mode: each worker stops after its current event; the run ends
  // at the next barrier).
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

  // Total number of callbacks executed; useful for perf accounting and for
  // asserting determinism (equal seeds => equal event counts).
  uint64_t events_processed() const { return events_processed_; }

  // Number of live (not-yet-fired, not-cancelled) events.
  size_t pending_events() const { return live_count_; }

  // Slab occupancy introspection for tests: total slots ever allocated
  // across all arenas. A steady-state workload reuses slots through the free
  // lists, so this stays flat once the working set is warm.
  size_t slab_slots() const {
    size_t total = 0;
    for (const Arena& arena : arenas_) {
      total += arena.slot_count;
    }
    return total;
  }

  // EventCallback captures that exceeded kInlineBytes and heap-allocated.
  // Surfaced as an accessor (not a registry metric) so default snapshots —
  // and with them every golden — stay byte-identical.
  uint64_t callback_heap_spills() const { return callback_heap_spills_; }

  // Parallel-drain introspection: windows executed, mailbox deliveries, and
  // windows whose horizon was clamped by the run deadline.
  uint64_t parallel_windows() const { return parallel_windows_; }
  uint64_t parallel_mail_delivered() const { return parallel_mail_delivered_; }
  uint64_t parallel_horizon_clamps() const { return parallel_horizon_clamps_; }

  // Worker index of the calling context: 0 outside a parallel drain.
  uint32_t current_worker() const {
    const WorkerState* ws = tls_ctx_;
    return (ws != nullptr && ws->sim == this) ? ws->id : 0;
  }

  // Forces the tournament-tree merge on or off regardless of shard count (< 0
  // restores the default threshold of kDefaultMergeTreeThreshold shards).
  // Test-only: the merge result is identical either way.
  void SetMergeTreeThresholdForTest(int threshold);

 private:
  enum class SlotState : uint8_t { kFree, kLive, kCancelled, kRunning };

  // One slab record. The callback's capture storage is inline, so scheduling
  // a small-capture event touches no allocator; `generation` tags recycled
  // slots so stale EventIds can never cancel an unrelated event.
  struct Slot {
    internal::EventCallback cb;
    uint32_t generation = 1;
    uint32_t next_free = 0;
    SlotState state = SlotState::kFree;
  };

  // What the binary heaps actually move: a trivially-copyable 24-byte record.
  // `seq` is the monotonic scheduling sequence — the same tie-break the old
  // priority_queue used as its event id — so the (when, seq) total order (and
  // with it every metric snapshot) is byte-identical to the pre-slab core,
  // and independent of how entries are distributed across shards.
  struct HeapEntry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<HeapEntry>,
                "heap sifts must never run user code (the pop path mutates no "
                "const refs — the old const_cast<Event&> move is gone)");

  // One independent event queue. Cache-line aligned so two workers draining
  // adjacent shards never false-share the heap vector headers or the
  // per-shard parallel sequence cursor.
  struct alignas(64) Shard {
    std::vector<HeapEntry> heap;
    // Next strided-sequence index for events originating from this shard
    // during a parallel drain; written only by the shard's owner.
    uint64_t par_seq_next = 0;
  };

  // Merge key of one shard's head, mirrored into the compact head_keys_
  // array: the scan for the global minimum reads 16 bytes per shard from one
  // contiguous block (branch-predictor- and prefetch-friendly) instead of
  // dereferencing every heap's out-of-line storage. Empty shards carry the
  // +inf sentinel so the scan needs no emptiness branch.
  struct HeadKey {
    SimTime when;
    uint64_t seq;
  };
  static constexpr HeadKey kEmptyHead{std::numeric_limits<SimTime>::max(),
                                      std::numeric_limits<uint64_t>::max()};

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  static bool HeadLess(const HeadKey& a, const HeadKey& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  static bool HeadEmpty(const HeadKey& k) { return k.when == kEmptyHead.when && k.seq == kEmptyHead.seq; }

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  static constexpr uint32_t kChunkShift = 10;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;  // Slots per slab chunk.
  static constexpr uint32_t kNoFreeSlot = 0xFFFFFFFFu;
  // Slot indices are (arena << kArenaLocalBits) | local: arena 0 is the
  // serial slab (indices identical to the pre-arena layout), arena w+1 is
  // worker w's private slab. 32M slots per arena.
  static constexpr uint32_t kArenaLocalBits = 25;
  static constexpr uint32_t kArenaLocalMask = (1u << kArenaLocalBits) - 1;
  static constexpr int kDefaultMergeTreeThreshold = 8;

  // One slab partition. Serial execution uses arena 0 only; each parallel
  // worker allocates and frees exclusively in its own arena (foreign frees
  // are deferred), so slot management never takes a lock. The chunk-pointer
  // spine is a fixed-capacity array allocated on first use: it never moves,
  // so a worker growing its own arena can never invalidate another worker's
  // read of a previously-published slot in it (leftover events when the
  // worker count changes between runs).
  struct Arena {
    static constexpr uint32_t kMaxChunks = 1u << (kArenaLocalBits - kChunkShift);
    std::unique_ptr<std::unique_ptr<Slot[]>[]> chunks;
    uint32_t chunk_count = 0;
    uint32_t slot_count = 0;
    uint32_t free_head = kNoFreeSlot;
  };

  // A cross-shard schedule buffered between epoch barriers: the callback
  // rides by value (no slot exists until the destination owner admits it).
  struct Mail {
    SimTime when;
    uint64_t seq;
    internal::EventCallback cb;
  };

  // Per-worker drain context. Cache-line aligned: every hot field a worker
  // touches per event lives here, and nothing in it is written by another
  // thread during the execute phase.
  struct alignas(64) WorkerState {
    Simulator* sim = nullptr;
    uint32_t id = 0;
    std::vector<uint32_t> owned;  // Shard indices, ascending.
    SimTime local_now = 0;
    uint32_t current_shard = 0;
    uint64_t executed = 0;
    int64_t live_delta = 0;
    uint64_t spills = 0;
    uint64_t mailed = 0;
    SimTime local_min = 0;
    SimTime max_exec_time = 0;
    std::vector<std::vector<Mail>> outbox;   // One mailbox per destination shard.
    std::vector<uint32_t> foreign_frees;     // Folded into their arenas after join.
  };

  // Phase-counter spin barrier: the Nth arriver runs the serial section and
  // bumps the phase; waiters spin briefly then yield (the test boxes and the
  // tsan leg run more workers than cores).
  struct SpinBarrier {
    std::atomic<uint32_t> arrived{0};
    std::atomic<uint32_t> phase{0};
    uint32_t total = 0;
  };

  Slot& SlotAt(uint32_t index) {
    Arena& arena = arenas_[index >> kArenaLocalBits];
    const uint32_t local = index & kArenaLocalMask;
    return arena.chunks[local >> kChunkShift][local & (kChunkSize - 1)];
  }

  uint32_t ShardIndex(uint32_t shard) const {
    return shard % static_cast<uint32_t>(shards_.size());
  }

  uint32_t CurrentShard() const {
    const WorkerState* ws = tls_ctx_;
    return (ws != nullptr && ws->sim == this) ? ws->current_shard : current_shard_;
  }

  WorkerState* ParallelContext() const {
    WorkerState* ws = tls_ctx_;
    return (ws != nullptr && ws->sim == this) ? ws : nullptr;
  }

  uint32_t AllocSlot(Arena& arena, uint32_t arena_index);
  void FreeSlot(uint32_t index);

  // Worker-context schedule: same-shard events push straight into the owned
  // heap; cross-shard events are mailboxed until the next barrier. Sequence
  // numbers stride by origin shard so the total order is independent of the
  // worker count.
  template <typename F>
  EventId ParallelScheduleAtOn(WorkerState* ws, uint32_t shard, SimTime when, F&& f) {
    shard = ShardIndex(shard);
    if (when < ws->local_now) {
      when = ws->local_now;
    }
    const uint32_t origin = ws->current_shard;
    const uint64_t seq = par_seq_base_ + origin +
                         static_cast<uint64_t>(shard_count()) * shards_[origin].par_seq_next++;
    ++ws->live_delta;
    if (shard == origin) {
      const uint32_t arena_index = ws->id + 1;
      const uint32_t slot_index = AllocSlot(arenas_[arena_index], arena_index);
      Slot& slot = SlotAt(slot_index);
      slot.state = SlotState::kLive;
      ws->spills += slot.cb.Emplace(std::forward<F>(f)) ? 1 : 0;
      HeapPush(shard, HeapEntry{when, seq, slot_index});
      return MakeId(slot_index, slot.generation);
    }
    std::vector<Mail>& box = ws->outbox[shard];
    box.emplace_back();
    Mail& mail = box.back();
    mail.when = when;
    mail.seq = seq;
    ws->spills += mail.cb.Emplace(std::forward<F>(f)) ? 1 : 0;
    ++ws->mailed;
    return kInvalidEventId;
  }

  // Re-mirrors shard's heap head into head_keys_ (sentinel when empty) and
  // replays the tournament tree when the tree merge is active. During a parallel
  // drain the tree is left stale (workers own disjoint shards but would race
  // on shared tree nodes); it is rebuilt at the join.
  void SyncHead(uint32_t shard) {
    const std::vector<HeapEntry>& heap = shards_[shard].heap;
    head_keys_[shard] =
        heap.empty() ? kEmptyHead : HeadKey{heap.front().when, heap.front().seq};
    if (tree_active_ && !par_active_) {
      TreeReplay(shard);
    }
  }

  void HeapPush(uint32_t shard, HeapEntry entry);
  void HeapPopTop(uint32_t shard);
  // Hole-based sift primitives shared by push/pop/rebuild.
  static void SiftUp(std::vector<HeapEntry>& heap, size_t i);
  static void SiftDown(std::vector<HeapEntry>& heap, size_t i);
  // Floyd bottom-up heapify of one shard heap (bulk admission).
  static void HeapRebuild(std::vector<HeapEntry>& heap);

  // Tournament-tree maintenance (EarliestShard's O(log k) path).
  void TreeBuild();
  void TreeReplay(uint32_t leaf);
  void RefreshTreeMode();

  // The deterministic merge: finds the shard holding the globally earliest
  // (when, seq) — a linear scan of the cached heads for small shard counts,
  // a tournament-tree lookup above the threshold. A cancelled entry that wins is
  // discarded (the single discard path) and the merge repeats. Returns -1
  // when every shard is drained.
  int EarliestShard();

  // The single serial pop path: merges shard heads, then runs the next live
  // event if its timestamp is <= `deadline`. Returns false when idle or the
  // next live event is beyond the deadline.
  bool PopAndRunBefore(SimTime deadline);

  // --- Parallel drain internals (simulator.cc) -----------------------------
  uint32_t EffectiveWorkers() const;
  void RunParallelUntil(SimTime deadline);
  void WorkerLoop(WorkerState& ws, SimTime deadline);
  void DrainOwnShard(WorkerState& ws, uint32_t shard);
  void FlushMail(WorkerState& ws);
  SimTime ComputeLocalMin(const WorkerState& ws) const;
  // Serial section of the epoch barrier: computes the next window (or stop)
  // from the workers' local minima and runs the barrier hook.
  void AdvanceWindow(SimTime deadline);
  void BarrierWait(const std::function<void()>& serial_section);
  void ParallelFree(WorkerState& ws, uint32_t slot_index);

  SimTime now_ = 0;
  // Shard of the event currently executing; Schedule/ScheduleAt inherit it.
  uint32_t current_shard_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  size_t live_count_ = 0;
  std::atomic<bool> stopped_{false};
  std::vector<Shard> shards_;
  HeadKey head_keys_[kMaxShards] = {};  // Synced in SetShardCount and on push/pop.
  std::vector<Arena> arenas_;  // [0] serial slab; [w+1] worker w's slab.
  uint64_t callback_heap_spills_ = 0;

  // Tournament-tree merge state: leaves hold their shard index, internals the
  // running winner is cached in tree_winner_. Padding leaves (>= shard
  // count) always carry the sentinel head key, so they can never win against
  // a non-empty shard.
  int merge_tree_threshold_ = kDefaultMergeTreeThreshold;
  bool tree_active_ = false;
  uint32_t tree_cap_ = 0;  // Power-of-two leaf count.
  uint32_t tree_winner_ = 0;
  std::vector<uint32_t> tree_nodes_;

  // Parallel drain state. The window fields are written only inside the
  // barrier's serial section and read by workers after the phase publish
  // (release/acquire on SpinBarrier::phase orders them).
  uint32_t worker_count_ = 1;
  SimDuration lookahead_ = 1;
  std::function<void()> barrier_hook_;
  bool par_active_ = false;
  uint64_t par_seq_base_ = 0;
  SimTime win_end_ = 0;
  bool win_stop_ = false;
  uint64_t parallel_windows_ = 0;
  uint64_t parallel_mail_delivered_ = 0;
  uint64_t parallel_horizon_clamps_ = 0;
  std::vector<WorkerState> workers_;
  SpinBarrier barrier_;

  static thread_local WorkerState* tls_ctx_;
};

}  // namespace nadino

#endif  // SRC_SIM_SIMULATOR_H_
