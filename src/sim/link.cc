#include "src/sim/link.h"

#include <utility>

namespace nadino {

Link::Link(Simulator* sim, std::string name, double bandwidth_gbps, SimDuration propagation,
           FaultPlane* faults, NodeId node)
    : sim_(sim),
      bytes_per_ns_(bandwidth_gbps / 8.0),  // Gbit/s == bits/ns; /8 -> bytes/ns.
      propagation_(propagation),
      pipe_(sim, std::move(name)),
      faults_(faults),
      node_(node) {}

SimDuration Link::SerializationTime(uint64_t bytes) const {
  return static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_ns_ + 0.5);
}

void Link::Serialize(uint64_t bytes, SimDuration extra_propagation, const Callback& delivered) {
  bytes_transferred_ += bytes;
  const SimDuration arrival_lag = propagation_ + extra_propagation;
  pipe_.Submit(SerializationTime(bytes), [this, arrival_lag, delivered]() {
    if (!delivered) {
      return;
    }
    // Propagation happens off the shared pipe: back-to-back messages overlap
    // their propagation with the next message's serialization.
    sim_->Schedule(arrival_lag, delivered);
  });
}

void Link::Transfer(uint64_t bytes, Callback delivered, TenantId tenant) {
  FaultDecision fault;
  if (faults_ != nullptr) {
    fault = faults_->Intercept(FaultSite::kLink, FaultScope{tenant, node_});
  }
  switch (fault.action) {
    case FaultAction::kDrop:
      ++dropped_;  // Lost on the wire: never serializes, never arrives.
      return;
    case FaultAction::kDuplicate:
      Serialize(bytes, 0, delivered);
      break;
    default:
      break;
  }
  Serialize(bytes, fault.action == FaultAction::kDelay ? fault.delay : 0, delivered);
}

}  // namespace nadino
