#include "src/sim/link.h"

#include <utility>

namespace nadino {

Link::Link(Simulator* sim, std::string name, double bandwidth_gbps, SimDuration propagation)
    : sim_(sim),
      bytes_per_ns_(bandwidth_gbps / 8.0),  // Gbit/s == bits/ns; /8 -> bytes/ns.
      propagation_(propagation),
      pipe_(sim, std::move(name)) {}

SimDuration Link::SerializationTime(uint64_t bytes) const {
  return static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_ns_ + 0.5);
}

void Link::Transfer(uint64_t bytes, Callback delivered) {
  bytes_transferred_ += bytes;
  pipe_.Submit(SerializationTime(bytes), [this, delivered = std::move(delivered)]() {
    if (!delivered) {
      return;
    }
    // Propagation happens off the shared pipe: back-to-back messages overlap
    // their propagation with the next message's serialization.
    sim_->Schedule(propagation_, delivered);
  });
}

}  // namespace nadino
