#include "src/sim/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace nadino {

namespace {

void AppendLabel(std::string* out, const char* key, int64_t value) {
  if (value == MetricLabels::kUnset) {
    return;
  }
  if (out->size() > 1) {
    *out += ',';
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s=%lld", key, static_cast<long long>(value));
  *out += buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

// Fixed-precision gauge formatting keeps snapshots byte-stable across runs.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string MetricLabels::Render() const {
  if (tenant == kUnset && node == kUnset && engine == kUnset) {
    return "";
  }
  std::string out = "{";
  AppendLabel(&out, "engine", engine);
  AppendLabel(&out, "node", node);
  AppendLabel(&out, "tenant", tenant);
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// HistogramMetric
// ---------------------------------------------------------------------------

HistogramMetric::HistogramMetric(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

void HistogramMetric::Record(int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  sum_ += value;
  ++count_;
}

int64_t HistogramMetric::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      if (i >= bounds_.size()) {
        return max_;  // Overflow bucket: best estimate is the observed max.
      }
      const int64_t hi = std::min(bounds_[i], max_);
      const int64_t lo = std::max(i == 0 ? int64_t{0} : bounds_[i - 1], min_);
      return std::max(lo, std::min(hi, lo + (hi - lo) / 2));
    }
  }
  return max_;
}

const std::vector<int64_t>& DefaultDurationBoundsNs() {
  static const std::vector<int64_t> kBounds = {
      1'000,       2'000,       5'000,        10'000,       20'000,      50'000,
      100'000,     200'000,     500'000,      1'000'000,    2'000'000,   5'000'000,
      10'000'000,  20'000'000,  50'000'000,   100'000'000,  200'000'000, 500'000'000,
      1'000'000'000};
  return kBounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(const std::string& name,
                                                     const MetricLabels& labels, Kind kind) {
  const std::string key = name + labels.Render();
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.name = name;
    entry.labels = labels;
  } else {
    assert(entry.kind == kind && "metric key re-registered with a different type");
  }
  return entry;
}

CounterMetric& MetricsRegistry::Counter(const std::string& name, const MetricLabels& labels) {
  Entry& entry = GetOrCreate(name, labels, Kind::kCounter);
  if (entry.counter == nullptr) {
    entry.counter = std::make_unique<CounterMetric>();
  }
  return *entry.counter;
}

GaugeMetric& MetricsRegistry::Gauge(const std::string& name, const MetricLabels& labels) {
  Entry& entry = GetOrCreate(name, labels, Kind::kGauge);
  if (entry.gauge == nullptr) {
    entry.gauge = std::make_unique<GaugeMetric>();
  }
  return *entry.gauge;
}

HistogramMetric& MetricsRegistry::Histogram(const std::string& name, const MetricLabels& labels,
                                            const std::vector<int64_t>& bounds) {
  Entry& entry = GetOrCreate(name, labels, Kind::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<HistogramMetric>(bounds);
  }
  return *entry.histogram;
}

void MetricsRegistry::RegisterCallback(const std::string& name, const MetricLabels& labels,
                                       Callback fn) {
  Entry& entry = GetOrCreate(name, labels, Kind::kCallback);
  entry.callback = std::move(fn);
}

void MetricsRegistry::RegisterGaugeCallback(const std::string& name, const MetricLabels& labels,
                                            GaugeCallback fn) {
  Entry& entry = GetOrCreate(name, labels, Kind::kGaugeCallback);
  entry.gauge_callback = std::move(fn);
}

double MetricsRegistry::GaugeValueOf(const std::string& name, const MetricLabels& labels) const {
  const auto it = entries_.find(name + labels.Render());
  if (it == entries_.end()) {
    return 0.0;
  }
  const Entry& entry = it->second;
  switch (entry.kind) {
    case Kind::kGauge:
      return entry.gauge->value();
    case Kind::kGaugeCallback:
      return entry.gauge_callback ? entry.gauge_callback() : 0.0;
    case Kind::kCounter:
    case Kind::kCallback:
    case Kind::kHistogram:
      return 0.0;
  }
  return 0.0;
}

uint64_t MetricsRegistry::ValueOf(const std::string& name, const MetricLabels& labels) const {
  const auto it = entries_.find(name + labels.Render());
  if (it == entries_.end()) {
    return 0;
  }
  const Entry& entry = it->second;
  switch (entry.kind) {
    case Kind::kCounter:
      return entry.counter->value();
    case Kind::kCallback:
      return entry.callback ? entry.callback() : 0;
    case Kind::kGauge:
    case Kind::kGaugeCallback:
    case Kind::kHistogram:
      return 0;
  }
  return 0;
}

std::string MetricsRegistry::SnapshotText() const {
  std::string out;
  for (const auto& [key, entry] : entries_) {
    out += key;
    out += ' ';
    switch (entry.kind) {
      case Kind::kCounter:
        out += FormatU64(entry.counter->value());
        break;
      case Kind::kCallback:
        out += FormatU64(entry.callback ? entry.callback() : 0);
        break;
      case Kind::kGauge:
        out += FormatDouble(entry.gauge->value());
        break;
      case Kind::kGaugeCallback:
        out += FormatDouble(entry.gauge_callback ? entry.gauge_callback() : 0.0);
        break;
      case Kind::kHistogram: {
        const HistogramMetric& h = *entry.histogram;
        out += "count=" + FormatU64(h.count()) + " sum=" + FormatI64(h.sum()) +
               " min=" + FormatI64(h.min()) + " max=" + FormatI64(h.max()) + " buckets=";
        for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i > 0) {
            out += ',';
          }
          out += FormatU64(h.bucket_counts()[i]);
        }
        break;
      }
    }
    out += '\n';
  }
  return out;
}

namespace {

void AppendJsonLabels(std::string* out, const MetricLabels& labels) {
  *out += "\"labels\":{";
  bool first = true;
  const auto add = [&](const char* key, int64_t value) {
    if (value == MetricLabels::kUnset) {
      return;
    }
    if (!first) {
      *out += ',';
    }
    first = false;
    *out += '"';
    *out += key;
    *out += "\":" + FormatI64(value);
  };
  add("engine", labels.engine);
  add("node", labels.node);
  add("tenant", labels.tenant);
  *out += '}';
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  std::string out = "[\n";
  bool first_entry = true;
  for (const auto& [key, entry] : entries_) {
    if (!first_entry) {
      out += ",\n";
    }
    first_entry = false;
    out += "  {\"name\":\"" + entry.name + "\",";
    AppendJsonLabels(&out, entry.labels);
    out += ',';
    switch (entry.kind) {
      case Kind::kCounter:
        out += "\"type\":\"counter\",\"value\":" + FormatU64(entry.counter->value());
        break;
      case Kind::kCallback:
        out += "\"type\":\"counter\",\"value\":" +
               FormatU64(entry.callback ? entry.callback() : 0);
        break;
      case Kind::kGauge:
        out += "\"type\":\"gauge\",\"value\":" + FormatDouble(entry.gauge->value());
        break;
      case Kind::kGaugeCallback:
        out += "\"type\":\"gauge\",\"value\":" +
               FormatDouble(entry.gauge_callback ? entry.gauge_callback() : 0.0);
        break;
      case Kind::kHistogram: {
        const HistogramMetric& h = *entry.histogram;
        out += "\"type\":\"histogram\",\"count\":" + FormatU64(h.count()) +
               ",\"sum\":" + FormatI64(h.sum()) + ",\"min\":" + FormatI64(h.min()) +
               ",\"max\":" + FormatI64(h.max()) + ",\"bounds\":[";
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) {
            out += ',';
          }
          out += FormatI64(h.bounds()[i]);
        }
        out += "],\"buckets\":[";
        for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i > 0) {
            out += ',';
          }
          out += FormatU64(h.bucket_counts()[i]);
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

}  // namespace nadino
