#include "src/sim/random.h"

#include <cmath>

namespace nadino {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  const uint64_t span = hi - lo + 1;
  if (span == 0) {
    return NextU64();  // Full 64-bit range requested.
  }
  return lo + NextU64() % span;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

uint64_t Rng::Poisson(double mean) {
  if (!(mean > 0.0)) {
    return 0;
  }
  // Knuth's product method, chunked: Poisson(a + b) = Poisson(a) + Poisson(b)
  // for independent draws, so means beyond the exp() underflow range split
  // into 32-mean chunks (e^-32 is comfortably representable).
  uint64_t count = 0;
  constexpr double kChunk = 32.0;
  while (mean > 0.0) {
    const double lambda = mean > kChunk ? kChunk : mean;
    mean -= lambda;
    const double limit = std::exp(-lambda);
    double product = NextDouble();
    while (product >= limit) {
      ++count;
      product *= NextDouble();
    }
  }
  return count;
}

bool Rng::Chance(double p) { return NextDouble() < p; }

double Rng::BoundedHeavyTail(double lo, double hi, double alpha) {
  // Inverse-CDF sampling of a bounded Pareto distribution.
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

}  // namespace nadino
