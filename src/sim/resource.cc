#include "src/sim/resource.h"

#include <utility>

namespace nadino {

FifoResource::FifoResource(Simulator* sim, std::string name, double speed_factor)
    : sim_(sim), name_(std::move(name)), speed_factor_(speed_factor) {}

void FifoResource::Submit(SimDuration service, Callback done) {
  if (service < 0) {
    service = 0;
  }
  queue_.push_back(Job{service, std::move(done)});
  if (!busy_) {
    StartNext();
  }
}

void FifoResource::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  Job job = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  busy_since_ = sim_->now();
  const auto scaled =
      static_cast<SimDuration>(static_cast<double>(job.service) * speed_factor_ + 0.5);
  sim_->Schedule(scaled, [this, scaled, done = std::move(job.done)]() {
    busy_accum_ += scaled;
    window_busy_ += scaled;
    ++jobs_completed_;
    // Start the next job before the completion callback so that work the
    // callback submits queues behind already-waiting jobs (FIFO order).
    StartNext();
    if (done) {
      done();
    }
  });
}

SimDuration FifoResource::busy_time() const {
  SimDuration t = busy_accum_;
  if (busy_) {
    t += sim_->now() - busy_since_;
  }
  return t;
}

double FifoResource::WindowUtilization() const {
  if (pinned_) {
    return 1.0;
  }
  return WindowUsefulUtilization();
}

double FifoResource::WindowUsefulUtilization() const {
  const SimDuration span = sim_->now() - window_start_;
  if (span <= 0) {
    return 0.0;
  }
  SimDuration busy = window_busy_;
  if (busy_) {
    busy += sim_->now() - busy_since_;
  }
  double u = static_cast<double>(busy) / static_cast<double>(span);
  return u > 1.0 ? 1.0 : u;
}

void FifoResource::ResetWindow() {
  window_start_ = sim_->now();
  window_busy_ = 0;
  if (busy_) {
    // Re-anchor the in-flight job so its pre-window portion is not counted.
    busy_since_ = sim_->now();
  }
}

}  // namespace nadino
