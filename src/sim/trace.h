// Structured event tracing for the data plane.
//
// A bounded ring of (virtual time, category, actor, label, args) records,
// cheap enough to leave attached during experiments. Engines and the ingress
// gateway emit events when a Tracer is installed; tools and tests use the
// trace to assert event-level properties (ordering, per-request hop counts)
// and to render human-readable timelines (see examples/trace_timeline).

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace nadino {

enum class TraceCategory : uint8_t {
  kEngine,   // DNE/CNE TX/RX stages.
  kRdma,     // Verbs-level posts/completions.
  kIpc,      // SK_MSG / Comch descriptor hops.
  kIngress,  // Gateway request/response lifecycle.
  kApp,      // Function-level events.
  kFault,    // FaultPlane injections (site/action, scope in args).
  kCluster,  // Membership transitions, heartbeats, failover re-routes.
};

const char* TraceCategoryName(TraceCategory category);

struct TraceEvent {
  SimTime at = 0;
  TraceCategory category = TraceCategory::kApp;
  uint32_t actor = 0;  // Engine id, function id, worker index...
  std::string label;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class Tracer {
 public:
  explicit Tracer(Simulator* sim, size_t capacity = 65536);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(TraceCategory category, uint32_t actor, std::string label, uint64_t arg0 = 0,
              uint64_t arg1 = 0);

  // Oldest-first view of the retained events.
  std::vector<TraceEvent> Snapshot() const;

  // Events matching a predicate, oldest first.
  std::vector<TraceEvent> Filter(const std::function<bool(const TraceEvent&)>& pred) const;

  // Count of retained events whose label matches exactly.
  size_t CountLabel(const std::string& label) const;

  // "t=12.345us [engine/1001] tx_post arg0=7 arg1=64" lines, oldest first.
  std::string ToText(size_t max_lines = 1000) const;

  void Clear();
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0; }
  size_t size() const { return recorded_ < ring_.size() ? recorded_ : ring_.size(); }

 private:
  Simulator* sim_;
  std::vector<TraceEvent> ring_;
  uint64_t recorded_ = 0;
};

}  // namespace nadino

#endif  // SRC_SIM_TRACE_H_
