#include "src/sim/simulator.h"

#include <utility>

namespace nadino {

EventId Simulator::Schedule(SimDuration delay, Callback cb) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

bool Simulator::Cancel(EventId id) { return pending_.erase(id) > 0; }

void Simulator::SkipCancelled() {
  while (!queue_.empty() && pending_.count(queue_.top().id) == 0) {
    queue_.pop();
  }
}

bool Simulator::PopAndRun() {
  SkipCancelled();
  if (queue_.empty()) {
    return false;
  }
  // The callback may schedule new events; move it out before popping.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  pending_.erase(ev.id);
  now_ = ev.when;
  ++events_processed_;
  ev.cb();
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && PopAndRun()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    SkipCancelled();
    if (queue_.empty() || queue_.top().when > deadline) {
      break;
    }
    PopAndRun();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::Step() { return PopAndRun(); }

}  // namespace nadino
