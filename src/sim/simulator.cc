#include "src/sim/simulator.h"

#include <limits>

namespace nadino {

namespace {
constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();
}  // namespace

Simulator::~Simulator() = default;

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoFreeSlot) {
    const uint32_t index = free_head_;
    free_head_ = SlotAt(index).next_free;
    return index;
  }
  if ((slot_count_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void Simulator::FreeSlot(uint32_t index) {
  Slot& slot = SlotAt(index);
  slot.state = SlotState::kFree;
  // Tag the next tenancy of this slot; skip 0 on wrap so MakeId(0, gen) can
  // never collide with kInvalidEventId.
  if (++slot.generation == 0) {
    slot.generation = 1;
  }
  slot.next_free = free_head_;
  free_head_ = index;
}

bool Simulator::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id >> 32);
  const uint32_t generation = static_cast<uint32_t>(id);
  if (index >= slot_count_) {
    return false;
  }
  Slot& slot = SlotAt(index);
  if (slot.state != SlotState::kLive || slot.generation != generation) {
    return false;
  }
  slot.state = SlotState::kCancelled;
  --live_count_;
  return true;
}

// Hole-based sift-up: the new entry rides down in a register while parents
// shift into the hole, halving the memory traffic of swap-based sifting.
void Simulator::HeapPush(HeapEntry entry) {
  heap_.push_back(entry);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

// Hole-based sift-down of the displaced last element.
void Simulator::HeapPopTop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  size_t i = 0;
  for (;;) {
    const size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    size_t child = left;
    const size_t right = left + 1;
    if (right < n && Earlier(heap_[right], heap_[left])) {
      child = right;
    }
    if (!Earlier(heap_[child], last)) {
      break;
    }
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = last;
}

bool Simulator::PopAndRunBefore(SimTime deadline) {
  for (;;) {
    if (heap_.empty()) {
      return false;
    }
    // Copy the POD top out; the heap is never mutated through a const ref.
    const HeapEntry top = heap_.front();
    Slot& slot = SlotAt(top.slot);
    if (slot.state == SlotState::kCancelled) {
      // Lazy removal: the only place cancelled entries are skipped.
      HeapPopTop();
      slot.cb.Reset();
      FreeSlot(top.slot);
      continue;
    }
    assert(slot.state == SlotState::kLive && "heap entry points at a freed slot");
    if (top.when > deadline) {
      return false;
    }
    HeapPopTop();
    now_ = top.when;
    ++events_processed_;
    --live_count_;
    // Invoke in place: kRunning keeps the slot out of the free list (a
    // callback scheduling new events can never be handed its own slot) and
    // out of Cancel's reach (cancelling an already-firing id returns false,
    // as the old pending_-erase-before-call order guaranteed).
    slot.state = SlotState::kRunning;
    slot.cb.Invoke();
    slot.cb.Reset();
    FreeSlot(top.slot);
    return true;
  }
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && PopAndRunBefore(kNoDeadline)) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && PopAndRunBefore(deadline)) {
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::Step() {
  stopped_ = false;
  return PopAndRunBefore(kNoDeadline);
}

}  // namespace nadino
