#include "src/sim/simulator.h"

#include <limits>
#include <thread>

namespace nadino {

namespace {
constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();
}  // namespace

thread_local Simulator::WorkerState* Simulator::tls_ctx_ = nullptr;

Simulator::~Simulator() = default;

uint32_t Simulator::AllocSlot(Arena& arena, uint32_t arena_index) {
  if (arena.free_head != kNoFreeSlot) {
    const uint32_t index = arena.free_head;
    arena.free_head = SlotAt(index).next_free;
    return index;
  }
  assert(arena.slot_count < (1u << kArenaLocalBits) && "arena slot space exhausted");
  if ((arena.slot_count >> kChunkShift) == arena.chunk_count) {
    if (arena.chunks == nullptr) {
      arena.chunks = std::make_unique<std::unique_ptr<Slot[]>[]>(Arena::kMaxChunks);
    }
    arena.chunks[arena.chunk_count] = std::make_unique<Slot[]>(kChunkSize);
    ++arena.chunk_count;
  }
  return (arena_index << kArenaLocalBits) | arena.slot_count++;
}

void Simulator::FreeSlot(uint32_t index) {
  Arena& arena = arenas_[index >> kArenaLocalBits];
  Slot& slot = SlotAt(index);
  slot.state = SlotState::kFree;
  // Tag the next tenancy of this slot; skip 0 on wrap so MakeId(0, gen) can
  // never collide with kInvalidEventId.
  if (++slot.generation == 0) {
    slot.generation = 1;
  }
  slot.next_free = arena.free_head;
  arena.free_head = index;
}

void Simulator::SetShardCount(uint32_t shards) {
  assert(!par_active_ && "SetShardCount during a parallel drain");
  if (shards < 1) {
    shards = 1;
  }
  if (shards > kMaxShards) {
    shards = kMaxShards;
  }
  if (shards == shards_.size()) {
    return;
  }
  // Consolidate whatever is pending onto shard 0 of the new layout: shard
  // residency is an implementation detail (the merge order is (when, seq)),
  // so redistribution never changes the executed sequence.
  std::vector<HeapEntry> pending;
  for (Shard& shard : shards_) {
    pending.insert(pending.end(), shard.heap.begin(), shard.heap.end());
  }
  shards_.assign(shards, Shard{});
  if (!pending.empty()) {
    std::sort(pending.begin(), pending.end(),
              [](const HeapEntry& a, const HeapEntry& b) { return Earlier(a, b); });
    shards_[0].heap = std::move(pending);
  }
  std::fill(std::begin(head_keys_), std::end(head_keys_), kEmptyHead);
  RefreshTreeMode();
  SyncHead(0);
}

void Simulator::SetWorkerCount(uint32_t workers) {
  assert(!par_active_ && "SetWorkerCount during a parallel drain");
  if (workers < 1) {
    workers = 1;
  }
  if (workers > kMaxWorkers) {
    workers = kMaxWorkers;
  }
  worker_count_ = workers;
  if (arenas_.size() < static_cast<size_t>(workers) + 1) {
    arenas_.resize(workers + 1);
  }
}

void Simulator::SetMergeTreeThresholdForTest(int threshold) {
  merge_tree_threshold_ = threshold < 0 ? kDefaultMergeTreeThreshold : threshold;
  RefreshTreeMode();
}

bool Simulator::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id >> 32);
  const uint32_t generation = static_cast<uint32_t>(id);
  const uint32_t arena_index = index >> kArenaLocalBits;
  if (arena_index >= arenas_.size() ||
      (index & kArenaLocalMask) >= arenas_[arena_index].slot_count) {
    return false;
  }
  Slot& slot = SlotAt(index);
  if (slot.state != SlotState::kLive || slot.generation != generation) {
    return false;
  }
  slot.state = SlotState::kCancelled;
  if (WorkerState* ws = ParallelContext()) {
    --ws->live_delta;
  } else {
    --live_count_;
  }
  return true;
}

// Hole-based sift-up: the entry rides up in a register while parents shift
// into the hole, halving the memory traffic of swap-based sifting.
void Simulator::SiftUp(std::vector<HeapEntry>& heap, size_t i) {
  const HeapEntry entry = heap[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(entry, heap[parent])) {
      break;
    }
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = entry;
}

// Hole-based sift-down of the entry at `i`.
void Simulator::SiftDown(std::vector<HeapEntry>& heap, size_t i) {
  const size_t n = heap.size();
  const HeapEntry entry = heap[i];
  for (;;) {
    const size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    size_t child = left;
    const size_t right = left + 1;
    if (right < n && Earlier(heap[right], heap[left])) {
      child = right;
    }
    if (!Earlier(heap[child], entry)) {
      break;
    }
    heap[i] = heap[child];
    i = child;
  }
  heap[i] = entry;
}

// Floyd's bottom-up heap construction: O(n) regardless of prior order, used
// when a bulk admission rivals the shard's existing backlog.
void Simulator::HeapRebuild(std::vector<HeapEntry>& heap) {
  for (size_t i = heap.size() / 2; i-- > 0;) {
    SiftDown(heap, i);
  }
}

void Simulator::HeapPush(uint32_t shard, HeapEntry entry) {
  std::vector<HeapEntry>& heap = shards_[shard].heap;
  heap.push_back(entry);
  SiftUp(heap, heap.size() - 1);
  SyncHead(shard);
}

void Simulator::HeapPopTop(uint32_t shard) {
  std::vector<HeapEntry>& heap = shards_[shard].heap;
  const HeapEntry last = heap.back();
  heap.pop_back();
  if (!heap.empty()) {
    heap[0] = last;
    SiftDown(heap, 0);
  }
  SyncHead(shard);
}

// --- Tournament-tree merge ---------------------------------------------------
//
// A tournament (winner) tree over the shard head keys: internal node i holds
// the WINNING shard of the match between its two subtrees; tree_nodes_[1] is
// the overall winner, mirrored in tree_winner_. When one leaf's key changes,
// recomputing the leaf-to-root path costs O(log k) matches — vs the O(k)
// linear scan. A loser tree would halve the loads per level, but its replay
// is only sound when the changed leaf is the reigning winner (replacement
// selection); our pushes update arbitrary leaves, which corrupts stored
// losers, so the winner layout is the correct structure here.
// Leaves are padded to a power of two; padding leaves index past the shard
// count into head_keys_, which carries the +inf sentinel there, so padding
// can never beat a real, non-empty shard. Ties keep the lower shard index
// (matching the linear scan; ties only arise between sentinels — (when, seq)
// is unique for live entries).

void Simulator::RefreshTreeMode() {
  const uint32_t count = shard_count();
  tree_active_ = static_cast<int>(count) > merge_tree_threshold_;
  if (tree_active_ && !par_active_) {
    TreeBuild();
  }
}

void Simulator::TreeBuild() {
  const uint32_t count = shard_count();
  tree_cap_ = 1;
  while (tree_cap_ < count) {
    tree_cap_ <<= 1;
  }
  assert(tree_cap_ <= kMaxShards && "head_keys_ must cover the padding leaves");
  tree_nodes_.assign(2 * tree_cap_, 0);
  if (tree_cap_ == 1) {
    tree_winner_ = 0;
    tree_nodes_[1] = 0;
    return;
  }
  // Leaves carry their own shard index; internals the winner of their match.
  for (uint32_t j = 0; j < tree_cap_; ++j) {
    tree_nodes_[tree_cap_ + j] = j;
  }
  for (uint32_t i = tree_cap_ - 1; i >= 1; --i) {
    const uint32_t a = tree_nodes_[2 * i];
    const uint32_t b = tree_nodes_[2 * i + 1];
    tree_nodes_[i] = HeadLess(head_keys_[b], head_keys_[a]) ? b : a;
  }
  tree_winner_ = tree_nodes_[1];
}

void Simulator::TreeReplay(uint32_t leaf) {
  if (tree_cap_ <= 1) {
    tree_winner_ = 0;
    return;
  }
  for (uint32_t i = (tree_cap_ + leaf) >> 1; i >= 1; i >>= 1) {
    const uint32_t a = tree_nodes_[2 * i];
    const uint32_t b = tree_nodes_[2 * i + 1];
    tree_nodes_[i] = HeadLess(head_keys_[b], head_keys_[a]) ? b : a;
  }
  tree_winner_ = tree_nodes_[1];
}

int Simulator::EarliestShard() {
  const uint32_t count = static_cast<uint32_t>(shards_.size());
  for (;;) {
    uint32_t best;
    if (tree_active_) {
      // O(log k) merge: the tournament tree keeps the winning head current across
      // pops and pushes (replayed inside SyncHead).
      best = tree_winner_;
      if (HeadEmpty(head_keys_[best])) {
        return -1;  // The winner is a sentinel: every shard is drained.
      }
    } else {
      // The linear merge scan reads only the compact head_keys_ array (16
      // bytes per shard, contiguous); empty shards lose automatically via
      // the sentinel, so the loop body is a pair of compares the compiler
      // can turn into conditional moves.
      best = 0;
      for (uint32_t s = 1; s < count; ++s) {
        const HeadKey& a = head_keys_[s];
        const HeadKey& b = head_keys_[best];
        if (a.when < b.when || (a.when == b.when && a.seq < b.seq)) {
          best = s;
        }
      }
      if (shards_[best].heap.empty()) {
        return -1;  // The minimum is the sentinel: every shard is drained.
      }
    }
    // Lazy removal: a cancelled entry is discarded only when it surfaces as
    // the global minimum (one slab probe per executed event; cancelled
    // entries anywhere else cost nothing until they surface).
    const HeapEntry top = shards_[best].heap.front();
    Slot& slot = SlotAt(top.slot);
    if (slot.state != SlotState::kCancelled) {
      assert(slot.state == SlotState::kLive && "heap entry points at a freed slot");
      return static_cast<int>(best);
    }
    HeapPopTop(best);
    slot.cb.Reset();
    FreeSlot(top.slot);
  }
}

bool Simulator::PopAndRunBefore(SimTime deadline) {
  const int shard = EarliestShard();
  if (shard < 0) {
    return false;
  }
  // Copy the POD top out; the heap is never mutated through a const ref.
  const HeapEntry top = shards_[static_cast<uint32_t>(shard)].heap.front();
  if (top.when > deadline) {
    return false;
  }
  HeapPopTop(static_cast<uint32_t>(shard));
  // New events scheduled by this callback inherit the event's shard.
  current_shard_ = static_cast<uint32_t>(shard);
  Slot& slot = SlotAt(top.slot);
  now_ = top.when;
  ++events_processed_;
  --live_count_;
  // Invoke in place: kRunning keeps the slot out of the free list (a
  // callback scheduling new events can never be handed its own slot) and
  // out of Cancel's reach (cancelling an already-firing id returns false,
  // as the old pending_-erase-before-call order guaranteed).
  slot.state = SlotState::kRunning;
  slot.cb.Invoke();
  slot.cb.Reset();
  FreeSlot(top.slot);
  return true;
}

void Simulator::Run() {
  if (EffectiveWorkers() > 1) {
    RunParallelUntil(kNoDeadline);
    return;
  }
  stopped_.store(false, std::memory_order_relaxed);
  while (!stopped_.load(std::memory_order_relaxed) && PopAndRunBefore(kNoDeadline)) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  if (EffectiveWorkers() > 1) {
    RunParallelUntil(deadline);
    if (now_ < deadline) {
      now_ = deadline;
    }
    return;
  }
  stopped_.store(false, std::memory_order_relaxed);
  while (!stopped_.load(std::memory_order_relaxed) && PopAndRunBefore(deadline)) {
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::Step() {
  stopped_.store(false, std::memory_order_relaxed);
  return PopAndRunBefore(kNoDeadline);
}

// --- Parallel drain ----------------------------------------------------------

uint32_t Simulator::EffectiveWorkers() const {
  const uint32_t shards = static_cast<uint32_t>(shards_.size());
  return worker_count_ < shards ? worker_count_ : shards;
}

void Simulator::BarrierWait(const std::function<void()>& serial_section) {
  const uint32_t my_phase = barrier_.phase.load(std::memory_order_relaxed);
  if (barrier_.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == barrier_.total) {
    if (serial_section) {
      serial_section();
    }
    barrier_.arrived.store(0, std::memory_order_relaxed);
    barrier_.phase.store(my_phase + 1, std::memory_order_release);
    return;
  }
  int spins = 0;
  while (barrier_.phase.load(std::memory_order_acquire) == my_phase) {
    if (++spins > 256) {
      std::this_thread::yield();
    }
  }
}

SimTime Simulator::ComputeLocalMin(const WorkerState& ws) const {
  SimTime min = kNoDeadline;
  for (uint32_t s : ws.owned) {
    // A cancelled head still bounds the minimum conservatively low: the
    // window it forces is merely smaller than necessary, and the drain loop
    // discards the entry (progress) the moment it falls inside a window.
    if (head_keys_[s].when < min) {
      min = head_keys_[s].when;
    }
  }
  return min;
}

void Simulator::AdvanceWindow(SimTime deadline) {
  SimTime global_min = kNoDeadline;
  for (const WorkerState& ws : workers_) {
    if (ws.local_min < global_min) {
      global_min = ws.local_min;
    }
  }
  if (barrier_hook_) {
    barrier_hook_();
  }
  if (stopped_.load(std::memory_order_relaxed) || global_min == kNoDeadline ||
      global_min > deadline) {
    win_stop_ = true;
    return;
  }
  ++parallel_windows_;
  SimTime end = (global_min > kNoDeadline - lookahead_) ? kNoDeadline : global_min + lookahead_;
  const SimTime cap = (deadline == kNoDeadline) ? kNoDeadline : deadline + 1;
  if (end > cap) {
    end = cap;
    ++parallel_horizon_clamps_;
  }
  win_end_ = end;
  win_stop_ = false;
}

void Simulator::ParallelFree(WorkerState& ws, uint32_t slot_index) {
  if ((slot_index >> kArenaLocalBits) == ws.id + 1) {
    FreeSlot(slot_index);
  } else {
    // The slot lives in another arena (serially-admitted events, or the main
    // slab): its free list is not ours to touch — fold after the join.
    ws.foreign_frees.push_back(slot_index);
  }
}

void Simulator::DrainOwnShard(WorkerState& ws, uint32_t shard) {
  ws.current_shard = shard;
  std::vector<HeapEntry>& heap = shards_[shard].heap;
  while (!heap.empty() && heap.front().when < win_end_) {
    if (stopped_.load(std::memory_order_relaxed)) {
      return;
    }
    const HeapEntry top = heap.front();
    HeapPopTop(shard);
    Slot& slot = SlotAt(top.slot);
    if (slot.state == SlotState::kCancelled) {
      slot.cb.Reset();
      ParallelFree(ws, top.slot);
      continue;
    }
    assert(slot.state == SlotState::kLive && "heap entry points at a freed slot");
    slot.state = SlotState::kRunning;
    ws.local_now = top.when;
    if (top.when > ws.max_exec_time) {
      ws.max_exec_time = top.when;
    }
    ++ws.executed;
    --ws.live_delta;
    slot.cb.Invoke();
    slot.cb.Reset();
    ParallelFree(ws, top.slot);
  }
}

void Simulator::FlushMail(WorkerState& ws) {
  const uint32_t arena_index = ws.id + 1;
  for (uint32_t s : ws.owned) {
    std::vector<HeapEntry>& heap = shards_[s].heap;
    const size_t old_size = heap.size();
    size_t added = 0;
    for (WorkerState& src : workers_) {
      std::vector<Mail>& box = src.outbox[s];
      for (Mail& mail : box) {
        const uint32_t slot_index = AllocSlot(arenas_[arena_index], arena_index);
        Slot& slot = SlotAt(slot_index);
        slot.state = SlotState::kLive;
        slot.cb = std::move(mail.cb);
        heap.push_back(HeapEntry{mail.when, mail.seq, slot_index});
        ++added;
      }
      box.clear();
    }
    if (added == 0) {
      continue;
    }
    if (old_size == 0) {
      std::sort(heap.begin(), heap.end(),
                [](const HeapEntry& a, const HeapEntry& b) { return Earlier(a, b); });
    } else if (added >= old_size) {
      HeapRebuild(heap);
    } else {
      for (size_t i = old_size; i < heap.size(); ++i) {
        SiftUp(heap, i);
      }
    }
    SyncHead(s);
  }
}

void Simulator::WorkerLoop(WorkerState& ws, SimTime deadline) {
  tls_ctx_ = &ws;
  ws.local_min = ComputeLocalMin(ws);
  for (;;) {
    // Barrier B: the last arriver folds the local minima into the next
    // window (or the stop decision) and runs the barrier hook.
    BarrierWait([this, deadline] { AdvanceWindow(deadline); });
    if (win_stop_) {
      break;
    }
    for (uint32_t s : ws.owned) {
      DrainOwnShard(ws, s);
    }
    // Barrier A: every worker has finished executing; outboxes are quiesced
    // and safe for their destination owners to drain.
    BarrierWait(nullptr);
    FlushMail(ws);
    ws.local_min = ComputeLocalMin(ws);
  }
  tls_ctx_ = nullptr;
}

void Simulator::RunParallelUntil(SimTime deadline) {
  const uint32_t nworkers = EffectiveWorkers();
  const uint32_t nshards = shard_count();
  assert(nworkers > 1);
  assert(!par_active_ && "re-entrant parallel Run");
  stopped_.store(false, std::memory_order_relaxed);

  // Stride sequence numbers per origin shard from here on: disjoint from
  // every serially-assigned seq, unique per (origin, k), and assigned by the
  // deterministic per-shard execution — never by thread interleaving.
  par_seq_base_ = next_seq_;
  for (Shard& shard : shards_) {
    shard.par_seq_next = 0;
  }

  workers_.clear();
  workers_.resize(nworkers);
  for (uint32_t w = 0; w < nworkers; ++w) {
    WorkerState& ws = workers_[w];
    ws.sim = this;
    ws.id = w;
    ws.local_now = now_;
    ws.max_exec_time = now_;
    ws.outbox.resize(nshards);
    for (uint32_t s = w; s < nshards; s += nworkers) {
      ws.owned.push_back(s);
    }
  }
  barrier_.arrived.store(0, std::memory_order_relaxed);
  barrier_.phase.store(0, std::memory_order_relaxed);
  barrier_.total = nworkers;
  win_stop_ = false;
  par_active_ = true;

  std::vector<std::thread> threads;
  threads.reserve(nworkers - 1);
  for (uint32_t w = 1; w < nworkers; ++w) {
    threads.emplace_back([this, w, deadline] { WorkerLoop(workers_[w], deadline); });
  }
  WorkerLoop(workers_[0], deadline);
  for (std::thread& t : threads) {
    t.join();
  }
  par_active_ = false;

  // Fold the per-worker state back into the serial view.
  uint64_t max_par_next = 0;
  for (const Shard& shard : shards_) {
    if (shard.par_seq_next > max_par_next) {
      max_par_next = shard.par_seq_next;
    }
  }
  next_seq_ = par_seq_base_ + static_cast<uint64_t>(nshards) * max_par_next;
  int64_t live_delta = 0;
  SimTime max_exec = now_;
  for (WorkerState& ws : workers_) {
    events_processed_ += ws.executed;
    live_delta += ws.live_delta;
    callback_heap_spills_ += ws.spills;
    parallel_mail_delivered_ += ws.mailed;
    if (ws.max_exec_time > max_exec) {
      max_exec = ws.max_exec_time;
    }
    for (uint32_t slot_index : ws.foreign_frees) {
      FreeSlot(slot_index);
    }
    ws.foreign_frees.clear();
    ws.sim = nullptr;
  }
  live_count_ = static_cast<size_t>(static_cast<int64_t>(live_count_) + live_delta);
  if (max_exec > now_) {
    now_ = max_exec;
  }
  current_shard_ = 0;
  if (tree_active_) {
    TreeBuild();
  }
}

}  // namespace nadino
