#include "src/sim/simulator.h"

#include <limits>

namespace nadino {

namespace {
constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();
}  // namespace

Simulator::~Simulator() = default;

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoFreeSlot) {
    const uint32_t index = free_head_;
    free_head_ = SlotAt(index).next_free;
    return index;
  }
  if ((slot_count_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void Simulator::FreeSlot(uint32_t index) {
  Slot& slot = SlotAt(index);
  slot.state = SlotState::kFree;
  // Tag the next tenancy of this slot; skip 0 on wrap so MakeId(0, gen) can
  // never collide with kInvalidEventId.
  if (++slot.generation == 0) {
    slot.generation = 1;
  }
  slot.next_free = free_head_;
  free_head_ = index;
}

void Simulator::SetShardCount(uint32_t shards) {
  if (shards < 1) {
    shards = 1;
  }
  if (shards > kMaxShards) {
    shards = kMaxShards;
  }
  if (shards == shards_.size()) {
    return;
  }
  // Consolidate whatever is pending onto shard 0 of the new layout: shard
  // residency is an implementation detail (the merge order is (when, seq)),
  // so redistribution never changes the executed sequence.
  std::vector<HeapEntry> pending;
  for (Shard& shard : shards_) {
    pending.insert(pending.end(), shard.heap.begin(), shard.heap.end());
  }
  shards_.assign(shards, Shard{});
  if (!pending.empty()) {
    std::sort(pending.begin(), pending.end(),
              [](const HeapEntry& a, const HeapEntry& b) { return Earlier(a, b); });
    shards_[0].heap = std::move(pending);
  }
  std::fill(std::begin(head_keys_), std::end(head_keys_), kEmptyHead);
  SyncHead(0);
}

bool Simulator::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id >> 32);
  const uint32_t generation = static_cast<uint32_t>(id);
  if (index >= slot_count_) {
    return false;
  }
  Slot& slot = SlotAt(index);
  if (slot.state != SlotState::kLive || slot.generation != generation) {
    return false;
  }
  slot.state = SlotState::kCancelled;
  --live_count_;
  return true;
}

// Hole-based sift-up: the entry rides up in a register while parents shift
// into the hole, halving the memory traffic of swap-based sifting.
void Simulator::SiftUp(std::vector<HeapEntry>& heap, size_t i) {
  const HeapEntry entry = heap[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(entry, heap[parent])) {
      break;
    }
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = entry;
}

// Hole-based sift-down of the entry at `i`.
void Simulator::SiftDown(std::vector<HeapEntry>& heap, size_t i) {
  const size_t n = heap.size();
  const HeapEntry entry = heap[i];
  for (;;) {
    const size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    size_t child = left;
    const size_t right = left + 1;
    if (right < n && Earlier(heap[right], heap[left])) {
      child = right;
    }
    if (!Earlier(heap[child], entry)) {
      break;
    }
    heap[i] = heap[child];
    i = child;
  }
  heap[i] = entry;
}

// Floyd's bottom-up heap construction: O(n) regardless of prior order, used
// when a bulk admission rivals the shard's existing backlog.
void Simulator::HeapRebuild(std::vector<HeapEntry>& heap) {
  for (size_t i = heap.size() / 2; i-- > 0;) {
    SiftDown(heap, i);
  }
}

void Simulator::HeapPush(uint32_t shard, HeapEntry entry) {
  std::vector<HeapEntry>& heap = shards_[shard].heap;
  heap.push_back(entry);
  SiftUp(heap, heap.size() - 1);
  SyncHead(shard);
}

void Simulator::HeapPopTop(uint32_t shard) {
  std::vector<HeapEntry>& heap = shards_[shard].heap;
  const HeapEntry last = heap.back();
  heap.pop_back();
  if (!heap.empty()) {
    heap[0] = last;
    SiftDown(heap, 0);
  }
  SyncHead(shard);
}

int Simulator::EarliestShard() {
  const uint32_t count = static_cast<uint32_t>(shards_.size());
  for (;;) {
    // The merge scan reads only the compact head_keys_ array (16 bytes per
    // shard, contiguous); empty shards lose automatically via the sentinel,
    // so the loop body is a pair of compares the compiler can turn into
    // conditional moves.
    uint32_t best = 0;
    for (uint32_t s = 1; s < count; ++s) {
      const HeadKey& a = head_keys_[s];
      const HeadKey& b = head_keys_[best];
      if (a.when < b.when || (a.when == b.when && a.seq < b.seq)) {
        best = s;
      }
    }
    if (shards_[best].heap.empty()) {
      return -1;  // The minimum is the sentinel: every shard is drained.
    }
    // Lazy removal: a cancelled entry is discarded only when it surfaces as
    // the global minimum (one slab probe per executed event; cancelled
    // entries anywhere else cost nothing until they surface).
    const HeapEntry top = shards_[best].heap.front();
    Slot& slot = SlotAt(top.slot);
    if (slot.state != SlotState::kCancelled) {
      assert(slot.state == SlotState::kLive && "heap entry points at a freed slot");
      return static_cast<int>(best);
    }
    HeapPopTop(best);
    slot.cb.Reset();
    FreeSlot(top.slot);
  }
}

bool Simulator::PopAndRunBefore(SimTime deadline) {
  const int shard = EarliestShard();
  if (shard < 0) {
    return false;
  }
  // Copy the POD top out; the heap is never mutated through a const ref.
  const HeapEntry top = shards_[static_cast<uint32_t>(shard)].heap.front();
  if (top.when > deadline) {
    return false;
  }
  HeapPopTop(static_cast<uint32_t>(shard));
  // New events scheduled by this callback inherit the event's shard.
  current_shard_ = static_cast<uint32_t>(shard);
  Slot& slot = SlotAt(top.slot);
  now_ = top.when;
  ++events_processed_;
  --live_count_;
  // Invoke in place: kRunning keeps the slot out of the free list (a
  // callback scheduling new events can never be handed its own slot) and
  // out of Cancel's reach (cancelling an already-firing id returns false,
  // as the old pending_-erase-before-call order guaranteed).
  slot.state = SlotState::kRunning;
  slot.cb.Invoke();
  slot.cb.Reset();
  FreeSlot(top.slot);
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && PopAndRunBefore(kNoDeadline)) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && PopAndRunBefore(deadline)) {
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::Step() {
  stopped_ = false;
  return PopAndRunBefore(kNoDeadline);
}

}  // namespace nadino
