#include "src/sim/trace.h"

#include <cstdio>

namespace nadino {

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kEngine:
      return "engine";
    case TraceCategory::kRdma:
      return "rdma";
    case TraceCategory::kIpc:
      return "ipc";
    case TraceCategory::kIngress:
      return "ingress";
    case TraceCategory::kApp:
      return "app";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kCluster:
      return "cluster";
  }
  return "?";
}

Tracer::Tracer(Simulator* sim, size_t capacity)
    : sim_(sim), ring_(capacity == 0 ? 1 : capacity) {}

void Tracer::Record(TraceCategory category, uint32_t actor, std::string label, uint64_t arg0,
                    uint64_t arg1) {
  TraceEvent& slot = ring_[recorded_ % ring_.size()];
  slot.at = sim_->now();
  slot.category = category;
  slot.actor = actor;
  slot.label = std::move(label);
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  ++recorded_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  const size_t n = size();
  out.reserve(n);
  const uint64_t start = recorded_ - n;
  for (uint64_t i = start; i < recorded_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::Filter(
    const std::function<bool(const TraceEvent&)>& pred) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : Snapshot()) {
    if (pred(event)) {
      out.push_back(event);
    }
  }
  return out;
}

size_t Tracer::CountLabel(const std::string& label) const {
  size_t count = 0;
  const size_t n = size();
  const uint64_t start = recorded_ - n;
  for (uint64_t i = start; i < recorded_; ++i) {
    if (ring_[i % ring_.size()].label == label) {
      ++count;
    }
  }
  return count;
}

std::string Tracer::ToText(size_t max_lines) const {
  std::string out;
  char line[256];
  size_t lines = 0;
  for (const TraceEvent& event : Snapshot()) {
    if (lines++ >= max_lines) {
      out += "... (truncated)\n";
      break;
    }
    std::snprintf(line, sizeof(line), "t=%.3fus [%s/%u] %s arg0=%llu arg1=%llu\n",
                  ToUs(event.at), TraceCategoryName(event.category), event.actor,
                  event.label.c_str(), static_cast<unsigned long long>(event.arg0),
                  static_cast<unsigned long long>(event.arg1));
    out += line;
  }
  return out;
}

void Tracer::Clear() {
  // Reset the slots as well as the cursor: stale labels would otherwise pin
  // their string storage for the tracer's lifetime, and a later capacity-aware
  // reader walking the raw ring would see events from before the Clear().
  for (TraceEvent& slot : ring_) {
    slot = TraceEvent{};
  }
  recorded_ = 0;
}

}  // namespace nadino
