// Queueing resources: the building block for every contended hardware unit in
// the model (CPU cores, DPU cores, SoC DMA engines, NIC processing pipelines).
//
// A FifoResource is a single server with a FIFO queue. Work is submitted as
// (service_time, completion_callback); the resource serializes jobs, tracks
// busy time for utilization accounting, and exposes queue depth so congestion
// -aware policies (e.g. the DNE's least-congested RC connection selection)
// can inspect it.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace nadino {

class FifoResource {
 public:
  using Callback = std::function<void()>;

  // `speed_factor` scales every submitted service time; a wimpy DPU core is
  // modelled as a FifoResource with speed_factor > 1 (jobs take longer).
  FifoResource(Simulator* sim, std::string name, double speed_factor = 1.0);

  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;

  // Submits a job needing `service` time (before speed scaling); `done` fires
  // when the job completes. Jobs run in submission order.
  void Submit(SimDuration service, Callback done);

  // Submits a job with no completion callback (pure time consumption).
  void Consume(SimDuration service) { Submit(service, nullptr); }

  // Number of jobs waiting or in service.
  size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }

  bool busy() const { return busy_; }

  // Accumulated busy nanoseconds since construction or the last checkpoint.
  SimDuration busy_time() const;

  // Utilization in [0, 1] over the window since the last ResetWindow() call.
  double WindowUtilization() const;

  // Starts a fresh utilization window at the current virtual time.
  void ResetWindow();

  // When true, the resource reports 100% window utilization regardless of
  // useful work: models a busy-polling (pinned) core, matching how `top`
  // reports a poll loop. Useful-work utilization stays queryable through
  // WindowUsefulUtilization().
  void set_pinned(bool pinned) { pinned_ = pinned; }
  bool pinned() const { return pinned_; }

  // Useful-work utilization over the window, ignoring the pinned flag. The
  // ingress autoscaler uses this: it measures CPU time spent on data-plane
  // work inside the poll loop (paper section 3.6).
  double WindowUsefulUtilization() const;

  const std::string& name() const { return name_; }
  double speed_factor() const { return speed_factor_; }
  uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  struct Job {
    SimDuration service = 0;
    Callback done;
  };

  void StartNext();

  Simulator* sim_;
  std::string name_;
  double speed_factor_;
  bool busy_ = false;
  bool pinned_ = false;
  std::deque<Job> queue_;
  SimDuration busy_accum_ = 0;
  SimTime busy_since_ = 0;
  SimTime window_start_ = 0;
  SimDuration window_busy_ = 0;
  uint64_t jobs_completed_ = 0;
};

}  // namespace nadino

#endif  // SRC_SIM_RESOURCE_H_
