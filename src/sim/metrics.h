// Deterministic metrics registry: named counters, gauges, and fixed-bucket
// histograms with optional (tenant, node, engine) labels.
//
// Every component hangs its observability off the registry owned by the Env
// (src/core/env.h) instead of a private Stats struct, so one snapshot shows
// the whole pipeline — the shape production DPU dataplanes (NDN-DPDK,
// Palladium) expose. Registration is by stable string key; snapshots render
// entries in sorted key order with integer/fixed-precision formatting, so two
// runs with equal seeds produce byte-identical dumps (asserted by
// tests/determinism_test.cc).

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nadino {

// Label set for one metric instance. Unset dimensions are omitted from the
// rendered key. Only the three dimensions the experiments slice by are
// modelled; add a field here (and to Render()) before inventing ad-hoc name
// suffixes like "_tenant3".
struct MetricLabels {
  static constexpr int64_t kUnset = -1;

  int64_t tenant = kUnset;
  int64_t node = kUnset;
  int64_t engine = kUnset;

  // "{engine=1000,node=1,tenant=2}" (alphabetical, fixed order), or "" when
  // every dimension is unset.
  std::string Render() const;

  static MetricLabels Tenant(int64_t tenant) { return MetricLabels{tenant, kUnset, kUnset}; }
  static MetricLabels Node(int64_t node) { return MetricLabels{kUnset, node, kUnset}; }
  static MetricLabels Engine(int64_t engine) { return MetricLabels{kUnset, kUnset, engine}; }
};

// Monotonically increasing 64-bit event counter.
class CounterMetric {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;  // Hands out raw-word handles (below).
  uint64_t value_ = 0;
};

// A value that can go up and down (queue depths, utilization, residency).
class GaugeMetric {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
};

// ---------------------------------------------------------------------------
// Fast-path handles (DESIGN.md §3c). MetricsRegistry::Resolve*() pays the
// string+labels key construction and map walk exactly once; the returned
// handle is a raw pointer into the registry's stable storage (entries live in
// node-based map values and never move), so a hot-path bump is a single
// indirect add with no hashing, no string assembly, and no allocation.
// Handles stay valid for the registry's lifetime. A default-constructed
// handle is unresolved; bumping it is a programming error (asserted).
// ---------------------------------------------------------------------------

class CounterHandle {
 public:
  CounterHandle() = default;

  void Add(uint64_t n = 1) {
    assert(value_ != nullptr);
    *value_ += n;
  }
  void Increment() {
    assert(value_ != nullptr);
    ++*value_;
  }
  uint64_t value() const {
    assert(value_ != nullptr);
    return *value_;
  }
  bool resolved() const { return value_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit CounterHandle(uint64_t* value) : value_(value) {}
  uint64_t* value_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;

  void Set(double v) {
    assert(value_ != nullptr);
    *value_ = v;
  }
  void Add(double d) {
    assert(value_ != nullptr);
    *value_ += d;
  }
  double value() const {
    assert(value_ != nullptr);
    return *value_;
  }
  bool resolved() const { return value_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit GaugeHandle(double* value) : value_(value) {}
  double* value_ = nullptr;
};

class HistogramMetric;

class HistogramHandle {
 public:
  HistogramHandle() = default;

  inline void Record(int64_t value);
  const HistogramMetric* get() const { return histogram_; }
  bool resolved() const { return histogram_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit HistogramHandle(HistogramMetric* histogram) : histogram_(histogram) {}
  HistogramMetric* histogram_ = nullptr;
};

// Per-worker counter lanes for the parallel drain (DESIGN.md §3h): one
// cache-line-aligned 64-bit accumulator per drain worker, bumped without any
// synchronization on the hot path, folded into a registry counter at the
// epoch barrier (the barrier's serial section is the only reader/zeroer, and
// the barrier itself orders the plain accesses). The registry counter
// renders exactly like any other counter, so snapshots stay deterministic:
// fold points are fixed by the window schedule, not by thread timing.
class CounterLanes {
 public:
  CounterLanes() = default;
  CounterLanes(CounterHandle sink, uint32_t lane_count)
      : sink_(sink), lanes_(lane_count < 1 ? 1 : lane_count) {}

  // Hot path: called by worker `lane` only (lane < lane_count()).
  void Add(uint32_t lane, uint64_t n = 1) { lanes_[lane].pending += n; }
  void Increment(uint32_t lane) { ++lanes_[lane].pending; }

  // Fold point: drains every lane into the sink counter. Must run while all
  // writers are quiesced (the epoch barrier's serial section, or after the
  // run joins).
  void Fold() {
    uint64_t total = 0;
    for (Lane& lane : lanes_) {
      total += lane.pending;
      lane.pending = 0;
    }
    if (total != 0) {
      sink_.Add(total);
    }
  }

  uint32_t lane_count() const { return static_cast<uint32_t>(lanes_.size()); }
  bool resolved() const { return sink_.resolved(); }

 private:
  struct alignas(64) Lane {
    uint64_t pending = 0;
  };
  CounterHandle sink_;
  std::vector<Lane> lanes_;
};

// Fixed-bucket histogram over int64 samples (latencies in nanoseconds, byte
// sizes...). Buckets are cumulative-upper-bound style: sample x lands in the
// first bucket with x <= bound; samples above the last bound land in the
// implicit +inf bucket. Bounds are fixed at registration, so the dump is a
// stable vector of integers — deterministic by construction.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<int64_t> bounds);

  void Record(int64_t value);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  // Linear-interpolated value at quantile q in [0, 1] from the bucket counts.
  int64_t Percentile(double q) const;

 private:
  std::vector<int64_t> bounds_;   // Strictly increasing.
  std::vector<uint64_t> counts_;  // bounds_.size() + 1.
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

inline void HistogramHandle::Record(int64_t value) {
  assert(histogram_ != nullptr);
  histogram_->Record(value);
}

// Default histogram bounds for simulated durations, in nanoseconds: 1 us to
// 1 s, roughly 1-2-5 per decade.
const std::vector<int64_t>& DefaultDurationBoundsNs();

class MetricsRegistry {
 public:
  // Callback metrics are sampled at snapshot time — the bridge for leaf
  // classes (BufferPool, QpCache, TxScheduler) that keep local counters and
  // have no Env of their own.
  using Callback = std::function<uint64_t()>;
  // Gauge-flavoured callback: sampled at snapshot time, rendered with the
  // same fixed six-decimal formatting as a stored gauge (used for derived
  // ratios like slo_burn_rate that must never go stale in a snapshot).
  using GaugeCallback = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Each getter registers on first use and returns the existing instrument on
  // subsequent calls with the same (name, labels) key. Re-using a key with a
  // different instrument type is a programming error (asserted).
  CounterMetric& Counter(const std::string& name, const MetricLabels& labels = {});
  GaugeMetric& Gauge(const std::string& name, const MetricLabels& labels = {});
  HistogramMetric& Histogram(const std::string& name, const MetricLabels& labels = {},
                             const std::vector<int64_t>& bounds = DefaultDurationBoundsNs());

  // Handle resolution: same registration semantics as the reference getters
  // above (first call creates the instrument, later calls return the same
  // entry), but the result is a raw-word handle for hot paths. The string API
  // and a handle resolved for the same (name, labels) observe the same
  // underlying value — asserted by tests/metrics_test.cc.
  CounterHandle ResolveCounter(const std::string& name, const MetricLabels& labels = {}) {
    return CounterHandle(&Counter(name, labels).value_);
  }
  GaugeHandle ResolveGauge(const std::string& name, const MetricLabels& labels = {}) {
    return GaugeHandle(&Gauge(name, labels).value_);
  }
  HistogramHandle ResolveHistogram(const std::string& name, const MetricLabels& labels = {},
                                   const std::vector<int64_t>& bounds =
                                       DefaultDurationBoundsNs()) {
    return HistogramHandle(&Histogram(name, labels, bounds));
  }
  // Lane-split counter for parallel drain workers: same registration
  // semantics as ResolveCounter, with one unsynchronized accumulator per
  // worker folded into the shared value at each epoch barrier.
  CounterLanes ResolveCounterLanes(const std::string& name, uint32_t lane_count,
                                   const MetricLabels& labels = {}) {
    return CounterLanes(ResolveCounter(name, labels), lane_count);
  }

  // Registers (or replaces) a callback sampled at snapshot time; rendered
  // like a counter.
  void RegisterCallback(const std::string& name, const MetricLabels& labels, Callback fn);

  // Registers (or replaces) a gauge callback sampled at snapshot time;
  // rendered like a gauge.
  void RegisterGaugeCallback(const std::string& name, const MetricLabels& labels,
                             GaugeCallback fn);

  // Current value of a gauge or gauge-callback instrument; 0.0 when the key
  // is absent or names another kind.
  double GaugeValueOf(const std::string& name, const MetricLabels& labels = {}) const;

  // Current integer value of a counter or callback instrument; 0 when the key
  // is absent (or names a gauge/histogram). Lets experiment harnesses read
  // per-tenant counters back out instead of spelunking component accessors.
  uint64_t ValueOf(const std::string& name, const MetricLabels& labels = {}) const;

  // One "name{labels} ..." line per instrument, sorted by key. Counters and
  // callbacks render their integer value; gauges render with six decimals;
  // histograms render count/sum/min/max plus the bucket vector.
  std::string SnapshotText() const;

  // The same snapshot as a sorted JSON array of
  // {"name","labels":{...},"type","..."} objects.
  std::string SnapshotJson() const;

  size_t size() const { return entries_.size(); }

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram, kCallback, kGaugeCallback };

  struct Entry {
    Kind kind = Kind::kCounter;
    std::string name;
    MetricLabels labels;
    std::unique_ptr<CounterMetric> counter;
    std::unique_ptr<GaugeMetric> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    Callback callback;
    GaugeCallback gauge_callback;
  };

  Entry& GetOrCreate(const std::string& name, const MetricLabels& labels, Kind kind);

  // Key = name + rendered labels; std::map keeps snapshots sorted.
  std::map<std::string, Entry> entries_;
};

}  // namespace nadino

#endif  // SRC_SIM_METRICS_H_
