// Statistics collection: counters, mean accumulators, log-bucketed latency
// histograms, and time series samplers used by the benchmark harnesses.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace nadino {

// Simple monotonically increasing event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Online mean/min/max accumulator (no sample storage).
class MeanAccumulator {
 public:
  void Add(double x);
  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return min_; }
  double max() const { return max_; }
  void Reset();

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Latency histogram with logarithmic buckets (HdrHistogram-style, base-2 with
// linear sub-buckets). Records SimDuration values; supports percentile query
// with bounded relative error (~1.6% at 64 sub-buckets).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(SimDuration value);
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  SimDuration min() const { return count_ == 0 ? 0 : min_; }
  SimDuration max() const { return count_ == 0 ? 0 : max_; }
  double MeanUs() const;

  // Value at quantile q in [0, 1], e.g. Percentile(0.99).
  SimDuration Percentile(double q) const;

  void Reset();

 private:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;  // Covers ~18 minutes in nanoseconds.

  static int BucketIndex(SimDuration value);
  static SimDuration BucketMidpoint(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
};

// Records (virtual time, value) samples, e.g. per-second RPS or CPU usage.
class TimeSeries {
 public:
  struct Sample {
    SimTime at = 0;
    double value = 0.0;
  };

  void Record(SimTime at, double value) { samples_.push_back({at, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  // Mean of values recorded in [from, to).
  double MeanInWindow(SimTime from, SimTime to) const;

  // Renders "t_seconds value" lines, one per sample.
  std::string ToText() const;

 private:
  std::vector<Sample> samples_;
};

// Tracks throughput as completed-operations-per-second between Roll() calls.
// Call RecordCompletion() per finished op; Roll(now) closes the window that
// started at the previous Roll (or t=0) and records the rate.
class RateMeter {
 public:
  void RecordCompletion(uint64_t n = 1) { in_window_ += n; }

  // Closes the window at `now` and returns ops/sec over the actual elapsed
  // time since the previous roll. A zero-width roll (now <= last roll) is a
  // no-op returning 0.0: it records no sample and leaves the open window's
  // completions for the next real roll to account.
  double Roll(SimTime now);

  const TimeSeries& series() const { return series_; }
  uint64_t total() const { return total_; }
  // Completions counted since the last roll (the still-open window) and the
  // instant that window opened; PeriodicSampler::Stop() uses these to flush
  // the final partial window instead of dropping it.
  uint64_t in_window() const { return in_window_; }
  SimTime last_roll() const { return last_roll_; }

 private:
  SimTime last_roll_ = 0;
  uint64_t in_window_ = 0;
  uint64_t total_ = 0;
  TimeSeries series_;
};

}  // namespace nadino

#endif  // SRC_SIM_STATS_H_
