#include "src/runtime/message_header.h"

#include <array>
#include <cstring>

namespace nadino {

namespace {

void FillPayload(Buffer* buffer, uint64_t seed, uint32_t length) {
  uint64_t x = seed ^ 0xD1B54A32D192ED03ULL;
  std::byte* p = buffer->data.data() + MessageHeader::kWireSize;
  for (uint32_t i = 0; i < length; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    p[i] = static_cast<std::byte>(x >> 56);
  }
}

// Offset/width of the checksum field inside the serialized header.
constexpr size_t kChecksumOffset = 24;
constexpr size_t kChecksumWidth = 8;

// Digest over the serialized header (checksum field zeroed) and the payload.
// Covering the header bytes — including routing and correlation fields and
// the padding — means a single flipped bit anywhere in the message is caught,
// not just flips that land in the payload.
uint64_t MessageChecksum(const Buffer& buffer, uint32_t payload_length) {
  std::array<std::byte, MessageHeader::kWireSize> head;
  std::memcpy(head.data(), buffer.data.data(), MessageHeader::kWireSize);
  std::memset(head.data() + kChecksumOffset, 0, kChecksumWidth);
  return Checksum({head.data(), head.size()}) ^
         Checksum({buffer.data.data() + MessageHeader::kWireSize, payload_length});
}

void Serialize(const MessageHeader& h, std::byte* out) {
  std::memcpy(out + 0, &h.chain, 4);
  std::memcpy(out + 4, &h.src, 4);
  std::memcpy(out + 8, &h.dst, 4);
  std::memcpy(out + 12, &h.payload_length, 4);
  std::memcpy(out + 16, &h.request_id, 8);
  std::memcpy(out + 24, &h.payload_checksum, 8);
  std::memcpy(out + 32, &h.flags, 1);
  std::memset(out + 33, 0, 7);
}

MessageHeader Deserialize(const std::byte* in) {
  MessageHeader h;
  std::memcpy(&h.chain, in + 0, 4);
  std::memcpy(&h.src, in + 4, 4);
  std::memcpy(&h.dst, in + 8, 4);
  std::memcpy(&h.payload_length, in + 12, 4);
  std::memcpy(&h.request_id, in + 16, 8);
  std::memcpy(&h.payload_checksum, in + 24, 8);
  std::memcpy(&h.flags, in + 32, 1);
  return h;
}

}  // namespace

bool WriteMessage(Buffer* buffer, MessageHeader header) {
  if (buffer == nullptr ||
      buffer->data.size() < MessageHeader::kWireSize + header.payload_length) {
    return false;
  }
  FillPayload(buffer, header.request_id, header.payload_length);
  header.payload_checksum = 0;
  Serialize(header, buffer->data.data());
  header.payload_checksum = MessageChecksum(*buffer, header.payload_length);
  std::memcpy(buffer->data.data() + kChecksumOffset, &header.payload_checksum, kChecksumWidth);
  buffer->length = MessageHeader::kWireSize + header.payload_length;
  return true;
}

bool RewriteHeader(Buffer* buffer, MessageHeader header) {
  if (buffer == nullptr ||
      buffer->data.size() < MessageHeader::kWireSize + header.payload_length) {
    return false;
  }
  header.payload_checksum = 0;
  Serialize(header, buffer->data.data());
  header.payload_checksum = MessageChecksum(*buffer, header.payload_length);
  std::memcpy(buffer->data.data() + kChecksumOffset, &header.payload_checksum, kChecksumWidth);
  buffer->length = MessageHeader::kWireSize + header.payload_length;
  return true;
}

std::optional<MessageHeader> ReadMessage(const Buffer& buffer) {
  if (buffer.length < MessageHeader::kWireSize) {
    return std::nullopt;
  }
  MessageHeader h = Deserialize(buffer.data.data());
  if (buffer.length < MessageHeader::kWireSize + h.payload_length) {
    return std::nullopt;
  }
  if (MessageChecksum(buffer, h.payload_length) != h.payload_checksum) {
    return std::nullopt;
  }
  return h;
}

}  // namespace nadino
