// Intra-node descriptor IPC over eBPF SK_MSG (paper section 3.5.3).
//
// Descriptors hop between co-located function sockets with the kernel
// protocol stack bypassed (SPRIGHT's mechanism [78]): a small send cost on
// the producer's core, an event-driven wakeup + receive on the consumer's
// core, and — when the consumer is a *shared engine* (the CNE case) — a
// per-message interrupt charge that throttles the engine at high concurrency
// (receive livelock, [72]; observed in section 4.3).

#ifndef SRC_RUNTIME_SKMSG_H_
#define SRC_RUNTIME_SKMSG_H_

#include <functional>

#include "src/core/env.h"
#include "src/mem/buffer.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace nadino {

class SkMsgChannel {
 public:
  using Receiver = std::function<void(const BufferDescriptor&)>;

  explicit SkMsgChannel(Env& env) : env_(&env) {}

  // Sends `desc` from `src_core` to the receiver running on `dst_core`.
  // `engine_endpoint` adds the shared-engine interrupt cost (CNE ingestion).
  // Returns false when an injected kSkMsg drop discards the descriptor at
  // entry: the caller still owns the buffer and must recycle it.
  bool Send(FifoResource* src_core, FifoResource* dst_core, const BufferDescriptor& desc,
            Receiver receiver, bool engine_endpoint = false, TenantId tenant = kInvalidTenant);

  uint64_t messages() const { return messages_; }
  uint64_t dropped() const { return dropped_; }

 private:
  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  uint64_t messages_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_SKMSG_H_
