// Cluster-wide function placement: the inter-node routing table consulted by
// the unified I/O library (intra- vs inter-node decision) and by the DNE TX
// stage to pick the destination node (paper sections 3.2, 3.5).
//
// The table is cluster-owned and VERSIONED: every membership change (a node
// marked dead or rejoining, see src/cluster/membership.h) bumps `epoch()`.
// Functions may be placed on several nodes — the first registration is the
// primary, later ones are failover replicas in registration order — and
// NodeOf() resolves to the first placement on a live node, so routing
// "rebuilds" on each membership epoch without touching the placement lists.
// Readers that captured an epoch can detect staleness with NodeOfAt(), which
// fails closed (kInvalidNode) instead of routing on outdated membership.
//
// Replica selection is POLICY-DRIVEN (DESIGN.md §3e): an installed
// ReplicaSelector (e.g. the weighted spreader in src/cluster/placement.h)
// rotates traffic across the live replicas instead of hot-spotting the first
// one. Resolution splits into a pure preview (PeekFor — what would the next
// pick be) and a committing pick (ResolveFor — advances the policy's rotation
// state and records the per-replica resolution count). Without a policy both
// degrade to the first-live scan, so unconfigured runs stay byte-identical.
//
// Storage is a dense FunctionId-indexed slot table (the PR 4 handle idiom):
// resolution is two array indexations instead of a std::map walk — this sits
// on the per-message hot path of every data plane.

#ifndef SRC_RUNTIME_ROUTING_TABLE_H_
#define SRC_RUNTIME_ROUTING_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/core/types.h"

namespace nadino {

// Replica-selection policy: picks which live replica of a function serves the
// next request. `live` is the non-empty, registration-ordered live placement
// list; `src_node` is the requester's node (kInvalidNode when unknown), so
// locality-aware policies can prefer a colocated replica.
//
// Determinism contract: implementations draw only from seeded, salted state —
// equal seeds must reproduce the pick sequence bit-for-bit.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  // Commits a pick: advances internal rotation/deficit state.
  virtual NodeId Pick(FunctionId function, const std::vector<NodeId>& live,
                      NodeId src_node) = 0;

  // Pure preview of what the next Pick would return. Must not mutate state.
  virtual NodeId Peek(FunctionId function, const std::vector<NodeId>& live,
                      NodeId src_node) const = 0;

  // The placement list of `function` changed (a migration): drop any cached
  // per-function rotation state.
  virtual void Invalidate(FunctionId function) = 0;
};

class RoutingTable {
 public:
  // Records a placement. Idempotent per (function, node); a second node for
  // the same function becomes a replica, not a replacement.
  void Place(FunctionId function, NodeId node) {
    Slot* slot = MutableSlot(function, /*create=*/true);
    if (slot == nullptr) {
      return;
    }
    for (const NodeId existing : slot->nodes) {
      if (existing == node) {
        return;
      }
    }
    slot->nodes.push_back(node);
    slot->resolved.push_back(0);
  }

  // First placement on a live node; kInvalidNode when the function is
  // unknown or every replica is on a dead node (fail closed — callers
  // surface an unroutable error rather than targeting a severed node).
  // Policy-independent: this is the stable "primary" view used for failover
  // bookkeeping and by runs without a placement subsystem.
  NodeId NodeOf(FunctionId function) const {
    const Slot* slot = SlotOf(function);
    if (slot == nullptr) {
      return kInvalidNode;
    }
    for (const NodeId node : slot->nodes) {
      if (NodeLive(node)) {
        return node;
      }
    }
    return kInvalidNode;
  }

  // Pure preview of the replica the next ResolveFor() would commit: the
  // installed policy's Peek over the live replicas, or the first-live scan
  // when no policy is installed (or only one replica survives).
  NodeId PeekFor(FunctionId function, NodeId src_node) const {
    const Slot* slot = SlotOf(function);
    if (slot == nullptr) {
      return kInvalidNode;
    }
    if (policy_ != nullptr) {
      const std::vector<NodeId> live = LiveOf(*slot);
      if (live.empty()) {
        return kInvalidNode;
      }
      return live.size() == 1 ? live.front() : policy_->Peek(function, live, src_node);
    }
    return NodeOf(function);
  }

  // Committing resolution: picks the serving replica under the installed
  // policy (advancing its rotation state) and records the per-replica
  // resolution count consumed by the rebalancer's hot-function detection and
  // the spread-skew acceptance checks. Falls back to the first-live scan
  // when no policy is installed. This is the authoritative per-message
  // resolution point of the data planes and the ingress gateway.
  NodeId ResolveFor(FunctionId function, NodeId src_node) {
    Slot* slot = MutableSlot(function, /*create=*/false);
    if (slot == nullptr) {
      return kInvalidNode;
    }
    NodeId chosen = kInvalidNode;
    if (policy_ != nullptr) {
      const std::vector<NodeId> live = LiveOf(*slot);
      if (live.empty()) {
        return kInvalidNode;
      }
      chosen = live.size() == 1 ? live.front() : policy_->Pick(function, live, src_node);
    } else {
      for (const NodeId node : slot->nodes) {
        if (NodeLive(node)) {
          chosen = node;
          break;
        }
      }
    }
    if (chosen == kInvalidNode) {
      return kInvalidNode;
    }
    for (size_t i = 0; i < slot->nodes.size(); ++i) {
      if (slot->nodes[i] == chosen) {
        ++slot->resolved[i];
        break;
      }
    }
    return chosen;
  }

  // Epoch-checked lookup: a reader holding a stale epoch gets kInvalidNode
  // and must re-read under the current epoch (see tests/cluster_routing_
  // epoch_test.cc for the retry-or-fail-closed contract).
  NodeId NodeOfAt(FunctionId function, uint64_t expected_epoch) const {
    return expected_epoch == epoch_ ? NodeOf(function) : kInvalidNode;
  }

  // Policy-aware colocation: would the next resolution of `a` and `b` (from
  // `src_node`'s perspective) land on the same node? With spreading rotating
  // replicas this is the *resolved*-node comparison, not head-of-list.
  bool ColocatedWith(FunctionId a, FunctionId b, NodeId src_node = kInvalidNode) const {
    const NodeId na = PeekFor(a, src_node);
    return na != kInvalidNode && na == PeekFor(b, src_node);
  }

  bool SameNode(FunctionId a, FunctionId b) const { return ColocatedWith(a, b); }

  size_t size() const { return slots_.size(); }

  // Raw registration-ordered placement list, dead nodes included. Failover
  // paths must use LivePlacementsOf()/LiveReplicaExcluding() instead.
  const std::vector<NodeId>* PlacementsOf(FunctionId function) const {
    const Slot* slot = SlotOf(function);
    return slot == nullptr ? nullptr : &slot->nodes;
  }

  // Live-filtered placement list, in registration order. The accessor the
  // executor/gateway failover paths re-place against, so a re-send can never
  // target a dead replica.
  std::vector<NodeId> LivePlacementsOf(FunctionId function) const {
    const Slot* slot = SlotOf(function);
    return slot == nullptr ? std::vector<NodeId>{} : LiveOf(*slot);
  }

  bool IsLivePlacement(FunctionId function, NodeId node) const {
    const Slot* slot = SlotOf(function);
    if (slot == nullptr || !NodeLive(node)) {
      return false;
    }
    for (const NodeId existing : slot->nodes) {
      if (existing == node) {
        return true;
      }
    }
    return false;
  }

  // First live placement that is not `exclude` (kInvalidNode when no other
  // live replica exists): the failover re-placement primitive.
  NodeId LiveReplicaExcluding(FunctionId function, NodeId exclude) const {
    const Slot* slot = SlotOf(function);
    if (slot == nullptr) {
      return kInvalidNode;
    }
    for (const NodeId node : slot->nodes) {
      if (node != exclude && NodeLive(node)) {
        return node;
      }
    }
    return kInvalidNode;
  }

  // Cumulative ResolveFor() picks that chose `node` for `function`. Internal
  // accounting (not a registry metric): powers the rebalancer's hot-function
  // detection and the per-replica spread-skew assertions without perturbing
  // metric snapshots.
  uint64_t ResolvedCount(FunctionId function, NodeId node) const {
    const Slot* slot = SlotOf(function);
    if (slot == nullptr) {
      return 0;
    }
    for (size_t i = 0; i < slot->nodes.size(); ++i) {
      if (slot->nodes[i] == node) {
        return slot->resolved[i];
      }
    }
    return 0;
  }

  // Functions with a placement on `node`, in placement order (rebalancer
  // candidate scan; control-plane rate, not per-message).
  std::vector<FunctionId> FunctionsOn(NodeId node) const {
    std::vector<FunctionId> out;
    for (const Slot& slot : slots_) {
      for (const NodeId existing : slot.nodes) {
        if (existing == node) {
          out.push_back(slot.function);
          break;
        }
      }
    }
    return out;
  }

  // Live migration: removes `function`'s placement on `from` and promotes the
  // live replica `to` to primary, bumping the routing epoch so the existing
  // fail-closed stale-epoch machinery covers in-flight readers. Returns false
  // (no epoch bump) unless `from` is a placement and `to` a *live* one.
  bool Migrate(FunctionId function, NodeId from, NodeId to) {
    Slot* slot = MutableSlot(function, /*create=*/false);
    if (slot == nullptr || from == to || !IsLivePlacement(function, to)) {
      return false;
    }
    size_t from_i = slot->nodes.size();
    for (size_t i = 0; i < slot->nodes.size(); ++i) {
      if (slot->nodes[i] == from) {
        from_i = i;
        break;
      }
    }
    if (from_i == slot->nodes.size()) {
      return false;
    }
    slot->nodes.erase(slot->nodes.begin() + static_cast<ptrdiff_t>(from_i));
    slot->resolved.erase(slot->resolved.begin() + static_cast<ptrdiff_t>(from_i));
    for (size_t i = 0; i < slot->nodes.size(); ++i) {
      if (slot->nodes[i] == to && i != 0) {
        std::swap(slot->nodes[0], slot->nodes[i]);
        std::swap(slot->resolved[0], slot->resolved[i]);
        break;
      }
    }
    ++epoch_;
    if (policy_ != nullptr) {
      policy_->Invalidate(function);
    }
    return true;
  }

  // Installs (or clears, with nullptr) the replica-selection policy. The
  // table does not own the selector; the cluster's PlacementManager does.
  void SetPolicy(ReplicaSelector* policy) { policy_ = policy; }
  ReplicaSelector* policy() const { return policy_; }

  // --- Membership integration (cluster-owned; see src/cluster/) -------------

  uint64_t epoch() const { return epoch_; }
  void BumpEpoch() { ++epoch_; }

  bool NodeLive(NodeId node) const { return dead_.find(node) == dead_.end(); }

  // Marks a node routable / unroutable and bumps the epoch on any change.
  void SetNodeLive(NodeId node, bool live) {
    const bool changed = live ? dead_.erase(node) > 0 : dead_.insert(node).second;
    if (changed) {
      ++epoch_;
    }
  }

 private:
  struct Slot {
    FunctionId function = kInvalidFunction;
    std::vector<NodeId> nodes;        // Registration order; first = primary.
    std::vector<uint64_t> resolved;   // Parallel to nodes: ResolveFor picks.
  };

  static constexpr int32_t kNoSlot = -1;

  const Slot* SlotOf(FunctionId function) const {
    if (function >= slot_of_.size() || slot_of_[function] == kNoSlot) {
      return nullptr;
    }
    return &slots_[static_cast<size_t>(slot_of_[function])];
  }

  Slot* MutableSlot(FunctionId function, bool create) {
    if (function == kInvalidFunction) {
      return nullptr;
    }
    if (function >= slot_of_.size()) {
      if (!create) {
        return nullptr;
      }
      slot_of_.resize(static_cast<size_t>(function) + 1, kNoSlot);
    }
    int32_t index = slot_of_[function];
    if (index == kNoSlot) {
      if (!create) {
        return nullptr;
      }
      index = static_cast<int32_t>(slots_.size());
      slot_of_[function] = index;
      slots_.push_back(Slot{});
      slots_.back().function = function;
    }
    return &slots_[static_cast<size_t>(index)];
  }

  std::vector<NodeId> LiveOf(const Slot& slot) const {
    std::vector<NodeId> live;
    live.reserve(slot.nodes.size());
    for (const NodeId node : slot.nodes) {
      if (NodeLive(node)) {
        live.push_back(node);
      }
    }
    return live;
  }

  // Dense FunctionId -> slot index (kNoSlot when unplaced); grows to the
  // largest placed id. Gateway pseudo-functions sit near 0xF8000, so the
  // worst case is a few MB of int32 — cheap against a per-message map walk.
  std::vector<int32_t> slot_of_;
  std::vector<Slot> slots_;  // Dense, in first-placement order.
  ReplicaSelector* policy_ = nullptr;
  std::set<NodeId> dead_;  // Empty in steady state: NodeLive is one probe.
  uint64_t epoch_ = 1;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_ROUTING_TABLE_H_
