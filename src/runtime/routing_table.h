// Cluster-wide function placement: the inter-node routing table consulted by
// the unified I/O library (intra- vs inter-node decision) and by the DNE TX
// stage to pick the destination node (paper sections 3.2, 3.5).

#ifndef SRC_RUNTIME_ROUTING_TABLE_H_
#define SRC_RUNTIME_ROUTING_TABLE_H_

#include <map>

#include "src/core/types.h"

namespace nadino {

class RoutingTable {
 public:
  void Place(FunctionId function, NodeId node) { placement_[function] = node; }

  NodeId NodeOf(FunctionId function) const {
    const auto it = placement_.find(function);
    return it == placement_.end() ? kInvalidNode : it->second;
  }

  bool SameNode(FunctionId a, FunctionId b) const {
    const NodeId na = NodeOf(a);
    return na != kInvalidNode && na == NodeOf(b);
  }

  size_t size() const { return placement_.size(); }

 private:
  std::map<FunctionId, NodeId> placement_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_ROUTING_TABLE_H_
