// Cluster-wide function placement: the inter-node routing table consulted by
// the unified I/O library (intra- vs inter-node decision) and by the DNE TX
// stage to pick the destination node (paper sections 3.2, 3.5).
//
// The table is cluster-owned and VERSIONED: every membership change (a node
// marked dead or rejoining, see src/cluster/membership.h) bumps `epoch()`.
// Functions may be placed on several nodes — the first registration is the
// primary, later ones are failover replicas in registration order — and
// NodeOf() resolves to the first placement on a live node, so routing
// "rebuilds" on each membership epoch without touching the placement lists.
// Readers that captured an epoch can detect staleness with NodeOfAt(), which
// fails closed (kInvalidNode) instead of routing on outdated membership.

#ifndef SRC_RUNTIME_ROUTING_TABLE_H_
#define SRC_RUNTIME_ROUTING_TABLE_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/core/types.h"

namespace nadino {

class RoutingTable {
 public:
  // Records a placement. Idempotent per (function, node); a second node for
  // the same function becomes a failover replica, not a replacement.
  void Place(FunctionId function, NodeId node) {
    std::vector<NodeId>& nodes = placement_[function];
    for (const NodeId existing : nodes) {
      if (existing == node) {
        return;
      }
    }
    nodes.push_back(node);
  }

  // First placement on a live node; kInvalidNode when the function is
  // unknown or every replica is on a dead node (fail closed — callers
  // surface an unroutable error rather than targeting a severed node).
  NodeId NodeOf(FunctionId function) const {
    const auto it = placement_.find(function);
    if (it == placement_.end()) {
      return kInvalidNode;
    }
    for (const NodeId node : it->second) {
      if (NodeLive(node)) {
        return node;
      }
    }
    return kInvalidNode;
  }

  // Epoch-checked lookup: a reader holding a stale epoch gets kInvalidNode
  // and must re-read under the current epoch (see tests/cluster_routing_
  // epoch_test.cc for the retry-or-fail-closed contract).
  NodeId NodeOfAt(FunctionId function, uint64_t expected_epoch) const {
    return expected_epoch == epoch_ ? NodeOf(function) : kInvalidNode;
  }

  bool SameNode(FunctionId a, FunctionId b) const {
    const NodeId na = NodeOf(a);
    return na != kInvalidNode && na == NodeOf(b);
  }

  size_t size() const { return placement_.size(); }

  const std::vector<NodeId>* PlacementsOf(FunctionId function) const {
    const auto it = placement_.find(function);
    return it == placement_.end() ? nullptr : &it->second;
  }

  // --- Membership integration (cluster-owned; see src/cluster/) -------------

  uint64_t epoch() const { return epoch_; }
  void BumpEpoch() { ++epoch_; }

  bool NodeLive(NodeId node) const { return dead_.find(node) == dead_.end(); }

  // Marks a node routable / unroutable and bumps the epoch on any change.
  void SetNodeLive(NodeId node, bool live) {
    const bool changed = live ? dead_.erase(node) > 0 : dead_.insert(node).second;
    if (changed) {
      ++epoch_;
    }
  }

 private:
  std::map<FunctionId, std::vector<NodeId>> placement_;
  std::set<NodeId> dead_;  // Empty in steady state: NodeLive is one probe.
  uint64_t epoch_ = 1;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_ROUTING_TABLE_H_
