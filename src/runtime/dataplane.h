// The unified I/O library interface (paper section 3.5): functions call
// Send() with an addressed buffer; the data plane decides intra-node
// (shared-memory IPC) vs inter-node (RDMA / TCP / ...) transparently.
//
// NADINO and every baseline system implement this interface, so the same
// application code (chain executor, Online Boutique, generators) runs
// unchanged over any of them — the apples-to-apples structure of section 4.3.

#ifndef SRC_RUNTIME_DATAPLANE_H_
#define SRC_RUNTIME_DATAPLANE_H_

#include <cstdint>
#include <string>

#include "src/core/env.h"
#include "src/mem/buffer.h"
#include "src/runtime/function.h"

namespace nadino {

class RoutingTable;
class WrProgramEngine;

class DataPlane {
 public:
  struct Stats {
    uint64_t sends = 0;
    uint64_t intra_node = 0;
    uint64_t inter_node = 0;
    uint64_t drops = 0;
    // Software payload copies on the data path (socket copies, pool-to-pool
    // copies). NADINO paths must keep this at zero — the zero-copy invariant.
    uint64_t payload_copies = 0;
  };

  explicit DataPlane(Env& env)
      : env_(&env),
        m_sends_(env.metrics().ResolveCounter("dataplane_sends")),
        m_intra_node_(env.metrics().ResolveCounter("dataplane_intra_node")),
        m_inter_node_(env.metrics().ResolveCounter("dataplane_inter_node")),
        m_drops_(env.metrics().ResolveCounter("dataplane_drops")),
        m_payload_copies_(env.metrics().ResolveCounter("dataplane_payload_copies")) {}

  virtual ~DataPlane() = default;

  // Registers a function and wires up its delivery path (Comch endpoint,
  // SK_MSG socket, TCP port... depending on the implementation).
  virtual void RegisterFunction(FunctionRuntime* function) = 0;

  // Sends `buffer` (owned by `src`) to the function named in the message
  // header. Returns false when the message is unroutable or malformed; the
  // buffer then stays with the caller.
  virtual bool Send(FunctionRuntime* src, Buffer* buffer) = 0;

  virtual std::string name() const = 0;

  // The cluster routing table this plane resolves destinations against, or
  // nullptr for planes with fixed wiring. The chain executor consults it to
  // notice when a retry would land on a different (surviving) node —
  // cluster failover accounting (DESIGN.md §3d).
  virtual RoutingTable* routing() { return nullptr; }

  // The WR-program interpreter installed at `node`'s RNIC (NIC-offloaded
  // chain dispatch, src/rdma/wr_program.h), or nullptr when the plane does
  // not offload (all planes except NADINO with Options::offload_chains set).
  // The chain compiler (ChainExecutor::OffloadChain) and the per-hop launch
  // path consult this.
  virtual WrProgramEngine* wr_programs(NodeId /*node*/) { return nullptr; }

  // Thin shim over the MetricsRegistry counters (see metrics.h); kept so
  // existing `stats().sends`-style call sites compile unchanged.
  Stats stats() const {
    Stats s;
    s.sends = m_sends_.value();
    s.intra_node = m_intra_node_.value();
    s.inter_node = m_inter_node_.value();
    s.drops = m_drops_.value();
    s.payload_copies = m_payload_copies_.value();
    return s;
  }

 protected:
  Env& env() const { return *env_; }

  Env* env_;
  // Registry-backed counters (one data plane per experiment Env), resolved
  // once at construction into raw-word handles (metrics.h).
  CounterHandle m_sends_;
  CounterHandle m_intra_node_;
  CounterHandle m_inter_node_;
  CounterHandle m_drops_;
  CounterHandle m_payload_copies_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_DATAPLANE_H_
