// Load generation: a wrk-like closed-loop client fleet driving the ingress
// gateway (sections 4.1.3, 4.3) and per-tenant echo loads for the RDMA
// multi-tenancy experiments (sections 4.2, Appendix A). The open-loop
// counterpart (aggregated arrival processes, DESIGN.md §3g) lives in
// src/runtime/openloop.h.

#ifndef SRC_RUNTIME_WORKLOAD_H_
#define SRC_RUNTIME_WORKLOAD_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/ingress/gateway.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/function.h"
#include "src/runtime/message_header.h"
#include "src/sim/stats.h"

namespace nadino {

// N concurrent clients, each keeping exactly one request outstanding against
// the ingress (wrk's closed-loop behaviour with one connection per client).
class ClosedLoopClients {
 public:
  struct Options {
    int num_clients = 1;
    std::string path = "/echo";
    uint32_t payload_bytes = 256;
    SimDuration think_time = 0;
    // Stagger client start times to avoid a synchronized burst at t=0. Starts
    // cycle inside `stagger_window`: client N lands `start_stagger` after
    // client N-1 until the window fills, then the ramp wraps to the top of
    // the window with a per-lap phase shift so no two clients (of the first
    // stagger_window-nanoseconds' worth) share a start instant.
    SimDuration start_stagger = 10 * kMicrosecond;
    SimDuration stagger_window = 1 * kMillisecond;
  };

  ClosedLoopClients(Env& env, IngressGateway* gateway, const Options& options);

  void Start();

  // Adds one more client immediately (Fig. 14's +1 client / 10 s ramp).
  void AddClient();

  // Start delay for client `client_id` relative to the AddClient instant.
  // Exposed for the ramp regression test: delays are distinct for the first
  // (stagger_window / start_stagger) * start_stagger clients and always fall
  // inside [0, stagger_window).
  SimDuration StaggerDelay(uint32_t client_id) const;

  // Stops issuing new requests (in-flight ones complete).
  void Stop() { stopped_ = true; }

  const LatencyHistogram& latencies() const { return latencies_; }
  LatencyHistogram& mutable_latencies() { return latencies_; }
  RateMeter& rate() { return rate_; }
  uint64_t completed() const { return completed_; }
  int num_clients() const { return next_client_; }

 private:
  void IssueRequest(uint32_t client_id);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  IngressGateway* gateway_;
  Options options_;
  bool stopped_ = false;
  int next_client_ = 0;
  uint64_t completed_ = 0;
  LatencyHistogram latencies_;
  RateMeter rate_;
};

// A client/server echo pair for one tenant, placed on two nodes, driving
// inter-node transfers through the network engine. Closed loop with a
// configurable window of outstanding requests; activation windows reproduce
// the staggered tenant arrivals of Figs. 15/17.
//
// Accounting contract (the FaultPlane makes all of these reachable):
//  - Only responses matching an issued-and-still-pending request id are
//    counted: a FaultPlane-duplicated response, a response outliving its
//    reaped request, or a corrupted/unparseable header recycles the buffer
//    without touching outstanding_/completed_/rate (they are tallied in
//    unmatched_responses() instead).
//  - With Options::pending_timeout set, permanently lost requests ("counted
//    not hung" drops whose response will never arrive) are reaped: the
//    pending entry is erased, the window slot is released, and reaped() is
//    incremented — so pending_requests() stays bounded by the window no
//    matter how long a chaos run goes.
class TenantEchoLoad {
 public:
  struct Options {
    uint32_t payload_bytes = 256;
    int window = 64;  // Outstanding requests while active.
    // When > 0, a pending request unanswered for this long is considered
    // permanently dropped (retries exhausted) and reaped. 0 disables the
    // reaper; fault-free runs are byte-identical either way.
    SimDuration pending_timeout = 0;
  };

  TenantEchoLoad(Env& env, DataPlane* dataplane, FunctionRuntime* client,
                 FunctionRuntime* server, const Options& options);

  // Activates at `from` and deactivates at `to` (virtual time).
  void ScheduleActive(SimTime from, SimTime to);
  void SetActive(bool active);
  bool active() const { return active_; }

  // Fires once, when the tenant's first echo response completes. The churn
  // harness uses it to measure time-to-first-byte for a cold tenant.
  void SetOnFirstResponse(std::function<void()> hook) { on_first_response_ = std::move(hook); }

  RateMeter& rate() { return rate_; }
  uint64_t completed() const { return completed_; }
  TenantId tenant() const { return client_->tenant(); }
  const LatencyHistogram& latencies() const { return latencies_; }
  LatencyHistogram& mutable_latencies() { return latencies_; }

  // Accounting introspection (chaos-test assertions).
  int outstanding() const { return outstanding_; }
  size_t pending_requests() const { return issue_times_.size(); }
  size_t pending_peak() const { return pending_peak_; }
  uint64_t reaped() const { return reaped_; }
  uint64_t unmatched_responses() const { return unmatched_responses_; }

 private:
  void Fill();
  // Issues one request; false when the pool backpressures (retry on the next
  // completion) or the send fails.
  bool IssueOne();
  void OnClientMessage(Buffer* buffer);
  void OnServerMessage(FunctionRuntime& server, Buffer* buffer);
  // Periodic sweep dropping pending entries older than pending_timeout. Arms
  // lazily (first issue) and disarms when the load is inactive with nothing
  // pending, so finite runs still drain the event queue.
  void ArmReaper();
  void ReapTick();

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  DataPlane* dataplane_;
  FunctionRuntime* client_;
  FunctionRuntime* server_;
  Options options_;
  bool active_ = false;
  bool reaper_armed_ = false;
  int outstanding_ = 0;
  uint64_t completed_ = 0;
  uint64_t next_request_ = 1;
  uint64_t reaped_ = 0;
  uint64_t unmatched_responses_ = 0;
  size_t pending_peak_ = 0;
  RateMeter rate_;
  LatencyHistogram latencies_;
  // request id -> issue time. Ids are issued in increasing order, so map
  // order is also issue-time order and the reaper pops from begin().
  std::map<uint64_t, SimTime> issue_times_;
  std::function<void()> on_first_response_;
};

// Samples a set of RateMeters (and optionally utilizations) once per window,
// building the time series behind Figs. 14/15/17. Stop() flushes the final
// partial window (meters roll, hooks fire once more at the stop instant) and
// cancels the pending tick, so a series never silently loses its tail.
class PeriodicSampler {
 public:
  using SampleHook = std::function<void(SimTime)>;

  PeriodicSampler(Env& env, SimDuration period) : env_(&env), period_(period) {}

  void AddRate(RateMeter* meter) { meters_.push_back(meter); }
  void AddHook(SampleHook hook) { hooks_.push_back(std::move(hook)); }

  void Start();
  void Stop();

 private:
  void Tick();

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  SimDuration period_;
  bool stopped_ = false;
  EventId tick_event_ = kInvalidEventId;
  std::vector<RateMeter*> meters_;
  std::vector<SampleHook> hooks_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_WORKLOAD_H_
