// Load generation: a wrk-like closed-loop client fleet driving the ingress
// gateway (sections 4.1.3, 4.3) and per-tenant echo loads for the RDMA
// multi-tenancy experiments (sections 4.2, Appendix A).

#ifndef SRC_RUNTIME_WORKLOAD_H_
#define SRC_RUNTIME_WORKLOAD_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/ingress/gateway.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/function.h"
#include "src/runtime/message_header.h"
#include "src/sim/stats.h"

namespace nadino {

// N concurrent clients, each keeping exactly one request outstanding against
// the ingress (wrk's closed-loop behaviour with one connection per client).
class ClosedLoopClients {
 public:
  struct Options {
    int num_clients = 1;
    std::string path = "/echo";
    uint32_t payload_bytes = 256;
    SimDuration think_time = 0;
    // Stagger client start times to avoid a synchronized burst at t=0.
    SimDuration start_stagger = 10 * kMicrosecond;
  };

  ClosedLoopClients(Env& env, IngressGateway* gateway, const Options& options);

  void Start();

  // Adds one more client immediately (Fig. 14's +1 client / 10 s ramp).
  void AddClient();

  // Stops issuing new requests (in-flight ones complete).
  void Stop() { stopped_ = true; }

  const LatencyHistogram& latencies() const { return latencies_; }
  LatencyHistogram& mutable_latencies() { return latencies_; }
  RateMeter& rate() { return rate_; }
  uint64_t completed() const { return completed_; }
  int num_clients() const { return next_client_; }

 private:
  void IssueRequest(uint32_t client_id);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  IngressGateway* gateway_;
  Options options_;
  bool stopped_ = false;
  int next_client_ = 0;
  uint64_t completed_ = 0;
  LatencyHistogram latencies_;
  RateMeter rate_;
};

// A client/server echo pair for one tenant, placed on two nodes, driving
// inter-node transfers through the network engine. Closed loop with a
// configurable window of outstanding requests; activation windows reproduce
// the staggered tenant arrivals of Figs. 15/17.
class TenantEchoLoad {
 public:
  struct Options {
    uint32_t payload_bytes = 256;
    int window = 64;  // Outstanding requests while active.
  };

  TenantEchoLoad(Env& env, DataPlane* dataplane, FunctionRuntime* client,
                 FunctionRuntime* server, const Options& options);

  // Activates at `from` and deactivates at `to` (virtual time).
  void ScheduleActive(SimTime from, SimTime to);
  void SetActive(bool active);
  bool active() const { return active_; }

  // Fires once, when the tenant's first echo response completes. The churn
  // harness uses it to measure time-to-first-byte for a cold tenant.
  void SetOnFirstResponse(std::function<void()> hook) { on_first_response_ = std::move(hook); }

  RateMeter& rate() { return rate_; }
  uint64_t completed() const { return completed_; }
  TenantId tenant() const { return client_->tenant(); }
  const LatencyHistogram& latencies() const { return latencies_; }
  LatencyHistogram& mutable_latencies() { return latencies_; }

 private:
  void Fill();
  // Issues one request; false when the pool backpressures (retry on the next
  // completion) or the send fails.
  bool IssueOne();
  void OnClientMessage(Buffer* buffer);
  void OnServerMessage(FunctionRuntime& server, Buffer* buffer);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  DataPlane* dataplane_;
  FunctionRuntime* client_;
  FunctionRuntime* server_;
  Options options_;
  bool active_ = false;
  int outstanding_ = 0;
  uint64_t completed_ = 0;
  uint64_t next_request_ = 1;
  RateMeter rate_;
  LatencyHistogram latencies_;
  std::map<uint64_t, SimTime> issue_times_;
  std::function<void()> on_first_response_;
};

// Samples a set of RateMeters (and optionally utilizations) once per window,
// building the time series behind Figs. 14/15/17.
class PeriodicSampler {
 public:
  using SampleHook = std::function<void(SimTime)>;

  PeriodicSampler(Env& env, SimDuration period) : env_(&env), period_(period) {}

  void AddRate(RateMeter* meter) { meters_.push_back(meter); }
  void AddHook(SampleHook hook) { hooks_.push_back(std::move(hook)); }

  void Start();
  void Stop() { stopped_ = true; }

 private:
  void Tick();

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  SimDuration period_;
  bool stopped_ = false;
  std::vector<RateMeter*> meters_;
  std::vector<SampleHook> hooks_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_WORKLOAD_H_
