// The on-wire application header NADINO functions place at the start of every
// buffer payload. Carrying routing and RPC-correlation state *inside the
// buffer* keeps the data plane honest: engines move opaque descriptors, and
// everything a function needs arrives in the bytes that were (simulated-)
// DMAed — including a checksum that end-to-end integrity tests verify.

#ifndef SRC_RUNTIME_MESSAGE_HEADER_H_
#define SRC_RUNTIME_MESSAGE_HEADER_H_

#include <cstdint>
#include <optional>

#include "src/core/types.h"
#include "src/mem/buffer.h"

namespace nadino {

struct MessageHeader {
  static constexpr size_t kWireSize = 40;
  static constexpr uint8_t kFlagResponse = 1 << 0;

  ChainId chain = 0;
  FunctionId src = kInvalidFunction;
  FunctionId dst = kInvalidFunction;
  uint32_t payload_length = 0;
  uint64_t request_id = 0;
  // Digest over the whole message — the serialized header (this field
  // zeroed) and the payload — so a flip anywhere on the wire is caught.
  uint64_t payload_checksum = 0;
  uint8_t flags = 0;

  bool is_response() const { return (flags & kFlagResponse) != 0; }
};

// Writes `header` followed by a deterministic payload of
// `header.payload_length` bytes (seeded by the request id) into `buffer`,
// computing the checksum. Returns false when the buffer is too small.
bool WriteMessage(Buffer* buffer, MessageHeader header);

// Writes `header` but preserves whatever payload bytes already follow it
// (used when a function forwards a buffer zero-copy and only re-addresses
// it). Recomputes the checksum over the preserved payload.
bool RewriteHeader(Buffer* buffer, MessageHeader header);

// Parses the header and verifies the payload checksum. nullopt on truncation
// or checksum mismatch (i.e. the data plane corrupted or duplicated bytes).
std::optional<MessageHeader> ReadMessage(const Buffer& buffer);

}  // namespace nadino

#endif  // SRC_RUNTIME_MESSAGE_HEADER_H_
