// Cold-start mitigation (paper section 3.7).
//
// NADINO itself does not attack cold starts, but it composes with the known
// mitigations: SPRIGHT's keep-warm policy (instances stay resident for a
// window after their last invocation) and Catalyzer-style snapshot restore
// (boot from a checkpoint instead of a full container start). This module
// wraps a FunctionRuntime: messages arriving at a cold instance queue behind
// the start-up, and an idle sweeper retires instances whose keep-warm window
// lapsed.

#ifndef SRC_RUNTIME_COLDSTART_H_
#define SRC_RUNTIME_COLDSTART_H_

#include <deque>
#include <functional>
#include <map>

#include "src/core/env.h"
#include "src/runtime/function.h"
#include "src/sim/simulator.h"

namespace nadino {

class ColdStartManager {
 public:
  enum class InstanceState : uint8_t { kCold, kStarting, kWarm };

  struct Options {
    // Full container start (image pull amortized away; boot + runtime init).
    SimDuration cold_start_delay = 500 * kMillisecond;
    // Catalyzer-style initialization-less restore from a snapshot.
    SimDuration snapshot_restore_delay = 30 * kMillisecond;
    bool use_snapshot_restore = false;
    // SPRIGHT keep-warm: instances stay warm this long after the last call.
    SimDuration keep_warm_timeout = 10 * kSecond;
    // 0 disables the idle sweeper (instances never go cold again).
    SimDuration sweep_period = 1 * kSecond;
  };

  struct Stats {
    uint64_t cold_starts = 0;
    uint64_t warm_hits = 0;
    uint64_t queued_during_start = 0;
    uint64_t retirements = 0;  // Warm -> cold transitions by the sweeper.
  };

  ColdStartManager(Env& env, const Options& options);

  ColdStartManager(const ColdStartManager&) = delete;
  ColdStartManager& operator=(const ColdStartManager&) = delete;

  // Wraps `function`'s installed handler with cold-start interception. Call
  // AFTER the application handler (e.g. the chain executor) is attached.
  void Manage(FunctionRuntime* function);

  // Pre-warms an instance (e.g. at deployment), skipping the first cold hit.
  void Prewarm(FunctionId function);

  // Fires whenever the idle sweeper retires a warm instance. Lets the
  // control plane tie resource reclaim to instance lifetime: the tenant-churn
  // harness maps a retired function to ConnectionService::DestroyTenant.
  void SetRetireHook(std::function<void(FunctionId)> hook) { retire_hook_ = std::move(hook); }

  InstanceState StateOf(FunctionId function) const;
  const Stats& stats() const { return stats_; }

 private:
  struct Instance {
    FunctionRuntime* function = nullptr;
    FunctionRuntime::Handler app_handler;
    InstanceState state = InstanceState::kCold;
    SimTime last_active = 0;
    std::deque<Buffer*> queued;
  };

  void OnMessage(Instance& instance, FunctionRuntime& fn, Buffer* buffer);
  void FinishStart(FunctionId function);
  void SweepTick();

  SimDuration StartDelay() const {
    return options_.use_snapshot_restore ? options_.snapshot_restore_delay
                                         : options_.cold_start_delay;
  }

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  Options options_;
  std::map<FunctionId, Instance> instances_;
  bool sweeping_ = false;
  Stats stats_;
  std::function<void(FunctionId)> retire_hook_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_COLDSTART_H_
