// A worker/ingress/client node: host CPU cores, an RNIC, per-node tenant
// memory registry, and optionally a DPU (worker nodes in the paper's testbed
// carry BlueField-2s; the ingress node has plain ConnectX-6 RNICs).

#ifndef SRC_RUNTIME_NODE_H_
#define SRC_RUNTIME_NODE_H_

#include <memory>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/dpu/dpu.h"
#include "src/mem/tenant_registry.h"
#include "src/rdma/rdma_engine.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace nadino {

class ConnectionService;

class Node {
 public:
  struct Config {
    int host_cores = 8;
    bool with_dpu = false;
    int dpu_cores = 8;
  };

  Node(Env& env, NodeId id, RdmaNetwork* network, const Config& config);
  ~Node();  // Out of line: ConnectionService is forward-declared here.

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  int host_core_count() const { return static_cast<int>(cores_.size()); }
  FifoResource& host_core(int i) { return *cores_.at(static_cast<size_t>(i)); }

  // Assigns the next unassigned host core (functions and engines each get a
  // dedicated core, as in the paper's experiments). Wraps around when all
  // cores are taken (over-subscription, e.g. NightCore's single-node setup);
  // each wrapped allocation is recorded in node_core_oversubscribed{node} and
  // traced, so experiments that silently share cores are visible.
  FifoResource* AllocateCore();

  // Host-core allocations so far; values above host_core_count() mean the
  // allocator wrapped and cores are shared.
  int allocated_cores() const { return allocated_cores_; }

  // Aggregate useful-work CPU utilization across host cores (sum of per-core
  // utilizations, in "cores", like `top`'s 100%-per-core convention).
  double HostUtilizationCores() const;
  void ResetUtilizationWindows();

  Dpu* dpu() { return dpu_.get(); }
  RdmaEngine& rnic() { return *rnic_; }

  // The node's RDMA control plane: one ConnectionService owns every RC
  // connection the node holds, shared by all of its data-plane consumers
  // (engine, gateway workers, baseline pollers). Created lazily on first use
  // so nodes that never pool connections register no connmgr_* metrics —
  // the pre-refactor snapshot shape.
  ConnectionService& connections();
  ConnectionService* connections_or_null() { return connections_.get(); }
  TenantRegistry& tenants() { return tenants_; }
  Env& env() { return *env_; }
  Simulator* sim() { return &env_->sim(); }
  const CostModel& cost() const { return env_->cost(); }

 private:
  Env* env_;
  NodeId id_;
  std::vector<std::unique_ptr<FifoResource>> cores_;
  int next_core_ = 0;
  int allocated_cores_ = 0;
  // Lazily resolved on the first wrapped allocation (golden-preservation:
  // runs that never over-subscribe keep byte-identical metric snapshots).
  CounterHandle m_oversubscribed_;
  std::unique_ptr<Dpu> dpu_;
  std::unique_ptr<RdmaEngine> rnic_;
  std::unique_ptr<ConnectionService> connections_;
  TenantRegistry tenants_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_NODE_H_
