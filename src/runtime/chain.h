// Function-chain (DAG) specification and the RPC executor layered on the
// unified I/O library (paper section 3.5: "we layer RPC semantics and
// DAG-style dataflows on top of the same primitives").
//
// A chain gives each participating function a behavior: a compute time, an
// ordered list of downstream calls (issued sequentially, RPC-style, as a
// Knative-like service mesh would), and a response payload size. The executor
// drives requests through the chain, reusing the arrived buffer for the next
// hop whenever it stays on-node (true zero-copy forwarding) and correlating
// responses to pending calls by request id carried in the message header.

#ifndef SRC_RUNTIME_CHAIN_H_
#define SRC_RUNTIME_CHAIN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/mem/buffer.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/function.h"
#include "src/runtime/message_header.h"
#include "src/sim/simulator.h"

namespace nadino {

struct CallSpec {
  FunctionId callee = kInvalidFunction;
  uint32_t request_payload = 256;
};

struct FunctionBehavior {
  SimDuration compute = 0;
  std::vector<CallSpec> calls;  // Empty => leaf.
  // false: calls issue sequentially, RPC style (each awaits its response).
  // true: DAG-style fan-out — all calls issue at once (each in its own pool
  // buffer) and the response returns when the last callee answers.
  bool parallel = false;
  uint32_t response_payload = 256;
};

struct ChainSpec {
  ChainId id = 0;
  TenantId tenant = 0;
  std::string name;
  FunctionId entry = kInvalidFunction;
  uint32_t entry_request_payload = 256;
  std::map<FunctionId, FunctionBehavior> behaviors;

  // Total function-to-function data exchanges (requests + responses) for one
  // invocation, excluding the client<->entry pair. The paper's evaluated
  // boutique chains each exceed 11 (section 4.3).
  size_t ExpectedExchanges() const;
};

class ChainExecutor {
 public:
  // Drives registered chains over `dataplane`. Responses that reach a
  // non-chain endpoint (ingress gateway, load generator) are NOT routed
  // through the executor — those endpoints own their handlers; per-hop
  // failures inside the chain surface through errors() and the retry/SLO
  // counters instead.
  ChainExecutor(Env& env, DataPlane* dataplane);

  void RegisterChain(const ChainSpec& spec);

  // Installs this executor as the function's message handler.
  void AttachFunction(FunctionRuntime* function);

  // Allocates a fresh correlation id for an externally injected request
  // (ingress / load generator).
  uint64_t NextRequestId() { return next_request_id_++; }

  // --- NIC offload (src/rdma/wr_program.h) ----------------------------------
  // Compiles `chain` into per-hop WR programs and installs them at each hop's
  // RNIC. Only *linear* segments lower: every behavior has at most one call
  // (no fan-out), every hop has exactly one placement, consecutive hops sit
  // on distinct nodes, the tenant has no RetryPolicy (executor-level retries
  // need software pending state), and the data plane exposes a
  // WrProgramEngine on every hop's node. Returns the number of hop programs
  // installed (0 = chain kept fully in software); `install_latency`, when
  // non-null, receives the summed control-plane installation cost. Offloaded
  // hops that decline at runtime (injected wrprog_* faults, migrations, QP
  // errors) fall back to this executor automatically.
  size_t OffloadChain(ChainId chain, SimDuration* install_latency = nullptr);

  uint64_t errors() const { return errors_; }
  uint64_t requests_handled() const { return requests_handled_; }

  // In-flight state, for "never hung" chaos assertions: after a partition
  // plus drained retries, both must be zero (every call terminated via
  // failover, response, or budget-exhausted error).
  size_t pending_calls() const { return pending_.size(); }
  size_t open_fanouts() const { return fanouts_.size(); }

 private:
  struct PendingCall {
    ChainId chain = 0;
    TenantId tenant = kInvalidTenant;
    // The issuing runtime, retained so a timeout can re-issue the call from
    // a fresh pool buffer. Functions outlive the executor's pending calls
    // (both live for the whole experiment).
    FunctionRuntime* issuer = nullptr;
    FunctionId caller = kInvalidFunction;
    uint64_t parent_request = 0;
    FunctionId parent_src = kInvalidFunction;
    size_t call_index = 0;
    uint64_t fanout_group = 0;  // Nonzero: member of a parallel fan-out.
    uint32_t attempt = 1;       // Bounded by the tenant's RetryPolicy.
    // Node the callee resolved to when the attempt was issued. A retry that
    // resolves elsewhere is a cluster failover: the routing epoch moved
    // (membership marked the node dead) between attempts.
    NodeId target_node = kInvalidNode;
    bool failed_over = false;  // Re-placed at least once; response = recovery.
  };

  // A parallel fan-out in flight: the reply fires when `remaining` hits zero.
  struct FanoutGroup {
    ChainId chain = 0;
    FunctionId caller = kInvalidFunction;
    uint64_t parent_request = 0;
    FunctionId parent_src = kInvalidFunction;
    size_t remaining = 0;
  };

  void OnMessage(FunctionRuntime& fn, Buffer* buffer);
  void HandleRequest(FunctionRuntime& fn, Buffer* buffer, const MessageHeader& header);
  void HandleResponse(FunctionRuntime& fn, Buffer* buffer, const MessageHeader& header);

  // Issues every call of a parallel behavior at once; the incoming buffer
  // carries the first call and pool buffers carry the rest.
  void IssueFanout(FunctionRuntime& fn, Buffer* buffer, const MessageHeader& header,
                   const FunctionBehavior& behavior);
  void HandleFanoutResponse(FunctionRuntime& fn, Buffer* buffer, const PendingCall& ctx);

  // Issues behavior.calls[index] from `fn`, reusing `buffer`.
  void IssueCall(FunctionRuntime& fn, Buffer* buffer, const PendingCall& ctx);

  // Sends fn's response back to the original requester, reusing `buffer`.
  void Reply(FunctionRuntime& fn, Buffer* buffer, ChainId chain, uint64_t parent_request,
             FunctionId parent_src);

  const FunctionBehavior* BehaviorOf(ChainId chain, FunctionId fn) const;
  TenantId TenantOf(ChainId chain) const;

  void Fail(FunctionRuntime& fn, Buffer* buffer);

  // --- Retry recovery (src/core/slo.h) --------------------------------------
  // Arms the tenant's per-attempt timeout for an in-flight call; a no-op
  // when the tenant has no RetryPolicy (no event scheduled, no RNG drawn).
  void ArmTimeout(uint64_t call_id, TenantId tenant);
  // Fires at the deadline: if the call is still pending, marks the attempt
  // stale and either schedules a backed-off re-issue or fails terminally.
  void OnCallTimeout(uint64_t call_id);
  // Re-issues a timed-out call from a fresh pool buffer with a new
  // correlation id (the old id is in stale_ids_, so a late original
  // response is recycled quietly instead of counted as an error).
  void ReissueCall(PendingCall ctx);
  // Terminal failure of one attempt chain-side: counts the error, consumes
  // SLO budget, and (for fan-out members) lets the group converge degraded.
  void FailAttempt(const PendingCall& ctx);

  // Per-tenant retry_* counter handles, resolved lazily on the tenant's first
  // retry event so runs without policies keep byte-identical snapshots
  // (bench goldens), then bumped through raw-word handles (metrics.h).
  struct RetryHandles {
    CounterHandle timeouts;
    CounterHandle exhausted;
    CounterHandle budget_denied;
    CounterHandle attempts;
    CounterHandle stale_responses;
  };
  RetryHandles& RetryHandlesFor(TenantId tenant);

  // Per-tenant cluster_failover_* handles, same lazy contract as RetryHandles.
  struct FailoverHandles {
    CounterHandle attempts;
    CounterHandle recovered;
  };
  FailoverHandles& FailoverHandlesFor(TenantId tenant);

  // Current routing resolution for `callee` as seen from `src` (a pure
  // policy peek — the data plane commits the actual pick at send time), or
  // kInvalidNode when the data plane has no routing table (fixed-wiring
  // planes opt out of failover).
  NodeId ResolveNode(FunctionId callee, FunctionRuntime* src) const;

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  DataPlane* dataplane_;
  std::map<ChainId, ChainSpec> chains_;
  std::map<uint64_t, PendingCall> pending_;
  std::map<uint64_t, FanoutGroup> fanouts_;
  // Correlation ids whose attempt timed out; their late responses are
  // recycled without counting an error.
  std::set<uint64_t> stale_ids_;
  std::map<TenantId, RetryHandles> retry_handles_;
  std::map<TenantId, FailoverHandles> failover_handles_;
  uint64_t next_fanout_group_ = 1;
  uint64_t next_request_id_ = 1;
  uint64_t errors_ = 0;
  uint64_t requests_handled_ = 0;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_CHAIN_H_
