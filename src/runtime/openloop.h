// Open-loop load generation (DESIGN.md §3g): aggregated arrival processes
// that offer load at a scheduled rate regardless of how fast the system
// drains it — the production-facing complement to the closed-loop fleet in
// src/runtime/workload.h.
//
// The scaling trick is aggregation. A million simulated users are not a
// million client objects: each tenant carries one ArrivalSchedule (its users'
// summed rate curve) and one O(1) accounting record, and a per-tenant tick
// loop draws the number of arrivals in the next quantum from a Poisson
// distribution, then bulk-admits them into the tenant's event-queue shard
// with Simulator::ScheduleBatch. Memory is O(tenants + in-flight), never
// O(users); the 1M-user sweep in bench/openloop_scale holds the in-flight cap
// fixed while the offered rate scales 100x.
//
// Open-loop semantics: an arrival that cannot be issued (in-flight cap hit,
// buffer-pool backpressure, gateway admission failure) is SHED and counted —
// it does not queue, and it does not slow subsequent arrivals. Goodput vs
// offered load is the measurement, exactly the quantity a closed loop hides.

#ifndef SRC_RUNTIME_OPENLOOP_H_
#define SRC_RUNTIME_OPENLOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/calibration.h"
#include "src/core/env.h"
#include "src/ingress/gateway.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/function.h"
#include "src/runtime/message_header.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"

namespace nadino {

// One step of a piecewise-constant diurnal modulation: from `start` (phase
// within the schedule period, or absolute time when period == 0) the base
// rate is multiplied by `multiplier` until the next segment begins.
struct RateSegment {
  SimTime start = 0;
  double multiplier = 1.0;
};

// A flash crowd: `add_rps` extra arrivals per second layered on top of the
// scheduled rate for [start, start + duration). Always absolute-time.
struct FlashBurst {
  SimTime start = 0;
  SimDuration duration = 0;
  double add_rps = 0.0;
};

// Per-tenant offered-rate curve: base rate x diurnal segments + bursts, or a
// replayed trace (which overrides the base rate, then segments/bursts still
// apply). Evaluation keeps amortized-O(1) cursors, relying on the tick loop
// evaluating time monotonically; cursors reset when the diurnal phase wraps.
class ArrivalSchedule {
 public:
  struct TracePoint {
    SimTime at = 0;
    double rps = 0.0;
  };

  double base_rps = 0.0;
  // When > 0, segment starts are phases within this period (e.g. a 24 h
  // diurnal cycle evaluated at now % period). Traces and bursts stay absolute.
  SimDuration period = 0;
  std::vector<RateSegment> segments;  // Sorted by start.
  std::vector<FlashBurst> bursts;     // Sorted by start.
  std::vector<TracePoint> trace;      // Sorted by at; step function.

  // Offered rate (arrivals/sec) at `now`. Amortized O(1) for monotonically
  // nondecreasing `now`; an arbitrary rewind just resets the cursors.
  double RateAt(SimTime now) const;

 private:
  mutable size_t seg_cursor_ = 0;
  mutable size_t burst_cursor_ = 0;
  mutable size_t trace_cursor_ = 0;
  mutable SimTime last_phase_ = 0;
};

// A smooth day/night curve: `steps` piecewise-constant segments over `period`
// following a raised cosine between trough_multiplier (at phase 0) and
// peak_multiplier (at phase period/2).
ArrivalSchedule MakeDiurnalSchedule(double base_rps, SimDuration period, int steps,
                                    double trough_multiplier, double peak_multiplier);

// Parses an arrival trace from `path`: one "<time_ms> <rps>" pair per line,
// '#' comments and blank lines skipped. Points must be time-sorted. Returns
// false (and leaves *out untouched) on I/O or parse errors.
bool LoadArrivalTrace(const std::string& path, std::vector<ArrivalSchedule::TracePoint>* out);

// The arrival engine. Each tenant ticks once per admission quantum: draw
// n ~ Poisson(rate x quantum), scatter n arrival instants uniformly across
// the quantum, and ScheduleBatch them onto the tenant's event-queue shard.
// Arrivals call the installed DispatchFn; the sink reports completions back
// through OnComplete so goodput/latency are measured end to end.
class OpenLoopSource {
 public:
  struct Options {
    // Admission quantum: one Poisson draw + one batch per tenant per tick.
    // Smaller quanta track rate curves more faithfully; larger quanta
    // amortize better. 10 ms resolves everything the benches sweep.
    SimDuration tick = 10 * kMillisecond;
    // Stop generating at this virtual time (0 = until Stop()). In-flight
    // requests still complete, so RunUntil(horizon + drain) settles cleanly.
    SimTime horizon = 0;
    // Shard-confined mode for the parallel drain (DESIGN.md §3h): every
    // tenant draws from a private PRNG (seeded env.seed() ^ mix(tenant)),
    // scatters into a private scratch buffer, and records into a private
    // latency histogram, so tenants pinned to different shards never touch
    // shared source state. All accounting is per tenant; the aggregate
    // accessors fold. The RNG stream differs from the legacy shared stream,
    // so results are NOT comparable across the two modes — but within this
    // mode they are identical for every worker count, which is the
    // equivalence the parallel drain tests assert. Tenants and their
    // completions must stay on their configured shard.
    bool parallel = false;
  };

  struct TenantOptions {
    ArrivalSchedule schedule;
    // Event-queue shard (the tenant's node) for batch admission; taken modulo
    // the simulator's shard count.
    uint32_t shard = 0;
    // Open-loop discipline: arrivals beyond this many unanswered requests are
    // shed, bounding memory no matter how far offered load exceeds capacity.
    uint64_t max_in_flight = 4096;
  };

  // Issues one request for `tenant` arriving now. Returns false to shed (the
  // source counts it; the sink does nothing further). On success the sink
  // must eventually call OnComplete(tenant, issued_at) exactly once.
  using DispatchFn = std::function<bool(uint32_t tenant, SimTime issued_at)>;

  OpenLoopSource(Env& env, const Options& options) : env_(&env), options_(options) {}

  // Returns the tenant index used in DispatchFn/OnComplete.
  uint32_t AddTenant(const TenantOptions& tenant);

  void SetDispatch(DispatchFn fn) { dispatch_ = std::move(fn); }

  void Start();
  void Stop() { running_ = false; }

  // Sink-side completion: closes the latency sample opened at `issued_at`.
  void OnComplete(uint32_t tenant, SimTime issued_at);

  // Sink-side post-dispatch failure (e.g. the server shed the request after
  // admission): releases the in-flight slot without recording a latency.
  void OnDropped(uint32_t tenant);

  // Aggregate accounting. offered == dispatched + shed, always. In parallel
  // mode these fold the per-tenant records.
  uint64_t offered() const { return Folded(offered_, &TenantState::offered); }
  uint64_t dispatched() const { return Folded(dispatched_, &TenantState::dispatched); }
  uint64_t completed() const { return Folded(completed_, &TenantState::completed); }
  uint64_t shed() const { return Folded(shed_, &TenantState::shed); }
  uint64_t dropped() const { return Folded(dropped_, &TenantState::dropped); }
  uint64_t in_flight() const { return Folded(in_flight_, &TenantState::in_flight); }
  // In parallel mode: the sum of per-tenant peaks (an upper bound on the
  // instantaneous global peak, which no single thread observes).
  uint64_t in_flight_peak() const { return Folded(in_flight_peak_, &TenantState::in_flight_peak); }
  size_t num_tenants() const { return tenants_.size(); }

  uint64_t tenant_offered(uint32_t tenant) const { return tenants_[tenant].offered; }
  uint64_t tenant_shed(uint32_t tenant) const { return tenants_[tenant].shed; }
  uint64_t tenant_completed(uint32_t tenant) const { return tenants_[tenant].completed; }
  uint64_t tenant_dispatched(uint32_t tenant) const { return tenants_[tenant].dispatched; }
  uint64_t tenant_dropped(uint32_t tenant) const { return tenants_[tenant].dropped; }

  RateMeter& rate() { return rate_; }
  const LatencyHistogram& latencies() const { return latencies_; }
  LatencyHistogram& mutable_latencies() { return latencies_; }

  // Latency distribution across every tenant: the per-tenant histograms
  // merged in tenant order (parallel mode), or a copy of the shared
  // histogram (legacy mode).
  LatencyHistogram MergedLatencies() const;

 private:
  struct TenantState {
    TenantOptions opts;
    uint64_t offered = 0;
    uint64_t dispatched = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t dropped = 0;
    uint64_t in_flight = 0;
    uint64_t in_flight_peak = 0;
    // Parallel-mode private state (null/empty in legacy mode).
    std::unique_ptr<Rng> rng;
    std::unique_ptr<LatencyHistogram> latencies;
    std::vector<SimTime> scratch;
  };

  uint64_t Folded(uint64_t legacy, uint64_t TenantState::* field) const {
    if (!options_.parallel) {
      return legacy;
    }
    uint64_t total = 0;
    for (const TenantState& state : tenants_) {
      total += state.*field;
    }
    return total;
  }

  void TenantTick(uint32_t tenant);
  void Admit(uint32_t tenant);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  Options options_;
  bool running_ = false;
  uint64_t offered_ = 0;
  uint64_t dispatched_ = 0;
  uint64_t completed_ = 0;
  uint64_t shed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t in_flight_ = 0;
  uint64_t in_flight_peak_ = 0;
  std::vector<TenantState> tenants_;
  std::vector<SimTime> batch_scratch_;  // Reused per tick; no per-tick allocs.
  DispatchFn dispatch_;
  RateMeter rate_;
  LatencyHistogram latencies_;
};

// Binds one OpenLoopSource tenant to the ingress gateway: each arrival
// becomes a SubmitRequest and the gateway's completion closes the loop.
class OpenLoopGatewayDriver {
 public:
  OpenLoopGatewayDriver(OpenLoopSource* source, IngressGateway* gateway, uint32_t tenant,
                        std::string path, uint32_t payload_bytes)
      : source_(source), gateway_(gateway), tenant_(tenant), path_(std::move(path)),
        payload_bytes_(payload_bytes) {}

  bool Issue(SimTime issued_at);

 private:
  OpenLoopSource* source_;
  IngressGateway* gateway_;
  uint32_t tenant_;
  std::string path_;
  uint32_t payload_bytes_;
};

// Binds one OpenLoopSource tenant to a DNE echo pair: each arrival sends one
// echo message client -> server -> client through the dataplane, matched on
// request id (same accounting contract as TenantEchoLoad: unmatched or
// unparseable responses recycle the buffer without closing anything).
class OpenLoopEchoDriver {
 public:
  OpenLoopEchoDriver(Env& env, OpenLoopSource* source, DataPlane* dataplane,
                     FunctionRuntime* client, FunctionRuntime* server, uint32_t tenant,
                     uint32_t payload_bytes);

  // Dispatch hook: sends one echo request. False (= shed) when the buffer
  // pool backpressures or the send fails.
  bool Issue(SimTime issued_at);

  size_t pending_requests() const { return issue_times_.size(); }
  uint64_t unmatched_responses() const { return unmatched_responses_; }

 private:
  void OnClientMessage(Buffer* buffer);
  void OnServerMessage(FunctionRuntime& server, Buffer* buffer);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  OpenLoopSource* source_;
  DataPlane* dataplane_;
  FunctionRuntime* client_;
  FunctionRuntime* server_;
  uint32_t tenant_;
  uint32_t payload_bytes_;
  uint64_t next_request_ = 1;
  uint64_t unmatched_responses_ = 0;
  std::map<uint64_t, SimTime> issue_times_;
};

// Shard-confined synthetic echo sink for the parallel drain (DESIGN.md
// §3h): the cost-model-faithful request flow — client node -> fabric hop ->
// server engine queueing -> fabric hop -> client — re-expressed so that
// every piece of mutable state belongs to exactly one event-queue shard:
//
//   - per-shard ShardEngine (server busy_until run-to-completion queue,
//     bounded buffer pool, served/drop accounting, an order-independent XOR
//     digest) touched only by events on that shard;
//   - per-tenant client lanes (issued/completed/SLO accounting) touched only
//     on the tenant's client shard, and per-tenant server lanes touched only
//     on its server shard;
//   - every cross-shard transition is a ScheduleAtOn with delay >= HopFloor()
//     (RNIC TX + wire + RNIC RX + the DPU-scaled DNE stages), which is
//     exactly the lookahead the harness installs.
//
// Each service burns real CPU (StageWork: an FNV-style ALU loop over
// `payload` rounds) so a parallel drain has genuine work to spread across
// cores, and folds the hash into the shard digest — equal digests across
// worker counts certify that the same requests were served with the same
// timings, not merely the same number of them.
class OpenLoopShardEchoDriver {
 public:
  struct TenantBinding {
    uint32_t client_shard = 0;
    uint32_t server_shard = 0;
    uint32_t payload = 256;          // StageWork rounds per service.
    SimDuration slo_target = 0;      // 0 = no SLO accounting.
  };

  OpenLoopShardEchoDriver(Env& env, OpenLoopSource* source, const CostModel& cost,
                          uint32_t shard_count, uint64_t buffers_per_shard);

  // One tenant; index must match the OpenLoopSource tenant index.
  void AddTenant(const TenantBinding& binding);

  // Dispatch hook for OpenLoopSource::SetDispatch. Runs on the tenant's
  // client shard.
  bool Issue(uint32_t tenant, SimTime issued_at);

  // The minimum cross-shard delivery latency this driver ever uses — the
  // correct Simulator::SetLookahead for it.
  static SimDuration HopFloor(const CostModel& cost);

  // Aggregates (fold per-shard / per-tenant records; call after the run).
  uint64_t served() const;
  uint64_t server_drops() const;
  uint64_t slo_violations() const;
  uint64_t digest() const;  // XOR over shards: worker-count independent.
  // Buffers not back in their pools; 0 after a clean drain.
  uint64_t buffers_leaked() const;
  uint64_t min_buffers_free(uint32_t shard) const { return engines_[shard].buffers_min; }

  uint64_t tenant_issued(uint32_t tenant) const { return client_lanes_[tenant].issued; }
  uint64_t tenant_completed(uint32_t tenant) const { return client_lanes_[tenant].completed; }
  uint64_t tenant_slo_violations(uint32_t tenant) const {
    return client_lanes_[tenant].slo_violations;
  }
  uint64_t tenant_served(uint32_t tenant) const { return server_lanes_[tenant].served; }
  uint64_t tenant_dropped(uint32_t tenant) const { return server_lanes_[tenant].dropped; }

  // Per-service CPU cost model shared with the bench: `rounds` FNV-style
  // mixing steps seeded by (tenant, at). Returns the running hash.
  static uint64_t StageWork(uint64_t tenant, SimTime at, uint32_t rounds);

 private:
  // All state one server shard touches, padded so two workers draining
  // neighbouring shards never share a line.
  struct alignas(64) ShardEngine {
    SimTime busy_until = 0;
    uint64_t served = 0;
    uint64_t hops_in = 0;
    uint64_t buffers_free = 0;
    uint64_t buffers_min = 0;
    uint64_t buffers_capacity = 0;
    uint64_t digest = 0;
  };
  struct alignas(64) ClientLane {
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t slo_violations = 0;
  };
  struct alignas(64) ServerLane {
    uint64_t served = 0;
    uint64_t dropped = 0;
  };

  void OnServer(uint32_t tenant, SimTime issued_at);
  void OnReply(uint32_t tenant, SimTime issued_at);
  void OnDrop(uint32_t tenant);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  OpenLoopSource* source_;
  SimDuration hop_;
  SimDuration service_base_;
  std::vector<TenantBinding> bindings_;
  std::vector<ShardEngine> engines_;
  std::vector<ClientLane> client_lanes_;
  std::vector<ServerLane> server_lanes_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_OPENLOOP_H_
