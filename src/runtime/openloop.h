// Open-loop load generation (DESIGN.md §3g): aggregated arrival processes
// that offer load at a scheduled rate regardless of how fast the system
// drains it — the production-facing complement to the closed-loop fleet in
// src/runtime/workload.h.
//
// The scaling trick is aggregation. A million simulated users are not a
// million client objects: each tenant carries one ArrivalSchedule (its users'
// summed rate curve) and one O(1) accounting record, and a per-tenant tick
// loop draws the number of arrivals in the next quantum from a Poisson
// distribution, then bulk-admits them into the tenant's event-queue shard
// with Simulator::ScheduleBatch. Memory is O(tenants + in-flight), never
// O(users); the 1M-user sweep in bench/openloop_scale holds the in-flight cap
// fixed while the offered rate scales 100x.
//
// Open-loop semantics: an arrival that cannot be issued (in-flight cap hit,
// buffer-pool backpressure, gateway admission failure) is SHED and counted —
// it does not queue, and it does not slow subsequent arrivals. Goodput vs
// offered load is the measurement, exactly the quantity a closed loop hides.

#ifndef SRC_RUNTIME_OPENLOOP_H_
#define SRC_RUNTIME_OPENLOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/ingress/gateway.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/function.h"
#include "src/runtime/message_header.h"
#include "src/sim/stats.h"

namespace nadino {

// One step of a piecewise-constant diurnal modulation: from `start` (phase
// within the schedule period, or absolute time when period == 0) the base
// rate is multiplied by `multiplier` until the next segment begins.
struct RateSegment {
  SimTime start = 0;
  double multiplier = 1.0;
};

// A flash crowd: `add_rps` extra arrivals per second layered on top of the
// scheduled rate for [start, start + duration). Always absolute-time.
struct FlashBurst {
  SimTime start = 0;
  SimDuration duration = 0;
  double add_rps = 0.0;
};

// Per-tenant offered-rate curve: base rate x diurnal segments + bursts, or a
// replayed trace (which overrides the base rate, then segments/bursts still
// apply). Evaluation keeps amortized-O(1) cursors, relying on the tick loop
// evaluating time monotonically; cursors reset when the diurnal phase wraps.
class ArrivalSchedule {
 public:
  struct TracePoint {
    SimTime at = 0;
    double rps = 0.0;
  };

  double base_rps = 0.0;
  // When > 0, segment starts are phases within this period (e.g. a 24 h
  // diurnal cycle evaluated at now % period). Traces and bursts stay absolute.
  SimDuration period = 0;
  std::vector<RateSegment> segments;  // Sorted by start.
  std::vector<FlashBurst> bursts;     // Sorted by start.
  std::vector<TracePoint> trace;      // Sorted by at; step function.

  // Offered rate (arrivals/sec) at `now`. Amortized O(1) for monotonically
  // nondecreasing `now`; an arbitrary rewind just resets the cursors.
  double RateAt(SimTime now) const;

 private:
  mutable size_t seg_cursor_ = 0;
  mutable size_t burst_cursor_ = 0;
  mutable size_t trace_cursor_ = 0;
  mutable SimTime last_phase_ = 0;
};

// A smooth day/night curve: `steps` piecewise-constant segments over `period`
// following a raised cosine between trough_multiplier (at phase 0) and
// peak_multiplier (at phase period/2).
ArrivalSchedule MakeDiurnalSchedule(double base_rps, SimDuration period, int steps,
                                    double trough_multiplier, double peak_multiplier);

// Parses an arrival trace from `path`: one "<time_ms> <rps>" pair per line,
// '#' comments and blank lines skipped. Points must be time-sorted. Returns
// false (and leaves *out untouched) on I/O or parse errors.
bool LoadArrivalTrace(const std::string& path, std::vector<ArrivalSchedule::TracePoint>* out);

// The arrival engine. Each tenant ticks once per admission quantum: draw
// n ~ Poisson(rate x quantum), scatter n arrival instants uniformly across
// the quantum, and ScheduleBatch them onto the tenant's event-queue shard.
// Arrivals call the installed DispatchFn; the sink reports completions back
// through OnComplete so goodput/latency are measured end to end.
class OpenLoopSource {
 public:
  struct Options {
    // Admission quantum: one Poisson draw + one batch per tenant per tick.
    // Smaller quanta track rate curves more faithfully; larger quanta
    // amortize better. 10 ms resolves everything the benches sweep.
    SimDuration tick = 10 * kMillisecond;
    // Stop generating at this virtual time (0 = until Stop()). In-flight
    // requests still complete, so RunUntil(horizon + drain) settles cleanly.
    SimTime horizon = 0;
  };

  struct TenantOptions {
    ArrivalSchedule schedule;
    // Event-queue shard (the tenant's node) for batch admission; taken modulo
    // the simulator's shard count.
    uint32_t shard = 0;
    // Open-loop discipline: arrivals beyond this many unanswered requests are
    // shed, bounding memory no matter how far offered load exceeds capacity.
    uint64_t max_in_flight = 4096;
  };

  // Issues one request for `tenant` arriving now. Returns false to shed (the
  // source counts it; the sink does nothing further). On success the sink
  // must eventually call OnComplete(tenant, issued_at) exactly once.
  using DispatchFn = std::function<bool(uint32_t tenant, SimTime issued_at)>;

  OpenLoopSource(Env& env, const Options& options) : env_(&env), options_(options) {}

  // Returns the tenant index used in DispatchFn/OnComplete.
  uint32_t AddTenant(const TenantOptions& tenant);

  void SetDispatch(DispatchFn fn) { dispatch_ = std::move(fn); }

  void Start();
  void Stop() { running_ = false; }

  // Sink-side completion: closes the latency sample opened at `issued_at`.
  void OnComplete(uint32_t tenant, SimTime issued_at);

  // Aggregate accounting. offered == dispatched + shed, always.
  uint64_t offered() const { return offered_; }
  uint64_t dispatched() const { return dispatched_; }
  uint64_t completed() const { return completed_; }
  uint64_t shed() const { return shed_; }
  uint64_t in_flight() const { return in_flight_; }
  uint64_t in_flight_peak() const { return in_flight_peak_; }
  size_t num_tenants() const { return tenants_.size(); }

  uint64_t tenant_offered(uint32_t tenant) const { return tenants_[tenant].offered; }
  uint64_t tenant_shed(uint32_t tenant) const { return tenants_[tenant].shed; }
  uint64_t tenant_completed(uint32_t tenant) const { return tenants_[tenant].completed; }

  RateMeter& rate() { return rate_; }
  const LatencyHistogram& latencies() const { return latencies_; }
  LatencyHistogram& mutable_latencies() { return latencies_; }

 private:
  struct TenantState {
    TenantOptions opts;
    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t in_flight = 0;
  };

  void TenantTick(uint32_t tenant);
  void Admit(uint32_t tenant);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  Options options_;
  bool running_ = false;
  uint64_t offered_ = 0;
  uint64_t dispatched_ = 0;
  uint64_t completed_ = 0;
  uint64_t shed_ = 0;
  uint64_t in_flight_ = 0;
  uint64_t in_flight_peak_ = 0;
  std::vector<TenantState> tenants_;
  std::vector<SimTime> batch_scratch_;  // Reused per tick; no per-tick allocs.
  DispatchFn dispatch_;
  RateMeter rate_;
  LatencyHistogram latencies_;
};

// Binds one OpenLoopSource tenant to the ingress gateway: each arrival
// becomes a SubmitRequest and the gateway's completion closes the loop.
class OpenLoopGatewayDriver {
 public:
  OpenLoopGatewayDriver(OpenLoopSource* source, IngressGateway* gateway, uint32_t tenant,
                        std::string path, uint32_t payload_bytes)
      : source_(source), gateway_(gateway), tenant_(tenant), path_(std::move(path)),
        payload_bytes_(payload_bytes) {}

  bool Issue(SimTime issued_at);

 private:
  OpenLoopSource* source_;
  IngressGateway* gateway_;
  uint32_t tenant_;
  std::string path_;
  uint32_t payload_bytes_;
};

// Binds one OpenLoopSource tenant to a DNE echo pair: each arrival sends one
// echo message client -> server -> client through the dataplane, matched on
// request id (same accounting contract as TenantEchoLoad: unmatched or
// unparseable responses recycle the buffer without closing anything).
class OpenLoopEchoDriver {
 public:
  OpenLoopEchoDriver(Env& env, OpenLoopSource* source, DataPlane* dataplane,
                     FunctionRuntime* client, FunctionRuntime* server, uint32_t tenant,
                     uint32_t payload_bytes);

  // Dispatch hook: sends one echo request. False (= shed) when the buffer
  // pool backpressures or the send fails.
  bool Issue(SimTime issued_at);

  size_t pending_requests() const { return issue_times_.size(); }
  uint64_t unmatched_responses() const { return unmatched_responses_; }

 private:
  void OnClientMessage(Buffer* buffer);
  void OnServerMessage(FunctionRuntime& server, Buffer* buffer);

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  OpenLoopSource* source_;
  DataPlane* dataplane_;
  FunctionRuntime* client_;
  FunctionRuntime* server_;
  uint32_t tenant_;
  uint32_t payload_bytes_;
  uint64_t next_request_ = 1;
  uint64_t unmatched_responses_ = 0;
  std::map<uint64_t, SimTime> issue_times_;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_OPENLOOP_H_
