#include "src/runtime/skmsg.h"

#include <utility>

namespace nadino {

void SkMsgChannel::Send(FifoResource* src_core, FifoResource* dst_core,
                        const BufferDescriptor& desc, Receiver receiver, bool engine_endpoint) {
  ++messages_;
  const SimDuration deliver_cost =
      env_->cost().skmsg_deliver + (engine_endpoint ? env_->cost().skmsg_engine_irq : 0);
  src_core->Submit(env_->cost().skmsg_send,
                   [dst_core, deliver_cost, desc, receiver = std::move(receiver)]() {
                     dst_core->Submit(deliver_cost, [desc, receiver = std::move(receiver)]() {
                       if (receiver) {
                         receiver(desc);
                       }
                     });
                   });
}

}  // namespace nadino
