#include "src/runtime/skmsg.h"

#include <utility>

namespace nadino {

bool SkMsgChannel::Send(FifoResource* src_core, FifoResource* dst_core,
                        const BufferDescriptor& desc, Receiver receiver, bool engine_endpoint,
                        TenantId tenant) {
  // kSkMsg fault site (drop/delay only: a descriptor carries no payload to
  // corrupt here, and duplicating it would double-deliver its buffer).
  const FaultDecision fault = env_->faults().Intercept(FaultSite::kSkMsg, FaultScope{tenant});
  if (fault.action == FaultAction::kDrop) {
    ++dropped_;
    return false;
  }
  ++messages_;
  SimDuration deliver_cost =
      env_->cost().skmsg_deliver + (engine_endpoint ? env_->cost().skmsg_engine_irq : 0);
  if (fault.action == FaultAction::kDelay) {
    deliver_cost += fault.delay;
  }
  src_core->Submit(env_->cost().skmsg_send,
                   [dst_core, deliver_cost, desc, receiver = std::move(receiver)]() {
                     dst_core->Submit(deliver_cost, [desc, receiver = std::move(receiver)]() {
                       if (receiver) {
                         receiver(desc);
                       }
                     });
                   });
  return true;
}

}  // namespace nadino
