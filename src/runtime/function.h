// A serverless function instance: identity, placement, a dedicated host core,
// and its tenant's unified memory pool. Application logic is installed as a
// handler (the chain executor for service functions; custom handlers for
// ingress/client endpoints).

#ifndef SRC_RUNTIME_FUNCTION_H_
#define SRC_RUNTIME_FUNCTION_H_

#include <functional>
#include <string>

#include "src/core/types.h"
#include "src/mem/buffer_pool.h"
#include "src/runtime/node.h"
#include "src/sim/resource.h"

namespace nadino {

class FunctionRuntime {
 public:
  using Handler = std::function<void(FunctionRuntime&, Buffer*)>;

  FunctionRuntime(FunctionId id, TenantId tenant, std::string name, Node* node,
                  FifoResource* core, BufferPool* pool)
      : id_(id), tenant_(tenant), name_(std::move(name)), node_(node), core_(core),
        pool_(pool) {}

  FunctionRuntime(const FunctionRuntime&) = delete;
  FunctionRuntime& operator=(const FunctionRuntime&) = delete;

  FunctionId id() const { return id_; }
  TenantId tenant() const { return tenant_; }
  const std::string& name() const { return name_; }
  Node* node() { return node_; }
  FifoResource* core() { return core_; }
  BufferPool* pool() { return pool_; }
  OwnerId owner_id() const { return OwnerId::Function(id_); }

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // The currently installed handler (used by wrappers such as the cold-start
  // manager to chain onto application logic).
  const Handler& handler() const { return handler_; }

  // Hands an arrived message to the function. Ownership of `buffer` must
  // already be this function's; delivery costs were charged by the IPC layer.
  void Deliver(Buffer* buffer) {
    ++messages_received_;
    if (handler_) {
      handler_(*this, buffer);
    }
  }

  uint64_t messages_received() const { return messages_received_; }

 private:
  FunctionId id_;
  TenantId tenant_;
  std::string name_;
  Node* node_;
  FifoResource* core_;
  BufferPool* pool_;
  Handler handler_;
  uint64_t messages_received_ = 0;
};

}  // namespace nadino

#endif  // SRC_RUNTIME_FUNCTION_H_
