#include "src/runtime/node.h"

#include <string>

#include "src/rdma/control_plane.h"

namespace nadino {

Node::Node(Env& env, NodeId id, RdmaNetwork* network, const Config& config)
    : env_(&env), id_(id) {
  cores_.reserve(static_cast<size_t>(config.host_cores));
  for (int i = 0; i < config.host_cores; ++i) {
    cores_.push_back(std::make_unique<FifoResource>(
        &env.sim(), "cpu:" + std::to_string(id) + ":" + std::to_string(i)));
  }
  if (config.with_dpu) {
    dpu_ = std::make_unique<Dpu>(env, id, config.dpu_cores);
  }
  rnic_ = std::make_unique<RdmaEngine>(env, id, network);
  tenants_.BindMetrics(&env.metrics(), static_cast<int64_t>(id));
}

Node::~Node() = default;

ConnectionService& Node::connections() {
  if (!connections_) {
    connections_ = std::make_unique<ConnectionService>(*env_, rnic_.get());
  }
  return *connections_;
}

FifoResource* Node::AllocateCore() {
  FifoResource* core = cores_.at(static_cast<size_t>(next_core_)).get();
  next_core_ = (next_core_ + 1) % static_cast<int>(cores_.size());
  ++allocated_cores_;
  if (allocated_cores_ > static_cast<int>(cores_.size())) {
    // The allocator wrapped: this "dedicated" core is already owned by an
    // earlier function/engine. Record it — silent sharing skews per-core
    // utilization readings and the autoscaler signals built on them.
    if (!m_oversubscribed_.resolved()) {
      m_oversubscribed_ = env_->metrics().ResolveCounter("node_core_oversubscribed",
                                                         MetricLabels::Node(id_));
    }
    m_oversubscribed_.Increment();
    env_->Trace(TraceCategory::kCluster, id_, "core_oversubscribed",
                static_cast<uint64_t>(allocated_cores_),
                static_cast<uint64_t>(cores_.size()));
  }
  return core;
}

double Node::HostUtilizationCores() const {
  double total = 0.0;
  for (const auto& core : cores_) {
    total += core->WindowUtilization();
  }
  return total;
}

void Node::ResetUtilizationWindows() {
  for (const auto& core : cores_) {
    core->ResetWindow();
  }
  if (dpu_) {
    for (int i = 0; i < dpu_->num_cores(); ++i) {
      dpu_->core(i).ResetWindow();
    }
  }
}

}  // namespace nadino
