#include "src/runtime/workload.h"

#include <algorithm>

namespace nadino {

ClosedLoopClients::ClosedLoopClients(Env& env, IngressGateway* gateway, const Options& options)
    : env_(&env), gateway_(gateway), options_(options) {}

void ClosedLoopClients::Start() {
  for (int i = 0; i < options_.num_clients; ++i) {
    AddClient();
  }
}

SimDuration ClosedLoopClients::StaggerDelay(uint32_t client_id) const {
  const SimDuration stagger = options_.start_stagger;
  if (stagger <= 0) {
    return 0;
  }
  const SimDuration window = std::max(options_.stagger_window, stagger);
  // The ramp cycles inside `window` ON PURPOSE (an unbounded ramp would push
  // late clients arbitrarily far out), but wrapping must not re-synchronize:
  // the old `stagger * id % window` put client slots_per_window·k back onto
  // client 0's instant, recreating the burst the stagger exists to avoid.
  // Each lap through the window instead shifts by one nanosecond, so starts
  // stay distinct for the first slots·stagger clients (1M at the defaults).
  const uint32_t slots = static_cast<uint32_t>(window / stagger);
  const uint32_t lap = client_id / slots;
  return static_cast<SimDuration>(client_id % slots) * stagger +
         static_cast<SimDuration>(lap % static_cast<uint64_t>(stagger));
}

void ClosedLoopClients::AddClient() {
  const uint32_t client_id = static_cast<uint32_t>(next_client_++);
  sim().Schedule(StaggerDelay(client_id), [this, client_id]() { IssueRequest(client_id); });
}

void ClosedLoopClients::IssueRequest(uint32_t client_id) {
  if (stopped_) {
    return;
  }
  const SimTime issued_at = sim().now();
  // Client-side wire: the request crosses the client<->ingress Ethernet.
  sim().Schedule(env_->cost().client_wire_one_way, [this, client_id, issued_at]() {
    gateway_->SubmitRequest(client_id, options_.path, options_.payload_bytes,
                            [this, client_id, issued_at]() {
                              latencies_.Record(sim().now() - issued_at);
                              rate_.RecordCompletion();
                              ++completed_;
                              if (stopped_) {
                                return;
                              }
                              if (options_.think_time > 0) {
                                sim().Schedule(options_.think_time, [this, client_id]() {
                                  IssueRequest(client_id);
                                });
                              } else {
                                IssueRequest(client_id);
                              }
                            });
  });
}

TenantEchoLoad::TenantEchoLoad(Env& env, DataPlane* dataplane, FunctionRuntime* client,
                               FunctionRuntime* server, const Options& options)
    : env_(&env), dataplane_(dataplane), client_(client), server_(server), options_(options) {
  client_->SetHandler(
      [this](FunctionRuntime& /*fn*/, Buffer* buffer) { OnClientMessage(buffer); });
  server_->SetHandler(
      [this](FunctionRuntime& fn, Buffer* buffer) { OnServerMessage(fn, buffer); });
}

void TenantEchoLoad::ScheduleActive(SimTime from, SimTime to) {
  if (to <= from) {
    // Empty window: a tenant whose lifetime ends before its setup gate opens
    // (e.g. eager connection prewarm outlasting a short-lived tenant) never
    // issues — otherwise the deactivation would fire first and the late
    // activation would run the load forever.
    return;
  }
  sim().ScheduleAt(from, [this]() { SetActive(true); });
  sim().ScheduleAt(to, [this]() { SetActive(false); });
}

void TenantEchoLoad::SetActive(bool active) {
  active_ = active;
  if (active_) {
    Fill();
  }
}

void TenantEchoLoad::Fill() {
  while (active_ && outstanding_ < options_.window) {
    if (!IssueOne()) {
      break;  // Backpressure: resume filling as completions come back.
    }
  }
}

bool TenantEchoLoad::IssueOne() {
  Buffer* buffer = client_->pool()->Get(client_->owner_id());
  if (buffer == nullptr) {
    return false;  // Pool backpressure: retry as completions come back.
  }
  MessageHeader header;
  header.chain = 0;
  header.src = client_->id();
  header.dst = server_->id();
  header.payload_length = options_.payload_bytes;
  header.request_id = next_request_++;
  if (!WriteMessage(buffer, header) || !dataplane_->Send(client_, buffer)) {
    client_->pool()->Put(buffer, client_->owner_id());
    return false;
  }
  issue_times_[header.request_id] = sim().now();
  pending_peak_ = std::max(pending_peak_, issue_times_.size());
  ++outstanding_;
  if (SloObject* slo = env_->slos().OfTenant(client_->tenant())) {
    slo->RecordRequest();
  }
  ArmReaper();
  return true;
}

void TenantEchoLoad::OnClientMessage(Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  const auto it = header.has_value() ? issue_times_.find(header->request_id)
                                     : issue_times_.end();
  if (it == issue_times_.end()) {
    // Unparseable header (corruption) or a request id we no longer track (a
    // FaultPlane duplicate, or a response outliving its reaped request).
    // Counting it would drive outstanding_ negative and over-fill the window
    // on the next Fill(), so only the buffer is recycled.
    ++unmatched_responses_;
    client_->pool()->Put(buffer, client_->owner_id());
    return;
  }
  const SimDuration latency = sim().now() - it->second;
  latencies_.Record(latency);
  if (SloObject* slo = env_->slos().OfTenant(client_->tenant())) {
    slo->RecordLatency(latency);
  }
  issue_times_.erase(it);
  // A matched echo response: recycle and keep the window full.
  client_->pool()->Put(buffer, client_->owner_id());
  --outstanding_;
  ++completed_;
  if (completed_ == 1 && on_first_response_) {
    on_first_response_();
  }
  rate_.RecordCompletion();
  Fill();
}

void TenantEchoLoad::OnServerMessage(FunctionRuntime& server, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    server.pool()->Put(buffer, server.owner_id());
    return;
  }
  MessageHeader reply;
  reply.chain = header->chain;
  reply.src = server.id();
  reply.dst = header->src;
  reply.payload_length = header->payload_length;
  reply.request_id = header->request_id;
  reply.flags = MessageHeader::kFlagResponse;
  if (!RewriteHeader(buffer, reply) || !dataplane_->Send(&server, buffer)) {
    server.pool()->Put(buffer, server.owner_id());
  }
}

void TenantEchoLoad::ArmReaper() {
  if (options_.pending_timeout <= 0 || reaper_armed_) {
    return;
  }
  reaper_armed_ = true;
  sim().Schedule(options_.pending_timeout, [this]() { ReapTick(); });
}

void TenantEchoLoad::ReapTick() {
  reaper_armed_ = false;
  const SimTime cutoff = sim().now() - options_.pending_timeout;
  while (!issue_times_.empty() && issue_times_.begin()->second <= cutoff) {
    // Permanently dropped ("counted not hung" at the injection site, retries
    // exhausted): the response will never arrive. Release the window slot and
    // forget the id — a zombie late response lands in unmatched_responses_.
    issue_times_.erase(issue_times_.begin());
    --outstanding_;
    ++reaped_;
  }
  Fill();
  if (active_ || !issue_times_.empty()) {
    reaper_armed_ = true;
    sim().Schedule(options_.pending_timeout, [this]() { ReapTick(); });
  }
}

void PeriodicSampler::Start() { Tick(); }

void PeriodicSampler::Tick() {
  if (stopped_) {
    return;
  }
  tick_event_ = sim().Schedule(period_, [this]() {
    for (RateMeter* meter : meters_) {
      meter->Roll(sim().now());
    }
    for (const SampleHook& hook : hooks_) {
      hook(sim().now());
    }
    Tick();
  });
}

void PeriodicSampler::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  sim().Cancel(tick_event_);
  tick_event_ = kInvalidEventId;
  // Flush the final partial window: without this, completions since the last
  // tick never reach the series (RateMeter::Roll's zero-width guard makes a
  // Stop() exactly on a tick boundary harmless).
  for (RateMeter* meter : meters_) {
    meter->Roll(sim().now());
  }
  for (const SampleHook& hook : hooks_) {
    hook(sim().now());
  }
}

}  // namespace nadino
