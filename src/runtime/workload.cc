#include "src/runtime/workload.h"

namespace nadino {

ClosedLoopClients::ClosedLoopClients(Env& env, IngressGateway* gateway, const Options& options)
    : env_(&env), gateway_(gateway), options_(options) {}

void ClosedLoopClients::Start() {
  for (int i = 0; i < options_.num_clients; ++i) {
    AddClient();
  }
}

void ClosedLoopClients::AddClient() {
  const uint32_t client_id = static_cast<uint32_t>(next_client_++);
  sim().Schedule(options_.start_stagger * client_id % (1 * kMillisecond),
                 [this, client_id]() { IssueRequest(client_id); });
}

void ClosedLoopClients::IssueRequest(uint32_t client_id) {
  if (stopped_) {
    return;
  }
  const SimTime issued_at = sim().now();
  // Client-side wire: the request crosses the client<->ingress Ethernet.
  sim().Schedule(env_->cost().client_wire_one_way, [this, client_id, issued_at]() {
    gateway_->SubmitRequest(client_id, options_.path, options_.payload_bytes,
                            [this, client_id, issued_at]() {
                              latencies_.Record(sim().now() - issued_at);
                              rate_.RecordCompletion();
                              ++completed_;
                              if (stopped_) {
                                return;
                              }
                              if (options_.think_time > 0) {
                                sim().Schedule(options_.think_time, [this, client_id]() {
                                  IssueRequest(client_id);
                                });
                              } else {
                                IssueRequest(client_id);
                              }
                            });
  });
}

TenantEchoLoad::TenantEchoLoad(Env& env, DataPlane* dataplane, FunctionRuntime* client,
                               FunctionRuntime* server, const Options& options)
    : env_(&env), dataplane_(dataplane), client_(client), server_(server), options_(options) {
  client_->SetHandler(
      [this](FunctionRuntime& /*fn*/, Buffer* buffer) { OnClientMessage(buffer); });
  server_->SetHandler(
      [this](FunctionRuntime& fn, Buffer* buffer) { OnServerMessage(fn, buffer); });
}

void TenantEchoLoad::ScheduleActive(SimTime from, SimTime to) {
  if (to <= from) {
    // Empty window: a tenant whose lifetime ends before its setup gate opens
    // (e.g. eager connection prewarm outlasting a short-lived tenant) never
    // issues — otherwise the deactivation would fire first and the late
    // activation would run the load forever.
    return;
  }
  sim().ScheduleAt(from, [this]() { SetActive(true); });
  sim().ScheduleAt(to, [this]() { SetActive(false); });
}

void TenantEchoLoad::SetActive(bool active) {
  active_ = active;
  if (active_) {
    Fill();
  }
}

void TenantEchoLoad::Fill() {
  while (active_ && outstanding_ < options_.window) {
    if (!IssueOne()) {
      break;  // Backpressure: resume filling as completions come back.
    }
  }
}

bool TenantEchoLoad::IssueOne() {
  Buffer* buffer = client_->pool()->Get(client_->owner_id());
  if (buffer == nullptr) {
    return false;  // Pool backpressure: retry as completions come back.
  }
  MessageHeader header;
  header.chain = 0;
  header.src = client_->id();
  header.dst = server_->id();
  header.payload_length = options_.payload_bytes;
  header.request_id = next_request_++;
  if (!WriteMessage(buffer, header) || !dataplane_->Send(client_, buffer)) {
    client_->pool()->Put(buffer, client_->owner_id());
    return false;
  }
  issue_times_[header.request_id] = sim().now();
  ++outstanding_;
  if (SloObject* slo = env_->slos().OfTenant(client_->tenant())) {
    slo->RecordRequest();
  }
  return true;
}

void TenantEchoLoad::OnClientMessage(Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (header.has_value()) {
    const auto it = issue_times_.find(header->request_id);
    if (it != issue_times_.end()) {
      const SimDuration latency = sim().now() - it->second;
      latencies_.Record(latency);
      if (SloObject* slo = env_->slos().OfTenant(client_->tenant())) {
        slo->RecordLatency(latency);
      }
      issue_times_.erase(it);
    }
  }
  // An echo response: recycle and keep the window full.
  client_->pool()->Put(buffer, client_->owner_id());
  --outstanding_;
  ++completed_;
  if (completed_ == 1 && on_first_response_) {
    on_first_response_();
  }
  rate_.RecordCompletion();
  Fill();
}

void TenantEchoLoad::OnServerMessage(FunctionRuntime& server, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    server.pool()->Put(buffer, server.owner_id());
    return;
  }
  MessageHeader reply;
  reply.chain = header->chain;
  reply.src = server.id();
  reply.dst = header->src;
  reply.payload_length = header->payload_length;
  reply.request_id = header->request_id;
  reply.flags = MessageHeader::kFlagResponse;
  if (!RewriteHeader(buffer, reply) || !dataplane_->Send(&server, buffer)) {
    server.pool()->Put(buffer, server.owner_id());
  }
}

void PeriodicSampler::Start() { Tick(); }

void PeriodicSampler::Tick() {
  if (stopped_) {
    return;
  }
  sim().Schedule(period_, [this]() {
    for (RateMeter* meter : meters_) {
      meter->Roll(sim().now());
    }
    for (const SampleHook& hook : hooks_) {
      hook(sim().now());
    }
    Tick();
  });
}

}  // namespace nadino
