#include "src/runtime/openloop.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace nadino {

double ArrivalSchedule::RateAt(SimTime now) const {
  double rate = base_rps;
  if (!trace.empty()) {
    if (trace_cursor_ < trace.size() && trace[trace_cursor_].at > now) {
      trace_cursor_ = 0;  // Rewound (tests evaluate out of order); restart.
    }
    while (trace_cursor_ + 1 < trace.size() && trace[trace_cursor_ + 1].at <= now) {
      ++trace_cursor_;
    }
    rate = now >= trace[trace_cursor_].at ? trace[trace_cursor_].rps : 0.0;
  }
  if (!segments.empty()) {
    const SimTime phase = period > 0 ? now % period : now;
    if (phase < last_phase_) {
      seg_cursor_ = 0;  // Diurnal wrap: the cycle restarted.
    }
    last_phase_ = phase;
    while (seg_cursor_ + 1 < segments.size() && segments[seg_cursor_ + 1].start <= phase) {
      ++seg_cursor_;
    }
    if (phase >= segments[seg_cursor_].start) {
      rate *= segments[seg_cursor_].multiplier;
    }
  }
  if (!bursts.empty()) {
    if (burst_cursor_ < bursts.size() && bursts[burst_cursor_].start > now &&
        burst_cursor_ > 0) {
      burst_cursor_ = 0;
    }
    while (burst_cursor_ < bursts.size() &&
           bursts[burst_cursor_].start + bursts[burst_cursor_].duration <= now) {
      ++burst_cursor_;
    }
    for (size_t i = burst_cursor_; i < bursts.size() && bursts[i].start <= now; ++i) {
      if (now < bursts[i].start + bursts[i].duration) {
        rate += bursts[i].add_rps;
      }
    }
  }
  return rate > 0.0 ? rate : 0.0;
}

ArrivalSchedule MakeDiurnalSchedule(double base_rps, SimDuration period, int steps,
                                    double trough_multiplier, double peak_multiplier) {
  constexpr double kPi = 3.14159265358979323846;
  ArrivalSchedule schedule;
  schedule.base_rps = base_rps;
  schedule.period = period;
  schedule.segments.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double phase = static_cast<double>(i) / static_cast<double>(steps);
    // Raised cosine: trough at phase 0, peak at phase 0.5, back to trough.
    const double multiplier =
        trough_multiplier +
        (peak_multiplier - trough_multiplier) * 0.5 * (1.0 - std::cos(2.0 * kPi * phase));
    const SimTime start = static_cast<SimTime>(
        (static_cast<double>(period) * static_cast<double>(i)) / static_cast<double>(steps));
    schedule.segments.push_back({start, multiplier});
  }
  return schedule;
}

bool LoadArrivalTrace(const std::string& path, std::vector<ArrivalSchedule::TracePoint>* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::vector<ArrivalSchedule::TracePoint> points;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    double time_ms = 0.0;
    double rps = 0.0;
    if (!(fields >> time_ms)) {
      continue;  // Blank or comment-only line.
    }
    if (!(fields >> rps) || time_ms < 0.0 || rps < 0.0) {
      return false;
    }
    const SimTime at = static_cast<SimTime>(time_ms * static_cast<double>(kMillisecond));
    if (!points.empty() && at < points.back().at) {
      return false;  // Must be time-sorted.
    }
    points.push_back({at, rps});
  }
  if (points.empty()) {
    return false;
  }
  *out = std::move(points);
  return true;
}

namespace {
// SplitMix64 finalizer: decorrelates per-tenant RNG streams from the env
// seed and from each other.
uint64_t MixSeed(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

uint32_t OpenLoopSource::AddTenant(const TenantOptions& tenant) {
  const uint32_t index = static_cast<uint32_t>(tenants_.size());
  TenantState state;
  state.opts = tenant;
  if (options_.parallel) {
    state.rng = std::make_unique<Rng>(env_->seed() ^ MixSeed(index + 1));
    state.latencies = std::make_unique<LatencyHistogram>();
  }
  tenants_.push_back(std::move(state));
  return index;
}

void OpenLoopSource::Start() {
  running_ = true;
  // First quantum is generated inline (tenants draw in index order, keeping
  // the RNG stream deterministic), then each tenant re-arms itself.
  for (uint32_t t = 0; t < tenants_.size(); ++t) {
    TenantTick(t);
  }
}

void OpenLoopSource::TenantTick(uint32_t tenant) {
  if (!running_) {
    return;
  }
  const SimTime now = sim().now();
  if (options_.horizon > 0 && now >= options_.horizon) {
    return;  // Generation window over; in-flight work drains on its own.
  }
  TenantState& state = tenants_[tenant];
  const double rate = state.opts.schedule.RateAt(now);
  const double mean =
      rate * (static_cast<double>(options_.tick) / static_cast<double>(kSecond));
  // Parallel mode draws from the tenant's private stream and scatters into
  // its private scratch: ticks for tenants on different shards run
  // concurrently and must not share RNG state (or each other's draws).
  Rng& rng = options_.parallel ? *state.rng : env_->rng();
  std::vector<SimTime>& scratch = options_.parallel ? state.scratch : batch_scratch_;
  const uint64_t n = rng.Poisson(mean);
  if (n > 0) {
    scratch.clear();
    scratch.reserve(n);
    const uint64_t span = static_cast<uint64_t>(options_.tick);
    for (uint64_t i = 0; i < n; ++i) {
      const SimTime at = now + static_cast<SimDuration>(rng.UniformInt(0, span - 1));
      if (options_.horizon > 0 && at >= options_.horizon) {
        continue;
      }
      scratch.push_back(at);
    }
    // Sorted ascending: ScheduleBatch exploits the order (a sorted run IS a
    // heap) and arrivals admit in time order within the quantum.
    std::sort(scratch.begin(), scratch.end());
    sim().ScheduleBatch(state.opts.shard, scratch,
                        [this, tenant](size_t) { return [this, tenant]() { Admit(tenant); }; });
  }
  sim().ScheduleOn(state.opts.shard, options_.tick, [this, tenant]() { TenantTick(tenant); });
}

void OpenLoopSource::Admit(uint32_t tenant) {
  TenantState& state = tenants_[tenant];
  ++state.offered;
  if (!options_.parallel) {
    ++offered_;
  }
  if (!running_ || dispatch_ == nullptr || state.in_flight >= state.opts.max_in_flight) {
    ++state.shed;
    if (!options_.parallel) {
      ++shed_;
    }
    return;
  }
  const SimTime issued_at = sim().now();
  if (!dispatch_(tenant, issued_at)) {
    ++state.shed;
    if (!options_.parallel) {
      ++shed_;
    }
    return;
  }
  ++state.in_flight;
  ++state.dispatched;
  state.in_flight_peak = std::max(state.in_flight_peak, state.in_flight);
  if (!options_.parallel) {
    ++dispatched_;
    ++in_flight_;
    in_flight_peak_ = std::max(in_flight_peak_, in_flight_);
  }
}

void OpenLoopSource::OnComplete(uint32_t tenant, SimTime issued_at) {
  TenantState& state = tenants_[tenant];
  --state.in_flight;
  ++state.completed;
  if (options_.parallel) {
    // Tenant-confined: the completion runs on the tenant's shard, so only
    // its private histogram is touched (the shared RateMeter stays idle).
    state.latencies->Record(sim().now() - issued_at);
    return;
  }
  --in_flight_;
  ++completed_;
  latencies_.Record(sim().now() - issued_at);
  rate_.RecordCompletion();
}

void OpenLoopSource::OnDropped(uint32_t tenant) {
  TenantState& state = tenants_[tenant];
  --state.in_flight;
  ++state.dropped;
  if (!options_.parallel) {
    --in_flight_;
    ++dropped_;
  }
}

LatencyHistogram OpenLoopSource::MergedLatencies() const {
  if (!options_.parallel) {
    return latencies_;
  }
  LatencyHistogram merged;
  for (const TenantState& state : tenants_) {
    merged.Merge(*state.latencies);
  }
  return merged;
}

bool OpenLoopGatewayDriver::Issue(SimTime issued_at) {
  OpenLoopSource* source = source_;
  const uint32_t tenant = tenant_;
  gateway_->SubmitRequest(tenant_, path_, payload_bytes_, [source, tenant, issued_at]() {
    source->OnComplete(tenant, issued_at);
  });
  return true;
}

OpenLoopEchoDriver::OpenLoopEchoDriver(Env& env, OpenLoopSource* source, DataPlane* dataplane,
                                       FunctionRuntime* client, FunctionRuntime* server,
                                       uint32_t tenant, uint32_t payload_bytes)
    : env_(&env), source_(source), dataplane_(dataplane), client_(client), server_(server),
      tenant_(tenant), payload_bytes_(payload_bytes) {
  client_->SetHandler(
      [this](FunctionRuntime& /*fn*/, Buffer* buffer) { OnClientMessage(buffer); });
  server_->SetHandler(
      [this](FunctionRuntime& fn, Buffer* buffer) { OnServerMessage(fn, buffer); });
}

bool OpenLoopEchoDriver::Issue(SimTime issued_at) {
  Buffer* buffer = client_->pool()->Get(client_->owner_id());
  if (buffer == nullptr) {
    return false;  // Pool backpressure: open loop sheds instead of waiting.
  }
  MessageHeader header;
  header.chain = 0;
  header.src = client_->id();
  header.dst = server_->id();
  header.payload_length = payload_bytes_;
  header.request_id = next_request_++;
  if (!WriteMessage(buffer, header) || !dataplane_->Send(client_, buffer)) {
    client_->pool()->Put(buffer, client_->owner_id());
    return false;
  }
  issue_times_[header.request_id] = issued_at;
  return true;
}

void OpenLoopEchoDriver::OnClientMessage(Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  const auto it = header.has_value() ? issue_times_.find(header->request_id)
                                     : issue_times_.end();
  if (it == issue_times_.end()) {
    // Same contract as TenantEchoLoad: duplicates/corruption never close a
    // request they did not open.
    ++unmatched_responses_;
    client_->pool()->Put(buffer, client_->owner_id());
    return;
  }
  const SimTime issued_at = it->second;
  issue_times_.erase(it);
  client_->pool()->Put(buffer, client_->owner_id());
  source_->OnComplete(tenant_, issued_at);
}

// --- OpenLoopShardEchoDriver -------------------------------------------------

SimDuration OpenLoopShardEchoDriver::HopFloor(const CostModel& cost) {
  // One direction of the calibrated DNE echo: TX engine stage (DPU-scaled),
  // RNIC WR processing both ends, and the wire (propagation out + switch +
  // propagation in). Every cross-shard transition in this driver uses
  // exactly this delay, so it is also the drain lookahead.
  return cost.OnDpu(cost.dne_tx_stage) + cost.rnic_wr_tx + 2 * cost.link_propagation +
         cost.switch_latency + cost.rnic_wr_rx + cost.OnDpu(cost.dne_rx_stage);
}

uint64_t OpenLoopShardEchoDriver::StageWork(uint64_t tenant, SimTime at, uint32_t rounds) {
  // FNV-1a-style mixing loop: real ALU work per service (the parallel drain
  // has actual CPU cost to spread across cores), fully determined by
  // (tenant, at, rounds) so every worker count computes the same hash.
  uint64_t h = 1469598103934665603ull ^ (tenant * 0x9e3779b97f4a7c15ull);
  uint64_t x = static_cast<uint64_t>(at) | 1;
  for (uint32_t i = 0; i < rounds; ++i) {
    h = (h ^ x) * 1099511628211ull;
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    h ^= h >> 29;
  }
  return h;
}

OpenLoopShardEchoDriver::OpenLoopShardEchoDriver(Env& env, OpenLoopSource* source,
                                                 const CostModel& cost, uint32_t shard_count,
                                                 uint64_t buffers_per_shard)
    : env_(&env), source_(source), hop_(HopFloor(cost)),
      service_base_(cost.OnDpu(cost.dne_loop_iteration + cost.dne_sched_op)),
      engines_(shard_count) {
  for (ShardEngine& engine : engines_) {
    engine.buffers_free = buffers_per_shard;
    engine.buffers_min = buffers_per_shard;
    engine.buffers_capacity = buffers_per_shard;
  }
}

void OpenLoopShardEchoDriver::AddTenant(const TenantBinding& binding) {
  bindings_.push_back(binding);
  client_lanes_.emplace_back();
  server_lanes_.emplace_back();
}

bool OpenLoopShardEchoDriver::Issue(uint32_t tenant, SimTime issued_at) {
  const TenantBinding& binding = bindings_[tenant];
  ++client_lanes_[tenant].issued;
  sim().ScheduleAtOn(binding.server_shard, sim().now() + hop_,
                     [this, tenant, issued_at] { OnServer(tenant, issued_at); });
  return true;
}

void OpenLoopShardEchoDriver::OnServer(uint32_t tenant, SimTime issued_at) {
  const TenantBinding& binding = bindings_[tenant];
  ShardEngine& engine = engines_[binding.server_shard];
  ++engine.hops_in;
  if (engine.buffers_free == 0) {
    // Server-side shed after dispatch: tell the client lane so the source's
    // in-flight slot is released (on the client shard, one hop later).
    ++server_lanes_[tenant].dropped;
    sim().ScheduleAtOn(binding.client_shard, sim().now() + hop_,
                       [this, tenant] { OnDrop(tenant); });
    return;
  }
  --engine.buffers_free;
  if (engine.buffers_free < engine.buffers_min) {
    engine.buffers_min = engine.buffers_free;
  }
  const uint64_t hash = StageWork(tenant, issued_at, binding.payload);
  // Run-to-completion engine: service starts when the core frees up;
  // per-service time is the calibrated loop+sched base plus hash jitter.
  const SimDuration service = service_base_ + static_cast<SimDuration>(hash & 0x3FF);
  const SimTime now = sim().now();
  const SimTime start = now > engine.busy_until ? now : engine.busy_until;
  const SimTime done = start + service;
  engine.busy_until = done;
  ++engine.served;
  ++server_lanes_[tenant].served;
  engine.digest ^= hash ^ (static_cast<uint64_t>(done) * 0x9e3779b97f4a7c15ull);
  // At `done` the buffer recycles (own shard) and the reply departs (one
  // hop back to the client shard).
  sim().ScheduleAt(done, [this, tenant, issued_at, done] {
    ++engines_[bindings_[tenant].server_shard].buffers_free;
    sim().ScheduleAtOn(bindings_[tenant].client_shard, done + hop_,
                       [this, tenant, issued_at] { OnReply(tenant, issued_at); });
  });
}

void OpenLoopShardEchoDriver::OnReply(uint32_t tenant, SimTime issued_at) {
  ClientLane& lane = client_lanes_[tenant];
  ++lane.completed;
  const TenantBinding& binding = bindings_[tenant];
  if (binding.slo_target > 0 && sim().now() - issued_at > binding.slo_target) {
    ++lane.slo_violations;
  }
  source_->OnComplete(tenant, issued_at);
}

void OpenLoopShardEchoDriver::OnDrop(uint32_t tenant) { source_->OnDropped(tenant); }

uint64_t OpenLoopShardEchoDriver::served() const {
  uint64_t total = 0;
  for (const ShardEngine& engine : engines_) {
    total += engine.served;
  }
  return total;
}

uint64_t OpenLoopShardEchoDriver::server_drops() const {
  uint64_t total = 0;
  for (const ServerLane& lane : server_lanes_) {
    total += lane.dropped;
  }
  return total;
}

uint64_t OpenLoopShardEchoDriver::slo_violations() const {
  uint64_t total = 0;
  for (const ClientLane& lane : client_lanes_) {
    total += lane.slo_violations;
  }
  return total;
}

uint64_t OpenLoopShardEchoDriver::digest() const {
  uint64_t x = 0;
  for (const ShardEngine& engine : engines_) {
    x ^= engine.digest;
  }
  return x;
}

uint64_t OpenLoopShardEchoDriver::buffers_leaked() const {
  uint64_t leaked = 0;
  for (const ShardEngine& engine : engines_) {
    leaked += engine.buffers_capacity - engine.buffers_free;
  }
  return leaked;
}

void OpenLoopEchoDriver::OnServerMessage(FunctionRuntime& server, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    server.pool()->Put(buffer, server.owner_id());
    return;
  }
  MessageHeader reply;
  reply.chain = header->chain;
  reply.src = server.id();
  reply.dst = header->src;
  reply.payload_length = header->payload_length;
  reply.request_id = header->request_id;
  reply.flags = MessageHeader::kFlagResponse;
  if (!RewriteHeader(buffer, reply) || !dataplane_->Send(&server, buffer)) {
    server.pool()->Put(buffer, server.owner_id());
  }
}

}  // namespace nadino
