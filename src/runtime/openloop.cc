#include "src/runtime/openloop.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace nadino {

double ArrivalSchedule::RateAt(SimTime now) const {
  double rate = base_rps;
  if (!trace.empty()) {
    if (trace_cursor_ < trace.size() && trace[trace_cursor_].at > now) {
      trace_cursor_ = 0;  // Rewound (tests evaluate out of order); restart.
    }
    while (trace_cursor_ + 1 < trace.size() && trace[trace_cursor_ + 1].at <= now) {
      ++trace_cursor_;
    }
    rate = now >= trace[trace_cursor_].at ? trace[trace_cursor_].rps : 0.0;
  }
  if (!segments.empty()) {
    const SimTime phase = period > 0 ? now % period : now;
    if (phase < last_phase_) {
      seg_cursor_ = 0;  // Diurnal wrap: the cycle restarted.
    }
    last_phase_ = phase;
    while (seg_cursor_ + 1 < segments.size() && segments[seg_cursor_ + 1].start <= phase) {
      ++seg_cursor_;
    }
    if (phase >= segments[seg_cursor_].start) {
      rate *= segments[seg_cursor_].multiplier;
    }
  }
  if (!bursts.empty()) {
    if (burst_cursor_ < bursts.size() && bursts[burst_cursor_].start > now &&
        burst_cursor_ > 0) {
      burst_cursor_ = 0;
    }
    while (burst_cursor_ < bursts.size() &&
           bursts[burst_cursor_].start + bursts[burst_cursor_].duration <= now) {
      ++burst_cursor_;
    }
    for (size_t i = burst_cursor_; i < bursts.size() && bursts[i].start <= now; ++i) {
      if (now < bursts[i].start + bursts[i].duration) {
        rate += bursts[i].add_rps;
      }
    }
  }
  return rate > 0.0 ? rate : 0.0;
}

ArrivalSchedule MakeDiurnalSchedule(double base_rps, SimDuration period, int steps,
                                    double trough_multiplier, double peak_multiplier) {
  constexpr double kPi = 3.14159265358979323846;
  ArrivalSchedule schedule;
  schedule.base_rps = base_rps;
  schedule.period = period;
  schedule.segments.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double phase = static_cast<double>(i) / static_cast<double>(steps);
    // Raised cosine: trough at phase 0, peak at phase 0.5, back to trough.
    const double multiplier =
        trough_multiplier +
        (peak_multiplier - trough_multiplier) * 0.5 * (1.0 - std::cos(2.0 * kPi * phase));
    const SimTime start = static_cast<SimTime>(
        (static_cast<double>(period) * static_cast<double>(i)) / static_cast<double>(steps));
    schedule.segments.push_back({start, multiplier});
  }
  return schedule;
}

bool LoadArrivalTrace(const std::string& path, std::vector<ArrivalSchedule::TracePoint>* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::vector<ArrivalSchedule::TracePoint> points;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    double time_ms = 0.0;
    double rps = 0.0;
    if (!(fields >> time_ms)) {
      continue;  // Blank or comment-only line.
    }
    if (!(fields >> rps) || time_ms < 0.0 || rps < 0.0) {
      return false;
    }
    const SimTime at = static_cast<SimTime>(time_ms * static_cast<double>(kMillisecond));
    if (!points.empty() && at < points.back().at) {
      return false;  // Must be time-sorted.
    }
    points.push_back({at, rps});
  }
  if (points.empty()) {
    return false;
  }
  *out = std::move(points);
  return true;
}

uint32_t OpenLoopSource::AddTenant(const TenantOptions& tenant) {
  const uint32_t index = static_cast<uint32_t>(tenants_.size());
  TenantState state;
  state.opts = tenant;
  tenants_.push_back(std::move(state));
  return index;
}

void OpenLoopSource::Start() {
  running_ = true;
  // First quantum is generated inline (tenants draw in index order, keeping
  // the RNG stream deterministic), then each tenant re-arms itself.
  for (uint32_t t = 0; t < tenants_.size(); ++t) {
    TenantTick(t);
  }
}

void OpenLoopSource::TenantTick(uint32_t tenant) {
  if (!running_) {
    return;
  }
  const SimTime now = sim().now();
  if (options_.horizon > 0 && now >= options_.horizon) {
    return;  // Generation window over; in-flight work drains on its own.
  }
  TenantState& state = tenants_[tenant];
  const double rate = state.opts.schedule.RateAt(now);
  const double mean =
      rate * (static_cast<double>(options_.tick) / static_cast<double>(kSecond));
  const uint64_t n = env_->rng().Poisson(mean);
  if (n > 0) {
    batch_scratch_.clear();
    batch_scratch_.reserve(n);
    const uint64_t span = static_cast<uint64_t>(options_.tick);
    for (uint64_t i = 0; i < n; ++i) {
      const SimTime at = now + static_cast<SimDuration>(env_->rng().UniformInt(0, span - 1));
      if (options_.horizon > 0 && at >= options_.horizon) {
        continue;
      }
      batch_scratch_.push_back(at);
    }
    // Sorted ascending: ScheduleBatch exploits the order (a sorted run IS a
    // heap) and arrivals admit in time order within the quantum.
    std::sort(batch_scratch_.begin(), batch_scratch_.end());
    sim().ScheduleBatch(state.opts.shard, batch_scratch_,
                        [this, tenant](size_t) { return [this, tenant]() { Admit(tenant); }; });
  }
  sim().ScheduleOn(state.opts.shard, options_.tick, [this, tenant]() { TenantTick(tenant); });
}

void OpenLoopSource::Admit(uint32_t tenant) {
  TenantState& state = tenants_[tenant];
  ++state.offered;
  ++offered_;
  if (!running_ || dispatch_ == nullptr || state.in_flight >= state.opts.max_in_flight) {
    ++state.shed;
    ++shed_;
    return;
  }
  const SimTime issued_at = sim().now();
  if (!dispatch_(tenant, issued_at)) {
    ++state.shed;
    ++shed_;
    return;
  }
  ++state.in_flight;
  ++dispatched_;
  ++in_flight_;
  in_flight_peak_ = std::max(in_flight_peak_, in_flight_);
}

void OpenLoopSource::OnComplete(uint32_t tenant, SimTime issued_at) {
  TenantState& state = tenants_[tenant];
  --state.in_flight;
  --in_flight_;
  ++state.completed;
  ++completed_;
  latencies_.Record(sim().now() - issued_at);
  rate_.RecordCompletion();
}

bool OpenLoopGatewayDriver::Issue(SimTime issued_at) {
  OpenLoopSource* source = source_;
  const uint32_t tenant = tenant_;
  gateway_->SubmitRequest(tenant_, path_, payload_bytes_, [source, tenant, issued_at]() {
    source->OnComplete(tenant, issued_at);
  });
  return true;
}

OpenLoopEchoDriver::OpenLoopEchoDriver(Env& env, OpenLoopSource* source, DataPlane* dataplane,
                                       FunctionRuntime* client, FunctionRuntime* server,
                                       uint32_t tenant, uint32_t payload_bytes)
    : env_(&env), source_(source), dataplane_(dataplane), client_(client), server_(server),
      tenant_(tenant), payload_bytes_(payload_bytes) {
  client_->SetHandler(
      [this](FunctionRuntime& /*fn*/, Buffer* buffer) { OnClientMessage(buffer); });
  server_->SetHandler(
      [this](FunctionRuntime& fn, Buffer* buffer) { OnServerMessage(fn, buffer); });
}

bool OpenLoopEchoDriver::Issue(SimTime issued_at) {
  Buffer* buffer = client_->pool()->Get(client_->owner_id());
  if (buffer == nullptr) {
    return false;  // Pool backpressure: open loop sheds instead of waiting.
  }
  MessageHeader header;
  header.chain = 0;
  header.src = client_->id();
  header.dst = server_->id();
  header.payload_length = payload_bytes_;
  header.request_id = next_request_++;
  if (!WriteMessage(buffer, header) || !dataplane_->Send(client_, buffer)) {
    client_->pool()->Put(buffer, client_->owner_id());
    return false;
  }
  issue_times_[header.request_id] = issued_at;
  return true;
}

void OpenLoopEchoDriver::OnClientMessage(Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  const auto it = header.has_value() ? issue_times_.find(header->request_id)
                                     : issue_times_.end();
  if (it == issue_times_.end()) {
    // Same contract as TenantEchoLoad: duplicates/corruption never close a
    // request they did not open.
    ++unmatched_responses_;
    client_->pool()->Put(buffer, client_->owner_id());
    return;
  }
  const SimTime issued_at = it->second;
  issue_times_.erase(it);
  client_->pool()->Put(buffer, client_->owner_id());
  source_->OnComplete(tenant_, issued_at);
}

void OpenLoopEchoDriver::OnServerMessage(FunctionRuntime& server, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    server.pool()->Put(buffer, server.owner_id());
    return;
  }
  MessageHeader reply;
  reply.chain = header->chain;
  reply.src = server.id();
  reply.dst = header->src;
  reply.payload_length = header->payload_length;
  reply.request_id = header->request_id;
  reply.flags = MessageHeader::kFlagResponse;
  if (!RewriteHeader(buffer, reply) || !dataplane_->Send(&server, buffer)) {
    server.pool()->Put(buffer, server.owner_id());
  }
}

}  // namespace nadino
