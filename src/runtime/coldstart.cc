#include "src/runtime/coldstart.h"

namespace nadino {

ColdStartManager::ColdStartManager(Env& env, const Options& options)
    : env_(&env), options_(options) {}

void ColdStartManager::Manage(FunctionRuntime* function) {
  Instance& instance = instances_[function->id()];
  instance.function = function;
  instance.app_handler = function->handler();
  instance.state = InstanceState::kCold;
  function->SetHandler([this, id = function->id()](FunctionRuntime& fn, Buffer* buffer) {
    OnMessage(instances_.at(id), fn, buffer);
  });
  if (!sweeping_ && options_.sweep_period > 0) {
    sweeping_ = true;
    sim().Schedule(options_.sweep_period, [this]() { SweepTick(); });
  }
}

void ColdStartManager::Prewarm(FunctionId function) {
  const auto it = instances_.find(function);
  if (it == instances_.end()) {
    return;
  }
  it->second.state = InstanceState::kWarm;
  it->second.last_active = sim().now();
}

ColdStartManager::InstanceState ColdStartManager::StateOf(FunctionId function) const {
  const auto it = instances_.find(function);
  return it == instances_.end() ? InstanceState::kCold : it->second.state;
}

void ColdStartManager::OnMessage(Instance& instance, FunctionRuntime& fn, Buffer* buffer) {
  instance.last_active = sim().now();
  switch (instance.state) {
    case InstanceState::kWarm:
      ++stats_.warm_hits;
      if (instance.app_handler) {
        instance.app_handler(fn, buffer);
      }
      return;
    case InstanceState::kStarting:
      ++stats_.queued_during_start;
      instance.queued.push_back(buffer);
      return;
    case InstanceState::kCold:
      ++stats_.cold_starts;
      instance.state = InstanceState::kStarting;
      instance.queued.push_back(buffer);
      sim().Schedule(StartDelay(), [this, id = fn.id()]() { FinishStart(id); });
      return;
  }
}

void ColdStartManager::FinishStart(FunctionId function) {
  Instance& instance = instances_.at(function);
  instance.state = InstanceState::kWarm;
  instance.last_active = sim().now();
  // Drain everything that piled up behind the boot.
  std::deque<Buffer*> queued;
  queued.swap(instance.queued);
  for (Buffer* buffer : queued) {
    if (instance.app_handler) {
      instance.app_handler(*instance.function, buffer);
    }
  }
}

void ColdStartManager::SweepTick() {
  for (auto& [id, instance] : instances_) {
    if (instance.state == InstanceState::kWarm &&
        sim().now() - instance.last_active >= options_.keep_warm_timeout) {
      instance.state = InstanceState::kCold;
      ++stats_.retirements;
      if (retire_hook_) {
        retire_hook_(id);
      }
    }
  }
  sim().Schedule(options_.sweep_period, [this]() { SweepTick(); });
}

}  // namespace nadino
