#include "src/runtime/chain.h"

#include "src/rdma/wr_program.h"
#include "src/runtime/routing_table.h"

namespace nadino {

namespace {

size_t ExchangesFrom(const ChainSpec& spec, FunctionId fn) {
  const auto it = spec.behaviors.find(fn);
  if (it == spec.behaviors.end()) {
    return 0;
  }
  size_t total = 0;
  for (const CallSpec& call : it->second.calls) {
    total += 2;  // Request + response.
    total += ExchangesFrom(spec, call.callee);
  }
  return total;
}

}  // namespace

size_t ChainSpec::ExpectedExchanges() const { return ExchangesFrom(*this, entry); }

ChainExecutor::ChainExecutor(Env& env, DataPlane* dataplane)
    : env_(&env), dataplane_(dataplane) {}

void ChainExecutor::RegisterChain(const ChainSpec& spec) { chains_[spec.id] = spec; }

void ChainExecutor::AttachFunction(FunctionRuntime* function) {
  function->SetHandler(
      [this](FunctionRuntime& fn, Buffer* buffer) { OnMessage(fn, buffer); });
}

const FunctionBehavior* ChainExecutor::BehaviorOf(ChainId chain, FunctionId fn) const {
  const auto chain_it = chains_.find(chain);
  if (chain_it == chains_.end()) {
    return nullptr;
  }
  const auto fn_it = chain_it->second.behaviors.find(fn);
  return fn_it == chain_it->second.behaviors.end() ? nullptr : &fn_it->second;
}

TenantId ChainExecutor::TenantOf(ChainId chain) const {
  const auto it = chains_.find(chain);
  return it == chains_.end() ? kInvalidTenant : it->second.tenant;
}

void ChainExecutor::Fail(FunctionRuntime& fn, Buffer* buffer) {
  ++errors_;
  fn.pool()->Put(buffer, fn.owner_id());
}

void ChainExecutor::OnMessage(FunctionRuntime& fn, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value() || header->dst != fn.id()) {
    // Truncated, corrupted, or misrouted: the integrity checks failed.
    Fail(fn, buffer);
    return;
  }
  if (header->is_response()) {
    HandleResponse(fn, buffer, *header);
  } else {
    HandleRequest(fn, buffer, *header);
  }
}

void ChainExecutor::HandleRequest(FunctionRuntime& fn, Buffer* buffer,
                                  const MessageHeader& header) {
  const FunctionBehavior* behavior = BehaviorOf(header.chain, fn.id());
  if (behavior == nullptr) {
    Fail(fn, buffer);
    return;
  }
  // NIC-offload doorbell: requests that arrive via IPC (intra-node send, or
  // re-entry after a software fallback upstream) never produce the recv CQE
  // the installed WR program waits on, so ring it from here. A successful
  // Launch takes the buffer and runs the hop on the RNIC — including the
  // tenant's SLO request accounting — so this executor is done with it. A
  // decline (no program, injected wrprog_* fault, dead next hop) falls
  // through to the ordinary software hop below.
  if (WrProgramEngine* programs = dataplane_->wr_programs(fn.node()->id());
      programs != nullptr && programs->Launch(fn, buffer, header)) {
    return;
  }
  ++requests_handled_;
  if (SloObject* slo = env_->slos().OfTenant(TenantOf(header.chain))) {
    slo->RecordRequest();
  }
  // Execute the application logic on the function's dedicated core, then
  // either fan out to callees or respond.
  fn.core()->Submit(behavior->compute, [this, &fn, buffer, header]() {
    const FunctionBehavior* b = BehaviorOf(header.chain, fn.id());
    if (b == nullptr) {
      Fail(fn, buffer);
      return;
    }
    if (b->calls.empty()) {
      Reply(fn, buffer, header.chain, header.request_id, header.src);
      return;
    }
    if (b->parallel && b->calls.size() > 1) {
      IssueFanout(fn, buffer, header, *b);
      return;
    }
    PendingCall ctx;
    ctx.chain = header.chain;
    ctx.tenant = TenantOf(header.chain);
    ctx.issuer = &fn;
    ctx.caller = fn.id();
    ctx.parent_request = header.request_id;
    ctx.parent_src = header.src;
    ctx.call_index = 0;
    IssueCall(fn, buffer, ctx);
  });
}

void ChainExecutor::IssueCall(FunctionRuntime& fn, Buffer* buffer, const PendingCall& ctx) {
  const auto chain_it = chains_.find(ctx.chain);
  const FunctionBehavior* behavior = BehaviorOf(ctx.chain, ctx.caller);
  if (chain_it == chains_.end() || behavior == nullptr ||
      ctx.call_index >= behavior->calls.size()) {
    Fail(fn, buffer);
    return;
  }
  const CallSpec& call = behavior->calls[ctx.call_index];
  const uint64_t call_id = next_request_id_++;
  PendingCall& stored = pending_[call_id] = ctx;
  stored.target_node = ResolveNode(call.callee, &fn);

  MessageHeader out;
  out.chain = ctx.chain;
  out.src = fn.id();
  out.dst = call.callee;
  out.payload_length = call.request_payload;
  out.request_id = call_id;
  if (!WriteMessage(buffer, out)) {
    pending_.erase(call_id);
    Fail(fn, buffer);
    return;
  }
  if (!dataplane_->Send(&fn, buffer)) {
    pending_.erase(call_id);
    Fail(fn, buffer);
    return;
  }
  ArmTimeout(call_id, ctx.tenant);
}

void ChainExecutor::HandleResponse(FunctionRuntime& fn, Buffer* buffer,
                                   const MessageHeader& header) {
  const auto it = pending_.find(header.request_id);
  if (it == pending_.end() || it->second.caller != fn.id()) {
    if (it == pending_.end() && stale_ids_.erase(header.request_id) > 0) {
      // The answer to an attempt that already timed out: a retry (or its
      // terminal failure) superseded it. Recycle quietly — counting it as an
      // error would double-charge the timeout.
      RetryHandlesFor(TenantOf(header.chain)).stale_responses.Increment();
      fn.pool()->Put(buffer, fn.owner_id());
      return;
    }
    Fail(fn, buffer);
    return;
  }
  PendingCall ctx = it->second;
  pending_.erase(it);
  if (ctx.failed_over) {
    // The re-placed attempt answered from the surviving node.
    FailoverHandlesFor(ctx.tenant).recovered.Increment();
  }
  if (ctx.fanout_group != 0) {
    HandleFanoutResponse(fn, buffer, ctx);
    return;
  }
  const FunctionBehavior* behavior = BehaviorOf(ctx.chain, ctx.caller);
  if (behavior == nullptr) {
    Fail(fn, buffer);
    return;
  }
  ++ctx.call_index;
  ctx.attempt = 1;  // The next sequential call starts its own attempt count.
  ctx.failed_over = false;
  if (ctx.call_index < behavior->calls.size()) {
    IssueCall(fn, buffer, ctx);
    return;
  }
  Reply(fn, buffer, ctx.chain, ctx.parent_request, ctx.parent_src);
}

void ChainExecutor::IssueFanout(FunctionRuntime& fn, Buffer* buffer,
                                const MessageHeader& header,
                                const FunctionBehavior& behavior) {
  const uint64_t group = next_fanout_group_++;
  FanoutGroup& fanout = fanouts_[group];
  fanout.chain = header.chain;
  fanout.caller = fn.id();
  fanout.parent_request = header.request_id;
  fanout.parent_src = header.src;
  fanout.remaining = behavior.calls.size();
  for (size_t i = 0; i < behavior.calls.size(); ++i) {
    const CallSpec& call = behavior.calls[i];
    // The incoming buffer carries the first branch; the rest need their own.
    Buffer* out = i == 0 ? buffer : fn.pool()->Get(fn.owner_id());
    if (out == nullptr) {
      // Pool backpressure mid-fan-out: count the branch as failed so the
      // group can still converge (degraded, but never wedged).
      ++errors_;
      --fanout.remaining;
      continue;
    }
    const uint64_t call_id = next_request_id_++;
    PendingCall ctx;
    ctx.chain = header.chain;
    ctx.tenant = TenantOf(header.chain);
    ctx.issuer = &fn;
    ctx.caller = fn.id();
    ctx.call_index = i;
    ctx.fanout_group = group;
    ctx.target_node = ResolveNode(call.callee, &fn);
    pending_[call_id] = ctx;
    MessageHeader out_header;
    out_header.chain = header.chain;
    out_header.src = fn.id();
    out_header.dst = call.callee;
    out_header.payload_length = call.request_payload;
    out_header.request_id = call_id;
    if (!WriteMessage(out, out_header) || !dataplane_->Send(&fn, out)) {
      pending_.erase(call_id);
      ++errors_;
      fn.pool()->Put(out, fn.owner_id());
      --fanout.remaining;
      continue;
    }
    ArmTimeout(call_id, ctx.tenant);
  }
  if (fanout.remaining == 0) {
    // Every branch failed: nothing will ever come back; drop the group.
    fanouts_.erase(group);
  }
}

void ChainExecutor::HandleFanoutResponse(FunctionRuntime& fn, Buffer* buffer,
                                         const PendingCall& ctx) {
  const auto it = fanouts_.find(ctx.fanout_group);
  if (it == fanouts_.end()) {
    Fail(fn, buffer);
    return;
  }
  FanoutGroup& group = it->second;
  --group.remaining;
  if (group.remaining > 0) {
    // Intermediate branch: recycle its buffer; the last one carries the reply.
    fn.pool()->Put(buffer, fn.owner_id());
    return;
  }
  const FanoutGroup done = group;
  fanouts_.erase(it);
  Reply(fn, buffer, done.chain, done.parent_request, done.parent_src);
}

void ChainExecutor::Reply(FunctionRuntime& fn, Buffer* buffer, ChainId chain,
                          uint64_t parent_request, FunctionId parent_src) {
  const FunctionBehavior* behavior = BehaviorOf(chain, fn.id());
  MessageHeader out;
  out.chain = chain;
  out.src = fn.id();
  out.dst = parent_src;
  out.payload_length = behavior == nullptr ? 0 : behavior->response_payload;
  out.request_id = parent_request;
  out.flags = MessageHeader::kFlagResponse;
  if (!WriteMessage(buffer, out)) {
    Fail(fn, buffer);
    return;
  }
  if (!dataplane_->Send(&fn, buffer)) {
    Fail(fn, buffer);
  }
}

// ---------------------------------------------------------------------------
// Retry recovery (src/core/slo.h): per-attempt timeouts as simulator events,
// exponential backoff with seeded jitter, retry budget capped by the
// tenant's error budget. All retry_* metrics are created lazily so runs
// without policies keep byte-identical snapshots.
// ---------------------------------------------------------------------------

void ChainExecutor::ArmTimeout(uint64_t call_id, TenantId tenant) {
  const RetryPolicy* policy = env_->slos().RetryPolicyOf(tenant);
  if (policy == nullptr || policy->timeout <= 0) {
    return;
  }
  sim().Schedule(policy->timeout, [this, call_id]() { OnCallTimeout(call_id); });
}

void ChainExecutor::OnCallTimeout(uint64_t call_id) {
  const auto it = pending_.find(call_id);
  if (it == pending_.end()) {
    return;  // Answered (or superseded) before the deadline.
  }
  PendingCall ctx = it->second;
  pending_.erase(it);
  stale_ids_.insert(call_id);
  RetryHandles& retry = RetryHandlesFor(ctx.tenant);
  retry.timeouts.Increment();
  env_->Trace(TraceCategory::kApp, ctx.caller, "call_timeout", call_id, ctx.attempt);
  const RetryPolicy* policy = env_->slos().RetryPolicyOf(ctx.tenant);
  SloObject* slo = env_->slos().OfTenant(ctx.tenant);
  if (policy == nullptr || ctx.attempt >= policy->max_attempts) {
    retry.exhausted.Increment();
    FailAttempt(ctx);
    return;
  }
  if (slo != nullptr && !slo->TryConsumeRetryToken()) {
    retry.budget_denied.Increment();
    FailAttempt(ctx);
    return;
  }
  const SimDuration backoff = policy->BackoffFor(ctx.attempt, env_->slos().jitter_rng());
  ctx.attempt += 1;
  retry.attempts.Increment();
  sim().Schedule(backoff, [this, ctx]() { ReissueCall(ctx); });
}

ChainExecutor::RetryHandles& ChainExecutor::RetryHandlesFor(TenantId tenant) {
  const auto it = retry_handles_.find(tenant);
  if (it != retry_handles_.end()) {
    return it->second;
  }
  const MetricLabels labels = MetricLabels::Tenant(static_cast<int64_t>(tenant));
  MetricsRegistry& reg = env_->metrics();
  RetryHandles handles;
  handles.timeouts = reg.ResolveCounter("retry_timeouts", labels);
  handles.exhausted = reg.ResolveCounter("retry_exhausted", labels);
  handles.budget_denied = reg.ResolveCounter("retry_budget_denied", labels);
  handles.attempts = reg.ResolveCounter("retry_attempts", labels);
  handles.stale_responses = reg.ResolveCounter("retry_stale_responses", labels);
  return retry_handles_.emplace(tenant, handles).first->second;
}

ChainExecutor::FailoverHandles& ChainExecutor::FailoverHandlesFor(TenantId tenant) {
  const auto it = failover_handles_.find(tenant);
  if (it != failover_handles_.end()) {
    return it->second;
  }
  const MetricLabels labels = MetricLabels::Tenant(static_cast<int64_t>(tenant));
  MetricsRegistry& reg = env_->metrics();
  FailoverHandles handles;
  handles.attempts = reg.ResolveCounter("cluster_failover_attempts", labels);
  handles.recovered = reg.ResolveCounter("cluster_failover_recovered", labels);
  return failover_handles_.emplace(tenant, handles).first->second;
}

NodeId ChainExecutor::ResolveNode(FunctionId callee, FunctionRuntime* src) const {
  RoutingTable* routing = dataplane_->routing();
  if (routing == nullptr) {
    return kInvalidNode;
  }
  const NodeId src_node =
      src == nullptr || src->node() == nullptr ? kInvalidNode : src->node()->id();
  return routing->PeekFor(callee, src_node);
}

void ChainExecutor::ReissueCall(PendingCall ctx) {
  FunctionRuntime* fn = ctx.issuer;
  const FunctionBehavior* behavior = BehaviorOf(ctx.chain, ctx.caller);
  if (fn == nullptr || behavior == nullptr || ctx.call_index >= behavior->calls.size()) {
    FailAttempt(ctx);
    return;
  }
  const CallSpec& call = behavior->calls[ctx.call_index];
  // Cluster failover (DESIGN.md §3d/§3e): decide by LIVENESS of the attempt's
  // target, not by whether routing re-resolves to the same node — under a
  // spreading policy successive resolutions legitimately rotate, and treating
  // rotation as failover would miscount every retry as a cluster event. Only
  // when the targeted placement is no longer live does the call re-place onto
  // a different live replica; none left fails closed immediately instead of
  // burning the rest of the retry budget against a severed destination.
  RoutingTable* routing = dataplane_->routing();
  if (ctx.target_node != kInvalidNode && routing != nullptr &&
      !routing->IsLivePlacement(call.callee, ctx.target_node)) {
    const NodeId now_node = routing->LiveReplicaExcluding(call.callee, ctx.target_node);
    if (now_node == kInvalidNode) {
      env_->Trace(TraceCategory::kCluster, ctx.caller, "failover_unroutable",
                  ctx.parent_request, ctx.attempt);
      FailAttempt(ctx);
      return;
    }
    FailoverHandlesFor(ctx.tenant).attempts.Increment();
    env_->Trace(TraceCategory::kCluster, ctx.caller, "failover_reissue", call.callee,
                now_node);
    ctx.failed_over = true;
    ctx.target_node = now_node;
  }
  Buffer* buffer = fn->pool()->Get(fn->owner_id());
  if (buffer == nullptr) {
    // Pool backpressure at retry time: treat as terminal rather than
    // queueing unboundedly against an exhausted pool.
    FailAttempt(ctx);
    return;
  }
  const uint64_t call_id = next_request_id_++;
  pending_[call_id] = ctx;
  MessageHeader out;
  out.chain = ctx.chain;
  out.src = ctx.caller;
  out.dst = call.callee;
  out.payload_length = call.request_payload;
  out.request_id = call_id;
  env_->Trace(TraceCategory::kApp, ctx.caller, "call_retry", call_id, ctx.attempt);
  if (!WriteMessage(buffer, out) || !dataplane_->Send(fn, buffer)) {
    pending_.erase(call_id);
    fn->pool()->Put(buffer, fn->owner_id());
    FailAttempt(ctx);
    return;
  }
  ArmTimeout(call_id, ctx.tenant);
}

void ChainExecutor::FailAttempt(const PendingCall& ctx) {
  ++errors_;
  if (SloObject* slo = env_->slos().OfTenant(ctx.tenant)) {
    slo->RecordError();
  }
  env_->Trace(TraceCategory::kApp, ctx.caller, "call_failed", ctx.parent_request, ctx.attempt);
  if (ctx.fanout_group == 0) {
    return;
  }
  // A fan-out member died terminally: let the group converge degraded
  // instead of wedging the parent forever.
  const auto it = fanouts_.find(ctx.fanout_group);
  if (it == fanouts_.end()) {
    return;
  }
  FanoutGroup& group = it->second;
  --group.remaining;
  if (group.remaining > 0) {
    return;
  }
  const FanoutGroup done = group;
  fanouts_.erase(it);
  // The last outstanding branch was the failed one, so no arriving buffer
  // carries the reply; draw a fresh one for it.
  FunctionRuntime* fn = ctx.issuer;
  Buffer* buffer = fn == nullptr ? nullptr : fn->pool()->Get(fn->owner_id());
  if (buffer == nullptr) {
    ++errors_;
    return;
  }
  Reply(*fn, buffer, done.chain, done.parent_request, done.parent_src);
}

// ---------------------------------------------------------------------------
// NIC offload: the chain-to-WR-program compiler (src/rdma/wr_program.h).
// ---------------------------------------------------------------------------

size_t ChainExecutor::OffloadChain(ChainId chain, SimDuration* install_latency) {
  const auto chain_it = chains_.find(chain);
  RoutingTable* routing = dataplane_->routing();
  if (chain_it == chains_.end() || routing == nullptr) {
    return 0;
  }
  const ChainSpec& spec = chain_it->second;
  // Executor-level retries keep per-attempt state (pending calls, timeouts,
  // stale ids) that only exists in software; a tenant with a RetryPolicy
  // stays on the software path entirely.
  if (env_->slos().RetryPolicyOf(spec.tenant) != nullptr) {
    return 0;
  }
  // Walk the segment from the entry. Only linear shapes lower: a hop with
  // several calls (sequential or fan-out) needs software response
  // correlation, which a triggered-WR chain cannot express.
  std::vector<FunctionId> hops;
  FunctionId fn = spec.entry;
  while (fn != kInvalidFunction) {
    if (hops.size() >= 64) {
      return 0;  // Cycle (or absurd depth): not a chain we can pin on a NIC.
    }
    const auto behavior_it = spec.behaviors.find(fn);
    if (behavior_it == spec.behaviors.end() || behavior_it->second.calls.size() > 1) {
      return 0;
    }
    hops.push_back(fn);
    fn = behavior_it->second.calls.empty() ? kInvalidFunction
                                           : behavior_it->second.calls[0].callee;
  }
  // Placement eligibility: exactly one live placement per hop (a replica set
  // would need the routing policy's per-message pick — software state), a
  // WrProgramEngine on every hop's node, and consecutive hops on distinct
  // nodes (an intra-node hop is an IPC delivery with no recv CQE to trigger
  // on, and a NIC cannot SEND to itself).
  std::vector<NodeId> nodes;
  for (const FunctionId hop : hops) {
    const std::vector<NodeId>* placements = routing->PlacementsOf(hop);
    if (placements == nullptr || placements->size() != 1 ||
        !routing->NodeLive(placements->front())) {
      return 0;
    }
    nodes.push_back(placements->front());
    if (dataplane_->wr_programs(nodes.back()) == nullptr) {
      return 0;
    }
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i] == nodes[i - 1]) {
      return 0;
    }
  }
  // Lower and install, all-or-nothing: a half-offloaded chain would work (the
  // correlation contract composes), but eligibility failures here are static
  // — better to report "kept in software" than silently split.
  SimDuration total_install = 0;
  size_t installed = 0;
  for (size_t i = 0; i < hops.size(); ++i) {
    WrProgramEngine* programs = dataplane_->wr_programs(nodes[i]);
    const FunctionBehavior& behavior = spec.behaviors.at(hops[i]);
    WrProgramEngine::HopSpec hop;
    hop.chain = chain;
    hop.tenant = spec.tenant;
    hop.hop = hops[i];
    hop.compute = behavior.compute;
    if (i + 1 < hops.size()) {
      hop.next_fn = hops[i + 1];
      hop.next_node = nodes[i + 1];
      hop.forward_payload = behavior.calls[0].request_payload;
    } else {
      // The final hop answers whoever issued into the offloaded segment. A
      // chain hop as requester means the segment was entered mid-chain (a
      // software fallback upstream): answer with the payload the hop AFTER it
      // would have replied with in software. Anyone else is an external
      // client, who sees the entry hop's response in the software execution.
      for (size_t j = 0; j + 1 < hops.size(); ++j) {
        hop.response_by_src[hops[j]] = spec.behaviors.at(hops[j + 1]).response_payload;
      }
      hop.response_payload = spec.behaviors.at(spec.entry).response_payload;
    }
    SimDuration hop_install = 0;
    if (!programs->Install(hop, &hop_install)) {
      for (size_t j = 0; j < installed; ++j) {
        dataplane_->wr_programs(nodes[j])->Uninstall(chain, hops[j]);
      }
      return 0;
    }
    total_install += hop_install;
    ++installed;
  }
  if (install_latency != nullptr) {
    *install_latency = total_install;
  }
  return installed;
}

}  // namespace nadino
