#include "src/cluster/membership.h"

#include <cassert>
#include <string>

namespace nadino {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kAlive:
      return "alive";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDead:
      return "dead";
  }
  return "?";
}

Membership::Membership(Env& env, RoutingTable* routing) : env_(&env), routing_(routing) {}

void Membership::AddNode(NodeId node, NodeRole role) {
  assert(node != kInvalidNode);
  members_[node] = Member{role, NodeHealth::kAlive};
}

NodeRole Membership::RoleOf(NodeId node) const {
  const auto it = members_.find(node);
  assert(it != members_.end());
  return it->second.role;
}

NodeHealth Membership::HealthOf(NodeId node) const {
  const auto it = members_.find(node);
  return it == members_.end() ? NodeHealth::kDead : it->second.health;
}

void Membership::MarkSuspect(NodeId node) { Transition(node, NodeHealth::kSuspect); }
void Membership::MarkDead(NodeId node) { Transition(node, NodeHealth::kDead); }
void Membership::MarkAlive(NodeId node) { Transition(node, NodeHealth::kAlive); }

std::vector<NodeId> Membership::LiveWorkers() const {
  std::vector<NodeId> live;
  for (const auto& [node, member] : members_) {
    if (member.role == NodeRole::kWorker && member.health != NodeHealth::kDead) {
      live.push_back(node);
    }
  }
  return live;
}

size_t Membership::live_count() const {
  size_t n = 0;
  for (const auto& [node, member] : members_) {
    n += member.health != NodeHealth::kDead ? 1 : 0;
  }
  return n;
}

void Membership::Transition(NodeId node, NodeHealth next) {
  const auto it = members_.find(node);
  if (it == members_.end() || it->second.health == next) {
    return;
  }
  it->second.health = next;
  // One epoch bump per transition, no exceptions: liveness flips bump via
  // SetNodeLive; transitions that leave routability unchanged (alive <->
  // suspect) bump explicitly so epoch-holding readers still re-read.
  const uint64_t epoch_before = routing_->epoch();
  switch (next) {
    case NodeHealth::kDead:
      routing_->SetNodeLive(node, false);
      break;
    case NodeHealth::kAlive:
      routing_->SetNodeLive(node, true);
      break;
    case NodeHealth::kSuspect:
      break;
  }
  if (routing_->epoch() == epoch_before) {
    routing_->BumpEpoch();
  }
  if (!handles_ready_) {
    handles_ready_ = true;
    MetricsRegistry& reg = env_->metrics();
    m_transitions_ = reg.ResolveCounter("cluster_membership_transitions");
    m_epoch_ = reg.ResolveGauge("cluster_epoch");
    m_live_ = reg.ResolveGauge("cluster_nodes_live");
  }
  m_transitions_.Increment();
  m_epoch_.Set(static_cast<double>(routing_->epoch()));
  m_live_.Set(static_cast<double>(live_count()));
  std::string label = "membership_";
  label += NodeHealthName(next);
  env_->Trace(TraceCategory::kCluster, node, std::move(label), routing_->epoch(),
              live_count());
  for (const Observer& observer : observers_) {
    observer(node, next, routing_->epoch());
  }
}

}  // namespace nadino
