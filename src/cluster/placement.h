// The placement subsystem (DESIGN.md §3e): replica-aware weighted spreading,
// locality-aware chain placement, and live rebalancing — the layer that turns
// replicas from pure failover spares into load-bearing capacity once the
// cluster grows past a node pair (Palladium is the multi-node reference).
//
// Three cooperating pieces, owned by a PlacementManager the Cluster attaches
// via EnablePlacement():
//
//   * WeightedSpreader — a ReplicaSelector doing DWRR-style deficit rotation
//     over the live replicas of each function. Weights come from static
//     per-node overrides (tests), or from a weight callback fed by node
//     utilization and SLO burn (the PR 5 follow-up).
//   * ChainPlacer — assigns a chain's call graph to worker nodes, colocating
//     adjacent stages until a node's slot budget fills and scoring candidate
//     assignments by expected fabric crossings (request + response per
//     cross-node call edge).
//   * Rebalancer — an opt-in periodic controller (the HealthMonitor pattern)
//     that migrates the hottest multi-replica function off an overloaded node
//     through RoutingTable::Migrate, bumping the routing epoch per migration
//     so the fail-closed stale-epoch machinery carries over unchanged.
//
// Determinism contract: spreading and rebalancing draw only from seeded,
// salted Rng state (spreader rotors are pure functions of seed ^ function id;
// the rebalancer's tick jitter comes from a private decorrelated stream), so
// equal seeds stay byte-identical, and experiments that never enable the
// subsystem are byte-identical to builds without it.

#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/runtime/chain.h"
#include "src/runtime/routing_table.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace nadino {

class Node;

// ---------------------------------------------------------------------------
// WeightedSpreader
// ---------------------------------------------------------------------------

// DWRR-style deficit rotation over live replicas: each Pick serves one
// request from the rotor position with deficit >= 1, replenishing every
// replica by weight/max_weight when a full scan finds none. Long-run serve
// proportions converge to the configured weights (asserted by
// tests/placement_spread_test.cc across seeds).
class WeightedSpreader : public ReplicaSelector {
 public:
  // Maps a node to its current weight (> 0). Consulted at every replenish,
  // so utilization-fed weights steer traffic within a few rotations.
  using WeightFn = std::function<double(NodeId)>;

  explicit WeightedSpreader(uint64_t seed);

  // Static per-node weight override; takes precedence over the callback.
  void SetWeight(NodeId node, double weight);
  // Dynamic weight source (e.g. 1 - node utilization, sharpened by SLO burn).
  void SetWeightFn(WeightFn fn) { weight_fn_ = std::move(fn); }

  NodeId Pick(FunctionId function, const std::vector<NodeId>& live,
              NodeId src_node) override;
  NodeId Peek(FunctionId function, const std::vector<NodeId>& live,
              NodeId src_node) const override;
  void Invalidate(FunctionId function) override;

  uint64_t picks() const { return picks_; }
  double WeightOf(NodeId node) const;

 private:
  // Per-function rotation state over its current live replica set. Rebuilt
  // (surviving deficits preserved) whenever the live set changes.
  struct SpreadState {
    std::vector<NodeId> nodes;
    std::vector<double> deficit;
    size_t rotor = 0;
  };

  // Initial rotor for a fresh state: a salted SplitMix64 draw of
  // (seed, function), a pure function so Peek and Pick agree and no shared
  // stream ordering can leak between functions.
  size_t InitialRotor(FunctionId function, size_t replicas) const;
  SpreadState RebuiltState(FunctionId function, const std::vector<NodeId>& live,
                           const SpreadState* old) const;
  // Serves one pick from `state` (deficit decrement + rotor advance).
  NodeId Choose(SpreadState& state) const;

  std::map<FunctionId, SpreadState> states_;
  std::map<NodeId, double> static_weights_;
  WeightFn weight_fn_;
  uint64_t seed_;
  uint64_t picks_ = 0;
};

// ---------------------------------------------------------------------------
// ChainPlacer
// ---------------------------------------------------------------------------

// Locality-aware assignment of a chain's call graph: walk the DAG from the
// entry, keeping each callee on its caller's node until that node's slot
// budget fills, then spill to the least-loaded worker (ties to the lowest
// NodeId — deterministic by construction).
class ChainPlacer {
 public:
  // `workers` is the candidate node list (typically the live workers);
  // `capacity_per_node` bounds functions per node (<= 0 means unbounded,
  // which degenerates to everything on one node).
  static std::map<FunctionId, NodeId> PlaceChain(const ChainSpec& spec,
                                                 const std::vector<NodeId>& workers,
                                                 int capacity_per_node);

  // Expected fabric crossings of one invocation under `assignment`: 2 per
  // cross-node call edge (request + response). Lower is better; the placer's
  // greedy colocation minimizes this against the capacity constraint.
  static int ScoreAssignment(const ChainSpec& spec,
                             const std::map<FunctionId, NodeId>& assignment);
};

// ---------------------------------------------------------------------------
// Rebalancer
// ---------------------------------------------------------------------------

struct RebalancerOptions {
  SimDuration period = 50 * kMillisecond;
  // Migration trigger: hottest node's utilization above this...
  double overload_util = 0.75;
  // ...with a live replica target below this.
  double headroom_util = 0.60;
  // While any tenant burns SLO error budget, the trigger drops to this —
  // queueing is already costing a tenant its SLO, so capacity moves earlier.
  double burn_overload_util = 0.50;
  int max_migrations_per_tick = 1;
  // Per-tick launch stagger upper bound (private salted stream).
  SimDuration max_jitter = 100 * kMicrosecond;
};

class Rebalancer {
 public:
  using NodeUtilFn = std::function<double(NodeId)>;  // Utilization in [0, 1].
  using BurnFn = std::function<bool()>;              // Any tenant SLO burning?

  Rebalancer(Env& env, RoutingTable* routing, std::vector<NodeId> workers,
             NodeUtilFn node_util, BurnFn slo_burning, const RebalancerOptions& options);

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  // Schedules the first tick; idempotent.
  void Start();

  uint64_t ticks() const { return ticks_; }
  uint64_t migrations() const { return migrations_; }
  const RebalancerOptions& options() const { return options_; }

 private:
  void Tick();
  // Migrates up to max_migrations_per_tick hot functions off `hot`, given
  // this tick's utilization snapshot; returns the migrations performed.
  int MigrateFrom(NodeId hot, const std::map<NodeId, double>& utils);

  Env* env_;
  RoutingTable* routing_;
  std::vector<NodeId> workers_;
  NodeUtilFn node_util_;
  BurnFn slo_burning_;
  RebalancerOptions options_;
  Rng rng_;  // Private, decorrelated from the workload stream (seed salt).
  bool started_ = false;
  uint64_t ticks_ = 0;
  uint64_t migrations_ = 0;
  // Resolved on the first migration (lazy-creation contract: runs that never
  // migrate keep byte-identical snapshots).
  CounterHandle m_migrations_;
};

// ---------------------------------------------------------------------------
// PlacementManager
// ---------------------------------------------------------------------------

struct PlacementOptions {
  // Install the weighted spreader as the routing table's replica selector.
  bool spread = true;
  // Feed spreader weights from live node utilization (1 - util, floored),
  // sharpened while any tenant burns SLO budget. Off: uniform weights unless
  // a test sets static overrides.
  bool utilization_weights = false;
  // Start the live rebalancer.
  bool rebalance = false;
  RebalancerOptions rebalancer;
};

// Facade owning the spreader and rebalancer, wired by Cluster::
// EnablePlacement() with the cluster's seed, routing table, and per-node
// utilization sources.
class PlacementManager {
 public:
  PlacementManager(Env& env, RoutingTable* routing, const PlacementOptions& options,
                   uint64_t seed);

  PlacementManager(const PlacementManager&) = delete;
  PlacementManager& operator=(const PlacementManager&) = delete;

  ~PlacementManager();

  // Registers a worker node as a utilization source / migration target.
  void AddWorker(Node* node);

  // Installs the spreader policy and starts the rebalancer per options.
  void Start();

  WeightedSpreader& spreader() { return *spreader_; }
  Rebalancer* rebalancer() { return rebalancer_.get(); }
  uint64_t migrations() const { return rebalancer_ == nullptr ? 0 : rebalancer_->migrations(); }

  // Utilization of `node` in [0, 1] (useful-work cores / core count).
  double NodeUtilization(NodeId node) const;

 private:
  Env* env_;
  RoutingTable* routing_;
  PlacementOptions options_;
  std::map<NodeId, Node*> workers_;
  std::unique_ptr<WeightedSpreader> spreader_;
  std::unique_ptr<Rebalancer> rebalancer_;
  bool started_ = false;
};

}  // namespace nadino

#endif  // SRC_CLUSTER_PLACEMENT_H_
