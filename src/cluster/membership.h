// Cluster membership: the authoritative node roster (roles, health) behind
// the versioned RoutingTable. Mirrors how multi-node RDMA systems (ALock,
// NDN-DPDK) keep forwarding state keyed off an explicit member list instead
// of fixed peer wiring.
//
// Health transitions (alive -> suspect -> dead -> alive) come from the
// HealthMonitor's seeded heartbeats or directly from tests; every transition
// bumps the routing epoch, flips the node's routability for dead/alive, and
// notifies subscribed observers. Metrics (`cluster_*`) and trace events are
// created lazily on the first transition so steady-state experiments keep
// byte-identical snapshots (the bench-golden contract, DESIGN.md §3a/§3d).

#ifndef SRC_CLUSTER_MEMBERSHIP_H_
#define SRC_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/core/env.h"
#include "src/core/types.h"
#include "src/runtime/routing_table.h"

namespace nadino {

enum class NodeRole : uint8_t { kWorker, kIngress };
enum class NodeHealth : uint8_t { kAlive, kSuspect, kDead };

const char* NodeHealthName(NodeHealth health);

class Membership {
 public:
  // Fires after a health transition commits (epoch already bumped).
  using Observer = std::function<void(NodeId, NodeHealth, uint64_t epoch)>;

  struct Member {
    NodeRole role = NodeRole::kWorker;
    NodeHealth health = NodeHealth::kAlive;
  };

  Membership(Env& env, RoutingTable* routing);

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  void AddNode(NodeId node, NodeRole role);
  bool Has(NodeId node) const { return members_.find(node) != members_.end(); }
  size_t size() const { return members_.size(); }

  NodeRole RoleOf(NodeId node) const;
  NodeHealth HealthOf(NodeId node) const;

  // The membership epoch IS the routing epoch: one version number for
  // "who is in the cluster and where can I route".
  uint64_t epoch() const { return routing_->epoch(); }

  // Suspect keeps the node routable (it may just be slow); dead removes it
  // from routing; alive restores it. All three bump the epoch.
  void MarkSuspect(NodeId node);
  void MarkDead(NodeId node);
  void MarkAlive(NodeId node);

  std::vector<NodeId> LiveWorkers() const;
  size_t live_count() const;

  void Subscribe(Observer observer) { observers_.push_back(std::move(observer)); }

  const std::map<NodeId, Member>& members() const { return members_; }

 private:
  void Transition(NodeId node, NodeHealth next);

  Env* env_;
  RoutingTable* routing_;
  std::map<NodeId, Member> members_;
  std::vector<Observer> observers_;
  // Lazily resolved on the first transition (golden-preservation contract).
  bool handles_ready_ = false;
  CounterHandle m_transitions_;
  GaugeHandle m_epoch_;
  GaugeHandle m_live_;
};

}  // namespace nadino

#endif  // SRC_CLUSTER_MEMBERSHIP_H_
