// The first-class cluster layer: node assembly (NodeId allocation, fabric
// attachment, ingress/worker roles), the versioned routing table, the
// membership roster, and the opt-in heartbeat health monitor. Mirrors the
// paper's testbed (section 4): worker nodes with BlueField-2 DPUs, an ingress
// node with plain RNICs, all on one 200 Gbps switch — but as an N-node
// system where whole-node failure is a scenario, not a segfault.
//
// Experiments construct a Cluster and build data planes / gateways against
// its Env; chaos tests additionally SeverNode() (a node_partition FaultSpec)
// and StartHealthMonitor() to drive membership epochs and failover.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/cluster/health_monitor.h"
#include "src/cluster/membership.h"
#include "src/cluster/placement.h"
#include "src/core/calibration.h"
#include "src/core/env.h"
#include "src/rdma/rdma_engine.h"
#include "src/runtime/node.h"
#include "src/runtime/routing_table.h"
#include "src/sim/simulator.h"

namespace nadino {

// Worker NodeIds are allocated densely from 1; the ingress node sits in its
// own id range so worker indices and NodeIds stay visually distinct in
// traces and metric labels.
inline constexpr NodeId kIngressNodeId = 50;

struct ClusterConfig {
  int worker_nodes = 2;
  int host_cores_per_node = 12;
  bool workers_have_dpu = true;
  int dpu_cores = 8;
  bool with_ingress_node = true;
  int ingress_cores = 12;
  // Event-queue shards for the simulator (clamped to [1, kMaxShards]). 0 =
  // one shard per worker node, the intended mapping for big topologies; 1 =
  // the classic single heap. Any value produces byte-identical runs (the
  // (when, seq) merge in src/sim/simulator.h); shards only change wall-clock.
  uint32_t event_shards = 1;
  // Drain workers for the simulator (clamped to [1, kMaxWorkers]). 1 = the
  // serial drain, byte-identical to the pre-parallel simulator. W>1 drains
  // the shards on W threads as a conservative PDES whose lookahead is
  // CostModel::MinCrossShardDelay(); runs stay deterministic for a fixed
  // shard count regardless of W, but callbacks must honour the shard
  // confinement contract (DESIGN.md §3h) — the full data-plane model does
  // not yet, so only shard-confined workloads (e.g. RunParallelDrain) may
  // raise this.
  uint32_t event_workers = 1;
  // Seeds the cluster Env's PRNG; equal seeds reproduce runs bit-for-bit,
  // including the metrics snapshot (tests/determinism_test.cc).
  uint64_t seed = kDefaultSeed;
};

class Cluster {
 public:
  Cluster(const CostModel* cost, const ClusterConfig& config);

  // The unified context every component is constructed against. The cluster
  // owns it: one experiment, one metric namespace, one random stream.
  Env& env() { return env_; }
  MetricsRegistry& metrics() { return env_.metrics(); }

  Simulator& sim() { return sim_; }
  RdmaNetwork& network() { return network_; }
  RoutingTable& routing() { return routing_; }
  Membership& membership() { return membership_; }
  const CostModel& cost() const { return env_.cost(); }
  int worker_count() const { return static_cast<int>(workers_.size()); }
  Node* worker(int i) { return workers_.at(static_cast<size_t>(i)).get(); }
  Node* ingress() { return ingress_.get(); }

  // Adds one more worker node after construction (scale-out paths); takes
  // the next dense worker NodeId and joins membership as alive.
  Node* AddWorkerNode(const Node::Config& config);

  // Creates `tenant`'s unified pool on every worker node.
  void CreateTenantPools(TenantId tenant, size_t buffers = 8192, size_t buffer_size = 16384);

  // Opt-in seeded heartbeats (see health_monitor.h). The monitor probes from
  // the ingress node when present, else from worker 0.
  void StartHealthMonitor(const HealthMonitorOptions& options = {});
  HealthMonitor* health() { return health_.get(); }

  // Installs a node_partition FaultSpec severing `node` for [at, until)
  // (until == 0 ⇒ never heals). Returns the FaultPlane spec index.
  int SeverNode(NodeId node, SimTime at, SimTime until = 0);

  // Opt-in placement subsystem (src/cluster/placement.h): installs the
  // weighted spreader as the routing table's replica selector and, per
  // options, starts the live rebalancer over this cluster's workers.
  // Idempotent; unenabled clusters are byte-identical to builds without it.
  PlacementManager* EnablePlacement(const PlacementOptions& options = {});
  PlacementManager* placement() { return placement_.get(); }

 private:
  Simulator sim_;
  Env env_;  // After sim_: constructed against it.
  RdmaNetwork network_;
  RoutingTable routing_;
  Membership membership_;  // After routing_: bumps its epoch on transitions.
  std::vector<std::unique_ptr<Node>> workers_;
  std::unique_ptr<Node> ingress_;
  std::unique_ptr<HealthMonitor> health_;
  std::unique_ptr<PlacementManager> placement_;
  ClusterConfig config_;
};

}  // namespace nadino

#endif  // SRC_CLUSTER_CLUSTER_H_
