#include "src/cluster/health_monitor.h"

#include <memory>

namespace nadino {

HealthMonitor::HealthMonitor(Env& env, Membership* membership, Fabric* fabric,
                             NodeId monitor_node)
    : env_(&env),
      membership_(membership),
      fabric_(fabric),
      monitor_node_(monitor_node),
      // Decorrelated from both the workload stream and the FaultPlane so
      // heartbeat jitter never perturbs either (equal-seed contract).
      rng_(env.seed() ^ 0x9E3779B97F4A7C15ull) {}

void HealthMonitor::Start(const HealthMonitorOptions& options) {
  if (started_) {
    return;
  }
  started_ = true;
  options_ = options;
  MetricsRegistry& reg = env_->metrics();
  m_probes_ = reg.ResolveCounter("cluster_heartbeat_probes");
  m_misses_ = reg.ResolveCounter("cluster_heartbeat_misses");
  env_->sim().Schedule(options_.period, [this]() { Tick(); });
}

void HealthMonitor::Tick() {
  ++rounds_;
  for (const auto& [node, member] : membership_->members()) {
    if (node == monitor_node_) {
      continue;
    }
    const SimDuration jitter =
        options_.max_jitter > 0
            ? static_cast<SimDuration>(
                  rng_.UniformInt(0, static_cast<uint64_t>(options_.max_jitter)))
            : 0;
    const NodeId target = node;
    env_->sim().Schedule(jitter, [this, target]() { Probe(target); });
  }
  env_->sim().Schedule(options_.period, [this]() { Tick(); });
}

void HealthMonitor::Probe(NodeId target) {
  ++probes_sent_;
  m_probes_.Increment();
  auto acked = std::make_shared<bool>(false);
  // Request leg; on delivery the target echoes straight back (control-plane
  // work, no core time modeled). Either leg crossing a node_partition window
  // is dropped by the fabric, so `acked` stays false past the deadline.
  fabric_->Send(monitor_node_, target, options_.probe_bytes, [this, target, acked]() {
    fabric_->Send(target, monitor_node_, options_.probe_bytes, [acked]() { *acked = true; });
  });
  env_->sim().Schedule(options_.probe_timeout,
                       [this, target, acked]() { OnProbeResult(target, *acked); });
}

void HealthMonitor::OnProbeResult(NodeId target, bool acked) {
  PeerState& peer = peers_[target];
  if (acked) {
    peer.consecutive_misses = 0;
    if (membership_->HealthOf(target) != NodeHealth::kAlive) {
      membership_->MarkAlive(target);  // Healed partition: rejoin this epoch.
    }
    return;
  }
  ++probes_missed_;
  m_misses_.Increment();
  ++peer.consecutive_misses;
  env_->Trace(TraceCategory::kCluster, target, "heartbeat_miss",
              static_cast<uint64_t>(peer.consecutive_misses), rounds_);
  const NodeHealth health = membership_->HealthOf(target);
  if (peer.consecutive_misses >= options_.dead_after) {
    if (health != NodeHealth::kDead) {
      membership_->MarkDead(target);
    }
  } else if (peer.consecutive_misses >= options_.suspect_after &&
             health == NodeHealth::kAlive) {
    membership_->MarkSuspect(target);
  }
}

}  // namespace nadino
