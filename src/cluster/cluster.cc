#include "src/cluster/cluster.h"

#include <algorithm>
#include <string>

#include "src/rdma/control_plane.h"

namespace nadino {

Cluster::Cluster(const CostModel* cost, const ClusterConfig& config)
    : env_(&sim_, cost, config.seed),
      network_(env_),
      membership_(env_, &routing_),
      config_(config) {
  // Shard the event queue before any component schedules (SetShardCount is
  // safe mid-run, but pre-split keeps admission on per-node heaps from the
  // first event). 0 = one shard per worker node.
  sim_.SetShardCount(config.event_shards > 0
                         ? config.event_shards
                         : static_cast<uint32_t>(std::max(config.worker_nodes, 1)));
  // Parallel drain wiring (DESIGN.md §3h): the conservative lookahead is the
  // cost model's cross-shard delivery floor; with the default
  // event_workers=1 the drain stays serial and byte-identical.
  sim_.SetWorkerCount(config.event_workers);
  sim_.SetLookahead(cost->MinCrossShardDelay());
  // Control-plane hygiene: when membership declares a node dead, every other
  // node's ConnectionService quiesces its idle active QPs toward it (the
  // active -> shadow transition), reclaiming RNIC cache context while the
  // pools survive for post-heal reactivation. Nodes that never pooled a
  // connection have no service (connections_or_null) and are skipped.
  membership_.Subscribe([this](NodeId node, NodeHealth health, uint64_t /*epoch*/) {
    if (health != NodeHealth::kDead) {
      return;
    }
    for (auto& worker : workers_) {
      if (worker->id() == node) {
        continue;
      }
      if (ConnectionService* service = worker->connections_or_null()) {
        service->QuiescePeer(node);
      }
    }
    if (ingress_ != nullptr && ingress_->id() != node) {
      if (ConnectionService* service = ingress_->connections_or_null()) {
        service->QuiescePeer(node);
      }
    }
  });
  for (int i = 0; i < config.worker_nodes; ++i) {
    Node::Config node_config;
    node_config.host_cores = config.host_cores_per_node;
    node_config.with_dpu = config.workers_have_dpu;
    node_config.dpu_cores = config.dpu_cores;
    AddWorkerNode(node_config);
  }
  if (config.with_ingress_node) {
    Node::Config node_config;
    node_config.host_cores = config.ingress_cores;
    node_config.with_dpu = false;
    ingress_ = std::make_unique<Node>(env_, kIngressNodeId, &network_, node_config);
    membership_.AddNode(kIngressNodeId, NodeRole::kIngress);
  }
}

Node* Cluster::AddWorkerNode(const Node::Config& config) {
  const NodeId id = static_cast<NodeId>(workers_.size() + 1);
  workers_.push_back(std::make_unique<Node>(env_, id, &network_, config));
  membership_.AddNode(id, NodeRole::kWorker);
  if (placement_ != nullptr) {
    placement_->AddWorker(workers_.back().get());
  }
  return workers_.back().get();
}

void Cluster::CreateTenantPools(TenantId tenant, size_t buffers, size_t buffer_size) {
  for (auto& worker : workers_) {
    worker->tenants().CreatePool(tenant, "tenant_" + std::to_string(tenant),
                                 TenantRegistry::PoolConfig{buffers, buffer_size});
  }
}

void Cluster::StartHealthMonitor(const HealthMonitorOptions& options) {
  if (health_ == nullptr) {
    const NodeId monitor_node =
        ingress_ != nullptr ? ingress_->id() : workers_.front()->id();
    health_ = std::make_unique<HealthMonitor>(env_, &membership_, &network_.fabric(),
                                              monitor_node);
  }
  health_->Start(options);
}

PlacementManager* Cluster::EnablePlacement(const PlacementOptions& options) {
  if (placement_ == nullptr) {
    placement_ = std::make_unique<PlacementManager>(env_, &routing_, options, config_.seed);
    for (auto& worker : workers_) {
      placement_->AddWorker(worker.get());
    }
    placement_->Start();
  }
  return placement_.get();
}

int Cluster::SeverNode(NodeId node, SimTime at, SimTime until) {
  FaultSpec spec;
  spec.site = FaultSite::kNodePartition;
  spec.action = FaultAction::kDrop;
  spec.node = node;
  spec.window_start = at;
  spec.window_end = until;
  return env_.faults().Install(spec);
}

}  // namespace nadino
