#include "src/cluster/placement.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/node.h"
#include "src/sim/trace.h"

namespace nadino {

namespace {

// SplitMix64 step (same generator Rng seeds through): used for the spreader's
// salted per-function rotor so the initial rotation offset is a pure function
// of (seed, function id) — no shared stream, no call-order sensitivity.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr uint64_t kSpreaderSalt = 0xA5A5F00DD15EA5E5ull;
constexpr uint64_t kRebalancerSalt = 0x5EEDBA1ACE12B057ull;
constexpr double kMinWeight = 1e-6;

}  // namespace

// ---------------------------------------------------------------------------
// WeightedSpreader
// ---------------------------------------------------------------------------

WeightedSpreader::WeightedSpreader(uint64_t seed) : seed_(seed ^ kSpreaderSalt) {}

void WeightedSpreader::SetWeight(NodeId node, double weight) {
  static_weights_[node] = std::max(weight, kMinWeight);
}

double WeightedSpreader::WeightOf(NodeId node) const {
  const auto it = static_weights_.find(node);
  if (it != static_weights_.end()) {
    return it->second;
  }
  if (weight_fn_) {
    return std::max(weight_fn_(node), kMinWeight);
  }
  return 1.0;
}

size_t WeightedSpreader::InitialRotor(FunctionId function, size_t replicas) const {
  return static_cast<size_t>(SplitMix64(seed_ ^ (0x9E3779B97F4A7C15ull * function)) %
                             replicas);
}

WeightedSpreader::SpreadState WeightedSpreader::RebuiltState(
    FunctionId function, const std::vector<NodeId>& live, const SpreadState* old) const {
  SpreadState fresh;
  fresh.nodes = live;
  fresh.deficit.assign(live.size(), 0.0);
  fresh.rotor = InitialRotor(function, live.size());
  if (old != nullptr) {
    // Carry surviving replicas' deficits so a membership flap doesn't reset
    // the rotation debt a slow replica accumulated.
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = 0; j < old->nodes.size(); ++j) {
        if (old->nodes[j] == live[i]) {
          fresh.deficit[i] = old->deficit[j];
          break;
        }
      }
    }
    fresh.rotor = old->rotor % live.size();
  }
  return fresh;
}

NodeId WeightedSpreader::Choose(SpreadState& state) const {
  const size_t n = state.nodes.size();
  // Two passes: if no replica holds a whole quantum, replenish by normalized
  // weight (the max-weight replica gains exactly 1.0, so the second scan
  // always serves). Deficits stay < 2, bounding post-weight-change bursts.
  for (int round = 0; round < 2; ++round) {
    for (size_t k = 0; k < n; ++k) {
      const size_t i = (state.rotor + k) % n;
      if (state.deficit[i] >= 1.0) {
        state.deficit[i] -= 1.0;
        state.rotor = (i + 1) % n;
        return state.nodes[i];
      }
    }
    double max_weight = kMinWeight;
    for (const NodeId node : state.nodes) {
      max_weight = std::max(max_weight, WeightOf(node));
    }
    for (size_t i = 0; i < n; ++i) {
      state.deficit[i] += WeightOf(state.nodes[i]) / max_weight;
    }
  }
  // Numeric fallback (all weights collapsed below the floor): round-robin.
  const NodeId chosen = state.nodes[state.rotor];
  state.rotor = (state.rotor + 1) % n;
  return chosen;
}

NodeId WeightedSpreader::Pick(FunctionId function, const std::vector<NodeId>& live,
                              NodeId src_node) {
  (void)src_node;  // Locality belongs to the ChainPlacer; the spreader is pure DWRR.
  auto it = states_.find(function);
  if (it == states_.end()) {
    it = states_.emplace(function, RebuiltState(function, live, nullptr)).first;
  } else if (it->second.nodes != live) {
    it->second = RebuiltState(function, live, &it->second);
  }
  ++picks_;
  return Choose(it->second);
}

NodeId WeightedSpreader::Peek(FunctionId function, const std::vector<NodeId>& live,
                              NodeId src_node) const {
  (void)src_node;
  const auto it = states_.find(function);
  SpreadState scratch = (it != states_.end() && it->second.nodes == live)
                            ? it->second
                            : RebuiltState(function, live,
                                           it != states_.end() ? &it->second : nullptr);
  return Choose(scratch);
}

void WeightedSpreader::Invalidate(FunctionId function) { states_.erase(function); }

// ---------------------------------------------------------------------------
// ChainPlacer
// ---------------------------------------------------------------------------

namespace {

struct PlacerState {
  const ChainSpec* spec = nullptr;
  const std::vector<NodeId>* workers = nullptr;
  int capacity = 0;
  std::map<FunctionId, NodeId> assignment;
  std::map<NodeId, int> load;
};

NodeId LeastLoaded(const PlacerState& state) {
  NodeId best = kInvalidNode;
  int best_load = 0;
  for (const NodeId node : *state.workers) {
    const auto it = state.load.find(node);
    const int load = it == state.load.end() ? 0 : it->second;
    if (best == kInvalidNode || load < best_load || (load == best_load && node < best)) {
      best = node;
      best_load = load;
    }
  }
  return best;
}

void AssignFrom(PlacerState& state, FunctionId fn, NodeId parent_node) {
  if (state.assignment.count(fn) != 0) {
    return;  // Shared stage already placed by an earlier caller.
  }
  NodeId node = parent_node;
  const bool parent_full =
      node == kInvalidNode ||
      (state.capacity > 0 && state.load[node] >= state.capacity);
  if (parent_full) {
    node = LeastLoaded(state);
  }
  if (node == kInvalidNode) {
    return;
  }
  state.assignment[fn] = node;
  ++state.load[node];
  const auto it = state.spec->behaviors.find(fn);
  if (it == state.spec->behaviors.end()) {
    return;
  }
  for (const CallSpec& call : it->second.calls) {
    AssignFrom(state, call.callee, node);
  }
}

}  // namespace

std::map<FunctionId, NodeId> ChainPlacer::PlaceChain(const ChainSpec& spec,
                                                     const std::vector<NodeId>& workers,
                                                     int capacity_per_node) {
  PlacerState state;
  state.spec = &spec;
  state.workers = &workers;
  state.capacity = capacity_per_node;
  if (workers.empty()) {
    return {};
  }
  AssignFrom(state, spec.entry, kInvalidNode);
  // Behaviors not reachable from the entry (defensive: disconnected specs)
  // still get deterministic least-loaded homes.
  for (const auto& [fn, behavior] : spec.behaviors) {
    (void)behavior;
    if (state.assignment.count(fn) == 0) {
      AssignFrom(state, fn, kInvalidNode);
    }
  }
  return state.assignment;
}

int ChainPlacer::ScoreAssignment(const ChainSpec& spec,
                                 const std::map<FunctionId, NodeId>& assignment) {
  int crossings = 0;
  for (const auto& [fn, behavior] : spec.behaviors) {
    const auto caller_it = assignment.find(fn);
    if (caller_it == assignment.end()) {
      continue;
    }
    for (const CallSpec& call : behavior.calls) {
      const auto callee_it = assignment.find(call.callee);
      if (callee_it != assignment.end() && callee_it->second != caller_it->second) {
        crossings += 2;  // Request + response both cross the fabric.
      }
    }
  }
  return crossings;
}

// ---------------------------------------------------------------------------
// Rebalancer
// ---------------------------------------------------------------------------

Rebalancer::Rebalancer(Env& env, RoutingTable* routing, std::vector<NodeId> workers,
                       NodeUtilFn node_util, BurnFn slo_burning,
                       const RebalancerOptions& options)
    : env_(&env),
      routing_(routing),
      workers_(std::move(workers)),
      node_util_(std::move(node_util)),
      slo_burning_(std::move(slo_burning)),
      options_(options),
      rng_(env.seed() ^ kRebalancerSalt) {}

void Rebalancer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  const SimDuration jitter =
      options_.max_jitter > 0
          ? static_cast<SimDuration>(rng_.UniformInt(
                0, static_cast<uint64_t>(options_.max_jitter)))
          : 0;
  env_->sim().Schedule(options_.period + jitter, [this]() { Tick(); });
}

void Rebalancer::Tick() {
  ++ticks_;
  // One utilization sample per node per tick (the source resets its window
  // on read, so later reads this tick must reuse the snapshot).
  std::map<NodeId, double> utils;
  NodeId hot = kInvalidNode;
  double hot_util = 0.0;
  for (const NodeId node : workers_) {
    if (!routing_->NodeLive(node)) {
      continue;
    }
    const double util = node_util_(node);
    utils[node] = util;
    if (hot == kInvalidNode || util > hot_util) {
      hot = node;
      hot_util = util;
    }
  }
  const bool burning = slo_burning_ && slo_burning_();
  const double trigger = burning ? options_.burn_overload_util : options_.overload_util;
  if (hot != kInvalidNode && hot_util > trigger) {
    MigrateFrom(hot, utils);
  }
  const SimDuration jitter =
      options_.max_jitter > 0
          ? static_cast<SimDuration>(rng_.UniformInt(
                0, static_cast<uint64_t>(options_.max_jitter)))
          : 0;
  env_->sim().Schedule(options_.period + jitter, [this]() { Tick(); });
}

int Rebalancer::MigrateFrom(NodeId hot, const std::map<NodeId, double>& utils) {
  // Candidates: functions placed on the hot node that have a live replica
  // elsewhere (migration never instantiates new runtimes — it shifts routing
  // onto capacity that already exists). Hottest first by resolution count,
  // ties to the lower function id (deterministic).
  struct Candidate {
    FunctionId fn = kInvalidFunction;
    uint64_t resolved = 0;
  };
  std::vector<Candidate> candidates;
  for (const FunctionId fn : routing_->FunctionsOn(hot)) {
    if (routing_->LiveReplicaExcluding(fn, hot) == kInvalidNode) {
      continue;
    }
    candidates.push_back(Candidate{fn, routing_->ResolvedCount(fn, hot)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.resolved != b.resolved ? a.resolved > b.resolved
                                                     : a.fn < b.fn;
                   });
  int migrated = 0;
  for (const Candidate& candidate : candidates) {
    if (migrated >= options_.max_migrations_per_tick) {
      break;
    }
    // Target: the least-utilized live replica with headroom.
    NodeId target = kInvalidNode;
    double target_util = 0.0;
    for (const NodeId node : routing_->LivePlacementsOf(candidate.fn)) {
      if (node == hot) {
        continue;
      }
      const auto util_it = utils.find(node);
      const double util = util_it == utils.end() ? 0.0 : util_it->second;
      if (util < options_.headroom_util &&
          (target == kInvalidNode || util < target_util)) {
        target = node;
        target_util = util;
      }
    }
    if (target == kInvalidNode) {
      continue;
    }
    if (!routing_->Migrate(candidate.fn, hot, target)) {
      continue;
    }
    ++migrated;
    ++migrations_;
    if (!m_migrations_.resolved()) {
      m_migrations_ = env_->metrics().ResolveCounter("placement_migrations");
    }
    m_migrations_.Increment();
    env_->Trace(TraceCategory::kCluster, hot, "rebalance_migrate", candidate.fn, target);
  }
  return migrated;
}

// ---------------------------------------------------------------------------
// PlacementManager
// ---------------------------------------------------------------------------

PlacementManager::PlacementManager(Env& env, RoutingTable* routing,
                                   const PlacementOptions& options, uint64_t seed)
    : env_(&env), routing_(routing), options_(options) {
  spreader_ = std::make_unique<WeightedSpreader>(seed);
}

PlacementManager::~PlacementManager() {
  if (routing_ != nullptr && routing_->policy() == spreader_.get()) {
    routing_->SetPolicy(nullptr);
  }
}

void PlacementManager::AddWorker(Node* node) { workers_[node->id()] = node; }

double PlacementManager::NodeUtilization(NodeId node) const {
  const auto it = workers_.find(node);
  if (it == workers_.end()) {
    return 0.0;
  }
  const int cores = std::max(it->second->host_core_count(), 1);
  return it->second->HostUtilizationCores() / static_cast<double>(cores);
}

void PlacementManager::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (options_.utilization_weights) {
    // Utilization- and burn-fed weights: a loaded node's share shrinks
    // linearly, and while any tenant burns SLO budget the skew sharpens
    // (squared) so relief arrives faster than the linear feedback would.
    spreader_->SetWeightFn([this](NodeId node) {
      const double weight = std::max(0.05, 1.0 - NodeUtilization(node));
      return env_->slos().AnyBurning() ? weight * weight : weight;
    });
  }
  if (options_.spread) {
    routing_->SetPolicy(spreader_.get());
  }
  if (options_.rebalance) {
    std::vector<NodeId> ids;
    ids.reserve(workers_.size());
    for (const auto& [id, node] : workers_) {
      (void)node;
      ids.push_back(id);
    }
    rebalancer_ = std::make_unique<Rebalancer>(
        *env_, routing_, std::move(ids),
        [this](NodeId node) {
          const double util = NodeUtilization(node);
          const auto it = workers_.find(node);
          if (it != workers_.end()) {
            // Fresh window per observation so the signal tracks recent load,
            // not the whole run's average.
            it->second->ResetUtilizationWindows();
          }
          return util;
        },
        [this]() { return env_->slos().AnyBurning(); }, options_.rebalancer);
    rebalancer_->Start();
  }
}

}  // namespace nadino
