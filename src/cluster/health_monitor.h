// Seeded-heartbeat health monitor: a control-plane prober on one cluster node
// that round-trips a small probe over the fabric to every other member each
// period. A node inside a node_partition window drops the probe (both legs
// cross Fabric::Send, the partition chokepoint), so consecutive misses drive
// the member suspect -> dead through Membership, bumping the routing epoch;
// the first successful probe after the window heals marks it alive again —
// within one heartbeat period of the heal (the ISSUE acceptance bound).
//
// Determinism: the monitor is OPT-IN (Cluster::StartHealthMonitor) and owns a
// private Rng decorrelated from Env's workload stream, so experiments that
// never start it are byte-identical to builds without it, and equal seeds
// reproduce probe schedules bit-for-bit.

#ifndef SRC_CLUSTER_HEALTH_MONITOR_H_
#define SRC_CLUSTER_HEALTH_MONITOR_H_

#include <cstdint>
#include <map>

#include "src/cluster/membership.h"
#include "src/core/env.h"
#include "src/rdma/fabric.h"
#include "src/sim/random.h"

namespace nadino {

struct HealthMonitorOptions {
  SimDuration period = 2 * kMillisecond;         // One probe round per period.
  SimDuration probe_timeout = 1 * kMillisecond;  // Must be < period.
  uint32_t probe_bytes = 64;                     // Wire size of each leg.
  int suspect_after = 1;                         // Consecutive misses.
  int dead_after = 2;
  // Per-probe launch stagger upper bound (seeded; avoids a thundering herd
  // of same-tick probes without perturbing the workload's random stream).
  SimDuration max_jitter = 10 * kMicrosecond;
};

class HealthMonitor {
 public:
  HealthMonitor(Env& env, Membership* membership, Fabric* fabric, NodeId monitor_node);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Schedules the first probe round; idempotent.
  void Start(const HealthMonitorOptions& options);

  bool started() const { return started_; }
  const HealthMonitorOptions& options() const { return options_; }
  uint64_t rounds() const { return rounds_; }
  uint64_t probes_sent() const { return probes_sent_; }
  uint64_t probes_missed() const { return probes_missed_; }

 private:
  struct PeerState {
    int consecutive_misses = 0;
  };

  void Tick();
  void Probe(NodeId target);
  void OnProbeResult(NodeId target, bool acked);

  Env* env_;
  Membership* membership_;
  Fabric* fabric_;
  NodeId monitor_node_;
  HealthMonitorOptions options_;
  Rng rng_;
  std::map<NodeId, PeerState> peers_;
  bool started_ = false;
  uint64_t rounds_ = 0;
  uint64_t probes_sent_ = 0;
  uint64_t probes_missed_ = 0;
  // Resolved in Start(): only monitored runs carry heartbeat instruments.
  CounterHandle m_probes_;
  CounterHandle m_misses_;
};

}  // namespace nadino

#endif  // SRC_CLUSTER_HEALTH_MONITOR_H_
