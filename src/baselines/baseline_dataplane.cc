#include "src/baselines/baseline_dataplane.h"

#include <cassert>
#include <cstring>

#include "src/runtime/message_header.h"

namespace nadino {

namespace {
constexpr size_t kFuyaoRdmaSlots = 4096;
constexpr size_t kFuyaoSlotSize = 16 * 1024;
// FUYAO's dedicated RDMA pools get their own id space per node.
constexpr TenantId kFuyaoRdmaTenantBase = 0xFD00;
}  // namespace

BaselineDataPlane::BaselineDataPlane(Env& env, RoutingTable* routing, BaselineSystem system,
                                     TenantId tenant)
    : DataPlane(env),
      routing_(routing),
      system_(system),
      tenant_(tenant),
      skmsg_(env),
      relay_stack_(TcpStackKind::kKernel, &env.cost()),
      junction_stack_(TcpStackKind::kFstack, &env.cost()) {}

std::string BaselineDataPlane::name() const {
  switch (system_) {
    case BaselineSystem::kSpright:
      return "SPRIGHT";
    case BaselineSystem::kNightcore:
      return "NightCore";
    case BaselineSystem::kFuyao:
      return "FUYAO";
    case BaselineSystem::kJunction:
      return "Junction";
  }
  return "unknown";
}

BaselineDataPlane::NodeState* BaselineDataPlane::StateOf(NodeId node) {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

void BaselineDataPlane::AddWorkerNode(Node* node) {
  NodeState state;
  state.node = node;
  if (system_ != BaselineSystem::kJunction) {
    state.engine_core = node->AllocateCore();
  } else {
    // Junction dedicates one full core per node solely to scheduling; it is
    // pinned at 100% without contributing to packet processing (section 4.3).
    state.engine_core = node->AllocateCore();
    state.engine_core->set_pinned(true);
  }
  if (system_ == BaselineSystem::kFuyao) {
    // The dedicated, remote-writable RDMA pool (separate from the tenant's
    // shared-memory pool — the source of FUYAO's receiver-side copies).
    state.rdma_pool =
        node->tenants().CreatePool(kFuyaoRdmaTenantBase + node->id(),
                                   "fuyao_rdma_" + std::to_string(node->id()),
                                   TenantRegistry::PoolConfig{kFuyaoRdmaSlots, kFuyaoSlotSize});
    node->rnic().mr_table().Register(state.rdma_pool, kMrRemoteWrite);
    state.connections = &node->connections();
    // The receiver-side poller busy-spins on its core.
    state.engine_core->set_pinned(true);
  }
  nodes_.emplace(node->id(), std::move(state));
}

void BaselineDataPlane::Start() {
  if (system_ != BaselineSystem::kFuyao) {
    return;
  }
  for (auto& [src_id, src_state] : nodes_) {
    for (auto& [dst_id, dst_state] : nodes_) {
      if (src_id != dst_id) {
        src_state.connections->Prewarm(&dst_state.node->rnic(), tenant_, 2);
      }
    }
  }
  for (auto& [node_id, state] : nodes_) {
    NodeState* state_ptr = &state;
    state.node->rnic().SetWriteArrivalHook(
        state.rdma_pool->id(),
        [this, state_ptr](Buffer* buffer, uint32_t /*index*/) {
          FuyaoPollerDiscovery(state_ptr, buffer);
        });
    state.node->rnic().cq().SetHandler([this, owner_node = node_id](const Completion& cqe) {
      if (cqe.opcode != RdmaOpcode::kWrite) {
        return;
      }
      const auto it = in_flight_writes_.find(cqe.wr_id);
      if (it != in_flight_writes_.end()) {
        // The RNIC finished reading the source buffer: recycle it.
        it->second.second->Put(it->second.first, OwnerId::Rnic(owner_node));
        in_flight_writes_.erase(it);
      }
    });
  }
}

void BaselineDataPlane::RegisterFunction(FunctionRuntime* function) {
  functions_[function->id()] = function;
  routing_->Place(function->id(), function->node()->id());
}

bool BaselineDataPlane::Send(FunctionRuntime* src, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    m_drops_.Increment();
    return false;
  }
  m_sends_.Increment();
  // Committing resolution: baselines have no later TX re-resolve stage, so
  // the policy pick (and per-replica served accounting) lands here. Replies
  // are pinned to the first-live placement — they target the caller, not
  // fresh capacity — and never advance the policy rotor.
  const NodeId dst_node = header->is_response()
                              ? routing_->NodeOf(header->dst)
                              : routing_->ResolveFor(header->dst, src->node()->id());
  if (dst_node == kInvalidNode) {
    m_drops_.Increment();
    return false;
  }
  if (dst_node == src->node()->id()) {
    const auto it = functions_.find(header->dst);
    if (it == functions_.end()) {
      m_drops_.Increment();
      return false;
    }
    return SendIntraNode(src, it->second, buffer);
  }
  switch (system_) {
    case BaselineSystem::kSpright:
      return SendInterTcp(src, buffer, header->dst, dst_node);
    case BaselineSystem::kFuyao:
      return SendInterFuyao(src, buffer, header->dst, dst_node);
    case BaselineSystem::kJunction:
      return SendInterJunction(src, buffer, header->dst, dst_node);
    case BaselineSystem::kNightcore:
      // NightCore has no inter-node data plane (section 4.3: all functions
      // are placed on a single node).
      m_drops_.Increment();
      return false;
  }
  return false;
}

bool BaselineDataPlane::SendIntraNode(FunctionRuntime* src, FunctionRuntime* dst,
                                      Buffer* buffer) {
  m_intra_node_.Increment();
  BufferPool* pool = src->pool();
  if (system_ == BaselineSystem::kJunction) {
    // Junction: loopback through the per-function userspace TCP stack — a
    // serialize/deserialize copy even on-node.
    const uint64_t bytes = buffer->length;
    std::vector<std::byte> wire(buffer->payload().begin(), buffer->payload().end());
    m_payload_copies_.Increment();
    src->core()->Submit(junction_stack_.TxCost(bytes), [this, src, dst, pool, buffer,
                                                        wire = std::move(wire), bytes]() {
      pool->Put(buffer, src->owner_id());
      dst->core()->Submit(junction_stack_.RxCost(bytes) + env().cost().junction_rx_overhead,
                          [this, dst, pool, wire]() {
        Buffer* in = pool->Get(dst->owner_id());
        if (in == nullptr) {
          m_drops_.Increment();
          return;
        }
        std::memcpy(in->data.data(), wire.data(), wire.size());
        in->length = static_cast<uint32_t>(wire.size());
        m_payload_copies_.Increment();
        dst->Deliver(in);
      });
    });
    return true;
  }
  if (!pool->Transfer(buffer, src->owner_id(), dst->owner_id())) {
    m_drops_.Increment();
    return false;
  }
  const BufferDescriptor desc = pool->MakeDescriptor(*buffer, dst->id());
  if (system_ == BaselineSystem::kNightcore) {
    // NightCore's message bus: the engine dispatches every exchange.
    NodeState* state = StateOf(src->node()->id());
    skmsg_.Send(src->core(), state->engine_core, desc,
                [this, state, dst, pool](const BufferDescriptor& d) {
                  state->engine_core->Submit(
                      env().cost().dne_loop_iteration + env().cost().dne_tx_stage, [=, this]() {
                        skmsg_.Send(state->engine_core, dst->core(), d,
                                    [dst, pool](const BufferDescriptor& dd) {
                                      Buffer* b = pool->Resolve(dd);
                                      if (b != nullptr) {
                                        dst->Deliver(b);
                                      }
                                    });
                      });
                },
                /*engine_endpoint=*/true);
    return true;
  }
  // SPRIGHT / FUYAO: direct SK_MSG between sidecar-less functions.
  skmsg_.Send(src->core(), dst->core(), desc, [dst, pool](const BufferDescriptor& d) {
    Buffer* b = pool->Resolve(d);
    if (b != nullptr) {
      dst->Deliver(b);
    }
  });
  return true;
}

bool BaselineDataPlane::SendInterTcp(FunctionRuntime* src, Buffer* buffer, FunctionId dst_fn,
                                     NodeId dst_node) {
  m_inter_node_.Increment();
  NodeState* src_state = StateOf(src->node()->id());
  NodeState* dst_state = StateOf(dst_node);
  if (src_state == nullptr || dst_state == nullptr) {
    m_drops_.Increment();
    return false;
  }
  BufferPool* src_pool = src->pool();
  if (!src_pool->Transfer(buffer, src->owner_id(), engine_owner(src->node()->id()))) {
    m_drops_.Increment();
    return false;
  }
  const BufferDescriptor desc = src_pool->MakeDescriptor(*buffer, dst_fn);
  skmsg_.Send(
      src->core(), src_state->engine_core, desc,
      [this, src_state, dst_state, src_pool, dst_fn](const BufferDescriptor& d) {
        Buffer* out = src_pool->Resolve(d);
        if (out == nullptr) {
          m_drops_.Increment();
          return;
        }
        const uint64_t bytes = out->length;
        // Socket copy #1 (user -> kernel) happens inside the TX cost.
        std::vector<std::byte> wire(out->payload().begin(), out->payload().end());
        m_payload_copies_.Increment();
        src_state->engine_core->Submit(
            relay_stack_.TxCost(bytes) + relay_stack_.IrqCost(),
            [this, src_state, dst_state, src_pool, out, dst_fn, bytes,
             wire = std::move(wire)]() {
              src_pool->Put(out, engine_owner(src_state->node->id()));
              src_state->node->rnic().network()->fabric().Send(
                  src_state->node->id(), dst_state->node->id(), bytes + kWireHeaderBytes,
                  [this, dst_state, dst_fn, bytes, wire]() {
                    dst_state->engine_core->Submit(
                        relay_stack_.RxCost(bytes) + relay_stack_.IrqCost(),
                        [this, dst_state, dst_fn, wire]() {
                          BufferPool* dst_pool =
                              dst_state->node->tenants().PoolOfTenant(tenant_);
                          Buffer* in =
                              dst_pool->Get(engine_owner(dst_state->node->id()));
                          if (in == nullptr) {
                            m_drops_.Increment();
                            return;
                          }
                          // Socket copy #2 (kernel -> user).
                          std::memcpy(in->data.data(), wire.data(), wire.size());
                          in->length = static_cast<uint32_t>(wire.size());
                          m_payload_copies_.Increment();
                          DeliverAtNode(dst_state, in, dst_fn);
                        });
                  });
            });
      },
      /*engine_endpoint=*/true);
  return true;
}

bool BaselineDataPlane::SendInterFuyao(FunctionRuntime* src, Buffer* buffer, FunctionId dst_fn,
                                       NodeId dst_node) {
  m_inter_node_.Increment();
  NodeState* src_state = StateOf(src->node()->id());
  NodeState* dst_state = StateOf(dst_node);
  if (src_state == nullptr || dst_state == nullptr) {
    m_drops_.Increment();
    return false;
  }
  BufferPool* src_pool = src->pool();
  if (!src_pool->Transfer(buffer, src->owner_id(), engine_owner(src->node()->id()))) {
    m_drops_.Increment();
    return false;
  }
  const BufferDescriptor desc = src_pool->MakeDescriptor(*buffer, dst_fn);
  skmsg_.Send(
      src->core(), src_state->engine_core, desc,
      [this, src_state, dst_state, src_pool](const BufferDescriptor& d) {
        Buffer* out = src_pool->Resolve(d);
        if (out == nullptr) {
          m_drops_.Increment();
          return;
        }
        src_state->engine_core->Submit(env().cost().fuyao_relay_tx, [this, src_state, dst_state,
                                                               src_pool, out]() {
          const ConnectionService::Acquired acquired =
              src_state->connections->Acquire(dst_state->node->id(), tenant_);
          if (acquired.qp == 0) {
            m_drops_.Increment();
            src_pool->Put(out, engine_owner(src_state->node->id()));
            return;
          }
          const uint32_t slot =
              dst_state->next_slot++ % static_cast<uint32_t>(kFuyaoRdmaSlots);
          src_pool->Transfer(out, engine_owner(src_state->node->id()),
                             OwnerId::Rnic(src_state->node->id()));
          const uint64_t wr_id = next_wr_id_++;
          in_flight_writes_[wr_id] = {out, src_pool};
          src_state->node->rnic().PostWrite(acquired.qp, *out, dst_state->rdma_pool->id(),
                                            slot, wr_id);
        });
      },
      /*engine_endpoint=*/true);
  return true;
}

void BaselineDataPlane::FuyaoPollerDiscovery(NodeState* state, Buffer* rdma_buffer) {
  // One-sided writes are invisible to the receiver CPU: the poller discovers
  // the payload on a later poll-loop pass (mean half-interval), then copies it
  // out of the dedicated RDMA pool into the tenant's shared-memory pool.
  env().sim().Schedule(env().cost().owrc_poll_interval / 2, [this, state, rdma_buffer]() {
    state->engine_core->Submit(env().cost().owrc_poll_iteration + env().cost().fuyao_rx_handling,
                               [this, state, rdma_buffer]() {
      BufferPool* tenant_pool = state->node->tenants().PoolOfTenant(tenant_);
      Buffer* in = tenant_pool->Get(engine_owner(state->node->id()));
      if (in == nullptr) {
        m_drops_.Increment();
        rdma_buffer->length = 0;
        return;
      }
      const SimDuration copy_cost = copier_.Copy(*rdma_buffer, in, CopyLocality::kCacheCold);
      m_payload_copies_.Increment();
      rdma_buffer->length = 0;  // Release the RDMA slot.
      state->engine_core->Submit(copy_cost, [this, state, in]() {
        const std::optional<MessageHeader> header = ReadMessage(*in);
        if (!header.has_value()) {
          m_drops_.Increment();
          state->node->tenants().PoolOfTenant(tenant_)->Put(
              in, engine_owner(state->node->id()));
          return;
        }
        DeliverAtNode(state, in, header->dst);
      });
    });
  });
}

bool BaselineDataPlane::SendInterJunction(FunctionRuntime* src, Buffer* buffer,
                                          FunctionId dst_fn, NodeId dst_node) {
  m_inter_node_.Increment();
  NodeState* dst_state = StateOf(dst_node);
  const auto dst_it = functions_.find(dst_fn);
  if (dst_state == nullptr || dst_it == functions_.end()) {
    m_drops_.Increment();
    return false;
  }
  FunctionRuntime* dst = dst_it->second;
  BufferPool* src_pool = src->pool();
  const uint64_t bytes = buffer->length;
  std::vector<std::byte> wire(buffer->payload().begin(), buffer->payload().end());
  m_payload_copies_.Increment();
  const NodeId src_node = src->node()->id();
  src->core()->Submit(junction_stack_.TxCost(bytes), [this, src, src_pool, buffer, dst_state,
                                                      dst, bytes, src_node,
                                                      wire = std::move(wire)]() {
    src_pool->Put(buffer, src->owner_id());
    dst_state->node->rnic().network()->fabric().Send(
        src_node, dst_state->node->id(), bytes + kWireHeaderBytes,
        [this, dst_state, dst, bytes, wire]() {
          dst->core()->Submit(junction_stack_.RxCost(bytes) + env().cost().junction_rx_overhead,
                              [this, dst_state, dst, wire]() {
            BufferPool* dst_pool = dst_state->node->tenants().PoolOfTenant(tenant_);
            Buffer* in = dst_pool->Get(dst->owner_id());
            if (in == nullptr) {
              m_drops_.Increment();
              return;
            }
            std::memcpy(in->data.data(), wire.data(), wire.size());
            in->length = static_cast<uint32_t>(wire.size());
            m_payload_copies_.Increment();
            dst->Deliver(in);
          });
        });
  });
  return true;
}

void BaselineDataPlane::DeliverAtNode(NodeState* state, Buffer* buffer, FunctionId dst_fn) {
  const auto it = functions_.find(dst_fn);
  BufferPool* pool = state->node->tenants().PoolOfTenant(tenant_);
  if (it == functions_.end()) {
    m_drops_.Increment();
    pool->Put(buffer, engine_owner(state->node->id()));
    return;
  }
  FunctionRuntime* dst = it->second;
  if (!pool->Transfer(buffer, engine_owner(state->node->id()), dst->owner_id())) {
    m_drops_.Increment();
    return;
  }
  const BufferDescriptor desc = pool->MakeDescriptor(*buffer, dst_fn);
  skmsg_.Send(state->engine_core, dst->core(), desc,
              [dst, pool](const BufferDescriptor& d) {
                Buffer* b = pool->Resolve(d);
                if (b != nullptr) {
                  dst->Deliver(b);
                }
              });
}

double BaselineDataPlane::EngineUtilizationCores() const {
  double total = 0.0;
  for (const auto& [id, state] : nodes_) {
    total += state.engine_core->WindowUtilization();
  }
  return total;
}

}  // namespace nadino
