// Table 1: qualitative capability comparison of high-performance serverless
// data planes. Encoded as data so the table bench prints it and tests can
// assert the shape the paper claims.

#ifndef SRC_BASELINES_CAPABILITIES_H_
#define SRC_BASELINES_CAPABILITIES_H_

#include <string>
#include <vector>

namespace nadino {

struct SystemCapabilities {
  std::string system;
  bool multi_tenancy = false;         // RDMA-fabric tenant isolation.
  bool distributed_zero_copy = false; // Zero-copy across nodes.
  bool dpu_offloading = false;
  bool eliminates_proto_processing = false;  // No TCP/IP inside the cluster.
};

// Rows of Table 1, NADINO last.
std::vector<SystemCapabilities> CapabilityTable();

}  // namespace nadino

#endif  // SRC_BASELINES_CAPABILITIES_H_
