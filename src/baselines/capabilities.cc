#include "src/baselines/capabilities.h"

namespace nadino {

std::vector<SystemCapabilities> CapabilityTable() {
  return {
      {"NightCore", false, false, false, false},
      {"SPRIGHT", false, false, false, false},
      {"FUYAO", false, false, true, false},
      {"RMMAP", false, true, false, false},
      {"NADINO", true, true, true, true},
  };
}

}  // namespace nadino
