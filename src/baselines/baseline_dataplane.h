// Baseline serverless data planes (paper section 4.3), assembled from the
// same substrates as NADINO so wins and losses come from architecture, not
// implementation fiat:
//
//   * SPRIGHT [78]  — intra-node: zero-copy SK_MSG shared memory; inter-node:
//     a CPU network engine relaying payloads over the *kernel* TCP stack
//     (socket copies on both sides).
//   * NightCore [42] — single-node only: all functions co-located; its
//     message bus (a CPU engine) mediates every shared-memory exchange.
//   * FUYAO [64]    — intra-node SK_MSG; inter-node one-sided RDMA writes
//     into a *dedicated RDMA pool* at the receiver, discovered by a
//     busy-polling CPU core and copied into the tenant's shared-memory pool
//     (the receiver-side copy + separate pools of Fig. 3 (2)).
//   * Junction [36] — per-function kernel-bypass userspace TCP for all
//     communication (no engine), plus one dedicated scheduler core per node.

#ifndef SRC_BASELINES_BASELINE_DATAPLANE_H_
#define SRC_BASELINES_BASELINE_DATAPLANE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/calibration.h"
#include "src/mem/copy_engine.h"
#include "src/rdma/control_plane.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/routing_table.h"
#include "src/runtime/skmsg.h"
#include "src/transport/tcp_model.h"

namespace nadino {

enum class BaselineSystem : uint8_t {
  kSpright,
  kNightcore,
  kFuyao,
  kJunction,
};

class BaselineDataPlane : public DataPlane {
 public:
  BaselineDataPlane(Env& env, RoutingTable* routing, BaselineSystem system, TenantId tenant);

  // Adds a worker node: allocates the relay-engine core (SPRIGHT/NightCore/
  // FUYAO), the FUYAO RDMA pool + poller, or the Junction scheduler core.
  void AddWorkerNode(Node* node);

  // Pre-establishes FUYAO's RC connections between all node pairs. No-op for
  // the TCP systems.
  void Start();

  void RegisterFunction(FunctionRuntime* function) override;
  bool Send(FunctionRuntime* src, Buffer* buffer) override;
  std::string name() const override;
  RoutingTable* routing() override { return routing_; }

  BaselineSystem system() const { return system_; }
  uint64_t fuyao_copies() const { return copier_.copies(); }

  // Engine/scheduler core utilization across nodes, in cores (Fig. 16 (4-6)).
  double EngineUtilizationCores() const;

 private:
  struct NodeState {
    Node* node = nullptr;
    FifoResource* engine_core = nullptr;     // Relay / poller / scheduler.
    BufferPool* rdma_pool = nullptr;         // FUYAO only.
    ConnectionService* connections = nullptr;  // FUYAO only (node-owned).
    uint32_t next_slot = 0;                  // FUYAO remote-slot cursor.
  };

  NodeState* StateOf(NodeId node);

  bool SendIntraNode(FunctionRuntime* src, FunctionRuntime* dst, Buffer* buffer);
  bool SendInterTcp(FunctionRuntime* src, Buffer* buffer, FunctionId dst_fn, NodeId dst_node);
  bool SendInterFuyao(FunctionRuntime* src, Buffer* buffer, FunctionId dst_fn, NodeId dst_node);
  bool SendInterJunction(FunctionRuntime* src, Buffer* buffer, FunctionId dst_fn,
                         NodeId dst_node);

  // Receiver-side delivery once the payload bytes exist in a `dst`-node
  // tenant-pool buffer owned by the data plane.
  void DeliverAtNode(NodeState* state, Buffer* buffer, FunctionId dst_fn);

  void FuyaoPollerDiscovery(NodeState* state, Buffer* rdma_buffer);

  OwnerId engine_owner(NodeId node) const { return OwnerId::Engine(3000 + node); }

  RoutingTable* routing_;
  BaselineSystem system_;
  TenantId tenant_;
  SkMsgChannel skmsg_;
  CopyEngine copier_;
  TcpStackModel relay_stack_;
  TcpStackModel junction_stack_;
  std::map<NodeId, NodeState> nodes_;
  std::map<FunctionId, FunctionRuntime*> functions_;
  uint64_t next_wr_id_ = 1;
  std::map<uint64_t, std::pair<Buffer*, BufferPool*>> in_flight_writes_;
};

}  // namespace nadino

#endif  // SRC_BASELINES_BASELINE_DATAPLANE_H_
