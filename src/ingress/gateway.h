// Cluster-wide ingress gateway (paper section 3.6).
//
// Master-worker architecture: worker processes each own a pinned core running
// a busy-poll event loop that performs all data-plane work; the master does
// control-plane work (configuration, horizontal scaling). Three modes mirror
// the section 4.1.3 comparison:
//   * kNadino   — F-stack terminates client HTTP/TCP at the edge; the payload
//                 crosses the cluster over two-sided RDMA (early transport
//                 conversion, Fig. 4 (2));
//   * kFIngress — NGINX+F-stack HTTP proxy; TCP is *also* terminated at the
//                 worker node (deferred conversion, Fig. 4 (1));
//   * kKIngress — same shape on the interrupt-driven kernel stack.
//
// Client traffic spreads over workers via RSS; the hysteresis autoscaler adds
// a worker above 60% average useful utilization and removes one below 30%,
// with the brief restart interruption the paper observes in Fig. 14.

#ifndef SRC_INGRESS_GATEWAY_H_
#define SRC_INGRESS_GATEWAY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/dne/network_engine.h"
#include "src/dne/rbr_table.h"
#include "src/mem/buffer_pool.h"
#include "src/rdma/control_plane.h"
#include "src/runtime/chain.h"
#include "src/runtime/dataplane.h"
#include "src/runtime/node.h"
#include "src/runtime/routing_table.h"
#include "src/transport/http.h"
#include "src/sim/trace.h"
#include "src/transport/tcp_model.h"

namespace nadino {

enum class IngressMode : uint8_t { kNadino, kFIngress, kKIngress };

class IngressGateway {
 public:
  struct Options {
    IngressMode mode = IngressMode::kNadino;
    TenantId tenant = 0;
    int initial_workers = 1;
    int max_workers = 8;
    bool autoscale = false;
    int prewarm_connections = 4;
    uint32_t engine_id = 2000;  // OwnerId::Engine id for the gateway.
    // Which stack terminates TCP at the *worker node* in deferred-conversion
    // modes (the paper uses F-stack there for its Fig. 13 baselines).
    TcpStackKind worker_stack = TcpStackKind::kFstack;
  };

  struct Stats {
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t http_errors = 0;
    uint64_t scale_ups = 0;
    uint64_t scale_downs = 0;
  };

  IngressGateway(Env& env, Node* ingress_node, RoutingTable* routing, DataPlane* dataplane,
                 ChainExecutor* executor, const Options& options);

  IngressGateway(const IngressGateway&) = delete;
  IngressGateway& operator=(const IngressGateway&) = delete;

  // Maps an HTTP target path to a chain entry. Validates the route by
  // serializing and re-parsing a real HTTP request through the codec once.
  void AddRoute(const std::string& path, ChainId chain, FunctionId entry_function);

  // kNadino mode: wires RDMA to each worker-node engine (recv buffers on the
  // ingress pool, RC connections both directions).
  void ConnectWorkerEngines(const std::vector<NetworkEngine*>& engines);

  // Deferred-conversion modes: creates a TCP-terminating portal function on
  // each worker node (registered with the data plane like a normal function).
  void ConnectWorkerPortals(const std::vector<Node*>& worker_nodes);

  // Entry point for the load generator, called after client-side wire delay.
  // `done` fires when the HTTP response has reached the client.
  void SubmitRequest(uint32_t client_id, const std::string& path, uint32_t payload_bytes,
                     std::function<void()> done);

  int active_workers() const;
  // Sum of busy-poll-aware worker utilizations (cores); Fig. 14's CPU series.
  double WorkerUtilizationCores() const;
  // Worker-node portal cores (deferred-conversion modes), in cores.
  double PortalUtilizationCores() const;
  // Average *useful* utilization — what the autoscaler sees.
  double AverageUsefulUtilization() const;
  void ResetUtilizationWindows();

  // Thin shim over the MetricsRegistry counters; see metrics.h.
  Stats stats() const;
  OwnerId owner_id() const { return OwnerId::Engine(options_.engine_id); }

  // Optional structured tracing of the request/response lifecycle.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Worker {
    int index = 0;
    FifoResource* core = nullptr;
    FunctionId self_fn = kInvalidFunction;
    // The ingress node's shared control plane; each worker keys its pools
    // with its own stream (index), preserving the per-worker pools of the
    // pre-ConnectionService gateway.
    ConnectionService* connections = nullptr;
    bool active = false;
  };

  struct Route {
    ChainId chain = 0;
    FunctionId entry = kInvalidFunction;
  };

  struct Pending {
    std::function<void()> done;
    int worker = 0;
    uint32_t response_bytes = 0;
  };

  Worker* PickWorker(uint32_t client_id);
  void StartWorker(int index);

  // NADINO mode data path.
  void NadinoHandleRequest(Worker* worker, const Route& route, uint32_t payload_bytes,
                           uint64_t request_id);
  // The post-Acquire tail of NadinoHandleRequest (control cost, RNIC post);
  // split out so a lazy establishment can resume the request when its
  // handshake lands.
  void PostNadinoSend(Worker* worker, Buffer* buffer, const Route& route,
                      uint64_t request_id, NodeId dst_node,
                      const ConnectionService::Acquired& acquired);
  void NadinoHandleResponse(Worker* worker, Buffer* buffer);
  void OnRnicCompletion(const Completion& cqe);
  void PostIngressRecvBuffers(uint64_t count);

  // Deferred-conversion data path.
  void ProxyHandleRequest(Worker* worker, const Route& route, uint32_t payload_bytes,
                          uint64_t request_id);
  void PortalDeliver(FunctionRuntime* portal, Buffer* buffer);

  void FinishResponse(Worker* worker, uint64_t request_id, uint32_t body_bytes);

  void AutoscaleTick();

  Simulator& sim() const { return env_->sim(); }

  Env* env_;
  Node* node_;
  RoutingTable* routing_;
  DataPlane* dataplane_;
  ChainExecutor* executor_;
  Options options_;
  TcpStackModel ingress_stack_;
  TcpStackModel worker_stack_;
  BufferPool* pool_ = nullptr;  // Ingress-node pool for the tenant (kNadino).
  FifoResource* master_core_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<std::string, Route> routes_;
  std::map<uint64_t, Pending> pending_;
  std::map<FunctionId, int> fn_to_worker_;
  std::vector<std::unique_ptr<FunctionRuntime>> portals_;
  std::map<FunctionId, NodeId> portal_nodes_;
  // One RDMA send toward a worker engine, held until its completion. The
  // route/request context rides along so an error completion (e.g. ACK
  // timeout into a node_partition window) can re-place the request on a
  // surviving worker node instead of hanging the client.
  struct InFlightSend {
    Buffer* buffer = nullptr;
    uint64_t request_id = 0;
    ChainId chain = 0;
    FunctionId entry = kInvalidFunction;
    // Node the send was resolved to; failover excludes it so a retry never
    // re-targets the replica that just failed.
    NodeId dst_node = kInvalidNode;
    int worker = 0;
    uint32_t attempt = 1;
  };

  // Error-completion path: retry toward the current routing resolution (one
  // failover attempt) or fail the pending request closed.
  void HandleSendFailure(InFlightSend send);

  RbrTable rbr_;
  std::map<uint64_t, InFlightSend> in_flight_sends_;
  SimTime paused_until_ = 0;
  Tracer* tracer_ = nullptr;
  uint64_t next_wr_id_ = 1;
  uint64_t next_request_id_ = 1;
  // Registry-backed counters (labels: {engine, node}) covering the request
  // lifecycle, resolved once at construction into raw-word handles
  // (metrics.h). See Stats.
  CounterHandle m_requests_;
  CounterHandle m_responses_;
  CounterHandle m_http_errors_;
  CounterHandle m_scale_ups_;
  CounterHandle m_scale_downs_;
  // Lazily resolved on first use (golden-preservation: runs that never burn
  // SLO budget or fail over keep byte-identical snapshots).
  CounterHandle m_burn_scale_ups_;
  CounterHandle m_failover_attempts_;
};

}  // namespace nadino

#endif  // SRC_INGRESS_GATEWAY_H_
