#include "src/ingress/gateway.h"

#include <cassert>

#include "src/runtime/message_header.h"

namespace nadino {

namespace {

// HTTP framing overhead added to payloads on the client<->ingress leg.
constexpr uint32_t kHttpRequestOverhead = 140;
constexpr uint32_t kHttpResponseOverhead = 110;

// Pseudo-function id spaces for gateway workers and worker-node portals.
// Application functions use small ids; these stay clear of them.
constexpr FunctionId kWorkerFnBase = 0xF0000;
constexpr FunctionId kPortalFnBase = 0xF8000;

}  // namespace

IngressGateway::IngressGateway(Env& env, Node* ingress_node, RoutingTable* routing,
                               DataPlane* dataplane, ChainExecutor* executor,
                               const Options& options)
    : env_(&env),
      node_(ingress_node),
      routing_(routing),
      dataplane_(dataplane),
      executor_(executor),
      options_(options),
      ingress_stack_(options.mode == IngressMode::kKIngress ? TcpStackKind::kKernel
                                                            : TcpStackKind::kFstack,
                     &env.cost()),
      worker_stack_(options.worker_stack, &env.cost()) {
  MetricLabels labels = MetricLabels::Node(node_->id());
  labels.engine = static_cast<int64_t>(options_.engine_id);
  MetricsRegistry& reg = env_->metrics();
  m_requests_ = reg.ResolveCounter("gateway_requests", labels);
  m_responses_ = reg.ResolveCounter("gateway_responses", labels);
  m_http_errors_ = reg.ResolveCounter("gateway_http_errors", labels);
  m_scale_ups_ = reg.ResolveCounter("gateway_scale_ups", labels);
  m_scale_downs_ = reg.ResolveCounter("gateway_scale_downs", labels);
  master_core_ = node_->AllocateCore();
  for (int i = 0; i < options_.initial_workers; ++i) {
    StartWorker(i);
  }
  if (options_.autoscale) {
    sim().Schedule(env_->cost().ingress_autoscale_period, [this]() { AutoscaleTick(); });
  }
}

IngressGateway::Stats IngressGateway::stats() const {
  Stats s;
  s.requests = m_requests_.value();
  s.responses = m_responses_.value();
  s.http_errors = m_http_errors_.value();
  s.scale_ups = m_scale_ups_.value();
  s.scale_downs = m_scale_downs_.value();
  return s;
}

void IngressGateway::StartWorker(int index) {
  if (index < static_cast<int>(workers_.size())) {
    workers_[static_cast<size_t>(index)]->active = true;
    return;
  }
  auto worker = std::make_unique<Worker>();
  worker->index = index;
  worker->core = node_->AllocateCore();
  // Busy-poll event loop (F-stack / RDMA polling); the kernel-stack ingress
  // is interrupt-driven and does not pin.
  worker->core->set_pinned(ingress_stack_.busy_polling());
  worker->self_fn = kWorkerFnBase + static_cast<FunctionId>(index);
  worker->active = true;
  routing_->Place(worker->self_fn, node_->id());
  fn_to_worker_[worker->self_fn] = index;
  worker->connections = &node_->connections();
  workers_.push_back(std::move(worker));
}

void IngressGateway::AddRoute(const std::string& path, ChainId chain,
                              FunctionId entry_function) {
  // Validate the route with the real codec: build, serialize, and re-parse a
  // representative request once, so malformed route configs fail fast.
  HttpRequest probe;
  probe.method = "POST";
  probe.target = path;
  probe.headers.push_back({"Host", "nadino.cluster"});
  probe.body = std::string(64, 'x');
  const std::string wire = HttpCodec::Serialize(probe);
  HttpRequest parsed;
  size_t consumed = 0;
  if (HttpCodec::ParseRequest(wire, &parsed, &consumed) != HttpParseResult::kOk ||
      parsed.target != path) {
    m_http_errors_.Increment();
    return;
  }
  routes_[path] = Route{chain, entry_function};
}

void IngressGateway::ConnectWorkerEngines(const std::vector<NetworkEngine*>& engines) {
  assert(options_.mode == IngressMode::kNadino);
  // Ingress-side pool for the tenant (created here when the experiment has
  // not provisioned one on the ingress node yet).
  pool_ = node_->tenants().PoolOfTenant(options_.tenant);
  if (pool_ == nullptr) {
    pool_ = node_->tenants().CreatePool(options_.tenant,
                                        "ingress_tenant_" + std::to_string(options_.tenant),
                                        TenantRegistry::PoolConfig{2048, 16 * 1024});
  }
  node_->rnic().mr_table().Register(pool_, kMrLocal);
  node_->rnic().cq().SetHandler([this](const Completion& cqe) { OnRnicCompletion(cqe); });
  PostIngressRecvBuffers(512);
  for (const auto& worker : workers_) {
    for (NetworkEngine* engine : engines) {
      worker->connections->Prewarm(&engine->node()->rnic(), options_.tenant,
                                   options_.prewarm_connections,
                                   static_cast<uint64_t>(worker->index));
    }
  }
  for (NetworkEngine* engine : engines) {
    engine->PrewarmRemoteRnic(&node_->rnic(), options_.tenant, options_.prewarm_connections);
  }
}

void IngressGateway::ConnectWorkerPortals(const std::vector<Node*>& worker_nodes) {
  assert(options_.mode != IngressMode::kNadino);
  for (Node* worker_node : worker_nodes) {
    BufferPool* pool = worker_node->tenants().PoolOfTenant(options_.tenant);
    assert(pool != nullptr && "create the tenant pool on worker nodes first");
    const FunctionId fn = kPortalFnBase + worker_node->id();
    auto portal = std::make_unique<FunctionRuntime>(fn, options_.tenant,
                                                    "portal@" + std::to_string(worker_node->id()),
                                                    worker_node, worker_node->AllocateCore(),
                                                    pool);
    portal->core()->set_pinned(worker_stack_.busy_polling());
    portal->SetHandler(
        [this](FunctionRuntime& p, Buffer* buffer) { PortalDeliver(&p, buffer); });
    dataplane_->RegisterFunction(portal.get());
    portal_nodes_[fn] = worker_node->id();
    portals_.push_back(std::move(portal));
  }
}

namespace {

// Kernel receive livelock ([72]): the interrupt-driven stack spends more CPU
// per message as the backlog grows, which is what collapses K-Ingress under
// overload (Figs. 13/14 and NightCore/FUYAO-K in Fig. 16). Busy-polling
// stacks (F-stack) have IrqCost() == 0 and are unaffected.
SimDuration LivelockIrq(const CostModel& cost, const TcpStackModel& stack,
                        const FifoResource& core) {
  const SimDuration base = stack.IrqCost();
  if (base == 0) {
    return 0;
  }
  const auto depth = static_cast<SimDuration>(core.queue_depth());
  return base + base * depth / cost.ktcp_livelock_depth_divisor;
}

}  // namespace

IngressGateway::Worker* IngressGateway::PickWorker(uint32_t client_id) {
  // RSS: hash the client's connection onto the active worker set.
  std::vector<Worker*> active;
  for (const auto& w : workers_) {
    if (w->active) {
      active.push_back(w.get());
    }
  }
  if (active.empty()) {
    return nullptr;
  }
  const uint32_t hash = client_id * 2654435761u;
  return active[hash % active.size()];
}

void IngressGateway::SubmitRequest(uint32_t client_id, const std::string& path,
                                   uint32_t payload_bytes, std::function<void()> done) {
  if (sim().now() < paused_until_) {
    // Worker processes are restarting (horizontal scaling event): the brief
    // service interruption of Fig. 14.
    sim().Schedule(paused_until_ - sim().now(),
                   [this, client_id, path, payload_bytes, done = std::move(done)]() mutable {
                     SubmitRequest(client_id, path, payload_bytes, std::move(done));
                   });
    return;
  }
  const auto route_it = routes_.find(path);
  Worker* worker = PickWorker(client_id);
  if (route_it == routes_.end() || worker == nullptr) {
    m_http_errors_.Increment();
    sim().Schedule(0, std::move(done));
    return;
  }
  // kTransport fault site: the client's HTTP/TCP crossing into the ingress
  // stack. A drop models a connection reset before the request is accepted:
  // the client observes an error (`done` still fires, keeping closed-loop
  // load generators alive) and no gateway state is created. A delay models
  // SYN retransmission / accept-queue pressure ahead of the rx cost.
  const FaultDecision transport_fault = env_->faults().Intercept(
      FaultSite::kTransport, FaultScope{options_.tenant, node_->id()});
  if (transport_fault.action == FaultAction::kDrop) {
    m_http_errors_.Increment();
    sim().Schedule(0, std::move(done));
    return;
  }
  m_requests_.Increment();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceCategory::kIngress, static_cast<uint32_t>(worker->index),
                    "http_request", client_id, payload_bytes);
  }
  const Route route = route_it->second;
  const uint64_t request_id = executor_->NextRequestId();
  pending_[request_id] = Pending{std::move(done), worker->index, 0};
  // Terminate (or receive, for proxy modes) the client's HTTP/TCP request.
  const uint64_t wire_bytes = payload_bytes + kHttpRequestOverhead;
  const SimDuration rx_cost =
      ingress_stack_.RxCost(wire_bytes) +
      LivelockIrq(env_->cost(), ingress_stack_, *worker->core) + env_->cost().http_parse +
      (transport_fault.action == FaultAction::kDelay ? transport_fault.delay : 0);
  worker->core->Submit(rx_cost, [this, worker, route, payload_bytes, request_id]() {
    if (options_.mode == IngressMode::kNadino) {
      NadinoHandleRequest(worker, route, payload_bytes, request_id);
    } else {
      ProxyHandleRequest(worker, route, payload_bytes, request_id);
    }
  });
}

// --- NADINO mode -------------------------------------------------------------

void IngressGateway::NadinoHandleRequest(Worker* worker, const Route& route,
                                         uint32_t payload_bytes, uint64_t request_id) {
  Buffer* buffer = pool_->Get(owner_id());
  if (buffer == nullptr) {
    m_http_errors_.Increment();
    FinishResponse(worker, request_id, 0);
    return;
  }
  MessageHeader header;
  header.chain = route.chain;
  header.src = worker->self_fn;
  header.dst = route.entry;
  header.payload_length = payload_bytes;
  header.request_id = request_id;
  if (!WriteMessage(buffer, header)) {
    pool_->Put(buffer, owner_id());
    m_http_errors_.Increment();
    FinishResponse(worker, request_id, 0);
    return;
  }
  // Resolved per request under the current routing epoch (committing pick —
  // with a spreading policy installed, successive requests rotate across the
  // entry's live replicas); kInvalidNode = no surviving placement.
  const NodeId dst_node = routing_->ResolveFor(route.entry, node_->id());
  if (dst_node == kInvalidNode) {
    pool_->Put(buffer, owner_id());
    m_http_errors_.Increment();
    FinishResponse(worker, request_id, 0);
    return;
  }
  const uint64_t stream = static_cast<uint64_t>(worker->index);
  const ConnectionService::Acquired acquired =
      worker->connections->Acquire(dst_node, options_.tenant, stream);
  if (acquired.qp == 0) {
    if (worker->connections->CanEstablish(dst_node, options_.tenant)) {
      // Lazy policy: hold the request across the handshake; the continuation
      // resumes the post (or fails closed if the tenant departed meanwhile).
      worker->connections->EstablishThen(
          dst_node, options_.tenant, stream,
          [this, worker, buffer, route, request_id,
           dst_node](const ConnectionService::Acquired& late) {
            if (late.qp == 0) {
              pool_->Put(buffer, owner_id());
              m_http_errors_.Increment();
              FinishResponse(worker, request_id, 0);
              return;
            }
            PostNadinoSend(worker, buffer, route, request_id, dst_node, late);
          });
      return;
    }
    pool_->Put(buffer, owner_id());
    m_http_errors_.Increment();
    FinishResponse(worker, request_id, 0);
    return;
  }
  PostNadinoSend(worker, buffer, route, request_id, dst_node, acquired);
}

void IngressGateway::PostNadinoSend(Worker* worker, Buffer* buffer, const Route& route,
                                    uint64_t request_id, NodeId dst_node,
                                    const ConnectionService::Acquired& acquired) {
  auto post = [this, worker, buffer, route, request_id, dst_node, qp = acquired.qp]() {
    pool_->Transfer(buffer, owner_id(), OwnerId::Rnic(node_->id()));
    const uint64_t wr_id = next_wr_id_++;
    InFlightSend& send = in_flight_sends_[wr_id];
    send.buffer = buffer;
    send.request_id = request_id;
    send.chain = route.chain;
    send.entry = route.entry;
    send.dst_node = dst_node;
    send.worker = worker->index;
    node_->rnic().PostSend(qp, *buffer, wr_id, route.entry);
  };
  if (acquired.control_cost > 0) {
    worker->core->Submit(acquired.control_cost, std::move(post));
  } else {
    post();
  }
}

void IngressGateway::OnRnicCompletion(const Completion& cqe) {
  if (cqe.opcode == RdmaOpcode::kSend) {
    const auto it = in_flight_sends_.find(cqe.wr_id);
    if (it == in_flight_sends_.end()) {
      return;
    }
    InFlightSend send = it->second;
    in_flight_sends_.erase(it);
    if (cqe.status != WrStatus::kSuccess) {
      // ACK timeout / transport error — typically the worker node went into
      // a partition window mid-request. Fail over or fail closed; never
      // leave the client's pending entry hanging.
      HandleSendFailure(std::move(send));
      return;
    }
    pool_->Put(send.buffer, OwnerId::Rnic(node_->id()));
    return;
  }
  if (cqe.opcode != RdmaOpcode::kRecv) {
    return;
  }
  Buffer* buffer = rbr_.Consume(cqe.wr_id, cqe.tenant);
  if (buffer == nullptr || buffer != cqe.buffer) {
    return;
  }
  pool_->Transfer(buffer, OwnerId::Rnic(node_->id()), owner_id());
  // Replace the consumed receive buffer (master / core-thread work).
  master_core_->Consume(150);
  PostIngressRecvBuffers(1);
  const auto worker_it = fn_to_worker_.find(cqe.imm);
  if (worker_it == fn_to_worker_.end()) {
    pool_->Put(buffer, owner_id());
    return;
  }
  Worker* worker = workers_[static_cast<size_t>(worker_it->second)].get();
  // The worker's busy-poll loop picks the completion up and runs the
  // RDMA->HTTP conversion.
  worker->core->Submit(env_->cost().dne_loop_iteration + env_->cost().dne_rx_stage,
                       [this, worker, buffer]() { NadinoHandleResponse(worker, buffer); });
}

void IngressGateway::NadinoHandleResponse(Worker* worker, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    m_http_errors_.Increment();
    pool_->Put(buffer, owner_id());
    return;
  }
  const uint64_t request_id = header->request_id;
  const uint32_t body_bytes = header->payload_length;
  pool_->Put(buffer, owner_id());
  FinishResponse(worker, request_id, body_bytes);
}

void IngressGateway::HandleSendFailure(InFlightSend send) {
  Worker* worker = workers_[static_cast<size_t>(send.worker)].get();
  // Re-resolve under the current routing epoch, excluding the replica that
  // just failed: PlacementsOf/NodeOf can still name a node inside its
  // partition window before the health monitor marks it dead, so failover
  // must pick a DIFFERENT live placement, falling back to the primary only
  // when the entry has no other replica. The buffered request is reused —
  // it never left the RNIC's ownership.
  NodeId dst_node = routing_->LiveReplicaExcluding(send.entry, send.dst_node);
  if (dst_node == kInvalidNode) {
    dst_node = routing_->NodeOf(send.entry);
    if (dst_node == send.dst_node) {
      dst_node = kInvalidNode;  // Only the failed replica remains: fail closed.
    }
  }
  if (dst_node != kInvalidNode && send.attempt < 2) {
    const ConnectionService::Acquired acquired = worker->connections->Acquire(
        dst_node, options_.tenant, static_cast<uint64_t>(worker->index));
    if (acquired.qp != 0) {
      if (!m_failover_attempts_.resolved()) {
        MetricLabels labels = MetricLabels::Node(node_->id());
        labels.engine = static_cast<int64_t>(options_.engine_id);
        m_failover_attempts_ =
            env_->metrics().ResolveCounter("cluster_failover_attempts", labels);
      }
      m_failover_attempts_.Increment();
      env_->Trace(TraceCategory::kCluster, node_->id(), "gateway_failover",
                  send.request_id, dst_node);
      send.attempt += 1;
      const uint64_t wr_id = next_wr_id_++;
      Buffer* buffer = send.buffer;
      const FunctionId entry = send.entry;
      in_flight_sends_[wr_id] = send;
      auto post = [this, buffer, wr_id, entry, qp = acquired.qp]() {
        node_->rnic().PostSend(qp, *buffer, wr_id, entry);
      };
      if (acquired.control_cost > 0) {
        worker->core->Submit(acquired.control_cost, std::move(post));
      } else {
        post();
      }
      return;
    }
  }
  // No surviving placement (or the failover attempt also died): terminate
  // the request with an HTTP error rather than hanging the client.
  pool_->Put(send.buffer, OwnerId::Rnic(node_->id()));
  m_http_errors_.Increment();
  FinishResponse(worker, send.request_id, 0);
}

void IngressGateway::PostIngressRecvBuffers(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    Buffer* buffer = pool_->Get(owner_id());
    if (buffer == nullptr) {
      return;
    }
    const uint64_t wr_id = next_wr_id_++;
    if (!node_->rnic().PostRecvBuffer(pool_, buffer, owner_id(), wr_id)) {
      pool_->Put(buffer, owner_id());
      return;
    }
    rbr_.Insert(wr_id, buffer, options_.tenant);
  }
}

// --- Deferred-conversion (K-/F-Ingress) modes ---------------------------------

void IngressGateway::ProxyHandleRequest(Worker* worker, const Route& route,
                                        uint32_t payload_bytes, uint64_t request_id) {
  // Committing resolution: the proxy forwards straight to the chosen node's
  // portal, so the policy pick (and served accounting) lands here.
  const NodeId dst_node = routing_->ResolveFor(route.entry, node_->id());
  const FunctionId portal_fn = kPortalFnBase + dst_node;
  const auto portal_it = portal_nodes_.find(portal_fn);
  if (portal_it == portal_nodes_.end()) {
    m_http_errors_.Increment();
    FinishResponse(worker, request_id, 0);
    return;
  }
  // NGINX proxy pass: upstream management + re-serialize toward the worker.
  const uint64_t wire_bytes = payload_bytes + kHttpRequestOverhead;
  const SimDuration proxy_cost = env_->cost().http_proxy_request + ingress_stack_.TxCost(wire_bytes);
  worker->core->Submit(proxy_cost, [this, route, payload_bytes, request_id, dst_node,
                                    portal_fn, wire_bytes]() {
    node_->rnic().network()->fabric().Send(
        node_->id(), dst_node, wire_bytes,
        [this, route, payload_bytes, request_id, portal_fn]() {
          // Worker-node TCP termination at the portal, then into the chain
          // via the local data plane — the "deferred conversion" double cost.
          FunctionRuntime* portal = nullptr;
          for (const auto& p : portals_) {
            if (p->id() == portal_fn) {
              portal = p.get();
              break;
            }
          }
          if (portal == nullptr) {
            return;
          }
          const uint64_t wire = payload_bytes + kHttpRequestOverhead;
          const SimDuration term_cost = worker_stack_.RxCost(wire) +
                                        LivelockIrq(env_->cost(), worker_stack_, *portal->core()) +
                                        env_->cost().http_parse;
          portal->core()->Submit(term_cost, [this, portal, route, payload_bytes,
                                             request_id]() {
            Buffer* buffer = portal->pool()->Get(portal->owner_id());
            if (buffer == nullptr) {
              m_http_errors_.Increment();
              return;
            }
            MessageHeader header;
            header.chain = route.chain;
            header.src = portal->id();
            header.dst = route.entry;
            header.payload_length = payload_bytes;
            header.request_id = request_id;
            if (!WriteMessage(buffer, header) || !dataplane_->Send(portal, buffer)) {
              portal->pool()->Put(buffer, portal->owner_id());
              m_http_errors_.Increment();
            }
          });
        },
        options_.tenant);
  });
}

void IngressGateway::PortalDeliver(FunctionRuntime* portal, Buffer* buffer) {
  const std::optional<MessageHeader> header = ReadMessage(*buffer);
  if (!header.has_value()) {
    portal->pool()->Put(buffer, portal->owner_id());
    m_http_errors_.Increment();
    return;
  }
  const uint64_t request_id = header->request_id;
  const uint32_t body_bytes = header->payload_length;
  portal->pool()->Put(buffer, portal->owner_id());
  const auto pending_it = pending_.find(request_id);
  if (pending_it == pending_.end()) {
    m_http_errors_.Increment();
    return;
  }
  Worker* worker = workers_[static_cast<size_t>(pending_it->second.worker)].get();
  // Serialize the HTTP response back toward the ingress over TCP.
  const uint64_t wire_bytes = body_bytes + kHttpResponseOverhead;
  const SimDuration tx_cost = worker_stack_.TxCost(wire_bytes) + worker_stack_.IrqCost();
  const NodeId portal_node = portal->node()->id();
  portal->core()->Submit(tx_cost, [this, worker, request_id, body_bytes, portal_node,
                                   wire_bytes]() {
    node_->rnic().network()->fabric().Send(
        portal_node, node_->id(), wire_bytes,
        [this, worker, request_id, body_bytes]() {
          const uint64_t wire = body_bytes + kHttpResponseOverhead;
          const SimDuration rx_cost = ingress_stack_.RxCost(wire) +
                                      LivelockIrq(env_->cost(), ingress_stack_, *worker->core) +
                                      env_->cost().http_proxy_response;
          worker->core->Submit(rx_cost, [this, worker, request_id, body_bytes]() {
            FinishResponse(worker, request_id, body_bytes);
          });
        },
        options_.tenant);
  });
}

// --- Shared ------------------------------------------------------------------

void IngressGateway::FinishResponse(Worker* worker, uint64_t request_id,
                                    uint32_t body_bytes) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  Pending pending = std::move(it->second);
  pending_.erase(it);
  const uint64_t wire_bytes = body_bytes + kHttpResponseOverhead;
  const SimDuration tx_cost = ingress_stack_.TxCost(wire_bytes) + ingress_stack_.IrqCost();
  worker->core->Submit(tx_cost, [this, worker, body_bytes,
                                 done = std::move(pending.done)]() mutable {
    m_responses_.Increment();
    if (tracer_ != nullptr) {
      tracer_->Record(TraceCategory::kIngress, static_cast<uint32_t>(worker->index),
                      "http_response", 0, body_bytes);
    }
    sim().Schedule(env_->cost().client_wire_one_way, std::move(done));
  });
}

int IngressGateway::active_workers() const {
  int n = 0;
  for (const auto& w : workers_) {
    n += w->active ? 1 : 0;
  }
  return n;
}

double IngressGateway::WorkerUtilizationCores() const {
  double total = 0.0;
  for (const auto& w : workers_) {
    if (w->active) {
      total += w->core->WindowUtilization();
    }
  }
  return total;
}

double IngressGateway::PortalUtilizationCores() const {
  double total = 0.0;
  for (const auto& p : portals_) {
    total += p->core()->WindowUtilization();
  }
  return total;
}

double IngressGateway::AverageUsefulUtilization() const {
  double total = 0.0;
  int n = 0;
  for (const auto& w : workers_) {
    if (w->active) {
      total += w->core->WindowUsefulUtilization();
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / n;
}

void IngressGateway::ResetUtilizationWindows() {
  for (const auto& w : workers_) {
    w->core->ResetWindow();
  }
}

void IngressGateway::AutoscaleTick() {
  const double util = AverageUsefulUtilization();
  // SLO burn feedback: while the gateway tenant is consuming error budget,
  // scale up at the lower burn threshold — queueing is already costing the
  // tenant its SLO, so capacity arrives earlier than pure-utilization
  // hysteresis would add it. Tenants without a registered SLO (and runs
  // whose budget never burns) see the base threshold, unchanged.
  const SloObject* slo = env_->slos().OfTenant(options_.tenant);
  const bool burning = slo != nullptr && slo->Burning();
  const double up_util =
      burning ? env_->cost().ingress_burn_scale_up_util : env_->cost().ingress_scale_up_util;
  if (util > up_util && active_workers() < options_.max_workers) {
    StartWorker(active_workers());
    // Worker-process restart briefly interrupts service (Fig. 14 dips).
    paused_until_ = sim().now() + env_->cost().ingress_worker_restart;
    m_scale_ups_.Increment();
    if (burning && util <= env_->cost().ingress_scale_up_util) {
      // This scale-up exists only because of the burn feedback; counted
      // separately (lazily — see the golden-preservation note in gateway.h).
      if (!m_burn_scale_ups_.resolved()) {
        MetricLabels labels = MetricLabels::Node(node_->id());
        labels.engine = static_cast<int64_t>(options_.engine_id);
        m_burn_scale_ups_ = env_->metrics().ResolveCounter("gateway_burn_scale_ups", labels);
      }
      m_burn_scale_ups_.Increment();
    }
  } else if (util < env_->cost().ingress_scale_down_util && active_workers() > 1) {
    // Drain the highest-index active worker.
    for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
      if ((*it)->active) {
        (*it)->active = false;
        break;
      }
    }
    m_scale_downs_.Increment();
  }
  ResetUtilizationWindows();
  sim().Schedule(env_->cost().ingress_autoscale_period, [this]() { AutoscaleTick(); });
}

}  // namespace nadino
