// Tests for hugepage arena, buffers/descriptors, and the pool-based allocator
// with exclusive-ownership enforcement.

#include "src/mem/buffer_pool.h"

#include <gtest/gtest.h>

#include <set>

#include "src/mem/hugepage_arena.h"

namespace nadino {
namespace {

TEST(HugepageArenaTest, CarvesAlignedRegions) {
  HugepageArena arena;
  const auto a = arena.Carve(100);
  const auto b = arena.Carve(100);
  EXPECT_GE(a.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 64, 0u);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(arena.pages_allocated(), 1u);
}

TEST(HugepageArenaTest, AllocatesNewPageWhenFull) {
  HugepageArena arena;
  const size_t half = kHugepageSize / 2 + 64;
  arena.Carve(half);
  arena.Carve(half);
  EXPECT_EQ(arena.pages_allocated(), 2u);
}

TEST(HugepageArenaTest, RegionsDoNotOverlap) {
  HugepageArena arena;
  std::vector<std::span<std::byte>> regions;
  for (int i = 0; i < 100; ++i) {
    regions.push_back(arena.Carve(1000));
  }
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = i + 1; j < regions.size(); ++j) {
      const auto* ai = regions[i].data();
      const auto* aj = regions[j].data();
      EXPECT_TRUE(ai + regions[i].size() <= aj || aj + regions[j].size() <= ai);
    }
  }
}

TEST(BufferDescriptorTest, EncodeDecodeRoundTrip) {
  BufferDescriptor d{7, 123, 4096, 42};
  const auto wire = d.Encode();
  EXPECT_EQ(wire.size(), BufferDescriptor::kWireSize);
  const BufferDescriptor back = BufferDescriptor::Decode(wire);
  EXPECT_EQ(back, d);
}

TEST(ChecksumTest, SensitiveToContent) {
  std::vector<std::byte> a(100, std::byte{1});
  std::vector<std::byte> b(100, std::byte{1});
  b[50] = std::byte{2};
  EXPECT_NE(Checksum(a), Checksum(b));
  EXPECT_EQ(Checksum(a), Checksum(std::vector<std::byte>(100, std::byte{1})));
}

class BufferPoolTest : public ::testing::Test {
 protected:
  HugepageArena arena_;
  BufferPool pool_{1, 9, 16, 4096, &arena_};
};

TEST_F(BufferPoolTest, GetAssignsOwnerAndTenant) {
  Buffer* b = pool_.Get(OwnerId::Function(5));
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->owner, OwnerId::Function(5));
  EXPECT_EQ(b->tenant, 9u);
  EXPECT_EQ(b->capacity(), 4096u);
  EXPECT_EQ(pool_.in_use(), 1u);
}

TEST_F(BufferPoolTest, ExhaustionReturnsNull) {
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(pool_.Get(OwnerId::External()), nullptr);
  }
  EXPECT_EQ(pool_.Get(OwnerId::External()), nullptr);
  EXPECT_EQ(pool_.stats().get_failures, 1u);
}

TEST_F(BufferPoolTest, PutByOwnerSucceeds) {
  Buffer* b = pool_.Get(OwnerId::Function(5));
  EXPECT_TRUE(pool_.Put(b, OwnerId::Function(5)));
  EXPECT_EQ(b->owner, OwnerId::None());
  EXPECT_EQ(pool_.free_count(), 16u);
}

TEST_F(BufferPoolTest, PutByNonOwnerRejected) {
  Buffer* b = pool_.Get(OwnerId::Function(5));
  EXPECT_FALSE(pool_.Put(b, OwnerId::Function(6)));
  EXPECT_EQ(pool_.stats().ownership_violations, 1u);
  EXPECT_EQ(b->owner, OwnerId::Function(5));
}

TEST_F(BufferPoolTest, DoublePutRejected) {
  Buffer* b = pool_.Get(OwnerId::Function(5));
  EXPECT_TRUE(pool_.Put(b, OwnerId::Function(5)));
  EXPECT_FALSE(pool_.Put(b, OwnerId::Function(5)));
  EXPECT_EQ(pool_.stats().ownership_violations, 1u);
}

TEST_F(BufferPoolTest, TransferMovesExclusiveOwnership) {
  Buffer* b = pool_.Get(OwnerId::Function(5));
  EXPECT_TRUE(pool_.Transfer(b, OwnerId::Function(5), OwnerId::Engine(1)));
  EXPECT_EQ(b->owner, OwnerId::Engine(1));
  // The old owner can no longer act on the buffer.
  EXPECT_FALSE(pool_.Transfer(b, OwnerId::Function(5), OwnerId::Function(5)));
  EXPECT_FALSE(pool_.Put(b, OwnerId::Function(5)));
}

TEST_F(BufferPoolTest, TransferToNoneRejected) {
  Buffer* b = pool_.Get(OwnerId::Function(5));
  EXPECT_FALSE(pool_.Transfer(b, OwnerId::Function(5), OwnerId::None()));
}

TEST_F(BufferPoolTest, GenerationBumpsOnRecycle) {
  Buffer* b = pool_.Get(OwnerId::External());
  const uint32_t gen = b->generation;
  pool_.Put(b, OwnerId::External());
  Buffer* again = pool_.Get(OwnerId::External());
  EXPECT_EQ(again, b);  // LIFO free list returns the same buffer.
  EXPECT_EQ(again->generation, gen + 1);
}

TEST_F(BufferPoolTest, ResolveDescriptor) {
  Buffer* b = pool_.Get(OwnerId::Function(5));
  b->length = 128;
  const BufferDescriptor desc = pool_.MakeDescriptor(*b, 77);
  EXPECT_EQ(desc.dst_function, 77u);
  EXPECT_EQ(desc.length, 128u);
  EXPECT_EQ(pool_.Resolve(desc), b);
}

TEST_F(BufferPoolTest, ResolveRejectsWrongPoolOrIndex) {
  EXPECT_EQ(pool_.Resolve(BufferDescriptor{2, 0, 0, 0}), nullptr);
  EXPECT_EQ(pool_.Resolve(BufferDescriptor{1, 999, 0, 0}), nullptr);
}

TEST_F(BufferPoolTest, ConservationUnderChurn) {
  // Property: gets - puts == in_use at every step; no buffer handed out twice.
  std::set<Buffer*> live;
  for (int round = 0; round < 100; ++round) {
    while (pool_.free_count() > 0) {
      Buffer* b = pool_.Get(OwnerId::External());
      ASSERT_NE(b, nullptr);
      EXPECT_TRUE(live.insert(b).second) << "buffer double-allocated";
    }
    EXPECT_EQ(pool_.in_use(), live.size());
    for (Buffer* b : live) {
      EXPECT_TRUE(pool_.Put(b, OwnerId::External()));
    }
    live.clear();
    EXPECT_EQ(pool_.free_count(), pool_.capacity());
  }
  EXPECT_EQ(pool_.stats().ownership_violations, 0u);
}

class PoolSizeTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(PoolSizeTest, AllBuffersUsableAtAnySize) {
  const auto [count, size] = GetParam();
  HugepageArena arena;
  BufferPool pool(3, 1, count, size, &arena);
  std::vector<Buffer*> buffers;
  for (size_t i = 0; i < count; ++i) {
    Buffer* b = pool.Get(OwnerId::External());
    ASSERT_NE(b, nullptr);
    EXPECT_GE(b->capacity(), size);
    b->FillPattern(i, static_cast<uint32_t>(size));
    buffers.push_back(b);
  }
  // Distinct content survives in all buffers simultaneously (no aliasing).
  std::set<uint64_t> checksums;
  for (Buffer* b : buffers) {
    checksums.insert(Checksum(b->payload()));
  }
  EXPECT_GT(checksums.size(), count / 2);
  for (Buffer* b : buffers) {
    EXPECT_TRUE(pool.Put(b, OwnerId::External()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolSizeTest,
                         ::testing::Values(std::pair<size_t, size_t>{1, 64},
                                           std::pair<size_t, size_t>{8, 1024},
                                           std::pair<size_t, size_t>{64, 4096},
                                           std::pair<size_t, size_t>{256, 16384},
                                           std::pair<size_t, size_t>{1024, 2048}));

}  // namespace
}  // namespace nadino
