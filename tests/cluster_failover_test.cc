// Chain-executor failover re-routing: when membership marks a call's target
// node dead between attempts, the retry re-resolves routing and lands on a
// surviving replica (cluster_failover_attempts / _recovered); when no live
// replica exists the attempt fails closed immediately (never re-sent into a
// black hole). Membership is driven directly here — the heartbeat-driven
// end-to-end path is tests/cluster_partition_chaos_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/core/slo.h"
#include "src/runtime/chain.h"
#include "src/runtime/message_header.h"

namespace nadino {
namespace {

constexpr TenantId kTenant = 1;
constexpr FunctionId kClientFn = 99;
constexpr FunctionId kEntryFn = 100;
constexpr FunctionId kLeafFn = 101;

// Client + entry on worker 0 (node 1); the leaf primary on worker 1 (node 2)
// with an optional replica on worker 2 (node 3).
struct Harness {
  explicit Harness(bool with_replica) {
    cluster_config.worker_nodes = with_replica ? 3 : 2;
    cluster_config.with_ingress_node = false;
    cluster = std::make_unique<Cluster>(&cost, cluster_config);
    cluster->CreateTenantPools(kTenant, 2048, 8192);
    cluster->env().slos().Register(kTenant, SloTarget{});
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.timeout = 2 * kMillisecond;
    cluster->env().slos().SetRetryPolicy(kTenant, policy);

    dp = std::make_unique<NadinoDataPlane>(cluster->env(), &cluster->routing(),
                                           NadinoDataPlane::Options{});
    for (int i = 0; i < cluster_config.worker_nodes; ++i) {
      dp->AddWorkerNode(cluster->worker(i));
    }
    dp->AttachTenant(kTenant, 1);
    dp->Start();

    ChainSpec spec;
    spec.id = 1;
    spec.tenant = kTenant;
    spec.entry = kEntryFn;
    FunctionBehavior entry;
    entry.compute = 5 * kMicrosecond;
    entry.calls.push_back(CallSpec{kLeafFn, 512});
    spec.behaviors[kEntryFn] = entry;
    FunctionBehavior leaf;
    leaf.compute = 5 * kMicrosecond;
    spec.behaviors[kLeafFn] = leaf;

    executor = std::make_unique<ChainExecutor>(cluster->env(), dp.get());
    executor->RegisterChain(spec);

    AddFunction(kEntryFn, 0);
    AddFunction(kLeafFn, 1);  // Primary placement.
    if (with_replica) {
      AddFunction(kLeafFn, 2);  // Failover replica (registration order).
    }
    client = std::make_unique<FunctionRuntime>(kClientFn, kTenant, "client",
                                               cluster->worker(0),
                                               cluster->worker(0)->AllocateCore(),
                                               cluster->worker(0)->tenants().PoolOfTenant(kTenant));
    dp->RegisterFunction(client.get());
    client->SetHandler([this](FunctionRuntime& fn, Buffer* buffer) {
      const auto header = ReadMessage(*buffer);
      if (header.has_value() && header->is_response()) {
        ++completed;
      }
      fn.pool()->Put(buffer, fn.owner_id());
    });
  }

  void AddFunction(FunctionId id, int worker) {
    Node* node = cluster->worker(worker);
    functions.push_back(std::make_unique<FunctionRuntime>(
        id, kTenant, "fn" + std::to_string(id) + "@" + std::to_string(node->id()), node,
        node->AllocateCore(), node->tenants().PoolOfTenant(kTenant)));
    dp->RegisterFunction(functions.back().get());
    executor->AttachFunction(functions.back().get());
  }

  void SubmitAt(SimTime at) {
    cluster->sim().ScheduleAt(at, [this]() {
      Buffer* request = client->pool()->Get(client->owner_id());
      ASSERT_NE(request, nullptr);
      MessageHeader header;
      header.chain = 1;
      header.src = kClientFn;
      header.dst = kEntryFn;
      header.payload_length = 256;
      header.request_id = executor->NextRequestId();
      WriteMessage(request, header);
      if (!dp->Send(client.get(), request)) {
        client->pool()->Put(request, client->owner_id());
      }
    });
  }

  uint64_t Failovers() const {
    return cluster->metrics().ValueOf("cluster_failover_attempts", MetricLabels::Tenant(kTenant));
  }
  uint64_t Recovered() const {
    return cluster->metrics().ValueOf("cluster_failover_recovered", MetricLabels::Tenant(kTenant));
  }

  CostModel cost = CostModel::Default();
  ClusterConfig cluster_config;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<NadinoDataPlane> dp;
  std::unique_ptr<ChainExecutor> executor;
  std::vector<std::unique_ptr<FunctionRuntime>> functions;
  std::unique_ptr<FunctionRuntime> client;
  int completed = 0;
};

TEST(ClusterFailoverTest, RetryReRoutesToSurvivingReplicaAfterMarkDead) {
  Harness h(/*with_replica=*/true);
  // Sever the leaf's primary node forever; membership learns at 4 ms (driven
  // directly — the monitor path is covered by the chaos test).
  ASSERT_GE(h.cluster->SeverNode(2, 1 * kMillisecond, 0), 0);
  h.cluster->sim().ScheduleAt(4 * kMillisecond, [&h]() { h.cluster->membership().MarkDead(2); });

  h.SubmitAt(2 * kMillisecond);   // In flight toward node 2 when it dies.
  h.SubmitAt(10 * kMillisecond);  // Issued after death: routed to node 3.
  h.cluster->sim().RunFor(100 * kMillisecond);

  EXPECT_EQ(h.completed, 2);
  EXPECT_EQ(h.executor->pending_calls(), 0u);
  EXPECT_GE(h.Failovers(), 1u) << "the in-flight call must re-place onto node 3";
  EXPECT_EQ(h.Recovered(), h.Failovers()) << "every failed-over call completed";
  // The post-death submit resolves the replica directly — no failover, no
  // retry, just routing under the new epoch.
  EXPECT_EQ(h.cluster->routing().NodeOf(kLeafFn), 3u);
}

TEST(ClusterFailoverTest, NoLiveReplicaFailsClosedWithoutSpinning) {
  Harness h(/*with_replica=*/false);
  ASSERT_GE(h.cluster->SeverNode(2, 1 * kMillisecond, 0), 0);
  h.cluster->sim().ScheduleAt(4 * kMillisecond, [&h]() { h.cluster->membership().MarkDead(2); });

  h.SubmitAt(2 * kMillisecond);
  h.cluster->sim().RunFor(100 * kMillisecond);

  EXPECT_EQ(h.completed, 0);
  EXPECT_EQ(h.executor->pending_calls(), 0u) << "unroutable calls terminate, never hang";
  EXPECT_EQ(h.Failovers(), 0u) << "nothing to fail over to";
  EXPECT_GT(h.executor->errors(), 0u);
  // The first reissue after death observed kInvalidNode and stopped; retry
  // attempts stay far below the policy cap.
  EXPECT_LE(h.cluster->metrics().ValueOf("retry_attempts", MetricLabels::Tenant(kTenant)), 2u);
  EXPECT_EQ(h.cluster->routing().NodeOf(kLeafFn), kInvalidNode);
}

TEST(ClusterFailoverTest, HealedPrimaryTakesNewInvocationsBack) {
  Harness h(/*with_replica=*/true);
  ASSERT_GE(h.cluster->SeverNode(2, 1 * kMillisecond, 20 * kMillisecond), 0);
  h.cluster->sim().ScheduleAt(4 * kMillisecond, [&h]() { h.cluster->membership().MarkDead(2); });
  h.cluster->sim().ScheduleAt(21 * kMillisecond, [&h]() { h.cluster->membership().MarkAlive(2); });

  h.SubmitAt(10 * kMillisecond);  // During the outage: replica serves it.
  h.SubmitAt(30 * kMillisecond);  // After rejoin: primary again.
  h.cluster->sim().RunFor(100 * kMillisecond);

  EXPECT_EQ(h.completed, 2);
  EXPECT_EQ(h.cluster->routing().NodeOf(kLeafFn), 2u) << "primary restored after rejoin";
  // functions[1] is the primary leaf on node 2, functions[2] the replica.
  EXPECT_GE(h.functions[2]->messages_received(), 1u) << "outage request served by replica";
  EXPECT_GE(h.functions[1]->messages_received(), 1u) << "post-heal request back on primary";
}

}  // namespace
}  // namespace nadino
