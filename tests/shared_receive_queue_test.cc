// The per-tenant shared receive queue (src/rdma/shared_receive_queue.h):
// post/consume accounting and ownership guards at the unit level, then the
// engine-visible contracts — RNR retry exhaustion surfacing
// kRnrRetryExceeded at the sender when the SRQ runs dry, and posted-buffer
// conservation under injected rnic_rx drops (a dropped packet NACKs the
// sender before the SRQ pops, so the receiver's posted credits survive).

#include "src/rdma/shared_receive_queue.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/core/fault.h"
#include "src/mem/tenant_registry.h"
#include "src/rdma/rdma_engine.h"

namespace nadino {
namespace {

constexpr TenantId kTenant = 5;

TEST(SharedReceiveQueueUnit, PostPopAccountingIsFifo) {
  CostModel cost = CostModel::Default();
  Simulator sim;
  Env env{&sim, &cost};
  TenantRegistry registry;
  BufferPool* pool = registry.CreatePool(kTenant, "rx", {8, 4096});
  SharedReceiveQueue srq(kTenant);

  std::vector<Buffer*> posted;
  for (uint64_t i = 0; i < 3; ++i) {
    Buffer* buffer = pool->Get(OwnerId::Rnic(1));
    ASSERT_NE(buffer, nullptr);
    posted.push_back(buffer);
    ASSERT_TRUE(srq.Post(buffer, /*wr_id=*/100 + i, /*rnic_node=*/1));
  }
  EXPECT_EQ(srq.posted(), 3u);
  EXPECT_EQ(srq.depth(), 3u);
  EXPECT_EQ(srq.consumed(), 0u);

  for (uint64_t i = 0; i < 3; ++i) {
    const SharedReceiveQueue::PostedRecv recv = srq.Pop();
    EXPECT_EQ(recv.buffer, posted[i]);  // FIFO: oldest posting first.
    EXPECT_EQ(recv.wr_id, 100 + i);
  }
  EXPECT_EQ(srq.consumed(), 3u);
  EXPECT_EQ(srq.depth(), 0u);

  // Empty queue reports the RNR condition, not a stale entry.
  const SharedReceiveQueue::PostedRecv empty = srq.Pop();
  EXPECT_EQ(empty.buffer, nullptr);
  EXPECT_EQ(empty.wr_id, 0u);
  EXPECT_EQ(srq.consumed(), 3u);  // An empty Pop consumes nothing.
}

TEST(SharedReceiveQueueUnit, PostRejectsForeignOwnershipAndTenant) {
  CostModel cost = CostModel::Default();
  Simulator sim;
  Env env{&sim, &cost};
  TenantRegistry registry;
  BufferPool* mine = registry.CreatePool(kTenant, "mine", {4, 4096});
  BufferPool* other = registry.CreatePool(kTenant + 1, "other", {4, 4096});
  SharedReceiveQueue srq(kTenant);

  // Not RNIC-owned: a function-held buffer cannot back a receive.
  Buffer* held = mine->Get(OwnerId::Function(7));
  ASSERT_NE(held, nullptr);
  EXPECT_FALSE(srq.Post(held, 1, /*rnic_node=*/1));
  EXPECT_EQ(srq.post_violations(), 1u);

  // Wrong tenant's pool: the SRQ must never deliver into another tenant.
  Buffer* foreign = other->Get(OwnerId::Rnic(1));
  ASSERT_NE(foreign, nullptr);
  EXPECT_FALSE(srq.Post(foreign, 2, /*rnic_node=*/1));
  EXPECT_EQ(srq.post_violations(), 2u);

  EXPECT_EQ(srq.posted(), 0u);
  EXPECT_EQ(srq.depth(), 0u);
}

class SrqEngineTest : public ::testing::Test {
 protected:
  SrqEngineTest() : network_(env_), a_(env_, 1, &network_), b_(env_, 2, &network_) {
    pool_a_ = registry_a_.CreatePool(kTenant, "a", {32, 8192});
    pool_b_ = registry_b_.CreatePool(kTenant, "b", {32, 8192});
    a_.mr_table().Register(pool_a_, kMrLocal);
    b_.mr_table().Register(pool_b_, kMrLocal);
    std::tie(qp_a_, qp_b_) = RdmaEngine::CreateConnectedPair(a_, b_, kTenant);
  }

  void PostRecvs(int n) {
    for (int i = 0; i < n; ++i) {
      Buffer* buffer = pool_b_->Get(OwnerId::External(2));
      ASSERT_NE(buffer, nullptr);
      ASSERT_TRUE(b_.PostRecvBuffer(pool_b_, buffer, OwnerId::External(2), next_recv_wr_++));
    }
  }

  bool SendOne(uint64_t wr_id) {
    Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
    if (src == nullptr) {
      return false;
    }
    src->FillPattern(static_cast<uint8_t>(wr_id), 512);
    sent_[wr_id] = src;  // Recycled by the poster on its send CQE.
    return a_.PostSend(qp_a_, *src, wr_id);
  }

  // Returns the sender's buffer for a completed WR to its pool (verbs
  // semantics: the poster owns recycling, success or error alike).
  void RecycleSent(const Completion& cqe) {
    const auto it = sent_.find(cqe.wr_id);
    ASSERT_NE(it, sent_.end());
    pool_a_->Put(it->second, OwnerId::Rnic(1));
    sent_.erase(it);
  }

  CostModel cost_ = CostModel::Default();
  Simulator sim_;
  Env env_{&sim_, &cost_};
  RdmaNetwork network_;
  RdmaEngine a_;
  RdmaEngine b_;
  TenantRegistry registry_a_;
  TenantRegistry registry_b_;
  BufferPool* pool_a_ = nullptr;
  BufferPool* pool_b_ = nullptr;
  QpNum qp_a_ = 0;
  QpNum qp_b_ = 0;
  uint64_t next_recv_wr_ = 100;
  std::map<uint64_t, Buffer*> sent_;
};

TEST_F(SrqEngineTest, EmptySrqExhaustsRnrRetriesWithRnrStatus) {
  WrStatus status = WrStatus::kSuccess;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kSend) {
      status = cqe.status;
      RecycleSent(cqe);
    }
  });
  ASSERT_TRUE(SendOne(1));
  sim_.Run();
  // No buffer was ever posted: every backoff re-attempt finds the SRQ dry
  // and the sender's WR fails with the RNR status, not a hang.
  EXPECT_EQ(status, WrStatus::kRnrRetryExceeded);
  EXPECT_GE(b_.stats().rnr_events, 1u);
  EXPECT_EQ(b_.stats().rnr_failures, 1u);
  EXPECT_EQ(b_.SrqOfTenant(kTenant).consumed(), 0u);
  // The failed send's buffer was recycled, not leaked.
  EXPECT_EQ(pool_a_->in_use(), 0u);
}

TEST_F(SrqEngineTest, RxDropsPreservePostedCreditsAndRefillRecovers) {
  PostRecvs(4);
  const SharedReceiveQueue& srq = b_.SrqOfTenant(kTenant);
  ASSERT_EQ(srq.posted(), 4u);

  // Drop the first two packets in the receiver's RX pipeline.
  FaultSpec spec;
  spec.site = FaultSite::kRnicRx;
  spec.action = FaultAction::kDrop;
  spec.probability = 1.0;
  spec.node = 2;
  spec.max_injections = 2;
  ASSERT_GE(env_.faults().Install(spec), 0);

  int transport_errors = 0;
  int send_ok = 0;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode != RdmaOpcode::kSend) {
      return;
    }
    if (cqe.status == WrStatus::kTransportError) {
      ++transport_errors;
    } else if (cqe.status == WrStatus::kSuccess) {
      ++send_ok;
    }
    RecycleSent(cqe);
  });
  int recvs = 0;
  b_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRecv) {
      ++recvs;
      pool_b_->Put(cqe.buffer, OwnerId::Rnic(2));
    }
  });

  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(SendOne(i));
  }
  sim_.Run();

  // Two packets died in RX — NACKed to the sender *before* the SRQ popped,
  // so the posted credits survived for the two that got through.
  EXPECT_EQ(transport_errors, 2);
  EXPECT_EQ(send_ok, 2);
  EXPECT_EQ(recvs, 2);
  EXPECT_EQ(srq.posted(), 4u);
  EXPECT_EQ(srq.consumed(), 2u);
  EXPECT_EQ(srq.depth(), 2u);

  // Refill on top of the surviving credits and drain the queue completely.
  PostRecvs(2);
  for (uint64_t i = 5; i <= 8; ++i) {
    ASSERT_TRUE(SendOne(i));
  }
  sim_.Run();
  EXPECT_EQ(recvs, 6);
  EXPECT_EQ(srq.consumed(), 6u);
  EXPECT_EQ(srq.depth(), 0u);
  // Conservation: every sender-side buffer recycled (success or NACK), every
  // receiver-side buffer either back in the pool or never consumed.
  EXPECT_EQ(pool_a_->in_use(), 0u);
  EXPECT_EQ(pool_b_->in_use(), 0u);
}

}  // namespace
}  // namespace nadino
