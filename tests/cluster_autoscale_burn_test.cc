// SLO burn-rate feedback into the ingress autoscaler: while the gateway
// tenant is consuming error budget, scale-up triggers at the lower
// ingress_burn_scale_up_util threshold instead of ingress_scale_up_util.
// The load level is tuned into the band between the two thresholds (~0.45
// utilization with 3 closed-loop clients), so the burn feedback is the ONLY
// difference between a run that adds capacity and one that never does.

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/core/slo.h"

namespace nadino {
namespace {

constexpr TenantId kGatewayTenant = 1;  // RunIngressEcho's echo tenant.

IngressEchoOptions BandOptions() {
  IngressEchoOptions options;
  options.mode = IngressMode::kNadino;
  options.clients = 3;  // Utilization inside (burn_up_util, scale_up_util).
  options.autoscale = true;
  options.initial_workers = 1;
  options.max_workers = 4;
  options.duration = 3 * kSecond;
  options.warmup = 0;
  return options;
}

FaultSpec SparseDneDrop() {
  FaultSpec drop;
  drop.site = FaultSite::kDneTx;
  drop.action = FaultAction::kDrop;
  drop.probability = 0.002;  // Enough retries per burn window to stay burning.
  return drop;
}

void RegisterSlo(IngressEchoOptions& options) {
  options.slos[kGatewayTenant] = SloTarget{};
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.timeout = 2 * kMillisecond;
  options.retries[kGatewayTenant] = policy;
}

TEST(ClusterAutoscaleBurnTest, BurningTenantScalesUpEarlier) {
  // Control 1: same faults, no SLO — the base 0.60 threshold never trips.
  IngressEchoOptions no_slo = BandOptions();
  no_slo.faults.push_back(SparseDneDrop());
  const IngressEchoResult control_no_slo = RunIngressEcho(CostModel::Default(), no_slo);
  EXPECT_EQ(control_no_slo.scale_ups, 0u);

  // Control 2: SLO registered but nothing burns (no faults) — same result,
  // so registration alone does not change the autoscaler.
  IngressEchoOptions slo_quiet = BandOptions();
  RegisterSlo(slo_quiet);
  const IngressEchoResult control_quiet = RunIngressEcho(CostModel::Default(), slo_quiet);
  EXPECT_EQ(control_quiet.scale_ups, 0u);

  // The burn run: identical load and faults as control 1, but the registered
  // SLO turns the fault-driven retries into budget burn, which lowers the
  // scale-up threshold to ingress_burn_scale_up_util — capacity arrives.
  IngressEchoOptions burning = BandOptions();
  burning.faults.push_back(SparseDneDrop());
  RegisterSlo(burning);
  const IngressEchoResult burn = RunIngressEcho(CostModel::Default(), burning);
  EXPECT_GT(burn.scale_ups, control_no_slo.scale_ups) << "burn feedback must add capacity";
  EXPECT_GT(burn.scale_ups, 0u);
  // Every one of these scale-ups was burn-triggered (util stayed below the
  // base threshold), so the dedicated counter accounts for all of them.
  EXPECT_NE(burn.metrics_text.find("gateway_burn_scale_ups"), std::string::npos);

  // The retries that fed the burn also kept the clients alive: throughput is
  // in the same regime as the unfaulted control, far above the collapsed
  // no-retry run where lost requests strand their closed-loop clients.
  EXPECT_GT(burn.rps, control_no_slo.rps * 10);
}

TEST(ClusterAutoscaleBurnTest, BurnRunsAreSeedDeterministic) {
  IngressEchoOptions burning = BandOptions();
  burning.duration = 2 * kSecond;
  burning.faults.push_back(SparseDneDrop());
  RegisterSlo(burning);
  const IngressEchoResult a = RunIngressEcho(CostModel::Default(), burning);
  const IngressEchoResult b = RunIngressEcho(CostModel::Default(), burning);
  EXPECT_EQ(a.metrics_text, b.metrics_text);
}

}  // namespace
}  // namespace nadino
