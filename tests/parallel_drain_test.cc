// Engine-level semantics of the parallel shard drain (DESIGN.md §3h):
// conservative windows, mailbox delivery, determinism across repeats and
// across worker counts, Stop()/RunUntil behaviour, own-shard Cancel, and the
// EventCallback heap-spill counter.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/sim/simulator.h"

namespace nadino {
namespace {

constexpr SimDuration kHop = 5000;  // Every cross-shard hop >= the lookahead.

// Per-shard accumulator a shard-confined workload folds its trace into.
// XOR/sum commute, so the aggregate is insensitive to the intra-window
// execution interleave while still pinning (when, chain) of every event.
struct alignas(64) ShardTrace {
  uint64_t count = 0;
  uint64_t mix = 0;
};

uint64_t MixEvent(uint64_t chain, SimTime when) {
  uint64_t h = chain * 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(when);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  return h;
}

struct RingResult {
  uint64_t events = 0;
  uint64_t mix = 0;
  uint64_t windows = 0;
  uint64_t mail = 0;
  SimTime end_now = 0;
};

// `chains` request chains hop around `shards` shards until `deadline`; each
// hop records into its current shard's trace then reschedules one shard
// ahead. Shard-confined by construction: a hop only touches trace[shard].
RingResult RunRing(uint32_t shards, uint32_t workers, uint32_t chains, SimTime deadline) {
  Simulator sim;
  sim.SetShardCount(shards);
  sim.SetWorkerCount(workers);
  sim.SetLookahead(kHop);
  std::vector<ShardTrace> trace(shards);

  struct Hopper {
    Simulator* sim;
    std::vector<ShardTrace>* trace;
    uint32_t shards;
    uint64_t chain;

    void Hop(uint32_t shard) const {
      ShardTrace& t = (*trace)[shard];
      ++t.count;
      t.mix ^= MixEvent(chain, sim->now());
      const uint32_t next = (shard + 1) % shards;
      const Hopper self = *this;
      sim->ScheduleAtOn(next, sim->now() + kHop + chain, [self, next] { self.Hop(next); });
    }
  };

  for (uint64_t c = 0; c < chains; ++c) {
    const uint32_t shard = static_cast<uint32_t>(c) % shards;
    const Hopper hopper{&sim, &trace, shards, c};
    sim.ScheduleAtOn(shard, 1000 + c, [hopper, shard] { hopper.Hop(shard); });
  }
  sim.RunUntil(deadline);

  RingResult result;
  result.events = sim.events_processed();
  result.windows = sim.parallel_windows();
  result.mail = sim.parallel_mail_delivered();
  result.end_now = sim.now();
  for (const ShardTrace& t : trace) {
    result.mix ^= t.mix;
    result.events += 0;  // count folded below
  }
  uint64_t count = 0;
  for (const ShardTrace& t : trace) {
    count += t.count;
  }
  EXPECT_EQ(count, result.events);
  return result;
}

TEST(ParallelDrainTest, SerialRunNeverOpensWindows) {
  const RingResult serial = RunRing(/*shards=*/8, /*workers=*/1, /*chains=*/16,
                                    /*deadline=*/1 * kMillisecond);
  EXPECT_EQ(serial.windows, 0u);
  EXPECT_EQ(serial.mail, 0u);
  EXPECT_GT(serial.events, 0u);
}

TEST(ParallelDrainTest, ParallelMatchesSerialAggregates) {
  const RingResult serial = RunRing(8, 1, 16, 1 * kMillisecond);
  for (uint32_t workers : {2u, 4u}) {
    const RingResult par = RunRing(8, workers, 16, 1 * kMillisecond);
    EXPECT_EQ(par.events, serial.events) << "workers=" << workers;
    EXPECT_EQ(par.mix, serial.mix) << "workers=" << workers;
    EXPECT_GT(par.windows, 0u);
    EXPECT_GT(par.mail, 0u);  // Every hop is cross-shard.
  }
}

TEST(ParallelDrainTest, DeterministicAcrossRepeatsAndWorkerCounts) {
  const RingResult two_a = RunRing(6, 2, 12, 600 * kMicrosecond);
  const RingResult two_b = RunRing(6, 2, 12, 600 * kMicrosecond);
  EXPECT_EQ(two_a.events, two_b.events);
  EXPECT_EQ(two_a.mix, two_b.mix);
  EXPECT_EQ(two_a.windows, two_b.windows);
  // Worker count changes the thread carving, not the schedule.
  const RingResult three = RunRing(6, 3, 12, 600 * kMicrosecond);
  EXPECT_EQ(three.events, two_a.events);
  EXPECT_EQ(three.mix, two_a.mix);
}

TEST(ParallelDrainTest, WorkersClampToShardCount) {
  // 2 shards, 8 requested workers: only 2 can own shards; the run must not
  // deadlock waiting on idle workers.
  const RingResult serial = RunRing(2, 1, 4, 400 * kMicrosecond);
  const RingResult par = RunRing(2, 8, 4, 400 * kMicrosecond);
  EXPECT_EQ(par.events, serial.events);
  EXPECT_EQ(par.mix, serial.mix);
}

TEST(ParallelDrainTest, RunUntilLeavesLaterEventsPendingAndResumable) {
  Simulator sim;
  sim.SetShardCount(4);
  sim.SetWorkerCount(2);
  sim.SetLookahead(kHop);
  std::vector<ShardTrace> trace(4);
  int late_runs = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    sim.ScheduleAtOn(s, 100 + s, [&trace, s] { ++trace[s].count; });
    sim.ScheduleAtOn(s, 1 * kMillisecond + s, [&late_runs] { ++late_runs; });
  }
  sim.RunUntil(500 * kMicrosecond);
  EXPECT_EQ(sim.now(), 500 * kMicrosecond);
  EXPECT_EQ(late_runs, 0);
  EXPECT_EQ(sim.pending_events(), 4u);
  // The tail drains in a later (serial) run: leftover parallel-arena slots
  // must still be reachable.
  sim.SetWorkerCount(1);
  sim.Run();
  EXPECT_EQ(late_runs, 4);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ParallelDrainTest, StopInsideParallelRunHaltsPromptly) {
  Simulator sim;
  sim.SetShardCount(4);
  sim.SetWorkerCount(2);
  sim.SetLookahead(kHop);
  std::atomic<uint64_t> ran{0};
  // Endless self-rescheduling chains; shard 0 pulls the plug mid-run.
  struct Endless {
    Simulator* sim;
    std::atomic<uint64_t>* ran;
    void Hop(uint32_t shard) const {
      ran->fetch_add(1, std::memory_order_relaxed);
      if (shard == 0 && ran->load(std::memory_order_relaxed) > 500) {
        sim->Stop();
        return;
      }
      const Endless self = *this;
      sim->ScheduleAtOn(shard, sim->now() + 10, [self, shard] { self.Hop(shard); });
    }
  };
  for (uint32_t s = 0; s < 4; ++s) {
    const Endless e{&sim, &ran};
    sim.ScheduleAtOn(s, 100, [e, s] { e.Hop(s); });
  }
  sim.Run();
  EXPECT_GT(ran.load(), 500u);
  // Stop is a pause, not a drain: the other chains' events are still queued.
  EXPECT_GT(sim.pending_events(), 0u);
}

TEST(ParallelDrainTest, OwnShardCancelInsideWorkerContext) {
  Simulator sim;
  sim.SetShardCount(4);
  sim.SetWorkerCount(2);
  sim.SetLookahead(kHop);
  // Shards execute concurrently inside a window, so cross-shard test state
  // must be atomic (the engine only orders events *within* a shard).
  std::atomic<int> victim_runs{0};
  std::atomic<int> canceller_runs{0};
  for (uint32_t s = 0; s < 4; ++s) {
    sim.ScheduleAtOn(s, 100, [&sim, &victim_runs, &canceller_runs, s] {
      // Same-shard schedules return live ids even under the parallel drain.
      const EventId victim =
          sim.ScheduleAtOn(s, sim.now() + 50, [&victim_runs] { ++victim_runs; });
      ASSERT_NE(victim, kInvalidEventId);
      ++canceller_runs;
      EXPECT_TRUE(sim.Cancel(victim));
      EXPECT_FALSE(sim.Cancel(victim));
    });
  }
  sim.Run();
  EXPECT_EQ(canceller_runs, 4);
  EXPECT_EQ(victim_runs, 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ParallelDrainTest, HorizonClampsCountDeadlineBoundedWindows) {
  Simulator sim;
  sim.SetShardCount(2);
  sim.SetWorkerCount(2);
  sim.SetLookahead(1 * kMillisecond);  // Deeper than the run deadline.
  std::atomic<int> runs{0};
  sim.ScheduleAtOn(0, 10, [&runs] { ++runs; });
  sim.ScheduleAtOn(1, 20, [&runs] { ++runs; });
  sim.RunUntil(100);
  EXPECT_EQ(runs, 2);
  EXPECT_GT(sim.parallel_horizon_clamps(), 0u);
}

TEST(ParallelDrainTest, HeapSpillCounterPinsHotPathsAtZero) {
  Simulator sim;
  sim.SetShardCount(4);
  sim.SetWorkerCount(2);
  sim.SetLookahead(kHop);
  std::vector<ShardTrace> trace(4);
  for (uint32_t s = 0; s < 4; ++s) {
    sim.ScheduleAtOn(s, 100, [&sim, &trace, s] {
      ++trace[s].count;
      sim.ScheduleAtOn((s + 1) % 4, sim.now() + kHop, [&trace, s] { ++trace[s].count; });
    });
  }
  sim.Run();
  // Small captures stay inline on both the own-shard and mailbox paths.
  EXPECT_EQ(sim.callback_heap_spills(), 0u);

  // An oversized capture spills exactly once per schedule, on either path.
  std::array<unsigned char, 128> big{};
  sim.SetWorkerCount(1);
  sim.ScheduleAtOn(0, sim.now() + 1, [big] { (void)big; });
  EXPECT_EQ(sim.callback_heap_spills(), 1u);
  sim.SetWorkerCount(2);
  sim.ScheduleAtOn(0, sim.now() + 2, [&sim, big] {
    (void)big;  // Spill #2 (serial admission above).
    // Spill #3: cross-shard mailbox path inside the parallel drain.
    sim.ScheduleAtOn(1, sim.now() + kHop, [big] { (void)big; });
  });
  sim.Run();
  EXPECT_EQ(sim.callback_heap_spills(), 3u);
}

}  // namespace
}  // namespace nadino
