// Tests for the DNE/CNE network engine: tenant attach via the mmap handshake,
// engine-endpoint transfers, receive-buffer replenishment, on-path staging,
// and ownership discipline along the RX/TX paths.

#include "src/dne/network_engine.h"

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/runtime/message_header.h"

namespace nadino {
namespace {

class NetworkEngineTest : public ::testing::Test {
 protected:
  NetworkEngineTest() {
    ClusterConfig config;
    config.worker_nodes = 2;
    config.with_ingress_node = false;
    cluster_ = std::make_unique<Cluster>(&cost_, config);
    cluster_->CreateTenantPools(1, 512, 8192);
  }

  NetworkEngine* MakeEngine(int node, NetworkEngine::Config config = {}) {
    config.engine_id = 1000 + static_cast<uint32_t>(node);
    engines_.push_back(std::make_unique<NetworkEngine>(cluster_->env(), cluster_->worker(node),
                                                       &cluster_->routing(), config));
    return engines_.back().get();
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<NetworkEngine>> engines_;
};

TEST_F(NetworkEngineTest, AttachTenantRegistersPoolViaMmapHandshake) {
  NetworkEngine* engine = MakeEngine(0);
  EXPECT_TRUE(engine->AttachTenant(1, 4));
  // The pool ended up registered with the node's RNIC (local access only —
  // NADINO pools are never remote-writable).
  BufferPool* pool = cluster_->worker(0)->tenants().PoolOfTenant(1);
  EXPECT_TRUE(cluster_->worker(0)->rnic().mr_table().IsRegistered(pool->id()));
  EXPECT_EQ(cluster_->worker(0)->rnic().mr_table().CheckAccess(pool->id(), kMrRemoteWrite),
            nullptr);
}

TEST_F(NetworkEngineTest, AttachUnknownTenantFails) {
  NetworkEngine* engine = MakeEngine(0);
  EXPECT_FALSE(engine->AttachTenant(77, 1));
}

TEST_F(NetworkEngineTest, AttachPostsInitialReceiveBuffers) {
  NetworkEngine::Config config;
  config.initial_recv_buffers = 16;
  NetworkEngine* engine = MakeEngine(0, config);
  ASSERT_TRUE(engine->AttachTenant(1, 1));
  EXPECT_EQ(cluster_->worker(0)->rnic().SrqOfTenant(1).depth(), 16u);
  EXPECT_EQ(engine->rbr().outstanding(), 16u);
  // Those buffers are owned by the RNIC now.
  BufferPool* pool = cluster_->worker(0)->tenants().PoolOfTenant(1);
  EXPECT_EQ(pool->in_use(), 16u);
}

TEST_F(NetworkEngineTest, EngineEndpointEchoAcrossNodes) {
  NetworkEngine* a = MakeEngine(0);
  NetworkEngine* b = MakeEngine(1);
  a->AttachTenant(1, 1);
  b->AttachTenant(1, 1);
  a->PrewarmPeer(b, 1, 2);
  b->PrewarmPeer(a, 1, 2);
  a->Start();
  b->Start();
  cluster_->routing().Place(11, cluster_->worker(0)->id());
  cluster_->routing().Place(12, cluster_->worker(1)->id());

  BufferPool* pool_a = cluster_->worker(0)->tenants().PoolOfTenant(1);
  uint64_t echo_checksum = 0;
  bool round_trip_done = false;
  b->SetEngineEndpoint(12, [&](Buffer* buffer) {
    const auto header = ReadMessage(*buffer);
    ASSERT_TRUE(header.has_value());
    MessageHeader reply = *header;
    reply.src = 12;
    reply.dst = 11;
    reply.flags = MessageHeader::kFlagResponse;
    RewriteHeader(buffer, reply);
    b->SendFromEngine(1, buffer);
  });
  a->SetEngineEndpoint(11, [&](Buffer* buffer) {
    const auto header = ReadMessage(*buffer);
    ASSERT_TRUE(header.has_value());
    // The message digest covers the (rewritten) header too, so compare the
    // payload bytes themselves across the round trip.
    echo_checksum = Checksum(buffer->payload().subspan(MessageHeader::kWireSize));
    round_trip_done = true;
    pool_a->Put(buffer, a->owner_id());
  });

  Buffer* out = pool_a->Get(a->owner_id());
  MessageHeader header;
  header.src = 11;
  header.dst = 12;
  header.payload_length = 2048;
  header.request_id = 99;
  ASSERT_TRUE(WriteMessage(out, header));
  const uint64_t sent_checksum = Checksum(out->payload().subspan(MessageHeader::kWireSize));
  ASSERT_TRUE(a->SendFromEngine(1, out));
  cluster_->sim().RunFor(10 * kMillisecond);

  EXPECT_TRUE(round_trip_done);
  EXPECT_EQ(echo_checksum, sent_checksum);  // Payload intact end to end.
  EXPECT_EQ(a->stats().tx_messages, 1u);
  EXPECT_EQ(a->stats().rx_messages, 1u);
  EXPECT_EQ(b->stats().rx_messages, 1u);
  EXPECT_EQ(a->stats().unroutable, 0u);
}

TEST_F(NetworkEngineTest, ReplenisherKeepsSrqFedUnderTraffic) {
  NetworkEngine::Config config;
  config.initial_recv_buffers = 8;
  NetworkEngine* a = MakeEngine(0, config);
  NetworkEngine* b = MakeEngine(1, config);
  a->AttachTenant(1, 1);
  b->AttachTenant(1, 1);
  a->PrewarmPeer(b, 1, 2);
  b->PrewarmPeer(a, 1, 2);
  a->Start();
  b->Start();
  cluster_->routing().Place(12, cluster_->worker(1)->id());
  BufferPool* pool_a = cluster_->worker(0)->tenants().PoolOfTenant(1);
  BufferPool* pool_b = cluster_->worker(1)->tenants().PoolOfTenant(1);
  int received = 0;
  b->SetEngineEndpoint(12, [&](Buffer* buffer) {
    ++received;
    pool_b->Put(buffer, b->owner_id());
  });
  // Send 3x the initial posting; without replenishment this would RNR-fail.
  for (int i = 0; i < 24; ++i) {
    Buffer* out = pool_a->Get(a->owner_id());
    ASSERT_NE(out, nullptr);
    MessageHeader header;
    header.src = 11;
    header.dst = 12;
    header.payload_length = 64;
    header.request_id = static_cast<uint64_t>(i);
    WriteMessage(out, header);
    cluster_->sim().Schedule(i * 50 * kMicrosecond, [a, out]() { a->SendFromEngine(1, out); });
  }
  cluster_->sim().RunFor(20 * kMillisecond);
  EXPECT_EQ(received, 24);
  EXPECT_EQ(cluster_->worker(1)->rnic().stats().rnr_failures, 0u);
  // All of A's send buffers were recycled after completion.
  EXPECT_EQ(pool_a->in_use(), static_cast<size_t>(config.initial_recv_buffers));
}

TEST_F(NetworkEngineTest, OnPathModeStagesThroughSocDma) {
  NetworkEngine::Config on_path_config;
  on_path_config.on_path = true;
  NetworkEngine* a = MakeEngine(0, on_path_config);
  NetworkEngine* b = MakeEngine(1, on_path_config);
  a->AttachTenant(1, 1);
  b->AttachTenant(1, 1);
  a->PrewarmPeer(b, 1, 2);
  b->Start();
  a->Start();
  cluster_->routing().Place(12, cluster_->worker(1)->id());
  BufferPool* pool_a = cluster_->worker(0)->tenants().PoolOfTenant(1);
  BufferPool* pool_b = cluster_->worker(1)->tenants().PoolOfTenant(1);
  bool delivered = false;
  b->SetEngineEndpoint(12, [&](Buffer* buffer) {
    delivered = true;
    pool_b->Put(buffer, b->owner_id());
  });
  Buffer* out = pool_a->Get(a->owner_id());
  MessageHeader header;
  header.src = 11;
  header.dst = 12;
  header.payload_length = 1024;
  WriteMessage(out, header);
  a->SendFromEngine(1, out);
  cluster_->sim().RunFor(5 * kMillisecond);
  EXPECT_TRUE(delivered);
  // TX staged on the sender's SoC DMA, RX on the receiver's.
  EXPECT_EQ(cluster_->worker(0)->dpu()->soc_dma_transfers(), 1u);
  EXPECT_EQ(cluster_->worker(1)->dpu()->soc_dma_transfers(), 1u);
}

TEST_F(NetworkEngineTest, UnroutableDestinationRecyclesBuffer) {
  NetworkEngine* a = MakeEngine(0);
  a->AttachTenant(1, 1);
  a->Start();
  BufferPool* pool_a = cluster_->worker(0)->tenants().PoolOfTenant(1);
  const size_t in_use_before = pool_a->in_use();
  Buffer* out = pool_a->Get(a->owner_id());
  MessageHeader header;
  header.src = 11;
  header.dst = 999;  // Never placed.
  header.payload_length = 64;
  WriteMessage(out, header);
  a->SendFromEngine(1, out);
  cluster_->sim().RunFor(kMillisecond);
  EXPECT_GE(a->stats().unroutable, 1u);
  EXPECT_EQ(pool_a->in_use(), in_use_before);  // Recycled, not leaked.
}

TEST_F(NetworkEngineTest, CneRunsOnHostCoreWithoutDpu) {
  NetworkEngine::Config config;
  config.kind = NetworkEngine::Kind::kCne;
  NetworkEngine* engine = MakeEngine(0, config);
  EXPECT_TRUE(engine->AttachTenant(1, 1));
  EXPECT_EQ(engine->comch(), nullptr);
  EXPECT_TRUE(engine->worker_core()->pinned());
  // The worker core is one of the node's host cores.
  bool is_host_core = false;
  for (int i = 0; i < cluster_->worker(0)->host_core_count(); ++i) {
    is_host_core |= engine->worker_core() == &cluster_->worker(0)->host_core(i);
  }
  EXPECT_TRUE(is_host_core);
}

TEST_F(NetworkEngineTest, DwrrSchedulerSharesEngineBandwidthByWeight) {
  // Two tenants, weights 3:1, both backlogged at one engine: served counts
  // follow the weights.
  cluster_->CreateTenantPools(2, 512, 8192);
  NetworkEngine* a = MakeEngine(0);
  NetworkEngine* b = MakeEngine(1);
  for (const TenantId tenant : {1u, 2u}) {
    a->AttachTenant(tenant, tenant == 1 ? 3 : 1);
    b->AttachTenant(tenant, tenant == 1 ? 3 : 1);
    a->PrewarmPeer(b, tenant, 2);
  }
  a->Start();
  b->Start();
  cluster_->routing().Place(12, cluster_->worker(1)->id());
  BufferPool* pool1 = cluster_->worker(0)->tenants().PoolOfTenant(1);
  BufferPool* pool2 = cluster_->worker(0)->tenants().PoolOfTenant(2);
  b->SetEngineEndpoint(12, [&](Buffer* buffer) {
    cluster_->worker(1)->tenants().PoolById(buffer->pool)->Put(buffer, b->owner_id());
  });
  // Enqueue 200 messages per tenant back to back (backlog at the scheduler).
  for (int i = 0; i < 200; ++i) {
    for (BufferPool* pool : {pool1, pool2}) {
      Buffer* out = pool->Get(a->owner_id());
      ASSERT_NE(out, nullptr);
      MessageHeader header;
      header.src = 11;
      header.dst = 12;
      header.payload_length = 1024;
      WriteMessage(out, header);
      a->SendFromEngine(pool->tenant(), out);
    }
  }
  // Run briefly — long enough to serve many while both queues stay backlogged.
  cluster_->sim().RunFor(150 * kMicrosecond);
  ASSERT_GT(a->scheduler().pending(), 0u) << "queues drained; shorten the window";
  const uint64_t served1 = a->TenantServed(1);
  const uint64_t served2 = a->TenantServed(2);
  ASSERT_GT(served2, 2u);
  const double ratio = static_cast<double>(served1) / static_cast<double>(served2);
  EXPECT_NEAR(ratio, 3.0, 0.8);
}

}  // namespace
}  // namespace nadino
