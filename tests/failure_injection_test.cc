// Failure injection: the data plane under pool exhaustion, severed channels,
// in-flight corruption, and misbehaving tenants. The invariant throughout:
// errors are detected and counted, buffers are conserved, nothing corrupts
// silently.

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/runtime/chain.h"
#include "src/runtime/message_header.h"

namespace nadino {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() {
    ClusterConfig config;
    config.worker_nodes = 2;
    config.with_ingress_node = false;
    cluster_ = std::make_unique<Cluster>(&cost_, config);
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FailureInjectionTest, TinyPoolBackpressuresWithoutCorruption) {
  // A pool barely larger than the engine's receive posting: heavy traffic
  // must throttle on Get() failures, never corrupt or double-allocate.
  cluster_->CreateTenantPools(1, /*buffers=*/40, /*buffer_size=*/8192);
  NadinoDataPlane::Options options;
  options.initial_recv_buffers = 16;
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), options);
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  TenantEchoLoad::Options load_options;
  load_options.window = 64;  // Far beyond what 40 buffers can support.
  load_options.payload_bytes = 1024;
  TenantEchoLoad load(cluster_->env(), &dp, &client, &server, load_options);
  load.SetActive(true);
  cluster_->sim().RunFor(300 * kMillisecond);
  EXPECT_GT(load.completed(), 1000u);  // Still flows, just throttled.
  BufferPool* pool0 = cluster_->worker(0)->tenants().PoolOfTenant(1);
  BufferPool* pool1 = cluster_->worker(1)->tenants().PoolOfTenant(1);
  EXPECT_EQ(pool0->stats().ownership_violations, 0u);
  EXPECT_EQ(pool1->stats().ownership_violations, 0u);
  EXPECT_LE(pool0->in_use(), pool0->capacity());
  // Exhaustion was actually exercised.
  EXPECT_GT(pool0->stats().get_failures + pool1->stats().get_failures, 0u);
}

TEST_F(FailureInjectionTest, DisconnectedTenantStopsReceivingButOthersFlow) {
  cluster_->CreateTenantPools(1, 512, 8192);
  cluster_->CreateTenantPools(2, 512, 8192);
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  NetworkEngine* engine1 = dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.AttachTenant(2, 1);
  dp.Start();
  FunctionRuntime c1(11, 1, "c1", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                     cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime s1(12, 1, "s1", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                     cluster_->worker(1)->tenants().PoolOfTenant(1));
  FunctionRuntime c2(21, 2, "c2", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                     cluster_->worker(0)->tenants().PoolOfTenant(2));
  FunctionRuntime s2(22, 2, "s2", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                     cluster_->worker(1)->tenants().PoolOfTenant(2));
  for (FunctionRuntime* fn : {&c1, &s1, &c2, &s2}) {
    dp.RegisterFunction(fn);
  }
  TenantEchoLoad load1(cluster_->env(), &dp, &c1, &s1, {});
  TenantEchoLoad load2(cluster_->env(), &dp, &c2, &s2, {});
  load1.SetActive(true);
  load2.SetActive(true);
  cluster_->sim().RunFor(50 * kMillisecond);
  const uint64_t tenant1_before = load1.completed();
  ASSERT_GT(tenant1_before, 0u);
  // The DNE cuts off tenant 1's client endpoint (misbehaving tenant).
  engine1->comch()->Disconnect(11);
  cluster_->sim().RunFor(50 * kMillisecond);
  const uint64_t tenant1_after = load1.completed();
  const uint64_t tenant2_after = load2.completed();
  // Tenant 1 stalls (allowing in-flight drain); tenant 2 keeps its service.
  EXPECT_LE(tenant1_after, tenant1_before + 64u);
  EXPECT_GT(tenant2_after, tenant1_before / 2);
  EXPECT_GT(engine1->comch()->dropped(), 0u);
}

TEST_F(FailureInjectionTest, CorruptedPayloadDetectedByChainExecutor) {
  cluster_->CreateTenantPools(1, 512, 8192);
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  ChainExecutor executor(cluster_->env(), &dp);
  ChainSpec chain;
  chain.id = 1;
  chain.tenant = 1;
  chain.entry = 12;
  FunctionBehavior echo_behavior;
  echo_behavior.compute = 5 * kMicrosecond;
  echo_behavior.response_payload = 256;
  chain.behaviors[12] = echo_behavior;
  executor.RegisterChain(chain);
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  executor.AttachFunction(&server);

  Buffer* out = client.pool()->Get(client.owner_id());
  MessageHeader header;
  header.chain = 1;
  header.src = 11;
  header.dst = 12;
  header.payload_length = 512;
  header.request_id = executor.NextRequestId();
  WriteMessage(out, header);
  ASSERT_TRUE(dp.Send(&client, out));
  // Corrupt the payload mid-flight: flip a byte after the DMA snapshot would
  // have been taken... instead corrupt the *source* before the NIC reads it,
  // simulating a buggy co-tenant scribble that ownership rules would normally
  // prevent. The checksum written earlier no longer matches.
  out->data[MessageHeader::kWireSize + 7] ^= std::byte{0x5A};
  cluster_->sim().RunFor(20 * kMillisecond);
  // The executor saw the checksum mismatch and dropped the request.
  EXPECT_EQ(executor.requests_handled(), 0u);
  EXPECT_EQ(executor.errors(), 1u);
}

TEST_F(FailureInjectionTest, EngineSurvivesUnknownTenantDescriptor) {
  cluster_->CreateTenantPools(1, 512, 8192);
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  NetworkEngine* engine = dp.AddWorkerNode(cluster_->worker(0));
  dp.AttachTenant(1, 1);
  dp.Start();
  // Forged descriptor: nonexistent pool.
  engine->IngestTx(BufferDescriptor{999, 0, 64, 12});
  // Forged descriptor: real pool, but the engine does not own the buffer.
  BufferPool* pool = cluster_->worker(0)->tenants().PoolOfTenant(1);
  Buffer* stolen = pool->Get(OwnerId::Function(66));
  ASSERT_NE(stolen, nullptr);
  engine->IngestTx(pool->MakeDescriptor(*stolen, 12));
  cluster_->sim().RunFor(kMillisecond);
  EXPECT_EQ(engine->stats().unroutable, 2u);
  EXPECT_EQ(engine->stats().tx_messages, 0u);
  EXPECT_EQ(stolen->owner, OwnerId::Function(66));  // Untouched.
}

TEST_F(FailureInjectionTest, MultiSiteDropChaosCountedNotHung) {
  // Bounded drop faults at five distinct FaultPlane sites at once. The
  // DESIGN.md invariants under chaos: every drop is counted in the registry,
  // buffers are conserved (recycled at the drop site, never leaked), and the
  // data plane keeps flowing — dropped requests cost window slots, not hangs.
  cluster_->CreateTenantPools(1, 512, 8192);
  FaultPlane& plane = cluster_->env().faults();
  for (FaultSite site : {FaultSite::kComch, FaultSite::kDneTx, FaultSite::kDneRx,
                         FaultSite::kRnicTx, FaultSite::kRnicRx}) {
    FaultSpec spec;
    spec.site = site;
    spec.action = FaultAction::kDrop;
    spec.probability = 0.005;
    spec.max_injections = 6;  // 5 sites * 6 = 30 drops, below the window of 64.
    ASSERT_GE(plane.Install(spec), 0);
  }
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  // Steady state before load: the engines' posted receive buffers.
  cluster_->sim().RunFor(10 * kMillisecond);
  BufferPool* pool0 = cluster_->worker(0)->tenants().PoolOfTenant(1);
  BufferPool* pool1 = cluster_->worker(1)->tenants().PoolOfTenant(1);
  const size_t baseline0 = pool0->in_use();
  const size_t baseline1 = pool1->in_use();

  TenantEchoLoad::Options load_options;
  load_options.window = 64;
  load_options.payload_bytes = 1024;
  TenantEchoLoad load(cluster_->env(), &dp, &client, &server, load_options);
  load.SetActive(true);
  cluster_->sim().RunFor(300 * kMillisecond);
  load.SetActive(false);
  cluster_->sim().RunFor(50 * kMillisecond);  // Drain in-flight traffic.

  // Chaos actually happened, at more than one site, and every injection is
  // visible both in the plane totals and the registry instruments.
  EXPECT_GT(plane.injected_total(), 10u);
  int sites_hit = 0;
  uint64_t registry_total = 0;
  for (FaultSite site : {FaultSite::kComch, FaultSite::kDneTx, FaultSite::kDneRx,
                         FaultSite::kRnicTx, FaultSite::kRnicRx}) {
    sites_hit += plane.injected_at(site) > 0 ? 1 : 0;
    for (NodeId node : {cluster_->worker(0)->id(), cluster_->worker(1)->id()}) {
      MetricLabels labels;
      labels.tenant = 1;
      labels.node = static_cast<int64_t>(node);
      registry_total += cluster_->metrics().ValueOf(
          std::string("fault_injected_") + FaultSiteName(site) + "_drop", labels);
    }
  }
  EXPECT_GE(sites_hit, 3);
  EXPECT_EQ(registry_total, plane.injected_total());

  // Still flowing: drops consumed at most one window slot each.
  EXPECT_GT(load.completed(), 1000u);

  // Conservation: every dropped message's buffer was recycled where it died.
  EXPECT_EQ(pool0->in_use(), baseline0);
  EXPECT_EQ(pool1->in_use(), baseline1);
  EXPECT_EQ(pool0->stats().ownership_violations, 0u);
  EXPECT_EQ(pool1->stats().ownership_violations, 0u);
}

TEST_F(FailureInjectionTest, RnicRxCorruptionChaosIsDetectedNotSilent) {
  // Corrupt payloads on the receive side of the wire; the message-layer
  // checksum must catch every flip — responses either verify or are dropped
  // by the integrity check, never silently delivered corrupted.
  cluster_->CreateTenantPools(1, 512, 8192);
  FaultPlane& plane = cluster_->env().faults();
  FaultSpec spec;
  spec.site = FaultSite::kRnicRx;
  spec.action = FaultAction::kCorrupt;
  spec.probability = 0.01;
  spec.max_injections = 10;
  ASSERT_GE(plane.Install(spec), 0);
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  uint64_t verified = 0;
  uint64_t integrity_failures = 0;
  client.SetHandler([&](FunctionRuntime& fn, Buffer* b) {
    if (ReadMessage(*b).has_value()) {
      ++verified;
    } else {
      ++integrity_failures;  // Checksum caught the flip.
    }
    fn.pool()->Put(b, fn.owner_id());
  });
  int sent = 0;
  server.SetHandler([&](FunctionRuntime& fn, Buffer* b) {
    // Echo back so corruption can hit either direction.
    const auto header = ReadMessage(*b);
    if (!header.has_value()) {
      ++integrity_failures;
      fn.pool()->Put(b, fn.owner_id());
      return;
    }
    MessageHeader reply;
    reply.src = 12;
    reply.dst = 11;
    reply.payload_length = 512;
    reply.request_id = header->request_id;
    reply.flags = MessageHeader::kFlagResponse;
    WriteMessage(b, reply);
    dp.Send(&fn, b);
  });
  for (int i = 0; i < 2000; ++i) {
    cluster_->sim().Schedule(static_cast<SimDuration>(i) * 50 * kMicrosecond, [&]() {
      Buffer* out = client.pool()->Get(client.owner_id());
      if (out == nullptr) {
        return;
      }
      MessageHeader header;
      header.src = 11;
      header.dst = 12;
      header.payload_length = 512;
      header.request_id = static_cast<uint64_t>(++sent);
      WriteMessage(out, header);
      dp.Send(&client, out);
    });
  }
  cluster_->sim().RunFor(200 * kMillisecond);
  // Every injected corruption was detected by a checksum somewhere; nothing
  // was silently delivered (verified + caught accounts for all traffic).
  EXPECT_EQ(plane.injected_at(FaultSite::kRnicRx), 10u);
  EXPECT_EQ(integrity_failures, 10u);
  EXPECT_GT(verified, 1500u);
}

TEST_F(FailureInjectionTest, RnrStormResolvesOnceReceiverCatchesUp) {
  // Receiver posts very few buffers and replenishes slowly; RNR backoff
  // plus the replenisher must still deliver everything eventually.
  cluster_->CreateTenantPools(1, 256, 8192);
  NadinoDataPlane::Options options;
  options.initial_recv_buffers = 2;
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), options);
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  int received = 0;
  server.SetHandler([&](FunctionRuntime& fn, Buffer* b) {
    ++received;
    fn.pool()->Put(b, fn.owner_id());
  });
  for (int i = 0; i < 16; ++i) {
    Buffer* out = client.pool()->Get(client.owner_id());
    MessageHeader header;
    header.src = 11;
    header.dst = 12;
    header.payload_length = 128;
    header.request_id = static_cast<uint64_t>(i + 1);
    WriteMessage(out, header);
    ASSERT_TRUE(dp.Send(&client, out));
  }
  cluster_->sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(received, 16);
  EXPECT_EQ(cluster_->worker(1)->rnic().stats().rnr_failures, 0u);
}

}  // namespace
}  // namespace nadino
