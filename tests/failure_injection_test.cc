// Failure injection: the data plane under pool exhaustion, severed channels,
// in-flight corruption, and misbehaving tenants. The invariant throughout:
// errors are detected and counted, buffers are conserved, nothing corrupts
// silently.

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/runtime/chain.h"
#include "src/runtime/message_header.h"

namespace nadino {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() {
    ClusterConfig config;
    config.worker_nodes = 2;
    config.with_ingress_node = false;
    cluster_ = std::make_unique<Cluster>(&cost_, config);
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FailureInjectionTest, TinyPoolBackpressuresWithoutCorruption) {
  // A pool barely larger than the engine's receive posting: heavy traffic
  // must throttle on Get() failures, never corrupt or double-allocate.
  cluster_->CreateTenantPools(1, /*buffers=*/40, /*buffer_size=*/8192);
  NadinoDataPlane::Options options;
  options.initial_recv_buffers = 16;
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), options);
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  TenantEchoLoad::Options load_options;
  load_options.window = 64;  // Far beyond what 40 buffers can support.
  load_options.payload_bytes = 1024;
  TenantEchoLoad load(cluster_->env(), &dp, &client, &server, load_options);
  load.SetActive(true);
  cluster_->sim().RunFor(300 * kMillisecond);
  EXPECT_GT(load.completed(), 1000u);  // Still flows, just throttled.
  BufferPool* pool0 = cluster_->worker(0)->tenants().PoolOfTenant(1);
  BufferPool* pool1 = cluster_->worker(1)->tenants().PoolOfTenant(1);
  EXPECT_EQ(pool0->stats().ownership_violations, 0u);
  EXPECT_EQ(pool1->stats().ownership_violations, 0u);
  EXPECT_LE(pool0->in_use(), pool0->capacity());
  // Exhaustion was actually exercised.
  EXPECT_GT(pool0->stats().get_failures + pool1->stats().get_failures, 0u);
}

TEST_F(FailureInjectionTest, DisconnectedTenantStopsReceivingButOthersFlow) {
  cluster_->CreateTenantPools(1, 512, 8192);
  cluster_->CreateTenantPools(2, 512, 8192);
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  NetworkEngine* engine1 = dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.AttachTenant(2, 1);
  dp.Start();
  FunctionRuntime c1(11, 1, "c1", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                     cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime s1(12, 1, "s1", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                     cluster_->worker(1)->tenants().PoolOfTenant(1));
  FunctionRuntime c2(21, 2, "c2", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                     cluster_->worker(0)->tenants().PoolOfTenant(2));
  FunctionRuntime s2(22, 2, "s2", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                     cluster_->worker(1)->tenants().PoolOfTenant(2));
  for (FunctionRuntime* fn : {&c1, &s1, &c2, &s2}) {
    dp.RegisterFunction(fn);
  }
  TenantEchoLoad load1(cluster_->env(), &dp, &c1, &s1, {});
  TenantEchoLoad load2(cluster_->env(), &dp, &c2, &s2, {});
  load1.SetActive(true);
  load2.SetActive(true);
  cluster_->sim().RunFor(50 * kMillisecond);
  const uint64_t tenant1_before = load1.completed();
  ASSERT_GT(tenant1_before, 0u);
  // The DNE cuts off tenant 1's client endpoint (misbehaving tenant).
  engine1->comch()->Disconnect(11);
  cluster_->sim().RunFor(50 * kMillisecond);
  const uint64_t tenant1_after = load1.completed();
  const uint64_t tenant2_after = load2.completed();
  // Tenant 1 stalls (allowing in-flight drain); tenant 2 keeps its service.
  EXPECT_LE(tenant1_after, tenant1_before + 64u);
  EXPECT_GT(tenant2_after, tenant1_before / 2);
  EXPECT_GT(engine1->comch()->dropped(), 0u);
}

TEST_F(FailureInjectionTest, CorruptedPayloadDetectedByChainExecutor) {
  cluster_->CreateTenantPools(1, 512, 8192);
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  ChainExecutor executor(cluster_->env(), &dp);
  ChainSpec chain;
  chain.id = 1;
  chain.tenant = 1;
  chain.entry = 12;
  FunctionBehavior echo_behavior;
  echo_behavior.compute = 5 * kMicrosecond;
  echo_behavior.response_payload = 256;
  chain.behaviors[12] = echo_behavior;
  executor.RegisterChain(chain);
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  executor.AttachFunction(&server);

  Buffer* out = client.pool()->Get(client.owner_id());
  MessageHeader header;
  header.chain = 1;
  header.src = 11;
  header.dst = 12;
  header.payload_length = 512;
  header.request_id = executor.NextRequestId();
  WriteMessage(out, header);
  ASSERT_TRUE(dp.Send(&client, out));
  // Corrupt the payload mid-flight: flip a byte after the DMA snapshot would
  // have been taken... instead corrupt the *source* before the NIC reads it,
  // simulating a buggy co-tenant scribble that ownership rules would normally
  // prevent. The checksum written earlier no longer matches.
  out->data[MessageHeader::kWireSize + 7] ^= std::byte{0x5A};
  cluster_->sim().RunFor(20 * kMillisecond);
  // The executor saw the checksum mismatch and dropped the request.
  EXPECT_EQ(executor.requests_handled(), 0u);
  EXPECT_EQ(executor.errors(), 1u);
}

TEST_F(FailureInjectionTest, EngineSurvivesUnknownTenantDescriptor) {
  cluster_->CreateTenantPools(1, 512, 8192);
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), {});
  NetworkEngine* engine = dp.AddWorkerNode(cluster_->worker(0));
  dp.AttachTenant(1, 1);
  dp.Start();
  // Forged descriptor: nonexistent pool.
  engine->IngestTx(BufferDescriptor{999, 0, 64, 12});
  // Forged descriptor: real pool, but the engine does not own the buffer.
  BufferPool* pool = cluster_->worker(0)->tenants().PoolOfTenant(1);
  Buffer* stolen = pool->Get(OwnerId::Function(66));
  ASSERT_NE(stolen, nullptr);
  engine->IngestTx(pool->MakeDescriptor(*stolen, 12));
  cluster_->sim().RunFor(kMillisecond);
  EXPECT_EQ(engine->stats().unroutable, 2u);
  EXPECT_EQ(engine->stats().tx_messages, 0u);
  EXPECT_EQ(stolen->owner, OwnerId::Function(66));  // Untouched.
}

TEST_F(FailureInjectionTest, RnrStormResolvesOnceReceiverCatchesUp) {
  // Receiver posts very few buffers and replenishes slowly; RNR backoff
  // plus the replenisher must still deliver everything eventually.
  cluster_->CreateTenantPools(1, 256, 8192);
  NadinoDataPlane::Options options;
  options.initial_recv_buffers = 2;
  NadinoDataPlane dp(cluster_->env(), &cluster_->routing(), options);
  dp.AddWorkerNode(cluster_->worker(0));
  dp.AddWorkerNode(cluster_->worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();
  FunctionRuntime client(11, 1, "c", cluster_->worker(0), cluster_->worker(0)->AllocateCore(),
                         cluster_->worker(0)->tenants().PoolOfTenant(1));
  FunctionRuntime server(12, 1, "s", cluster_->worker(1), cluster_->worker(1)->AllocateCore(),
                         cluster_->worker(1)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);
  dp.RegisterFunction(&server);
  int received = 0;
  server.SetHandler([&](FunctionRuntime& fn, Buffer* b) {
    ++received;
    fn.pool()->Put(b, fn.owner_id());
  });
  for (int i = 0; i < 16; ++i) {
    Buffer* out = client.pool()->Get(client.owner_id());
    MessageHeader header;
    header.src = 11;
    header.dst = 12;
    header.payload_length = 128;
    header.request_id = static_cast<uint64_t>(i + 1);
    WriteMessage(out, header);
    ASSERT_TRUE(dp.Send(&client, out));
  }
  cluster_->sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(received, 16);
  EXPECT_EQ(cluster_->worker(1)->rnic().stats().rnr_failures, 0u);
}

}  // namespace
}  // namespace nadino
