// Tests for token-passing semaphores and the copy engine.

#include "src/mem/copy_engine.h"
#include "src/mem/token.h"

#include <gtest/gtest.h>

#include "src/mem/hugepage_arena.h"
#include "src/mem/buffer_pool.h"

namespace nadino {
namespace {

TEST(TokenSemaphoreTest, PostBeforeWait) {
  Simulator sim;
  CostModel cost = CostModel::Default();
  Env env{&sim, &cost};
  TokenSemaphore sem(env);
  sem.Post();
  bool ran = false;
  sem.Wait([&]() { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sem.tokens(), 0);
}

TEST(TokenSemaphoreTest, WaitBlocksUntilPost) {
  Simulator sim;
  CostModel cost = CostModel::Default();
  Env env{&sim, &cost};
  TokenSemaphore sem(env, 400);
  bool ran = false;
  sem.Wait([&]() { ran = true; });
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sem.waiters(), 1u);
  sem.Post();
  sim.Run();
  EXPECT_TRUE(ran);
  // The futex wake costs the configured post delay.
  EXPECT_EQ(sim.now(), 400);
}

TEST(TokenSemaphoreTest, FifoWakeOrder) {
  Simulator sim;
  CostModel cost = CostModel::Default();
  Env env{&sim, &cost};
  TokenSemaphore sem(env);
  std::vector<int> order;
  sem.Wait([&]() { order.push_back(1); });
  sem.Wait([&]() { order.push_back(2); });
  sem.Wait([&]() { order.push_back(3); });
  sem.Post();
  sem.Post();
  sem.Post();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TokenSemaphoreTest, ChainedOwnershipTransfer) {
  // A -> B -> C token passing down a chain, as in section 3.5.1.
  Simulator sim;
  CostModel cost = CostModel::Default();
  Env env{&sim, &cost};
  TokenSemaphore ab(env);
  TokenSemaphore bc(env);
  std::vector<char> trace;
  bc.Wait([&]() { trace.push_back('C'); });
  ab.Wait([&]() {
    trace.push_back('B');
    bc.Post();
  });
  trace.push_back('A');
  ab.Post();
  sim.Run();
  EXPECT_EQ(trace, (std::vector<char>{'A', 'B', 'C'}));
}

TEST(CopyEngineTest, CopyMovesBytesAndCounts) {
  HugepageArena arena;
  BufferPool pool(1, 1, 4, 4096, &arena);
  Buffer* src = pool.Get(OwnerId::External());
  Buffer* dst = pool.Get(OwnerId::External());
  src->FillPattern(99, 2048);
  CopyEngine copier;
  const SimDuration cost = copier.Copy(*src, dst, CopyLocality::kCacheHot);
  EXPECT_GT(cost, 0);
  EXPECT_EQ(dst->length, 2048u);
  EXPECT_EQ(Checksum(src->payload()), Checksum(dst->payload()));
  EXPECT_EQ(copier.copies(), 1u);
  EXPECT_EQ(copier.bytes_copied(), 2048u);
}

TEST(CopyEngineTest, ColdCopyCostsMoreThanHot) {
  CopyEngine copier;
  EXPECT_GT(copier.CostOf(4096, CopyLocality::kCacheCold),
            copier.CostOf(4096, CopyLocality::kCacheHot));
}

TEST(CopyEngineTest, CostScalesWithSize) {
  CopyEngine copier;
  const SimDuration small = copier.CostOf(64, CopyLocality::kCacheHot);
  const SimDuration large = copier.CostOf(65536, CopyLocality::kCacheHot);
  EXPECT_GT(large, small * 10);
}

TEST(CopyEngineTest, ResetStats) {
  HugepageArena arena;
  BufferPool pool(1, 1, 2, 256, &arena);
  Buffer* src = pool.Get(OwnerId::External());
  Buffer* dst = pool.Get(OwnerId::External());
  src->FillPattern(1, 100);
  CopyEngine copier;
  copier.Copy(*src, dst, CopyLocality::kCacheHot);
  copier.ResetStats();
  EXPECT_EQ(copier.copies(), 0u);
  EXPECT_EQ(copier.bytes_copied(), 0u);
}

}  // namespace
}  // namespace nadino
