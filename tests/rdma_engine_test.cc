// Tests for the simulated RDMA stack: two-sided send/recv, one-sided
// write/read, RNR handling, MR protection, QP cache, and fabric timing.

#include "src/rdma/rdma_engine.h"

#include <gtest/gtest.h>

#include "src/mem/tenant_registry.h"

namespace nadino {
namespace {

class RdmaEngineTest : public ::testing::Test {
 protected:
  RdmaEngineTest()
      : network_(env_),
        a_(env_, 1, &network_),
        b_(env_, 2, &network_) {
    pool_a_ = registry_a_.CreatePool(kTenant, "a", {32, 8192});
    pool_b_ = registry_b_.CreatePool(kTenant, "b", {32, 8192});
    a_.mr_table().Register(pool_a_, kMrLocal);
    b_.mr_table().Register(pool_b_, kMrLocal);
    std::tie(qp_a_, qp_b_) = RdmaEngine::CreateConnectedPair(a_, b_, kTenant);
  }

  // Posts `n` receive buffers on engine B for the tenant.
  void PostRecvs(int n) {
    for (int i = 0; i < n; ++i) {
      Buffer* buffer = pool_b_->Get(OwnerId::External(2));
      ASSERT_NE(buffer, nullptr);
      ASSERT_TRUE(b_.PostRecvBuffer(pool_b_, buffer, OwnerId::External(2), next_recv_wr_++));
    }
  }

  static constexpr TenantId kTenant = 5;
  CostModel cost_ = CostModel::Default();
  Simulator sim_;
  Env env_{&sim_, &cost_};
  RdmaNetwork network_;
  RdmaEngine a_;
  RdmaEngine b_;
  TenantRegistry registry_a_;
  TenantRegistry registry_b_;
  BufferPool* pool_a_ = nullptr;
  BufferPool* pool_b_ = nullptr;
  QpNum qp_a_ = 0;
  QpNum qp_b_ = 0;
  uint64_t next_recv_wr_ = 100;
};

TEST_F(RdmaEngineTest, TwoSidedSendDeliversPayloadIntoPostedBuffer) {
  PostRecvs(1);
  Buffer* src = pool_a_->Get(OwnerId::External(1));
  src->FillPattern(77, 2048);
  const uint64_t src_sum = Checksum(src->payload());

  Completion recv_cqe;
  bool got_recv = false;
  b_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRecv) {
      recv_cqe = cqe;
      got_recv = true;
    }
  });
  pool_a_->Transfer(src, OwnerId::External(1), OwnerId::Rnic(1));
  ASSERT_TRUE(a_.PostSend(qp_a_, *src, 42, /*imm=*/321));
  sim_.Run();

  ASSERT_TRUE(got_recv);
  EXPECT_EQ(recv_cqe.wr_id, 100u);  // The receiver's posted WR id.
  EXPECT_EQ(recv_cqe.byte_len, 2048u);
  EXPECT_EQ(recv_cqe.imm, 321u);
  EXPECT_EQ(recv_cqe.tenant, kTenant);
  EXPECT_EQ(recv_cqe.src_node, 1u);
  ASSERT_NE(recv_cqe.buffer, nullptr);
  EXPECT_EQ(Checksum(recv_cqe.buffer->payload()), src_sum);
}

TEST_F(RdmaEngineTest, SenderGetsSendCompletionAfterAck) {
  PostRecvs(1);
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 64);
  bool send_done = false;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kSend) {
      EXPECT_EQ(cqe.wr_id, 42u);
      EXPECT_EQ(cqe.status, WrStatus::kSuccess);
      send_done = true;
    }
  });
  ASSERT_TRUE(a_.PostSend(qp_a_, *src, 42));
  EXPECT_EQ(a_.Outstanding(qp_a_), 1u);
  sim_.Run();
  EXPECT_TRUE(send_done);
  EXPECT_EQ(a_.Outstanding(qp_a_), 0u);
}

TEST_F(RdmaEngineTest, RnrBackoffRetriesUntilBufferPosted) {
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 64);
  bool got_recv = false;
  b_.cq().SetHandler([&](const Completion& cqe) {
    got_recv |= cqe.opcode == RdmaOpcode::kRecv;
  });
  ASSERT_TRUE(a_.PostSend(qp_a_, *src, 1));
  // Post the receive buffer only after two backoff periods.
  sim_.Schedule(2 * cost_.rnic_rnr_backoff + 10 * kMicrosecond, [&]() { PostRecvs(1); });
  sim_.Run();
  EXPECT_TRUE(got_recv);
  EXPECT_GE(b_.stats().rnr_events, 2u);
  EXPECT_EQ(b_.stats().rnr_failures, 0u);
}

TEST_F(RdmaEngineTest, RnrRetryExhaustionFailsTheSend) {
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 64);
  WrStatus status = WrStatus::kSuccess;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kSend) {
      status = cqe.status;
    }
  });
  ASSERT_TRUE(a_.PostSend(qp_a_, *src, 1));
  sim_.Run();  // No receive buffer ever posted.
  EXPECT_EQ(status, WrStatus::kRnrRetryExceeded);
  EXPECT_GE(b_.stats().rnr_failures, 1u);
}

TEST_F(RdmaEngineTest, OneSidedWriteRequiresRemoteWriteAccess) {
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 128);
  WrStatus status = WrStatus::kSuccess;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kWrite) {
      status = cqe.status;
    }
  });
  // pool_b_ was registered kMrLocal only: remote writes must be rejected.
  ASSERT_TRUE(a_.PostWrite(qp_a_, *src, pool_b_->id(), 0, 7));
  sim_.Run();
  EXPECT_EQ(status, WrStatus::kRemoteAccessError);
  EXPECT_EQ(b_.mr_table().access_violations(), 1u);
}

TEST_F(RdmaEngineTest, OneSidedWriteLandsWhenPermitted) {
  b_.mr_table().Register(pool_b_, kMrRemoteWrite);
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(9, 512);
  const uint64_t sum = Checksum(src->payload());
  WrStatus status = WrStatus::kQpError;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kWrite) {
      status = cqe.status;
    }
  });
  ASSERT_TRUE(a_.PostWrite(qp_a_, *src, pool_b_->id(), 3, 7));
  sim_.Run();
  EXPECT_EQ(status, WrStatus::kSuccess);
  Buffer* target = pool_b_->Resolve(BufferDescriptor{pool_b_->id(), 3, 0, 0});
  EXPECT_EQ(target->length, 512u);
  EXPECT_EQ(Checksum(target->payload()), sum);
}

TEST_F(RdmaEngineTest, ObliviousOverwriteOfFunctionOwnedBufferCounted) {
  b_.mr_table().Register(pool_b_, kMrRemoteWrite);
  // A local function owns buffer 0 — the data-race scenario of section 2.1.
  Buffer* owned = pool_b_->Get(OwnerId::Function(88));
  ASSERT_EQ(owned->index, 31u);  // LIFO free list: last buffer first.
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 64);
  ASSERT_TRUE(a_.PostWrite(qp_a_, *src, pool_b_->id(), owned->index, 7));
  sim_.Run();
  EXPECT_EQ(b_.stats().oblivious_overwrites, 1u);
  // The write went through anyway — one-sided RDMA cannot know better.
  EXPECT_EQ(owned->length, 64u);
}

TEST_F(RdmaEngineTest, OneSidedReadFetchesRemoteBytes) {
  b_.mr_table().Register(pool_b_, kMrRemoteWrite | kMrRemoteRead);
  Buffer* remote = pool_b_->Resolve(BufferDescriptor{pool_b_->id(), 4, 0, 0});
  remote->FillPattern(5, 1024);
  const uint64_t sum = Checksum(remote->payload());
  Buffer* dst = pool_a_->Get(OwnerId::External(1));
  bool done = false;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRead) {
      EXPECT_EQ(cqe.status, WrStatus::kSuccess);
      EXPECT_EQ(cqe.byte_len, 1024u);
      done = true;
    }
  });
  ASSERT_TRUE(a_.PostRead(qp_a_, dst, pool_b_->id(), 4, 1024, 9));
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(Checksum(dst->payload()), sum);
}

TEST_F(RdmaEngineTest, ReadWithoutPermissionFails) {
  Buffer* dst = pool_a_->Get(OwnerId::External(1));
  WrStatus status = WrStatus::kSuccess;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRead) {
      status = cqe.status;
    }
  });
  ASSERT_TRUE(a_.PostRead(qp_a_, dst, pool_b_->id(), 4, 64, 9));
  sim_.Run();
  EXPECT_EQ(status, WrStatus::kRemoteAccessError);
}

TEST_F(RdmaEngineTest, SendOnUnconnectedQpRejected) {
  const QpNum lonely = a_.CreateQp(kTenant);
  Buffer* src = pool_a_->Get(OwnerId::External(1));
  EXPECT_FALSE(a_.PostSend(lonely, *src, 1));
}

TEST_F(RdmaEngineTest, PostRecvValidatesOwnershipAndTenant) {
  Buffer* buffer = pool_b_->Get(OwnerId::External(2));
  // Wrong claimed owner: rejected, ownership unchanged.
  EXPECT_FALSE(b_.PostRecvBuffer(pool_b_, buffer, OwnerId::External(3), 1));
  EXPECT_EQ(buffer->owner, OwnerId::External(2));
  EXPECT_TRUE(b_.PostRecvBuffer(pool_b_, buffer, OwnerId::External(2), 1));
  EXPECT_EQ(buffer->owner, OwnerId::Rnic(2));
}

TEST_F(RdmaEngineTest, PerTenantTxBytesAccumulate) {
  PostRecvs(2);
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 1000);
  a_.PostSend(qp_a_, *src, 1);
  a_.PostSend(qp_a_, *src, 2);
  sim_.Run();
  EXPECT_GE(a_.TenantBytesTx(kTenant), 2 * 1000u);
  EXPECT_EQ(a_.TenantBytesTx(kTenant + 1), 0u);
}

TEST_F(RdmaEngineTest, TwoSided64ByteEchoPathLatencyIsMicroseconds) {
  // One-way small-message latency through the NIC pipelines and fabric lands
  // in the low single-digit microseconds (sanity anchor for Fig. 12).
  PostRecvs(1);
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 64);
  SimTime arrival = 0;
  b_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRecv) {
      arrival = sim_.now();
    }
  });
  a_.PostSend(qp_a_, *src, 1);
  sim_.Run();
  EXPECT_GT(arrival, 1 * kMicrosecond);
  EXPECT_LT(arrival, 6 * kMicrosecond);
}

TEST(QpCacheTest, LruEvictionAndHitTracking) {
  QpCache cache(2);
  EXPECT_FALSE(cache.Touch(1));  // Miss, insert.
  EXPECT_FALSE(cache.Touch(2));
  EXPECT_TRUE(cache.Touch(1));  // Hit.
  EXPECT_FALSE(cache.Touch(3));  // Evicts 2 (LRU).
  EXPECT_FALSE(cache.Touch(2));  // Miss again.
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.resident(), 2u);
}

TEST(QpCacheTest, ExplicitEvictFreesSlot) {
  QpCache cache(2);
  cache.Touch(1);
  cache.Touch(2);
  cache.Evict(1);
  EXPECT_EQ(cache.resident(), 1u);
  EXPECT_FALSE(cache.Touch(3));
  EXPECT_TRUE(cache.Touch(2));  // 2 survived because 1 was evicted explicitly.
}

TEST_F(RdmaEngineTest, QpCacheThrashingUnderManyActiveQps) {
  // More QPs than cache entries: misses dominate — the thrashing the DNE's
  // bounded-active-QP policy avoids (section 3.3).
  PostRecvs(0);
  const int qp_count = cost_.rnic_qp_cache_entries * 2;
  std::vector<QpNum> qps;
  for (int i = 0; i < qp_count; ++i) {
    qps.push_back(RdmaEngine::CreateConnectedPair(a_, b_, kTenant).first);
  }
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 0);
  const uint64_t misses_before = a_.qp_cache().misses();
  for (int round = 0; round < 3; ++round) {
    for (const QpNum qp : qps) {
      a_.PostSend(qp, *src, 1);
    }
  }
  const uint64_t misses = a_.qp_cache().misses() - misses_before;
  // Round-robin over 2x the cache capacity: every touch misses.
  EXPECT_GE(misses, static_cast<uint64_t>(qp_count) * 3);
}

}  // namespace
}  // namespace nadino
