// Unit tests for the discrete-event simulation core.

#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace nadino {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_processed(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&]() { order.push_back(3); });
  sim.Schedule(100, [&]() { order.push_back(1); });
  sim.Schedule(200, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimulatorTest, SameInstantEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [&]() {
    sim.Schedule(-50, [&]() { EXPECT_EQ(sim.now(), 100); });
  });
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) {
      sim.Schedule(10, recurse);
    }
  };
  sim.Schedule(10, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(100, [&]() { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.Schedule(100, []() {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, DoubleCancelReturnsFalse) {
  Simulator sim;
  const EventId id = sim.Schedule(100, []() {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(12345));
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&]() { ++fired; });
  sim.Schedule(200, [&]() { ++fired; });
  sim.Schedule(300, [&]() { ++fired; });
  sim.RunUntil(250);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 250);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.RunUntil(5000);
  EXPECT_EQ(sim.now(), 5000);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunUntil(1000);
  sim.RunFor(500);
  EXPECT_EQ(sim.now(), 1500);
}

TEST(SimulatorTest, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&]() {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(200, [&]() { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&]() { ++fired; });
  sim.Schedule(20, [&]() { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, PendingEventsTracksLiveEvents) {
  Simulator sim;
  const EventId a = sim.Schedule(10, []() {});
  sim.Schedule(20, []() {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, DeterministicEventCount) {
  auto run = []() {
    Simulator sim;
    uint64_t count = 0;
    std::function<void(int)> spawn = [&](int depth) {
      ++count;
      if (depth < 12) {
        sim.Schedule(7, [&spawn, depth]() { spawn(depth + 1); });
        sim.Schedule(13, [&spawn, depth]() { spawn(depth + 1); });
      }
    };
    sim.Schedule(0, [&]() { spawn(0); });
    sim.Run();
    return std::pair(count, sim.now());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace nadino
