// Deeper verbs-semantics properties: in-order RC delivery, per-tenant SRQ
// separation, interleaved op types, and completion accounting under load.

#include <gtest/gtest.h>

#include "src/mem/tenant_registry.h"
#include "src/rdma/rdma_engine.h"
#include "src/runtime/message_header.h"

namespace nadino {
namespace {

class VerbsSemanticsTest : public ::testing::Test {
 protected:
  VerbsSemanticsTest()
      : network_(env_),
        a_(env_, 1, &network_),
        b_(env_, 2, &network_) {
    pool_a_ = registry_a_.CreatePool(kTenant1, "a1", {128, 8192});
    pool_b1_ = registry_b_.CreatePool(kTenant1, "b1", {128, 8192});
    pool_b2_ = registry_b_.CreatePool(kTenant2, "b2", {128, 8192});
    std::tie(qp1_a_, qp1_b_) = RdmaEngine::CreateConnectedPair(a_, b_, kTenant1);
    std::tie(qp2_a_, qp2_b_) = RdmaEngine::CreateConnectedPair(a_, b_, kTenant2);
  }

  void PostRecvs(BufferPool* pool, int n, uint64_t base_wr) {
    for (int i = 0; i < n; ++i) {
      Buffer* buffer = pool->Get(OwnerId::External(2));
      ASSERT_NE(buffer, nullptr);
      ASSERT_TRUE(b_.PostRecvBuffer(pool, buffer, OwnerId::External(2),
                                    base_wr + static_cast<uint64_t>(i)));
    }
  }

  static constexpr TenantId kTenant1 = 1;
  static constexpr TenantId kTenant2 = 2;
  CostModel cost_ = CostModel::Default();
  Simulator sim_;
  Env env_{&sim_, &cost_};
  RdmaNetwork network_;
  RdmaEngine a_;
  RdmaEngine b_;
  TenantRegistry registry_a_;
  TenantRegistry registry_b_;
  BufferPool* pool_a_ = nullptr;
  BufferPool* pool_b1_ = nullptr;
  BufferPool* pool_b2_ = nullptr;
  QpNum qp1_a_ = 0;
  QpNum qp1_b_ = 0;
  QpNum qp2_a_ = 0;
  QpNum qp2_b_ = 0;
};

TEST_F(VerbsSemanticsTest, RcDeliversInPostOrder) {
  PostRecvs(pool_b1_, 32, 100);
  std::vector<uint32_t> arrival_order;
  b_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRecv) {
      arrival_order.push_back(cqe.imm);
    }
  });
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  for (uint32_t i = 0; i < 32; ++i) {
    src->FillPattern(i, 64 + i * 8);  // Varying sizes must not reorder.
    ASSERT_TRUE(a_.PostSend(qp1_a_, *src, i, /*imm=*/i));
  }
  sim_.Run();
  ASSERT_EQ(arrival_order.size(), 32u);
  for (uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(arrival_order[i], i) << "reordered at " << i;
  }
}

TEST_F(VerbsSemanticsTest, SrqsIsolateTenants) {
  PostRecvs(pool_b1_, 2, 100);
  PostRecvs(pool_b2_, 2, 200);
  std::vector<TenantId> receive_tenants;
  std::vector<PoolId> receive_pools;
  b_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRecv) {
      receive_tenants.push_back(cqe.tenant);
      receive_pools.push_back(cqe.buffer->pool);
    }
  });
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 128);
  a_.PostSend(qp1_a_, *src, 1);  // Tenant 1's QP.
  a_.PostSend(qp2_a_, *src, 2);  // Tenant 2's QP.
  sim_.Run();
  ASSERT_EQ(receive_tenants.size(), 2u);
  // Each message consumed a buffer from ITS tenant's pool — the guarantee
  // that "the RNIC delivers incoming data into the correct pool" (3.3).
  for (size_t i = 0; i < 2; ++i) {
    if (receive_tenants[i] == kTenant1) {
      EXPECT_EQ(receive_pools[i], pool_b1_->id());
    } else {
      EXPECT_EQ(receive_pools[i], pool_b2_->id());
    }
  }
}

TEST_F(VerbsSemanticsTest, TenantExhaustionDoesNotStealOtherTenantsBuffers) {
  // Tenant 1 has NO receive buffers; tenant 2 has plenty. Tenant 1's send
  // must RNR-fail rather than consume tenant 2's buffers.
  PostRecvs(pool_b2_, 4, 200);
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 64);
  WrStatus t1_status = WrStatus::kSuccess;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kSend && cqe.tenant == kTenant1) {
      t1_status = cqe.status;
    }
  });
  a_.PostSend(qp1_a_, *src, 1);
  sim_.Run();
  EXPECT_EQ(t1_status, WrStatus::kRnrRetryExceeded);
  EXPECT_EQ(b_.SrqOfTenant(kTenant2).depth(), 4u);  // Untouched.
}

TEST_F(VerbsSemanticsTest, MixedSendAndWriteOnOneQpBothComplete) {
  b_.mr_table().Register(pool_b1_, kMrRemoteWrite);
  PostRecvs(pool_b1_, 1, 100);
  int send_done = 0;
  int write_done = 0;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kSend) {
      ++send_done;
    } else if (cqe.opcode == RdmaOpcode::kWrite) {
      ++write_done;
    }
  });
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(7, 256);
  a_.PostSend(qp1_a_, *src, 1);
  a_.PostWrite(qp1_a_, *src, pool_b1_->id(), 5, 2);
  sim_.Run();
  EXPECT_EQ(send_done, 1);
  EXPECT_EQ(write_done, 1);
  EXPECT_EQ(a_.Outstanding(qp1_a_), 0u);
}

TEST_F(VerbsSemanticsTest, CompletionCountsBalanceUnderLoad) {
  PostRecvs(pool_b1_, 64, 100);
  uint64_t sender_completions = 0;
  uint64_t receiver_completions = 0;
  a_.cq().SetHandler([&](const Completion& cqe) {
    sender_completions += cqe.opcode == RdmaOpcode::kSend ? 1 : 0;
  });
  b_.cq().SetHandler([&](const Completion& cqe) {
    receiver_completions += cqe.opcode == RdmaOpcode::kRecv ? 1 : 0;
  });
  Buffer* src = pool_a_->Get(OwnerId::Rnic(1));
  src->FillPattern(1, 1024);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(a_.PostSend(qp1_a_, *src, static_cast<uint64_t>(i)));
  }
  sim_.Run();
  EXPECT_EQ(sender_completions, 64u);
  EXPECT_EQ(receiver_completions, 64u);
  EXPECT_EQ(b_.SrqOfTenant(kTenant1).depth(), 0u);
  EXPECT_EQ(b_.SrqOfTenant(kTenant1).consumed(), 64u);
  EXPECT_EQ(a_.stats().bytes_tx, 64u * 1024u);
}

TEST_F(VerbsSemanticsTest, ReadAndWriteTruncateAtBufferCapacity) {
  b_.mr_table().Register(pool_b1_, kMrRemoteWrite | kMrRemoteRead);
  Buffer* remote = pool_b1_->Resolve(BufferDescriptor{pool_b1_->id(), 3, 0, 0});
  remote->FillPattern(9, 4096);
  Buffer* dst = pool_a_->Get(OwnerId::External(1));
  uint32_t read_len = 0;
  a_.cq().SetHandler([&](const Completion& cqe) {
    if (cqe.opcode == RdmaOpcode::kRead) {
      read_len = cqe.byte_len;
    }
  });
  // Ask for more than the remote buffer holds: truncated to capacity.
  a_.PostRead(qp1_a_, dst, pool_b1_->id(), 3, 1 << 20, 9);
  sim_.Run();
  EXPECT_EQ(read_len, static_cast<uint32_t>(remote->capacity()));
}

}  // namespace
}  // namespace nadino
