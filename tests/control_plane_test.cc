// ConnectionService lifecycle extensions: lazy on-demand establishment with
// waiter coalescing, typed acquire misses, tenant-shared symmetric pooling,
// destroy-on-departure, and peer quiescing. The legacy (eager) pooling
// surface is covered by connection_manager_test.cc and pinned byte-for-byte
// by the bench goldens.

#include "src/rdma/control_plane.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/mem/tenant_registry.h"

namespace nadino {
namespace {

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest() : network_(env_), a_(env_, 1, &network_), b_(env_, 2, &network_) {}

  static ConnectionService::Config LazyConfig(ConnectPolicy policy) {
    ConnectionService::Config config;
    config.policy = policy;
    return config;
  }

  static constexpr TenantId kTenant = 3;
  CostModel cost_ = CostModel::Default();
  Simulator sim_;
  Env env_{&sim_, &cost_};
  RdmaNetwork network_;
  RdmaEngine a_;
  RdmaEngine b_;
};

TEST_F(ControlPlaneTest, AcquireMissIsTyped) {
  ConnectionService service(env_, &a_, LazyConfig(ConnectPolicy::kLazy));
  const auto miss = service.Acquire(2, kTenant);
  EXPECT_EQ(miss.qp, 0u);
  EXPECT_EQ(miss.miss, AcquireMiss::kNoPool);
  EXPECT_EQ(service.stats().misses, 1u);
}

TEST_F(ControlPlaneTest, EagerPolicyCannotEstablishOnDemand) {
  ConnectionService service(env_, &a_, LazyConfig(ConnectPolicy::kEager));
  EXPECT_FALSE(service.CanEstablish(2, kTenant));
}

TEST_F(ControlPlaneTest, LazyEstablishRunsHandshakeThenServes) {
  ConnectionService service(env_, &a_, LazyConfig(ConnectPolicy::kLazy));
  ASSERT_TRUE(service.CanEstablish(2, kTenant));
  EXPECT_EQ(service.StateOf(2, kTenant), QpLifecycle::kAbsent);
  ConnectionService::Acquired got;
  SimTime ready_at = -1;
  service.EstablishThen(2, kTenant, 0, [&](const ConnectionService::Acquired& acquired) {
    got = acquired;
    ready_at = sim_.now();
  });
  // Handshake in flight: the key reports kEstablishing and acquires miss
  // with that reason.
  EXPECT_EQ(service.StateOf(2, kTenant), QpLifecycle::kEstablishing);
  EXPECT_EQ(service.Acquire(2, kTenant).miss, AcquireMiss::kEstablishing);
  sim_.Run();
  EXPECT_NE(got.qp, 0u);
  // Setup elapsed on the virtual clock: handshake + create + 3 modifies.
  EXPECT_EQ(ready_at,
            cost_.rc_connect_cost + cost_.qp_create_verb + 3 * cost_.qp_modify_verb);
  EXPECT_EQ(service.StateOf(2, kTenant), QpLifecycle::kActive);
  EXPECT_EQ(service.stats().establishes, 1u);
  EXPECT_EQ(service.stats().create_verbs, 1u);
  EXPECT_EQ(service.stats().modify_verbs, 3u);
}

TEST_F(ControlPlaneTest, ConcurrentEstablishersCoalesceBehindOneHandshake) {
  ConnectionService service(env_, &a_, LazyConfig(ConnectPolicy::kLazy));
  int ready = 0;
  for (int i = 0; i < 3; ++i) {
    service.EstablishThen(2, kTenant, 0, [&](const ConnectionService::Acquired& acquired) {
      EXPECT_NE(acquired.qp, 0u);
      ++ready;
    });
  }
  sim_.Run();
  EXPECT_EQ(ready, 3);
  EXPECT_EQ(service.stats().establishes, 1u);
  EXPECT_EQ(service.PooledCount(2, kTenant), 1);
}

TEST_F(ControlPlaneTest, EstablishBatchCreatesSeveralQpsPerHandshake) {
  ConnectionService::Config config = LazyConfig(ConnectPolicy::kLazy);
  config.establish_batch = 3;
  ConnectionService service(env_, &a_, config);
  service.EstablishThen(2, kTenant, 0, [](const ConnectionService::Acquired&) {});
  sim_.Run();
  EXPECT_EQ(service.PooledCount(2, kTenant), 3);
  EXPECT_EQ(service.stats().create_verbs, 3u);
  EXPECT_EQ(service.stats().modify_verbs, 9u);
  EXPECT_EQ(service.stats().establishes, 1u);
}

TEST_F(ControlPlaneTest, SharedPolicyAdoptsRemoteHalfAtPeer) {
  ConnectionService a_service(env_, &a_, LazyConfig(ConnectPolicy::kLazyShared));
  ConnectionService b_service(env_, &b_, LazyConfig(ConnectPolicy::kLazyShared));
  a_service.LinkPeer(2, &b_service);
  b_service.LinkPeer(1, &a_service);
  a_service.EstablishThen(2, kTenant, 0, [](const ConnectionService::Acquired&) {});
  sim_.Run();
  // One handshake warmed BOTH directions: the peer pooled the remote half
  // without any establishment of its own.
  EXPECT_EQ(a_service.PooledCount(2, kTenant), 1);
  EXPECT_EQ(b_service.PooledCount(1, kTenant), 1);
  EXPECT_NE(b_service.Acquire(1, kTenant).qp, 0u);
  EXPECT_EQ(b_service.stats().establishes, 0u);
  EXPECT_EQ(b_service.stats().create_verbs, 0u);
}

TEST_F(ControlPlaneTest, SharedPolicyCollapsesStreamsToOnePool) {
  ConnectionService service(env_, &a_, LazyConfig(ConnectPolicy::kLazyShared));
  EXPECT_EQ(service.TxStream(/*dst_function=*/42), 0u);
  service.EstablishThen(2, kTenant, /*stream=*/7, [](const ConnectionService::Acquired&) {});
  sim_.Run();
  // Any stream acquires from the shared pool.
  EXPECT_NE(service.Acquire(2, kTenant, 0).qp, 0u);
  EXPECT_NE(service.Acquire(2, kTenant, 99).qp, 0u);
}

TEST_F(ControlPlaneTest, PerFunctionStreamsKeySeparatePools) {
  ConnectionService::Config config = LazyConfig(ConnectPolicy::kLazy);
  config.per_function_streams = true;
  ConnectionService service(env_, &a_, config);
  EXPECT_EQ(service.TxStream(42), 42u);
  service.EstablishThen(2, kTenant, 42, [](const ConnectionService::Acquired&) {});
  sim_.Run();
  EXPECT_EQ(service.PooledCount(2, kTenant, 42), 1);
  EXPECT_EQ(service.Acquire(2, kTenant, 7).miss, AcquireMiss::kNoPool);
}

TEST_F(ControlPlaneTest, DestroyTenantRetiresQpsAndCostsVerbs) {
  ConnectionService service(env_, &a_, 8);
  service.Prewarm(&b_, kTenant, 3);
  const auto acquired = service.Acquire(2, kTenant);
  ASSERT_NE(acquired.qp, 0u);
  const SimDuration reclaim = service.DestroyTenant(kTenant);
  EXPECT_EQ(reclaim, 3 * cost_.qp_destroy_verb);
  EXPECT_EQ(service.PooledCount(2, kTenant), 0);
  EXPECT_EQ(service.LifecycleOf(acquired.qp), QpLifecycle::kDestroyed);
  EXPECT_EQ(service.stats().destroys, 3u);
  EXPECT_EQ(service.stats().destroy_verbs, 3u);
  // The QP number is retired at the RNIC: posting on it fails fast.
  TenantRegistry registry;
  BufferPool* pool = registry.CreatePool(kTenant, "t", {8, 256});
  Buffer* src = pool->Get(OwnerId::External());
  src->FillPattern(1, 64);
  EXPECT_FALSE(a_.PostSend(acquired.qp, *src, 1));
  // Idempotent: nothing left to destroy.
  EXPECT_EQ(service.DestroyTenant(kTenant), 0);
}

TEST_F(ControlPlaneTest, DestroyTenantFailsEstablishmentWaiters) {
  ConnectionService service(env_, &a_, LazyConfig(ConnectPolicy::kLazy));
  ConnectionService::Acquired got;
  bool ready = false;
  service.EstablishThen(2, kTenant, 0, [&](const ConnectionService::Acquired& acquired) {
    got = acquired;
    ready = true;
  });
  service.DestroyTenant(kTenant);
  EXPECT_TRUE(ready) << "waiters must fail closed, not hang";
  EXPECT_EQ(got.qp, 0u);
  EXPECT_EQ(got.miss, AcquireMiss::kNoPool);
  sim_.Run();
  // The in-flight handshake lands on a retired key and pools nothing.
  EXPECT_EQ(service.PooledCount(2, kTenant), 0);
}

TEST_F(ControlPlaneTest, QuiescePeerShadowsIdleConnections) {
  ConnectionService service(env_, &a_, 8);
  service.Prewarm(&b_, kTenant, 2);
  EXPECT_EQ(service.ActiveCount(2, kTenant), 2);
  service.QuiescePeer(2);
  EXPECT_EQ(service.ActiveCount(2, kTenant), 0);
  EXPECT_EQ(service.PooledCount(2, kTenant), 2);
  EXPECT_EQ(service.stats().deactivations, 2u);
  // The pool survives: the next acquire reactivates (and pays for it).
  const auto acquired = service.Acquire(2, kTenant);
  EXPECT_NE(acquired.qp, 0u);
  EXPECT_EQ(acquired.control_cost, cost_.qp_activate_cost);
}

TEST_F(ControlPlaneTest, InstrumentedMissesExportPerTenantCounters) {
  ConnectionService::Config config = LazyConfig(ConnectPolicy::kLazy);
  config.instrument = true;
  ConnectionService service(env_, &a_, config);
  service.Acquire(2, kTenant);
  service.Acquire(2, kTenant);
  MetricLabels labels = MetricLabels::Tenant(static_cast<int64_t>(kTenant));
  labels.node = 1;
  EXPECT_EQ(env_.metrics().ValueOf("connection_acquire_miss", labels), 2u);
  EXPECT_EQ(env_.metrics().ValueOf("connsvc_misses", MetricLabels::Node(1)), 2u);
}

}  // namespace
}  // namespace nadino
