// Unit tests for the MetricsRegistry: label rendering, instrument semantics,
// callback sampling, ValueOf lookups, and sorted deterministic snapshots.

#include "src/sim/metrics.h"

#include <gtest/gtest.h>

#include "src/core/env.h"

namespace nadino {
namespace {

TEST(MetricLabelsTest, RenderIsAlphabeticalAndOmitsUnset) {
  MetricLabels all;
  all.tenant = 2;
  all.node = 1;
  all.engine = 1000;
  EXPECT_EQ(all.Render(), "{engine=1000,node=1,tenant=2}");
  EXPECT_EQ(MetricLabels{}.Render(), "");
  EXPECT_EQ(MetricLabels::Tenant(7).Render(), "{tenant=7}");
  EXPECT_EQ(MetricLabels::Node(3).Render(), "{node=3}");
  EXPECT_EQ(MetricLabels::Engine(42).Render(), "{engine=42}");
}

TEST(MetricsRegistryTest, CounterIsStableAcrossLookups) {
  MetricsRegistry registry;
  registry.Counter("requests").Add(3);
  registry.Counter("requests").Increment();
  EXPECT_EQ(registry.Counter("requests").value(), 4u);
  // A different label set is a different instrument.
  registry.Counter("requests", MetricLabels::Tenant(1)).Add(10);
  EXPECT_EQ(registry.Counter("requests").value(), 4u);
  EXPECT_EQ(registry.Counter("requests", MetricLabels::Tenant(1)).value(), 10u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, GaugeMovesBothWays) {
  MetricsRegistry registry;
  GaugeMetric& depth = registry.Gauge("queue_depth");
  depth.Set(5.0);
  depth.Add(-2.0);
  EXPECT_DOUBLE_EQ(registry.Gauge("queue_depth").value(), 3.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAndPercentiles) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.Histogram("lat", {}, {10, 100, 1000});
  for (int64_t v : {5, 50, 50, 500, 5000}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5605);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 5000);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow.
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_LE(h.Percentile(0.0), h.Percentile(0.5));
  EXPECT_LE(h.Percentile(0.5), h.Percentile(1.0));
}

TEST(MetricsRegistryTest, CallbackIsSampledAtSnapshotTime) {
  MetricsRegistry registry;
  uint64_t source = 1;
  registry.RegisterCallback("pool_in_use", {}, [&]() { return source; });
  EXPECT_EQ(registry.ValueOf("pool_in_use"), 1u);
  source = 99;
  EXPECT_EQ(registry.ValueOf("pool_in_use"), 99u);
  EXPECT_NE(registry.SnapshotText().find("pool_in_use 99"), std::string::npos);
}

TEST(MetricsRegistryTest, ValueOfHandlesAbsentAndNonIntegerKinds) {
  MetricsRegistry registry;
  registry.Counter("c").Add(7);
  registry.Gauge("g").Set(3.5);
  registry.Histogram("h").Record(1);
  EXPECT_EQ(registry.ValueOf("c"), 7u);
  EXPECT_EQ(registry.ValueOf("c", MetricLabels::Tenant(1)), 0u);  // Other key.
  EXPECT_EQ(registry.ValueOf("missing"), 0u);
  EXPECT_EQ(registry.ValueOf("g"), 0u);
  EXPECT_EQ(registry.ValueOf("h"), 0u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByKey) {
  MetricsRegistry registry;
  registry.Counter("zeta").Add(1);
  registry.Counter("alpha").Add(2);
  registry.Counter("alpha", MetricLabels::Tenant(2)).Add(3);
  const std::string text = registry.SnapshotText();
  const size_t alpha = text.find("alpha ");
  const size_t alpha_t2 = text.find("alpha{tenant=2}");
  const size_t zeta = text.find("zeta");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(alpha_t2, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, alpha_t2);
  EXPECT_LT(alpha_t2, zeta);
}

TEST(MetricsRegistryTest, SnapshotJsonContainsTypedEntries) {
  MetricsRegistry registry;
  registry.Counter("c", MetricLabels::Node(1)).Add(4);
  registry.Gauge("g").Set(1.25);
  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":1"), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"gauge\""), std::string::npos);
}

// Handle fast path (DESIGN.md §3c): a handle resolved for (name, labels) and
// the string-API getter for the same key must observe the same underlying
// instrument, in both directions.
TEST(MetricsRegistryTest, CounterHandleAliasesStringApi) {
  MetricsRegistry registry;
  const MetricLabels labels = MetricLabels::Tenant(7);
  CounterHandle handle = registry.ResolveCounter("handled", labels);
  ASSERT_TRUE(handle.resolved());
  EXPECT_FALSE(CounterHandle{}.resolved());

  handle.Increment();
  handle.Add(4);
  EXPECT_EQ(registry.Counter("handled", labels).value(), 5u);
  EXPECT_EQ(registry.ValueOf("handled", labels), 5u);

  // And string-API writes are visible through the handle.
  registry.Counter("handled", labels).Add(10);
  EXPECT_EQ(handle.value(), 15u);

  // Resolving the same key again aliases the same word; a different label set
  // resolves a distinct instrument.
  CounterHandle again = registry.ResolveCounter("handled", labels);
  again.Increment();
  EXPECT_EQ(handle.value(), 16u);
  CounterHandle other = registry.ResolveCounter("handled", MetricLabels::Tenant(8));
  other.Increment();
  EXPECT_EQ(handle.value(), 16u);
  EXPECT_EQ(other.value(), 1u);
}

TEST(MetricsRegistryTest, GaugeAndHistogramHandlesAliasStringApi) {
  MetricsRegistry registry;
  GaugeHandle gauge = registry.ResolveGauge("depth");
  gauge.Set(2.5);
  gauge.Add(0.5);
  EXPECT_DOUBLE_EQ(registry.Gauge("depth").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValueOf("depth"), 3.0);

  HistogramHandle histogram = registry.ResolveHistogram("lat");
  histogram.Record(1000);
  histogram.Record(3000);
  EXPECT_EQ(registry.Histogram("lat").count(), 2u);
  EXPECT_EQ(registry.Histogram("lat").sum(), 4000);
  EXPECT_EQ(histogram.get()->count(), 2u);
}

// Handles survive later registrations: map entries are node-stable, so a
// handle resolved early still points at its instrument after the registry
// grows by hundreds of keys.
TEST(MetricsRegistryTest, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry registry;
  CounterHandle early = registry.ResolveCounter("early");
  early.Increment();
  for (int i = 0; i < 500; ++i) {
    registry.Counter("filler_" + std::to_string(i)).Increment();
  }
  early.Add(2);
  EXPECT_EQ(registry.Counter("early").value(), 3u);
}

TEST(EnvTest, RngIsSeedDeterministic) {
  Simulator sim_a;
  Simulator sim_b;
  CostModel cost = CostModel::Default();
  Env a{&sim_a, &cost, 1234};
  Env b{&sim_b, &cost, 1234};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rng().NextU64(), b.rng().NextU64());
  }
  Env c{&sim_a, &cost, 5678};
  Env d{&sim_b, &cost, 1234};
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    if (c.rng().NextU64() != d.rng().NextU64()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace nadino
