// Calibration: pins the simulated microbenchmarks to tolerance bands around
// the numbers the paper reports, and the macrobenchmarks to the qualitative
// orderings/ratios the paper claims. EXPERIMENTS.md records the exact
// paper-vs-measured values these bands guard.

#include <gtest/gtest.h>

#include "src/core/experiments.h"

namespace nadino {
namespace {

EchoResult DneEchoAt(uint32_t payload) {
  DneEchoOptions options;
  options.payload = payload;
  options.duration = 200 * kMillisecond;
  options.warmup = 20 * kMillisecond;
  return RunDneEcho(CostModel::Default(), options);
}

EchoResult OneSidedAt(OneSidedVariant variant, uint32_t payload) {
  OneSidedEchoOptions options;
  options.variant = variant;
  options.payload = payload;
  options.duration = 200 * kMillisecond;
  options.warmup = 20 * kMillisecond;
  return RunOneSidedEcho(CostModel::Default(), options);
}

// --- Fig. 12: RDMA primitive selection -------------------------------------

TEST(CalibrationTest, TwoSided64ByteEchoNear8Point4Us) {
  const EchoResult r = DneEchoAt(64);
  EXPECT_GT(r.mean_latency_us, 7.4);   // Paper: 8.4 us.
  EXPECT_LT(r.mean_latency_us, 9.6);
}

TEST(CalibrationTest, TwoSided4KbEchoNear11Point6Us) {
  const EchoResult r = DneEchoAt(4096);
  EXPECT_GT(r.mean_latency_us, 10.4);  // Paper: 11.6 us.
  EXPECT_LT(r.mean_latency_us, 13.2);
}

TEST(CalibrationTest, Owrc4KbBandsMatchPaper) {
  const EchoResult best = OneSidedAt(OneSidedVariant::kOwrcBest, 4096);
  const EchoResult worst = OneSidedAt(OneSidedVariant::kOwrcWorst, 4096);
  EXPECT_GT(best.mean_latency_us, 13.0);   // Paper: 15.0 us.
  EXPECT_LT(best.mean_latency_us, 17.0);
  EXPECT_GT(worst.mean_latency_us, 14.7);  // Paper: 16.7 us.
  EXPECT_LT(worst.mean_latency_us, 19.0);
  EXPECT_GT(worst.mean_latency_us, best.mean_latency_us);
}

TEST(CalibrationTest, Owdl4KbNear26Us) {
  const EchoResult r = OneSidedAt(OneSidedVariant::kOwdl, 4096);
  EXPECT_GT(r.mean_latency_us, 22.0);  // Paper: 26.1 us.
  EXPECT_LT(r.mean_latency_us, 31.0);
}

TEST(CalibrationTest, TwoSidedBeatsEveryOneSidedVariantAt4Kb) {
  const double two_sided = DneEchoAt(4096).mean_latency_us;
  EXPECT_LT(two_sided, OneSidedAt(OneSidedVariant::kOwrcBest, 4096).mean_latency_us);
  EXPECT_LT(two_sided, OneSidedAt(OneSidedVariant::kOwrcWorst, 4096).mean_latency_us);
  // Paper: 2.3x against OWDL at 4 KB.
  const double owdl = OneSidedAt(OneSidedVariant::kOwdl, 4096).mean_latency_us;
  EXPECT_GT(owdl / two_sided, 1.8);
  EXPECT_LT(owdl / two_sided, 3.0);
}

// --- Fig. 6: isolation cost --------------------------------------------------

TEST(CalibrationTest, NativeDpuSlowerThanNativeCpuButSameOrder) {
  NativeEchoOptions options;
  options.duration = 150 * kMillisecond;
  const EchoResult cpu = RunNativeRdmaEcho(CostModel::Default(), options);
  options.on_dpu_cores = true;
  const EchoResult dpu = RunNativeRdmaEcho(CostModel::Default(), options);
  // "The performance overhead incurred by executing RDMA primitives directly
  // on the wimpy DPU cores is minimal" — same order of magnitude.
  EXPECT_GT(dpu.mean_latency_us, cpu.mean_latency_us);
  EXPECT_LT(dpu.mean_latency_us, cpu.mean_latency_us * 1.6);
}

// --- Fig. 9: Comch variants --------------------------------------------------

TEST(CalibrationTest, ComchPollingBeatsTcpByOver8x) {
  ComchBenchOptions options;
  options.num_functions = 1;
  options.duration = 100 * kMillisecond;
  options.variant = ComchVariant::kPolling;
  const double polling = RunComchBench(CostModel::Default(), options).mean_rtt_us;
  options.variant = ComchVariant::kTcp;
  const double tcp = RunComchBench(CostModel::Default(), options).mean_rtt_us;
  EXPECT_GT(tcp / polling, 8.0);  // Paper: >8x.
}

TEST(CalibrationTest, ComchEventBeatsTcpBy2To5x) {
  ComchBenchOptions options;
  options.num_functions = 2;
  options.duration = 100 * kMillisecond;
  options.variant = ComchVariant::kEvent;
  const double event = RunComchBench(CostModel::Default(), options).mean_rtt_us;
  options.variant = ComchVariant::kTcp;
  const double tcp = RunComchBench(CostModel::Default(), options).mean_rtt_us;
  const double ratio = tcp / event;
  EXPECT_GT(ratio, 2.5);  // Paper: 2.7-3.8x.
  EXPECT_LT(ratio, 5.0);
}

TEST(CalibrationTest, ComchPollingOverloadsBeyond6Functions) {
  ComchBenchOptions options;
  options.duration = 100 * kMillisecond;
  options.variant = ComchVariant::kPolling;
  options.num_functions = 4;
  const double rps_at_4 = RunComchBench(CostModel::Default(), options).descriptor_rps;
  options.num_functions = 8;
  const double rps_at_8 = RunComchBench(CostModel::Default(), options).descriptor_rps;
  EXPECT_LT(rps_at_8, rps_at_4);  // Throughput collapses past ~6 functions.

  // Comch-E stays stable over the same range.
  options.variant = ComchVariant::kEvent;
  options.num_functions = 4;
  const double event_at_4 = RunComchBench(CostModel::Default(), options).descriptor_rps;
  options.num_functions = 8;
  const double event_at_8 = RunComchBench(CostModel::Default(), options).descriptor_rps;
  EXPECT_GE(event_at_8, event_at_4 * 0.95);
}

// --- Fig. 11: off-path vs on-path -------------------------------------------

TEST(CalibrationTest, OffPathBeatsOnPathUnderConcurrency) {
  DneEchoOptions options;
  options.payload = 1024;
  options.concurrency = 32;
  options.via_functions = true;  // The Fig. 11 echo pair runs as functions.
  options.duration = 300 * kMillisecond;
  const EchoResult off_path = RunDneEcho(CostModel::Default(), options);
  options.on_path = true;
  const EchoResult on_path = RunDneEcho(CostModel::Default(), options);
  // Paper: up to 30% RPS improvement and >20% latency reduction.
  EXPECT_GT(off_path.rps / on_path.rps, 1.12);
  EXPECT_LT(on_path.mean_latency_us / off_path.mean_latency_us, 3.0);
  EXPECT_GT(on_path.mean_latency_us / off_path.mean_latency_us, 1.12);
}

TEST(CalibrationTest, OnPathCloseToOffPathAtLowConcurrency) {
  DneEchoOptions options;
  options.payload = 1024;
  options.concurrency = 1;
  options.via_functions = true;  // The Fig. 11 echo pair runs as functions.
  options.duration = 200 * kMillisecond;
  const EchoResult off_path = RunDneEcho(CostModel::Default(), options);
  options.on_path = true;
  const EchoResult on_path = RunDneEcho(CostModel::Default(), options);
  // "At low concurrency, the RPS of on-path mode is close to off-path mode."
  EXPECT_LT(off_path.rps / on_path.rps, 2.0);
}

// --- Fig. 13: ingress designs -------------------------------------------------

TEST(CalibrationTest, IngressThroughputOrderingMatchesPaper) {
  IngressEchoOptions options;
  options.clients = 32;
  options.duration = 700 * kMillisecond;
  options.warmup = 200 * kMillisecond;
  options.mode = IngressMode::kNadino;
  const double nadino = RunIngressEcho(CostModel::Default(), options).rps;
  options.mode = IngressMode::kFIngress;
  const double fstack = RunIngressEcho(CostModel::Default(), options).rps;
  options.mode = IngressMode::kKIngress;
  const double kernel = RunIngressEcho(CostModel::Default(), options).rps;
  // Paper: NADINO up to 11.4x K-Ingress and 3.2x F-Ingress in RPS.
  const double vs_kernel = nadino / kernel;
  const double vs_fstack = nadino / fstack;
  EXPECT_GT(vs_kernel, 6.0);
  EXPECT_LT(vs_kernel, 16.0);
  EXPECT_GT(vs_fstack, 2.2);
  EXPECT_LT(vs_fstack, 4.5);
}

// --- Fig. 15: multi-tenancy fairness -----------------------------------------

TEST(CalibrationTest, DwrrSharesFollow6To1WeightsUnderContention) {
  MultiTenantOptions options;
  options.use_dwrr = true;
  options.duration = 3 * kSecond;
  options.tenants = {
      {1, 6, 0, 3 * kSecond, 64, 1024},
      {2, 1, 0, 3 * kSecond, 64, 1024},
  };
  const MultiTenantResult result = RunMultiTenant(CostModel::Default(), options);
  const double ratio = static_cast<double>(result.tenant_completed.at(1)) /
                       static_cast<double>(result.tenant_completed.at(2));
  EXPECT_NEAR(ratio, 6.0, 1.2);  // Paper: "precisely maintaining the 1:6 ratio".
}

TEST(CalibrationTest, DneSustainsRoughly110KRpsOnOneCore) {
  // Section 4.2: the throttled DNE saturates near 110K RPS.
  MultiTenantOptions options;
  options.duration = 2 * kSecond;
  options.tenants = {{1, 1, 0, 2 * kSecond, 64, 1024}};
  const MultiTenantResult result = RunMultiTenant(CostModel::Default(), options);
  EXPECT_GT(result.aggregate_rps, 90000.0);
  EXPECT_LT(result.aggregate_rps, 135000.0);
}

// --- Fig. 16 / Table 2: boutique orderings -----------------------------------

TEST(CalibrationTest, BoutiqueSystemOrderingAt20Clients) {
  BoutiqueOptions options;
  options.chain = kHomeQueryChain;
  options.clients = 20;
  options.duration = 600 * kMillisecond;
  options.warmup = 200 * kMillisecond;
  auto run = [&](SystemUnderTest system) {
    options.system = system;
    return RunBoutique(CostModel::Default(), options);
  };
  const BoutiqueResult dne = run(SystemUnderTest::kNadinoDne);
  const BoutiqueResult cne = run(SystemUnderTest::kNadinoCne);
  const BoutiqueResult fuyao_f = run(SystemUnderTest::kFuyaoF);
  const BoutiqueResult spright = run(SystemUnderTest::kSpright);
  const BoutiqueResult nightcore = run(SystemUnderTest::kNightcore);
  // NADINO (DNE) leads; NightCore trails badly (paper: 5.1-20.9x behind).
  EXPECT_GT(dne.rps / fuyao_f.rps, 1.6);   // Paper: 2.1-4.1x.
  EXPECT_LT(dne.rps / fuyao_f.rps, 4.5);
  EXPECT_GT(dne.rps / spright.rps, 2.2);   // Paper: 2.4-4.1x.
  EXPECT_LT(dne.rps / spright.rps, 5.5);
  EXPECT_GT(dne.rps / nightcore.rps, 2.5);  // Paper: 5.1-20.9x across loads.
  EXPECT_GT(dne.rps / cne.rps, 1.1);        // Paper: 1.3-1.8x at >20 clients.
  EXPECT_LT(dne.rps / cne.rps, 2.0);
  // Latency ordering too (Table 2).
  EXPECT_LT(dne.mean_latency_ms, fuyao_f.mean_latency_ms);
  EXPECT_LT(dne.mean_latency_ms, nightcore.mean_latency_ms);
  EXPECT_LT(dne.mean_latency_ms, spright.mean_latency_ms);
  // NADINO's worker-side data plane burns no host CPU; only two wimpy DPU
  // cores per node pair are active.
  EXPECT_LT(dne.dataplane_cpu_cores, 0.2);
  EXPECT_GT(dne.dpu_cores, 1.5);
  EXPECT_LT(dne.dpu_cores, 2.6);
}

TEST(CalibrationTest, BoutiqueHighLoadOrderingMatchesTable2) {
  BoutiqueOptions options;
  options.chain = kHomeQueryChain;
  options.clients = 80;
  options.duration = 600 * kMillisecond;
  options.warmup = 200 * kMillisecond;
  auto run = [&](SystemUnderTest system) {
    options.system = system;
    return RunBoutique(CostModel::Default(), options);
  };
  const BoutiqueResult dne = run(SystemUnderTest::kNadinoDne);
  const BoutiqueResult cne = run(SystemUnderTest::kNadinoCne);
  const BoutiqueResult junction = run(SystemUnderTest::kJunction);
  const BoutiqueResult fuyao_f = run(SystemUnderTest::kFuyaoF);
  const BoutiqueResult fuyao_k = run(SystemUnderTest::kFuyaoK);
  const BoutiqueResult spright = run(SystemUnderTest::kSpright);
  // Table 2 latency ordering at 80 clients:
  // DNE < CNE < Junction < FUYAO-F < SPRIGHT < FUYAO-K.
  EXPECT_LT(dne.mean_latency_ms, cne.mean_latency_ms);
  EXPECT_LT(cne.mean_latency_ms, junction.mean_latency_ms);
  EXPECT_LT(junction.mean_latency_ms, fuyao_f.mean_latency_ms);
  EXPECT_LT(fuyao_f.mean_latency_ms, spright.mean_latency_ms);
  EXPECT_LT(spright.mean_latency_ms, fuyao_k.mean_latency_ms);
  // Junction trails DNE by >47% and CNE by >17% in RPS (section 4.3).
  EXPECT_GT(dne.rps / junction.rps, 1.47);
  EXPECT_GT(cne.rps / junction.rps, 1.17);
}

}  // namespace
}  // namespace nadino
