// End-to-end retry recovery (the PR's acceptance chaos test): a FaultPlane
// burst-drop on the DNE TX path terminally loses chain invocations at the
// pre-SLO behaviour, but completes them once a RetryPolicy is registered —
// via the DNE-level drop/NACK re-send and the executor-level per-attempt
// timeout, both gated by the tenant's error budget. Equal seeds plus equal
// fault/SLO config must reproduce the run byte-for-byte.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/core/slo.h"
#include "src/runtime/chain.h"
#include "src/runtime/message_header.h"

namespace nadino {
namespace {

struct ChaosOutcome {
  int requests = 0;
  int completed = 0;
  uint64_t executor_errors = 0;
  uint64_t faults_injected = 0;
  uint64_t retry_attempts = 0;
  uint64_t retry_timeouts = 0;
  uint64_t retry_exhausted = 0;
  uint64_t retry_budget_denied = 0;
  uint64_t budget_consumed = 0;
  uint64_t budget_exhausted = 0;
  bool buffers_conserved = true;
  uint64_t ownership_violations = 0;
  std::string metrics_text;
};

struct ChaosConfig {
  uint64_t seed = kDefaultSeed;
  bool with_retry = false;
  std::vector<FaultSpec> faults;
  RetryPolicy policy;
  SloTarget target;
};

// A fixed two-hop chain: client(99) and entry(100) on worker 0, callee(101)
// on worker 1, so every call and response crosses the DNE TX path.
ChaosOutcome RunChaosChain(const ChaosConfig& config) {
  CostModel cost = CostModel::Default();
  ClusterConfig cluster_config;
  cluster_config.worker_nodes = 2;
  cluster_config.with_ingress_node = false;
  cluster_config.seed = config.seed;
  Cluster cluster(&cost, cluster_config);
  cluster.CreateTenantPools(1, 2048, 8192);
  for (const FaultSpec& spec : config.faults) {
    EXPECT_GE(cluster.env().faults().Install(spec), 0);
  }
  if (config.with_retry) {
    cluster.env().slos().Register(1, config.target);
    cluster.env().slos().SetRetryPolicy(1, config.policy);
  }

  NadinoDataPlane dp(cluster.env(), &cluster.routing(), {});
  dp.AddWorkerNode(cluster.worker(0));
  dp.AddWorkerNode(cluster.worker(1));
  dp.AttachTenant(1, 1);
  dp.Start();

  ChainSpec spec;
  spec.id = 1;
  spec.tenant = 1;
  spec.entry = 100;
  spec.entry_request_payload = 512;
  FunctionBehavior entry;
  entry.compute = 5 * kMicrosecond;
  entry.calls.push_back(CallSpec{101, 512});
  entry.response_payload = 256;
  spec.behaviors[100] = entry;
  FunctionBehavior leaf;
  leaf.compute = 5 * kMicrosecond;
  leaf.response_payload = 256;
  spec.behaviors[101] = leaf;

  ChainExecutor executor(cluster.env(), &dp);
  executor.RegisterChain(spec);
  std::vector<std::unique_ptr<FunctionRuntime>> functions;
  for (const auto& [fn_id, placement] : std::vector<std::pair<FunctionId, int>>{
           {100, 0}, {101, 1}}) {
    Node* node = cluster.worker(placement);
    functions.push_back(std::make_unique<FunctionRuntime>(
        fn_id, 1, "fn" + std::to_string(fn_id), node, node->AllocateCore(),
        node->tenants().PoolOfTenant(1)));
    dp.RegisterFunction(functions.back().get());
    executor.AttachFunction(functions.back().get());
  }
  FunctionRuntime client(99, 1, "client", cluster.worker(0),
                         cluster.worker(0)->AllocateCore(),
                         cluster.worker(0)->tenants().PoolOfTenant(1));
  dp.RegisterFunction(&client);

  ChaosOutcome outcome;
  client.SetHandler([&](FunctionRuntime& fn, Buffer* buffer) {
    const auto header = ReadMessage(*buffer);
    if (header.has_value() && header->is_response()) {
      ++outcome.completed;
    }
    fn.pool()->Put(buffer, fn.owner_id());
  });

  std::vector<size_t> baseline_in_use;
  for (int i = 0; i < 2; ++i) {
    baseline_in_use.push_back(cluster.worker(i)->tenants().PoolOfTenant(1)->in_use());
  }

  outcome.requests = 5;
  for (int i = 0; i < outcome.requests; ++i) {
    cluster.sim().Schedule(static_cast<SimDuration>(i) * 300 * kMicrosecond, [&]() {
      Buffer* request = client.pool()->Get(client.owner_id());
      ASSERT_NE(request, nullptr);
      MessageHeader header;
      header.chain = 1;
      header.src = 99;
      header.dst = 100;
      header.payload_length = spec.entry_request_payload;
      header.request_id = executor.NextRequestId();
      WriteMessage(request, header);
      if (!dp.Send(&client, request)) {
        client.pool()->Put(request, client.owner_id());
      }
    });
  }
  cluster.sim().RunFor(2 * kSecond);

  const MetricLabels tenant = MetricLabels::Tenant(1);
  MetricsRegistry& metrics = cluster.metrics();
  outcome.executor_errors = executor.errors();
  outcome.faults_injected = cluster.env().faults().injected_total();
  outcome.retry_attempts = metrics.ValueOf("retry_attempts", tenant);
  outcome.retry_timeouts = metrics.ValueOf("retry_timeouts", tenant);
  outcome.retry_exhausted = metrics.ValueOf("retry_exhausted", tenant);
  outcome.retry_budget_denied = metrics.ValueOf("retry_budget_denied", tenant);
  outcome.budget_consumed = metrics.ValueOf("slo_error_budget_consumed", tenant);
  outcome.budget_exhausted = metrics.ValueOf("slo_budget_exhausted", tenant);
  for (int i = 0; i < 2; ++i) {
    BufferPool* pool = cluster.worker(i)->tenants().PoolOfTenant(1);
    if (pool->in_use() != baseline_in_use[static_cast<size_t>(i)]) {
      outcome.buffers_conserved = false;
    }
    outcome.ownership_violations += pool->stats().ownership_violations;
  }
  outcome.metrics_text = metrics.SnapshotText();
  return outcome;
}

FaultSpec BurstDrop(FaultSite site, uint64_t max_injections) {
  FaultSpec spec;
  spec.site = site;
  spec.action = FaultAction::kDrop;
  spec.probability = 1.0;
  spec.max_injections = max_injections;
  return spec;
}

ChaosConfig RetryConfig() {
  ChaosConfig config;
  config.with_retry = true;
  config.policy.max_attempts = 4;
  config.policy.timeout = 2 * kMillisecond;
  config.policy.backoff_base = 100 * kMicrosecond;
  return config;
}

// HEAD behaviour without a RetryPolicy: a TX-path burst drop terminally
// loses invocations — the chain never completes them.
TEST(RetryRecoveryTest, DneTxBurstDropIsTerminalWithoutPolicy) {
  ChaosConfig config;
  config.faults.push_back(BurstDrop(FaultSite::kDneTx, 3));
  const ChaosOutcome outcome = RunChaosChain(config);
  EXPECT_EQ(outcome.faults_injected, 3u);
  EXPECT_LT(outcome.completed, outcome.requests);
  EXPECT_EQ(outcome.retry_attempts, 0u);
  EXPECT_TRUE(outcome.buffers_conserved) << "drops must not leak buffers";
  EXPECT_EQ(outcome.ownership_violations, 0u);
}

// The acceptance run: the same burst drop completes every invocation once
// retries are enabled, consuming error budget along the way.
TEST(RetryRecoveryTest, DneTxBurstDropRecoversWithRetry) {
  ChaosConfig config = RetryConfig();
  config.faults.push_back(BurstDrop(FaultSite::kDneTx, 3));
  const ChaosOutcome outcome = RunChaosChain(config);
  EXPECT_EQ(outcome.completed, outcome.requests);
  EXPECT_EQ(outcome.executor_errors, 0u);
  EXPECT_GT(outcome.retry_attempts, 0u);
  EXPECT_GT(outcome.budget_consumed, 0u);
  EXPECT_EQ(outcome.retry_exhausted, 0u);
  EXPECT_TRUE(outcome.buffers_conserved);
  EXPECT_EQ(outcome.ownership_violations, 0u);
}

// Injected RNIC TX loss surfaces as an error completion (the simulated NACK,
// DESIGN.md "counted not hung"); the engine re-ingests instead of dropping.
TEST(RetryRecoveryTest, RnicNackRecoversWithRetry) {
  ChaosConfig config = RetryConfig();
  config.faults.push_back(BurstDrop(FaultSite::kRnicTx, 2));
  const ChaosOutcome outcome = RunChaosChain(config);
  EXPECT_EQ(outcome.completed, outcome.requests);
  EXPECT_GE(outcome.retry_attempts, 2u);
  EXPECT_TRUE(outcome.buffers_conserved);
  EXPECT_EQ(outcome.ownership_violations, 0u);
}

// Fabric loss is invisible to the sender's engine, so recovery comes from the
// executor's per-attempt timeout: the call is marked stale and re-issued from
// a fresh buffer with a new correlation id.
TEST(RetryRecoveryTest, FabricLossRecoversViaExecutorTimeout) {
  ChaosConfig config = RetryConfig();
  config.faults.push_back(BurstDrop(FaultSite::kFabric, 2));
  const ChaosOutcome outcome = RunChaosChain(config);
  EXPECT_EQ(outcome.completed, outcome.requests);
  EXPECT_GT(outcome.retry_timeouts, 0u);
  EXPECT_GT(outcome.retry_attempts, 0u);
  EXPECT_TRUE(outcome.buffers_conserved);
  EXPECT_EQ(outcome.ownership_violations, 0u);
}

// A permanent drop cannot be retried forever: the error budget caps the
// amplification and the run converges with denials/exhaustions counted.
TEST(RetryRecoveryTest, RetryBudgetCapsAmplification) {
  ChaosConfig config = RetryConfig();
  config.target.min_budget_per_window = 2;
  config.policy.max_attempts = 100;  // Budget, not attempts, is the limiter.
  config.faults.push_back(BurstDrop(FaultSite::kDneTx, 0));  // Unlimited.
  const ChaosOutcome outcome = RunChaosChain(config);
  EXPECT_EQ(outcome.completed, 0);
  EXPECT_GT(outcome.retry_budget_denied + outcome.budget_exhausted, 0u);
  EXPECT_LE(outcome.retry_attempts, 4u)
      << "budget must cap retries well below max_attempts * requests";
  EXPECT_TRUE(outcome.buffers_conserved);
  EXPECT_EQ(outcome.ownership_violations, 0u);
}

// The determinism contract extended to the SLO layer: equal seed + equal
// fault/SLO/retry config ⇒ byte-identical snapshots, including jittered
// backoff timing and all retry_*/slo_* instruments.
TEST(RetryRecoveryTest, EqualSeedsReproduceByteIdentically) {
  ChaosConfig config = RetryConfig();
  config.faults.push_back(BurstDrop(FaultSite::kDneTx, 3));
  const ChaosOutcome a = RunChaosChain(config);
  const ChaosOutcome b = RunChaosChain(config);
  EXPECT_GT(a.retry_attempts, 0u);
  EXPECT_EQ(a.metrics_text, b.metrics_text);
}

}  // namespace
}  // namespace nadino
