// The unified FaultPlane (src/core/fault.h): spec matching, per-site action
// support, determinism, payload corruption, trace emission, and the
// wire-level micro-behaviors (link/fabric drop, delay, duplicate).
//
// The end-to-end contract — equal seed + equal spec list ⇒ byte-identical
// metrics snapshots — is asserted here against the RunMultiTenant experiment.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/core/experiments.h"
#include "src/core/fault.h"
#include "src/dpu/comch.h"
#include "src/mem/buffer.h"
#include "src/rdma/fabric.h"
#include "src/sim/link.h"

namespace nadino {
namespace {

FaultSpec DropAt(FaultSite site) {
  FaultSpec spec;
  spec.site = site;
  spec.action = FaultAction::kDrop;
  return spec;
}

class FaultPlaneTest : public ::testing::Test {
 protected:
  CostModel cost_ = CostModel::Default();
  Simulator sim_;
  Env env_{&sim_, &cost_};
  FaultPlane& plane_ = env_.faults();
};

TEST_F(FaultPlaneTest, UnarmedSiteDrawsNothingAndPasses) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const FaultDecision d = plane_.Intercept(static_cast<FaultSite>(i), FaultScope{});
    EXPECT_EQ(d.action, FaultAction::kPass);
  }
  EXPECT_EQ(plane_.injected_total(), 0u);
  // The workload stream is untouched: Env's rng produces the same sequence
  // as a fresh Env with the same seed.
  Simulator sim2;
  Env fresh{&sim2, &cost_};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(env_.rng().NextU64(), fresh.rng().NextU64());
  }
}

TEST_F(FaultPlaneTest, InstallRejectsUnsupportedActions) {
  // Descriptor channels cannot duplicate (a duplicated descriptor would
  // double-free its buffer); SK_MSG and the ingress transport carry no
  // payload to corrupt; kPass is never installable.
  FaultSpec spec;
  spec.site = FaultSite::kComch;
  spec.action = FaultAction::kDuplicate;
  EXPECT_EQ(plane_.Install(spec), -1);
  spec.site = FaultSite::kSkMsg;
  spec.action = FaultAction::kCorrupt;
  EXPECT_EQ(plane_.Install(spec), -1);
  spec.site = FaultSite::kTransport;
  spec.action = FaultAction::kDuplicate;
  EXPECT_EQ(plane_.Install(spec), -1);
  spec.site = FaultSite::kLink;
  spec.action = FaultAction::kCorrupt;  // Links move opaque byte counts.
  EXPECT_EQ(plane_.Install(spec), -1);
  spec.action = FaultAction::kPass;
  EXPECT_EQ(plane_.Install(spec), -1);
  EXPECT_EQ(plane_.armed(), 0u);

  // Every entry in the support matrix is installable.
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const uint8_t mask = FaultSiteSupportedActions(site);
    for (FaultAction action : {FaultAction::kDrop, FaultAction::kDelay, FaultAction::kDuplicate,
                               FaultAction::kCorrupt}) {
      FaultSpec s;
      s.site = site;
      s.action = action;
      if (site == FaultSite::kNodePartition) {
        // Partitions additionally require a node scope (the whole point is
        // severing one node) — probability/one_shot constraints are covered
        // by PartitionSpecsMustBeDeterministic below.
        s.node = 3;
      }
      const bool supported =
          (mask & (action == FaultAction::kDrop        ? kFaultCanDrop
                   : action == FaultAction::kDelay     ? kFaultCanDelay
                   : action == FaultAction::kDuplicate ? kFaultCanDuplicate
                                                       : kFaultCanCorrupt)) != 0;
      EXPECT_EQ(plane_.Install(s) >= 0, supported)
          << FaultSiteName(site) << "/" << FaultActionName(action);
    }
  }
}

TEST_F(FaultPlaneTest, PartitionSpecsMustBeDeterministic) {
  // node_partition matching draws no randomness, so Install refuses the
  // spec shapes that would need a draw (probability < 1, one_shot) and the
  // shape that would sever nothing (no node scope).
  FaultSpec spec;
  spec.site = FaultSite::kNodePartition;
  spec.action = FaultAction::kDrop;
  EXPECT_EQ(plane_.Install(spec), -1);  // No node scope.
  spec.node = 2;
  spec.probability = 0.5;
  EXPECT_EQ(plane_.Install(spec), -1);  // Probabilistic partition.
  spec.probability = 1.0;
  spec.one_shot = true;
  EXPECT_EQ(plane_.Install(spec), -1);  // One-shot partition.
  spec.one_shot = false;
  EXPECT_GE(plane_.Install(spec), 0);  // Deterministic window: accepted.
}

TEST_F(FaultPlaneTest, PartitionSeversBothDirectionsForTheWindow) {
  FaultSpec spec;
  spec.site = FaultSite::kNodePartition;
  spec.action = FaultAction::kDrop;
  spec.node = 2;
  spec.window_start = 1000;
  spec.window_end = 2000;
  ASSERT_GE(plane_.Install(spec), 0);

  std::vector<int> dropped;  // 1 = dropped at that probe time.
  for (SimTime t : {500, 1000, 1500, 1999, 2000, 3000}) {
    sim_.ScheduleAt(t, [this, &dropped]() {
      // Node 2 as the near endpoint, as the far endpoint, and absent.
      const auto as_src =
          plane_.InterceptPair(FaultSite::kFabric, FaultScope{kInvalidTenant, 2}, 1);
      const auto as_dst =
          plane_.InterceptPair(FaultSite::kFabric, FaultScope{kInvalidTenant, 1}, 2);
      const auto bystander =
          plane_.InterceptPair(FaultSite::kFabric, FaultScope{kInvalidTenant, 1}, 3);
      EXPECT_EQ(as_src.action, as_dst.action);
      EXPECT_EQ(bystander.action, FaultAction::kPass);
      EXPECT_EQ(plane_.NodePartitioned(2), as_src.action == FaultAction::kDrop);
      EXPECT_FALSE(plane_.NodePartitioned(1));
      dropped.push_back(as_src.action == FaultAction::kDrop ? 1 : 0);
    });
  }
  sim_.Run();
  EXPECT_EQ(dropped, (std::vector<int>{0, 1, 1, 1, 0, 0}));
  // Both directions were counted against the partitioned node.
  EXPECT_EQ(plane_.injected_at(FaultSite::kNodePartition), 6u);
}

TEST_F(FaultPlaneTest, OneShotFiresExactlyOnceAtOrAfterT) {
  FaultSpec spec = DropAt(FaultSite::kDneTx);
  spec.one_shot = true;
  spec.at = 5000;
  ASSERT_GE(plane_.Install(spec), 0);

  std::vector<FaultAction> seen;
  for (SimTime t : {1000, 4999, 5000, 5001, 9000}) {
    sim_.ScheduleAt(t, [this, &seen]() {
      seen.push_back(plane_.Intercept(FaultSite::kDneTx, FaultScope{}).action);
    });
  }
  sim_.Run();
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], FaultAction::kPass);
  EXPECT_EQ(seen[1], FaultAction::kPass);
  EXPECT_EQ(seen[2], FaultAction::kDrop);  // First crossing at/after `at`.
  EXPECT_EQ(seen[3], FaultAction::kPass);  // Latched: never again.
  EXPECT_EQ(seen[4], FaultAction::kPass);
  EXPECT_EQ(plane_.injected_total(), 1u);
}

TEST_F(FaultPlaneTest, BurstWindowBoundsInjection) {
  FaultSpec spec = DropAt(FaultSite::kComch);
  spec.window_start = 2000;
  spec.window_end = 4000;
  ASSERT_GE(plane_.Install(spec), 0);

  std::vector<FaultAction> seen;
  for (SimTime t : {1999, 2000, 3999, 4000}) {
    sim_.ScheduleAt(t, [this, &seen]() {
      seen.push_back(plane_.Intercept(FaultSite::kComch, FaultScope{}).action);
    });
  }
  sim_.Run();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], FaultAction::kPass);  // Before [start, end).
  EXPECT_EQ(seen[1], FaultAction::kDrop);
  EXPECT_EQ(seen[2], FaultAction::kDrop);
  EXPECT_EQ(seen[3], FaultAction::kPass);  // end is exclusive.
}

TEST_F(FaultPlaneTest, ScopeNarrowsToTenantAndNode) {
  FaultSpec spec = DropAt(FaultSite::kDneRx);
  spec.tenant = 7;
  spec.node = 2;
  ASSERT_GE(plane_.Install(spec), 0);

  EXPECT_EQ(plane_.Intercept(FaultSite::kDneRx, FaultScope{7, 1}).action, FaultAction::kPass);
  EXPECT_EQ(plane_.Intercept(FaultSite::kDneRx, FaultScope{8, 2}).action, FaultAction::kPass);
  EXPECT_EQ(plane_.Intercept(FaultSite::kDneRx, FaultScope{}).action, FaultAction::kPass);
  EXPECT_EQ(plane_.Intercept(FaultSite::kDneRx, FaultScope{7, 2}).action, FaultAction::kDrop);
  // The registry instrument carries the crossing's scope as labels.
  MetricLabels labels;
  labels.tenant = 7;
  labels.node = 2;
  EXPECT_EQ(env_.metrics().ValueOf("fault_injected_dne_rx_drop", labels), 1u);
}

TEST_F(FaultPlaneTest, MaxInjectionsExhaustsTheSpec) {
  FaultSpec spec = DropAt(FaultSite::kSkMsg);
  spec.max_injections = 3;
  ASSERT_GE(plane_.Install(spec), 0);
  int drops = 0;
  for (int i = 0; i < 10; ++i) {
    if (plane_.Intercept(FaultSite::kSkMsg, FaultScope{}).action == FaultAction::kDrop) {
      ++drops;
    }
  }
  EXPECT_EQ(drops, 3);
  EXPECT_EQ(plane_.injected_at(FaultSite::kSkMsg), 3u);
}

TEST_F(FaultPlaneTest, DelayReturnsTheSpecDelta) {
  FaultSpec spec;
  spec.site = FaultSite::kRnicTx;
  spec.action = FaultAction::kDelay;
  spec.delay = 12345;
  ASSERT_GE(plane_.Install(spec), 0);
  const FaultDecision d = plane_.Intercept(FaultSite::kRnicTx, FaultScope{});
  EXPECT_EQ(d.action, FaultAction::kDelay);
  EXPECT_EQ(d.delay, 12345);
}

TEST_F(FaultPlaneTest, CorruptFlipsExactlyOneByteAndChecksumsCatchIt) {
  FaultSpec spec;
  spec.site = FaultSite::kRnicRx;
  spec.action = FaultAction::kCorrupt;
  ASSERT_GE(plane_.Install(spec), 0);

  std::vector<std::byte> payload(256, std::byte{0xAB});
  const uint64_t before = Checksum(payload);
  const FaultDecision d =
      plane_.Intercept(FaultSite::kRnicRx, FaultScope{}, payload.data(), payload.size());
  EXPECT_EQ(d.action, FaultAction::kCorrupt);
  EXPECT_NE(Checksum(payload), before);  // No silent corruption.
  int flipped = 0;
  for (const std::byte b : payload) {
    if (b != std::byte{0xAB}) {
      ++flipped;
    }
  }
  EXPECT_EQ(flipped, 1);
}

TEST_F(FaultPlaneTest, CorruptWithoutPayloadIsSkippedUncounted) {
  FaultSpec spec;
  spec.site = FaultSite::kSocDma;
  spec.action = FaultAction::kCorrupt;
  ASSERT_GE(plane_.Install(spec), 0);
  const FaultDecision d = plane_.Intercept(FaultSite::kSocDma, FaultScope{});
  EXPECT_EQ(d.action, FaultAction::kPass);
  EXPECT_EQ(plane_.injected_total(), 0u);
}

TEST_F(FaultPlaneTest, EqualSeedAndSpecYieldIdenticalDecisions) {
  // Two planes, same seed, same probabilistic spec, same crossing sequence:
  // the decision streams must match exactly.
  Simulator sim_b;
  Env env_b{&sim_b, &cost_, env_.seed()};
  FaultSpec spec = DropAt(FaultSite::kFabric);
  spec.probability = 0.3;
  ASSERT_GE(env_.faults().Install(spec), 0);
  ASSERT_GE(env_b.faults().Install(spec), 0);
  int drops = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultAction a = env_.faults().Intercept(FaultSite::kFabric, FaultScope{}).action;
    const FaultAction b = env_b.faults().Intercept(FaultSite::kFabric, FaultScope{}).action;
    ASSERT_EQ(a, b) << "diverged at crossing " << i;
    drops += a == FaultAction::kDrop ? 1 : 0;
  }
  EXPECT_GT(drops, 20);   // ~60 expected; the stream is genuinely random...
  EXPECT_LT(drops, 120);  // ...but seeded.
  EXPECT_EQ(env_.faults().injected_total(), env_b.faults().injected_total());
}

TEST_F(FaultPlaneTest, InjectionsLandInTraceRing) {
  Tracer tracer(&sim_);
  env_.SetTracer(&tracer);
  FaultSpec spec = DropAt(FaultSite::kComch);
  spec.tenant = 3;
  spec.node = 1;
  ASSERT_GE(plane_.Install(spec), 0);
  ASSERT_EQ(plane_.Intercept(FaultSite::kComch, FaultScope{3, 1}).action, FaultAction::kDrop);

  const auto events = tracer.Filter(
      [](const TraceEvent& e) { return e.category == TraceCategory::kFault; });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label, "comch/drop");
  EXPECT_EQ(events[0].actor, 1u);  // The crossing's node.
  EXPECT_EQ(events[0].arg0, 3u);   // The crossing's tenant.
  EXPECT_EQ(events[0].arg1, 1u);   // Running injection total.
}

// --- Wire-level micro-behaviors ---------------------------------------------

TEST_F(FaultPlaneTest, LinkDropNeverDeliversAndCounts) {
  FaultSpec spec = DropAt(FaultSite::kLink);
  spec.max_injections = 1;
  ASSERT_GE(plane_.Install(spec), 0);
  Link link(&sim_, "up", 200.0, 500, &plane_, 1);
  int delivered = 0;
  link.Transfer(1024, [&]() { ++delivered; }, /*tenant=*/1);
  link.Transfer(1024, [&]() { ++delivered; }, /*tenant=*/1);
  sim_.Run();
  EXPECT_EQ(delivered, 1);  // Second transfer passes (spec exhausted).
  EXPECT_EQ(link.dropped(), 1u);
  EXPECT_EQ(env_.metrics().ValueOf("fault_injected_link_drop", MetricLabels::Tenant(1)), 0u);
  MetricLabels labels;
  labels.tenant = 1;
  labels.node = 1;
  EXPECT_EQ(env_.metrics().ValueOf("fault_injected_link_drop", labels), 1u);
}

TEST_F(FaultPlaneTest, LinkDuplicateDeliversTwice) {
  FaultSpec spec;
  spec.site = FaultSite::kLink;
  spec.action = FaultAction::kDuplicate;
  spec.max_injections = 1;
  ASSERT_GE(plane_.Install(spec), 0);
  Link link(&sim_, "up", 200.0, 500, &plane_, 1);
  int delivered = 0;
  link.Transfer(1024, [&]() { ++delivered; });
  sim_.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.bytes_transferred(), 2048u);
}

TEST_F(FaultPlaneTest, LinkDelayStretchesArrival) {
  Link baseline(&sim_, "up", 200.0, 500, &plane_, 1);
  SimTime clean_arrival = 0;
  baseline.Transfer(1024, [&]() { clean_arrival = sim_.now(); });
  sim_.Run();

  FaultSpec spec;
  spec.site = FaultSite::kLink;
  spec.action = FaultAction::kDelay;
  spec.delay = 70000;
  Simulator sim2;
  Env env2{&sim2, &cost_};
  ASSERT_GE(env2.faults().Install(spec), 0);
  Link slow(&sim2, "up", 200.0, 500, &env2.faults(), 1);
  SimTime slow_arrival = 0;
  slow.Transfer(1024, [&]() { slow_arrival = sim2.now(); });
  sim2.Run();
  EXPECT_EQ(slow_arrival, clean_arrival + 70000);
}

TEST_F(FaultPlaneTest, FabricDropAndDuplicate) {
  Fabric fabric(env_);
  fabric.AttachNode(1);
  fabric.AttachNode(2);
  FaultSpec spec = DropAt(FaultSite::kFabric);
  spec.max_injections = 1;
  ASSERT_GE(plane_.Install(spec), 0);
  FaultSpec dup;
  dup.site = FaultSite::kFabric;
  dup.action = FaultAction::kDuplicate;
  dup.max_injections = 1;
  ASSERT_GE(plane_.Install(dup), 0);

  int delivered = 0;
  fabric.Send(1, 2, 4096, [&]() { ++delivered; }, /*tenant=*/5);  // Dropped: 0.
  fabric.Send(1, 2, 4096, [&]() { ++delivered; }, /*tenant=*/5);  // Duplicated: 2.
  sim_.Run();
  EXPECT_EQ(delivered, 2);
  MetricLabels labels;
  labels.tenant = 5;
  labels.node = 1;  // kFabric scopes to the source port.
  EXPECT_EQ(env_.metrics().ValueOf("fault_injected_fabric_drop", labels), 1u);
  EXPECT_EQ(env_.metrics().ValueOf("fault_injected_fabric_duplicate", labels), 1u);
}

// A severed delivery is counted on exactly one path: the comch_dropped
// registry counter. Comch::dropped() is a thin shim summing those counters —
// never an independent tally — so the two can never disagree.
TEST_F(FaultPlaneTest, ComchDropShimAndRegistryAgree) {
  FifoResource dpu_core(&sim_, "dpu", cost_.dpu_speed_factor);
  FifoResource host_core(&sim_, "host");
  ComchServer server(env_, &dpu_core, /*engine_managed_polling=*/false, /*node=*/3);
  server.SetReceiver([](FunctionId, const BufferDescriptor&) {});
  server.ConnectEndpoint(7, ComchVariant::kEvent, &host_core,
                         [](const BufferDescriptor&) {}, /*tenant=*/5);

  MetricLabels labels;
  labels.tenant = 5;
  labels.node = 3;
  EXPECT_EQ(server.dropped(), 0u);

  // One severed delivery => exactly one increment, visible identically
  // through the shim and the registry.
  server.Disconnect(7);
  EXPECT_FALSE(server.SendToDpu(7, BufferDescriptor{1, 2, 3, 4}));
  EXPECT_EQ(env_.metrics().ValueOf("comch_dropped", labels), 1u);
  EXPECT_EQ(server.dropped(), 1u);

  // An injected kComch drop takes the same single path.
  server.ConnectEndpoint(7, ComchVariant::kEvent, &host_core,
                         [](const BufferDescriptor&) {}, /*tenant=*/5);
  FaultSpec spec = DropAt(FaultSite::kComch);
  spec.max_injections = 1;
  ASSERT_GE(plane_.Install(spec), 0);
  EXPECT_FALSE(server.SendToDpu(7, BufferDescriptor{1, 2, 3, 4}));
  sim_.Run();
  EXPECT_EQ(env_.metrics().ValueOf("comch_dropped", labels), 2u);
  EXPECT_EQ(server.dropped(), 2u);
  EXPECT_EQ(server.messages_to_dpu(), 0u);
}

// --- End-to-end determinism under chaos --------------------------------------

TEST(FaultPlaneE2eTest, EqualSeedEqualSpecByteIdenticalSnapshots) {
  CostModel cost = CostModel::Default();
  MultiTenantOptions options;
  options.duration = 150 * kMillisecond;
  options.sample_period = 50 * kMillisecond;
  options.seed = 0xFEEDFACEull;
  options.tenants.push_back(TenantScenario{1, 1, 0, 150 * kMillisecond, 32, 1024});
  options.tenants.push_back(TenantScenario{2, 2, 0, 150 * kMillisecond, 32, 1024});
  FaultSpec drop = DropAt(FaultSite::kDneTx);
  drop.probability = 0.002;
  drop.max_injections = 8;  // Keep well below the tenants' windows.
  options.faults.push_back(drop);
  FaultSpec delay;
  delay.site = FaultSite::kRnicTx;
  delay.action = FaultAction::kDelay;
  delay.probability = 0.01;
  delay.delay = 5 * kMicrosecond;
  options.faults.push_back(delay);

  const MultiTenantResult a = RunMultiTenant(cost, options);
  const MultiTenantResult b = RunMultiTenant(cost, options);
  EXPECT_EQ(a.metrics_text, b.metrics_text);  // Byte-identical.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  // Faults actually fired and are visible in the snapshot.
  EXPECT_NE(a.metrics_text.find("fault_injected_dne_tx_drop"), std::string::npos);
  EXPECT_NE(a.metrics_text.find("fault_injected_rnic_tx_delay"), std::string::npos);

  // A different seed moves the injection points: the snapshots diverge.
  options.seed = 0xBADC0FFEEull;
  const MultiTenantResult c = RunMultiTenant(cost, options);
  EXPECT_NE(a.metrics_text, c.metrics_text);
}

}  // namespace
}  // namespace nadino
