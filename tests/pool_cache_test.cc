// Tests for the per-consumer buffer-pool cache.

#include "src/mem/pool_cache.h"

#include <gtest/gtest.h>

#include <set>

#include "src/mem/hugepage_arena.h"

namespace nadino {
namespace {

class PoolCacheTest : public ::testing::Test {
 protected:
  HugepageArena arena_;
  BufferPool pool_{1, 1, 64, 1024, &arena_};
  OwnerId cache_owner_ = OwnerId::Engine(50);
  OwnerId user_ = OwnerId::Function(7);
};

TEST_F(PoolCacheTest, GetRefillsInBulkThenHitsLocally) {
  PoolCache cache(&pool_, cache_owner_, 8);
  Buffer* first = cache.Get(user_);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->owner, user_);
  EXPECT_EQ(cache.stats().refills, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // The refill pulled extra buffers: subsequent gets are cache hits.
  Buffer* second = cache.Get(user_);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().refills, 1u);
}

TEST_F(PoolCacheTest, PutParksLocallyAndFlushesWhenFull) {
  PoolCache cache(&pool_, cache_owner_, 4);
  std::vector<Buffer*> held;
  for (int i = 0; i < 8; ++i) {
    held.push_back(cache.Get(user_));
  }
  const uint64_t shared_puts_before = pool_.stats().puts;
  for (Buffer* b : held) {
    EXPECT_TRUE(cache.Put(b, user_));
  }
  // Some puts flushed through to the shared pool, some parked locally.
  EXPECT_GT(pool_.stats().puts, shared_puts_before);
  EXPECT_GT(cache.stats().flushes, 0u);
  EXPECT_LE(cache.cached(), 4u);
}

TEST_F(PoolCacheTest, PutByNonOwnerRejected) {
  PoolCache cache(&pool_, cache_owner_, 4);
  Buffer* b = cache.Get(user_);
  EXPECT_FALSE(cache.Put(b, OwnerId::Function(99)));
  EXPECT_EQ(b->owner, user_);  // Untouched.
}

TEST_F(PoolCacheTest, ExhaustionPropagates) {
  PoolCache cache(&pool_, cache_owner_, 8);
  std::vector<Buffer*> all;
  Buffer* b = nullptr;
  while ((b = cache.Get(user_)) != nullptr) {
    all.push_back(b);
  }
  EXPECT_EQ(all.size(), 64u);  // Every pool buffer reachable through the cache.
  EXPECT_EQ(cache.Get(user_), nullptr);
  for (Buffer* buffer : all) {
    cache.Put(buffer, user_);
  }
}

TEST_F(PoolCacheTest, FlushReturnsEverythingToSharedPool) {
  {
    PoolCache cache(&pool_, cache_owner_, 16);
    Buffer* b = cache.Get(user_);
    cache.Put(b, user_);
    EXPECT_GT(cache.cached(), 0u);
  }  // Destructor flushes.
  EXPECT_EQ(pool_.free_count(), pool_.capacity());
  EXPECT_EQ(pool_.stats().ownership_violations, 0u);
}

TEST_F(PoolCacheTest, NoDoubleHandOutAcrossCacheAndPool) {
  PoolCache cache(&pool_, cache_owner_, 8);
  std::set<Buffer*> seen;
  std::vector<Buffer*> direct;
  std::vector<Buffer*> cached;
  for (int i = 0; i < 20; ++i) {
    Buffer* a = pool_.Get(OwnerId::External());
    if (a != nullptr) {
      EXPECT_TRUE(seen.insert(a).second);
      direct.push_back(a);
    }
    Buffer* c = cache.Get(user_);
    if (c != nullptr) {
      EXPECT_TRUE(seen.insert(c).second);
      cached.push_back(c);
    }
  }
  for (Buffer* a : direct) {
    pool_.Put(a, OwnerId::External());
  }
  for (Buffer* c : cached) {
    cache.Put(c, user_);
  }
  EXPECT_EQ(pool_.stats().ownership_violations, 0u);
}

}  // namespace
}  // namespace nadino
