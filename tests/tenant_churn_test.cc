// Tenant churn scenario (DESIGN.md §3f): seeded Poisson arrival/departure
// over the elastic control plane. Pins the two acceptance properties of the
// refactor — equal seeds replay byte-identical snapshots, and the
// lazy+shared policy strictly reduces both control-plane amplification and
// cold-tenant TTFB versus the eager all-pairs prewarm — at a scale small
// enough for CI (the full-size comparison lives in bench/tenant_churn.cc).

#include <gtest/gtest.h>

#include "src/core/experiments.h"

namespace nadino {
namespace {

TenantChurnOptions SmallScenario(ConnectPolicy policy) {
  TenantChurnOptions options;
  options.policy = policy;
  options.tenants = 40;
  options.mean_interarrival = 5 * kMillisecond;
  options.mean_lifetime = 60 * kMillisecond;
  options.duration = 1500 * kMillisecond;
  options.keep_warm_timeout = 30 * kMillisecond;
  options.sweep_period = 10 * kMillisecond;
  // Single-slot window: pins per-invocation amplification to the verb counts
  // rather than to the extra QP-level parallelism the eager pool buys.
  options.window = 1;
  return options;
}

TEST(TenantChurnTest, EqualSeedsReplayByteIdentical) {
  const CostModel& cost = CostModel::Default();
  const TenantChurnResult a = RunTenantChurn(cost, SmallScenario(ConnectPolicy::kLazyShared));
  const TenantChurnResult b = RunTenantChurn(cost, SmallScenario(ConnectPolicy::kLazyShared));
  EXPECT_EQ(a.metrics_text, b.metrics_text);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.setup_verbs, b.setup_verbs);
}

TEST(TenantChurnTest, DifferentSeedsDrawDifferentChurn) {
  const CostModel& cost = CostModel::Default();
  TenantChurnOptions reseeded = SmallScenario(ConnectPolicy::kLazyShared);
  reseeded.seed += 1;
  const TenantChurnResult a = RunTenantChurn(cost, SmallScenario(ConnectPolicy::kLazyShared));
  const TenantChurnResult b = RunTenantChurn(cost, reseeded);
  EXPECT_NE(a.metrics_text, b.metrics_text);
}

TEST(TenantChurnTest, LazySharedBeatsEagerOnVerbsAndTtfb) {
  const CostModel& cost = CostModel::Default();
  const TenantChurnResult eager = RunTenantChurn(cost, SmallScenario(ConnectPolicy::kEager));
  const TenantChurnResult shared =
      RunTenantChurn(cost, SmallScenario(ConnectPolicy::kLazyShared));
  ASSERT_GT(eager.completed, 0u);
  ASSERT_GT(shared.completed, 0u);
  ASSERT_GT(shared.tenants_first_byte, 0u);
  // Amplification: one shared handshake per tenant-pair versus the eager
  // all-pairs, all-directions prewarm — strictly fewer verbs, absolute and
  // per completed invocation.
  EXPECT_LT(shared.setup_verbs, eager.setup_verbs);
  EXPECT_LT(shared.setup_verbs + shared.destroy_verbs,
            eager.setup_verbs + eager.destroy_verbs);
  EXPECT_LT(shared.verbs_per_invocation, eager.verbs_per_invocation);
  // Cold-tenant TTFB: the single on-demand handshake undercuts the gated
  // eager prewarm (which batches more QPs into its setup latency).
  EXPECT_LT(shared.ttfb_mean_ms, eager.ttfb_mean_ms);
  EXPECT_LE(shared.ttfb_p99_ms, eager.ttfb_p99_ms);
}

TEST(TenantChurnTest, DepartedTenantsReclaimTheirQps) {
  const CostModel& cost = CostModel::Default();
  const TenantChurnResult result =
      RunTenantChurn(cost, SmallScenario(ConnectPolicy::kLazyShared));
  // Churn actually happened: the keep-warm sweeper retired idle tenants and
  // departure destroyed their QPs (paying destroy verbs at the RNIC).
  EXPECT_GT(result.tenants_arrived, 10u);
  EXPECT_GT(result.tenants_departed, 0u);
  EXPECT_GT(result.destroys, 0u);
  EXPECT_GT(result.destroy_verbs, 0u);
  EXPECT_EQ(result.destroy_verbs, result.destroys);
}

}  // namespace
}  // namespace nadino
